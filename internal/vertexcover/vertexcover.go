// Package vertexcover provides an exact minimum vertex cover solver for
// small undirected graphs, plus graph generators.
//
// Vertex Cover is the source problem of the paper's simplest hardness
// reduction (Proposition 9: VC ≤ RES(qvc)) and of the generalized IJP-based
// reduction of Section 9, which this repository makes executable and
// verifies against this solver.
package vertexcover

import (
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	edges map[[2]int]bool
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, edges: map[[2]int]bool{}}
}

// AddEdge inserts the undirected edge {u,v}; self-loops are rejected.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	g.edges[[2]int{u, v}] = true
}

// Edges returns the edge list in deterministic order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// MinVertexCover returns the size of a minimum vertex cover and one optimal
// cover, computed by branch and bound on the highest-degree uncovered edge.
func (g *Graph) MinVertexCover() (int, []int) {
	edges := g.Edges()
	if len(edges) == 0 {
		return 0, nil
	}
	inCover := make([]bool, g.N)
	best := len(edges) + 1 // trivial upper bound: one endpoint per edge
	var bestCover []int

	var rec func(cur int)
	rec = func(cur int) {
		if cur >= best {
			return
		}
		// Find first uncovered edge.
		var pick [2]int
		found := false
		uncovered := 0
		deg := map[int]int{}
		for _, e := range edges {
			if !inCover[e[0]] && !inCover[e[1]] {
				if !found {
					pick = e
					found = true
				}
				uncovered++
				deg[e[0]]++
				deg[e[1]]++
			}
		}
		if !found {
			best = cur
			bestCover = bestCover[:0]
			for v, in := range inCover {
				if in {
					bestCover = append(bestCover, v)
				}
			}
			return
		}
		// Lower bound: a maximal set of vertex-disjoint uncovered edges.
		lb := matchingLowerBound(edges, inCover)
		if cur+lb >= best {
			return
		}
		// Branch on the endpoint with higher uncovered degree first.
		u, v := pick[0], pick[1]
		if deg[v] > deg[u] {
			u, v = v, u
		}
		inCover[u] = true
		rec(cur + 1)
		inCover[u] = false
		inCover[v] = true
		rec(cur + 1)
		inCover[v] = false
	}
	rec(0)
	cover := append([]int(nil), bestCover...)
	return best, cover
}

// matchingLowerBound greedily builds vertex-disjoint uncovered edges; the
// count is a lower bound on the remaining cover size.
func matchingLowerBound(edges [][2]int, inCover []bool) int {
	used := map[int]bool{}
	lb := 0
	for _, e := range edges {
		if inCover[e[0]] || inCover[e[1]] || used[e[0]] || used[e[1]] {
			continue
		}
		used[e[0]] = true
		used[e[1]] = true
		lb++
	}
	return lb
}

// IsCover reports whether the given vertex set covers every edge.
func (g *Graph) IsCover(cover []int) bool {
	in := make([]bool, g.N)
	for _, v := range cover {
		in[v] = true
	}
	for e := range g.edges {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}

// RandomGraph generates a G(n,p) random graph.
func RandomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Path returns the path graph P_n (n vertices, n-1 edges).
func Path(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Star returns the star K_{1,n-1} centered at vertex 0.
func Star(n int) *Graph {
	g := NewGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}
