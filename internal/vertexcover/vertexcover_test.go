package vertexcover

import (
	"math/rand"
	"testing"
)

func TestKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", NewGraph(5), 0},
		{"single edge", func() *Graph { g := NewGraph(2); g.AddEdge(0, 1); return g }(), 1},
		{"path4", Path(4), 2},
		{"C4", Cycle(4), 2},
		{"C5", Cycle(5), 3},
		{"C6", Cycle(6), 3},
		{"K4", Complete(4), 3},
		{"K5", Complete(5), 4},
		{"star8", Star(8), 1},
	}
	for _, c := range cases {
		size, cover := c.g.MinVertexCover()
		if size != c.want {
			t.Errorf("%s: VC = %d, want %d", c.name, size, c.want)
		}
		if !c.g.IsCover(cover) {
			t.Errorf("%s: returned cover is not a cover", c.name)
		}
		if len(cover) != size {
			t.Errorf("%s: cover size %d != reported %d", c.name, len(cover), size)
		}
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(1, 1)
	if g.NumEdges() != 0 {
		t.Error("self-loop should be ignored")
	}
}

func TestEdgeDedupAndOrder(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(2, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("edges = %d, want 2", len(es))
	}
	if es[0] != [2]int{0, 2} || es[1] != [2]int{1, 2} {
		t.Errorf("edges = %v, want sorted normalized", es)
	}
}

func TestRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g := RandomGraph(rng, 3+rng.Intn(7), 0.4)
		size, cover := g.MinVertexCover()
		if !g.IsCover(cover) {
			t.Fatalf("trial %d: invalid cover", trial)
		}
		if want := bruteVC(g); size != want {
			t.Fatalf("trial %d: B&B=%d brute=%d", trial, size, want)
		}
	}
}

func bruteVC(g *Graph) int {
	n := g.N
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		var cover []int
		for v := 0; v < n; v++ {
			if mask>>v&1 == 1 {
				cover = append(cover, v)
			}
		}
		if len(cover) < best && g.IsCover(cover) {
			best = len(cover)
		}
	}
	return best
}

func BenchmarkVCRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	graphs := make([]*Graph, 16)
	for i := range graphs {
		graphs[i] = RandomGraph(rng, 14, 0.3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphs[i%len(graphs)].MinVertexCover()
	}
}
