package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/witset"
)

// applyMuts plays a mutation batch onto a mutable database (the
// engine-test stand-in for api.Session.MutateDB's resolved batch).
func applyMuts(d *db.Database, muts []witset.Mutation) {
	for _, m := range muts {
		if m.Insert {
			d.AddTuple(m.Tuple)
		} else {
			d.Remove(m.Tuple)
		}
	}
}

// randomEngineBatch builds 1–3 mutations over relation R with arguments
// drawn from a small domain interned into next: inserts of absent tuples,
// deletes of present ones, no same-tuple conflicts within a batch.
func randomEngineBatch(rng *rand.Rand, next *db.Database) []witset.Mutation {
	tracked := next.Clone()
	n := 1 + rng.Intn(3)
	var out []witset.Mutation
	for len(out) < n {
		tup := db.Tuple{Rel: "R", Arity: 2}
		for i := 0; i < 2; i++ {
			tup.Args[i] = tracked.Const(fmt.Sprint(rng.Intn(9)))
		}
		if tracked.Has(tup) {
			tracked.Remove(tup)
			out = append(out, witset.Mutation{Tuple: tup})
		} else {
			tracked.AddTuple(tup)
			out = append(out, witset.Mutation{Insert: true, Tuple: tup})
		}
	}
	return out
}

// TestMigrateIRsDifferential is the engine-level half of the delta
// differential suite: across a long interleaved insert/delete sequence,
// an engine that delta-migrates its cached IR must report the same ρ as a
// cold engine building the IR from scratch over the same database — and
// must do it without ever rebuilding (IRBuilds stays 1, IRMigrations
// counts the steps).
func TestMigrateIRsDifferential(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(42))
	d := datagen.Random(rng, q, 9, 16, 0.25)
	d.Freeze()

	e := New(Config{Workers: 4, NoClone: true})
	ctx := context.Background()
	if _, _, err := e.Solve(ctx, q, d); err != nil {
		t.Fatal(err)
	}

	const steps = 25
	for step := 0; step < steps; step++ {
		next := d.Clone()
		muts := randomEngineBatch(rng, next)
		applyMuts(next, muts)
		next.Freeze()

		if migrated := e.MigrateIRs(ctx, d, next, muts); migrated != 1 {
			t.Fatalf("step %d: MigrateIRs = %d entries, want 1", step, migrated)
		}
		if e.PeekInstance(q, next) == nil {
			t.Fatalf("step %d: no cached IR for the new version after migration", step)
		}
		res, _, err := e.Solve(ctx, q, next)
		if err != nil {
			t.Fatalf("step %d: delta engine: %v", step, err)
		}

		cold := New(Config{Workers: 4, NoClone: true})
		want, _, err := cold.Solve(ctx, q, next)
		if err != nil {
			t.Fatalf("step %d: cold engine: %v", step, err)
		}
		if res.Rho != want.Rho {
			t.Fatalf("step %d: delta ρ = %d, scratch ρ = %d (muts %v)", step, res.Rho, want.Rho, muts)
		}
		d = next
	}

	st := e.Stats()
	if st.IRBuilds != 1 {
		t.Fatalf("IRBuilds = %d, want 1: every step should migrate, not rebuild", st.IRBuilds)
	}
	if st.IRMigrations != steps {
		t.Fatalf("IRMigrations = %d, want %d", st.IRMigrations, steps)
	}
}

// TestMigrateIRsComponentCache pins the dirty-component re-solve: after a
// mutation that adds one fresh component to a many-component database,
// the next solve reuses every untouched component's cached optimum and
// runs the solver only on the new one.
func TestMigrateIRsComponentCache(t *testing.T) {
	q := cq.MustParse("qmchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(5))
	d := datagen.ManyComponentChainDB(rng, 24, 3, 12)
	d.Freeze()

	e := New(Config{Workers: 4, NoClone: true})
	ctx := context.Background()
	base, _, err := e.Solve(ctx, q, d)
	if err != nil {
		t.Fatal(err)
	}
	runsAfterWarm := e.Stats().SolverRuns

	// One fresh 3-cycle: a new component that survives kernelization with
	// ρ = 2; everything else is untouched.
	next := d.Clone()
	a, b, c := next.Const("za"), next.Const("zb"), next.Const("zc")
	muts := []witset.Mutation{
		{Insert: true, Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{a, b}}},
		{Insert: true, Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{b, c}}},
		{Insert: true, Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{c, a}}},
	}
	applyMuts(next, muts)
	next.Freeze()
	if migrated := e.MigrateIRs(ctx, d, next, muts); migrated != 1 {
		t.Fatalf("MigrateIRs = %d entries, want 1", migrated)
	}

	res, _, err := e.Solve(ctx, q, next)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != base.Rho+2 {
		t.Fatalf("ρ after adding a 3-cycle = %d, want %d", res.Rho, base.Rho+2)
	}
	st := e.Stats()
	if st.CompCacheHits == 0 {
		t.Fatal("CompCacheHits = 0: untouched components should hit the cache")
	}
	if extra := st.SolverRuns - runsAfterWarm; extra != 1 {
		t.Fatalf("solver ran %d times after the delta, want 1 (only the new component)", extra)
	}
}
