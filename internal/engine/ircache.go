package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/witset"
)

// irCache shares witness-hypergraph IRs across requests: building the IR
// (witness enumeration + interning + derived families) is the dominant
// per-request cost for NP-side queries against a fixed database, and the
// resulting witset.Instance is immutable, so a long-lived engine serving a
// registered database should pay it once per (query class, database
// version) rather than once per request.
//
// The key is three-level: (database UID, database version) pins the exact
// contents — any mutation bumps the version, so stale IRs are never
// returned — and an isomorphism-invariant query signature selects a
// bucket, inside which core.RelationMapping confirms alpha-equivalence
// (variable renaming only; relation names must match identically, because
// witnesses come from concretely named relations of the database).
//
// Builds are single-flight: concurrent requests for the same key elect one
// builder and the rest wait on its result, so a thundering herd of
// identical queries performs exactly one witness enumeration. A build that
// fails (typically: the builder's context expired) is evicted so later
// requests retry rather than inheriting the error forever.
type irCache struct {
	mu      sync.Mutex
	buckets map[irKey][]*irEntry
	size    int
	max     int

	hits   atomic.Int64
	misses atomic.Int64
}

type irKey struct {
	dbUID     uint64
	dbVersion uint64
	sig       string
}

// irEntry is a single-flight future: the builder closes ready after
// setting inst/err, and waiters block on ready (or their own context).
type irEntry struct {
	q     *cq.Query
	ready chan struct{}
	inst  *witset.Instance
	err   error
}

// defaultIRCacheMax bounds the number of cached IRs. IRs are much heavier
// than classifications (they hold the interned witness family), so the cap
// is smaller than the classification cache's. When full the cache stops
// inserting; builds still happen, they just aren't remembered.
const defaultIRCacheMax = 256

func newIRCache(max int) *irCache {
	if max <= 0 {
		max = defaultIRCacheMax
	}
	return &irCache{buckets: map[irKey][]*irEntry{}, max: max}
}

// get returns the cached IR for (q, d), building it with build on a miss.
// Exactly one caller per key runs build; the rest wait for its result or
// their own context, whichever comes first. A waiter whose builder failed
// does not inherit the builder's error: the failed entry has already been
// evicted, so the waiter retries — with its own context and budget — and
// typically becomes the next builder.
func (c *irCache) get(ctx context.Context, q *cq.Query, d *db.Database, build func() (*witset.Instance, error)) (*witset.Instance, error) {
	key := irKey{dbUID: d.UID(), dbVersion: d.Version(), sig: signature(q)}

	for {
		c.mu.Lock()
		e := c.lookup(key, q)
		if e == nil {
			break
		}
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err == nil {
			c.hits.Add(1)
			return e.inst, nil
		}
		// The elected builder failed — usually its context expired, which
		// says nothing about ours. Bail out only if we are cancelled too.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	c.misses.Add(1)
	var e *irEntry
	if c.size < c.max {
		// Newer versions of a database supersede older ones; dropping the
		// stale entries keeps a frequently re-uploaded database from
		// squeezing live IRs out of the cap.
		c.evictStaleLocked(key.dbUID, key.dbVersion)
		e = &irEntry{q: q.Clone(), ready: make(chan struct{})}
		c.buckets[key] = append(c.buckets[key], e)
		c.size++
	}
	c.mu.Unlock()

	inst, err := build()
	if e != nil {
		e.inst, e.err = inst, err
		if err != nil {
			c.remove(key, e)
		}
		close(e.ready)
	}
	return inst, err
}

// peek returns the ready, successfully built IR for (q, d), or nil. It
// never waits on an in-flight build and never counts a hit or miss.
func (c *irCache) peek(q *cq.Query, d *db.Database) *witset.Instance {
	key := irKey{dbUID: d.UID(), dbVersion: d.Version(), sig: signature(q)}
	c.mu.Lock()
	e := c.lookup(key, q)
	c.mu.Unlock()
	if e == nil {
		return nil
	}
	select {
	case <-e.ready:
		if e.err == nil {
			return e.inst
		}
	default:
	}
	return nil
}

// entriesFor snapshots the completed, successfully built entries keyed to
// the given database identity and version. MigrateIRs walks these to carry
// IRs across a mutation.
func (c *irCache) entriesFor(dbUID, dbVersion uint64) []*irEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*irEntry
	for k, bucket := range c.buckets {
		if k.dbUID != dbUID || k.dbVersion != dbVersion {
			continue
		}
		for _, e := range bucket {
			select {
			case <-e.ready:
				if e.err == nil {
					out = append(out, e)
				}
			default:
			}
		}
	}
	return out
}

// put inserts a prebuilt IR under (q, database identity), for MigrateIRs.
// Respects the capacity cap and the single-entry-per-equivalent-query
// rule; reports whether the instance was stored.
func (c *irCache) put(q *cq.Query, dbUID, dbVersion uint64, inst *witset.Instance) bool {
	key := irKey{dbUID: dbUID, dbVersion: dbVersion, sig: signature(q)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lookup(key, q) != nil {
		return false
	}
	if c.size >= c.max {
		return false
	}
	c.evictStaleLocked(dbUID, dbVersion)
	e := &irEntry{q: q.Clone(), ready: make(chan struct{}), inst: inst}
	close(e.ready)
	c.buckets[key] = append(c.buckets[key], e)
	c.size++
	return true
}

// lookup scans the bucket for an alpha-equivalent entry. Callers hold c.mu.
func (c *irCache) lookup(key irKey, q *cq.Query) *irEntry {
	for _, e := range c.buckets[key] {
		relMap, ok := core.RelationMapping(e.q, q)
		if !ok {
			continue
		}
		identity := true
		for from, to := range relMap {
			if from != to {
				identity = false
				break
			}
		}
		if identity {
			return e
		}
	}
	return nil
}

// evictStaleLocked drops every entry of the given database with a
// different version. Callers hold c.mu.
func (c *irCache) evictStaleLocked(dbUID, dbVersion uint64) {
	for k, bucket := range c.buckets {
		if k.dbUID == dbUID && k.dbVersion != dbVersion {
			c.size -= len(bucket)
			delete(c.buckets, k)
		}
	}
}

// evictUID drops every entry of the given database, whatever its version.
// The serving layer calls this when a registered database is deleted or
// replaced: its IRs are unreachable from then on (a re-upload has a fresh
// UID), and without eviction dead entries would pin their witness
// families and eat the cache cap for the process lifetime. In-flight
// waiters on an evicted entry are unaffected — they hold the entry and
// still receive the builder's result.
func (c *irCache) evictUID(dbUID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, bucket := range c.buckets {
		if k.dbUID == dbUID {
			c.size -= len(bucket)
			delete(c.buckets, k)
		}
	}
}

// remove evicts a failed entry so later requests rebuild.
func (c *irCache) remove(key irKey, e *irEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bucket := c.buckets[key]
	for i, have := range bucket {
		if have == e {
			c.buckets[key] = append(bucket[:i], bucket[i+1:]...)
			c.size--
			return
		}
	}
}

func (c *irCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
