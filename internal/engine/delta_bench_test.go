package engine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/witset"
)

// The incremental-mutation benchmark pair: the same single-tuple mutation
// stream over the same many-component database, answered once by the
// delta path (MigrateIRs + cached components) and once by a cold engine
// rebuilding the IR from scratch. The workload toggles one edge on and
// off next to a pre-seeded partner edge, so every mutation creates or
// destroys exactly one witness while the dense clusters stay untouched —
// the shape delta maintenance exists for: the rebuild re-enumerates and
// re-solves every cluster per mutation, the delta path semi-joins the one
// changed tuple and answers the untouched clusters from the component
// cache.

func incrementalBenchSetup(b *testing.B) (*cq.Query, *db.Database) {
	b.Helper()
	q := cq.MustParse("qmchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(99))
	d := datagen.ManyComponentDenseDB(rng, 64, 12, 34)
	d.AddNames("R", "m1", "m2") // partner edge for the toggled tuple
	d.Freeze()
	return q, d
}

// toggleMutation builds iteration i's mutation against next: inserting
// R(m2,m3) on even iterations (one new witness m1→m2→m3), deleting it on
// odd ones.
func toggleMutation(next *db.Database, i int) witset.Mutation {
	tup := db.Tuple{Rel: "R", Arity: 2}
	tup.Args[0] = next.Const("m2")
	tup.Args[1] = next.Const("m3")
	return witset.Mutation{Insert: i%2 == 0, Tuple: tup}
}

func BenchmarkIncrementalMutationDelta(b *testing.B) {
	q, d := incrementalBenchSetup(b)
	e := New(Config{Workers: 4, NoClone: true})
	ctx := context.Background()
	if _, _, err := e.Solve(ctx, q, d); err != nil {
		b.Fatal(err)
	}
	cur := d
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := cur.Clone()
		m := toggleMutation(next, i)
		applyMuts(next, []witset.Mutation{m})
		next.Freeze()
		if e.MigrateIRs(ctx, cur, next, []witset.Mutation{m}) != 1 {
			b.Fatal("IR did not migrate")
		}
		if _, _, err := e.Solve(ctx, q, next); err != nil {
			b.Fatal(err)
		}
		e.ForgetDatabase(cur)
		cur = next
	}
}

func BenchmarkIncrementalMutationRebuild(b *testing.B) {
	q, d := incrementalBenchSetup(b)
	ctx := context.Background()
	cur := d
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := cur.Clone()
		m := toggleMutation(next, i)
		applyMuts(next, []witset.Mutation{m})
		next.Freeze()
		// A cold engine per iteration: the pre-incremental world pays a
		// full witness enumeration, kernelization, and per-component solve
		// for every mutation.
		cold := New(Config{Workers: 4, NoClone: true})
		if _, _, err := cold.Solve(ctx, q, next); err != nil {
			b.Fatal(err)
		}
		cur = next
	}
}
