package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cnfenc"
	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/resilience"
	"repro/internal/witset"
)

// randomWeightedFamily draws a random hitting-set family over n elements
// with per-element costs in [1, maxW].
func randomWeightedFamily(rng *rand.Rand, n, rows, maxW int) *witset.Family {
	raw := make([][]int32, rows)
	for i := range raw {
		size := 1 + rng.Intn(3)
		row := make([]int32, size)
		for j := range row {
			row[j] = int32(rng.Intn(n))
		}
		raw[i] = row
	}
	fam := witset.NewFamily(raw, n, false)
	w := make([]int64, n)
	for i := range w {
		w[i] = 1 + rng.Int63n(int64(maxW))
	}
	fam.W = w
	return fam
}

// TestDifferentialWeightedSATVsExact pins the two weighted per-component
// oracles against each other: the weighted SAT binary search (gcd-
// normalized incremental counter) and the weighted branch-and-bound must
// report the same minimum cost on random weighted families, and the SAT
// side's chosen set must actually cost what it claims.
func TestDifferentialWeightedSATVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4001))
	families := 0
	for round := 0; round < 350; round++ {
		fam := randomWeightedFamily(rng, 5+rng.Intn(6), 4+rng.Intn(7), 7)
		if len(fam.Rows) == 0 {
			continue
		}
		families++
		want, _, err := resilience.SolveFamilyWeighted(context.Background(), fam, -1)
		if err != nil {
			t.Fatal(err)
		}
		got, ids, err := weightedSATFamilySearch(context.Background(), fam)
		if err != nil {
			t.Fatalf("round %d: weighted SAT search: %v", round, err)
		}
		if got != want {
			t.Fatalf("round %d: SAT cost = %d, branch-and-bound cost = %d", round, got, want)
		}
		cost := int64(0)
		hit := make([]bool, len(fam.Rows))
		for _, e := range ids {
			cost += fam.W[e]
			for _, si := range fam.Occ[e] {
				hit[si] = true
			}
		}
		if cost != got {
			t.Fatalf("round %d: SAT chosen set costs %d, reported %d", round, cost, got)
		}
		for si, ok := range hit {
			if !ok {
				t.Fatalf("round %d: SAT chosen set leaves row %d unhit", round, si)
			}
		}
	}
	if families < 300 {
		t.Fatalf("only %d families generated, want >= 300", families)
	}
}

// TestDifferentialWeightedPortfolioAgreement pins the engine-level race:
// SolveWeightedInstance with the portfolio on and off must report the same
// minimum cost on random weighted instances (the racers are the two
// oracles of TestDifferentialWeightedSATVsExact plus kernelization).
func TestDifferentialWeightedPortfolioAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(4002))
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	plain := New(Config{})
	raced := New(Config{Portfolio: true})
	for round := 0; round < 30; round++ {
		d := datagen.ManyComponentChainDB(rng, 2+round%4, 3, 9)
		base, err := witset.Build(context.Background(), q, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		wv := make([]int64, base.NumTuples())
		for i := range wv {
			wv[i] = 1 + rng.Int63n(6)
		}
		inst, err := base.WithWeights(wv)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := plain.SolveWeightedInstance(context.Background(), inst)
		got, gotErr := raced.SolveWeightedInstance(context.Background(), inst)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("round %d: exact err = %v, portfolio err = %v", round, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if got.Cost != want.Cost {
			t.Fatalf("round %d: portfolio cost = %d, exact cost = %d", round, got.Cost, want.Cost)
		}
	}
}

// TestWeightedSATWidthCapDecline pins the decline protocol: a weight
// vector whose normalized counter would exceed cnfenc.MaxWeightedWidth
// makes the SAT search refuse with ErrWidthTooLarge, and the race treats
// that as a missing contender — the exact side still answers.
func TestWeightedSATWidthCapDecline(t *testing.T) {
	// Two disjoint unit rows with huge coprime costs: the optimum is
	// 4999+5003, the gcd is 1, so the counter would need ~10000 registers.
	fam := witset.NewFamily([][]int32{{0}, {1}}, 2, false)
	fam.W = []int64{4999, 5003}
	if _, _, err := weightedSATFamilySearch(context.Background(), fam); !errors.Is(err, cnfenc.ErrWidthTooLarge) {
		t.Fatalf("weightedSATFamilySearch err = %v, want ErrWidthTooLarge", err)
	}
	e := New(Config{Portfolio: true})
	cost, ids, viaSAT, err := e.raceWeightedComponent(context.Background(), fam)
	if err != nil {
		t.Fatalf("raceWeightedComponent: %v", err)
	}
	if viaSAT {
		t.Fatal("race reports a SAT win after the SAT side declined")
	}
	if cost != 4999+5003 || len(ids) != 2 {
		t.Fatalf("race cost = %d (%d ids), want %d (2 ids)", cost, len(ids), 4999+5003)
	}
}

// TestWeightedSATScalingProbesIdentical pins the gcd normalization: the
// search for c·w probes the exact same budgets as for w, so uniform
// scaling can never flip satisfiability — costs scale by exactly c.
func TestWeightedSATScalingProbesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4003))
	for round := 0; round < 40; round++ {
		fam := randomWeightedFamily(rng, 6, 6, 5)
		if len(fam.Rows) == 0 {
			continue
		}
		base, _, err := weightedSATFamilySearch(context.Background(), fam)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []int64{3, 7} {
			scaled := *fam
			sw := make([]int64, len(fam.W))
			for i := range sw {
				sw[i] = c * fam.W[i]
			}
			scaled.W = sw
			got, _, err := weightedSATFamilySearch(context.Background(), &scaled)
			if err != nil {
				t.Fatal(err)
			}
			if got != c*base {
				t.Fatalf("round %d: scale %d cost = %d, want %d", round, c, got, c*base)
			}
		}
	}
}
