package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/db"
)

// compCache remembers solved witness-hypergraph components by content
// fingerprint (witset.Instance.ComponentKey): the component's rows
// rendered over its ground tuples. Keys are taken on the raw (normalized,
// un-kernelized) components, before any per-component kernelization runs —
// that is what makes the cache the engine half of delta IR maintenance:
// after a tuple mutation, every component the mutation did not touch
// fingerprints identically to its pre-mutation self and is answered from
// here without kernelizing or running a solver. The new ρ is then a
// re-sum of cached component minima plus fresh kernelize+solve passes over
// the dirtied components only.
//
// Soundness: equal fingerprints mean equal row multisets over identical
// ground tuples, so the minimum hitting sets coincide — the cached size
// and the cached optimum (stored as ground tuples, not instance-local ids)
// transfer verbatim.
//
// Entries also record which portfolio racer produced them and the
// kernelization counters of the skipped work, so a solve answered partly
// from cache reconstructs the same method string and the same statistics
// the all-fresh solve reported (the parity suite pins method stability).
//
// The cache is only consulted under Config.NoClone (the serving-layer
// mode, same condition as the IR cache): with per-request cloning every
// request pays full price by design, and the batch-mode counter invariants
// the tests pin stay exact.
type compCache struct {
	mu    sync.Mutex
	m     map[string]compEntry
	order []string // insertion order, for FIFO eviction
	max   int

	hits   atomic.Int64
	misses atomic.Int64
}

// compEntry is one solved raw component: its minimum hitting-set size
// (forced deletions included), one optimum as ground tuples, which
// portfolio racers contributed, and the counters of the kernelize+solve
// work a cache hit skips — sub-components solved, tuples forced, tuples
// dominated — so stats stay comparable between cached and fresh solves.
type compEntry struct {
	rho       int
	tuples    []db.Tuple
	exact     bool
	sat       bool
	subs      int
	forced    int
	dominated int
}

// defaultCompCacheMax bounds the number of cached component optima.
// Components are much lighter than whole IRs (a size plus a small tuple
// slice), so the cap is generous: many-component databases are exactly the
// workload the cache exists for.
const defaultCompCacheMax = 4096

func newCompCache(max int) *compCache {
	if max <= 0 {
		max = defaultCompCacheMax
	}
	return &compCache{m: map[string]compEntry{}, max: max}
}

func (c *compCache) get(key string) (compEntry, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *compCache) put(key string, e compEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return
	}
	for len(c.m) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.m, oldest)
	}
	c.m[key] = e
	c.order = append(c.order, key)
}

func (c *compCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
