package engine

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/resilience"
	"repro/internal/zoo"
)

// mixedBatch builds n instances cycling through PTIME and NP-hard query
// shapes from the paper's zoo, each on its own seeded random database
// small enough for the exact solver to finish quickly.
func mixedBatch(t testing.TB, n int) []Instance {
	t.Helper()
	shapes := []struct {
		name   string
		query  string
		domain int
		tuples int
	}{
		// NP-hard side (exact / portfolio path).
		{"chain", "qchain :- R(x,y), R(y,z)", 8, 18},
		{"vc", "qvc :- R(x), S(x,y), R(y)", 8, 14},
		{"triangle", "qtriangle :- R(x,y), S(y,z), T(z,x)", 6, 12},
		// PTIME side (flow / specialized solvers).
		{"acconf", "qACconf :- A(x), R(x,y), R(z,y), C(z)", 8, 14},
		{"perm", "qperm :- R(x,y), R(y,x)", 10, 20},
		{"rats", "qrats :- R(x,y), A(x), T(z,x), S(y,z)", 8, 12},
	}
	rng := rand.New(rand.NewSource(2020))
	insts := make([]Instance, n)
	for i := range insts {
		s := shapes[i%len(shapes)]
		q := cq.MustParse(s.query)
		insts[i] = Instance{
			ID:    s.name,
			Query: q,
			DB:    datagen.Random(rng, q, s.domain, s.tuples, 0.2),
		}
	}
	return insts
}

// checkAgainstSequential asserts that each batch result matches what the
// sequential dispatcher computes for the same instance.
func checkAgainstSequential(t *testing.T, insts []Instance, results []BatchResult) {
	t.Helper()
	for i, r := range results {
		want, _, wantErr := resilience.Solve(insts[i].Query, insts[i].DB)
		if wantErr != nil {
			if r.Err != wantErr {
				t.Fatalf("instance %d (%s): engine err = %v, sequential err = %v", i, r.ID, r.Err, wantErr)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("instance %d (%s): engine failed: %v", i, r.ID, r.Err)
		}
		if r.Res.Rho != want.Rho {
			t.Fatalf("instance %d (%s): engine ρ = %d, sequential ρ = %d", i, r.ID, r.Res.Rho, want.Rho)
		}
		if len(r.Res.ContingencySet) > 0 {
			if err := resilience.VerifyContingency(insts[i].Query, insts[i].DB, r.Res.ContingencySet); err != nil {
				t.Fatalf("instance %d (%s): bad contingency set: %v", i, r.ID, err)
			}
		}
	}
}

func TestSolveBatchMatchesSequential(t *testing.T) {
	insts := mixedBatch(t, 50)
	e := New(Config{Workers: 4})
	results := e.SolveBatch(context.Background(), insts)
	if len(results) != len(insts) {
		t.Fatalf("got %d results for %d instances", len(results), len(insts))
	}
	checkAgainstSequential(t, insts, results)
	st := e.Stats()
	if st.Solved != int64(len(insts)) {
		t.Fatalf("Stats.Solved = %d, want %d", st.Solved, len(insts))
	}
	// Six query shapes across 50 instances: everything past the first
	// occurrence of each shape must hit the classification cache.
	if st.CacheMisses != 6 {
		t.Errorf("Stats.CacheMisses = %d, want 6", st.CacheMisses)
	}
	if st.CacheHits != int64(len(insts)-6) {
		t.Errorf("Stats.CacheHits = %d, want %d", st.CacheHits, len(insts)-6)
	}
}

func TestSolveBatchPortfolioMatchesSequential(t *testing.T) {
	insts := mixedBatch(t, 50)
	e := New(Config{Workers: 4, Portfolio: true})
	checkAgainstSequential(t, insts, e.SolveBatch(context.Background(), insts))
}

func TestSolveBatchSharedDatabase(t *testing.T) {
	// Many concurrent instances over one *db.Database: the defensive
	// clone must keep this race-free (the evaluator builds indexes
	// lazily, and some solvers delete and restore tuples).
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(7))
	shared := datagen.Random(rng, q, 8, 20, 0.2)
	insts := make([]Instance, 32)
	for i := range insts {
		insts[i] = Instance{Query: q, DB: shared}
	}
	e := New(Config{Workers: 8})
	results := e.SolveBatch(context.Background(), insts)
	want, _, err := resilience.Solve(q, shared)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("instance %d failed: %v", i, r.Err)
		}
		if r.Res.Rho != want.Rho {
			t.Fatalf("instance %d: ρ = %d, want %d", i, r.Res.Rho, want.Rho)
		}
	}
}

// slowExactInstance returns an NP-hard instance whose exact solve runs for
// much longer than the test's cancellation window (a dense random chain
// instance; see TestSolveBatchCancellation for how it is used).
func slowExactInstance(seed int64) Instance {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(seed))
	return Instance{ID: "slow", Query: q, DB: datagen.Random(rng, q, 30, 300, 0.3)}
}

func TestSolveBatchCancellation(t *testing.T) {
	// Instance 0 is trivial (solves in microseconds); the rest are slow
	// exact instances that saturate the workers. Cancelling mid-batch
	// must abort the running solves promptly, fail the queued remainder
	// fast, and keep the result that finished before the cancel.
	fast := cq.MustParse("qfast :- R(x,y), R(y,z)")
	fastDB := db.New()
	fastDB.AddNames("R", "1", "2")
	fastDB.AddNames("R", "2", "3")

	insts := []Instance{{ID: "fast", Query: fast, DB: fastDB}}
	for i := 0; i < 8; i++ {
		insts = append(insts, slowExactInstance(int64(100+i)))
	}

	e := New(Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan []BatchResult, 1)
	go func() { done <- e.SolveBatch(ctx, insts) }()
	time.Sleep(100 * time.Millisecond)
	cancel()

	select {
	case results := <-done:
		if results[0].Err != nil {
			t.Fatalf("trivial instance failed: %v", results[0].Err)
		}
		cancelled := 0
		for _, r := range results[1:] {
			if r.Err == context.Canceled {
				cancelled++
			}
		}
		if cancelled == 0 {
			t.Fatal("no instance observed the cancellation")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("SolveBatch did not return promptly after cancellation")
	}
}

func TestPerInstanceTimeout(t *testing.T) {
	e := New(Config{Workers: 2, Timeout: 30 * time.Millisecond})
	results := e.SolveBatch(context.Background(), []Instance{slowExactInstance(7)})
	if results[0].Err != context.DeadlineExceeded {
		t.Fatalf("err = %v (elapsed %v), want context.DeadlineExceeded", results[0].Err, results[0].Elapsed)
	}
	if e.Stats().Timeouts != 1 {
		t.Errorf("Stats.Timeouts = %d, want 1", e.Stats().Timeouts)
	}
}

func TestPortfolioAgreement(t *testing.T) {
	// Portfolio ρ must equal the exact solver's ρ on seeded random
	// NP-hard instances, whichever racer wins.
	shapes := []string{
		"qchain :- R(x,y), R(y,z)",
		"qvc :- R(x), S(x,y), R(y)",
		"qtriangle :- R(x,y), S(y,z), T(z,x)",
	}
	rng := rand.New(rand.NewSource(41))
	e := New(Config{Workers: 2, Portfolio: true})
	for round := 0; round < 8; round++ {
		for _, s := range shapes {
			q := cq.MustParse(s)
			d := datagen.Random(rng, q, 7, 15, 0.3)
			res, cl, err := e.Solve(context.Background(), q, d)
			want, wantErr := resilience.Exact(q, d)
			if wantErr != nil {
				if err != wantErr {
					t.Fatalf("%s: portfolio err = %v, exact err = %v", q.Name, err, wantErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: portfolio failed: %v", q.Name, err)
			}
			if res.Rho != want.Rho {
				t.Fatalf("%s (%s): portfolio ρ = %d (method %s), exact ρ = %d",
					q.Name, cl.Verdict, res.Rho, res.Method, want.Rho)
			}
		}
	}
	st := e.Stats()
	if st.PortfolioExactWins+st.PortfolioSATWins == 0 {
		t.Error("portfolio never raced: no wins recorded on NP-hard instances")
	}
}

func TestClassificationCacheIsomorphism(t *testing.T) {
	// Renaming variables and relations must still hit the cache: the key
	// is structural, confirmed by core.Isomorphic.
	e := New(Config{Workers: 1})
	a := cq.MustParse("qchain :- R(x,y), R(y,z)")
	b := cq.MustParse("qchain2 :- E(u,v), E(v,w)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	d2 := db.New()
	d2.AddNames("E", "1", "2")
	d2.AddNames("E", "2", "3")

	if res, _, err := e.Solve(context.Background(), a, d); err != nil {
		t.Fatal(err)
	} else if res.Rho != 1 {
		t.Fatalf("qchain ρ = %d, want 1", res.Rho)
	}
	// The cached classification is over relation R; solving the renamed
	// query must translate it onto E before dispatch, or the solver sees
	// an empty relation and reports ρ = 0.
	if res, cl, err := e.Solve(context.Background(), b, d2); err != nil {
		t.Fatal(err)
	} else if cl.Verdict != core.NPComplete {
		t.Fatalf("qchain variant classified %v, want NP-complete", cl.Verdict)
	} else if res.Rho != 1 {
		t.Fatalf("renamed qchain ρ = %d, want 1 (cache hit must translate relations)", res.Rho)
	}
	st := e.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("cache stats = %+v, want 1 miss then 1 hit for isomorphic queries", st)
	}
}

func TestSignatureZooDistinct(t *testing.T) {
	// The signature must be iso-invariant (same query, renamed, same
	// signature) and should separate most zoo shapes so buckets stay
	// small. Only soundness is required; this guards discriminating power.
	sigs := map[string][]string{}
	for _, e := range zoo.Queries() {
		s := signature(e.Query)
		sigs[s] = append(sigs[s], e.Name)
	}
	for s, names := range sigs {
		if len(names) > 3 {
			t.Errorf("signature %q shared by %d zoo queries %v; bucket too coarse", s, len(names), names)
		}
	}
}

func TestSolveBatchEmpty(t *testing.T) {
	e := New(Config{})
	if got := e.SolveBatch(context.Background(), nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}
