package engine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/resilience"
	"repro/internal/witset"
)

// TestPortfolioBuildsIROnce pins the enumerate-once contract: one portfolio
// race performs exactly one witness-hypergraph construction, shared by both
// racers (the old implementation enumerated witnesses twice, once per racer,
// on a defensively cloned database).
func TestPortfolioBuildsIROnce(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(21))
	d := datagen.Random(rng, q, 8, 18, 0.2)

	e := New(Config{Workers: 2, Portfolio: true})
	res, cl, err := e.Solve(context.Background(), q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho == 0 {
		t.Fatal("instance not satisfied; pick a seed that actually races")
	}
	if len(cl.Components) > 1 {
		t.Fatalf("expected a single-component query, got %d components", len(cl.Components))
	}
	st := e.Stats()
	if st.IRBuilds != 1 {
		t.Fatalf("Stats.IRBuilds = %d, want exactly 1 per portfolio race", st.IRBuilds)
	}
	if st.ComponentsSolved < 1 {
		t.Fatalf("Stats.ComponentsSolved = %d, want at least 1", st.ComponentsSolved)
	}
	if st.SolverRuns != 2*st.ComponentsSolved {
		t.Fatalf("Stats.SolverRuns = %d, want 2 per raced component (%d components)",
			st.SolverRuns, st.ComponentsSolved)
	}
	if st.PortfolioExactWins+st.PortfolioSATWins != st.ComponentsSolved {
		t.Fatalf("portfolio wins = %d exact + %d sat, want one per raced component (%d)",
			st.PortfolioExactWins, st.PortfolioSATWins, st.ComponentsSolved)
	}

	// More races on the same engine keep the invariant: IR builds count
	// races, solver runs count 2 per raced component.
	const extra = 5
	for i := 0; i < extra; i++ {
		d2 := datagen.Random(rng, q, 8, 18, 0.2)
		if _, _, err := e.Solve(context.Background(), q, d2); err != nil && err != resilience.ErrUnbreakable {
			t.Fatal(err)
		}
	}
	st = e.Stats()
	if st.IRBuilds != 1+extra {
		t.Fatalf("Stats.IRBuilds = %d after %d races, want %d", st.IRBuilds, 1+extra, 1+extra)
	}
	if st.SolverRuns != 2*st.ComponentsSolved {
		t.Fatalf("Stats.SolverRuns = %d, want 2×ComponentsSolved = %d: a racer re-enumerated",
			st.SolverRuns, 2*st.ComponentsSolved)
	}
}

// TestPortfolioSharedIRConcurrent hammers the shared-IR race path across a
// concurrent batch; under `go test -race` (the CI default) this is the
// regression guard for the IR's concurrent readers — both racers of every
// instance consume one witset.Instance, including its lazily derived
// families, with no database clone separating them.
func TestPortfolioSharedIRConcurrent(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	rng := rand.New(rand.NewSource(33))
	insts := make([]Instance, 24)
	for i := range insts {
		insts[i] = Instance{Query: q, DB: datagen.Random(rng, q, 7, 12, 0.2)}
	}
	e := New(Config{Workers: 8, Portfolio: true})
	results := e.SolveBatch(context.Background(), insts)
	for i, r := range results {
		if r.Err != nil && r.Err != resilience.ErrUnbreakable {
			t.Fatalf("instance %d failed: %v", i, r.Err)
		}
		if r.Err == nil {
			want, err := resilience.Exact(insts[i].Query, insts[i].DB)
			if err != nil {
				t.Fatalf("instance %d: exact failed: %v", i, err)
			}
			if r.Res.Rho != want.Rho {
				t.Fatalf("instance %d: portfolio ρ = %d, exact ρ = %d", i, r.Res.Rho, want.Rho)
			}
		}
	}
	st := e.Stats()
	if st.SolverRuns != 2*st.ComponentsSolved {
		t.Fatalf("SolverRuns = %d, want 2×ComponentsSolved = %d", st.SolverRuns, 2*st.ComponentsSolved)
	}
}

// TestSATFamilySearchMatchesExact pins the assumption-driven SAT binary
// search — one persistent clause database per component, budgets selected
// purely by assumptions — against the exact branch-and-bound on random
// component families. This is the racer-level differential for the
// incremental-solver rebase: if learned clauses ever leaked across budgets
// unsoundly, the searches would disagree here before any portfolio race
// noticed.
func TestSATFamilySearchMatchesExact(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(91))
	ctx := context.Background()
	checked := 0
	for round := 0; round < 12; round++ {
		d := datagen.ChainDB(rng, 8+round, 6)
		inst, err := witset.Build(ctx, q, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range inst.Components() {
			wantSize, _, err := resilience.SolveFamily(ctx, c.Fam, -1)
			if err != nil {
				t.Fatal(err)
			}
			gotSize, ids, err := satFamilySearch(ctx, c.Fam)
			if err != nil {
				t.Fatal(err)
			}
			if gotSize != wantSize {
				t.Fatalf("round %d: satFamilySearch = %d, exact = %d (N=%d rows=%d)",
					round, gotSize, wantSize, c.Fam.N, len(c.Fam.Rows))
			}
			if len(ids) != gotSize {
				t.Fatalf("round %d: satFamilySearch returned %d ids for size %d", round, len(ids), gotSize)
			}
			hit := make([]bool, c.Fam.N)
			for _, e := range ids {
				hit[e] = true
			}
			for _, row := range c.Fam.Rows {
				rowHit := false
				for _, e := range row {
					if hit[e] {
						rowHit = true
						break
					}
				}
				if !rowHit {
					t.Fatalf("round %d: satFamilySearch set misses row %v", round, row)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no component actually checked")
	}
}

// TestPortfolioManyComponents pins the component-parallel pipeline: on
// many-component heavy-tailed hypergraphs the portfolio must agree with the
// monolithic exact solver, race each component (2 solver runs per
// component), and record the kernel/component counters the serving layer
// surfaces.
func TestPortfolioManyComponents(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(57))
	e := New(Config{Workers: 2, Portfolio: true, ComponentWorkers: 3})
	solved := 0
	for round := 0; round < 5; round++ {
		d := datagen.ManyComponentChainDB(rng, 4+round, 3, 12)
		res, _, err := e.Solve(context.Background(), q, d)
		if err == resilience.ErrUnbreakable {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		want, err := resilience.ExactWithOptions(q, d, resilience.Options{Monolithic: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rho != want.Rho {
			t.Fatalf("round %d: portfolio ρ = %d (method %s), monolithic ρ = %d",
				round, res.Rho, res.Method, want.Rho)
		}
		if res.Rho > 0 {
			if err := resilience.VerifyContingency(q, d, res.ContingencySet); err != nil {
				t.Fatalf("round %d: portfolio contingency invalid: %v", round, err)
			}
		}
		solved++
	}
	if solved == 0 {
		t.Fatal("no instance actually solved")
	}
	st := e.Stats()
	if st.MultiComponentInstances == 0 {
		t.Error("Stats.MultiComponentInstances = 0, want > 0 on disjoint-cluster databases")
	}
	if st.ComponentsSolved < st.MultiComponentInstances*2 {
		t.Errorf("Stats.ComponentsSolved = %d inconsistent with %d multi-component instances",
			st.ComponentsSolved, st.MultiComponentInstances)
	}
	if st.SolverRuns != 2*st.ComponentsSolved {
		t.Errorf("Stats.SolverRuns = %d, want 2 per raced component (%d)", st.SolverRuns, st.ComponentsSolved)
	}
}
