package engine

import (
	"context"
	"sync"

	"repro/internal/cnfenc"
	"repro/internal/resilience"
	"repro/internal/witset"
)

// raceOnInstance attacks one NP-hard (or unclassified) instance through the
// kernel+decompose pipeline: the witness family is kernelized (unit-row
// forcing, dominated-tuple elimination), split into connected components,
// and each component is raced independently by two solvers on a bounded
// intra-instance worker pool — ρ is the forced-deletion count plus the sum
// of component minima. Small components mean exponentially smaller searches
// and smaller CNF counters, and independent components mean the races run
// in parallel instead of one monolithic search.
//
// Each component race pits two solvers against each other, cancelling the
// loser:
//
//   - exact branch-and-bound over the component's hitting-set family
//     (resilience.SolveFamily), strongest when the packing lower bound
//     prunes well;
//   - binary search on k over the CNF encoding of the component
//     (cnfenc.FamilyEncoder per probe), strongest when unit propagation
//     locks in forced deletions.
//
// The two racers dominate on different instance families, so a race is
// never slower than the better solver by more than scheduling noise, and
// is often dramatically faster than a fixed choice.
//
// The witness hypergraph comes in prebuilt (once per race, or shared
// across races by the engine's cross-request IR cache under NoClone) and
// is immutable (derived families, the kernel and the component split are
// sync.Once-guarded), so no racer touches the database and no defensive
// clone is needed. Unbreakability and the zero-witness case are properties
// of the IR and short-circuit in solveComponent before any racer starts.
func (e *Engine) raceOnInstance(ctx context.Context, inst *witset.Instance) (*resilience.Result, error) {
	kern := inst.Kernel()
	comps := e.noteKernel(kern)

	rho := len(kern.Forced)
	ids := append([]int32(nil), kern.Forced...)
	exactWins, satWins := 0, 0

	if len(comps) > 0 {
		rctx, cancel := context.WithCancel(ctx)
		defer cancel()

		type compOut struct {
			size int
			ids  []int32 // global ids
			sat  bool
			err  error
		}
		workers := e.componentWorkers()
		if workers > len(comps) {
			workers = len(comps)
		}
		idxCh := make(chan int)
		outCh := make(chan compOut, len(comps))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					c := comps[i]
					size, local, viaSAT, err := e.raceComponent(rctx, c.Fam)
					outCh <- compOut{size: size, ids: c.ToGlobal(local), sat: viaSAT, err: err}
				}
			}()
		}
		for i := range comps {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
		close(outCh)

		var firstErr error
		for out := range outCh {
			if out.err != nil {
				if firstErr == nil {
					firstErr = out.err
				}
				continue
			}
			rho += out.size
			ids = append(ids, out.ids...)
			if out.sat {
				satWins++
			} else {
				exactWins++
			}
		}
		if firstErr != nil {
			// Prefer the caller's cancellation cause over a racer's
			// propagated copy of it.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, firstErr
		}
		e.portfolioExactWins.Add(int64(exactWins))
		e.portfolioSATWins.Add(int64(satWins))
	}

	method := "portfolio/"
	switch {
	case len(comps) == 0:
		method += "kernel" // the kernel solved the instance outright
	case satWins == 0:
		method += "exact"
	case exactWins == 0:
		method += "sat-binary-search"
	default:
		method += "mixed"
	}
	res := &resilience.Result{Rho: rho, Method: method, Witnesses: inst.NumWitnesses()}
	if rho > 0 {
		res.ContingencySet = inst.TupleSet(ids)
	}
	return res, nil
}

// raceComponent races the exact branch-and-bound against SAT binary search
// on one component family, returning the minimum hitting set size, one
// optimal set of local element ids, and which racer finished first.
func (e *Engine) raceComponent(ctx context.Context, fam *witset.Family) (int, []int32, bool, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type racerOut struct {
		size int
		ids  []int32
		sat  bool
		err  error
	}
	ch := make(chan racerOut, 2)
	e.solverRuns.Add(2)
	go func() {
		size, ids, err := resilience.SolveFamily(rctx, fam, -1)
		ch <- racerOut{size: size, ids: ids, err: err}
	}()
	go func() {
		size, ids, err := satFamilySearch(rctx, fam)
		ch <- racerOut{size: size, ids: ids, sat: true, err: err}
	}()

	var firstErr error
	for i := 0; i < 2; i++ {
		out := <-ch
		if out.err == nil {
			cancel()
			// Drain the loser so both goroutines are done before return.
			if i == 0 {
				<-ch
			}
			return out.size, out.ids, out.sat, nil
		}
		if firstErr == nil {
			firstErr = out.err
		}
	}
	// Both racers failed (typically: the shared context was cancelled).
	if err := ctx.Err(); err != nil {
		return 0, nil, false, err
	}
	return 0, nil, false, firstErr
}

// satFamilySearch computes a component's minimum hitting set size by
// binary-searching the smallest k whose CNF encoding is satisfiable. The
// component's local universe bounds the search: deleting every element
// hits every row, so the minimum lies in [1, N] (component families are
// non-empty by construction).
func satFamilySearch(ctx context.Context, fam *witset.Family) (int, []int32, error) {
	lo, hi := 1, fam.N
	best := hi
	var ids []int32
	encoder := cnfenc.NewFamilyEncoder(fam)
	for lo <= hi {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		mid := lo + (hi-lo)/2
		// The row clauses are rendered once by the encoder; per probe only
		// the cardinality counter of the encoding changes.
		f := encoder.Encode(mid)
		assign, ok, err := f.SolveCtx(ctx)
		if err != nil {
			return 0, nil, err
		}
		if ok {
			best, ids = mid, encoder.Chosen(assign)
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, ids, nil
}
