package engine

import (
	"context"

	"repro/internal/cnfenc"
	"repro/internal/db"
	"repro/internal/resilience"
	"repro/internal/witset"
)

// raceOnInstance attacks one NP-hard (or unclassified) component with two
// independent solvers in parallel and returns whichever finishes first,
// cancelling the loser:
//
//   - exact branch-and-bound over the witness hitting sets
//     (resilience.ExactOnInstance), strongest when the packing lower bound
//     prunes well;
//   - binary search on k over the CNF encoding of RES(q, D, k)
//     (cnfenc.EncodeInstance per probe), strongest when unit propagation
//     locks in forced deletions.
//
// The two racers dominate on different instance families, so the race is
// never slower than the better solver by more than scheduling noise, and
// is often dramatically faster than a fixed choice.
//
// The witness hypergraph comes in prebuilt (once per race, or shared
// across races by the engine's cross-request IR cache under NoClone) and
// is immutable (derived families are sync.Once-guarded), so neither racer
// touches the database and no defensive clone is needed. Unbreakability
// and the zero-witness case are properties of the IR and short-circuit in
// solveComponent before any racer starts.
func (e *Engine) raceOnInstance(ctx context.Context, inst *witset.Instance) (*resilience.Result, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type racerOut struct {
		res *resilience.Result
		err error
		sat bool
	}
	ch := make(chan racerOut, 2)
	e.solverRuns.Add(2)
	go func() {
		res, err := resilience.ExactOnInstance(rctx, inst, -1)
		ch <- racerOut{res: res, err: err}
	}()
	go func() {
		res, err := satBinarySearch(rctx, inst)
		ch <- racerOut{res: res, err: err, sat: true}
	}()

	var firstErr error
	for i := 0; i < 2; i++ {
		out := <-ch
		if out.err == nil {
			cancel()
			if out.sat {
				e.portfolioSATWins.Add(1)
				out.res.Method = "portfolio/" + out.res.Method
			} else {
				e.portfolioExactWins.Add(1)
				out.res.Method = "portfolio/exact"
			}
			// Drain the loser so both goroutines are done before return.
			if i == 0 {
				<-ch
			}
			return out.res, nil
		}
		if firstErr == nil {
			firstErr = out.err
		}
	}
	// Both racers failed (typically: the shared context was cancelled).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, firstErr
}

// satBinarySearch computes ρ exactly by binary-searching the smallest k
// with (D, k) ∈ RES(q), deciding each membership query via the CNF
// encoding of the shared IR. The upper bound is the size of the IR's tuple
// universe: deleting every endogenous tuple occurring in a witness
// falsifies q, so ρ lies in [1, U] whenever q is satisfied and breakable.
func satBinarySearch(ctx context.Context, inst *witset.Instance) (*resilience.Result, error) {
	lo, hi := 1, inst.NumTuples()
	rho := hi
	var gamma []db.Tuple
	encoder := cnfenc.NewEncoder(inst)
	for lo <= hi {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mid := lo + (hi-lo)/2
		// Witnesses were enumerated once into the IR and their clauses
		// rendered once by the encoder; per probe only the cardinality
		// counter of the encoding changes.
		enc := encoder.Encode(mid)
		assign, ok, err := enc.Formula.SolveCtx(ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			rho, gamma = mid, enc.Gamma(assign)
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return &resilience.Result{
		Rho:            rho,
		ContingencySet: gamma,
		Method:         "sat-binary-search",
		Witnesses:      inst.NumWitnesses(),
	}, nil
}
