package engine

import (
	"context"

	"repro/internal/cnfenc"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/resilience"
)

// racePortfolio attacks one NP-hard (or unclassified) component with two
// independent solvers in parallel and returns whichever finishes first,
// cancelling the loser:
//
//   - exact branch-and-bound over witness hitting sets
//     (resilience.ExactCtx), strongest when the packing lower bound prunes
//     well;
//   - binary search on k over the CNF encoding of RES(q, D, k)
//     (cnfenc.DecideCtx), strongest when unit propagation locks in forced
//     deletions.
//
// The two racers dominate on different instance families, so the race is
// never slower than the better solver by more than scheduling noise, and
// is often dramatically faster than a fixed choice. The racers must not
// share a database — the evaluator builds relation indexes lazily, a
// write — so the SAT racer gets a clone of d and the exact racer keeps d
// itself (which solveInstance already privatized unless NoClone, whose
// contract gives this instance exclusive use of d anyway).
func (e *Engine) racePortfolio(ctx context.Context, q *cq.Query, d *db.Database) (*resilience.Result, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type racerOut struct {
		res *resilience.Result
		err error
		sat bool
	}
	satDB := d.Clone()
	ch := make(chan racerOut, 2)
	go func() {
		res, err := resilience.ExactCtx(rctx, q, d, -1)
		ch <- racerOut{res: res, err: err}
	}()
	go func() {
		res, err := satBinarySearch(rctx, q, satDB)
		ch <- racerOut{res: res, err: err, sat: true}
	}()

	var firstErr error
	for i := 0; i < 2; i++ {
		out := <-ch
		if out.err == nil {
			cancel()
			if out.sat {
				e.portfolioSATWins.Add(1)
				out.res.Method = "portfolio/" + out.res.Method
			} else {
				e.portfolioExactWins.Add(1)
				out.res.Method = "portfolio/exact"
			}
			// Drain the loser so both goroutines are done before return.
			if i == 0 {
				<-ch
			}
			return out.res, nil
		}
		if out.err == resilience.ErrUnbreakable || out.err == cnfenc.ErrUnbreakable {
			// Unbreakability is a property of (q, D), not of the solver:
			// the other racer can only confirm it.
			cancel()
			if i == 0 {
				<-ch
			}
			return nil, resilience.ErrUnbreakable
		}
		if firstErr == nil {
			firstErr = out.err
		}
	}
	// Both racers failed (typically: the shared context was cancelled).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, firstErr
}

// satBinarySearch computes ρ exactly by binary-searching the smallest k
// with (D, k) ∈ RES(q), deciding each membership query via the CNF
// encoding. The upper bound is the number of distinct endogenous tuples
// appearing in any witness: deleting all of them falsifies q, so ρ lies in
// [1, U] whenever q is satisfied and breakable.
func satBinarySearch(ctx context.Context, q *cq.Query, d *db.Database) (*resilience.Result, error) {
	sets, unbreakable := eval.EndoWitnessSets(q, d)
	if unbreakable {
		return nil, resilience.ErrUnbreakable
	}
	if len(sets) == 0 {
		return &resilience.Result{Rho: 0, Method: "sat-binary-search", Witnesses: 0}, nil
	}
	seen := map[db.Tuple]bool{}
	for _, s := range sets {
		for _, t := range s {
			seen[t] = true
		}
	}
	lo, hi := 1, len(seen)
	rho := hi
	var gamma []db.Tuple
	for lo <= hi {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mid := lo + (hi-lo)/2
		// Witnesses were enumerated once above; per probe only the
		// cardinality counter of the encoding changes.
		enc := cnfenc.EncodeSets(sets, mid)
		assign, ok, err := enc.Formula.SolveCtx(ctx)
		if err != nil {
			return nil, err
		}
		if ok {
			rho, gamma = mid, enc.Gamma(assign)
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return &resilience.Result{
		Rho:            rho,
		ContingencySet: gamma,
		Method:         "sat-binary-search",
		Witnesses:      len(sets),
	}, nil
}
