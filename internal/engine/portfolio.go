package engine

import (
	"context"
	"sync"

	"repro/internal/cnfenc"
	"repro/internal/db"
	"repro/internal/resilience"
	"repro/internal/witset"
)

// pipelineOnInstance attacks one NP-hard (or unclassified) instance
// through the decompose+kernel pipeline: the normalized witness family is
// first split into the connected components of its row-intersection graph,
// then each component is kernelized (unit-row forcing, dominated-tuple
// elimination) and solved independently on a bounded intra-instance worker
// pool — ρ is the sum over components of forced deletions plus kernel
// minima. Small components mean exponentially smaller searches and smaller
// CNF counters, and independent components mean the solves run in parallel
// instead of one monolithic search.
//
// Decomposing before kernelizing is sound because both kernelization rules
// are component-local: a unit row forces an element of its own component,
// and a dominating element must co-occur with the dominated one, so the
// union of per-component kernels is exactly the kernel of the whole
// family. The order matters for incremental solves: each raw component is
// looked up in the engine's component-result cache by content fingerprint
// (NoClone mode only) BEFORE any kernelization runs, so after a
// delta-maintained mutation the untouched components skip kernelize and
// solver alike and contribute their remembered minima for free — only the
// dirtied components pay for the pipeline. Cache hits do not touch the
// portfolio win counters (nothing raced) but carry their recorded winners
// into the method string and their recorded kernel counters into the
// stats, so a partially-cached solve reports the same method and
// comparable statistics to the all-fresh solve it shortcuts.
//
// With race set, each fresh kernel sub-component is raced by two solvers,
// cancelling the loser:
//
//   - exact branch-and-bound over the component's hitting-set family
//     (resilience.SolveFamily), strongest when the packing lower bound
//     prunes well;
//   - binary search on k over the CNF encoding of the component
//     (cnfenc.FamilyEncoder per probe), strongest when unit propagation
//     locks in forced deletions.
//
// The two racers dominate on different instance families, so a race is
// never slower than the better solver by more than scheduling noise, and
// is often dramatically faster than a fixed choice. Without race (the
// plain exact configuration), each fresh sub-component runs the exact
// solver alone and the method is reported as "exact".
//
// The witness hypergraph comes in prebuilt (once per solve, or shared
// across solves by the engine's cross-request IR cache under NoClone) and
// is immutable (the derived family and the component split are computed
// once and shared), so no solver touches the database and no defensive
// clone is needed. Unbreakability and the zero-witness case are properties
// of the IR and short-circuit in solveComponent before any solver starts.
func (e *Engine) pipelineOnInstance(ctx context.Context, inst *witset.Instance, race bool) (*resilience.Result, error) {
	comps := inst.Components()
	useCache := e.cfg.NoClone

	rho := 0
	var tuples []db.Tuple
	exactFlags, satFlags := 0, 0 // method reconstruction: all components
	totalSubs := 0               // kernel sub-components, cached ones included

	if len(comps) > 0 {
		rctx, cancel := context.WithCancel(ctx)
		defer cancel()

		workers := e.componentWorkers()
		if workers > len(comps) {
			workers = len(comps)
		}
		idxCh := make(chan int)
		outCh := make(chan compOut, len(comps))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					outCh <- e.solveRawComponent(rctx, inst, comps[i], race, useCache)
				}
			}()
		}
		for i := range comps {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
		close(outCh)

		var firstErr error
		for out := range outCh {
			if out.err != nil {
				if firstErr == nil {
					firstErr = out.err
				}
				continue
			}
			rho += out.size
			tuples = append(tuples, out.tuples...)
			totalSubs += out.subs
			e.kernelForced.Add(int64(out.forced))
			e.kernelDominated.Add(int64(out.dominated))
			if out.exact {
				exactFlags++
			}
			if out.sat {
				satFlags++
			}
			if race {
				e.portfolioExactWins.Add(int64(out.exactWins))
				e.portfolioSATWins.Add(int64(out.satWins))
			}
		}
		if firstErr != nil {
			// Prefer the caller's cancellation cause over a racer's
			// propagated copy of it.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, firstErr
		}
	}
	e.componentsSolved.Add(int64(totalSubs))
	if totalSubs > 1 {
		e.multiComponent.Add(1)
	}

	method := "exact"
	if race {
		method = "portfolio/"
		switch {
		case exactFlags == 0 && satFlags == 0:
			method += "kernel" // the kernels solved the instance outright
		case satFlags == 0:
			method += "exact"
		case exactFlags == 0:
			method += "sat-binary-search"
		default:
			method += "mixed"
		}
	}
	res := &resilience.Result{Rho: rho, Method: method, Witnesses: inst.NumWitnesses()}
	if rho > 0 {
		db.SortTuples(tuples)
		res.ContingencySet = tuples
	}
	return res, nil
}

// compOut is the outcome of one raw component: its contribution to ρ and
// the contingency set, which solver kinds contributed (for the method
// string), the portfolio win counts of the freshly raced sub-components,
// and the kernelization statistics (recorded from the cache entry on a
// hit, so stats are comparable either way).
type compOut struct {
	size      int
	tuples    []db.Tuple
	exact     bool
	sat       bool
	subs      int
	forced    int
	dominated int
	exactWins int
	satWins   int
	hit       bool
	err       error
}

// solveRawComponent answers one raw (un-kernelized) component: from the
// component cache when its content fingerprint is known, otherwise by
// kernelizing the component's family and solving each kernel sub-component
// — raced under race, plain exact otherwise. Fresh results are cached
// under the raw fingerprint so the next solve of an identical component
// (typically: the same component after a delta elsewhere in the database)
// skips both kernelization and solvers.
func (e *Engine) solveRawComponent(ctx context.Context, inst *witset.Instance, c *witset.Component, race, useCache bool) compOut {
	var key string
	if useCache {
		key = inst.ComponentKey(c)
		if ent, ok := e.comps.get(key); ok {
			return compOut{size: ent.rho, tuples: ent.tuples, exact: ent.exact, sat: ent.sat,
				subs: ent.subs, forced: ent.forced, dominated: ent.dominated, hit: true}
		}
	}
	kern, err := witset.KernelizeCtx(ctx, c.Fam)
	if err != nil {
		return compOut{err: err}
	}
	out := compOut{
		size:      len(kern.Forced),
		tuples:    inst.TupleSet(c.ToGlobal(kern.Forced)),
		forced:    len(kern.Forced),
		dominated: kern.Dominated,
	}
	subs := kern.Components()
	out.subs = len(subs)
	for _, sub := range subs {
		var (
			size   int
			local  []int32
			viaSAT bool
		)
		if race {
			size, local, viaSAT, err = e.raceComponent(ctx, sub.Fam)
		} else {
			e.solverRuns.Add(1)
			size, local, err = resilience.SolveFamily(ctx, sub.Fam, -1)
		}
		if err != nil {
			return compOut{err: err}
		}
		out.size += size
		// Solver ids are local to the sub-component's family; lift them
		// through the sub-component's and the raw component's remaps.
		out.tuples = append(out.tuples, inst.TupleSet(c.ToGlobal(sub.ToGlobal(local)))...)
		if viaSAT {
			out.sat = true
			out.satWins++
		} else {
			out.exact = true
			out.exactWins++
		}
	}
	if key != "" {
		e.comps.put(key, compEntry{rho: out.size, tuples: out.tuples, exact: out.exact, sat: out.sat,
			subs: out.subs, forced: out.forced, dominated: out.dominated})
	}
	return out
}

// raceComponent races the exact branch-and-bound against SAT binary search
// on one component family, returning the minimum hitting set size, one
// optimal set of local element ids, and which racer finished first.
func (e *Engine) raceComponent(ctx context.Context, fam *witset.Family) (int, []int32, bool, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type racerOut struct {
		size int
		ids  []int32
		sat  bool
		err  error
	}
	ch := make(chan racerOut, 2)
	e.solverRuns.Add(2)
	go func() {
		size, ids, err := resilience.SolveFamily(rctx, fam, -1)
		ch <- racerOut{size: size, ids: ids, err: err}
	}()
	go func() {
		size, ids, err := satFamilySearch(rctx, fam)
		ch <- racerOut{size: size, ids: ids, sat: true, err: err}
	}()

	var firstErr error
	for i := 0; i < 2; i++ {
		out := <-ch
		if out.err == nil {
			cancel()
			// Drain the loser so both goroutines are done before return.
			if i == 0 {
				<-ch
			}
			return out.size, out.ids, out.sat, nil
		}
		if firstErr == nil {
			firstErr = out.err
		}
	}
	// Both racers failed (typically: the shared context was cancelled).
	if err := ctx.Err(); err != nil {
		return 0, nil, false, err
	}
	return 0, nil, false, firstErr
}

// satFamilySearch computes a component's minimum hitting set size by
// binary-searching the smallest k whose CNF encoding is satisfiable. A
// greedy cover seeds the search: its size ub is an achievable incumbent, so
// the minimum lies in [1, ub] and the probes only ever ask budgets below
// ub — which also caps the incremental counter's register block at width
// ub instead of the whole universe, keeping the clause database near the
// size a single scratch encoding at the optimum would have been.
//
// The whole search runs against one persistent CDCL clause database
// (cnfenc.IncrementalSolver): the row clauses and the cardinality counter
// are loaded once, each probe is a SolveAssume call on the budget's gating
// literal, and the clauses learned while refuting one budget keep pruning
// every later probe — the incremental replacement for the old
// re-encode-and-resolve-from-scratch loop.
func satFamilySearch(ctx context.Context, fam *witset.Family) (int, []int32, error) {
	ids := witset.GreedyHittingSet(fam)
	best := len(ids)
	lo, hi := 1, best-1
	if lo > hi {
		return best, ids, nil
	}
	inc := cnfenc.NewIncrementalSolver(fam, hi)
	for lo <= hi {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		mid := lo + (hi-lo)/2
		assign, ok, err := inc.SolveBudget(ctx, mid)
		if err != nil {
			return 0, nil, err
		}
		if ok {
			best, ids = mid, inc.Chosen(assign)
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, ids, nil
}
