package engine

import (
	"context"
	"errors"
	"sync"

	"repro/internal/cnfenc"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/resilience"
	"repro/internal/witset"
)

// SolveWeightedInstance computes ρ_w over a (typically weighted) witness
// IR through the same decompose+kernel pipeline as the cardinality solver:
// components are kernelized with the weight-aware domination rule and
// solved independently on the intra-instance worker pool, with each kernel
// sub-component raced — weighted branch-and-bound against weighted SAT
// binary search — when the portfolio is enabled.
//
// Two deliberate differences from the cardinality pipeline:
//
//   - the component-result cache is skipped: its fingerprints hash only a
//     component's rows, and the same rows under a different weight vector
//     have a different minimum, so weighted results must never share
//     entries with (or poison) cardinality ones;
//   - the SAT racer can decline. The weighted counter's register block
//     grows with the budget in cost units, so a skewed weight vector can
//     push the encoding past cnfenc.MaxWeightedWidth — the racer then
//     reports ErrWidthTooLarge, which the race treats as "no contender"
//     rather than a failure, and the branch-and-bound side wins by default.
func (e *Engine) SolveWeightedInstance(ctx context.Context, inst *witset.Instance) (*resilience.WeightedResult, error) {
	if inst.Unbreakable() {
		return nil, resilience.ErrUnbreakable
	}
	race := e.cfg.Portfolio
	method := "weighted-exact"
	if race {
		method = "weighted-portfolio/"
	}
	if inst.NumWitnesses() == 0 {
		if race {
			method += "kernel"
		}
		return &resilience.WeightedResult{Cost: 0, Method: method, Witnesses: 0}, nil
	}

	comps := inst.Components()
	cost := int64(0)
	var tuples []db.Tuple
	exactFlags, satFlags := 0, 0
	totalSubs := 0

	if len(comps) > 0 {
		idxCh := make(chan int)
		outCh := make(chan weightedCompOut, len(comps))
		workers := e.componentWorkers()
		if workers > len(comps) {
			workers = len(comps)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					outCh <- e.solveWeightedComponent(ctx, inst, comps[i], race)
				}
			}()
		}
		for i := range comps {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
		close(outCh)

		var firstErr error
		for out := range outCh {
			if out.err != nil {
				if firstErr == nil {
					firstErr = out.err
				}
				continue
			}
			cost += out.cost
			tuples = append(tuples, out.tuples...)
			totalSubs += out.subs
			e.kernelForced.Add(int64(out.forced))
			e.kernelDominated.Add(int64(out.dominated))
			if out.exact {
				exactFlags++
			}
			if out.sat {
				satFlags++
			}
			if race {
				e.portfolioExactWins.Add(int64(out.exactWins))
				e.portfolioSATWins.Add(int64(out.satWins))
			}
		}
		if firstErr != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, firstErr
		}
	}
	e.componentsSolved.Add(int64(totalSubs))
	if totalSubs > 1 {
		e.multiComponent.Add(1)
	}

	if race {
		switch {
		case exactFlags == 0 && satFlags == 0:
			method += "kernel"
		case satFlags == 0:
			method += "exact"
		case exactFlags == 0:
			method += "sat-binary-search"
		default:
			method += "mixed"
		}
	}
	res := &resilience.WeightedResult{Cost: cost, Method: method, Witnesses: inst.NumWitnesses()}
	if cost > 0 {
		db.SortTuples(tuples)
		res.ContingencySet = tuples
	}
	return res, nil
}

type weightedCompOut struct {
	cost      int64
	tuples    []db.Tuple
	exact     bool
	sat       bool
	subs      int
	forced    int
	dominated int
	exactWins int
	satWins   int
	err       error
}

// solveWeightedComponent kernelizes one raw component (the domination rule
// is weight-aware when the family carries costs) and solves each kernel
// sub-component, raced under race, weighted branch-and-bound alone
// otherwise.
func (e *Engine) solveWeightedComponent(ctx context.Context, inst *witset.Instance, c *witset.Component, race bool) weightedCompOut {
	kern, err := witset.KernelizeCtx(ctx, c.Fam)
	if err != nil {
		return weightedCompOut{err: err}
	}
	out := weightedCompOut{
		tuples:    inst.TupleSet(c.ToGlobal(kern.Forced)),
		forced:    len(kern.Forced),
		dominated: kern.Dominated,
	}
	for _, id := range kern.Forced {
		out.cost += famWeight(c.Fam, id)
	}
	subs := kern.Components()
	out.subs = len(subs)
	for _, sub := range subs {
		var (
			size   int64
			local  []int32
			viaSAT bool
		)
		if race {
			size, local, viaSAT, err = e.raceWeightedComponent(ctx, sub.Fam)
		} else {
			e.solverRuns.Add(1)
			size, local, err = resilience.SolveFamilyWeighted(ctx, sub.Fam, -1)
		}
		if err != nil {
			return weightedCompOut{err: err}
		}
		out.cost += size
		out.tuples = append(out.tuples, inst.TupleSet(c.ToGlobal(sub.ToGlobal(local)))...)
		if viaSAT {
			out.sat = true
			out.satWins++
		} else {
			out.exact = true
			out.exactWins++
		}
	}
	return out
}

func famWeight(fam *witset.Family, id int32) int64 {
	if fam.W == nil {
		return 1
	}
	return fam.W[id]
}

// raceWeightedComponent races the weighted branch-and-bound against the
// weighted SAT binary search on one component family. A SAT racer that
// declines with ErrWidthTooLarge is not an error: the race keeps waiting
// for the exact side instead of cancelling it.
func (e *Engine) raceWeightedComponent(ctx context.Context, fam *witset.Family) (int64, []int32, bool, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type racerOut struct {
		cost int64
		ids  []int32
		sat  bool
		err  error
	}
	ch := make(chan racerOut, 2)
	e.solverRuns.Add(2)
	go func() {
		cost, ids, err := resilience.SolveFamilyWeighted(rctx, fam, -1)
		ch <- racerOut{cost: cost, ids: ids, err: err}
	}()
	go func() {
		cost, ids, err := weightedSATFamilySearch(rctx, fam)
		ch <- racerOut{cost: cost, ids: ids, sat: true, err: err}
	}()

	var firstErr error
	drained := 0
	for i := 0; i < 2; i++ {
		out := <-ch
		drained++
		if out.err == nil {
			cancel()
			// Drain the loser so both goroutines are done before return.
			for ; drained < 2; drained++ {
				<-ch
			}
			return out.cost, out.ids, out.sat, nil
		}
		if errors.Is(out.err, cnfenc.ErrWidthTooLarge) {
			continue // SAT declined the instance; let the exact side finish
		}
		if firstErr == nil {
			firstErr = out.err
		}
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, false, err
	}
	return 0, nil, false, firstErr
}

// weightedSATFamilySearch computes a component's minimum hitting-set cost
// by binary-searching the smallest satisfiable total-cost budget over one
// persistent weighted counter (cnfenc.WeightedIncrementalSolver).
//
// Costs are first normalized by the gcd of the occurring elements' weights:
// the encoding's register block is one register per cost unit, so dividing
// out a common factor shrinks the counter by that factor — and makes the
// search invariant under uniform weight scaling, probing the exact same
// budgets for w and c·w. The weighted greedy cover seeds the search as in
// the unit case; each satisfiable probe additionally tightens the incumbent
// to the model's true cost (a model at budget k may cost less than k),
// skipping the budgets in between. Returns ErrWidthTooLarge (wrapped) when
// even the normalized counter would exceed the width cap.
func weightedSATFamilySearch(ctx context.Context, fam *witset.Family) (int64, []int32, error) {
	if fam.W == nil {
		size, ids, err := satFamilySearch(ctx, fam)
		return int64(size), ids, err
	}
	// gcd over elements that occur in some row; absent elements are never
	// chosen, so their weights are irrelevant (set to 1 in the normalized
	// vector to keep it valid).
	g := int64(0)
	for e, occ := range fam.Occ {
		if len(occ) == 0 {
			continue
		}
		g = gcd64(g, fam.W[e])
	}
	if g == 0 {
		g = 1
	}
	nf := *fam
	nw := make([]int64, fam.N)
	for e := range nw {
		if len(fam.Occ[e]) == 0 {
			nw[e] = 1
		} else {
			nw[e] = fam.W[e] / g
		}
	}
	nf.W = nw

	ids := witset.GreedyHittingSetWeighted(&nf)
	best := int64(0)
	for _, e := range ids {
		best += nw[e]
	}
	lo, hi := int64(1), best-1
	if lo > hi {
		return best * g, ids, nil
	}
	inc, err := cnfenc.NewWeightedIncrementalSolver(&nf, hi)
	if err != nil {
		return 0, nil, err
	}
	for lo <= hi {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		mid := lo + (hi-lo)/2
		assign, ok, err := inc.SolveBudget(ctx, mid)
		if err != nil {
			return 0, nil, err
		}
		if ok {
			best, ids = inc.Cost(assign), inc.Chosen(assign)
			hi = best - 1
		} else {
			lo = mid + 1
		}
	}
	return best * g, ids, nil
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// TopKResponsibility ranks the k most responsible tuples of (q, d) off the
// engine's shared IR: the same cached instance that serves solve, enumerate
// and responsibility traffic backs the whole ranking, and the per-component
// minima inside it are solved once for all tuples.
func (e *Engine) TopKResponsibility(ctx context.Context, q *cq.Query, d *db.Database, k int) ([]resilience.RankedTuple, error) {
	inst, err := e.InstanceFor(ctx, q, d)
	if err != nil {
		return nil, err
	}
	return resilience.TopKResponsibilityOnInstance(ctx, inst, d, k)
}
