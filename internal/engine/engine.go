// Package engine is the concurrent solving service over the paper's
// resilience machinery: where repro.Resilience answers one (query,
// database) question at a time, the engine shards large batches across a
// worker pool, memoizes query classification across instances, enforces
// per-instance timeouts, and attacks NP-hard instances with a portfolio
// that races the exact branch-and-bound against SAT binary search.
//
// It is the scaffolding for scaling this reproduction into a service:
// every future sharding / async / multi-backend layer plugs into
// SolveBatch rather than into the individual solvers.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/resilience"
)

// Instance is one (query, database) resilience problem in a batch. ID is
// echoed in the corresponding BatchResult so callers can correlate without
// relying on ordering (results are, however, index-aligned with inputs).
type Instance struct {
	ID    string
	Query *cq.Query
	DB    *db.Database
}

// BatchResult is the outcome of one Instance.
type BatchResult struct {
	// ID and Index identify the input instance (Index into the slice
	// passed to SolveBatch).
	ID    string
	Index int
	// Res is the resilience result; nil when Err is non-nil.
	Res *resilience.Result
	// Classification is the (possibly cached) complexity verdict for the
	// instance's query. It is shared across instances of the same query
	// shape and must be treated as read-only.
	Classification *core.Classification
	// Err is resilience.ErrUnbreakable, a context error (cancelled /
	// deadline exceeded), or a solver error.
	Err error
	// Elapsed is the wall time spent on this instance.
	Elapsed time.Duration
	// CacheHit reports whether the classification came from the cache.
	CacheHit bool
}

// Config tunes an Engine. The zero value is usable: GOMAXPROCS workers, no
// per-instance timeout, portfolio off, defensive cloning on.
type Config struct {
	// Workers is the worker-pool size for SolveBatch; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Timeout, when positive, bounds the wall time of each instance; an
	// instance exceeding it fails with context.DeadlineExceeded while the
	// rest of the batch proceeds.
	Timeout time.Duration
	// Portfolio races the exact solver against SAT binary search on
	// NP-hard (and unclassified) instances, taking the first finisher.
	Portfolio bool
	// CacheSize caps the classification cache (0 = default 1024).
	CacheSize int
	// NoClone skips the defensive per-instance database clone. Lazy index
	// rebuilds are safe for concurrent readers (db.Relation guards them),
	// but some solvers temporarily delete tuples, so without cloning the
	// caller must guarantee that no two concurrent instances share a
	// *db.Database and must tolerate index-warming on the instances it
	// passed in.
	NoClone bool
}

// Engine is a reusable concurrent resilience solver. It is safe for use by
// multiple goroutines; the classification cache is shared across calls, so
// a long-lived Engine amortizes classification over its whole lifetime.
type Engine struct {
	cfg   Config
	cache *classCache

	solved             atomic.Int64
	timeouts           atomic.Int64
	portfolioExactWins atomic.Int64
	portfolioSATWins   atomic.Int64
	irBuilds           atomic.Int64
	solverRuns         atomic.Int64
}

// Stats is a snapshot of an Engine's counters.
type Stats struct {
	// Solved counts instances that produced a result or a definite
	// ErrUnbreakable (i.e. everything except context failures).
	Solved int64
	// Timeouts counts instances that hit the per-instance deadline.
	Timeouts int64
	// CacheHits / CacheMisses count classification cache outcomes.
	CacheHits   int64
	CacheMisses int64
	// PortfolioExactWins / PortfolioSATWins count which racer finished
	// first on portfolio-solved components.
	PortfolioExactWins int64
	PortfolioSATWins   int64
	// IRBuilds counts witness-hypergraph constructions performed by the
	// portfolio, and SolverRuns the solver invocations racing over them.
	// One race = one IR build + two solver runs: the enumerate-once
	// invariant is IRBuilds == races, not 2×.
	IRBuilds   int64
	SolverRuns int64
}

// New returns an Engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg, cache: newClassCache(cfg.CacheSize)}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	hits, misses := e.cache.stats()
	return Stats{
		Solved:             e.solved.Load(),
		Timeouts:           e.timeouts.Load(),
		CacheHits:          hits,
		CacheMisses:        misses,
		PortfolioExactWins: e.portfolioExactWins.Load(),
		PortfolioSATWins:   e.portfolioSATWins.Load(),
		IRBuilds:           e.irBuilds.Load(),
		SolverRuns:         e.solverRuns.Load(),
	}
}

func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// SolveBatch solves every instance concurrently on the engine's worker
// pool and returns results index-aligned with insts. It always returns a
// full-length slice: when ctx is cancelled mid-batch, instances already
// finished keep their results and the remainder fail fast with ctx.Err(),
// so callers get the partial work that was done rather than losing the
// batch.
func (e *Engine) SolveBatch(ctx context.Context, insts []Instance) []BatchResult {
	out := make([]BatchResult, len(insts))
	if len(insts) == 0 {
		return out
	}
	workers := e.workers()
	if workers > len(insts) {
		workers = len(insts)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.solveInstance(ctx, i, insts[i])
			}
		}()
	}
	for i := range insts {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Solve answers a single instance through the engine (classification
// cache, optional timeout and portfolio). It is repro.Resilience with the
// engine's machinery behind it.
func (e *Engine) Solve(ctx context.Context, q *cq.Query, d *db.Database) (*resilience.Result, *core.Classification, error) {
	r := e.solveInstance(ctx, 0, Instance{Query: q, DB: d})
	return r.Res, r.Classification, r.Err
}

func (e *Engine) solveInstance(ctx context.Context, i int, inst Instance) BatchResult {
	start := time.Now()
	br := BatchResult{ID: inst.ID, Index: i}
	if err := ctx.Err(); err != nil {
		// Batch cancelled before this instance started: fail fast so the
		// caller gets partial results promptly.
		br.Err = err
		return br
	}
	ictx := ctx
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ictx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	br.Classification, br.CacheHit = e.cache.classify(inst.Query)
	d := inst.DB
	if !e.cfg.NoClone {
		d = d.Clone()
	}
	br.Res, br.Err = e.solveClassified(ictx, br.Classification, d)
	br.Elapsed = time.Since(start)
	switch br.Err {
	case nil, resilience.ErrUnbreakable:
		e.solved.Add(1)
	case context.DeadlineExceeded:
		e.timeouts.Add(1)
	}
	return br
}

// solveClassified is resilience.SolveClassifiedWith (the Lemma 14 minimum
// over connected components) with the engine's component solver, which
// routes exact-solver components through the portfolio when enabled.
func (e *Engine) solveClassified(ctx context.Context, cl *core.Classification, d *db.Database) (*resilience.Result, error) {
	return resilience.SolveClassifiedWith(ctx, cl, d, e.solveComponent)
}

func (e *Engine) solveComponent(ctx context.Context, cl *core.Classification, d *db.Database) (*resilience.Result, error) {
	if e.cfg.Portfolio && cl.Algorithm == core.AlgExact {
		return e.racePortfolio(ctx, cl.Normalized, d)
	}
	return resilience.SolveClassifiedCtx(ctx, cl, d)
}
