package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/resilience"
	"repro/internal/witset"
)

// Instance is one (query, database) resilience problem in a batch. ID is
// echoed in the corresponding BatchResult so callers can correlate without
// relying on ordering (results are, however, index-aligned with inputs).
type Instance struct {
	ID    string
	Query *cq.Query
	DB    *db.Database
}

// BatchResult is the outcome of one Instance.
type BatchResult struct {
	// ID and Index identify the input instance (Index into the slice
	// passed to SolveBatch).
	ID    string
	Index int
	// Res is the resilience result; nil when Err is non-nil.
	Res *resilience.Result
	// Classification is the (possibly cached) complexity verdict for the
	// instance's query. It is shared across instances of the same query
	// shape and must be treated as read-only.
	Classification *core.Classification
	// Err is resilience.ErrUnbreakable, a context error (cancelled /
	// deadline exceeded), or a solver error.
	Err error
	// Elapsed is the wall time spent on this instance.
	Elapsed time.Duration
	// CacheHit reports whether the classification came from the cache.
	CacheHit bool
}

// Config tunes an Engine. The zero value is usable: GOMAXPROCS workers, no
// per-instance timeout, portfolio off, defensive cloning on.
type Config struct {
	// Workers is the worker-pool size for SolveBatch; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Timeout, when positive, bounds the wall time of each instance; an
	// instance exceeding it fails with context.DeadlineExceeded while the
	// rest of the batch proceeds.
	Timeout time.Duration
	// Portfolio races the exact solver against SAT binary search on
	// NP-hard (and unclassified) instances, taking the first finisher.
	// Instances go through the kernel+decompose pipeline first, and each
	// connected component of the witness hypergraph is raced independently.
	Portfolio bool
	// BuildWorkers bounds the sharded witness-enumeration pool used when
	// the engine constructs a witness IR (witset.BuildWith): the first join
	// step's candidate tuples are partitioned across this many goroutines,
	// with a deterministic merge keeping the result identical to a
	// sequential build. <= 0 means min(4, GOMAXPROCS); 1 forces sequential
	// builds.
	BuildWorkers int
	// ComponentWorkers bounds the intra-instance worker pool that solves
	// the connected components of one instance's witness hypergraph in
	// parallel on the portfolio path. <= 0 means min(4, GOMAXPROCS), a
	// deliberately small default because SolveBatch already parallelizes
	// across instances. Each in-flight component additionally runs its two
	// racer goroutines.
	ComponentWorkers int
	// CacheSize caps the classification cache (0 = default 1024).
	CacheSize int
	// IRCacheSize caps the cross-request witness-IR cache (0 = default
	// 256). The IR cache is only consulted under NoClone, because cloning
	// gives every instance a fresh database identity that can never hit.
	IRCacheSize int
	// CompCacheSize caps the component-result cache (0 = default 4096),
	// which remembers solved kernel components by content fingerprint so
	// delta-maintained mutations re-solve only the components they dirtied.
	// Like the IR cache it is only consulted under NoClone.
	CompCacheSize int
	// NoClone skips the defensive per-instance database clone. It is the
	// serving-layer mode: callers pass long-lived (typically frozen)
	// databases, which makes the cross-request IR cache effective — the
	// cache keys on database identity and version, so it needs the caller's
	// own *db.Database, not a per-instance copy. The engine itself clones
	// around the one PTIME solver that temporarily deletes tuples
	// (AlgPerm3Flow), so under NoClone the caller's databases are never
	// mutated; the caller must still tolerate index-warming (Freeze) on
	// the databases it passes in, and must not mutate them concurrently
	// with in-flight solves.
	NoClone bool
}

// Engine is a reusable concurrent resilience solver. It is safe for use by
// multiple goroutines; the classification cache is shared across calls, so
// a long-lived Engine amortizes classification over its whole lifetime.
type Engine struct {
	cfg   Config
	cache *classCache
	irs   *irCache
	comps *compCache

	solved             atomic.Int64
	timeouts           atomic.Int64
	portfolioExactWins atomic.Int64
	portfolioSATWins   atomic.Int64
	irBuilds           atomic.Int64
	irBuildNs          atomic.Int64
	parallelIRBuilds   atomic.Int64
	irBuildShards      atomic.Int64
	solverRuns         atomic.Int64
	kernelForced       atomic.Int64
	kernelDominated    atomic.Int64
	componentsSolved   atomic.Int64
	multiComponent     atomic.Int64
	irMigrations       atomic.Int64
}

// Stats is a snapshot of an Engine's counters.
type Stats struct {
	// Solved counts instances that produced a result or a definite
	// ErrUnbreakable (i.e. everything except context failures).
	Solved int64
	// Timeouts counts instances that hit the per-instance deadline.
	Timeouts int64
	// CacheHits / CacheMisses count classification cache outcomes.
	CacheHits   int64
	CacheMisses int64
	// PortfolioExactWins / PortfolioSATWins count which racer finished
	// first on portfolio-solved components.
	PortfolioExactWins int64
	PortfolioSATWins   int64
	// IRBuilds counts witness-hypergraph constructions actually performed
	// for exact-path components, and SolverRuns the solver invocations over
	// them. One portfolio-raced hypergraph component = two solver runs (the
	// enumerate-once invariant is IRBuilds == instances raced, not one per
	// run: SolverRuns == 2×ComponentsSolved on a pure portfolio workload);
	// without the portfolio each solved component is one run. Under
	// NoClone, IR-cache hits reuse an earlier build, so IRBuilds counts
	// misses only, and component-cache hits skip solver runs entirely.
	IRBuilds   int64
	SolverRuns int64
	// IRBuildNs is the cumulative wall time spent constructing witness IRs
	// (the polynomial enumeration side), in nanoseconds. With IRBuilds it
	// gives the average build latency the join planner and the sharded
	// enumeration are optimising.
	IRBuildNs int64
	// ParallelIRBuilds counts the IR constructions that ran sharded
	// (more than one enumeration worker), and IRBuildShards the total
	// shards across them — IRBuildShards/ParallelIRBuilds is the average
	// effective fan-out, which drops below Config.BuildWorkers when first-
	// step candidate lists are too short to split.
	ParallelIRBuilds int64
	IRBuildShards    int64
	// IRMigrations counts cached IRs carried across a database mutation by
	// delta maintenance (Engine.MigrateIRs) instead of being rebuilt from
	// scratch on the next request.
	IRMigrations int64
	// KernelForcedTuples / KernelDominatedTuples count the work done by the
	// instance-level kernelization on exact-path solves: tuples forced into
	// every minimum contingency set by unit witnesses, and tuples dropped
	// because a co-occurring tuple hits a superset of their witnesses.
	KernelForcedTuples    int64
	KernelDominatedTuples int64
	// ComponentsSolved counts connected components of witness hypergraphs
	// solved on the exact path, and MultiComponentInstances the instances
	// whose hypergraph split into more than one component (the instances
	// where the decompose pipeline turns one big search into several small
	// parallel ones).
	ComponentsSolved        int64
	MultiComponentInstances int64
	// IRCacheHits / IRCacheMisses count cross-request IR cache outcomes
	// (always zero unless Config.NoClone enables the cache). A concurrent
	// burst of identical requests counts one miss (the elected builder) and
	// a hit per waiter.
	IRCacheHits   int64
	IRCacheMisses int64
	// CompCacheHits / CompCacheMisses count component-result cache
	// outcomes (always zero unless Config.NoClone enables the cache). A
	// hit means a kernel component was answered from a previous solve —
	// after a mutation, hits are exactly the components the delta did not
	// dirty.
	CompCacheHits   int64
	CompCacheMisses int64
}

// New returns an Engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:   cfg,
		cache: newClassCache(cfg.CacheSize),
		irs:   newIRCache(cfg.IRCacheSize),
		comps: newCompCache(cfg.CompCacheSize),
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	hits, misses := e.cache.stats()
	irHits, irMisses := e.irs.stats()
	compHits, compMisses := e.comps.stats()
	return Stats{
		Solved:             e.solved.Load(),
		Timeouts:           e.timeouts.Load(),
		CacheHits:          hits,
		CacheMisses:        misses,
		PortfolioExactWins: e.portfolioExactWins.Load(),
		PortfolioSATWins:   e.portfolioSATWins.Load(),
		IRBuilds:           e.irBuilds.Load(),
		SolverRuns:         e.solverRuns.Load(),
		IRBuildNs:          e.irBuildNs.Load(),
		ParallelIRBuilds:   e.parallelIRBuilds.Load(),
		IRBuildShards:      e.irBuildShards.Load(),
		IRMigrations:       e.irMigrations.Load(),
		IRCacheHits:        irHits,
		IRCacheMisses:      irMisses,
		CompCacheHits:      compHits,
		CompCacheMisses:    compMisses,

		KernelForcedTuples:      e.kernelForced.Load(),
		KernelDominatedTuples:   e.kernelDominated.Load(),
		ComponentsSolved:        e.componentsSolved.Load(),
		MultiComponentInstances: e.multiComponent.Load(),
	}
}

// Workers reports the effective worker-pool size (Config.Workers, or
// GOMAXPROCS when unset). Callers that fan work out around the engine —
// the Session's task batches — size their pools to match.
func (e *Engine) Workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) componentWorkers() int {
	if e.cfg.ComponentWorkers > 0 {
		return e.cfg.ComponentWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	return w
}

func (e *Engine) buildWorkers() int {
	if e.cfg.BuildWorkers > 0 {
		return e.cfg.BuildWorkers
	}
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	return w
}

// SolveBatch solves every instance concurrently on the engine's worker
// pool and returns results index-aligned with insts. It always returns a
// full-length slice: when ctx is cancelled mid-batch, instances already
// finished keep their results and the remainder fail fast with ctx.Err(),
// so callers get the partial work that was done rather than losing the
// batch.
func (e *Engine) SolveBatch(ctx context.Context, insts []Instance) []BatchResult {
	out := make([]BatchResult, len(insts))
	if len(insts) == 0 {
		return out
	}
	workers := e.Workers()
	if workers > len(insts) {
		workers = len(insts)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.solveInstance(ctx, i, insts[i])
			}
		}()
	}
	for i := range insts {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Solve answers a single instance through the engine (classification
// cache, optional timeout and portfolio). It is repro.Resilience with the
// engine's machinery behind it.
func (e *Engine) Solve(ctx context.Context, q *cq.Query, d *db.Database) (*resilience.Result, *core.Classification, error) {
	r := e.SolveOne(ctx, Instance{Query: q, DB: d})
	return r.Res, r.Classification, r.Err
}

// SolveOne answers a single instance and returns the full BatchResult —
// including CacheHit and Elapsed — which is what per-request callers like
// the HTTP serving layer report back to clients.
func (e *Engine) SolveOne(ctx context.Context, inst Instance) BatchResult {
	return e.solveInstance(ctx, 0, inst)
}

func (e *Engine) solveInstance(ctx context.Context, i int, inst Instance) BatchResult {
	start := time.Now()
	br := BatchResult{ID: inst.ID, Index: i}
	if err := ctx.Err(); err != nil {
		// Batch cancelled before this instance started: fail fast so the
		// caller gets partial results promptly.
		br.Err = err
		return br
	}
	ictx := ctx
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ictx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	br.Classification, br.CacheHit = e.cache.classify(inst.Query)
	d := inst.DB
	if !e.cfg.NoClone {
		d = d.Clone()
	}
	br.Res, br.Err = e.solveClassified(ictx, br.Classification, d)
	br.Elapsed = time.Since(start)
	switch br.Err {
	case nil, resilience.ErrUnbreakable:
		e.solved.Add(1)
	case context.DeadlineExceeded:
		e.timeouts.Add(1)
	}
	return br
}

// solveClassified is resilience.SolveClassifiedWith (the Lemma 14 minimum
// over connected components) with the engine's component solver, which
// routes exact-solver components through the portfolio when enabled.
func (e *Engine) solveClassified(ctx context.Context, cl *core.Classification, d *db.Database) (*resilience.Result, error) {
	return resilience.SolveClassifiedWith(ctx, cl, d, e.solveComponent)
}

func (e *Engine) solveComponent(ctx context.Context, cl *core.Classification, d *db.Database) (*resilience.Result, error) {
	if cl.Algorithm == core.AlgExact {
		inst, err := e.InstanceFor(ctx, cl.Normalized, d)
		if err != nil {
			return nil, err
		}
		method := "exact"
		if e.cfg.Portfolio {
			method = "portfolio/exact"
		}
		if inst.Unbreakable() {
			return nil, resilience.ErrUnbreakable
		}
		if inst.NumWitnesses() == 0 {
			return &resilience.Result{Rho: 0, Method: method, Witnesses: 0}, nil
		}
		return e.pipelineOnInstance(ctx, inst, e.cfg.Portfolio)
	}
	if e.cfg.NoClone && cl.Algorithm == core.AlgPerm3Flow {
		// The one PTIME solver that temporarily deletes tuples. Under
		// NoClone the database may be shared by concurrent requests, so
		// give this solver a private copy and keep the caller's pristine.
		d = d.Clone()
	}
	return resilience.SolveClassifiedCtx(ctx, cl, d)
}

// ForgetDatabase drops every cached IR built from d. Callers that retire
// a long-lived database (the serving layer deleting or replacing a
// registry entry) call this so the cache does not pin dead witness
// families until the capacity cap locks the cache up.
func (e *Engine) ForgetDatabase(d *db.Database) { e.irs.evictUID(d.UID()) }

// InstanceFor returns the witness-hypergraph IR for (q, d), consulting the
// engine's cross-request IR cache when the configuration permits (NoClone:
// the cache keys on database identity + version, which only makes sense
// for caller-owned long-lived databases). The returned instance is
// immutable and shared; callers must treat it as read-only.
//
// The serving layer uses this for endpoints that consume the IR directly
// (enumerate-minimum, responsibility), so one enumeration serves solve,
// enumerate and responsibility traffic alike.
func (e *Engine) InstanceFor(ctx context.Context, q *cq.Query, d *db.Database) (*witset.Instance, error) {
	build := func() (*witset.Instance, error) {
		start := time.Now()
		inst, info, err := witset.BuildWith(ctx, q, d, witset.BuildOptions{Workers: e.buildWorkers()})
		if err == nil {
			e.irBuilds.Add(1)
			e.irBuildNs.Add(time.Since(start).Nanoseconds())
			if info.Shards > 1 {
				e.parallelIRBuilds.Add(1)
				e.irBuildShards.Add(int64(info.Shards))
			}
		}
		return inst, err
	}
	if !e.cfg.NoClone {
		return build()
	}
	return e.irs.get(ctx, q, d, build)
}

// PeekInstance returns the cached IR for (q, d) if one is ready, without
// building anything. The watch surface uses this to diff component
// fingerprints across versions; a nil return just means no diff is
// available. Always nil unless NoClone enables the IR cache.
func (e *Engine) PeekInstance(q *cq.Query, d *db.Database) *witset.Instance {
	if !e.cfg.NoClone {
		return nil
	}
	return e.irs.peek(q, d)
}

// MigrateIRs carries every cached IR of the old database over to the new
// one by delta maintenance: instead of invalidating the IRs (the version
// bump already makes them unreachable) and re-enumerating the full witness
// join on the next request, each IR is patched with the witnesses the
// mutation batch touched — a semi-join against the delta — and re-cached
// under the new database's identity. Combined with the component-result
// cache, the next solve then re-runs solvers only on the components the
// mutations dirtied.
//
// old must be the pre-batch database the IRs were built against, new the
// post-batch database (typically a mutated clone of old), and muts the
// batch that takes old to new, with tuples resolved against new's
// interner. IRs that cannot be delta-maintained (unbreakable, or built
// differently than Build would) are skipped and simply rebuilt from
// scratch on demand. Returns the number of IRs migrated. No-op unless
// NoClone enables the IR cache.
func (e *Engine) MigrateIRs(ctx context.Context, old, new *db.Database, muts []witset.Mutation) int {
	if !e.cfg.NoClone || len(muts) == 0 {
		return 0
	}
	migrated := 0
	for _, en := range e.irs.entriesFor(old.UID(), old.Version()) {
		if ctx.Err() != nil {
			break
		}
		// Each migration needs a private pre-batch database to replay the
		// batch against, with an interner covering any constants the batch
		// introduced (clone interners share old's prefix; new appended).
		work := old.Clone()
		for v := work.NumConsts(); v < new.NumConsts(); v++ {
			work.Const(new.ConstName(db.Value(v)))
		}
		inst, _, err := witset.ApplyDelta(ctx, en.inst, work, muts)
		if err != nil {
			continue
		}
		if e.irs.put(en.q, new.UID(), new.Version(), inst) {
			e.irMigrations.Add(1)
			migrated++
		}
	}
	return migrated
}
