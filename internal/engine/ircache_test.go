package engine

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/resilience"
)

// TestIRCacheSharedAcrossRequests pins the serving-layer invariant: under
// NoClone, concurrent solves of the same (query class, database version)
// build the witness IR exactly once and everyone else reuses it.
func TestIRCacheSharedAcrossRequests(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(7))
	d := datagen.Random(rng, q, 8, 18, 0.2)
	d.Freeze()

	e := New(Config{Workers: 8, Portfolio: true, NoClone: true})

	const requests = 64
	var wg sync.WaitGroup
	rhos := make([]int, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := e.Solve(context.Background(), q, d)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			rhos[i] = res.Rho
		}(i)
	}
	wg.Wait()
	for i := 1; i < requests; i++ {
		if rhos[i] != rhos[0] {
			t.Fatalf("request %d: ρ = %d, others got %d", i, rhos[i], rhos[0])
		}
	}

	st := e.Stats()
	if st.IRBuilds != 1 {
		t.Fatalf("Stats.IRBuilds = %d, want 1: the IR cache should dedupe %d identical requests", st.IRBuilds, requests)
	}
	if st.IRCacheMisses != 1 {
		t.Fatalf("Stats.IRCacheMisses = %d, want 1", st.IRCacheMisses)
	}
	if st.IRCacheHits != requests-1 {
		t.Fatalf("Stats.IRCacheHits = %d, want %d", st.IRCacheHits, requests-1)
	}
}

// TestIRCacheInvalidatedByMutation checks the versioned key: mutating the
// database bumps its version, so the next request rebuilds rather than
// serving a stale IR.
func TestIRCacheInvalidatedByMutation(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := datagen.ChainDB(rand.New(rand.NewSource(3)), 8, 0)

	e := New(Config{Workers: 2, NoClone: true})
	first, _, err := e.Solve(context.Background(), q, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Solve(context.Background(), q, d); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.IRBuilds != 1 || st.IRCacheHits != 1 {
		t.Fatalf("before mutation: IRBuilds = %d, IRCacheHits = %d, want 1 and 1", st.IRBuilds, st.IRCacheHits)
	}

	// A new edge extends the chain: more witnesses, larger ρ. A stale IR
	// would reproduce the old answer.
	d.AddNames("R", "c7", "c8")
	second, _, err := e.Solve(context.Background(), q, d)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.IRBuilds != 2 {
		t.Fatalf("after mutation: IRBuilds = %d, want 2 (version bump must invalidate)", st.IRBuilds)
	}
	if second.Rho <= first.Rho {
		t.Fatalf("ρ after extending the chain = %d, want > %d", second.Rho, first.Rho)
	}
}

// TestIRCacheKeyedByQueryClass checks that alpha-equivalent queries share
// an entry while differently-named relations do not.
func TestIRCacheKeyedByQueryClass(t *testing.T) {
	d := datagen.ChainDB(rand.New(rand.NewSource(5)), 10, 4)
	d.AddNames("S", "c0", "c1") // so the S-query is satisfiable too
	d.AddNames("S", "c1", "c2")
	d.Freeze()

	e := New(Config{Workers: 2, NoClone: true})
	solve := func(text string) {
		t.Helper()
		q := cq.MustParse(text)
		if _, _, err := e.Solve(context.Background(), q, d); err != nil && err != resilience.ErrUnbreakable {
			t.Fatalf("%s: %v", text, err)
		}
	}
	solve("q1 :- R(x,y), R(y,z)")
	solve("q2 :- R(a,b), R(b,c)") // alpha-equivalent: cache hit
	solve("q3 :- S(x,y), S(y,z)") // same shape, different relation: miss
	st := e.Stats()
	if st.IRBuilds != 2 {
		t.Fatalf("IRBuilds = %d, want 2 (one per distinct relation vocabulary)", st.IRBuilds)
	}
	if st.IRCacheHits != 1 {
		t.Fatalf("IRCacheHits = %d, want 1 (the alpha-renamed query)", st.IRCacheHits)
	}
}

// TestNoClonePerm3FlowKeepsDatabasePristine: AlgPerm3Flow temporarily
// deletes tuples; under NoClone the engine must clone around it so shared
// databases are never mutated, even by concurrent requests (the race
// detector watches this test).
func TestNoClonePerm3FlowKeepsDatabasePristine(t *testing.T) {
	q := cq.MustParse("qA3permR :- A(x), R(x,y), R(y,z), R(z,y)")
	rng := rand.New(rand.NewSource(11))
	d := datagen.PermDB(rng, 12, 3, 10, "A")
	d.Freeze()
	before := d.Len()
	version := d.Version()

	e := New(Config{Workers: 4, NoClone: true})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.Solve(context.Background(), q, d); err != nil && err != resilience.ErrUnbreakable {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if d.Len() != before || d.Version() != version {
		t.Fatalf("shared database mutated: len %d→%d, version %d→%d", before, d.Len(), version, d.Version())
	}
}
