// Package engine is the concurrent solving service over the paper's
// resilience machinery: where repro.Resilience answers one (query,
// database) question at a time, the engine shards large batches across a
// worker pool, memoizes query classification across instances, enforces
// per-instance timeouts, attacks NP-hard instances with a portfolio that
// races the exact branch-and-bound against SAT binary search, and — under
// NoClone — shares witness-hypergraph IRs across requests through a
// versioned cache.
//
// It is the scaffolding for scaling this reproduction into a service: the
// HTTP serving layer (internal/server) runs one long-lived Engine and
// plugs every request into Solve/SolveOne/SolveBatch rather than into the
// individual solvers.
//
// # Key invariants
//
//   - Caches only ever return equivalent answers: the classification
//     cache is keyed by query structure up to isomorphism (a hit on a
//     renamed vocabulary is translated back onto the request's relation
//     names), and the IR cache additionally requires identical relation
//     names and an identical (database UID, version) pair, because an IR
//     holds concrete tuples of a concrete database state.
//   - Enumerate-once: an exact-path component performs at most one
//     witness enumeration — one IR build per portfolio race, shared by
//     both racers, and at most one build per (query class, database
//     version) across requests when NoClone enables the IR cache
//     (Stats.IRBuilds counts actual builds; TestPortfolioBuildsIROnce
//     and TestIRCacheSharedAcrossRequests pin this).
//   - Caller databases are never mutated: with cloning on, every
//     instance solves against a private copy; under NoClone, the one
//     PTIME solver that temporarily deletes tuples (AlgPerm3Flow) gets a
//     private clone and everything else reads only.
//   - Cancellation is prompt and partial results survive: SolveBatch
//     always returns a full-length, index-aligned slice; instances
//     finished before ctx was cancelled keep their results, the rest
//     fail fast with ctx.Err().
package engine
