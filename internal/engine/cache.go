package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cq"
)

// classCache memoizes core.Classify results keyed by query structure up to
// isomorphism. Classification is pure query analysis (minimization,
// domination normalization, dichotomy pattern matching) and is repeated
// verbatim for every instance of the same query shape in a batch, so a
// small cache removes it from the hot path entirely.
//
// The key is a two-level scheme: a cheap iso-invariant signature selects a
// bucket, and core.Isomorphic confirms a true match within it. The
// signature is sound (isomorphic queries always share a signature) but not
// complete, which is exactly what a bucket key needs.
type classCache struct {
	mu      sync.RWMutex
	buckets map[string][]cacheEntry
	size    int
	max     int

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	q  *cq.Query
	cl *core.Classification
}

// defaultCacheMax bounds the number of cached classifications. Real
// workloads use a handful of query shapes; the cap only guards against
// adversarial streams of distinct queries. When full the cache stops
// inserting (classification still happens, it just isn't remembered).
const defaultCacheMax = 1024

func newClassCache(max int) *classCache {
	if max <= 0 {
		max = defaultCacheMax
	}
	return &classCache{buckets: map[string][]cacheEntry{}, max: max}
}

// classify returns the cached classification of q, computing and caching
// it on a miss. The returned Classification is shared and must be treated
// as read-only (core.Classify never mutates its input, and the solvers
// only read the normalized query).
//
// A hit on a query whose relation names differ from the cached copy (the
// isomorphism renames relations) returns the cached classification
// translated onto q's vocabulary, so the solver dispatch runs against the
// right relations of q's database.
func (c *classCache) classify(q *cq.Query) (cl *core.Classification, hit bool) {
	sig := signature(q)
	c.mu.RLock()
	cl = c.lookup(sig, q)
	c.mu.RUnlock()
	if cl != nil {
		c.hits.Add(1)
		return cl, true
	}

	computed := core.Classify(q)

	c.mu.Lock()
	defer c.mu.Unlock()
	// Another goroutine may have classified the same shape while we did;
	// prefer the incumbent so callers share one Classification.
	if cl = c.lookup(sig, q); cl != nil {
		c.hits.Add(1)
		return cl, true
	}
	c.misses.Add(1)
	if c.size < c.max {
		c.buckets[sig] = append(c.buckets[sig], cacheEntry{q: q.Clone(), cl: computed})
		c.size++
	}
	return computed, false
}

// lookup scans the bucket for an isomorphic entry and returns its
// classification translated onto q's relation names (or the shared
// original when the names already agree). Callers hold c.mu.
func (c *classCache) lookup(sig string, q *cq.Query) *core.Classification {
	for _, e := range c.buckets[sig] {
		relMap, ok := core.RelationMapping(e.q, q)
		if !ok {
			continue
		}
		identity := true
		for from, to := range relMap {
			if from != to {
				identity = false
				break
			}
		}
		if identity {
			return e.cl
		}
		return translateClassification(e.cl, relMap)
	}
	return nil
}

// translateClassification maps a classification onto an isomorphic
// query's relation names: the structural verdict carries over verbatim
// (complexity is invariant under renaming), but the normalized queries the
// solvers dispatch on must name the relations of the instance actually
// being solved. Certificate text is left in the cached vocabulary.
func translateClassification(cl *core.Classification, relMap map[string]string) *core.Classification {
	out := *cl
	out.Normalized = translateQuery(cl.Normalized, relMap)
	if len(cl.Components) > 0 {
		out.Components = make([]*core.Classification, len(cl.Components))
		for i, sub := range cl.Components {
			out.Components[i] = translateClassification(sub, relMap)
		}
	}
	return &out
}

func translateQuery(q *cq.Query, relMap map[string]string) *cq.Query {
	if q == nil {
		return nil
	}
	out := cq.New(q.Name)
	for _, a := range q.Atoms {
		names := make([]string, len(a.Args))
		for i, v := range a.Args {
			names[i] = q.VarName(v)
		}
		rel, ok := relMap[a.Rel]
		if !ok {
			rel = a.Rel
		}
		out.AddAtom(rel, names...)
	}
	for rel, exo := range q.Exo {
		if !exo {
			continue
		}
		to, ok := relMap[rel]
		if !ok {
			to = rel
		}
		out.MarkExogenous(to)
	}
	return out
}

func (c *classCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// signature computes an isomorphism-invariant bucket key for q: relation
// symbols are abstracted to (arity, exogenous, occurrence-count) tokens and
// variables to their repetition pattern inside each atom plus a global
// occurrence-degree multiset. Renaming relations or variables cannot change
// any component, so isomorphic queries collide; structurally different
// queries usually do not, keeping buckets near size one.
func signature(q *cq.Query) string {
	occ := map[string]int{}
	for _, a := range q.Atoms {
		occ[a.Rel]++
	}
	atomToks := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		// Repetition pattern of variables within the atom: R(x,x) -> "0.0",
		// R(x,y) -> "0.1", regardless of variable names.
		first := map[cq.Var]int{}
		pat := make([]string, len(a.Args))
		for p, v := range a.Args {
			if _, ok := first[v]; !ok {
				first[v] = len(first)
			}
			pat[p] = fmt.Sprint(first[v])
		}
		atomToks[i] = fmt.Sprintf("%d:%t:%d:%s",
			len(a.Args), q.IsExogenous(a.Rel), occ[a.Rel], strings.Join(pat, "."))
	}
	sort.Strings(atomToks)

	degree := map[cq.Var]int{}
	for _, a := range q.Atoms {
		for _, v := range a.Args {
			degree[v]++
		}
	}
	degs := make([]int, 0, len(degree))
	for _, d := range degree {
		degs = append(degs, d)
	}
	sort.Ints(degs)

	return fmt.Sprintf("v%d|%s|%v", q.NumVars(), strings.Join(atomToks, ","), degs)
}
