package core

import "repro/internal/cq"

// catalogEntry pairs a named query shape from Section 8 with its known
// complexity; the classifier matches candidate queries against these up to
// isomorphism (variable and relation renaming preserving exogenous marks).
type catalogEntry struct {
	name    string
	query   *cq.Query
	verdict Verdict
	rule    string
	alg     Algorithm
}

// catalog3 lists the paper's named queries with exactly three occurrences
// of the self-join relation (Section 8), including the explicitly open
// problems. Chains are excluded: they are handled by the general k-chain
// rule (Proposition 38).
//
// Shapes are stored in domination-normalized form (the classifier matches
// after Normalize): e.g. in qSxyBC3perm-R, B(y) dominates S(x,y) under
// Definition 16 via f(1)=2, so S carries the exogenous mark here even
// though the paper writes it unmarked.
var catalog3 = []catalogEntry{
	// 8.2: 3-confluences.
	{"qAC3conf", cq.MustParse("qAC3conf :- A(x), R(x,y), R(z,y), R(z,w), C(w)"),
		NPComplete, "Proposition 39 (Max 2SAT reduction)", AlgExact},
	{"qTS3conf", cq.MustParse("qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x"),
		PTime, "Proposition 41 (forced tuples + flow)", AlgTS3confFlow},
	{"qAS3conf", cq.MustParse("qAS3conf :- A(x), R(x,y), R(z,y), R(z,w), S(z,w)^x"),
		Open, "Section 8.2 open problem", AlgExact},

	// 8.3: chain-confluence combinations.
	{"qAC3cc", cq.MustParse("qAC3cc :- A(x), R(x,y), R(y,z), R(w,z), C(w)"),
		NPComplete, "Proposition 42 (reduction from RES(qchain))", AlgExact},
	{"qAS3cc", cq.MustParse("qAS3cc :- A(x), R(x,y), R(y,z), R(w,z), S(w,z)"),
		NPComplete, "Proposition 42 (reduction from RES(qchain))", AlgExact},
	{"qC3cc", cq.MustParse("qC3cc :- R(x,y), R(y,z), R(w,z), C(w)"),
		NPComplete, "Proposition 43 (Max 2SAT reduction)", AlgExact},
	{"qS3cc", cq.MustParse("qS3cc :- R(x,y), R(y,z), R(w,z), S(w,z)"),
		Open, "Section 8.3 open problem", AlgExact},

	// 8.4: permutation plus R.
	{"qA3perm-R", cq.MustParse("qA3permR :- A(x), R(x,y), R(y,z), R(z,y)"),
		PTime, "Proposition 13 (modified network flow)", AlgPerm3Flow},
	{"qSwx3perm-R", cq.MustParse("qSwx3permR :- S(w,x), R(x,y), R(y,z), R(z,y)"),
		PTime, "Proposition 44 (modified network flow)", AlgPerm3Flow},
	{"qSxy3perm-R", cq.MustParse("qSxy3permR :- S(x,y)^x, R(x,y), R(y,z), R(z,y)"),
		NPComplete, "Proposition 45 (3SAT reduction)", AlgExact},
	{"qAC3perm-R", cq.MustParse("qAC3permR :- A(x), R(x,y), R(y,z), R(z,y), C(z)"),
		NPComplete, "Proposition 46 (reduction from RES(qABperm))", AlgExact},
	{"qAB3perm-R", cq.MustParse("qAB3permR :- A(x), R(x,y), B(y), R(y,z), R(z,y)"),
		NPComplete, "Proposition 46 (3SAT reduction)", AlgExact},
	{"qSxyBC3perm-R", cq.MustParse("qSxyBC3permR :- S(x,y)^x, R(x,y), B(y), R(y,z), R(z,y), C(z)"),
		NPComplete, "Proposition 46 (reduction from RES(qABperm))", AlgExact},
	{"qASxy3perm-R", cq.MustParse("qASxy3permR :- A(x), S(x,y)^x, R(x,y), R(y,z), R(z,y)"),
		Open, "Section 8.4 open problem", AlgExact},
	{"qSxyB3perm-R", cq.MustParse("qSxyB3permR :- S(x,y)^x, R(x,y), B(y), R(y,z), R(z,y)"),
		Open, "Section 8.4 open problem", AlgExact},
	{"qSxyC3perm-R", cq.MustParse("qSxyC3permR :- S(x,y), R(x,y), R(y,z), R(z,y), C(z)"),
		Open, "Section 8.4 open problem", AlgExact},

	// 8.5: repeated variables with three R-atoms. z4's endpoint loops are
	// R-connected through R(x,y), so Theorem 28's binary-path rule does
	// not apply (its proof assumes no R-path between the endpoints) and
	// the paper proves z4 separately.
	{"z4", cq.MustParse("z4 :- R(x,x), R(x,y), S(x,y)^x, R(y,y)"),
		NPComplete, "Proposition 47 (reduction from RES(qvc))", AlgExact},
	{"z5", cq.MustParse("z5 :- A(x), R(x,y), R(y,z), R(z,z)"),
		NPComplete, "Proposition 47 (Max 2SAT reduction)", AlgExact},
	{"z6", cq.MustParse("z6 :- A(x), R(x,y), R(y,y), R(y,z), C(z)"),
		Open, "Section 8.5 open problem", AlgExact},
	{"z7", cq.MustParse("z7 :- A(x), R(x,y), R(y,x), R(y,y)"),
		Open, "Section 8.5 open problem", AlgExact},
}

// catalog2 lists two-R-atom shapes that map to specialized PTIME
// algorithms; the dichotomy itself (Theorem 37) is rule-based and does not
// need a catalog, this only refines Algorithm selection.
var catalog2 = []catalogEntry{
	{"qperm", cq.MustParse("qperm :- R(x,y), R(y,x)"),
		PTime, "Proposition 33 (witness count)", AlgPermCount},
	{"qAperm", cq.MustParse("qAperm :- A(x), R(x,y), R(y,x)"),
		PTime, "Proposition 33 (bipartite vertex cover)", AlgPermBipartiteVC},
	{"z3", cq.MustParse("z3 :- R(x,x), R(x,y), A(y)"),
		PTime, "Proposition 36 (flow without off-diagonal R)", AlgREPFlow},
}

// lookupCatalog returns the catalog entry isomorphic to q, if any.
func lookupCatalog(entries []catalogEntry, q *cq.Query) *catalogEntry {
	for i := range entries {
		if Isomorphic(q, entries[i].query) {
			return &entries[i]
		}
	}
	return nil
}
