package core

import "repro/internal/cq"

// Isomorphic reports whether queries a and b are identical up to a
// bijective renaming of variables and of relation symbols. The relation
// renaming must preserve arity and exogenous marking, so the paper's named
// query shapes (e.g. qTS3conf with its two exogenous atoms) match any
// alphabetic variant but nothing structurally different.
func Isomorphic(a, b *cq.Query) bool {
	_, ok := RelationMapping(a, b)
	return ok
}

// RelationMapping returns the relation bijection of an isomorphism from a
// onto b (mapping a's relation symbols to b's), or ok=false when the
// queries are not isomorphic. Callers that memoize per-query analysis use
// the mapping to translate cached results onto an isomorphic query's
// vocabulary.
func RelationMapping(a, b *cq.Query) (map[string]string, bool) {
	if len(a.Atoms) != len(b.Atoms) || a.NumVars() != b.NumVars() {
		return nil, false
	}
	relsA, relsB := a.Relations(), b.Relations()
	if len(relsA) != len(relsB) {
		return nil, false
	}
	usedB := make([]bool, len(b.Atoms))
	varMap := map[cq.Var]cq.Var{}
	varUsed := map[cq.Var]bool{}
	relMap := map[string]string{}
	relUsed := map[string]bool{}

	var match func(i int) bool
	match = func(i int) bool {
		if i == len(a.Atoms) {
			return true
		}
		aa := a.Atoms[i]
		for j := range b.Atoms {
			if usedB[j] {
				continue
			}
			ba := b.Atoms[j]
			if len(aa.Args) != len(ba.Args) {
				continue
			}
			// Relation mapping.
			mapped, haveRel := relMap[aa.Rel]
			if haveRel {
				if mapped != ba.Rel {
					continue
				}
			} else {
				if relUsed[ba.Rel] {
					continue
				}
				if a.IsExogenous(aa.Rel) != b.IsExogenous(ba.Rel) {
					continue
				}
			}
			// Variable mapping.
			var newVars []cq.Var
			ok := true
			for p, v := range aa.Args {
				w := ba.Args[p]
				if mv, have := varMap[v]; have {
					if mv != w {
						ok = false
						break
					}
				} else {
					if varUsed[w] {
						ok = false
						break
					}
					varMap[v] = w
					varUsed[w] = true
					newVars = append(newVars, v)
				}
			}
			if ok {
				if !haveRel {
					relMap[aa.Rel] = ba.Rel
					relUsed[ba.Rel] = true
				}
				usedB[j] = true
				if match(i + 1) {
					return true
				}
				usedB[j] = false
				if !haveRel {
					delete(relMap, aa.Rel)
					delete(relUsed, ba.Rel)
				}
			}
			for _, v := range newVars {
				delete(varUsed, varMap[v])
				delete(varMap, v)
			}
		}
		return false
	}
	if !match(0) {
		return nil, false
	}
	out := make(map[string]string, len(relMap))
	for k, v := range relMap {
		out[k] = v
	}
	return out, true
}
