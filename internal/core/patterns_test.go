package core

import (
	"testing"

	"repro/internal/cq"
)

func TestClassifyTwoAtomsPatterns(t *testing.T) {
	cases := []struct {
		q    string
		want twoAtomPattern
	}{
		{"q :- R(x,y), R(y,z)", patChain},
		{"q :- R(y,x), R(z,y)", patChain}, // reversed orientation
		{"q :- R(x,y), R(z,y)", patConfluence},
		{"q :- R(y,x), R(y,z)", patConfluence}, // join on first attribute
		{"q :- R(x,y), R(y,x)", patPermutation},
		{"q :- R(x,x), R(x,y)", patREP},
		{"q :- R(y,x), R(x,x)", patREP},
	}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		atoms := q.AtomsOf("R")
		if got := classifyTwoAtoms(q, atoms[0], atoms[1]); got != c.want {
			t.Errorf("%s: pattern = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestChainVarsDetection(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"q :- R(x,y), R(y,z)", true},
		{"q :- R(x,y), R(y,z), R(z,w)", true},
		{"q :- R(x,y), R(y,z), R(z,w), R(w,u)", true},
		{"q :- R(x,y), R(y,z), R(z,y)", false}, // perm tail, not a chain
		{"q :- R(x,y), R(z,y)", false},         // confluence
		{"q :- R(x,y), R(y,x)", false},         // permutation (endpoint not fresh)
		{"q :- R(x,x), R(x,y)", false},         // loop excluded
		{"q :- R(y,z), R(x,y)", true},          // order-independent
	}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		_, got := chainVars(q, q.AtomsOf("R"))
		if got != c.want {
			t.Errorf("%s: chain = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBinaryPathNeedsRFreeConnection(t *testing.T) {
	// Disjoint R-atoms connected only through another R-atom: not a path.
	q := cq.MustParse("q :- R(x,y), R(y,z), R(z,w)")
	if _, _, ok := hasBinaryPath(q, "R"); ok {
		t.Error("3-chain must not register as a binary path")
	}
	// Connected through a non-R atom: a path.
	q2 := cq.MustParse("q :- R(x,y), S(y,z), R(z,w)")
	if _, _, ok := hasBinaryPath(q2, "R"); !ok {
		t.Error("R–S–R should register as a binary path")
	}
	// Longer R-free path with several intermediate atoms.
	q3 := cq.MustParse("q :- R(x,y), S(y,u), T(u,v), R(v,w)")
	if _, _, ok := hasBinaryPath(q3, "R"); !ok {
		t.Error("R–S–T–R should register as a binary path")
	}
}

func TestPermutationBoundRequiresBothSides(t *testing.T) {
	q := cq.MustParse("q :- A(x), R(x,y), R(y,x)")
	x, y := q.Var("x"), q.Var("y")
	if permutationBound(q, "R", x, y) {
		t.Error("one-sided bound must not count")
	}
	q2 := cq.MustParse("q :- A(x), R(x,y), R(y,x), B(y)")
	if !permutationBound(q2, "R", q2.Var("x"), q2.Var("y")) {
		t.Error("two-sided bound should count")
	}
	// Exogenous atoms never bound.
	q3 := cq.MustParse("q :- A(x), R(x,y), R(y,x), B(y)^x")
	if permutationBound(q3, "R", q3.Var("x"), q3.Var("y")) {
		t.Error("exogenous B must not bound the permutation")
	}
	// Atoms containing both variables bound nothing.
	q4 := cq.MustParse("q :- S(x,y), R(x,y), R(y,x), T(y,x)")
	if permutationBound(q4, "R", q4.Var("x"), q4.Var("y")) {
		t.Error("atoms containing both x and y must not bound")
	}
}

func TestHasPathAvoidingVar(t *testing.T) {
	q := cq.MustParse("q :- R(x,y), H(x,u)^x, K(u,z)^x, R(z,y)")
	x, y, z := q.Var("x"), q.Var("y"), q.Var("z")
	// Avoiding y blocks the R-atom edges, but the exogenous bridge
	// x–u–z survives (the Proposition 32 hardness condition).
	if !hasPathAvoidingVar(q, x, z, y) {
		t.Error("x–u–z path avoiding y should exist")
	}
	// Without the bridge, avoiding y disconnects x from z.
	q2 := cq.MustParse("q :- A(x), R(x,y), R(z,y), C(z)")
	if hasPathAvoidingVar(q2, q2.Var("x"), q2.Var("z"), q2.Var("y")) {
		t.Error("qACconf has no x–z path avoiding y")
	}
}

func TestConfluenceEndpoints(t *testing.T) {
	q := cq.MustParse("q :- R(x,y), R(z,y)")
	atoms := q.AtomsOf("R")
	x, z, y := confluenceEndpoints(q, atoms[0], atoms[1])
	if q.VarName(y) != "y" {
		t.Errorf("shared var = %s, want y", q.VarName(y))
	}
	got := map[string]bool{q.VarName(x): true, q.VarName(z): true}
	if !got["x"] || !got["z"] {
		t.Errorf("endpoints = %v, want x and z", got)
	}
	// First-attribute confluence.
	q2 := cq.MustParse("q :- R(a,b), R(a,c)")
	atoms2 := q2.AtomsOf("R")
	e1, e2, shared := confluenceEndpoints(q2, atoms2[0], atoms2[1])
	if q2.VarName(shared) != "a" {
		t.Errorf("shared var = %s, want a", q2.VarName(shared))
	}
	eps := map[string]bool{q2.VarName(e1): true, q2.VarName(e2): true}
	if !eps["b"] || !eps["c"] {
		t.Errorf("endpoints = %v, want b and c", eps)
	}
}

func TestSJRelationSkipsExogenous(t *testing.T) {
	q := cq.MustParse("q :- A(x), H(x,y)^x, B(y), H(y,z)^x, C(z)")
	if got := sjRelation(q); got != "" {
		t.Errorf("sjRelation = %q, want empty (only exogenous repeats)", got)
	}
	q2 := cq.MustParse("q :- R(x,y), R(y,z)")
	if got := sjRelation(q2); got != "R" {
		t.Errorf("sjRelation = %q, want R", got)
	}
}

func TestThreeAtomFamilyDetection(t *testing.T) {
	cases := []struct {
		q    string
		want threeAtomFamily
	}{
		{"q :- A(x), R(x,y), R(z,y), R(z,w), C(w)", fam3Confluence},
		{"q :- A(x), R(x,y), R(y,z), R(w,z), C(w)", fam3ChainConfluence},
		{"q :- A(x), R(x,y), R(y,z), R(z,y)", fam3PermR},
		{"q :- A(x), R(x,y), R(y,z), R(z,z)", fam3REP},
	}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		got := detectThreeAtomFamily(q, q.AtomsOf("R"))
		if got != c.want {
			t.Errorf("%s: family = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestClassifyMirroredShapes(t *testing.T) {
	// Classification must be invariant under reversing the self-join
	// relation's columns (mirror queries have mirror complexity).
	pairs := [][2]string{
		{"q :- A(x), R(x,y), R(y,z)", "q :- A(x), R(y,x), R(z,y)"},
		{"q :- R(x,y), R(z,y), A(x), C(z)", "q :- R(y,x), R(y,z), A(x), C(z)"},
	}
	for _, p := range pairs {
		v1 := Classify(cq.MustParse(p[0])).Verdict
		v2 := Classify(cq.MustParse(p[1])).Verdict
		if v1 != v2 {
			t.Errorf("mirror pair %q vs %q: %s != %s", p[0], p[1], v1, v2)
		}
	}
}

func TestUnaryPathDetector(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	if !hasUnaryPath(q, "R") {
		t.Error("qvc has a unary path")
	}
	q2 := cq.MustParse("q :- R(x,y), R(y,z)")
	if hasUnaryPath(q2, "R") {
		t.Error("binary relation cannot form a unary path")
	}
}
