package core

import (
	"strings"
	"testing"

	"repro/internal/cq"
)

func TestClassifyBasicHardQueries(t *testing.T) {
	cases := []struct {
		q    string
		rule string
	}{
		{"qvc :- R(x), S(x,y), R(y)", "Theorem 27"},
		{"qchain :- R(x,y), R(y,z)", "Proposition 30"},
		{"qtri :- R(x,y), S(y,z), T(z,x)", "Theorem 24"},
		{"qsj1 :- R(x,y), R(y,z), R(z,x)", "Theorem 24"},
		{"z1 :- R(x,x), S(x,y), R(y,y)", "Theorem 28"},
		{"z2 :- R(x,x), S(x,y), R(y,z)", "Theorem 28"},
		{"qABperm :- A(x), R(x,y), R(y,x), B(y)", "Proposition 35"},
		{"cfp :- R(x,y), H(x,z)^x, R(z,y)", "Proposition 32"},
		{"q3chain :- R(x,y), R(y,z), R(z,w)", "Proposition 38"},
	}
	for _, c := range cases {
		cl := Classify(cq.MustParse(c.q))
		if cl.Verdict != NPComplete {
			t.Errorf("%s: verdict = %s (%s), want NP-complete", c.q, cl.Verdict, cl.Rule)
			continue
		}
		if !strings.Contains(cl.Rule, c.rule) {
			t.Errorf("%s: rule = %q, want mention of %q", c.q, cl.Rule, c.rule)
		}
	}
}

func TestClassifyBasicEasyQueries(t *testing.T) {
	cases := []struct {
		q   string
		alg Algorithm
	}{
		{"qperm :- R(x,y), R(y,x)", AlgPermCount},
		{"qAperm :- A(x), R(x,y), R(y,x)", AlgPermBipartiteVC},
		{"qACconf :- A(x), R(x,y), R(z,y), C(z)", AlgLinearFlow},
		{"z3 :- R(x,x), R(x,y), A(y)", AlgREPFlow},
		{"qlin :- A(x), R(x,y,z), S(y,z)", AlgLinearFlow},
	}
	for _, c := range cases {
		cl := Classify(cq.MustParse(c.q))
		if cl.Verdict != PTime {
			t.Errorf("%s: verdict = %s (%s: %s), want PTIME", c.q, cl.Verdict, cl.Rule, cl.Certificate)
			continue
		}
		if cl.Algorithm != c.alg {
			t.Errorf("%s: algorithm = %s, want %s", c.q, cl.Algorithm, c.alg)
		}
	}
}

func TestClassifyDominationDisarmsTriad(t *testing.T) {
	// qrats looks like it has a triad but domination disarms it (Fig 1c).
	cl := Classify(cq.MustParse("qrats :- R(x,y), A(x), T(z,x), S(y,z)"))
	if cl.Verdict != PTime {
		t.Errorf("qrats: verdict = %s (%s), want PTIME", cl.Verdict, cl.Rule)
	}
	if !cl.Normalized.IsExogenous("R") || !cl.Normalized.IsExogenous("T") {
		t.Error("qrats normalization should make R, T exogenous")
	}
	// But the self-join variation keeps its triad (Section 5.1).
	cl2 := Classify(cq.MustParse("qsj1rats :- R(x,y), A(x), R(y,z), R(z,x)"))
	if cl2.Verdict != NPComplete {
		t.Errorf("qsj1rats: verdict = %s, want NP-complete", cl2.Verdict)
	}
}

func TestClassifyNonMinimalFoldsFirst(t *testing.T) {
	// Example 22: the self-join variation of a triad query minimizes to a
	// single atom and becomes trivially easy.
	cl := Classify(cq.MustParse("qsj :- R(x,y), R(z,y), R(z,w), R(x,w)"))
	if cl.Verdict != PTime {
		t.Errorf("Example 22 query: verdict = %s (%s), want PTIME", cl.Verdict, cl.Rule)
	}
	if len(cl.Normalized.Atoms) != 1 {
		t.Errorf("normalized atoms = %d, want 1", len(cl.Normalized.Atoms))
	}
}

func TestClassifyDisconnectedComponents(t *testing.T) {
	// One easy and one hard component: hardest decides (Lemma 15).
	cl := Classify(cq.MustParse("q :- R(x,y), R(y,z), S(u,v)"))
	if cl.Verdict != NPComplete {
		t.Errorf("verdict = %s, want NP-complete (chain component)", cl.Verdict)
	}
	if len(cl.Components) != 2 {
		t.Errorf("components = %d, want 2", len(cl.Components))
	}
	cl2 := Classify(cq.MustParse("q :- A(x), S(u,v)"))
	if cl2.Verdict != PTime {
		t.Errorf("two easy components: verdict = %s, want PTIME", cl2.Verdict)
	}
}

func TestClassifyPermutationBoundness(t *testing.T) {
	// Exogenous bounds do not count: the boundness criterion requires
	// endogenous S and T.
	cl := Classify(cq.MustParse("q :- A(x), R(x,y), R(y,x), B(y)^x"))
	if cl.Verdict != PTime {
		t.Errorf("exogenously-bound permutation: verdict = %s, want PTIME", cl.Verdict)
	}
	// Binary endogenous neighbors bound it too.
	cl2 := Classify(cq.MustParse("q :- S(u,x), R(x,y), R(y,x), T(y,v)"))
	if cl2.Verdict != NPComplete {
		t.Errorf("binary-bound permutation: verdict = %s, want NP-complete", cl2.Verdict)
	}
}

func TestClassifyConfluenceJoinOnFirstAttribute(t *testing.T) {
	// Mirror image of qACconf: R joins on the first attribute.
	cl := Classify(cq.MustParse("q :- A(x), R(y,x), R(y,z), C(z)"))
	if cl.Verdict != PTime {
		t.Errorf("first-attribute confluence: verdict = %s (%s), want PTIME", cl.Verdict, cl.Rule)
	}
}

func TestClassifySection8Catalog(t *testing.T) {
	cases := []struct {
		q       string
		verdict Verdict
	}{
		{"qAC3conf :- A(x), R(x,y), R(z,y), R(z,w), C(w)", NPComplete},
		{"qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x", PTime},
		{"qAS3conf :- A(x), R(x,y), R(z,y), R(z,w), S(z,w)^x", Open},
		{"qAC3cc :- A(x), R(x,y), R(y,z), R(w,z), C(w)", NPComplete},
		{"qC3cc :- R(x,y), R(y,z), R(w,z), C(w)", NPComplete},
		{"qS3cc :- R(x,y), R(y,z), R(w,z), S(w,z)", Open},
		{"qA3permR :- A(x), R(x,y), R(y,z), R(z,y)", PTime},
		{"qSwx :- S(w,x), R(x,y), R(y,z), R(z,y)", PTime},
		{"qSxy :- S(x,y)^x, R(x,y), R(y,z), R(z,y)", NPComplete},
		{"qASxy :- A(x), S(x,y), R(x,y), R(y,z), R(z,y)", Open},
		{"z5 :- A(x), R(x,y), R(y,z), R(z,z)", NPComplete},
		{"z6 :- A(x), R(x,y), R(y,y), R(y,z), C(z)", Open},
		{"z7 :- A(x), R(x,y), R(y,x), R(y,y)", Open},
	}
	for _, c := range cases {
		cl := Classify(cq.MustParse(c.q))
		if cl.Verdict != c.verdict {
			t.Errorf("%s: verdict = %s (%s: %s), want %s", c.q, cl.Verdict, cl.Rule, cl.Certificate, c.verdict)
		}
	}
}

func TestClassifyCatalogIsRenamingInvariant(t *testing.T) {
	// Same shapes with different relation and variable names.
	cl := Classify(cq.MustParse("q :- U(a,b)^x, E(a,b), E(c,b), E(c,d), V(c,d)^x"))
	if cl.Verdict != PTime {
		t.Errorf("renamed qTS3conf: verdict = %s (%s), want PTIME", cl.Verdict, cl.Rule)
	}
	cl2 := Classify(cq.MustParse("q :- P(u), E(u,v), E(w,v), E(w,t), Q(t)"))
	if cl2.Verdict != NPComplete {
		t.Errorf("renamed qAC3conf: verdict = %s, want NP-complete", cl2.Verdict)
	}
}

func TestClassifyOutOfScope(t *testing.T) {
	// Two distinct endogenous self-join relations.
	cl := Classify(cq.MustParse("q :- R(x), S(x,y), R(y), S(y,z)"))
	// Note: this has a unary path on R... pick a cleaner example.
	_ = cl
	cl2 := Classify(cq.MustParse("q :- R(x,y), R(y,z), S(z,w), S(w,u), T(u,p)"))
	if cl2.Verdict != NPComplete && cl2.Verdict != OutOfScope {
		// Chain on R would be hard by Prop 30 if R were the only self-join;
		// with two self-joins we report out-of-scope unless a triad fires.
		t.Errorf("double self-join: verdict = %s", cl2.Verdict)
	}
	// Ternary self-join relation without triad.
	cl3 := Classify(cq.MustParse("q :- W(x,y,z), W(z,u,v)"))
	if cl3.Verdict != OutOfScope {
		t.Errorf("ternary self-join: verdict = %s (%s), want out-of-scope", cl3.Verdict, cl3.Rule)
	}
}

func TestClassifyFourChain(t *testing.T) {
	cl := Classify(cq.MustParse("q4 :- R(x,y), R(y,z), R(z,w), R(w,u)"))
	if cl.Verdict != NPComplete {
		t.Errorf("4-chain: verdict = %s (%s), want NP-complete", cl.Verdict, cl.Rule)
	}
}

func TestClassifyUnaryPathWithLongerBody(t *testing.T) {
	// Theorem 27 with extra atoms along the path.
	cl := Classify(cq.MustParse("q :- R(x), S(x,y), T(y,z), R(z)"))
	if cl.Verdict != NPComplete || !strings.Contains(cl.Rule, "Theorem 27") {
		t.Errorf("long unary path: verdict = %s (%s)", cl.Verdict, cl.Rule)
	}
}

func TestClassifyBinaryPathNonConsecutiveNotFired(t *testing.T) {
	// q3chain has disjoint R-atoms but every path between them passes
	// through the middle R-atom: the binary-path rule must NOT fire; the
	// k-chain rule applies instead.
	cl := Classify(cq.MustParse("q3chain :- R(x,y), R(y,z), R(z,w)"))
	if !strings.Contains(cl.Rule, "Proposition 38") {
		t.Errorf("3-chain classified via %q, want Proposition 38", cl.Rule)
	}
}

func TestIsomorphic(t *testing.T) {
	a := cq.MustParse("q :- A(x), R(x,y), R(y,x)")
	b := cq.MustParse("q :- P(u), E(u,v), E(v,u)")
	if !Isomorphic(a, b) {
		t.Error("renamed qAperm should be isomorphic")
	}
	c := cq.MustParse("q :- A(x), R(x,y), R(x,y)")
	if Isomorphic(a, c) {
		t.Error("different shapes must not match")
	}
	// Exogenous marks must be preserved.
	d := cq.MustParse("q :- A(x)^x, R(x,y), R(y,x)")
	if Isomorphic(a, d) {
		t.Error("exogenous mark mismatch must not match")
	}
	// Two relations must not collapse onto one.
	e := cq.MustParse("q :- A(x), B(y), S(x,y)")
	f := cq.MustParse("q :- A(x), A(y), S(x,y)")
	if Isomorphic(e, f) {
		t.Error("relation mapping must be injective")
	}
}

func TestVerdictStrings(t *testing.T) {
	if PTime.String() != "PTIME" || NPComplete.String() != "NP-complete" ||
		Open.String() != "open" || OutOfScope.String() != "out-of-scope" {
		t.Error("verdict strings changed")
	}
	if AlgLinearFlow.String() == "" || AlgPerm3Flow.String() == "" {
		t.Error("algorithm strings empty")
	}
}
