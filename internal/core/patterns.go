package core

import (
	"repro/internal/cq"
	"repro/internal/hypergraph"
)

// This file contains the structural pattern detectors of Sections 6-8:
// unary and binary paths (Theorems 27/28), chains, confluences,
// permutations and REP (Section 7), and k-chains (Section 8.1). All
// detectors expect a minimized, connected, domination-normalized query.

// sjRelation returns the repeated relation of a single-self-join query that
// is endogenous, or "" if none (query is sj-free, or only exogenous
// relations repeat).
func sjRelation(q *cq.Query) string {
	for _, r := range q.SelfJoinRelations() {
		if !q.IsExogenous(r) {
			return r
		}
	}
	return ""
}

// hasUnaryPath implements Theorem 27's precondition: the endogenous
// self-join relation is unary and occurs in two distinct atoms.
func hasUnaryPath(q *cq.Query, rel string) bool {
	if q.Arity(rel) != 1 {
		return false
	}
	atoms := q.AtomsOf(rel)
	// Minimized queries have no duplicate atoms, so >= 2 atoms means two
	// distinct variables.
	return len(atoms) >= 2
}

// hasBinaryPath implements Theorem 28's precondition: two distinct
// consecutive R-atoms with disjoint variable sets, where consecutive means
// some connecting path between them passes through no other R-atom.
// The theorem's proof additionally assumes "there is no path of just R's"
// between the two atoms — its construction maps every R-atom to diagonal
// tuples (a,a)/(b,b), which is only consistent when the endpoints lie in
// different R-connectivity classes. Queries violating that (e.g. z4, where
// R(x,y) links R(x,x) to R(y,y)) are left to their dedicated results
// (Proposition 47 via the Section 8 catalog).
func hasBinaryPath(q *cq.Query, rel string) (int, int, bool) {
	if q.Arity(rel) != 2 {
		return 0, 0, false
	}
	atoms := q.AtomsOf(rel)
	class := rConnectivity(q, rel)
	for ai := 0; ai < len(atoms); ai++ {
		for aj := ai + 1; aj < len(atoms); aj++ {
			i, j := atoms[ai], atoms[aj]
			if q.SharesVar(i, j) {
				continue
			}
			if class[q.Atoms[i].Args[0]] == class[q.Atoms[j].Args[0]] {
				continue // an R-path links the endpoints (z4-style)
			}
			if rFreePathExists(q, rel, i, j) {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// rConnectivity groups the variables of rel-atoms into R-connected
// components (u ~ v when some chain of rel-atoms links them, the
// equivalence relation of Theorem 28's proof).
func rConnectivity(q *cq.Query, rel string) map[cq.Var]int {
	parent := map[cq.Var]cq.Var{}
	var find func(cq.Var) cq.Var
	find = func(v cq.Var) cq.Var {
		p, ok := parent[v]
		if !ok || p == v {
			parent[v] = v
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	for _, i := range q.AtomsOf(rel) {
		vs := q.VarsOf(i)
		find(vs[0]) // register singletons (loop atoms like R(x,x))
		for _, v := range vs[1:] {
			parent[find(v)] = find(vs[0])
		}
	}
	out := map[cq.Var]int{}
	next := 0
	roots := map[cq.Var]int{}
	for v := range parent {
		r := find(v)
		id, ok := roots[r]
		if !ok {
			id = next
			next++
			roots[r] = id
		}
		out[v] = id
	}
	return out
}

// rFreePathExists reports whether atoms i and j are connected in H(q) by a
// path whose intermediate atoms are not over relation rel.
func rFreePathExists(q *cq.Query, rel string, i, j int) bool {
	n := len(q.Atoms)
	visited := make([]bool, n)
	visited[i] = true
	stack := []int{i}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := 0; next < n; next++ {
			if visited[next] || !q.SharesVar(cur, next) {
				continue
			}
			if next == j {
				return true
			}
			if q.Atoms[next].Rel == rel {
				continue // intermediate R-atoms break consecutiveness
			}
			visited[next] = true
			stack = append(stack, next)
		}
	}
	return false
}

// twoAtomPattern classifies how two binary R-atoms sharing at least one
// variable relate (Figure 5): chain, confluence, permutation, or REP.
type twoAtomPattern int

const (
	patNone twoAtomPattern = iota
	patChain
	patConfluence
	patPermutation
	patREP
)

func (p twoAtomPattern) String() string {
	switch p {
	case patChain:
		return "chain"
	case patConfluence:
		return "confluence"
	case patPermutation:
		return "permutation"
	case patREP:
		return "repeated-variables"
	default:
		return "none"
	}
}

// classifyTwoAtoms determines the Figure 5 pattern of R-atoms i and j
// (assumed binary, sharing >= 1 variable, not identical).
func classifyTwoAtoms(q *cq.Query, i, j int) twoAtomPattern {
	a := q.Atoms[i].Args
	b := q.Atoms[j].Args
	if a[0] == a[1] || b[0] == b[1] {
		return patREP
	}
	shared := 0
	for _, v := range a {
		if v == b[0] || v == b[1] {
			shared++
		}
	}
	switch shared {
	case 2:
		// Distinct atoms sharing both variables must swap positions.
		return patPermutation
	case 1:
		// Same attribute position -> confluence; different -> chain.
		if a[0] == b[0] || a[1] == b[1] {
			return patConfluence
		}
		return patChain
	default:
		return patNone
	}
}

// confluenceEndpoints returns the two non-shared variables (x, z) and the
// shared variable y of a confluence pair.
func confluenceEndpoints(q *cq.Query, i, j int) (x, z, y cq.Var) {
	a := q.Atoms[i].Args
	b := q.Atoms[j].Args
	if a[0] == b[0] {
		return a[1], b[1], a[0]
	}
	return a[0], b[0], a[1]
}

// hasPathAvoidingVar reports whether variables u and w are connected in the
// query's variable graph (variables adjacent when co-occurring in an atom)
// by a path that avoids variable y. This implements the "exogenous path
// from x to z not involving y" side condition of Proposition 32: any
// endogenous such connection forms a triad and is caught earlier, so a
// surviving connection is necessarily through exogenous atoms.
func hasPathAvoidingVar(q *cq.Query, u, w, y cq.Var) bool {
	if u == w {
		return true
	}
	adj := map[cq.Var][]cq.Var{}
	for i := range q.Atoms {
		vs := q.VarsOf(i)
		for _, v1 := range vs {
			for _, v2 := range vs {
				if v1 != v2 {
					adj[v1] = append(adj[v1], v2)
				}
			}
		}
	}
	visited := map[cq.Var]bool{u: true, y: true}
	stack := []cq.Var{u}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[cur] {
			if visited[next] {
				continue
			}
			if next == w {
				return true
			}
			visited[next] = true
			stack = append(stack, next)
		}
	}
	return false
}

// permutationBound implements Section 7.3's criterion: the permutation on
// variables x,y is bound iff there are endogenous atoms S,T (other than the
// R-atoms) with x ∈ var(S), y ∉ var(S) and y ∈ var(T), x ∉ var(T).
func permutationBound(q *cq.Query, rel string, x, y cq.Var) bool {
	hasXnotY, hasYnotX := false, false
	for i, a := range q.Atoms {
		if a.Rel == rel || q.IsExogenous(a.Rel) {
			continue
		}
		vs := q.VarsOf(i)
		cx, cy := false, false
		for _, v := range vs {
			if v == x {
				cx = true
			}
			if v == y {
				cy = true
			}
		}
		if cx && !cy {
			hasXnotY = true
		}
		if cy && !cx {
			hasYnotX = true
		}
	}
	return hasXnotY && hasYnotX
}

// chainVars checks whether the given R-atoms form a k-chain
// R(x1,x2), R(x2,x3), ..., R(xk,xk+1) over k+1 distinct variables, in some
// order of the atoms. Returns the chain's variable sequence.
func chainVars(q *cq.Query, atoms []int) ([]cq.Var, bool) {
	k := len(atoms)
	if k == 0 {
		return nil, false
	}
	// Treat atoms as directed edges; a k-chain is a simple directed path
	// using each atom exactly once with all k+1 endpoints distinct.
	for _, a := range atoms {
		args := q.Atoms[a].Args
		if args[0] == args[1] {
			return nil, false // loops cannot participate in a chain
		}
	}
	used := make([]bool, k)
	var try func(seq []cq.Var) ([]cq.Var, bool)
	try = func(seq []cq.Var) ([]cq.Var, bool) {
		if len(seq) == k+1 {
			return seq, true
		}
		for t := 0; t < k; t++ {
			if used[t] {
				continue
			}
			args := q.Atoms[atoms[t]].Args
			start := seq
			if len(seq) == 0 {
				start = []cq.Var{args[0]}
			} else if seq[len(seq)-1] != args[0] {
				continue
			}
			// The new endpoint must be fresh for the path to be simple.
			next := args[1]
			dup := false
			for _, v := range start {
				if v == next {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			used[t] = true
			if res, ok := try(append(start, next)); ok {
				return res, true
			}
			used[t] = false
		}
		return nil, false
	}
	if seq, ok := try(nil); ok {
		return seq, true
	}
	return nil, false
}

// hasTriad wraps the hypergraph triad search.
func hasTriad(q *cq.Query) (string, bool) {
	tr := hypergraph.FindTriad(q)
	if tr == nil {
		return "", false
	}
	return "{" + q.AtomString(tr.S0) + ", " + q.AtomString(tr.S1) + ", " + q.AtomString(tr.S2) + "}", true
}
