package core

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/domination"
	"repro/internal/hypergraph"
)

// Classify determines the complexity of RES(q) for a conjunctive query q,
// implementing the decision procedure promised by Theorem 37 ("there is a
// PTIME algorithm that on input q determines which case occurs") and its
// surrounding results:
//
//  1. minimize q (Section 4.1) and split into connected components
//     (Lemmas 14/15);
//  2. normalize domination under Definition 16 (Proposition 18);
//  3. triads imply NP-completeness for arbitrary CQs (Theorem 24);
//  4. self-join-free queries follow the dichotomy of [14] (Theorem 7);
//  5. ssj binary queries: paths (Theorems 27/28), then the two-R-atom
//     dichotomy (Theorem 37: chain / bounded permutation /
//     confluence-with-exogenous-path are hard, everything else easy);
//  6. three R-atoms: k-chains (Proposition 38) plus the Section 8 catalog,
//     with the paper's open problems reported as Open.
//
// The input query is never modified.
func Classify(q *cq.Query) *Classification {
	if err := q.Validate(); err != nil {
		return &Classification{
			Verdict:     OutOfScope,
			Rule:        "invalid query",
			Certificate: err.Error(),
			Algorithm:   AlgExact,
		}
	}
	m := q.Minimize()
	comps := m.ComponentQueries()
	if len(comps) == 1 {
		return classifyConnected(comps[0])
	}
	// Lemma 15: a minimal query's complexity is the hardest of its
	// components.
	out := &Classification{Normalized: m, Algorithm: AlgExact}
	verdict := PTime
	for _, sub := range comps {
		c := classifyConnected(sub)
		out.Components = append(out.Components, c)
		switch c.Verdict {
		case NPComplete:
			verdict = NPComplete
		case Open:
			if verdict != NPComplete {
				verdict = Open
			}
		case OutOfScope:
			if verdict == PTime {
				verdict = OutOfScope
			}
		}
	}
	out.Verdict = verdict
	out.Rule = "Lemma 15 (query components)"
	out.Certificate = fmt.Sprintf("%d components; hardest decides", len(comps))
	return out
}

// classifyConnected handles a minimal connected query.
func classifyConnected(q *cq.Query) *Classification {
	n := domination.Normalize(q)
	c := &Classification{Normalized: n, Algorithm: AlgExact}

	endo := n.EndogenousAtoms()
	if len(endo) == 0 {
		c.Verdict = PTime
		c.Rule = "no endogenous atoms"
		c.Certificate = "resilience is undefined (unbreakable) whenever D |= q"
		c.Algorithm = AlgTrivial
		return c
	}

	// Theorem 24: triads make any CQ hard.
	if cert, ok := hasTriad(n); ok {
		c.Verdict = NPComplete
		c.Rule = "Theorem 24 (triads make queries hard)"
		c.Certificate = "triad " + cert
		return c
	}

	rel := sjRelation(n)
	if rel == "" {
		return classifySJFreeLike(q, n, c)
	}

	// From here on: a proper endogenous self-join exists, and q has no
	// triad, hence is pseudo-linear (Theorem 25).
	if len(n.SelfJoinRelations()) > 1 {
		// More than one repeated relation (even if the extras are
		// exogenous, position interactions are unclassified).
		others := 0
		for _, r := range n.SelfJoinRelations() {
			if r != rel && !n.IsExogenous(r) {
				others++
			}
		}
		if others > 0 {
			c.Verdict = OutOfScope
			c.Rule = "multiple self-join relations"
			c.Certificate = fmt.Sprintf("repeated relations %v exceed the ssj fragment", n.SelfJoinRelations())
			return c
		}
	}
	if !n.IsBinary() {
		c.Verdict = OutOfScope
		c.Rule = "non-binary query with self-join"
		c.Certificate = "the paper classifies binary ssj queries only"
		return c
	}

	// Theorem 27: unary paths.
	if hasUnaryPath(n, rel) {
		atoms := n.AtomsOf(rel)
		c.Verdict = NPComplete
		c.Rule = "Theorem 27 (unary paths are hard)"
		c.Certificate = fmt.Sprintf("unary path between %s and %s", n.AtomString(atoms[0]), n.AtomString(atoms[1]))
		return c
	}

	// Theorem 28: binary paths (consecutive disjoint R-atoms).
	if i, j, ok := hasBinaryPath(n, rel); ok {
		c.Verdict = NPComplete
		c.Rule = "Theorem 28 (binary paths are hard)"
		c.Certificate = fmt.Sprintf("binary path between %s and %s", n.AtomString(i), n.AtomString(j))
		return c
	}

	atoms := n.AtomsOf(rel)
	switch len(atoms) {
	case 2:
		return classifyTwoRAtoms(n, rel, atoms, c)
	case 3:
		return classifyThreeRAtoms(n, rel, atoms, c)
	default:
		if seq, ok := chainVars(n, atoms); ok {
			c.Verdict = NPComplete
			c.Rule = "Proposition 38 (k-chains are hard)"
			c.Certificate = fmt.Sprintf("%d-chain over %d variables", len(atoms), len(seq))
			return c
		}
		c.Verdict = Open
		c.Rule = fmt.Sprintf("beyond Section 8 (%d R-atoms)", len(atoms))
		c.Certificate = "the paper classifies at most three occurrences of the self-join relation"
		return c
	}
}

// classifySJFreeLike handles queries whose endogenous atoms contain no
// self-join: either genuinely sj-free queries (Theorem 7) or queries whose
// repeated relation became exogenous through domination.
func classifySJFreeLike(orig, n *cq.Query, c *Classification) *Classification {
	c.Verdict = PTime
	if orig.IsSelfJoinFree() {
		c.Rule = "Theorem 7 (sj-free dichotomy: no triad)"
		c.Certificate = "self-join-free, domination-normalized, triad-free"
	} else {
		c.Rule = "Proposition 18 + Theorem 25 (+ Conjecture 26)"
		c.Certificate = "self-join relation dominated/exogenous; endogenous structure is sj-free and triad-free"
	}
	if hypergraph.IsLinear(n) {
		c.Algorithm = AlgLinearFlow
	} else {
		c.Algorithm = AlgExact
	}
	return c
}

// classifyTwoRAtoms implements the Theorem 37 dichotomy for exactly two
// occurrences of the self-join relation (no triad, no path at this point).
func classifyTwoRAtoms(n *cq.Query, rel string, atoms []int, c *Classification) *Classification {
	i, j := atoms[0], atoms[1]
	switch classifyTwoAtoms(n, i, j) {
	case patChain:
		c.Verdict = NPComplete
		c.Rule = "Proposition 30 (2-chains are hard)"
		c.Certificate = fmt.Sprintf("chain %s, %s", n.AtomString(i), n.AtomString(j))
		return c

	case patPermutation:
		x := n.Atoms[i].Args[0]
		y := n.Atoms[i].Args[1]
		if permutationBound(n, rel, x, y) {
			c.Verdict = NPComplete
			c.Rule = "Proposition 35 (bounded permutations are hard)"
			c.Certificate = fmt.Sprintf("permutation %s, %s bound on both sides", n.AtomString(i), n.AtomString(j))
			return c
		}
		c.Verdict = PTime
		c.Rule = "Proposition 35 (unbounded permutations are easy)"
		c.Certificate = fmt.Sprintf("permutation %s, %s not bound", n.AtomString(i), n.AtomString(j))
		if e := lookupCatalog(catalog2, n); e != nil {
			c.Algorithm = e.alg
			c.Rule = e.rule
		} else {
			c.Algorithm = AlgExact
		}
		return c

	case patConfluence:
		x, z, y := confluenceEndpoints(n, i, j)
		if hasPathAvoidingVar(n, x, z, y) {
			c.Verdict = NPComplete
			c.Rule = "Proposition 32 (confluence with exogenous path)"
			c.Certificate = fmt.Sprintf("confluence %s, %s with a %s–%s path avoiding %s",
				n.AtomString(i), n.AtomString(j), n.VarName(x), n.VarName(z), n.VarName(y))
			return c
		}
		c.Verdict = PTime
		c.Rule = "Propositions 31/32 (confluence, standard network flow)"
		c.Certificate = fmt.Sprintf("confluence %s, %s; no %s–%s path avoiding %s",
			n.AtomString(i), n.AtomString(j), n.VarName(x), n.VarName(z), n.VarName(y))
		if hypergraph.IsLinear(n) {
			c.Algorithm = AlgLinearFlow
		} else {
			c.Algorithm = AlgExact
		}
		return c

	case patREP:
		c.Verdict = PTime
		c.Rule = "Proposition 36 (repeated variables sharing a variable)"
		c.Certificate = fmt.Sprintf("REP pattern %s, %s", n.AtomString(i), n.AtomString(j))
		if e := lookupCatalog(catalog2, n); e != nil {
			c.Algorithm = e.alg
		} else {
			c.Algorithm = AlgExact
		}
		return c

	default:
		// Two R-atoms in a connected query either share a variable or are
		// linked by an R-free path (caught as a binary path earlier), so
		// this branch is unreachable; stay defensive.
		c.Verdict = Open
		c.Rule = "unclassified two-R-atom structure"
		c.Certificate = fmt.Sprintf("%s, %s", n.AtomString(i), n.AtomString(j))
		return c
	}
}

// classifyThreeRAtoms implements the Section 8 partial classification.
func classifyThreeRAtoms(n *cq.Query, rel string, atoms []int, c *Classification) *Classification {
	// 3-chains (and their expansions) are always hard.
	if seq, ok := chainVars(n, atoms); ok {
		c.Verdict = NPComplete
		c.Rule = "Proposition 38 (k-chains are hard)"
		c.Certificate = fmt.Sprintf("3-chain over %d variables", len(seq))
		return c
	}
	// Named shapes, including the paper's open problems.
	if e := lookupCatalog(catalog3, n); e != nil {
		c.Verdict = e.verdict
		c.Rule = e.rule
		c.Certificate = "isomorphic to " + e.name
		c.Algorithm = e.alg
		return c
	}
	// Family-level rules beyond the named shapes.
	fam := detectThreeAtomFamily(n, atoms)
	switch fam {
	case fam3Confluence:
		if allCompanionsUnaryEndogenous(n, rel) {
			c.Verdict = NPComplete
			c.Rule = "Proposition 40 (3-confluence with unary relations)"
			c.Certificate = "3-confluence bounded by endogenous unary atoms"
			return c
		}
	case fam3ChainConfluence:
		x := chainStartVar(n, atoms)
		if x >= 0 && varBoundByEndogenous(n, rel, x) {
			c.Verdict = NPComplete
			c.Rule = "Proposition 42 (chain-confluence with bound x)"
			c.Certificate = "chain+confluence with endogenous atom at the chain start"
			return c
		}
	}
	c.Verdict = Open
	c.Rule = "Section 8 (three R-atoms, unresolved shape)"
	c.Certificate = "family: " + fam.String()
	return c
}

type threeAtomFamily int

const (
	famUnknown threeAtomFamily = iota
	fam3Confluence
	fam3ChainConfluence
	fam3PermR
	fam3REP
)

func (f threeAtomFamily) String() string {
	switch f {
	case fam3Confluence:
		return "3-confluence"
	case fam3ChainConfluence:
		return "3-chain-confluence"
	case fam3PermR:
		return "3-permutation-plus-R"
	case fam3REP:
		return "3-REP"
	default:
		return "unknown"
	}
}

// detectThreeAtomFamily determines which Section 8 family the three
// R-atoms form, by the multiset of pairwise patterns.
func detectThreeAtomFamily(n *cq.Query, atoms []int) threeAtomFamily {
	for _, a := range atoms {
		args := n.Atoms[a].Args
		if args[0] == args[1] {
			return fam3REP
		}
	}
	counts := map[twoAtomPattern]int{}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			counts[classifyTwoAtoms(n, atoms[i], atoms[j])]++
		}
	}
	switch {
	case counts[patPermutation] == 1:
		return fam3PermR
	case counts[patConfluence] == 2:
		return fam3Confluence
	case counts[patConfluence] == 1 && counts[patChain] == 1:
		return fam3ChainConfluence
	default:
		return famUnknown
	}
}

// allCompanionsUnaryEndogenous reports whether every non-R atom is unary
// and endogenous (the Proposition 40 setting).
func allCompanionsUnaryEndogenous(n *cq.Query, rel string) bool {
	any := false
	for _, a := range n.Atoms {
		if a.Rel == rel {
			continue
		}
		any = true
		if len(a.Args) != 1 || n.IsExogenous(a.Rel) {
			return false
		}
	}
	return any
}

// chainStartVar returns the start variable x of the chain pair within a
// 3-chain-confluence (the variable that occurs in exactly one R-atom at
// position 1 and participates in the chain), or -1.
func chainStartVar(n *cq.Query, atoms []int) cq.Var {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			a, b := n.Atoms[atoms[i]].Args, n.Atoms[atoms[j]].Args
			if a[1] == b[0] && a[0] != b[1] { // chain a -> b
				// x is a[0] if it appears in no other R-atom.
				x := a[0]
				occurs := 0
				for _, t := range atoms {
					for _, v := range n.Atoms[t].Args {
						if v == x {
							occurs++
						}
					}
				}
				if occurs == 1 {
					return x
				}
			}
		}
	}
	return -1
}

// varBoundByEndogenous reports whether some endogenous non-R atom contains
// variable v.
func varBoundByEndogenous(n *cq.Query, rel string, v cq.Var) bool {
	for i, a := range n.Atoms {
		if a.Rel == rel || n.IsExogenous(a.Rel) {
			continue
		}
		for _, w := range n.VarsOf(i) {
			if w == v {
				return true
			}
		}
	}
	return false
}
