package core

import (
	"testing"

	"repro/internal/cq"
)

// TestBinaryPathRequiresRDisconnectedEndpoints pins the Theorem 28
// precondition: the two R-atoms must lie in different R-connectivity
// classes (the proof's diagonal construction breaks otherwise).
func TestBinaryPathRequiresRDisconnectedEndpoints(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"z1 :- R(x,x), S(x,y), R(y,y)", true},
		{"z2 :- R(x,x), S(x,y), R(y,z)", true},
		{"qbinpath :- R(x,y), S(y,z), R(z,w)", true},
		// z4: R(x,y) links the two loop atoms into one R-class.
		{"z4 :- R(x,x), R(x,y), S(x,y), R(y,y)", false},
		// qAC3conf: R(z,y) links R(x,y) to R(z,w); also no R-free path.
		{"qAC3conf :- A(x), R(x,y), R(z,y), R(z,w), C(w)", false},
		// Chain: atoms share y.
		{"qchain :- R(x,y), R(y,z)", false},
	}
	for _, c := range cases {
		q := cq.MustParse(c.text)
		_, _, got := hasBinaryPath(q, "R")
		if got != c.want {
			t.Errorf("%s: hasBinaryPath = %v, want %v", q.Name, got, c.want)
		}
	}
}

// TestRConnectivitySingletons: loop atoms must register their variable
// even though they have a single distinct variable.
func TestRConnectivitySingletons(t *testing.T) {
	q := cq.MustParse("z1 :- R(x,x), S(x,y), R(y,y)")
	x, _ := q.LookupVar("x")
	y, _ := q.LookupVar("y")
	class := rConnectivity(q, "R")
	cx, okx := class[x]
	cy, oky := class[y]
	if !okx || !oky {
		t.Fatalf("classes missing: x=%v y=%v", okx, oky)
	}
	if cx == cy {
		t.Fatalf("x and y in the same R-class (%d); R(x,x) and R(y,y) are disconnected", cx)
	}
}

// TestZ4ClassifiedViaCatalog: after the Theorem 28 tightening, z4 resolves
// through the Section 8 catalog with Proposition 47's citation.
func TestZ4ClassifiedViaCatalog(t *testing.T) {
	cl := Classify(cq.MustParse("z4 :- R(x,x), R(x,y), S(x,y), R(y,y)"))
	if cl.Verdict != NPComplete {
		t.Fatalf("verdict = %v, want NP-complete", cl.Verdict)
	}
	if !hasPrefixStr(cl.Rule, "Proposition 47") {
		t.Fatalf("rule = %q, want Proposition 47", cl.Rule)
	}
}

func hasPrefixStr(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
