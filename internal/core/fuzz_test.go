package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
)

// randomQuery builds a random connected-ish binary CQ over small pools of
// relations and variables, with random exogenous marks — deliberately
// unconstrained so the classifier's full surface (including OutOfScope
// paths) is exercised.
func randomQuery(rng *rand.Rand) *cq.Query {
	q := cq.New("fuzz")
	rels := []string{"R", "R", "R", "S", "T", "A", "B"} // R repeated: self-joins likely
	vars := []string{"x", "y", "z", "w"}
	nAtoms := 1 + rng.Intn(5)
	for i := 0; i < nAtoms; i++ {
		rel := rels[rng.Intn(len(rels))]
		arity := 1 + rng.Intn(2)
		if rel == "A" || rel == "B" {
			arity = 1
		}
		// Keep arities consistent per relation within the query.
		if have := q.Arity(rel); have > 0 {
			arity = have
		}
		args := make([]string, arity)
		for p := range args {
			args[p] = vars[rng.Intn(len(vars))]
		}
		q.AddAtom(rel, args...)
	}
	for _, r := range q.Relations() {
		if rng.Intn(5) == 0 {
			q.MarkExogenous(r)
		}
	}
	return q
}

// renameVars returns q with every variable consistently renamed.
func renameVars(q *cq.Query, prefix string) *cq.Query {
	out := cq.New(q.Name)
	for _, a := range q.Atoms {
		names := make([]string, len(a.Args))
		for p, v := range a.Args {
			names[p] = prefix + q.VarName(v)
		}
		out.AddAtom(a.Rel, names...)
	}
	for r := range q.Exo {
		if q.Exo[r] {
			out.MarkExogenous(r)
		}
	}
	return out
}

// permuteAtoms returns q with the body atoms in a rotated order.
func permuteAtoms(q *cq.Query) *cq.Query {
	out := cq.New(q.Name)
	n := len(q.Atoms)
	for i := 0; i < n; i++ {
		a := q.Atoms[(i+1)%n]
		names := make([]string, len(a.Args))
		for p, v := range a.Args {
			names[p] = q.VarName(v)
		}
		out.AddAtom(a.Rel, names...)
	}
	for r := range q.Exo {
		if q.Exo[r] {
			out.MarkExogenous(r)
		}
	}
	return out
}

// renameRels returns q with every relation consistently renamed.
func renameRels(q *cq.Query) *cq.Query {
	out := cq.New(q.Name)
	mapping := map[string]string{}
	for i, r := range q.Relations() {
		mapping[r] = fmt.Sprintf("Q%d", i)
	}
	for _, a := range q.Atoms {
		names := make([]string, len(a.Args))
		for p, v := range a.Args {
			names[p] = q.VarName(v)
		}
		out.AddAtom(mapping[a.Rel], names...)
	}
	for r, e := range q.Exo {
		if e && mapping[r] != "" {
			out.MarkExogenous(mapping[r])
		}
	}
	return out
}

// TestClassifyMetamorphic: the verdict is a property of the query's
// structure, so it must be invariant under variable renaming, body
// rotation, and consistent relation renaming — and Classify must never
// panic on arbitrary input.
func TestClassifyMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 400; trial++ {
		q := randomQuery(rng)
		base := Classify(q).Verdict
		for name, variant := range map[string]*cq.Query{
			"var-renamed":  renameVars(q, "v_"),
			"rotated":      permuteAtoms(q),
			"rel-renamed":  renameRels(q),
			"double-clone": q.Clone(),
		} {
			if got := Classify(variant).Verdict; got != base {
				t.Fatalf("trial %d (%s): verdict %v != %v\nbase:    %s\nvariant: %s",
					trial, name, got, base, q, variant)
			}
		}
	}
}

// TestClassifyIdempotentOnNormalized: classifying a classification's
// normalized query reproduces the verdict.
func TestClassifyIdempotentOnNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 200; trial++ {
		q := randomQuery(rng)
		cl := Classify(q)
		if cl.Normalized == nil {
			continue
		}
		if got := Classify(cl.Normalized).Verdict; got != cl.Verdict {
			t.Fatalf("trial %d: re-classifying normalized form gives %v, want %v\nquery: %s",
				trial, got, cl.Verdict, q)
		}
	}
}
