// Package core implements the paper's primary contribution: the complexity
// classification of resilience for conjunctive queries with self-joins.
//
// Classify decides, for a given CQ, whether RES(q) is in PTIME or
// NP-complete (or open / out of the paper's classified fragment), returning
// a certificate naming the structural pattern and the paper result that
// justifies the verdict. For single-self-join binary CQs with exactly two
// occurrences of the repeated relation this is the full dichotomy of
// Theorem 37; Section 8's partial results for three occurrences and the
// sj-free dichotomy of [14] (Theorem 7) are included.
package core

import (
	"fmt"

	"repro/internal/cq"
)

// Verdict is the complexity classification of RES(q).
type Verdict int

const (
	// PTime means RES(q) is solvable in polynomial time.
	PTime Verdict = iota
	// NPComplete means RES(q) is NP-complete.
	NPComplete
	// Open means the paper leaves the complexity of RES(q) open.
	Open
	// OutOfScope means q falls outside the fragments classified by the
	// paper (e.g., multiple distinct self-join relations, or non-binary
	// self-join queries without a triad).
	OutOfScope
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case PTime:
		return "PTIME"
	case NPComplete:
		return "NP-complete"
	case Open:
		return "open"
	case OutOfScope:
		return "out-of-scope"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Algorithm identifies which solver the dispatcher should use for a
// PTIME-classified query.
type Algorithm int

const (
	// AlgExact is the general branch-and-bound solver (always sound).
	AlgExact Algorithm = iota
	// AlgLinearFlow is the network-flow solver for linear queries,
	// including one 2-confluence (Proposition 31).
	AlgLinearFlow
	// AlgPermCount counts witnesses for the unbound pure permutation
	// (Proposition 33, qperm).
	AlgPermCount
	// AlgPermBipartiteVC solves the one-side-bound permutation via König
	// (Proposition 33, qAperm).
	AlgPermBipartiteVC
	// AlgPerm3Flow is the modified flow of Propositions 13/44
	// (qA3perm-R, qSwx3perm-R).
	AlgPerm3Flow
	// AlgREPFlow handles the z3 repeated-variable family
	// (Proposition 36).
	AlgREPFlow
	// AlgTS3confFlow is the forced-tuple + flow algorithm of
	// Proposition 41 (qTS3conf).
	AlgTS3confFlow
	// AlgTrivial marks queries with no endogenous atoms (resilience is
	// undefined/unbreakable whenever satisfied).
	AlgTrivial
)

// String renders the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgExact:
		return "exact-hitting-set"
	case AlgLinearFlow:
		return "linear-network-flow"
	case AlgPermCount:
		return "permutation-witness-count"
	case AlgPermBipartiteVC:
		return "permutation-bipartite-vc"
	case AlgPerm3Flow:
		return "perm3-modified-flow"
	case AlgREPFlow:
		return "rep-bipartite-flow"
	case AlgTS3confFlow:
		return "ts3conf-forced-flow"
	case AlgTrivial:
		return "trivial"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Classification is the result of Classify.
type Classification struct {
	// Verdict is the complexity of RES(q).
	Verdict Verdict
	// Rule cites the paper result justifying the verdict, e.g.
	// "Theorem 24 (triads)".
	Rule string
	// Certificate describes the structural pattern found, in terms of the
	// normalized query's atoms.
	Certificate string
	// Normalized is the minimized, domination-normalized query actually
	// classified. Component splitting happens before normalization.
	Normalized *cq.Query
	// Algorithm tells the dispatcher how to solve PTIME instances.
	Algorithm Algorithm
	// Components holds per-component classifications when the (minimized)
	// query is disconnected; Verdict then follows Lemma 15.
	Components []*Classification
}

func (c *Classification) String() string {
	return fmt.Sprintf("%s [%s: %s]", c.Verdict, c.Rule, c.Certificate)
}
