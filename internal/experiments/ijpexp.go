package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/ijp"
	"repro/internal/resilience"
	"repro/internal/vertexcover"
)

// IJP experiments (Section 9, Appendix C, Figures 8 and 17-19).

func init() {
	register("F8", "Figure 8 / Conjecture 49: IJP or-property & generalized VC reduction", runF8)
	register("F17", "Figures 17-19 / Examples 58-61: IJP checker on the paper's examples", runF17)
	register("C2", "Appendix C.2: automated IJP search", runC2)
}

func runF8(rng *rand.Rand) *Report {
	rep := &Report{}
	type target struct {
		name   string
		q      *cq.Query
		build  func() *db.Database
		copies int
	}
	targets := []target{
		{"qvc", cq.MustParse("qvc :- R(x), S(x,y), R(y)"), qvcIJPDB, 3},
		{"qchain", cq.MustParse("qchain :- R(x,y), R(y,z)"), chainIJPDB, 3},
		{"q_triangle", cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)"), triangleIJPDB, 1},
	}
	graphs := []*vertexcover.Graph{
		vertexcover.Path(3), vertexcover.Cycle(4), vertexcover.Star(5),
		vertexcover.Complete(3), vertexcover.RandomGraph(rng, 5, 0.5),
	}
	for _, tg := range targets {
		d := tg.build()
		cert := ijp.Check(tg.q, d)
		if cert == nil {
			rep.Rows = append(rep.Rows, Row{ID: tg.name, Paper: "IJP exists", Measured: "checker rejected", Match: false})
			continue
		}
		// Calibrate β on K2, then validate ρ = VC + β|E| across graphs.
		k2 := vertexcover.NewGraph(2)
		k2.AddEdge(0, 1)
		base, err := ijp.BuildVCReduction(tg.q, cert, k2, tg.copies)
		if err != nil {
			rep.Rows = append(rep.Rows, Row{ID: tg.name, Paper: "chaining works", Measured: err.Error(), Match: false})
			continue
		}
		res, err := resilience.Exact(tg.q, base.DB)
		if err != nil {
			rep.Rows = append(rep.Rows, Row{ID: tg.name, Paper: "chaining works", Measured: err.Error(), Match: false})
			continue
		}
		beta := res.Rho - 1
		okCount := 0
		for _, g := range graphs {
			if g.NumEdges() == 0 {
				okCount++
				continue
			}
			red, err := ijp.BuildVCReduction(tg.q, cert, g, tg.copies)
			if err != nil {
				continue
			}
			r2, err := resilience.Exact(tg.q, red.DB)
			vc, _ := g.MinVertexCover()
			if err == nil && r2.Rho == vc+beta*g.NumEdges() {
				okCount++
			}
		}
		rep.Rows = append(rep.Rows, Row{
			ID:       tg.name,
			Paper:    "ρ(D_G) = VC(G) + β·|E| (or-property, Fig 8)",
			Measured: fmt.Sprintf("β=%d, equality on %d/%d graphs", beta, okCount, len(graphs)),
			Match:    okCount == len(graphs),
		})
	}
	return rep
}

func runF17(rng *rand.Rand) *Report {
	rep := &Report{}
	// Example 58.
	{
		q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
		d := qvcIJPDB()
		cert := ijp.Check(q, d)
		rep.Rows = append(rep.Rows, Row{
			ID: "Example 58 (qvc)", Paper: "IJP with ρ=1",
			Measured: certString(cert), Match: cert != nil && cert.Rho == 1,
		})
	}
	// Example 59.
	{
		q := cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)")
		d := triangleIJPDB()
		a := db.NewTuple("R", d.Const("1"), d.Const("2"))
		b := db.NewTuple("R", d.Const("4"), d.Const("5"))
		cert, _ := ijp.CheckPair(q, d, a, b)
		rep.Rows = append(rep.Rows, Row{
			ID: "Example 59 (triangle, Fig 18)", Paper: "IJP with ρ=2",
			Measured: certString(cert), Match: cert != nil && cert.Rho == 2,
		})
	}
	// Example 60 — the erratum.
	{
		q := cq.MustParse("z5 :- A(x), R(x,y), R(y,z), R(z,z)")
		d := z5ExampleDB()
		a := db.NewTuple("A", d.Const("9"))
		b := db.NewTuple("A", d.Const("13"))
		cert, reason := ijp.CheckPair(q, d, a, b)
		rep.Rows = append(rep.Rows, Row{
			ID:       "Example 60 (z5, Fig 19) [ERRATUM]",
			Paper:    "claims IJP with ρ=4, removals -> 3",
			Measured: fmt.Sprintf("cert=%v; %s", cert != nil, reason),
			Match:    cert == nil, // we reproduce the measured failure
		})
	}
	// Example 61 — condition 4 rejection.
	{
		q := cq.MustParse("q :- A(x)^x, R(x), S(x,y), S(z,y), R(z), B(z)^x")
		d := db.New()
		d.AddNames("R", "1")
		d.AddNames("A", "1")
		d.AddNames("S", "1", "2")
		d.AddNames("S", "3", "2")
		d.AddNames("R", "3")
		d.AddNames("B", "3")
		a := db.NewTuple("R", d.Const("1"))
		b := db.NewTuple("R", d.Const("3"))
		cert, reason := ijp.CheckPair(q, d, a, b)
		rep.Rows = append(rep.Rows, Row{
			ID: "Example 61 (condition 4)", Paper: "candidate rejected by condition 4",
			Measured: fmt.Sprintf("cert=%v; %s", cert != nil, reason), Match: cert == nil,
		})
	}
	rep.Notes = append(rep.Notes,
		"Example 60's database, as printed in the paper, fails condition 5: removing A(13) leaves ρ=4 because witness (5,2,3) survives the claimed size-3 contingency sets (see EXPERIMENTS.md)")
	return rep
}

func runC2(rng *rand.Rand) *Report {
	rep := &Report{}
	type sc struct {
		q         string
		expectIJP bool
		maxJoins  int
	}
	cases := []sc{
		{"qvc :- R(x), S(x,y), R(y)", true, 1},
		{"qchain :- R(x,y), R(y,z)", true, 1},
		{"qperm :- R(x,y), R(y,x)", false, 3},
		{"qAperm :- A(x), R(x,y), R(y,x)", false, 2},
	}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		cert, tested, exhausted := ijp.Search(q, c.maxJoins, 9)
		got := cert != nil
		rep.Rows = append(rep.Rows, Row{
			ID:       q.Name,
			Paper:    fmt.Sprintf("IJP exists: %v (Conjecture 49)", c.expectIJP),
			Measured: fmt.Sprintf("found=%v after %d candidates (exhausted=%v)", got, tested, exhausted),
			Match:    got == c.expectIJP,
		})
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "Bell(9)",
		Paper:    "21147 partitions (Example 62)",
		Measured: fmt.Sprintf("%d", ijp.CountPartitions(9)),
		Match:    ijp.CountPartitions(9) == 21147,
	})
	return rep
}

func certString(c *ijp.Certificate) string {
	if c == nil {
		return "no certificate"
	}
	return c.String()
}

func qvcIJPDB() *db.Database {
	d := db.New()
	d.AddNames("R", "1")
	d.AddNames("S", "1", "2")
	d.AddNames("R", "2")
	return d
}

func chainIJPDB() *db.Database {
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	return d
}

func triangleIJPDB() *db.Database {
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "4", "2")
	d.AddNames("R", "4", "5")
	d.AddNames("S", "2", "3")
	d.AddNames("S", "5", "3")
	d.AddNames("T", "3", "1")
	d.AddNames("T", "3", "4")
	return d
}

func z5ExampleDB() *db.Database {
	d := db.New()
	for _, a := range []string{"1", "4", "5", "9", "13"} {
		d.AddNames("A", a)
	}
	pairs := [][2]string{
		{"1", "2"}, {"2", "2"}, {"2", "3"}, {"3", "3"}, {"4", "1"}, {"5", "2"},
		{"5", "6"}, {"6", "7"}, {"7", "7"}, {"8", "7"}, {"9", "8"},
		{"1", "10"}, {"10", "11"}, {"11", "11"}, {"12", "11"}, {"13", "12"},
	}
	for _, p := range pairs {
		d.AddNames("R", p[0], p[1])
	}
	return d
}
