// Package experiments regenerates every table and figure of the paper's
// evaluation-relevant content and reports paper-vs-measured rows. The
// cmd/experiments binary prints the full report; bench_test.go wraps each
// experiment in a benchmark so `go test -bench=.` reproduces everything.
//
// Because the paper is a complexity paper, its "figures" are query
// classifications, PTIME algorithms, and hardness gadgets; the measured
// side is produced by this repository's classifier, solvers, executable
// reductions, and exact oracle.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Row is a single paper-vs-measured comparison.
type Row struct {
	ID       string // e.g. "F5/qchain"
	Paper    string // what the paper states
	Measured string // what this repository measures
	Match    bool
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
	Took  time.Duration
}

// Matches reports whether every row matched.
func (r *Report) Matches() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// Write renders the report as aligned text.
func (r *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s (%v)\n", r.ID, r.Title, r.Took.Round(time.Millisecond))
	idW, paperW := len("row"), len("paper")
	for _, row := range r.Rows {
		if len(row.ID) > idW {
			idW = len(row.ID)
		}
		if len(row.Paper) > paperW {
			paperW = len(row.Paper)
		}
	}
	fmt.Fprintf(w, "   %-*s  %-*s  %s\n", idW, "row", paperW, "paper", "measured")
	for _, row := range r.Rows {
		mark := "ok"
		if !row.Match {
			mark = "MISMATCH"
		}
		fmt.Fprintf(w, "   %-*s  %-*s  %s  [%s]\n", idW, row.ID, paperW, row.Paper, row.Measured, mark)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a runnable experiment with a stable identifier.
type Experiment struct {
	ID    string
	Title string
	Run   func(rng *rand.Rand) *Report
}

var registry []Experiment

func register(id, title string, run func(rng *rand.Rand) *Report) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			cp := e
			return &cp
		}
	}
	return nil
}

// RunAll executes every experiment with a fixed seed and writes reports.
// It returns the number of mismatching rows. Experiments run concurrently
// on GOMAXPROCS workers; each has its own seeded rng and the packages they
// exercise are stateless, so results and report order are identical to a
// sequential run.
func RunAll(w io.Writer) int {
	return RunAllParallel(w, runtime.GOMAXPROCS(0))
}

// RunAllParallel is RunAll on a bounded worker pool (workers <= 0 means
// GOMAXPROCS). Reports are written in experiment-ID order regardless of
// completion order, so output is deterministic.
func RunAllParallel(w io.Writer, workers int) int {
	exps := All()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	reps := make([]*Report, len(exps))
	idx := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range idx {
				reps[j] = run(exps[j])
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()

	mismatches := 0
	for _, rep := range reps {
		rep.Write(w)
		for _, row := range rep.Rows {
			if !row.Match {
				mismatches++
			}
		}
	}
	return mismatches
}

func run(e Experiment) *Report {
	start := time.Now()
	rep := e.Run(rand.New(rand.NewSource(2020))) // PODS 2020
	rep.ID = e.ID
	rep.Title = e.Title
	rep.Took = time.Since(start)
	return rep
}

// RunByID runs one experiment (for benchmarks).
func RunByID(id string) *Report {
	e := ByID(id)
	if e == nil {
		panic("experiments: unknown id " + id)
	}
	return run(*e)
}
