package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/reduction"
	"repro/internal/resilience"
	"repro/internal/vertexcover"
)

// Experiments for the generic, query-parametric reductions of Sections 5-7:
// Lemma 21 (self-join variations), Theorems 27/28 via the generic path
// reduction, and the witness-preserving embeddings behind Propositions 30
// and 35. Each is validated by exact-resilience equality on randomized
// instances.

func init() {
	register("S5", "Lemma 21: self-join variations preserve resilience", runS5)
	register("S6", "Thms 27/28 + Props 30/35: generic path reduction and embeddings", runS6)
}

func rhoOrMinusOne(q *cq.Query, d *db.Database) int {
	res, err := resilience.Exact(q, d)
	if err != nil {
		return -1
	}
	return res.Rho
}

func runS5(rng *rand.Rand) *Report {
	rep := &Report{}
	qfree := cq.MustParse("qtriangle :- R(x,y), S(y,z), T(z,x)")
	variations := []*cq.Query{
		cq.MustParse("qsj1 :- R(x,y), R(y,z), R(z,x)"),
		cq.MustParse("qsj2 :- R(x,y), R(y,z), T(z,x)"),
		cq.MustParse("qsj3 :- R(x,y), S(y,z), R(z,x)"),
	}
	for _, qsj := range variations {
		ok, trials := 0, 10
		for i := 0; i < trials; i++ {
			d := datagen.Random(rng, qfree, 5, 8, 0)
			if !eval.Satisfied(qfree, d) {
				ok++
				continue
			}
			dsj, err := reduction.SelfJoinVariationDB(qfree, qsj, d)
			if err == nil && rhoOrMinusOne(qfree, d) == rhoOrMinusOne(qsj, dsj) {
				ok++
			}
		}
		rep.Rows = append(rep.Rows, Row{
			ID:       fmt.Sprintf("qtriangle -> %s", qsj.Name),
			Paper:    "ρ preserved exactly (Lemma 21)",
			Measured: fmt.Sprintf("ρ equal on %d/%d random instances", ok, trials),
			Match:    ok == trials,
		})
	}
	// Example 22: the non-minimal variation must be rejected.
	qf := cq.MustParse("q :- R(x,y), S(z,y), T(z,w), A(x,w)")
	qn := cq.MustParse("qsj :- R(x,y), R(z,y), R(z,w), R(x,w)")
	_, err := reduction.SelfJoinVariationDB(qf, qn, db.New())
	rep.Rows = append(rep.Rows, Row{
		ID:       "Example 22 (non-minimal)",
		Paper:    "Lemma 21 requires qsj minimal",
		Measured: fmt.Sprintf("rejected: %v", err != nil),
		Match:    err != nil,
	})
	return rep
}

func runS6(rng *rand.Rand) *Report {
	rep := &Report{}

	// Generic path reduction (Theorems 27/28): ρ(q, D_G) = VC(G).
	for _, qs := range []string{
		"qpath2 :- R(x), S(x,u), T(u,y), R(y)",
		"z1 :- R(x,x), S(x,y), R(y,y)",
		"qbinpath :- R(x,y), S(y,z), R(z,w)",
	} {
		q := cq.MustParse(qs)
		ok, trials := 0, 8
		for i := 0; i < trials; i++ {
			g := vertexcover.RandomGraph(rng, 3+rng.Intn(4), 0.5)
			if g.NumEdges() == 0 {
				ok++
				continue
			}
			red, err := reduction.NewPathVC(q, g)
			if err != nil {
				continue
			}
			vc, _ := g.MinVertexCover()
			if rhoOrMinusOne(q, red.DB) == vc {
				ok++
			}
		}
		rep.Rows = append(rep.Rows, Row{
			ID:       q.Name,
			Paper:    "ρ(q, D') = VC(G) (Thms 27/28)",
			Measured: fmt.Sprintf("equal on %d/%d random graphs", ok, trials),
			Match:    ok == trials,
		})
	}

	// Chain embedding (Proposition 30).
	qsrc := cq.MustParse("qachain :- A(x), R(x,y), R(y,z)")
	qdst := cq.MustParse("q :- A(x), R(x,y), R(y,z), S(z,u), F(u,w)")
	ok, trials := 0, 8
	for i := 0; i < trials; i++ {
		d := datagen.Random(rng, qsrc, 5, 8, 0)
		if !eval.Satisfied(qsrc, d) {
			ok++
			continue
		}
		dd, err := reduction.Embed(qsrc, qdst, map[string]string{"x": "x", "y": "y", "z": "z"}, d)
		if err == nil && rhoOrMinusOne(qsrc, d) == rhoOrMinusOne(qdst, dd) {
			ok++
		}
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "chain embedding",
		Paper:    "ρ preserved (Prop 30)",
		Measured: fmt.Sprintf("ρ equal on %d/%d random instances", ok, trials),
		Match:    ok == trials,
	})

	// Bound-permutation embedding (Proposition 35 case 2).
	psrc := cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)")
	pdst := cq.MustParse("q :- A(x), S(u,x), R(x,y), R(y,x), B(y), T(y,w)")
	varMap, vmErr := reduction.PermVarMap(pdst, "x", "y")
	ok = 0
	for i := 0; i < trials; i++ {
		d := datagen.Random(rng, psrc, 5, 8, 0.5)
		if !eval.Satisfied(psrc, d) {
			ok++
			continue
		}
		dd, err := reduction.Embed(psrc, pdst, varMap, d)
		if vmErr == nil && err == nil && rhoOrMinusOne(psrc, d) == rhoOrMinusOne(pdst, dd) {
			ok++
		}
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "bound-permutation embedding",
		Paper:    "ρ preserved (Prop 35 case 2)",
		Measured: fmt.Sprintf("ρ equal on %d/%d random instances", ok, trials),
		Match:    vmErr == nil && ok == trials,
	})
	return rep
}
