package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/hardness"
	"repro/internal/ijp"
	"repro/internal/resilience"
	"repro/internal/vertexcover"
)

// Experiment C3 upgrades C2 (Appendix C.2's IJP search) to the paper's
// full Section 9 program: automatically *discover and validate* hardness
// reductions for the Section 8 catalog. A query passes when the hunt
// produces an IJP whose chained Figure 8 reduction empirically satisfies
// ρ(q, D_G) = VC(G) + β·|E| — an executable NP-hardness proof that the
// paper obtained by hand (Propositions 38, 42, 45, 46, 47).
//
// Findings recorded in EXPERIMENTS.md:
//   - q3chain, z4, qSxy3perm-R, qAS3cc and qAC3perm-R get fully automated
//     hardness gadgets (qSxy3perm-R is notable: the paper needed "a new
//     reduction" for Proposition 45; the hunt finds one in milliseconds);
//   - qAC3conf's k ≤ 2 certificates do not compose, but an offline k = 3
//     deep search found a 13-tuple chainable gadget, pinned in
//     internal/hardness; qC3cc and qAC3cc remain Def.-48-only so far;
//   - the PTIME neighbours (qTS3conf, qSwx3perm-R) yield no certificate,
//     consistent with the conjecture that easy queries admit no IJP.

func init() {
	register("C3", "Section 9 program: automated hardness proofs for the Section 8 catalog", runC3)
}

func runC3(rng *rand.Rand) *Report {
	rep := &Report{}

	// Hard queries where the hunt succeeds within small bounds.
	chainable := []struct {
		text  string
		cite  string
		joins int
	}{
		{"q3chain :- R(x,y), R(y,z), R(z,w)", "Prop 38", 2},
		{"z4 :- R(x,x), R(x,y), S(x,y), R(y,y)", "Prop 47", 2},
		{"qSxy :- S(x,y)^x, R(x,y), R(y,z), R(z,y)", "Prop 45", 2},
		{"qAS3cc :- A(x), R(x,y), R(y,z), R(w,z), S(w,z)", "Prop 42", 2},
	}
	for _, c := range chainable {
		q := cq.MustParse(c.text)
		cert, tested, _ := ijp.SearchChainable(q, c.joins, 8)
		measured := "no chainable IJP"
		ok := false
		if cert != nil {
			// Out-of-battery spot check on a graph the calibration never saw.
			g := vertexcover.Cycle(5)
			ok = chainHolds(q, cert, g)
			measured = fmt.Sprintf("auto gadget: β=%d, %d candidates searched, C5 check ok=%v", cert.Beta, tested, ok)
		}
		rep.Rows = append(rep.Rows, Row{
			ID:       fmt.Sprintf("%s (%s)", q.Name, c.cite),
			Paper:    "NP-complete via hand-built reduction",
			Measured: measured,
			Match:    ok,
		})
	}

	// qAC3conf: the k ≤ 2 certificates do not compose, but the offline
	// k = 3 deep search (Bell(12) ≈ 4.2M candidates, ~26 minutes) found a
	// 13-tuple chainable gadget, pinned in internal/hardness and
	// re-verified here through hardness.Build — a fully automated
	// replacement for the untranscribable Figure 15 construction.
	{
		q := cq.MustParse("qAC3conf :- A(x), R(x,y), R(z,y), R(z,w), C(w)")
		r, err := hardness.Build(q)
		ok := false
		measured := fmt.Sprintf("no reduction: %v", err)
		if err == nil {
			g := vertexcover.Path(4)
			vc, _ := g.MinVertexCover()
			inst, ierr := r.FromVC(g, vc)
			if ierr == nil {
				dec, derr := resilience.Decide(r.Target, inst.DB, inst.K)
				ok = derr == nil && dec
				measured = fmt.Sprintf("pinned k=3 gadget (%s): P4 yes-instance check %v", r.Gadget, ok)
			}
		}
		rep.Rows = append(rep.Rows, Row{
			ID:       "qAC3conf (Prop 39)",
			Paper:    "NP-complete via Max 2SAT (Figure 15)",
			Measured: measured,
			Match:    ok,
		})
	}

	// qC3cc: Definition 48 holds within k ≤ 2 but no certificate there
	// composes; its k = 3 space remains open.
	{
		q := cq.MustParse("qC3cc :- R(x,y), R(y,z), R(w,z), C(w)")
		cert, _, _ := ijp.Search(q, 2, 8)
		rep.Rows = append(rep.Rows, Row{
			ID:       q.Name + " (Prop 43)",
			Paper:    "NP-complete via Max 2SAT; IJP conjectured (Conj 49)",
			Measured: fmt.Sprintf("Def. 48 IJP found: %v (chaining open at k≤2)", cert != nil),
			Match:    cert != nil,
		})
	}

	// PTIME neighbours. Finding: Definition 48 *as literally stated* is
	// satisfied by small databases for both of these PTIME queries — but
	// none of those certificates survives the chained or-property, so the
	// generalized VC reduction (the content of Conjecture 49) never
	// materializes. Literal Def. 48 is therefore not by itself a
	// sufficient hardness criterion; chainability is the operative one.
	for _, text := range []string{
		"qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x",
		"qSwx :- S(w,x), R(x,y), R(y,z), R(z,y)",
	} {
		q := cq.MustParse(text)
		def48, _, _ := ijp.Search(q, 2, 8)
		chain, tested, _ := ijp.SearchChainable(q, 2, 8)
		rep.Rows = append(rep.Rows, Row{
			ID:       q.Name + " (PTIME, Props 41/44)",
			Paper:    "PTIME — conjectured to admit no IJP",
			Measured: fmt.Sprintf("literal Def.48 cert: %v; chainable gadget in %d candidates: %v", def48 != nil, tested, chain != nil),
			Match:    chain == nil,
		})
	}

	rep.Notes = append(rep.Notes,
		"FINDING: literal Definition 48 admits certificates for the PTIME queries qTS3conf and qSwx3perm-R, but none composes under chaining — Conjecture 49 needs the chained or-property, not Def. 48 alone (see EXPERIMENTS.md)",
		"qAC3perm-R (Prop 46) also gets an automated gadget at k=3 (β=4, endpoints in C), validated offline (~9s search); omitted here to keep the harness fast",
		"qAB3permR and z5 exhaust the k≤3 quotient space without a certificate; their IJPs (if any) need richer canonical databases than Appendix C.2's sketch")
	return rep
}

// chainHolds validates ρ(q, D_G) = VC(G) + β·|E| for one graph.
func chainHolds(q *cq.Query, cert *ijp.ChainableCertificate, g *vertexcover.Graph) bool {
	red, err := ijp.BuildVCReduction(q, cert.Certificate, g, cert.Copies)
	if err != nil {
		return false
	}
	vc, _ := g.MinVertexCover()
	want := vc + cert.Beta*g.NumEdges()
	res, err := resilience.ExactWithBudget(q, red.DB, want)
	return err == nil && res.Rho == want
}
