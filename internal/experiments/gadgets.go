package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"

	"repro/internal/cq"
	"repro/internal/reduction"
	"repro/internal/resilience"
	"repro/internal/sat"
	"repro/internal/vertexcover"
)

// Gadget experiments: the executable hardness reductions of Figures 8-16,
// verified against real SAT / vertex cover oracles and the exact solver.

func init() {
	register("F4", "Figure 4 / Thms 27-28: paths are hard (VC reduction)", runF4)
	register("F10", "Figure 10 / Prop 10: 3SAT -> RES(qchain) gadget", runF10)
	register("F11", "Figures 11-12 / Lemmas 52-54: unary chain expansions", runF11)
	register("F14", "Figure 14 / Prop 34: 3SAT -> RES(qABperm) gadget", runF14)
	register("F16", "Figure 16 / Prop 56, Lemmas 50-51: 3SAT -> RES(q_triangle) and self-join rats/brats gadgets", runF16)
}

func runF4(rng *rand.Rand) *Report {
	rep := &Report{}
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	ok, trials := 0, 15
	for i := 0; i < trials; i++ {
		g := vertexcover.RandomGraph(rng, 4+rng.Intn(5), 0.5)
		if g.NumEdges() == 0 {
			ok++
			continue
		}
		d := reduction.VCtoQVC(g)
		res, err := resilience.Exact(q, d)
		vc, _ := g.MinVertexCover()
		if err == nil && res.Rho == vc {
			ok++
		}
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "VC ≡ RES(qvc) (Prop 9)",
		Paper:    "(G,k) ∈ VC ⇔ (D_G,k) ∈ RES(qvc)",
		Measured: fmt.Sprintf("ρ == VC on %d/%d random graphs", ok, trials),
		Match:    ok == trials,
	})
	// Path verdicts (Theorems 27/28 shapes).
	rep.Rows = append(rep.Rows,
		verdictRowStr("unary path (Thm 27)", "q :- R(x), S(x,y), T(y,z), R(z)", "NP-complete"),
		verdictRowStr("binary path (Thm 28)", "q :- R(x,y), S(y,z), R(z,w)", "NP-complete"))
	return rep
}

func verdictRowStr(id, qs, want string) Row {
	cl := classify(qs)
	return Row{ID: id, Paper: want, Measured: cl, Match: cl == want || len(cl) >= len(want) && cl[:len(want)] == want}
}

func classify(qs string) string {
	return core.Classify(cq.MustParse(qs)).Verdict.String()
}

// runF10 verifies the chain gadget on a battery of formulas against the SAT oracle.
func runF10(rng *rand.Rand) *Report {
	rep := &Report{}
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	formulas := gadgetFormulas(rng)
	for i, psi := range formulas {
		red := reduction.NewChain3SAT(psi)
		want := psi.Satisfiable()
		got, err := resilience.Decide(q, red.DB, red.K)
		rep.Rows = append(rep.Rows, Row{
			ID:       fmt.Sprintf("ψ%d (n=%d m=%d)", i+1, psi.NumVars, len(psi.Clauses)),
			Paper:    fmt.Sprintf("sat=%v ⇔ ρ≤k=%d", want, red.K),
			Measured: fmt.Sprintf("ρ≤k: %v (err=%v)", got, err),
			Match:    err == nil && got == want,
		})
	}
	return rep
}

func runF11(rng *rand.Rand) *Report {
	rep := &Report{}
	cases := []struct {
		q     string
		unary []string
	}{
		{"qachain :- A(x), R(x,y), R(y,z)", []string{"A"}},
		{"qcchain :- R(x,y), R(y,z), C(z)", []string{"C"}},
		{"qacchain :- A(x), R(x,y), R(y,z), C(z)", []string{"A", "C"}},
		{"qabcchain :- A(x), R(x,y), B(y), R(y,z), C(z)", []string{"A", "B", "C"}},
	}
	satPsi := &sat.Formula{NumVars: 3, Clauses: []sat.Clause{{1, -2, 3}, {-1, 2, 3}}}
	unsatPsi := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1, 1, 1}, {-1, -1, -1}}}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		for _, psi := range []*sat.Formula{satPsi, unsatPsi} {
			red := reduction.NewChain3SAT(psi, c.unary...)
			want := psi.Satisfiable()
			got, err := resilience.Decide(q, red.DB, red.K)
			rep.Rows = append(rep.Rows, Row{
				ID:       fmt.Sprintf("%s sat=%v", q.Name, want),
				Paper:    "ψ ∈ 3SAT ⇔ ρ = kψ (Lemmas 52-54)",
				Measured: fmt.Sprintf("ρ≤k: %v (k=%d, err=%v)", got, red.K, err),
				Match:    err == nil && got == want,
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"layouts: LayoutIn for A-expansions, mirrored LayoutIn for C, LayoutStar for A+C (see reduction.LayoutFor)")
	return rep
}

func runF14(rng *rand.Rand) *Report {
	rep := &Report{}
	q := cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)")
	formulas := []*sat.Formula{
		{NumVars: 3, Clauses: []sat.Clause{{1, 2, 3}}},
		{NumVars: 3, Clauses: []sat.Clause{{-1, -2, -3}}},
		{NumVars: 1, Clauses: []sat.Clause{{1, 1, 1}, {-1, -1, -1}}},
	}
	for i, psi := range formulas {
		red := reduction.NewPermAB3SAT(psi)
		want := psi.Satisfiable()
		got, err := resilience.Decide(q, red.DB, red.K)
		rep.Rows = append(rep.Rows, Row{
			ID:       fmt.Sprintf("ψ%d (n=%d m=%d)", i+1, psi.NumVars, len(psi.Clauses)),
			Paper:    fmt.Sprintf("sat=%v ⇔ ρ≤k=%d", want, red.K),
			Measured: fmt.Sprintf("ρ≤k: %v (err=%v)", got, err),
			Match:    err == nil && got == want,
		})
	}
	return rep
}

// runF16 verifies the triangle gadget of Proposition 56 (Figure 16) and
// its self-join variations (Lemmas 50-51) against the SAT oracle: ψ ∈ 3SAT iff the
// gadget database admits a contingency set of size kψ = 6mn.
func runF16(rng *rand.Rand) *Report {
	rep := &Report{}
	targets := []struct {
		q     *cq.Query
		build func(*sat.Formula) *reduction.Triangle3SAT
		cite  string
	}{
		{cq.MustParse("qtriangle :- R(x,y), S(y,z), T(z,x)"), reduction.NewTriangle3SAT, "Prop 56"},
		{cq.MustParse("qsj1rats :- R(x,y), A(x), R(y,z), R(z,x)"), reduction.NewRats3SAT, "Lemma 50"},
		{cq.MustParse("qsj1brats :- B(y), R(x,y), A(x), R(z,x), R(y,z)"), reduction.NewBrats3SAT, "Lemma 51"},
	}
	formulas := []*sat.Formula{
		{NumVars: 3, Clauses: []sat.Clause{{1, -2, 3}}},
		{NumVars: 2, Clauses: []sat.Clause{{1, 2}, {-1, 2}}},
		{NumVars: 1, Clauses: []sat.Clause{{1}, {-1}}}, // unsat
	}
	for _, tgt := range targets {
		for i, psi := range formulas {
			red := tgt.build(psi)
			want := psi.Satisfiable()
			got, err := resilience.Decide(tgt.q, red.DB, red.K)
			rep.Rows = append(rep.Rows, Row{
				ID:       fmt.Sprintf("%s ψ%d (%s)", tgt.q.Name, i+1, tgt.cite),
				Paper:    fmt.Sprintf("sat=%v ⇔ ρ≤k=%d", want, red.K),
				Measured: fmt.Sprintf("ρ≤k: %v (err=%v)", got, err),
				Match:    err == nil && got == want,
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"variable gadget: cycle of 12m RGB triangles, only minimum covers are the two alternating 6m-edge sets (kψ = 6mn as in the paper)")
	return rep
}

// gadgetFormulas returns a deterministic battery: a few satisfiable random
// formulas plus the canonical unsatisfiable pair.
func gadgetFormulas(rng *rand.Rand) []*sat.Formula {
	out := []*sat.Formula{
		{NumVars: 3, Clauses: []sat.Clause{{1, 2, 3}}},
		{NumVars: 1, Clauses: []sat.Clause{{1, 1, 1}, {-1, -1, -1}}},
	}
	for i := 0; i < 3; i++ {
		out = append(out, sat.Random3SAT(rng, 3, 2))
	}
	return out
}
