package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/reduction"
	"repro/internal/resilience"
	"repro/internal/sat"
)

// Scaling experiments (ours, "E1"): the PTIME solvers scale polynomially
// with instance size while the exact solver blows up on hard gadget
// instances — the operational meaning of the dichotomy.

func init() {
	register("E1", "Scaling: flow solvers vs exact search", runE1)
	register("S7", "Theorem 37: exhaustive two-R-atom dichotomy check", runS7)
}

func runE1(rng *rand.Rand) *Report {
	rep := &Report{}
	// Easy side: qACconf at growing sizes via LinearFlow.
	q := cq.MustParse("qACconf :- A(x), R(x,y), R(z,y), C(z)")
	for _, n := range []int{50, 100, 200} {
		d := datagen.ConfluenceDB(rng, n, n, 3)
		start := time.Now()
		res, err := resilience.LinearFlow(q, d)
		took := time.Since(start)
		ok := err == nil
		rho := -1
		if ok {
			rho = res.Rho
		}
		rep.Rows = append(rep.Rows, Row{
			ID:       fmt.Sprintf("flow qACconf n=%d (%d tuples)", n, d.Len()),
			Paper:    "PTIME (Prop 12)",
			Measured: fmt.Sprintf("ρ=%d in %v", rho, took.Round(time.Microsecond)),
			Match:    ok,
		})
	}
	// Hard side: exact solver on growing 3SAT chain gadgets; time grows
	// super-linearly with formula size (the instances are NP-hard).
	qc := cq.MustParse("qchain :- R(x,y), R(y,z)")
	for _, m := range []int{1, 2, 3} {
		psi := sat.Random3SAT(rng, 3, m)
		red := reduction.NewChain3SAT(psi)
		start := time.Now()
		_, err := resilience.ExactWithBudget(qc, red.DB, red.K)
		took := time.Since(start)
		rep.Rows = append(rep.Rows, Row{
			ID:       fmt.Sprintf("exact chain gadget m=%d (k=%d)", m, red.K),
			Paper:    "NP-complete (Prop 10)",
			Measured: fmt.Sprintf("decided in %v", took.Round(time.Microsecond)),
			Match:    err == nil,
		})
	}
	rep.Notes = append(rep.Notes,
		"absolute times are machine-specific; the shape (flow linear-ish, exact super-polynomial in gadget size) is the claim")
	return rep
}

// runS7 enumerates a structured family of ssj binary queries with exactly
// two R-atoms and checks that (a) the classifier never answers Open inside
// the Theorem 37 fragment, and (b) on PTIME verdicts the dispatched solver
// agrees with the exact oracle on random instances.
func runS7(rng *rand.Rand) *Report {
	rep := &Report{}
	queries := enumerateTwoRAtomQueries()
	open, total := 0, 0
	ptime, npc := 0, 0
	solverOK, solverTrials := 0, 0
	for _, q := range queries {
		cl := core.Classify(q)
		total++
		switch cl.Verdict {
		case core.PTime:
			ptime++
			// Consistency: Solve == Exact on random instances.
			for t := 0; t < 2; t++ {
				d := datagen.RandomWithLoops(rng, q, 4, 5, 0.3)
				got, _, err := resilience.Solve(q, d)
				if err != nil {
					continue
				}
				want, err := resilience.Exact(q, d)
				if err != nil {
					continue
				}
				solverTrials++
				if got.Rho == want.Rho {
					solverOK++
				}
			}
		case core.NPComplete:
			npc++
		default:
			open++
		}
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "totality",
		Paper:    "dichotomy: every two-R-atom ssj binary query is PTIME or NP-complete",
		Measured: fmt.Sprintf("%d queries: %d PTIME, %d NP-complete, %d unresolved", total, ptime, npc, open),
		Match:    open == 0,
	})
	rep.Rows = append(rep.Rows, Row{
		ID:       "solver consistency",
		Paper:    "PTIME verdicts come with correct algorithms",
		Measured: fmt.Sprintf("Solve==Exact on %d/%d random instances", solverOK, solverTrials),
		Match:    solverOK == solverTrials,
	})
	return rep
}

// enumerateTwoRAtomQueries builds a structured family: two binary R-atoms
// over up to 4 variables in every argument combination, with companion
// menus covering unary endogenous bounds and exogenous bridges. Non-ssj or
// trivial (single-atom after dedup) shapes are skipped.
func enumerateTwoRAtomQueries() []*cq.Query {
	vars := []string{"x", "y", "z", "w"}
	companions := [][]string{
		nil,
		{"A(x)"},
		{"A(x)", "B(y)"},
		{"A(x)", "C(z)"},
		{"A(x)", "B(y)", "C(z)"},
		{"H(x,z)^x"},
		{"A(x)", "H(x,z)^x"},
	}
	var out []*cq.Query
	seen := map[string]bool{}
	for _, a1 := range vars[:2] { // first atom starts at x or y
		for _, a2 := range vars {
			for _, b1 := range vars {
				for _, b2 := range vars {
					if a1 == "y" && (a2 != "x" || b1 != "x") {
						continue // prune redundant alpha-variants
					}
					atom1 := "R(" + a1 + "," + a2 + ")"
					atom2 := "R(" + b1 + "," + b2 + ")"
					if atom1 == atom2 {
						continue
					}
					for _, comp := range companions {
						body := atom1 + ", " + atom2
						usable := true
						for _, c := range comp {
							body += ", " + c
						}
						if !usable {
							continue
						}
						q, err := cq.Parse("q :- " + body)
						if err != nil {
							continue
						}
						// Restrict to connected, genuinely two-R-atom
						// minimal shapes in the ssj fragment.
						m := q.Minimize()
						if !m.IsConnected() || len(m.AtomsOf("R")) != 2 {
							continue
						}
						key := m.String()
						if seen[key] {
							continue
						}
						seen[key] = true
						out = append(out, q)
					}
				}
			}
		}
	}
	return out
}
