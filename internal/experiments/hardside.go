package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/hardness"
	"repro/internal/resilience"
	"repro/internal/sat"
	"repro/internal/vertexcover"
)

// Experiment H1: the dichotomy, executable on BOTH sides. The PTIME side
// of Theorem 37 ships algorithms (experiments F3/F7/S7 validate them);
// H1 shows that for every hardness rule the classifier can cite, the
// repository materializes a working reduction — a concrete RES(q)
// membership instance per Vertex Cover / 3SAT question — and verifies it
// against the exact solver on a yes- and a no-instance.

func init() {
	register("H1", "Executable hard side: a verified reduction per hardness rule", runH1)
}

func runH1(rng *rand.Rand) *Report {
	rep := &Report{}
	cases := []struct {
		text string
		rule string // expected classifier rule family
	}{
		{"qvc :- R(x), S(x,y), R(y)", "Theorem 27"},
		{"z1 :- R(x,x), S(x,y), R(y,y)", "Theorem 28"},
		{"qachain :- A(x), R(x,y), R(y,z)", "Proposition 30"},
		{"cfp :- R(x,y), H(x,z)^x, R(z,y)", "Proposition 32"},
		{"qABext :- A(x), S(u,x), R(x,y), R(y,x), B(y)", "Proposition 35"},
		{"qtriangle :- R(x,y), S(y,z), T(z,x)", "Theorem 24"},
		{"q3chain :- R(x,y), R(y,z), R(z,w)", "Proposition 38"},
		{"z4 :- R(x,x), R(x,y), S(x,y), R(y,y)", "Proposition 47"},
		{"qSxy :- S(x,y)^x, R(x,y), R(y,z), R(z,y)", "Proposition 45"},
	}
	for _, c := range cases {
		q := cq.MustParse(c.text)
		r, err := hardness.Build(q)
		if err != nil {
			rep.Rows = append(rep.Rows, Row{
				ID: q.Name, Paper: c.rule + " (NP-complete)",
				Measured: fmt.Sprintf("no reduction: %v", err), Match: false,
			})
			continue
		}
		yes, no, err := verifyReduction(r)
		rep.Rows = append(rep.Rows, Row{
			ID:       q.Name,
			Paper:    c.rule + " (NP-complete)",
			Measured: fmt.Sprintf("%s reduction via %s: yes-instance %v, no-instance %v (err=%v)", r.Source, r.Gadget, yes, no, err),
			Match:    err == nil && yes && no,
		})
	}
	rep.Notes = append(rep.Notes,
		"qAC3conf additionally gets a reduction via the pinned k=3 deep-search gadget (see C3); remaining NP-complete queries without an executable reduction: qC3cc, qAC3cc, qAB3perm-R, z5 (Figure 15 / Prop 47 Max 2SAT gadgets, not materialized; IJP hunt empty within bounds)")
	return rep
}

// verifyReduction instantiates r on one yes- and one no-instance of its
// source problem and checks both against the exact solver.
func verifyReduction(r *hardness.Reduction) (yesOK, noOK bool, err error) {
	check := func(inst *hardness.Instance, want bool) (bool, error) {
		got, err := resilience.Decide(r.Target, inst.DB, inst.K)
		if err != nil {
			return false, err
		}
		return got == want, nil
	}
	switch r.Source {
	case hardness.SourceVC:
		g := vertexcover.Cycle(5) // VC = 3
		yesInst, err := r.FromVC(g, 3)
		if err != nil {
			return false, false, err
		}
		noInst, err := r.FromVC(g, 2)
		if err != nil {
			return false, false, err
		}
		yesOK, err = check(yesInst, true)
		if err != nil {
			return false, false, err
		}
		noOK, err = check(noInst, false)
		return yesOK, noOK, err
	default: // Source3SAT
		satPsi := &sat.Formula{NumVars: 3, Clauses: []sat.Clause{{1, -2, 3}}}
		unsatPsi := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1, 1, 1}, {-1, -1, -1}}}
		yesInst, err := r.From3SAT(satPsi)
		if err != nil {
			return false, false, err
		}
		noInst, err := r.From3SAT(unsatPsi)
		if err != nil {
			return false, false, err
		}
		yesOK, err = check(yesInst, true)
		if err != nil {
			return false, false, err
		}
		noOK, err = check(noInst, false)
		return yesOK, noOK, err
	}
}
