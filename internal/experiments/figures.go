package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/domination"
	"repro/internal/hypergraph"
	"repro/internal/resilience"
	"repro/internal/zoo"
)

// This file registers the figure-level experiments F1-F7 (query structure
// and PTIME algorithms). Gadget experiments live in gadgets.go, IJP
// experiments in ijpexp.go, scaling in scaling.go.

func init() {
	register("F1", "Figure 1: hypergraphs, triads, domination, linearity", runF1)
	register("F2", "Figure 2: basic hard self-join queries qvc and qchain", runF2)
	register("F3", "Figure 3 / Props 12+13: tricky-flow PTIME queries", runF3)
	register("F5", "Figure 5: two-R-atom pattern dichotomy table", runF5)
	register("F6", "Figure 6: chain and confluence expansions", runF6)
	register("F7", "Figure 7 / Section 8.2: three-confluence verdicts", runF7)
	register("S8", "Section 8: full three-R-atom catalog", runS8)
}

func verdictRow(id string, q *cq.Query, want core.Verdict) Row {
	cl := core.Classify(q)
	return Row{
		ID:       id,
		Paper:    want.String(),
		Measured: fmt.Sprintf("%s via %s", cl.Verdict, cl.Rule),
		Match:    cl.Verdict == want,
	}
}

func runF1(rng *rand.Rand) *Report {
	rep := &Report{}
	type item struct {
		name      string
		q         *cq.Query
		wantTriad bool
		wantLin   bool
		verdict   core.Verdict
	}
	items := []item{
		{"q_triangle", cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)"), true, false, core.NPComplete},
		{"q_tripod", cq.MustParse("qT :- A(x), B(y), C(z), W(x,y,z)"), true, false, core.NPComplete},
		{"q_rats", cq.MustParse("qrats :- R(x,y), A(x), T(z,x), S(y,z)"), false, false, core.PTime},
		{"q_lin", cq.MustParse("qlin :- A(x), R(x,y,z), S(y,z)"), false, true, core.PTime},
	}
	for _, it := range items {
		n := domination.Normalize(it.q)
		gotTriad := hypergraph.HasTriad(n)
		gotLin := hypergraph.IsLinear(it.q)
		cl := core.Classify(it.q)
		measured := fmt.Sprintf("triad=%v linear=%v verdict=%s", gotTriad, gotLin, cl.Verdict)
		want := fmt.Sprintf("triad=%v linear=%v verdict=%s", it.wantTriad, it.wantLin, it.verdict)
		rep.Rows = append(rep.Rows, Row{
			ID: it.name, Paper: want, Measured: measured,
			Match: gotTriad == it.wantTriad && gotLin == it.wantLin && cl.Verdict == it.verdict,
		})
	}
	rep.Notes = append(rep.Notes,
		"qrats: A dominates R and T (Definition 3/16), disarming the apparent triad")
	return rep
}

func runF2(rng *rand.Rand) *Report {
	rep := &Report{}
	rep.Rows = append(rep.Rows,
		verdictRow("qvc", cq.MustParse("qvc :- R(x), S(x,y), R(y)"), core.NPComplete),
		verdictRow("qchain", cq.MustParse("qchain :- R(x,y), R(y,z)"), core.NPComplete))
	// Instance-level sanity from the paper: the Section 2 chain database
	// has ρ = 2; a 5-cycle graph database has ρ(qvc) = VC(C5) = 3.
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := datagen.ChainDB(rng, 4, 0)
	d.AddNames("R", datagen.ConstName(3), datagen.ConstName(3))
	res, err := resilience.Exact(q, d)
	match := err == nil
	got := -1
	if err == nil {
		got = res.Rho
	}
	rep.Rows = append(rep.Rows, Row{
		ID: "qchain ρ on path+loop", Paper: "minimum contingency exists",
		Measured: fmt.Sprintf("ρ=%d", got), Match: match && got > 0,
	})
	return rep
}

func runF3(rng *rand.Rand) *Report {
	rep := &Report{}
	// qACconf: standard flow equals exact on random confluence instances.
	q1 := cq.MustParse("qACconf :- A(x), R(x,y), R(z,y), C(z)")
	agree, trials := 0, 20
	for i := 0; i < trials; i++ {
		d := datagen.Random(rng, q1, 5, 7, 0.3)
		f, ferr := resilience.LinearFlow(q1, d)
		e, eerr := resilience.Exact(q1, d)
		if ferr == nil && eerr == nil && f.Rho == e.Rho {
			agree++
		} else if ferr == resilience.ErrUnbreakable && eerr == resilience.ErrUnbreakable {
			agree++
		}
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "qACconf (Prop 12)",
		Paper:    "network flow solves RES exactly",
		Measured: fmt.Sprintf("flow==exact on %d/%d random instances", agree, trials),
		Match:    agree == trials,
	})
	// qA3perm-R: the Proposition 13 modified flow.
	q2 := cq.MustParse("qA3permR :- A(x), R(x,y), R(y,z), R(z,y)")
	agree2 := 0
	for i := 0; i < trials; i++ {
		d := datagen.PermDB(rng, 3+rng.Intn(4), rng.Intn(3), 6, "A")
		for j := 0; j < 4; j++ {
			d.AddNames("R", datagen.ConstName(rng.Intn(6)), datagen.ConstName(rng.Intn(6)))
		}
		f, ferr := resilience.SolvePerm3Flow(q2, d)
		e, eerr := resilience.Exact(q2, d)
		if ferr == nil && eerr == nil && f.Rho == e.Rho {
			agree2++
		}
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "qA3perm-R (Prop 13)",
		Paper:    "modified flow solves RES exactly",
		Measured: fmt.Sprintf("flow==exact on %d/%d random instances", agree2, trials),
		Match:    agree2 == trials,
	})
	return rep
}

func runF5(rng *rand.Rand) *Report {
	rep := &Report{}
	for _, e := range zoo.Figure5() {
		rep.Rows = append(rep.Rows, verdictRow(e.Name, e.Query, e.Expected))
	}
	// The Figure 5 grid also names the bare patterns; add the canonical
	// PTIME cases with explicit structure rows.
	extra := []struct {
		name string
		q    string
		want core.Verdict
	}{
		{"qconf+AC (PTIME column)", "q :- A(x), R(x,y), R(z,y), C(z)", core.PTime},
		{"qconf+Hx (NP-hard column)", "q :- R(x,y), H(x,z)^x, R(z,y)", core.NPComplete},
		{"chain+ABC (NP-hard column)", "q :- A(x), R(x,y), B(y), R(y,z), C(z)", core.NPComplete},
		{"REP+A (PTIME column)", "q :- R(x,x), R(x,y), A(y)", core.PTime},
	}
	for _, e := range extra {
		rep.Rows = append(rep.Rows, verdictRow(e.name, cq.MustParse(e.q), e.want))
	}
	return rep
}

func runF6(rng *rand.Rand) *Report {
	rep := &Report{}
	expansions := []string{
		"qachain :- A(x), R(x,y), R(y,z)",
		"qbchain :- R(x,y), B(y), R(y,z)",
		"qcchain :- R(x,y), R(y,z), C(z)",
		"qabchain :- A(x), R(x,y), B(y), R(y,z)",
		"qbcchain :- R(x,y), B(y), R(y,z), C(z)",
		"qacchain :- A(x), R(x,y), R(y,z), C(z)",
		"qabcchain :- A(x), R(x,y), B(y), R(y,z), C(z)",
	}
	for _, s := range expansions {
		rep.Rows = append(rep.Rows, verdictRow(s[:findColon(s)], cq.MustParse(s), core.NPComplete))
	}
	rep.Rows = append(rep.Rows,
		verdictRow("qconf expansion (Fig 6b, PTIME)", cq.MustParse("q :- A(x), R(x,y), R(z,y), C(z)"), core.PTime))
	return rep
}

func runF7(rng *rand.Rand) *Report {
	rep := &Report{}
	rep.Rows = append(rep.Rows,
		verdictRow("qAC3conf (Fig 7a)", cq.MustParse("q :- A(x), R(x,y), R(z,y), R(z,w), C(w)"), core.NPComplete),
		verdictRow("qTS3conf (Fig 7b)", cq.MustParse("q :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x"), core.PTime),
		verdictRow("qAS3conf (Fig 7c)", cq.MustParse("q :- A(x), R(x,y), R(z,y), R(z,w), S(z,w)^x"), core.Open))
	// qTS3conf solver agreement with exact.
	q := cq.MustParse("qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x")
	agree, trials := 0, 20
	for i := 0; i < trials; i++ {
		d := datagen.Random(rng, q, 5, 8, 0)
		f, ferr := resilience.SolveTS3conf(q, d)
		e, eerr := resilience.Exact(q, d)
		if ferr == nil && eerr == nil && f.Rho == e.Rho {
			agree++
		} else if ferr == eerr && ferr != nil {
			agree++
		}
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "qTS3conf solver (Prop 41)",
		Paper:    "forced tuples + flow solve RES exactly",
		Measured: fmt.Sprintf("solver==exact on %d/%d random instances", agree, trials),
		Match:    agree == trials,
	})
	return rep
}

func runS8(rng *rand.Rand) *Report {
	rep := &Report{}
	for _, e := range zoo.Queries() {
		// Keep only 3-R-atom entries (Section 8 catalog).
		rAtoms := 0
		for _, rel := range e.Query.SelfJoinRelations() {
			rAtoms = len(e.Query.AtomsOf(rel))
		}
		if rAtoms != 3 {
			continue
		}
		rep.Rows = append(rep.Rows, verdictRow(e.Name, e.Query, e.Expected))
	}
	rep.Notes = append(rep.Notes,
		"rows marked 'open' reproduce the paper's open problems; the solver falls back to exact search for them")
	return rep
}

func findColon(s string) int {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == ' ' {
			return i
		}
	}
	return len(s)
}
