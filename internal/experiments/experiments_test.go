package experiments

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"C2", "C3", "E1", "F1", "F10", "F11", "F14", "F16", "F17", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "H1", "S5", "S6", "S7", "S8", "T25", "X1"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
	}
	if ByID("F5") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
}

// TestEveryExperimentMatchesPaper runs the full harness; any mismatched
// row (beyond the documented errata, which are encoded as expected
// measurements) fails the build.
func TestEveryExperimentMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var buf bytes.Buffer
	mismatches := RunAll(&buf)
	if mismatches != 0 {
		t.Fatalf("%d mismatched rows:\n%s", mismatches, buf.String())
	}
	out := buf.String()
	for _, frag := range []string{"== F1:", "== S7:", "Bell(9)", "or-property"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

// TestRunAllParallelDeterministic checks that the worker-pool harness
// produces byte-identical reports (modulo per-experiment wall times) in
// the same order as a single-worker run: parallelism must not change
// results, seeds, or output order.
func TestRunAllParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	var seq, par bytes.Buffer
	mseq := RunAllParallel(&seq, 1)
	mpar := RunAllParallel(&par, 8)
	if mseq != mpar {
		t.Fatalf("mismatch counts differ: sequential %d, parallel %d", mseq, mpar)
	}
	// Reports embed wall times both in headers "(1.2ms)" and in scaling
	// rows "in 1.2ms"; normalize both before comparing.
	timing := regexp.MustCompile(`\([0-9a-z.µ]+\)|in [0-9][0-9a-z.µ]*`)
	a := timing.ReplaceAllString(seq.String(), "(t)")
	b := timing.ReplaceAllString(par.String(), "(t)")
	if a != b {
		t.Fatal("parallel report differs from sequential report beyond timings")
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		ID: "X", Title: "demo",
		Rows: []Row{
			{ID: "r1", Paper: "p", Measured: "m", Match: true},
			{ID: "r2", Paper: "p", Measured: "m", Match: false},
		},
		Notes: []string{"a note"},
	}
	var buf bytes.Buffer
	rep.Write(&buf)
	out := buf.String()
	for _, frag := range []string{"== X: demo", "[ok]", "[MISMATCH]", "note: a note"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered report missing %q:\n%s", frag, out)
		}
	}
	if rep.Matches() {
		t.Error("Matches should be false with a mismatched row")
	}
}

func TestTwoRAtomEnumerationShape(t *testing.T) {
	qs := enumerateTwoRAtomQueries()
	if len(qs) < 50 {
		t.Errorf("enumeration produced %d queries, expected a substantial family", len(qs))
	}
	for _, q := range qs {
		if got := len(q.Minimize().AtomsOf("R")); got != 2 {
			t.Fatalf("%s: %d R-atoms after minimization, want 2", q, got)
		}
	}
}
