package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/domination"
	"repro/internal/hypergraph"
	"repro/internal/zoo"
)

// Experiment T25: Theorem 25 states that a CQ with no triad has its
// endogenous atoms connected linearly (pseudo-linearity). The experiment
// sweeps the zoo plus the S7 enumeration family — several hundred
// domination-normalized queries — and checks the implication holds for
// every triad-free member.

func init() {
	register("T25", "Theorem 25: no triad implies pseudo-linear", runT25)
}

func runT25(rng *rand.Rand) *Report {
	rep := &Report{}

	var all []queryCase
	for _, e := range zoo.Queries() {
		all = append(all, queryCase{e.Name, e.Query.Minimize()})
	}
	for i, q := range enumerateTwoRAtomQueries() {
		all = append(all, queryCase{fmt.Sprintf("enum#%d", i), q.Minimize()})
	}

	checked, holds := 0, 0
	var firstViolation string
	for _, c := range all {
		if !c.q.IsConnected() {
			continue
		}
		n := domination.Normalize(c.q)
		if hypergraph.HasTriad(n) {
			continue
		}
		checked++
		if hypergraph.IsPseudoLinear(n) {
			holds++
		} else if firstViolation == "" {
			firstViolation = fmt.Sprintf("%s: %s", c.name, n)
		}
	}
	rep.Rows = append(rep.Rows, Row{
		ID:       "triad-free ⇒ pseudo-linear",
		Paper:    "Theorem 25",
		Measured: fmt.Sprintf("holds on %d/%d triad-free queries (zoo + S7 family)", holds, checked),
		Match:    holds == checked && checked > 0,
	})
	if firstViolation != "" {
		rep.Notes = append(rep.Notes, "first violation: "+firstViolation)
	}

	// The converse is false: triads exist, so some queries are neither
	// triad-free nor pseudo-linear; record the triangle as the canonical
	// triad witness for completeness.
	tri := zoo.ByName("q_triangle")
	rep.Rows = append(rep.Rows, Row{
		ID:       "q_triangle has a triad",
		Paper:    "Definition 5 / Lemma 6",
		Measured: fmt.Sprintf("HasTriad = %v", hypergraph.HasTriad(tri.Query)),
		Match:    hypergraph.HasTriad(tri.Query),
	})
	return rep
}

type queryCase struct {
	name string
	q    *cq.Query
}
