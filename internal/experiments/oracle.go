package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cnfenc"
	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/resilience"
)

// Experiment X1: the soundness backbone. The branch-and-bound exact solver
// is the oracle every PTIME algorithm and every gadget in this repository
// is verified against; X1 in turn cross-checks that oracle against a
// second, independently implemented decision procedure — SAT solving the
// Sinz-counter CNF encoding of RES(q, D, k) — across the paper's query
// shapes.

func init() {
	register("X1", "Oracle cross-check: SAT encoding vs branch-and-bound", runX1)
}

func runX1(rng *rand.Rand) *Report {
	rep := &Report{}
	queries := []string{
		"qchain :- R(x,y), R(y,z)",
		"qtriangle :- R(x,y), S(y,z), T(z,x)",
		"qvc :- R(x), S(x,y), R(y)",
		"qABperm :- A(x), R(x,y), R(y,x), B(y)",
		"qAC3conf :- A(x), R(x,y), R(z,y), R(z,w), C(w)",
		"qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x",
	}
	for _, qs := range queries {
		q := cq.MustParse(qs)
		ok, checks := 0, 0
		for trial := 0; trial < 6; trial++ {
			d := datagen.Random(rng, q, 5, 7, 0.3)
			res, err := resilience.Exact(q, d)
			if err != nil {
				continue
			}
			for _, k := range []int{0, res.Rho - 1, res.Rho} {
				if k < 0 {
					continue
				}
				checks++
				want, err1 := resilience.Decide(q, d, k)
				got, _, err2 := cnfenc.Decide(q, d, k)
				if err1 == nil && err2 == nil && got == want {
					ok++
				}
			}
		}
		rep.Rows = append(rep.Rows, Row{
			ID:       q.Name,
			Paper:    "RES(q,D,k) membership (Def. 1)",
			Measured: fmt.Sprintf("SAT == B&B on %d/%d (D,k) instances", ok, checks),
			Match:    ok == checks && checks > 0,
		})
	}
	return rep
}
