package eval

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cq"
	"repro/internal/db"
)

// naiveWitnesses enumerates witnesses by brute force over all assignments
// of the active domain to the query's variables — an independent oracle
// for the backtracking join.
func naiveWitnesses(q *cq.Query, d *db.Database) []Witness {
	var domain []db.Value
	for v := db.Value(0); int(v) < d.NumConsts(); v++ {
		domain = append(domain, v)
	}
	nv := q.NumVars()
	assign := make([]db.Value, nv)
	var out []Witness
	var rec func(i int)
	rec = func(i int) {
		if i == nv {
			for _, a := range q.Atoms {
				args := make([]db.Value, len(a.Args))
				for p, v := range a.Args {
					args[p] = assign[v]
				}
				if !d.Has(db.NewTuple(a.Rel, args...)) {
					return
				}
			}
			out = append(out, append(Witness(nil), assign...))
			return
		}
		for _, c := range domain {
			assign[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

func sortWitnesses(ws []Witness) {
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		for p := range a {
			if a[p] != b[p] {
				return a[p] < b[p]
			}
		}
		return false
	})
}

// TestQuickJoinMatchesNaiveEnumeration: the witness engine agrees with the
// brute-force oracle on random R-digraph databases for a battery of query
// shapes, including self-joins and repeated variables.
func TestQuickJoinMatchesNaiveEnumeration(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("qchain :- R(x,y), R(y,z)"),
		cq.MustParse("qperm :- R(x,y), R(y,x)"),
		cq.MustParse("qloop :- R(x,x), R(x,y)"),
		cq.MustParse("qtri :- R(x,y), R(y,z), R(z,x)"),
	}
	for _, q := range queries {
		property := func(edges [][2]uint8) bool {
			d := db.New()
			// Intern a fixed small domain so naive enumeration stays tiny.
			for i := 0; i < 5; i++ {
				d.Const(string(rune('a' + i)))
			}
			for _, e := range edges {
				d.Add("R", db.Value(e[0]%5), db.Value(e[1]%5))
			}
			got := Witnesses(q, d)
			want := naiveWitnesses(q, d)
			sortWitnesses(got)
			sortWitnesses(want)
			if len(got) == 0 && len(want) == 0 {
				return true
			}
			return reflect.DeepEqual(got, want)
		}
		cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(31))}
		if err := quick.Check(property, cfg); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
	}
}

// TestQuickWitnessTuplesConsistent: every enumerated witness must actually
// consist of tuples present in the database, and deleting all of a
// witness's endogenous tuples must remove at least that witness.
func TestQuickWitnessTuplesConsistent(t *testing.T) {
	q := cq.MustParse("q :- A(x), R(x,y), R(y,z)")
	property := func(edges [][2]uint8, marks []uint8) bool {
		d := db.New()
		for i := 0; i < 5; i++ {
			d.Const(string(rune('a' + i)))
		}
		for _, e := range edges {
			d.Add("R", db.Value(e[0]%5), db.Value(e[1]%5))
		}
		for _, m := range marks {
			d.Add("A", db.Value(m%5))
		}
		before := CountWitnesses(q, d)
		ws := Witnesses(q, d)
		for _, w := range ws {
			for _, tup := range WitnessTuples(q, w, false) {
				if !d.Has(tup) {
					return false
				}
			}
		}
		if len(ws) != before {
			return false
		}
		if len(ws) == 0 {
			return true
		}
		// Deleting the first witness's endogenous tuples removes it.
		mark := d.RestoreMark()
		for _, tup := range WitnessTuples(q, ws[0], true) {
			d.Delete(tup)
		}
		after := CountWitnesses(q, d)
		d.RestoreTo(mark)
		return after < before
	}
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
