package eval

import (
	"repro/internal/cq"
	"repro/internal/db"
)

// Cost-based join planning. planOrder's first-connected-wins heuristic
// ignores relation sizes entirely: on a query like q :- R(x,y), S(y,z)
// with |R| = 10^5 and |S| = 10 it happily starts from R. NewPlan instead
// orders atoms greedily by estimated cost — the expected number of
// candidate tuples the backtracking join will scan at that step, i.e.
// |rel| when no variable is bound yet, and |rel| / distinct(p) for the
// most selective position p whose variable is bound (index fanout). The
// estimate uses only frozen-index statistics (Relation.Len and
// Relation.DistinctAt), so the order is deterministic for a given
// database.
//
// The plan is also *compiled*: for a fixed atom order, the role of every
// atom position is static — it either probes/checks a variable bound by an
// earlier step, checks an intra-atom repeat, or binds a fresh variable.
// Precomputing that split removes the per-candidate bookkeeping (the
// `newly []cq.Var` allocation and the bound[] updates) from the inner
// loop: enumeration binds into a flat assign slice and never needs to
// unbind, because a position is read only when the compile-time analysis
// proved an earlier bind wrote it.

// planStep is one compiled join step.
type planStep struct {
	atomIdx int          // index into q.Atoms
	args    []cq.Var     // q.Atoms[atomIdx].Args
	rel     *db.Relation // nil when the relation is absent from d
	probe   []int8       // positions whose variable is bound at entry (index-probe candidates)
	check   []int8       // positions to verify by equality (entry-bound or intra-atom repeats)
	bind    []int8       // positions that bind a fresh variable
	scan    []db.Tuple   // full candidate list, set iff probe is empty
}

// Plan is a compiled, cost-ordered join plan for one query over one
// database. Building it reads index statistics, so the database's indexes
// are materialised as a side effect; the plan itself is immutable and safe
// for concurrent ForEachRange calls over a frozen database.
type Plan struct {
	q          *cq.Query
	steps      []planStep
	order      []int
	numVars    int
	impossible bool // some atom's relation is absent or empty
}

// NewPlan compiles a cost-ordered plan for enumerating all witnesses of q
// over d.
func NewPlan(q *cq.Query, d *db.Database) *Plan {
	return newPlanSeeded(q, d, nil, -1)
}

// newPlanSeeded compiles a plan over the atoms of q excluding skip
// (skip < 0 keeps all atoms), treating variables marked in seed as bound
// before the first step. The delta enumerator uses this to pin one atom to
// a changed tuple.
func newPlanSeeded(q *cq.Query, d *db.Database, seed []bool, skip int) *Plan {
	p := &Plan{q: q, numVars: q.NumVars()}
	bnd := make([]bool, p.numVars)
	copy(bnd, seed)
	p.order = costOrder(q, d, bnd, skip)
	p.steps = make([]planStep, 0, len(p.order))
	for i := range bnd {
		bnd[i] = false
	}
	copy(bnd, seed)
	for _, ai := range p.order {
		a := &q.Atoms[ai]
		st := planStep{atomIdx: ai, args: a.Args, rel: d.Rel(a.Rel)}
		if st.rel == nil || st.rel.Len() == 0 {
			p.impossible = true
		}
		inAtom := make(map[cq.Var]bool, len(a.Args))
		for pos, v := range a.Args {
			switch {
			case bnd[v]:
				st.probe = append(st.probe, int8(pos))
				st.check = append(st.check, int8(pos))
			case inAtom[v]:
				st.check = append(st.check, int8(pos))
			default:
				st.bind = append(st.bind, int8(pos))
				inAtom[v] = true
			}
		}
		if len(st.probe) == 0 && st.rel != nil {
			st.scan = st.rel.Tuples()
		}
		for _, v := range a.Args {
			bnd[v] = true
		}
		p.steps = append(p.steps, st)
	}
	return p
}

// costOrder greedily orders the atoms of q (excluding skip) by estimated
// step cost, lowest first, given the variables already bound in bnd. Ties
// break toward the smaller atom index, so the order is deterministic.
// bnd is updated to the all-bound state as a side effect.
func costOrder(q *cq.Query, d *db.Database, bnd []bool, skip int) []int {
	n := len(q.Atoms)
	used := make([]bool, n)
	if skip >= 0 {
		used[skip] = true
	}
	total := n
	if skip >= 0 {
		total--
	}
	order := make([]int, 0, total)
	for len(order) < total {
		best, bestCost := -1, 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			c := estStepCost(&q.Atoms[i], d, bnd)
			if best < 0 || c < bestCost {
				best, bestCost = i, c
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range q.Atoms[best].Args {
			bnd[v] = true
		}
	}
	return order
}

// estStepCost estimates the candidates scanned when atom a is joined next:
// the full relation size with nothing bound, or size/distinct(p) for the
// most selective bound position p (the index bucket the runtime probe
// would pick on average).
func estStepCost(a *cq.Atom, d *db.Database, bnd []bool) float64 {
	rel := d.Rel(a.Rel)
	if rel == nil || rel.Len() == 0 {
		return 0 // dead step: scheduling it first kills the join immediately
	}
	size := float64(rel.Len())
	best := size
	for pos, v := range a.Args {
		if !bnd[v] {
			continue
		}
		if k := rel.DistinctAt(pos); k > 0 {
			if f := size / float64(k); f < best {
				best = f
			}
		}
	}
	return best
}

// Order returns the atom indexes in join order (for tests and diagnostics).
func (p *Plan) Order() []int { return p.order }

// NumFirstCandidates returns the number of candidate tuples of the first
// join step, i.e. the grain available for sharding ForEachRange.
func (p *Plan) NumFirstCandidates() int {
	if p.impossible || len(p.steps) == 0 {
		return 0
	}
	return len(p.steps[0].scan)
}

// ForEach enumerates every witness of the plan. fn receives the witness
// valuation and, aligned with q.Atoms, the tuple each atom matched; both
// slices are reused across calls — copy them if retained. fn returning
// false stops the enumeration.
func (p *Plan) ForEach(fn func(Witness, []db.Tuple) bool) {
	p.ForEachRange(0, p.NumFirstCandidates(), fn)
}

// ForEachRange enumerates the witnesses whose first-step candidate tuple
// lies in [lo, hi) of the first step's scan list. Disjoint ranges
// partition the witness set, and concatenating the sub-enumerations in
// range order replays exactly the ForEach order — the property the
// sharded IR build relies on. Only valid on unseeded plans (the first
// step of a seeded plan may probe rather than scan).
func (p *Plan) ForEachRange(lo, hi int, fn func(Witness, []db.Tuple) bool) {
	if p.impossible || len(p.steps) == 0 || lo >= hi {
		return
	}
	r := &planRun{
		p:      p,
		assign: make(Witness, p.numVars),
		tup:    make([]db.Tuple, len(p.q.Atoms)),
		fn:     fn,
	}
	s := &p.steps[0]
	for _, t := range s.scan[lo:hi] {
		r.step(s, t, 1)
		if r.stopped {
			return
		}
	}
}

// forEachSeeded runs a seeded plan: assign must hold the seed values for
// the variables the plan was compiled with (it is used as the run's
// scratch and overwritten beyond the seeds). The pinned atom's slot in the
// tuple slice passed to fn is left zero.
func (p *Plan) forEachSeeded(assign Witness, fn func(Witness, []db.Tuple) bool) {
	if p.impossible {
		return
	}
	r := &planRun{
		p:      p,
		assign: assign,
		tup:    make([]db.Tuple, len(p.q.Atoms)),
		fn:     fn,
	}
	r.rec(0)
}

// planRun is the per-enumeration mutable state: one flat valuation, the
// per-atom matched tuples, and the stop flag.
type planRun struct {
	p       *Plan
	assign  Witness
	tup     []db.Tuple
	fn      func(Witness, []db.Tuple) bool
	stopped bool
}

func (r *planRun) rec(k int) {
	if k == len(r.p.steps) {
		if !r.fn(r.assign, r.tup) {
			r.stopped = true
		}
		return
	}
	s := &r.p.steps[k]
	var cands []db.Tuple
	if len(s.probe) > 0 {
		// Probe the most selective bound position: the shortest index
		// bucket among the entry-bound positions.
		pos := s.probe[0]
		cands = s.rel.Lookup(int(pos), r.assign[s.args[pos]])
		for _, alt := range s.probe[1:] {
			if b := s.rel.Lookup(int(alt), r.assign[s.args[alt]]); len(b) < len(cands) {
				cands = b
			}
		}
	} else {
		cands = s.scan
	}
	for i := range cands {
		r.step(s, cands[i], k+1)
		if r.stopped {
			return
		}
	}
}

// step binds candidate t at step s and recurses to depth next on success.
// Binds run before checks so intra-atom repeats compare against the value
// just written; entry-bound positions are untouched by binds, so their
// checks still see the earlier step's value. Failed candidates need no
// unbinding: a stale assign slot is only ever read after a later bind
// overwrites it.
func (r *planRun) step(s *planStep, t db.Tuple, next int) {
	for _, pos := range s.bind {
		r.assign[s.args[pos]] = t.Args[pos]
	}
	for _, pos := range s.check {
		if r.assign[s.args[pos]] != t.Args[pos] {
			return
		}
	}
	r.tup[s.atomIdx] = t
	r.rec(next)
}
