package eval

import (
	"repro/internal/cq"
	"repro/internal/db"
)

// Delta enumeration: the incremental-maintenance primitive. Instead of
// re-joining the whole database after a tuple insert or delete, the delta
// rule from incremental view maintenance applies — the witnesses affected
// by tuple t are exactly those that use t in at least one atom position,
// and they can be enumerated by pinning one atom to t and joining only the
// remaining atoms (a semi-join of the query against the one-tuple delta).
// Summed over atoms this costs O(Σ_i |join of q minus atom i, seeded by
// t|), independent of the witnesses that do not touch t.

// ForEachDeltaWitness calls fn for every witness of q over d that maps at
// least one atom to tuple t, exactly once per witness. t must be present
// in d (for inserts, call after adding t; for deletes, before removing
// it). fn returning false stops the enumeration. The Witness slice passed
// to fn is reused across calls; copy it if retained.
//
// Exactly-once is achieved with the standard counting trick: witness w is
// reported by the pinned-atom enumeration of the *smallest* atom index
// that w maps to t, and suppressed for larger pin indexes.
func ForEachDeltaWitness(q *cq.Query, d *db.Database, t db.Tuple, fn func(Witness) bool) {
	n := len(q.Atoms)
	if n == 0 {
		return
	}
	assign := make(Witness, q.NumVars())
	seed := make([]bool, q.NumVars())
	stopped := false
	for pin := 0; pin < n && !stopped; pin++ {
		a := q.Atoms[pin]
		if a.Rel != t.Rel || len(a.Args) != int(t.Arity) {
			continue
		}
		// Bind the pinned atom's variables to t, rejecting the pin when a
		// repeated variable would need two different constants.
		for i := range seed {
			seed[i] = false
		}
		ok := true
		for p, v := range a.Args {
			if seed[v] {
				if assign[v] != t.Args[p] {
					ok = false
					break
				}
				continue
			}
			assign[v] = t.Args[p]
			seed[v] = true
		}
		if !ok {
			continue
		}
		// The remaining atoms get the same cost-based planner as the full
		// enumeration, with the pinned variables seeding the selectivity
		// estimates.
		plan := newPlanSeeded(q, d, seed, pin)
		plan.forEachSeeded(assign, func(w Witness, _ []db.Tuple) bool {
			if earlierAtomUses(q, w, t, pin) {
				return true // already reported under a smaller pin
			}
			if !fn(w) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// earlierAtomUses reports whether witness w maps some atom with index < pin
// to tuple t.
func earlierAtomUses(q *cq.Query, w Witness, t db.Tuple, pin int) bool {
	for j := 0; j < pin; j++ {
		a := q.Atoms[j]
		if a.Rel != t.Rel || len(a.Args) != int(t.Arity) {
			continue
		}
		match := true
		for p, v := range a.Args {
			if w[v] != t.Args[p] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
