package eval

import (
	"repro/internal/cq"
	"repro/internal/db"
)

// Delta enumeration: the incremental-maintenance primitive. Instead of
// re-joining the whole database after a tuple insert or delete, the delta
// rule from incremental view maintenance applies — the witnesses affected
// by tuple t are exactly those that use t in at least one atom position,
// and they can be enumerated by pinning one atom to t and joining only the
// remaining atoms (a semi-join of the query against the one-tuple delta).
// Summed over atoms this costs O(Σ_i |join of q minus atom i, seeded by
// t|), independent of the witnesses that do not touch t.

// ForEachDeltaWitness calls fn for every witness of q over d that maps at
// least one atom to tuple t, exactly once per witness. t must be present
// in d (for inserts, call after adding t; for deletes, before removing
// it). fn returning false stops the enumeration. The Witness slice passed
// to fn is reused across calls; copy it if retained.
//
// Exactly-once is achieved with the standard counting trick: witness w is
// reported by the pinned-atom enumeration of the *smallest* atom index
// that w maps to t, and suppressed for larger pin indexes.
func ForEachDeltaWitness(q *cq.Query, d *db.Database, t db.Tuple, fn func(Witness) bool) {
	n := len(q.Atoms)
	if n == 0 {
		return
	}
	assign := make([]db.Value, q.NumVars())
	bound := make([]bool, q.NumVars())
	stopped := false
	for pin := 0; pin < n && !stopped; pin++ {
		a := q.Atoms[pin]
		if a.Rel != t.Rel || len(a.Args) != int(t.Arity) {
			continue
		}
		// Bind the pinned atom's variables to t, rejecting the pin when a
		// repeated variable would need two different constants.
		var seeded []cq.Var
		ok := true
		for p, v := range a.Args {
			if bound[v] {
				if assign[v] != t.Args[p] {
					ok = false
					break
				}
				continue
			}
			assign[v] = t.Args[p]
			bound[v] = true
			seeded = append(seeded, v)
		}
		if ok {
			order := planOrderSkip(q, pin)
			joinOver(q, d, order, assign, bound, func(w Witness) bool {
				if earlierAtomUses(q, w, t, pin) {
					return true // already reported under a smaller pin
				}
				if !fn(w) {
					stopped = true
					return false
				}
				return true
			})
		}
		for _, v := range seeded {
			bound[v] = false
		}
	}
}

// earlierAtomUses reports whether witness w maps some atom with index < pin
// to tuple t.
func earlierAtomUses(q *cq.Query, w Witness, t db.Tuple, pin int) bool {
	for j := 0; j < pin; j++ {
		a := q.Atoms[j]
		if a.Rel != t.Rel || len(a.Args) != int(t.Arity) {
			continue
		}
		match := true
		for p, v := range a.Args {
			if w[v] != t.Args[p] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// planOrderSkip orders all atoms except skip greedily for index probes,
// treating skip's variables as already bound (they seed the connectivity).
func planOrderSkip(q *cq.Query, skip int) []int {
	n := len(q.Atoms)
	used := make([]bool, n)
	used[skip] = true
	seen := map[cq.Var]bool{}
	for _, v := range q.Atoms[skip].Args {
		seen[v] = true
	}
	order := make([]int, 0, n-1)
	for len(order) < n-1 {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := false
			for _, v := range q.Atoms[i].Args {
				if seen[v] {
					connected = true
					break
				}
			}
			if connected {
				best = i
				break
			}
			if best == -1 {
				best = i
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range q.Atoms[best].Args {
			seen[v] = true
		}
	}
	return order
}
