// Package eval evaluates Boolean conjunctive queries over database
// instances and enumerates witnesses.
//
// A witness is a valuation of all query variables under which every atom is
// satisfied (Section 2 of the paper). The resilience solvers operate on the
// per-witness sets of endogenous tuples, which this package computes.
package eval

import (
	"repro/internal/cq"
	"repro/internal/db"
)

// Witness is a total valuation of the query's variables (indexed by
// cq.Var).
type Witness []db.Value

// Witnesses enumerates all witnesses of q over d by backtracking join with
// index lookups. The order is deterministic for a given database.
func Witnesses(q *cq.Query, d *db.Database) []Witness {
	var out []Witness
	ForEachWitness(q, d, func(w Witness) bool {
		cp := make(Witness, len(w))
		copy(cp, w)
		out = append(out, cp)
		return true
	})
	return out
}

// Satisfied reports whether D |= q.
func Satisfied(q *cq.Query, d *db.Database) bool {
	found := false
	ForEachWitness(q, d, func(Witness) bool {
		found = true
		return false
	})
	return found
}

// ForEachWitness calls fn for every witness; fn returning false stops the
// enumeration. The Witness slice passed to fn is reused across calls; copy
// it if retained. The enumeration order is the cost-based plan order and
// is deterministic for a given database (see NewPlan).
func ForEachWitness(q *cq.Query, d *db.Database, fn func(Witness) bool) {
	if len(q.Atoms) == 0 {
		return
	}
	NewPlan(q, d).ForEach(func(w Witness, _ []db.Tuple) bool { return fn(w) })
}

// WitnessTuples returns, for a witness w, the set of distinct tuples the
// witness uses, optionally restricted to endogenous relations. With
// self-joins, the same tuple can serve several atoms and is reported once
// (the paper's "set of at most m tuples").
func WitnessTuples(q *cq.Query, w Witness, endoOnly bool) []db.Tuple {
	out := make([]db.Tuple, 0, len(q.Atoms))
	for i := range q.Atoms {
		a := &q.Atoms[i]
		if endoOnly && q.IsExogenous(a.Rel) {
			continue
		}
		var t db.Tuple
		t.Rel = a.Rel
		t.Arity = uint8(len(a.Args))
		for p, v := range a.Args {
			t.Args[p] = w[v]
		}
		// Linear dedup: a witness uses at most len(q.Atoms) tuples, so
		// scanning beats a map allocation.
		dup := false
		for _, prev := range out {
			if prev == t {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	db.SortTuples(out)
	return out
}

// EndoWitnessSets enumerates witnesses and projects each to its endogenous
// tuple set. The second return value reports whether some witness has no
// endogenous tuples at all, in which case the query cannot be falsified by
// deletions (infinite resilience).
func EndoWitnessSets(q *cq.Query, d *db.Database) (sets [][]db.Tuple, unbreakable bool) {
	ForEachWitness(q, d, func(w Witness) bool {
		ts := WitnessTuples(q, w, true)
		if len(ts) == 0 {
			unbreakable = true
			return false
		}
		sets = append(sets, ts)
		return true
	})
	return sets, unbreakable
}

// CountWitnesses returns the number of witnesses of q over d.
func CountWitnesses(q *cq.Query, d *db.Database) int {
	n := 0
	ForEachWitness(q, d, func(Witness) bool { n++; return true })
	return n
}

// TuplesOfWitnessByAtom returns the tuple used by each atom (in atom order)
// under witness w, including duplicates and exogenous atoms. This is the
// per-position view needed by the flow constructions.
func TuplesOfWitnessByAtom(q *cq.Query, w Witness) []db.Tuple {
	out := make([]db.Tuple, len(q.Atoms))
	for i, a := range q.Atoms {
		args := make([]db.Value, len(a.Args))
		for j, v := range a.Args {
			args[j] = w[v]
		}
		out[i] = db.NewTuple(a.Rel, args...)
	}
	return out
}
