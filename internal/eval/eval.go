// Package eval evaluates Boolean conjunctive queries over database
// instances and enumerates witnesses.
//
// A witness is a valuation of all query variables under which every atom is
// satisfied (Section 2 of the paper). The resilience solvers operate on the
// per-witness sets of endogenous tuples, which this package computes.
package eval

import (
	"repro/internal/cq"
	"repro/internal/db"
)

// Witness is a total valuation of the query's variables (indexed by
// cq.Var).
type Witness []db.Value

// Witnesses enumerates all witnesses of q over d by backtracking join with
// index lookups. The order is deterministic for a given database.
func Witnesses(q *cq.Query, d *db.Database) []Witness {
	var out []Witness
	ForEachWitness(q, d, func(w Witness) bool {
		cp := make(Witness, len(w))
		copy(cp, w)
		out = append(out, cp)
		return true
	})
	return out
}

// Satisfied reports whether D |= q.
func Satisfied(q *cq.Query, d *db.Database) bool {
	found := false
	ForEachWitness(q, d, func(Witness) bool {
		found = true
		return false
	})
	return found
}

// ForEachWitness calls fn for every witness; fn returning false stops the
// enumeration. The Witness slice passed to fn is reused across calls; copy
// it if retained.
func ForEachWitness(q *cq.Query, d *db.Database, fn func(Witness) bool) {
	if len(q.Atoms) == 0 {
		return
	}
	joinOver(q, d, planOrder(q), make([]db.Value, q.NumVars()), make([]bool, q.NumVars()), fn)
}

// joinOver is the backtracking-join core shared by the full and the delta
// enumeration: it extends the partial valuation (assign, bound) over the
// atoms listed in order, calling fn with the completed witness. Variables
// already bound on entry act as seeds (the delta enumerator binds the
// pinned atom's variables first); on return assign/bound are restored to
// their entry state.
func joinOver(q *cq.Query, d *db.Database, order []int, assign []db.Value, bound []bool, fn func(Witness) bool) {
	n := len(order)
	stopped := false

	var rec func(k int)
	rec = func(k int) {
		if stopped {
			return
		}
		if k == n {
			if !fn(assign) {
				stopped = true
			}
			return
		}
		a := q.Atoms[order[k]]
		rel := d.Rel(a.Rel)
		if rel == nil || rel.Len() == 0 {
			return
		}
		// Pick a bound position to use as index probe if one exists.
		probe := -1
		for p, v := range a.Args {
			if bound[v] {
				probe = p
				break
			}
		}
		var candidates []db.Tuple
		if probe >= 0 {
			candidates = rel.Lookup(probe, assign[a.Args[probe]])
		} else {
			candidates = rel.Tuples()
		}
		for _, t := range candidates {
			var newly []cq.Var
			ok := true
			for p, v := range a.Args {
				if bound[v] {
					if assign[v] != t.Args[p] {
						ok = false
						break
					}
				} else {
					assign[v] = t.Args[p]
					bound[v] = true
					newly = append(newly, v)
				}
			}
			if ok {
				rec(k + 1)
			}
			for _, v := range newly {
				bound[v] = false
			}
			if stopped {
				return
			}
		}
	}
	rec(0)
}

// planOrder orders atoms greedily so each atom shares a variable with an
// earlier one whenever possible, enabling index probes.
func planOrder(q *cq.Query) []int {
	n := len(q.Atoms)
	used := make([]bool, n)
	seen := map[cq.Var]bool{}
	order := make([]int, 0, n)
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			connected := false
			for _, v := range q.Atoms[i].Args {
				if seen[v] {
					connected = true
					break
				}
			}
			if connected {
				best = i
				break
			}
			if best == -1 {
				best = i
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range q.Atoms[best].Args {
			seen[v] = true
		}
	}
	return order
}

// WitnessTuples returns, for a witness w, the set of distinct tuples the
// witness uses, optionally restricted to endogenous relations. With
// self-joins, the same tuple can serve several atoms and is reported once
// (the paper's "set of at most m tuples").
func WitnessTuples(q *cq.Query, w Witness, endoOnly bool) []db.Tuple {
	seen := map[db.Tuple]bool{}
	var out []db.Tuple
	for _, a := range q.Atoms {
		if endoOnly && q.IsExogenous(a.Rel) {
			continue
		}
		args := make([]db.Value, len(a.Args))
		for i, v := range a.Args {
			args[i] = w[v]
		}
		t := db.NewTuple(a.Rel, args...)
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	db.SortTuples(out)
	return out
}

// EndoWitnessSets enumerates witnesses and projects each to its endogenous
// tuple set. The second return value reports whether some witness has no
// endogenous tuples at all, in which case the query cannot be falsified by
// deletions (infinite resilience).
func EndoWitnessSets(q *cq.Query, d *db.Database) (sets [][]db.Tuple, unbreakable bool) {
	ForEachWitness(q, d, func(w Witness) bool {
		ts := WitnessTuples(q, w, true)
		if len(ts) == 0 {
			unbreakable = true
			return false
		}
		sets = append(sets, ts)
		return true
	})
	return sets, unbreakable
}

// CountWitnesses returns the number of witnesses of q over d.
func CountWitnesses(q *cq.Query, d *db.Database) int {
	n := 0
	ForEachWitness(q, d, func(Witness) bool { n++; return true })
	return n
}

// TuplesOfWitnessByAtom returns the tuple used by each atom (in atom order)
// under witness w, including duplicates and exogenous atoms. This is the
// per-position view needed by the flow constructions.
func TuplesOfWitnessByAtom(q *cq.Query, w Witness) []db.Tuple {
	out := make([]db.Tuple, len(q.Atoms))
	for i, a := range q.Atoms {
		args := make([]db.Value, len(a.Args))
		for j, v := range a.Args {
			args[j] = w[v]
		}
		out[i] = db.NewTuple(a.Rel, args...)
	}
	return out
}
