package eval

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
)

// paperChainDB builds the Section 2 example: D = {R(1,2), R(2,3), R(3,3)}.
func paperChainDB() *db.Database {
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	d.AddNames("R", "3", "3")
	return d
}

func TestWitnessesChainPaperExample(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := paperChainDB()
	ws := Witnesses(q, d)
	// The paper lists witnesses (1,2,3), (2,3,3), (3,3,3).
	if len(ws) != 3 {
		t.Fatalf("witnesses = %d, want 3", len(ws))
	}
	got := map[string]bool{}
	for _, w := range ws {
		key := d.ConstName(w[q.Var("x")]) + d.ConstName(w[q.Var("y")]) + d.ConstName(w[q.Var("z")])
		got[key] = true
	}
	for _, want := range []string{"123", "233", "333"} {
		if !got[want] {
			t.Errorf("missing witness %s; got %v", want, got)
		}
	}
}

func TestWitnessTupleSetsSelfJoinDedup(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := paperChainDB()
	sets, unbreakable := EndoWitnessSets(q, d)
	if unbreakable {
		t.Fatal("chain query over endogenous R cannot be unbreakable")
	}
	sizes := map[int]int{}
	for _, s := range sets {
		sizes[len(s)]++
	}
	// Witness (3,3,3) uses the single tuple R(3,3) twice -> set of size 1.
	if sizes[1] != 1 || sizes[2] != 2 {
		t.Errorf("tuple-set sizes = %v, want one singleton and two pairs", sizes)
	}
}

func TestSatisfied(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	d := db.New()
	d.AddNames("R", "a")
	d.AddNames("S", "a", "b")
	if Satisfied(q, d) {
		t.Error("q should be false without R(b)")
	}
	d.AddNames("R", "b")
	if !Satisfied(q, d) {
		t.Error("q should be true with R(a), S(a,b), R(b)")
	}
}

func TestWitnessesEmptyRelation(t *testing.T) {
	q := cq.MustParse("q :- R(x,y), T(y)")
	d := db.New()
	d.AddNames("R", "1", "2")
	if CountWitnesses(q, d) != 0 {
		t.Error("missing relation should yield no witnesses")
	}
}

func TestRepeatedVariableAtom(t *testing.T) {
	q := cq.MustParse("q :- R(x,x)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "2")
	ws := Witnesses(q, d)
	if len(ws) != 1 {
		t.Fatalf("witnesses = %d, want 1 (only the loop R(2,2))", len(ws))
	}
	if d.ConstName(ws[0][q.Var("x")]) != "2" {
		t.Error("wrong loop witness")
	}
}

func TestTriangleWitnesses(t *testing.T) {
	q := cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("S", "2", "3")
	d.AddNames("T", "3", "1")
	d.AddNames("T", "3", "9") // dead end
	ws := Witnesses(q, d)
	if len(ws) != 1 {
		t.Fatalf("witnesses = %d, want 1", len(ws))
	}
}

func TestExogenousProjection(t *testing.T) {
	q := cq.MustParse("qrats :- R(x,y)^x, A(x), T(z,x)^x, S(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("A", "1")
	d.AddNames("T", "3", "1")
	d.AddNames("S", "2", "3")
	ws := Witnesses(q, d)
	if len(ws) != 1 {
		t.Fatalf("witnesses = %d, want 1", len(ws))
	}
	endo := WitnessTuples(q, ws[0], true)
	if len(endo) != 2 {
		t.Fatalf("endogenous tuples = %d, want 2 (A and S)", len(endo))
	}
	for _, tp := range endo {
		if tp.Rel != "A" && tp.Rel != "S" {
			t.Errorf("unexpected endogenous tuple from %s", tp.Rel)
		}
	}
	all := WitnessTuples(q, ws[0], false)
	if len(all) != 4 {
		t.Errorf("all tuples = %d, want 4", len(all))
	}
}

func TestUnbreakableWitness(t *testing.T) {
	q := cq.MustParse("q :- R(x,y)^x")
	d := db.New()
	d.AddNames("R", "1", "2")
	_, unbreakable := EndoWitnessSets(q, d)
	if !unbreakable {
		t.Error("all-exogenous witness must be flagged unbreakable")
	}
}

func TestForEachWitnessEarlyStop(t *testing.T) {
	q := cq.MustParse("q :- R(x,y)")
	d := db.New()
	for i := 0; i < 10; i++ {
		d.AddNames("R", "a", string(rune('a'+i)))
	}
	n := 0
	ForEachWitness(q, d, func(Witness) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d witnesses, want 3", n)
	}
}

func TestTuplesOfWitnessByAtom(t *testing.T) {
	q := cq.MustParse("qperm :- R(x,y), R(y,x)")
	d := db.New()
	d.AddNames("R", "a", "b")
	d.AddNames("R", "b", "a")
	ws := Witnesses(q, d)
	if len(ws) != 2 {
		t.Fatalf("witnesses = %d, want 2", len(ws))
	}
	per := TuplesOfWitnessByAtom(q, ws[0])
	if len(per) != 2 || per[0] == per[1] {
		t.Error("per-atom tuples should be the two distinct R tuples")
	}
}

func TestCartesianDisconnected(t *testing.T) {
	q := cq.MustParse("q :- A(x), B(y)")
	d := db.New()
	d.AddNames("A", "1")
	d.AddNames("A", "2")
	d.AddNames("B", "u")
	d.AddNames("B", "v")
	d.AddNames("B", "w")
	if got := CountWitnesses(q, d); got != 6 {
		t.Errorf("cross product witnesses = %d, want 6", got)
	}
}

func BenchmarkWitnessEnumerationChain(b *testing.B) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	const n = 200
	for i := 0; i < n; i++ {
		d.AddNames("R", itoa(i), itoa((i+1)%n))
		d.AddNames("R", itoa(i), itoa((i+7)%n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountWitnesses(q, d)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
