// Package domination implements the paper's two notions of domination:
// the sj-free version (Definition 3, Proposition 4) and the self-join-aware
// version (Definition 16, Proposition 18), together with the normalization
// that marks dominated relations exogenous.
//
// Domination captures when an endogenous relation is "implicitly exogenous":
// its tuples are never needed in minimum contingency sets because a
// dominating relation always offers an at-least-as-good deletion.
package domination

import (
	"repro/internal/cq"
)

// SJFreeDominates reports whether atom i dominates atom j under
// Definition 3: both endogenous and var(i) ⊂ var(j) (strict containment).
// Only meaningful for self-join-free queries.
func SJFreeDominates(q *cq.Query, i, j int) bool {
	if q.IsExogenous(q.Atoms[i].Rel) || q.IsExogenous(q.Atoms[j].Rel) {
		return false
	}
	vi := varSet(q, i)
	vj := varSet(q, j)
	if len(vi) >= len(vj) {
		return false
	}
	for v := range vi {
		if !vj[v] {
			return false
		}
	}
	return true
}

// Dominates reports whether relation a dominates relation b in q under the
// self-join-aware Definition 16: there is a position map
// f: [arity(a)] -> [arity(b)] such that every b-atom g has some a-atom h
// with pos_h(i) = pos_g(f(i)) for all i. Both relations must be endogenous
// and distinct.
func Dominates(q *cq.Query, a, b string) bool {
	if a == b || q.IsExogenous(a) || q.IsExogenous(b) {
		return false
	}
	arA, arB := q.Arity(a), q.Arity(b)
	if arA < 0 || arB < 0 {
		return false
	}
	aAtoms := q.AtomsOf(a)
	bAtoms := q.AtomsOf(b)
	// Enumerate all functions f: [arA] -> [arB].
	f := make([]int, arA)
	var try func(pos int) bool
	try = func(pos int) bool {
		if pos == arA {
			return coversAll(q, f, aAtoms, bAtoms)
		}
		for t := 0; t < arB; t++ {
			f[pos] = t
			if try(pos + 1) {
				return true
			}
		}
		return false
	}
	return try(0)
}

// coversAll checks that under position map f, every b-atom has a matching
// a-atom: for each i, the a-atom's i-th variable equals the b-atom's
// f(i)-th variable.
func coversAll(q *cq.Query, f []int, aAtoms, bAtoms []int) bool {
	for _, gb := range bAtoms {
		found := false
		for _, ha := range aAtoms {
			match := true
			for i, fi := range f {
				if q.Atoms[ha].Args[i] != q.Atoms[gb].Args[fi] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// DominatedRelations returns the endogenous relations of q that are
// dominated by some other endogenous relation under Definition 16.
func DominatedRelations(q *cq.Query) []string {
	var out []string
	for _, b := range q.Relations() {
		if q.IsExogenous(b) {
			continue
		}
		for _, a := range q.Relations() {
			if Dominates(q, a, b) {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

// Normalize returns a copy of q in the paper's normal form: dominated
// relations are marked exogenous, applied to a fixed point (making one
// relation exogenous can expose new dominations only by removing it from
// consideration, and can never un-dominate another, so iterating is safe
// and terminates).
//
// By Proposition 18, RES(q) ≡ RES(Normalize(q)).
func Normalize(q *cq.Query) *cq.Query {
	out := q.Clone()
	for {
		dom := DominatedRelations(out)
		if len(dom) == 0 {
			return out
		}
		// Mark one relation at a time: simultaneous marking could erase a
		// domination chain's witness (A dominates B dominates C where B's
		// endogeneity mattered). One-at-a-time is the conservative fixed
		// point.
		out.MarkExogenous(dom[0])
	}
}

func varSet(q *cq.Query, atom int) map[cq.Var]bool {
	s := map[cq.Var]bool{}
	for _, v := range q.Atoms[atom].Args {
		s[v] = true
	}
	return s
}
