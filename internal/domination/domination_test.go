package domination

import (
	"testing"

	"repro/internal/cq"
)

func TestSJFreeDominationTripod(t *testing.T) {
	// A(x) dominates W(x,y,z) in qT (Section 2.2).
	q := cq.MustParse("qT :- A(x), B(y), C(z), W(x,y,z)")
	if !SJFreeDominates(q, 0, 3) {
		t.Error("A should dominate W (Definition 3)")
	}
	if SJFreeDominates(q, 3, 0) {
		t.Error("W must not dominate A")
	}
	if SJFreeDominates(q, 0, 1) {
		t.Error("A must not dominate B (disjoint vars)")
	}
}

func TestSJDominationDefinition16Examples(t *testing.T) {
	// Example 17: A doesn't dominate R in q1 but does in q2; S dominated in
	// both.
	q1 := cq.MustParse("q1 :- R(x,y), A(y), R(y,z), S(y,z)")
	q2 := cq.MustParse("q2 :- R(x,y), A(y), R(z,y), S(y,z)")
	if Dominates(q1, "A", "R") {
		t.Error("q1: A must not dominate R")
	}
	if !Dominates(q2, "A", "R") {
		t.Error("q2: A should dominate R")
	}
	if !Dominates(q1, "A", "S") || !Dominates(q2, "A", "S") {
		t.Error("A should dominate S in both queries")
	}
}

func TestSJDominationRatsVariation(t *testing.T) {
	// Section 3.2 / 5.1: in qsj1rats, R is robust and not dominated by A.
	q := cq.MustParse("qsj1rats :- A(x), R(x,y), R(y,z), R(z,x)")
	if Dominates(q, "A", "R") {
		t.Error("A must not dominate R in qsj1rats")
	}
	// In plain qrats, A dominates both R and T.
	qrats := cq.MustParse("qrats :- R(x,y), A(x), T(z,x), S(y,z)")
	if !Dominates(qrats, "A", "R") || !Dominates(qrats, "A", "T") {
		t.Error("A should dominate R and T in qrats")
	}
	if Dominates(qrats, "A", "S") {
		t.Error("A must not dominate S in qrats")
	}
}

func TestDominationRequiresEndogenous(t *testing.T) {
	q := cq.MustParse("q :- A(x)^x, R(x,y)")
	if Dominates(q, "A", "R") {
		t.Error("exogenous A cannot dominate")
	}
	q2 := cq.MustParse("q :- A(x), R(x,y)^x")
	if Dominates(q2, "A", "R") {
		t.Error("exogenous R cannot be dominated (already exogenous)")
	}
}

func TestNormalizeRats(t *testing.T) {
	q := cq.MustParse("qrats :- R(x,y), A(x), T(z,x), S(y,z)")
	n := Normalize(q)
	if !n.IsExogenous("R") || !n.IsExogenous("T") {
		t.Error("Normalize should mark R and T exogenous")
	}
	if n.IsExogenous("A") || n.IsExogenous("S") {
		t.Error("A and S must stay endogenous")
	}
	// Original untouched.
	if q.IsExogenous("R") {
		t.Error("Normalize must not mutate its argument")
	}
}

func TestNormalizeBrats(t *testing.T) {
	// Section 5.1: in qbrats, A dominates R,T and B dominates S.
	q := cq.MustParse("qbrats :- B(y), R(x,y), A(x), T(z,x), S(y,z)")
	n := Normalize(q)
	for _, rel := range []string{"R", "T", "S"} {
		if !n.IsExogenous(rel) {
			t.Errorf("%s should be exogenous after normalization", rel)
		}
	}
	for _, rel := range []string{"A", "B"} {
		if n.IsExogenous(rel) {
			t.Errorf("%s should stay endogenous", rel)
		}
	}
}

func TestNormalizeTripod(t *testing.T) {
	q := cq.MustParse("qT :- A(x), B(y), C(z), W(x,y,z)")
	n := Normalize(q)
	if !n.IsExogenous("W") {
		t.Error("W should be exogenous in normalized tripod")
	}
	if n.IsExogenous("A") || n.IsExogenous("B") || n.IsExogenous("C") {
		t.Error("A, B, C must stay endogenous")
	}
}

func TestNormalizeSJVariationKeepsREndogenous(t *testing.T) {
	q := cq.MustParse("qsj1rats :- A(x), R(x,y), R(y,z), R(z,x)")
	n := Normalize(q)
	if n.IsExogenous("R") {
		t.Error("R must stay endogenous in qsj1rats (Example 11)")
	}
}

func TestUnaryDominatesUnarySameVar(t *testing.T) {
	// A(x) and B(x): each dominates the other (both appear once, same var).
	q := cq.MustParse("q :- A(x), B(x), S(x,y)")
	if !Dominates(q, "A", "B") || !Dominates(q, "B", "A") {
		t.Error("A and B should dominate each other")
	}
	if !Dominates(q, "A", "S") {
		t.Error("A should dominate S")
	}
	// Normalization must terminate and keep at least one endogenous atom...
	// it marks B (or A) exogenous first, then S; mutual domination resolves
	// by order without livelock.
	n := Normalize(q)
	endo := 0
	for _, r := range n.Relations() {
		if !n.IsExogenous(r) {
			endo++
		}
	}
	if endo == 0 {
		t.Error("normalization erased all endogenous relations")
	}
}

func TestChainNoDomination(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	if got := DominatedRelations(q); len(got) != 0 {
		t.Errorf("chain has dominated relations %v, want none", got)
	}
	qvc := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	// R dominates S under Definition 16 via f(1)=1: the single S-atom
	// S(x,y) is matched by R(x). Semantically: any witness using S(a,b)
	// also uses R(a), so S-tuples are never needed in minimum contingency
	// sets (vertex cover deletes vertices, not edges).
	if !Dominates(qvc, "R", "S") {
		t.Error("R should dominate S in qvc (Definition 16, f(1)=1)")
	}
	if Dominates(qvc, "S", "R") {
		t.Error("S must not dominate R in qvc")
	}
}
