package resilience

import (
	"context"
	"sort"

	"repro/internal/cq"
	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/witset"
)

// EnumerateMinimum returns ρ(q, D) together with every minimum contingency
// set, up to maxSets of them (0 means no cap). Sets are returned in a
// deterministic order, each sorted.
//
// Explanations and causality applications often need the full space of
// optimal interventions rather than one witness of optimality — e.g. to
// report all minimal repairs, or to compute how often a tuple appears in
// an optimal contingency set.
//
// The witness hypergraph is built once and shared by the ρ computation and
// the enumeration. The enumeration branches on the tuples of the first
// witness not yet hit, which visits every minimum hitting set (any optimal
// set must intersect that witness); duplicates arising from different
// branch orders are removed by canonical key.
func EnumerateMinimum(q *cq.Query, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	return EnumerateMinimumCtx(context.Background(), q, d, maxSets)
}

// EnumerateMinimumCtx is EnumerateMinimum with cooperative cancellation:
// the witness enumeration, the ρ computation, and the all-optima recursion
// all poll ctx and abort with ctx.Err() once it is done.
func EnumerateMinimumCtx(ctx context.Context, q *cq.Query, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	inst, err := witset.Build(ctx, q, d, nil)
	if err != nil {
		return 0, nil, err
	}
	return EnumerateMinimumOnInstance(ctx, inst, d, maxSets)
}

// EnumerateMinimumOnInstance runs the all-optima enumeration over a
// prebuilt witness-hypergraph IR, which is how the serving layer reuses one
// cached IR across many enumerate requests. d must be the database the
// instance was built from (it resolves constant names for the canonical
// ordering of the returned sets).
func EnumerateMinimumOnInstance(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	base, err := ExactOnInstance(ctx, inst, -1)
	if err != nil {
		return 0, nil, err
	}
	rho := base.Rho
	if rho == 0 {
		return 0, nil, nil
	}
	rows := inst.Rows()

	chosen := witset.NewBits(inst.NumTuples())
	var cur []int32
	seen := map[string]bool{}
	var out [][]db.Tuple

	key := func(ts []db.Tuple) string {
		s := ""
		for _, t := range ts {
			s += d.TupleString(t) + ";"
		}
		return s
	}
	record := func() bool {
		set := inst.TupleSet(cur)
		k := key(set)
		if seen[k] {
			return true
		}
		seen[k] = true
		out = append(out, set)
		return maxSets == 0 || len(out) < maxSets
	}

	poll := ctxpoll.New(ctx)
	var rec func() bool
	rec = func() bool {
		if poll.Cancelled() {
			return false
		}
		// First witness not hit by the current choice.
		var unhit []int32
		for _, row := range rows {
			hit := false
			for _, e := range row {
				if chosen.Has(e) {
					hit = true
					break
				}
			}
			if !hit {
				unhit = row
				break
			}
		}
		if unhit == nil {
			if len(cur) == rho {
				return record()
			}
			return true // smaller than ρ is impossible; larger is pruned below
		}
		if len(cur) == rho {
			return true // budget spent, witness unhit: dead branch
		}
		for _, e := range unhit {
			chosen.Set(e)
			cur = append(cur, e)
			ok := rec()
			cur = cur[:len(cur)-1]
			chosen.Unset(e)
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	if err := poll.Err(); err != nil {
		return 0, nil, err
	}

	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return rho, out, nil
}
