package resilience

import (
	"context"
	"slices"
	"sort"

	"repro/internal/cq"
	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/witset"
)

// EnumerateMinimum returns ρ(q, D) together with every minimum contingency
// set, up to maxSets of them (0 means no cap). Sets are returned in a
// deterministic order, each sorted.
//
// Explanations and causality applications often need the full space of
// optimal interventions rather than one witness of optimality — e.g. to
// report all minimal repairs, or to compute how often a tuple appears in
// an optimal contingency set.
func EnumerateMinimum(q *cq.Query, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	return EnumerateMinimumCtx(context.Background(), q, d, maxSets)
}

// EnumerateMinimumCtx is EnumerateMinimum with cooperative cancellation:
// the witness enumeration, the ρ computation, and the all-optima recursion
// all poll ctx and abort with ctx.Err() once it is done.
func EnumerateMinimumCtx(ctx context.Context, q *cq.Query, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	inst, err := witset.Build(ctx, q, d, nil)
	if err != nil {
		return 0, nil, err
	}
	return EnumerateMinimumOnInstance(ctx, inst, d, maxSets)
}

// EnumerateMinimumOnInstance runs the all-optima enumeration over a
// prebuilt witness-hypergraph IR, which is how the serving layer reuses one
// cached IR across many enumerate requests. d must be the database the
// instance was built from (it resolves constant names for the canonical
// ordering of the returned sets). On a weighted instance the returned size
// is the total cost ρ_w truncated to int; weighted callers should use
// EnumerateMinimumWeightedOnInstance directly.
func EnumerateMinimumOnInstance(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	cost, sets, err := EnumerateMinimumWeightedOnInstance(ctx, inst, d, maxSets)
	return int(cost), sets, err
}

// EnumerateMinimumWeightedOnInstance enumerates every minimum-COST
// contingency set of a weighted instance (every minimum-cardinality one
// when the instance is unweighted — the unit APIs are thin wrappers over
// this function), up to maxSets of them, in the same deterministic order.
// Minimum-cost sets are all minimal (costs are >= 1: a redundant element
// could be dropped for a cheaper hitting set), so the branch-on-first-unhit
// recursion still visits every one of them.
//
// The enumeration is component-parallel in structure: the normalized family
// is split into connected components, each component's minimum hitting sets
// are enumerated locally, and the global optima are exactly the unions of
// one minimum set per component — additivity of disjoint costs makes a
// union optimal iff every part is. Kernelization's domination rule is
// deliberately not applied: it preserves one optimum but discards others,
// which is precisely what this API must not do.
func EnumerateMinimumWeightedOnInstance(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int) (int64, [][]db.Tuple, error) {
	if inst.Unbreakable() {
		return 0, nil, ErrUnbreakable
	}
	comps := inst.Components()
	if len(comps) == 0 {
		return 0, nil, nil // no witnesses, or every row empty — ρ = 0
	}
	poll := ctxpoll.New(ctx)
	cost := int64(0)
	sets := [][]int32{nil} // running cross product, global ids
	for _, c := range comps {
		ccost, csets, err := enumerateFamily(ctx, poll, c.Fam, maxSets)
		if err != nil {
			return 0, nil, err
		}
		cost += ccost
		if ccost == 0 {
			continue // cannot happen (components have rows), but harmless
		}
		next := make([][]int32, 0, len(sets)*len(csets))
	cross:
		for _, base := range sets {
			for _, cs := range csets {
				merged := make([]int32, 0, len(base)+len(cs))
				merged = append(append(merged, base...), c.ToGlobal(cs)...)
				next = append(next, merged)
				if maxSets > 0 && len(next) >= maxSets {
					break cross
				}
			}
		}
		sets = next
	}
	return cost, finishSets(inst, d, sets), nil
}

// enumerateMinimumMonolithic is the pre-pipeline enumeration over the whole
// instance at once: branch on the tuples of the first witness not yet hit,
// which visits every minimum hitting set (any optimal set must intersect
// that witness). It is kept as the differential suite's oracle for
// pipeline ≡ monolithic parity.
func enumerateMinimumMonolithic(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	base, err := solveInstance(ctx, inst, -1, "exact", Options{Monolithic: true})
	if err != nil {
		return 0, nil, err
	}
	if base.Rho == 0 {
		return 0, nil, nil
	}
	poll := ctxpoll.New(ctx)
	sets, err := enumerateRows(poll, inst.Rows(), inst.NumTuples(), nil, int64(base.Rho), maxSets, nil)
	if err != nil {
		return 0, nil, err
	}
	return base.Rho, finishSets(inst, d, sets), nil
}

// enumerateMinimumWeightedMonolithic is the weighted oracle twin of
// enumerateMinimumMonolithic: one monolithic weighted solve for ρ_w, then
// the same whole-instance recursion with per-tuple costs.
func enumerateMinimumWeightedMonolithic(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int) (int64, [][]db.Tuple, error) {
	base, err := solveWeightedInstance(ctx, inst, -1, "weighted-exact", Options{Monolithic: true})
	if err != nil {
		return 0, nil, err
	}
	if base.Cost == 0 {
		return 0, nil, nil
	}
	poll := ctxpoll.New(ctx)
	sets, err := enumerateRows(poll, inst.Rows(), inst.NumTuples(), inst.Weights(), base.Cost, maxSets, nil)
	if err != nil {
		return 0, nil, err
	}
	return base.Cost, finishSets(inst, d, sets), nil
}

// EnumerateMinimumFunc is the streaming form of EnumerateMinimumOnInstance:
// every minimum contingency set is passed to emit as the search discovers
// it, so a serving layer can flush the first set to a client long before
// the enumeration finishes. It returns ρ and the number of sets emitted.
// On a weighted instance the emitted rho is ρ_w truncated to int; weighted
// callers should use EnumerateMinimumWeightedFunc directly.
func EnumerateMinimumFunc(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int, emit func(rho int, set []db.Tuple) error) (int, int, error) {
	cost, count, err := EnumerateMinimumWeightedFunc(ctx, inst, d, maxSets, func(c int64, set []db.Tuple) error {
		return emit(int(c), set)
	})
	return int(cost), count, err
}

// EnumerateMinimumWeightedFunc is the streaming all-optima enumeration in
// total-cost terms (the unit EnumerateMinimumFunc wraps it): every
// minimum-cost contingency set is passed to emit as the search discovers
// it. It returns ρ_w and the number of sets emitted.
//
// ρ_w is computed first (one hitting-set solve per component), so emit
// always receives the final cost; sets then arrive in discovery order — NOT
// the canonical sorted order of EnumerateMinimumWeightedOnInstance — with
// each set's tuples sorted by instance id. maxSets caps emission (0 = no
// cap). An error returned by emit aborts the search and is returned
// unchanged.
//
// Structure: all components but the last are enumerated into the running
// cross-product prefix; the last component's enumeration is then streamed,
// each newly found local set completing len(prefix) global sets. On
// single-component instances (the common case) this degenerates to pure
// streaming of the branch-and-enumerate recursion.
func EnumerateMinimumWeightedFunc(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int, emit func(cost int64, set []db.Tuple) error) (int64, int, error) {
	if inst.Unbreakable() {
		return 0, 0, ErrUnbreakable
	}
	comps := inst.Components()
	if len(comps) == 0 {
		return 0, 0, nil // no witnesses, or every row empty — ρ = 0
	}
	poll := ctxpoll.New(ctx)

	// Solve every component up front: ρ_w is the sum of the component minima
	// (additivity over disjoint tuple universes), and streaming can only
	// start once it is known.
	cost := int64(0)
	costs := make([]int64, len(comps))
	for i, c := range comps {
		ccost, _, err := solveComponentFamily(ctx, c.Fam)
		if err != nil {
			return 0, 0, err
		}
		costs[i] = ccost
		cost += ccost
	}

	// Cross-product prefix over all components but the last contributing
	// one. Components with cost == 0 cannot happen (components have rows)
	// but are skipped like in the non-streaming path, keeping both
	// enumerations total on the same inputs.
	contributing := make([]int, 0, len(comps))
	for i := range comps {
		if costs[i] > 0 {
			contributing = append(contributing, i)
		}
	}
	if len(contributing) == 0 {
		return cost, 0, nil
	}
	last := contributing[len(contributing)-1]
	prefix := [][]int32{nil}
	for _, i := range contributing[:len(contributing)-1] {
		csets, err := enumerateRows(poll, comps[i].Fam.Rows, comps[i].Fam.N, comps[i].Fam.W, costs[i], maxSets, nil)
		if err != nil {
			return 0, 0, err
		}
		next := make([][]int32, 0, len(prefix)*len(csets))
	cross:
		for _, base := range prefix {
			for _, cs := range csets {
				merged := make([]int32, 0, len(base)+len(cs))
				merged = append(append(merged, base...), comps[i].ToGlobal(cs)...)
				next = append(next, merged)
				if maxSets > 0 && len(next) >= maxSets {
					break cross
				}
			}
		}
		prefix = next
	}

	c := comps[last]
	count := 0
	var emitErr error
	_, err := enumerateRows(poll, c.Fam.Rows, c.Fam.N, c.Fam.W, costs[last], 0, func(cs []int32) bool {
		for _, base := range prefix {
			// The prefix cross product can dwarf the recursion between
			// emissions (2^components sets from one local set), so
			// cancellation is polled per emission, not just per search
			// node.
			if poll.Cancelled() {
				return false
			}
			merged := make([]int32, 0, len(base)+len(cs))
			merged = append(append(merged, base...), c.ToGlobal(cs)...)
			slices.Sort(merged)
			if emitErr = emit(cost, inst.TupleSet(merged)); emitErr != nil {
				return false
			}
			count++
			if maxSets > 0 && count >= maxSets {
				return false
			}
		}
		return true
	})
	if emitErr != nil {
		return 0, count, emitErr
	}
	if err != nil {
		return 0, count, err
	}
	return cost, count, nil
}

// solveComponentFamily solves one component family for its minimum in
// total-cost terms, dispatching on whether the family carries weights so
// the unit path keeps its int-typed hot loop.
func solveComponentFamily(ctx context.Context, fam *witset.Family) (int64, []int32, error) {
	if fam.W == nil {
		rho, ids, err := solveFamily(ctx, fam, -1, Options{})
		return int64(rho), ids, err
	}
	return solveFamilyWeighted(ctx, fam, -1, Options{})
}

// enumerateFamily returns a family's minimum hitting set cost together with
// its minimum hitting sets (up to maxSets when maxSets > 0), as sorted
// local-id sets in a deterministic order. On an unweighted family the cost
// is the cardinality.
func enumerateFamily(ctx context.Context, poll *ctxpoll.Poller, fam *witset.Family, maxSets int) (int64, [][]int32, error) {
	cost, _, err := solveComponentFamily(ctx, fam)
	if err != nil {
		return 0, nil, err
	}
	if cost == 0 {
		return 0, nil, nil
	}
	sets, err := enumerateRows(poll, fam.Rows, fam.N, fam.W, cost, maxSets, nil)
	if err != nil {
		return 0, nil, err
	}
	return cost, sets, nil
}

// enumerateRows visits every hitting set of rows with total cost exactly
// cost (element costs from w; 1 each when w is nil, making cost the
// cardinality) by branching on the first unhit row (any optimal set must
// intersect it), deduplicating sets that different branch orders reach.
// cost must be the minimum hitting-set cost: sets cheaper than it cannot
// exist, and branches at or above it with a row still unhit are dead (every
// further element costs >= 1). All recorded sets are minimal — dropping a
// redundant element would give a hitting set cheaper than the minimum.
//
// With a nil visit, sets are collected and returned as sorted id slices in
// a deterministic order, capped at maxSets (0 = no cap). With a non-nil
// visit, each deduplicated set is passed to it as the recursion finds it —
// the streaming mode — and a false return stops the search; the returned
// slice is then nil and capping is the visitor's business.
func enumerateRows(poll *ctxpoll.Poller, rows [][]int32, n int, w []int64, cost int64, maxSets int, visit func([]int32) bool) ([][]int32, error) {
	chosen := witset.NewBits(n)
	var cur []int32
	curW := int64(0)
	seen := map[string]bool{}
	var out [][]int32

	weight := func(e int32) int64 {
		if w == nil {
			return 1
		}
		return w[e]
	}

	record := func() bool {
		set := append([]int32(nil), cur...)
		slices.Sort(set)
		k := idKey(set)
		if seen[k] {
			return true
		}
		seen[k] = true
		if visit != nil {
			return visit(set)
		}
		out = append(out, set)
		return maxSets == 0 || len(out) < maxSets
	}

	var rec func() bool
	rec = func() bool {
		if poll.Cancelled() {
			return false
		}
		// First row not hit by the current choice.
		var unhit []int32
		for _, row := range rows {
			hit := false
			for _, e := range row {
				if chosen.Has(e) {
					hit = true
					break
				}
			}
			if !hit {
				unhit = row
				break
			}
		}
		if unhit == nil {
			if curW == cost {
				return record()
			}
			return true // cheaper than the minimum is impossible; pricier is pruned below
		}
		if curW >= cost {
			return true // budget spent, row unhit: dead branch
		}
		for _, e := range unhit {
			chosen.Set(e)
			cur = append(cur, e)
			curW += weight(e)
			ok := rec()
			curW -= weight(e)
			cur = cur[:len(cur)-1]
			chosen.Unset(e)
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	if err := poll.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// idKey renders a sorted id set as a map key.
func idKey(ids []int32) string {
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), ';')
	}
	return string(b)
}

// finishSets projects id sets to tuple sets and orders them canonically by
// their rendered tuple strings, matching the order clients have always
// observed.
func finishSets(inst *witset.Instance, d *db.Database, sets [][]int32) [][]db.Tuple {
	if len(sets) == 0 {
		return nil
	}
	out := make([][]db.Tuple, len(sets))
	keys := make([]string, len(sets))
	for i, ids := range sets {
		out[i] = inst.TupleSet(ids)
		s := ""
		for _, t := range out[i] {
			s += d.TupleString(t) + ";"
		}
		keys[i] = s
	}
	sort.Sort(&byKey{keys: keys, sets: out})
	return out
}

type byKey struct {
	keys []string
	sets [][]db.Tuple
}

func (b *byKey) Len() int           { return len(b.keys) }
func (b *byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b *byKey) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.sets[i], b.sets[j] = b.sets[j], b.sets[i]
}
