package resilience

import (
	"context"
	"sort"

	"repro/internal/cq"
	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/witset"
)

// EnumerateMinimum returns ρ(q, D) together with every minimum contingency
// set, up to maxSets of them (0 means no cap). Sets are returned in a
// deterministic order, each sorted.
//
// Explanations and causality applications often need the full space of
// optimal interventions rather than one witness of optimality — e.g. to
// report all minimal repairs, or to compute how often a tuple appears in
// an optimal contingency set.
func EnumerateMinimum(q *cq.Query, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	return EnumerateMinimumCtx(context.Background(), q, d, maxSets)
}

// EnumerateMinimumCtx is EnumerateMinimum with cooperative cancellation:
// the witness enumeration, the ρ computation, and the all-optima recursion
// all poll ctx and abort with ctx.Err() once it is done.
func EnumerateMinimumCtx(ctx context.Context, q *cq.Query, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	inst, err := witset.Build(ctx, q, d, nil)
	if err != nil {
		return 0, nil, err
	}
	return EnumerateMinimumOnInstance(ctx, inst, d, maxSets)
}

// EnumerateMinimumOnInstance runs the all-optima enumeration over a
// prebuilt witness-hypergraph IR, which is how the serving layer reuses one
// cached IR across many enumerate requests. d must be the database the
// instance was built from (it resolves constant names for the canonical
// ordering of the returned sets).
//
// The enumeration is component-parallel in structure: the normalized family
// is split into connected components, each component's minimum hitting sets
// are enumerated locally, and the global optima are exactly the unions of
// one minimum set per component — so the result is the (capped) cross
// product of the per-component enumerations. Kernelization's domination
// rule is deliberately not applied: it preserves one optimum but discards
// others, which is precisely what this API must not do.
func EnumerateMinimumOnInstance(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	if inst.Unbreakable() {
		return 0, nil, ErrUnbreakable
	}
	comps := inst.Components()
	if len(comps) == 0 {
		return 0, nil, nil // no witnesses, or every row empty — ρ = 0
	}
	poll := ctxpoll.New(ctx)
	rho := 0
	sets := [][]int32{nil} // running cross product, global ids
	for _, c := range comps {
		crho, csets, err := enumerateFamily(ctx, poll, c.Fam, maxSets)
		if err != nil {
			return 0, nil, err
		}
		rho += crho
		if crho == 0 {
			continue // cannot happen (components have rows), but harmless
		}
		next := make([][]int32, 0, len(sets)*len(csets))
	cross:
		for _, base := range sets {
			for _, cs := range csets {
				merged := make([]int32, 0, len(base)+len(cs))
				merged = append(append(merged, base...), c.ToGlobal(cs)...)
				next = append(next, merged)
				if maxSets > 0 && len(next) >= maxSets {
					break cross
				}
			}
		}
		sets = next
	}
	return rho, finishSets(inst, d, sets), nil
}

// enumerateMinimumMonolithic is the pre-pipeline enumeration over the whole
// instance at once: branch on the tuples of the first witness not yet hit,
// which visits every minimum hitting set (any optimal set must intersect
// that witness). It is kept as the differential suite's oracle for
// pipeline ≡ monolithic parity.
func enumerateMinimumMonolithic(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	base, err := solveInstance(ctx, inst, -1, "exact", Options{Monolithic: true})
	if err != nil {
		return 0, nil, err
	}
	if base.Rho == 0 {
		return 0, nil, nil
	}
	poll := ctxpoll.New(ctx)
	sets, err := enumerateRows(poll, inst.Rows(), inst.NumTuples(), base.Rho, maxSets, nil)
	if err != nil {
		return 0, nil, err
	}
	return base.Rho, finishSets(inst, d, sets), nil
}

// EnumerateMinimumFunc is the streaming form of EnumerateMinimumOnInstance:
// every minimum contingency set is passed to emit as the search discovers
// it, so a serving layer can flush the first set to a client long before
// the enumeration finishes. It returns ρ and the number of sets emitted.
//
// ρ is computed first (one hitting-set solve per component), so emit
// always receives the final ρ; sets then arrive in discovery order — NOT
// the canonical sorted order of EnumerateMinimumOnInstance — with each
// set's tuples sorted by instance id. maxSets caps emission (0 = no cap).
// An error returned by emit aborts the search and is returned unchanged.
//
// Structure: all components but the last are enumerated into the running
// cross-product prefix; the last component's enumeration is then streamed,
// each newly found local set completing len(prefix) global sets. On
// single-component instances (the common case) this degenerates to pure
// streaming of the branch-and-enumerate recursion.
func EnumerateMinimumFunc(ctx context.Context, inst *witset.Instance, d *db.Database, maxSets int, emit func(rho int, set []db.Tuple) error) (int, int, error) {
	if inst.Unbreakable() {
		return 0, 0, ErrUnbreakable
	}
	comps := inst.Components()
	if len(comps) == 0 {
		return 0, 0, nil // no witnesses, or every row empty — ρ = 0
	}
	poll := ctxpoll.New(ctx)

	// Solve every component up front: ρ is the sum of the component minima
	// (additivity over disjoint tuple universes), and streaming can only
	// start once it is known.
	rho := 0
	rhos := make([]int, len(comps))
	for i, c := range comps {
		crho, _, err := solveFamily(ctx, c.Fam, -1, Options{})
		if err != nil {
			return 0, 0, err
		}
		rhos[i] = crho
		rho += crho
	}

	// Cross-product prefix over all components but the last contributing
	// one. Components with crho == 0 cannot happen (components have rows)
	// but are skipped like in the non-streaming path, keeping both
	// enumerations total on the same inputs.
	contributing := make([]int, 0, len(comps))
	for i := range comps {
		if rhos[i] > 0 {
			contributing = append(contributing, i)
		}
	}
	if len(contributing) == 0 {
		return rho, 0, nil
	}
	last := contributing[len(contributing)-1]
	prefix := [][]int32{nil}
	for _, i := range contributing[:len(contributing)-1] {
		csets, err := enumerateRows(poll, comps[i].Fam.Rows, comps[i].Fam.N, rhos[i], maxSets, nil)
		if err != nil {
			return 0, 0, err
		}
		next := make([][]int32, 0, len(prefix)*len(csets))
	cross:
		for _, base := range prefix {
			for _, cs := range csets {
				merged := make([]int32, 0, len(base)+len(cs))
				merged = append(append(merged, base...), comps[i].ToGlobal(cs)...)
				next = append(next, merged)
				if maxSets > 0 && len(next) >= maxSets {
					break cross
				}
			}
		}
		prefix = next
	}

	c := comps[last]
	count := 0
	var emitErr error
	_, err := enumerateRows(poll, c.Fam.Rows, c.Fam.N, rhos[last], 0, func(cs []int32) bool {
		for _, base := range prefix {
			// The prefix cross product can dwarf the recursion between
			// emissions (2^components sets from one local set), so
			// cancellation is polled per emission, not just per search
			// node.
			if poll.Cancelled() {
				return false
			}
			merged := make([]int32, 0, len(base)+len(cs))
			merged = append(append(merged, base...), c.ToGlobal(cs)...)
			sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
			if emitErr = emit(rho, inst.TupleSet(merged)); emitErr != nil {
				return false
			}
			count++
			if maxSets > 0 && count >= maxSets {
				return false
			}
		}
		return true
	})
	if emitErr != nil {
		return 0, count, emitErr
	}
	if err != nil {
		return 0, count, err
	}
	return rho, count, nil
}

// enumerateFamily returns a family's minimum hitting set size together with
// its minimum hitting sets (up to maxSets when maxSets > 0), as sorted
// local-id sets in a deterministic order.
func enumerateFamily(ctx context.Context, poll *ctxpoll.Poller, fam *witset.Family, maxSets int) (int, [][]int32, error) {
	rho, _, err := solveFamily(ctx, fam, -1, Options{})
	if err != nil {
		return 0, nil, err
	}
	if rho == 0 {
		return 0, nil, nil
	}
	sets, err := enumerateRows(poll, fam.Rows, fam.N, rho, maxSets, nil)
	if err != nil {
		return 0, nil, err
	}
	return rho, sets, nil
}

// enumerateRows visits every hitting set of rows with exactly rho elements
// by branching on the first unhit row (any optimal set must intersect it),
// deduplicating sets that different branch orders reach. With a nil visit,
// sets are collected and returned as sorted id slices in a deterministic
// order, capped at maxSets (0 = no cap). With a non-nil visit, each
// deduplicated set is passed to it as the recursion finds it — the
// streaming mode — and a false return stops the search; the returned slice
// is then nil and capping is the visitor's business.
func enumerateRows(poll *ctxpoll.Poller, rows [][]int32, n, rho, maxSets int, visit func([]int32) bool) ([][]int32, error) {
	chosen := witset.NewBits(n)
	var cur []int32
	seen := map[string]bool{}
	var out [][]int32

	record := func() bool {
		set := append([]int32(nil), cur...)
		sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
		k := idKey(set)
		if seen[k] {
			return true
		}
		seen[k] = true
		if visit != nil {
			return visit(set)
		}
		out = append(out, set)
		return maxSets == 0 || len(out) < maxSets
	}

	var rec func() bool
	rec = func() bool {
		if poll.Cancelled() {
			return false
		}
		// First row not hit by the current choice.
		var unhit []int32
		for _, row := range rows {
			hit := false
			for _, e := range row {
				if chosen.Has(e) {
					hit = true
					break
				}
			}
			if !hit {
				unhit = row
				break
			}
		}
		if unhit == nil {
			if len(cur) == rho {
				return record()
			}
			return true // smaller than ρ is impossible; larger is pruned below
		}
		if len(cur) == rho {
			return true // budget spent, row unhit: dead branch
		}
		for _, e := range unhit {
			chosen.Set(e)
			cur = append(cur, e)
			ok := rec()
			cur = cur[:len(cur)-1]
			chosen.Unset(e)
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	if err := poll.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// idKey renders a sorted id set as a map key.
func idKey(ids []int32) string {
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), ';')
	}
	return string(b)
}

// finishSets projects id sets to tuple sets and orders them canonically by
// their rendered tuple strings, matching the order clients have always
// observed.
func finishSets(inst *witset.Instance, d *db.Database, sets [][]int32) [][]db.Tuple {
	if len(sets) == 0 {
		return nil
	}
	out := make([][]db.Tuple, len(sets))
	keys := make([]string, len(sets))
	for i, ids := range sets {
		out[i] = inst.TupleSet(ids)
		s := ""
		for _, t := range out[i] {
			s += d.TupleString(t) + ";"
		}
		keys[i] = s
	}
	sort.Sort(&byKey{keys: keys, sets: out})
	return out
}

type byKey struct {
	keys []string
	sets [][]db.Tuple
}

func (b *byKey) Len() int           { return len(b.keys) }
func (b *byKey) Less(i, j int) bool { return b.keys[i] < b.keys[j] }
func (b *byKey) Swap(i, j int) {
	b.keys[i], b.keys[j] = b.keys[j], b.keys[i]
	b.sets[i], b.sets[j] = b.sets[j], b.sets[i]
}
