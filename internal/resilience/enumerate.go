package resilience

import (
	"sort"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
)

// EnumerateMinimum returns ρ(q, D) together with every minimum contingency
// set, up to maxSets of them (0 means no cap). Sets are returned in a
// deterministic order, each sorted.
//
// Explanations and causality applications often need the full space of
// optimal interventions rather than one witness of optimality — e.g. to
// report all minimal repairs, or to compute how often a tuple appears in
// an optimal contingency set.
//
// The enumeration branches on the tuples of the first witness not yet hit,
// which visits every minimum hitting set (any optimal set must intersect
// that witness); duplicates arising from different branch orders are
// removed by canonical key.
func EnumerateMinimum(q *cq.Query, d *db.Database, maxSets int) (int, [][]db.Tuple, error) {
	base, err := Exact(q, d)
	if err != nil {
		return 0, nil, err
	}
	rho := base.Rho
	if rho == 0 {
		return 0, nil, nil
	}
	sets, _ := eval.EndoWitnessSets(q, d)

	chosen := map[db.Tuple]bool{}
	seen := map[string]bool{}
	var out [][]db.Tuple

	key := func(ts []db.Tuple) string {
		s := ""
		for _, t := range ts {
			s += d.TupleString(t) + ";"
		}
		return s
	}
	record := func() bool {
		cur := make([]db.Tuple, 0, len(chosen))
		for t := range chosen {
			cur = append(cur, t)
		}
		db.SortTuples(cur)
		k := key(cur)
		if seen[k] {
			return true
		}
		seen[k] = true
		out = append(out, cur)
		return maxSets == 0 || len(out) < maxSets
	}

	var rec func() bool
	rec = func() bool {
		// First witness not hit by the current choice.
		var unhit []db.Tuple
		for _, w := range sets {
			hit := false
			for _, t := range w {
				if chosen[t] {
					hit = true
					break
				}
			}
			if !hit {
				unhit = w
				break
			}
		}
		if unhit == nil {
			if len(chosen) == rho {
				return record()
			}
			return true // smaller than ρ is impossible; larger is pruned below
		}
		if len(chosen) == rho {
			return true // budget spent, witness unhit: dead branch
		}
		for _, t := range unhit {
			if chosen[t] {
				continue
			}
			chosen[t] = true
			ok := rec()
			delete(chosen, t)
			if !ok {
				return false
			}
		}
		return true
	}
	rec()

	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return rho, out, nil
}
