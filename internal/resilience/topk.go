package resilience

import (
	"context"
	"slices"
	"strings"

	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/witset"
)

// WeightedResponsibilityOnInstance is ResponsibilityOnInstance generalized
// to per-tuple deletion costs: the returned k is the minimum total cost of
// a contingency set making t a counterfactual cause (the responsibility
// score is then 1/(1+k)). On an unweighted instance it delegates to the
// cardinality computation, so uniform weights agree with it by
// construction.
func WeightedResponsibilityOnInstance(ctx context.Context, inst *witset.Instance, d *db.Database, t db.Tuple) (int64, []db.Tuple, error) {
	if inst.Weights() == nil {
		k, gamma, err := ResponsibilityOnInstance(ctx, inst, d, t)
		return int64(k), gamma, err
	}
	if err := validateProbe(inst.Query(), d, t); err != nil {
		return 0, nil, err
	}
	if inst.Unbreakable() {
		return 0, nil, ErrNotCounterfactual
	}
	tid, ok := inst.ID(t)
	if !ok {
		return 0, nil, ErrNotCounterfactual
	}

	comps := inst.Components()
	var home *witset.Component
	var localT int32
	for _, c := range comps {
		if lid, ok := searchGlobal(c.Global, tid); ok {
			home, localT = c, lid
			break
		}
	}
	if home == nil {
		return 0, nil, ErrNotCounterfactual
	}

	poll := ctxpoll.New(ctx)
	localK, localGamma, err := responsibilityInFamilyWeighted(ctx, poll, home.Fam, localT)
	if err != nil {
		return 0, nil, err
	}
	if localK < 0 {
		return 0, nil, ErrNotCounterfactual
	}
	k := localK
	gammaIDs := home.ToGlobal(localGamma)
	for _, c := range comps {
		if c == home {
			continue
		}
		size, ids, err := solveFamilyWeighted(ctx, c.Fam, -1, Options{})
		if err != nil {
			return 0, nil, err
		}
		k += size
		gammaIDs = append(gammaIDs, c.ToGlobal(ids)...)
	}
	if k == 0 {
		return 0, nil, nil
	}
	return k, inst.TupleSet(gammaIDs), nil
}

// responsibilityInFamilyWeighted is the min-cost twin of
// responsibilityInFamily: same surviving-witness loop, with budgets and the
// per-candidate hitting-set solves in total-cost terms (costs from fam.W).
// Returns k = -1 when no candidate is feasible.
func responsibilityInFamilyWeighted(ctx context.Context, poll *ctxpoll.Poller, fam *witset.Family, tid int32) (int64, []int32, error) {
	var withT, withoutT [][]int32
	for _, row := range fam.Rows {
		uses := false
		for _, e := range row {
			if e == tid {
				uses = true
				break
			}
		}
		if uses {
			withT = append(withT, row)
		} else {
			withoutT = append(withoutT, row)
		}
	}
	if len(withT) == 0 {
		return -1, nil, nil
	}

	forbidden := witset.NewBits(fam.N)
	best := int64(-1)
	var bestGamma []int32
	for _, surviving := range withT {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		forbidden.Clear()
		for _, e := range surviving {
			forbidden.Set(e)
		}
		sub := make([][]int32, 0, len(withoutT))
		feasible := true
		for _, row := range withoutT {
			kept := make([]int32, 0, len(row))
			for _, e := range row {
				if !forbidden.Has(e) {
					kept = append(kept, e)
				}
			}
			if len(kept) == 0 {
				feasible = false
				break
			}
			sub = append(sub, kept)
		}
		if !feasible {
			continue
		}
		if len(sub) == 0 {
			return 0, nil, nil
		}
		budget := int64(-1)
		if best >= 0 {
			budget = best - 1
			if budget < 0 {
				break
			}
		}
		subFam := witset.NewFamily(sub, fam.N, false)
		subFam.W = fam.W // same universe, so the costs carry over
		hs := newWeightedHittingSet(subFam)
		hs.poll = poll
		cost, chosen := hs.solve(budget)
		if err := poll.Err(); err != nil {
			return 0, nil, err
		}
		if chosen == nil {
			continue // exceeded budget
		}
		if best < 0 || cost < best {
			best = cost
			bestGamma = chosen
		}
	}
	return best, bestGamma, nil
}

// RankedTuple is one entry of a top-k responsibility ranking: a tuple, the
// minimum contingency cost k making it counterfactual (cardinality on
// unweighted instances, total cost on weighted ones; the responsibility
// score is 1/(1+k)), and one optimal contingency set (nil when k == 0).
type RankedTuple struct {
	Tuple db.Tuple
	K     int64
	Gamma []db.Tuple
}

// TopKResponsibilityOnInstance ranks the k most responsible tuples of the
// instance: every tuple of the witness universe gets its responsibility
// computed off the one shared IR, and the k smallest-k tuples are returned
// in rank order (k ascending — higher responsibility first — with ties
// broken by the rendered tuple string, so the order is deterministic and
// matches the canonical wire encoding). k <= 0 or k larger than the
// universe returns the full ranking. Tuples that are not counterfactual
// under any contingency are excluded; exogenous tuples never enter the
// witness universe in the first place. An unbreakable instance returns
// ErrUnbreakable (no tuple can ever be counterfactual).
//
// The ranking amortizes the shared work instead of running NumTuples
// independent responsibility solves: each component's plain minimum hitting
// set is solved once and reused as the "other components" contribution of
// every probe — per tuple, only the in-component surviving-witness loop
// runs fresh. Results are identical to per-tuple
// (Weighted)ResponsibilityOnInstance calls by construction: both assemble
// k as in-component k plus the same per-component minima.
func TopKResponsibilityOnInstance(ctx context.Context, inst *witset.Instance, d *db.Database, k int) ([]RankedTuple, error) {
	var out []RankedTuple
	_, err := TopKResponsibilityFunc(ctx, inst, d, k, func(_ int, rt RankedTuple) error {
		out = append(out, rt)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TopKResponsibilityFunc is the streaming form of
// TopKResponsibilityOnInstance: emit receives each ranked tuple in rank
// order (rank is 0-based) as soon as the ranking is known, and an emit
// error aborts the emission and is returned unchanged. It returns the
// number of entries emitted. Streamed order and collected order are
// identical by construction — both walk the same sorted ranking.
func TopKResponsibilityFunc(ctx context.Context, inst *witset.Instance, d *db.Database, k int, emit func(rank int, rt RankedTuple) error) (int, error) {
	if inst.Unbreakable() {
		return 0, ErrUnbreakable
	}
	weighted := inst.Weights() != nil
	comps := inst.Components()
	poll := ctxpoll.New(ctx)

	// Shared work: every component's plain minimum, solved once. A probe
	// into component c costs (in-component k) + Σ_{c' ≠ c} minCost[c'].
	minCost := make([]int64, len(comps))
	minIDs := make([][]int32, len(comps))
	totalMin := int64(0)
	for i, c := range comps {
		var (
			cost int64
			ids  []int32
			err  error
		)
		if weighted {
			cost, ids, err = solveFamilyWeighted(ctx, c.Fam, -1, Options{})
		} else {
			var size int
			size, ids, err = solveFamily(ctx, c.Fam, -1, Options{})
			cost = int64(size)
		}
		if err != nil {
			return 0, err
		}
		minCost[i] = cost
		minIDs[i] = c.ToGlobal(ids)
		totalMin += cost
	}

	var entries []RankedTuple
	keys := map[db.Tuple]string{}
	for ci, c := range comps {
		for localT, gid := range c.Global {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			var (
				localK     int64
				localGamma []int32
				err        error
			)
			if weighted {
				localK, localGamma, err = responsibilityInFamilyWeighted(ctx, poll, c.Fam, int32(localT))
			} else {
				var kk int
				kk, localGamma, err = responsibilityInFamily(ctx, poll, c.Fam, int32(localT))
				localK = int64(kk)
			}
			if err != nil {
				return 0, err
			}
			if localK < 0 {
				continue // not counterfactual under any contingency
			}
			kt := localK + totalMin - minCost[ci]
			rt := RankedTuple{Tuple: inst.Tuple(gid), K: kt}
			if kt > 0 {
				gammaIDs := c.ToGlobal(localGamma)
				for oi := range comps {
					if oi != ci {
						gammaIDs = append(gammaIDs, minIDs[oi]...)
					}
				}
				rt.Gamma = inst.TupleSet(gammaIDs)
			}
			keys[rt.Tuple] = d.TupleString(rt.Tuple)
			entries = append(entries, rt)
		}
	}

	slices.SortFunc(entries, func(a, b RankedTuple) int {
		if a.K != b.K {
			if a.K < b.K {
				return -1
			}
			return 1
		}
		return strings.Compare(keys[a.Tuple], keys[b.Tuple])
	})
	if k > 0 && k < len(entries) {
		entries = entries[:k]
	}
	for i, rt := range entries {
		if poll.Cancelled() {
			return i, poll.Err()
		}
		if err := emit(i, rt); err != nil {
			return i, err
		}
	}
	return len(entries), nil
}
