package resilience

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
)

// TestAblationOptionsPreserveAnswers: all ablation configurations compute
// the same ρ — only search effort may differ.
func TestAblationOptionsPreserveAnswers(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("qchain :- R(x,y), R(y,z)"),
		cq.MustParse("qvc :- R(x), S(x,y), R(y)"),
		cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)"),
	}
	configs := []Options{
		{},
		{DisableLowerBound: true},
		{DisableLPBound: true},
		{DisableLowerBound: true, DisableLPBound: true},
		{KeepSupersets: true},
		{DisableLowerBound: true, KeepSupersets: true},
		{DisableLowerBound: true, DisableLPBound: true, KeepSupersets: true},
	}
	rng := rand.New(rand.NewSource(71))
	for _, q := range queries {
		for trial := 0; trial < 5; trial++ {
			d := datagen.RandomWithLoops(rng, q, 5, 6, 0.3)
			want, err := Exact(q, d)
			if err != nil {
				continue
			}
			for _, cfg := range configs {
				got, err := ExactWithOptions(q, d, cfg)
				if err != nil {
					t.Fatalf("%s %+v: %v", q.Name, cfg, err)
				}
				if got.Rho != want.Rho {
					t.Fatalf("%s %+v: ρ=%d, want %d", q.Name, cfg, got.Rho, want.Rho)
				}
				if got.Rho > 0 {
					if err := VerifyContingency(q, d, got.ContingencySet); err != nil {
						t.Fatalf("%s %+v: %v", q.Name, cfg, err)
					}
				}
			}
		}
	}
}

// TestSolveOnHardQueriesFallsBackToExact: NP-complete classifications must
// still produce correct answers via the exact fallback.
func TestSolveOnHardQueriesFallsBackToExact(t *testing.T) {
	queries := []string{
		"qchain :- R(x,y), R(y,z)",
		"qvc :- R(x), S(x,y), R(y)",
		"qABperm :- A(x), R(x,y), R(y,x), B(y)",
		"qtri :- R(x,y), S(y,z), T(z,x)",
	}
	rng := rand.New(rand.NewSource(72))
	for _, s := range queries {
		q := cq.MustParse(s)
		for trial := 0; trial < 5; trial++ {
			d := datagen.Random(rng, q, 4, 6, 0.5)
			got, cl, err := Solve(q, d)
			if err == ErrUnbreakable {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			want, err := Exact(q, d)
			if err != nil {
				continue
			}
			if got.Rho != want.Rho {
				t.Fatalf("%s (%s): Solve=%d Exact=%d", q.Name, cl.Verdict, got.Rho, want.Rho)
			}
		}
	}
}
