package resilience

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/vertexcover"
)

// bruteResilience enumerates endogenous tuple subsets by increasing size.
// Exponential; for cross-checking only.
func bruteResilience(t *testing.T, q *cq.Query, d *db.Database) int {
	t.Helper()
	var endo []db.Tuple
	for _, tup := range d.AllTuples() {
		if !q.IsExogenous(tup.Rel) {
			endo = append(endo, tup)
		}
	}
	if !eval.Satisfied(q, d) {
		return 0
	}
	n := len(endo)
	for size := 1; size <= n; size++ {
		idx := make([]int, size)
		var rec func(k, start int) bool
		rec = func(k, start int) bool {
			if k == size {
				mark := d.RestoreMark()
				for _, i := range idx {
					d.Delete(endo[i])
				}
				ok := !eval.Satisfied(q, d)
				d.RestoreTo(mark)
				return ok
			}
			for i := start; i < n; i++ {
				idx[k] = i
				if rec(k+1, i+1) {
					return true
				}
			}
			return false
		}
		if rec(0, 0) {
			return size
		}
	}
	t.Fatal("query is unbreakable in brute force")
	return -1
}

func TestExactChainPaperExample(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	d.AddNames("R", "3", "3")
	res, err := Exact(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 2 {
		t.Errorf("ρ = %d, want 2", res.Rho)
	}
	if err := VerifyContingency(q, d, res.ContingencySet); err != nil {
		t.Error(err)
	}
}

func TestExactExample11SJDomination(t *testing.T) {
	// Example 11: domination fails with self-joins; {R(1,2)} is the unique
	// minimum contingency set of size 1.
	q := cq.MustParse("qsj1rats :- A(x), R(x,y), R(y,z), R(z,x)")
	d := db.New()
	d.AddNames("A", "1")
	d.AddNames("A", "5")
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	d.AddNames("R", "3", "1")
	d.AddNames("R", "5", "1")
	d.AddNames("R", "2", "5")
	res, err := Exact(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Witnesses != 3 {
		t.Errorf("witnesses = %d, want 3 (paper lists (1,2,3),(1,2,5),(5,1,2))", res.Witnesses)
	}
	if res.Rho != 1 {
		t.Fatalf("ρ = %d, want 1", res.Rho)
	}
	want := db.NewTuple("R", d.Const("1"), d.Const("2"))
	if len(res.ContingencySet) != 1 || res.ContingencySet[0] != want {
		t.Errorf("Γ = %v, want {R(1,2)}", res.ContingencySet)
	}
	// With R exogenous, the minimum becomes {A(1), A(5)}: ρ = 2.
	qx := cq.MustParse("qsj1ratsx :- A(x), R(x,y)^x, R(y,z)^x, R(z,x)^x")
	res2, err := Exact(qx, d)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rho != 2 {
		t.Errorf("ρ with exogenous R = %d, want 2", res2.Rho)
	}
}

func TestExactFalseQueryIsZero(t *testing.T) {
	q := cq.MustParse("q :- R(x,y), S(y)")
	d := db.New()
	d.AddNames("R", "1", "2")
	res, err := Exact(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 0 || res.ContingencySet != nil {
		t.Errorf("ρ = %d with Γ=%v, want 0 and nil", res.Rho, res.ContingencySet)
	}
}

func TestExactUnbreakable(t *testing.T) {
	q := cq.MustParse("q :- R(x,y)^x")
	d := db.New()
	d.AddNames("R", "1", "2")
	if _, err := Exact(q, d); err != ErrUnbreakable {
		t.Errorf("err = %v, want ErrUnbreakable", err)
	}
}

func TestExactQvcEqualsVertexCover(t *testing.T) {
	// Proposition 9's reduction read backwards: for graph databases,
	// ρ(qvc, D_G) = VC(G).
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		g := vertexcover.RandomGraph(rng, 3+rng.Intn(6), 0.5)
		if g.NumEdges() == 0 {
			continue
		}
		d := db.New()
		for v := 0; v < g.N; v++ {
			d.AddNames("R", name(v))
		}
		for _, e := range g.Edges() {
			d.AddNames("S", name(e[0]), name(e[1]))
		}
		res, err := Exact(q, d)
		if err != nil {
			t.Fatal(err)
		}
		vc, _ := g.MinVertexCover()
		if res.Rho != vc {
			t.Fatalf("trial %d: ρ = %d, VC = %d", trial, res.Rho, vc)
		}
	}
}

func TestExactAgainstBruteForceRandom(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("qchain :- R(x,y), R(y,z)"),
		cq.MustParse("qconf :- A(x), R(x,y), R(z,y), C(z)"),
		cq.MustParse("qperm :- R(x,y), R(y,x)"),
		cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)"),
		cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)"),
		cq.MustParse("qrats :- R(x,y)^x, A(x), T(z,x)^x, S(y,z)"),
		cq.MustParse("z3 :- R(x,x), R(x,y), A(y)"),
	}
	rng := rand.New(rand.NewSource(23))
	for _, q := range queries {
		for trial := 0; trial < 6; trial++ {
			d := randomDB(rng, q, 4, 7)
			res, err := Exact(q, d)
			if err != nil {
				continue
			}
			want := bruteResilience(t, q, d)
			if res.Rho != want {
				t.Fatalf("%s trial %d: exact = %d, brute = %d\nDB:\n%s", q.Name, trial, res.Rho, want, d)
			}
			if res.Rho > 0 {
				if err := VerifyContingency(q, d, res.ContingencySet); err != nil {
					t.Fatalf("%s trial %d: %v", q.Name, trial, err)
				}
			}
		}
	}
}

func TestDecide(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	d.AddNames("R", "3", "3")
	// ρ = 2.
	for k, want := range map[int]bool{0: false, 1: false, 2: true, 3: true} {
		got, err := Decide(q, d, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Decide(k=%d) = %v, want %v", k, got, want)
		}
	}
	// Unsatisfied query: (D,k) requires D |= q.
	empty := db.New()
	if got, _ := Decide(q, empty, 5); got {
		t.Error("Decide on unsatisfied database should be false")
	}
}

func TestExactBudgetCutoff(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	d := db.New()
	// Star graph with center c: VC = 1... use a matching of 4 edges: VC = 4.
	for i := 0; i < 4; i++ {
		a, b := name(2*i), name(2*i+1)
		d.AddNames("R", a)
		d.AddNames("R", b)
		d.AddNames("S", a, b)
	}
	res, err := ExactWithBudget(q, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 3 {
		t.Errorf("budgeted ρ = %d, want 3 (= budget+1 signal)", res.Rho)
	}
	if res.ContingencySet != nil {
		t.Error("budget-exceeded result should have nil contingency set")
	}
}

func TestVerifyContingencyRejectsBad(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	t1 := d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	// Deleting R(1,2) falsifies the only witness (1,2,3): valid set.
	if err := VerifyContingency(q, d, []db.Tuple{t1}); err != nil {
		t.Errorf("valid contingency set rejected: %v", err)
	}
	if !d.Has(t1) {
		t.Error("VerifyContingency must restore the database")
	}
	// The empty set does not falsify a satisfied query.
	if err := VerifyContingency(q, d, nil); err == nil {
		t.Error("empty set should not falsify satisfied query")
	}
	// Exogenous tuple rejection.
	qx := cq.MustParse("q :- R(x,y)^x, S(y,z)")
	dx := db.New()
	tx := dx.AddNames("R", "1", "2")
	dx.AddNames("S", "2", "3")
	if err := VerifyContingency(qx, dx, []db.Tuple{tx}); err == nil {
		t.Error("exogenous tuple must be rejected")
	}
}

// randomDB builds a random database for the relations of q over a domain of
// the given size.
func randomDB(rng *rand.Rand, q *cq.Query, domain, tuplesPerRel int) *db.Database {
	d := db.New()
	for _, rel := range q.Relations() {
		ar := q.Arity(rel)
		for i := 0; i < tuplesPerRel; i++ {
			args := make([]string, ar)
			for j := range args {
				args[j] = name(rng.Intn(domain))
			}
			d.AddNames(rel, args...)
		}
	}
	return d
}

func name(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "n0"
	}
	s := ""
	for i > 0 {
		s = string(digits[i%10]) + s
		i /= 10
	}
	return "n" + s
}
