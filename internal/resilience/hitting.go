package resilience

import (
	"sort"

	"repro/internal/ctxpoll"
)

// hittingSet solves minimum hitting set exactly by branch and bound:
// given a family of non-empty sets over int elements, find a minimum set of
// elements intersecting every member.
//
// Resilience is exactly this problem with sets = per-witness endogenous
// tuple sets (Definition 1), so this solver is the trusted oracle for every
// query, easy or hard.
type hittingSet struct {
	sets [][]int32 // deduplicated, minimal family
	occ  [][]int32 // element -> indexes of sets containing it
	n    int       // number of elements

	hitCount []int32 // how many chosen elements hit each set
	chosen   []bool
	numUnhit int

	best       int
	bestChosen []int32
	limit      int // stop exploring above this size (inclusive); -1 = none

	// Ablation switches (see Options): disable the packing lower bound or
	// the superset elimination to measure their contribution.
	noLowerBound bool

	// poll, when non-nil, lets callers cancel long searches; its Err
	// records why the search stopped early (the best found so far is then
	// meaningless).
	poll *ctxpoll.Poller
}

// newHittingSet normalizes the family: deduplicates sets and removes
// supersets (hitting a subset always hits its supersets) unless
// keepSupersets asks for the raw family (ablation).
func newHittingSet(raw [][]int32, numElems int) *hittingSet {
	return newHittingSetOpt(raw, numElems, false)
}

func newHittingSetOpt(raw [][]int32, numElems int, keepSupersets bool) *hittingSet {
	// Sort each set and sort family by size for superset elimination.
	sets := make([][]int32, len(raw))
	for i, s := range raw {
		cp := append([]int32(nil), s...)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		sets[i] = cp
	}
	sort.Slice(sets, func(a, b int) bool { return len(sets[a]) < len(sets[b]) })
	var kept [][]int32
	for _, s := range sets {
		redundant := false
		if !keepSupersets {
			for _, k := range kept {
				if isSubset(k, s) {
					redundant = true
					break
				}
			}
		}
		if !redundant {
			kept = append(kept, s)
		}
	}
	h := &hittingSet{sets: kept, n: numElems, limit: -1}
	h.occ = make([][]int32, numElems)
	for i, s := range kept {
		for _, e := range s {
			h.occ[e] = append(h.occ[e], int32(i))
		}
	}
	h.hitCount = make([]int32, len(kept))
	h.chosen = make([]bool, numElems)
	h.numUnhit = len(kept)
	return h
}

// isSubset reports a ⊆ b for sorted slices.
func isSubset(a, b []int32) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}

// solve returns the minimum hitting set size and one optimal solution.
// If limit >= 0 and every solution exceeds limit, it returns (limit+1, nil).
func (h *hittingSet) solve(limit int) (int, []int32) {
	h.limit = limit
	// Greedy upper bound initializes best.
	greedy := h.greedy()
	h.best = len(greedy)
	h.bestChosen = greedy
	if limit >= 0 && h.best > limit+1 {
		h.best = limit + 1
		h.bestChosen = nil
	}
	var cur []int32
	h.branch(cur)
	return h.best, h.bestChosen
}

func (h *hittingSet) greedy() []int32 {
	hit := make([]bool, len(h.sets))
	remaining := len(h.sets)
	var out []int32
	count := make([]int, h.n)
	for remaining > 0 {
		for i := range count {
			count[i] = 0
		}
		for si, s := range h.sets {
			if hit[si] {
				continue
			}
			for _, e := range s {
				count[e]++
			}
		}
		bestE, bestC := -1, 0
		for e, c := range count {
			if c > bestC {
				bestE, bestC = e, c
			}
		}
		if bestE < 0 {
			break
		}
		out = append(out, int32(bestE))
		for _, si := range h.occ[bestE] {
			if !hit[si] {
				hit[si] = true
				remaining--
			}
		}
	}
	return out
}

func (h *hittingSet) branch(cur []int32) {
	if h.poll.Cancelled() {
		return
	}
	if h.numUnhit == 0 {
		if len(cur) < h.best {
			h.best = len(cur)
			h.bestChosen = append([]int32(nil), cur...)
		}
		return
	}
	lb := 1
	if !h.noLowerBound {
		lb = h.lowerBound()
	}
	if len(cur)+lb >= h.best {
		return
	}
	// Choose the unhit set with the fewest elements to branch on.
	pick := -1
	pickLen := 1 << 30
	for si, s := range h.sets {
		if h.hitCount[si] > 0 {
			continue
		}
		if len(s) < pickLen {
			pick, pickLen = si, len(s)
			if pickLen == 1 {
				break
			}
		}
	}
	for _, e := range h.sets[pick] {
		if h.chosen[e] {
			continue
		}
		h.choose(e)
		h.branch(append(cur, e))
		h.unchoose(e)
	}
}

func (h *hittingSet) choose(e int32) {
	h.chosen[e] = true
	for _, si := range h.occ[e] {
		h.hitCount[si]++
		if h.hitCount[si] == 1 {
			h.numUnhit--
		}
	}
}

func (h *hittingSet) unchoose(e int32) {
	h.chosen[e] = false
	for _, si := range h.occ[e] {
		h.hitCount[si]--
		if h.hitCount[si] == 0 {
			h.numUnhit++
		}
	}
}

// lowerBound greedily packs pairwise-disjoint unhit sets; each needs a
// distinct element, giving an admissible bound.
func (h *hittingSet) lowerBound() int {
	used := make(map[int32]bool)
	lb := 0
	for si, s := range h.sets {
		if h.hitCount[si] > 0 {
			continue
		}
		disjoint := true
		for _, e := range s {
			if used[e] {
				disjoint = false
				break
			}
		}
		if disjoint {
			for _, e := range s {
				used[e] = true
			}
			lb++
		}
	}
	return lb
}
