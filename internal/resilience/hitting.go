package resilience

import (
	"context"

	"repro/internal/ctxpoll"
	"repro/internal/witset"
)

// solveFamily runs the branch-and-bound once over one family. If budget >= 0
// and the minimum exceeds it, the returned size is budget+1 with a nil set
// (sufficient for callers that only need the "over budget" verdict).
func solveFamily(ctx context.Context, fam *witset.Family, budget int, noLowerBound bool) (int, []int32, error) {
	hs := newHittingSet(fam)
	hs.noLowerBound = noLowerBound
	hs.poll = ctxpoll.New(ctx)
	size, chosen := hs.solve(budget)
	if err := hs.poll.Err(); err != nil {
		return 0, nil, err
	}
	return size, chosen, nil
}

// SolveFamily computes a minimum hitting set of fam exactly, returning its
// size and one optimal set of element ids. It is the per-component building
// block of the kernel+decompose pipeline, exported for the engine's
// component-parallel portfolio (which races it against SAT binary search on
// each component). If budget >= 0 and the minimum exceeds it, it returns
// (budget+1, nil, nil).
func SolveFamily(ctx context.Context, fam *witset.Family, budget int) (int, []int32, error) {
	return solveFamily(ctx, fam, budget, false)
}

// hittingSet solves minimum hitting set exactly by branch and bound over a
// witset.Family: find a minimum set of elements intersecting every row.
//
// Resilience is exactly this problem with rows = per-witness endogenous
// tuple sets (Definition 1), so this solver is the trusted oracle for every
// query, easy or hard. The family's bitset rows make the hot operations
// word-parallel: the disjoint-packing lower bound tests and merges whole
// rows with AND/OR over packed words instead of a per-branch-node
// map[int32]bool, and its scratch bitset is reset in one word-store per 64
// universe elements rather than reallocated.
type hittingSet struct {
	fam *witset.Family

	hitCount []int32 // how many chosen elements hit each row
	chosen   witset.Bits
	numUnhit int

	best       int
	bestChosen []int32
	limit      int // stop exploring above this size (inclusive); -1 = none

	// pack is the lower bound's scratch: the union of the rows packed so
	// far. One allocation per solve, cleared per call.
	pack witset.Bits

	// Ablation switch (see Options): disable the packing lower bound to
	// measure its contribution.
	noLowerBound bool

	// poll, when non-nil, lets callers cancel long searches; its Err
	// records why the search stopped early (the best found so far is then
	// meaningless).
	poll *ctxpoll.Poller
}

func newHittingSet(fam *witset.Family) *hittingSet {
	return &hittingSet{
		fam:      fam,
		hitCount: make([]int32, len(fam.Rows)),
		chosen:   witset.NewBits(fam.N),
		numUnhit: len(fam.Rows),
		pack:     witset.NewBits(fam.N),
		limit:    -1,
	}
}

// solve returns the minimum hitting set size and one optimal solution.
// If limit >= 0 and every solution exceeds limit, it returns (limit+1, nil).
func (h *hittingSet) solve(limit int) (int, []int32) {
	h.limit = limit
	// Greedy upper bound initializes best.
	greedy := h.greedy()
	h.best = len(greedy)
	h.bestChosen = greedy
	if limit >= 0 && h.best > limit+1 {
		h.best = limit + 1
		h.bestChosen = nil
	}
	var cur []int32
	h.branch(cur)
	return h.best, h.bestChosen
}

func (h *hittingSet) greedy() []int32 {
	hit := make([]bool, len(h.fam.Rows))
	remaining := len(h.fam.Rows)
	var out []int32
	count := make([]int, h.fam.N)
	for remaining > 0 {
		for i := range count {
			count[i] = 0
		}
		for si, s := range h.fam.Rows {
			if hit[si] {
				continue
			}
			for _, e := range s {
				count[e]++
			}
		}
		bestE, bestC := -1, 0
		for e, c := range count {
			if c > bestC {
				bestE, bestC = e, c
			}
		}
		if bestE < 0 {
			break
		}
		out = append(out, int32(bestE))
		for _, si := range h.fam.Occ[bestE] {
			if !hit[si] {
				hit[si] = true
				remaining--
			}
		}
	}
	return out
}

func (h *hittingSet) branch(cur []int32) {
	if h.poll.Cancelled() {
		return
	}
	if h.numUnhit == 0 {
		if len(cur) < h.best {
			h.best = len(cur)
			h.bestChosen = append([]int32(nil), cur...)
		}
		return
	}
	lb := 1
	if !h.noLowerBound {
		lb = h.lowerBound()
	}
	if len(cur)+lb >= h.best {
		return
	}
	// Branch on the smallest unhit row; rows are sorted by size, so the
	// first unhit one is a smallest.
	pick := -1
	for si := range h.fam.Rows {
		if h.hitCount[si] == 0 {
			pick = si
			break
		}
	}
	for _, e := range h.fam.Rows[pick] {
		if h.chosen.Has(e) {
			continue
		}
		h.choose(e)
		h.branch(append(cur, e))
		h.unchoose(e)
	}
}

func (h *hittingSet) choose(e int32) {
	h.chosen.Set(e)
	for _, si := range h.fam.Occ[e] {
		h.hitCount[si]++
		if h.hitCount[si] == 1 {
			h.numUnhit--
		}
	}
}

func (h *hittingSet) unchoose(e int32) {
	h.chosen.Unset(e)
	for _, si := range h.fam.Occ[e] {
		h.hitCount[si]--
		if h.hitCount[si] == 0 {
			h.numUnhit++
		}
	}
}

// lowerBound greedily packs pairwise-disjoint unhit rows; each needs a
// distinct element, giving an admissible bound. Disjointness against the
// pack so far is one AND sweep over the row's words, and merging is one OR
// sweep — the word-parallel replacement for the old per-call element map.
func (h *hittingSet) lowerBound() int {
	h.pack.Clear()
	lb := 0
	for si, bits := range h.fam.Bits {
		if h.hitCount[si] > 0 {
			continue
		}
		if witset.Disjoint(bits, h.pack) {
			h.pack.Or(bits)
			lb++
		}
	}
	return lb
}
