package resilience

import (
	"context"
	"math"

	"repro/internal/ctxpoll"
	"repro/internal/witset"
)

// solveFamily runs the branch-and-bound once over one family. If budget >= 0
// and the minimum exceeds it, the returned size is budget+1 with a nil set
// (sufficient for callers that only need the "over budget" verdict). Only the
// bound ablation switches of opts apply here; decomposition switches are the
// caller's concern.
func solveFamily(ctx context.Context, fam *witset.Family, budget int, opts Options) (int, []int32, error) {
	hs := newHittingSet(fam)
	hs.noLowerBound = opts.DisableLowerBound
	hs.noLPBound = opts.DisableLPBound
	hs.poll = ctxpoll.New(ctx)
	size, chosen := hs.solve(budget)
	if err := hs.poll.Err(); err != nil {
		return 0, nil, err
	}
	return size, chosen, nil
}

// SolveFamily computes a minimum hitting set of fam exactly, returning its
// size and one optimal set of element ids. It is the per-component building
// block of the kernel+decompose pipeline, exported for the engine's
// component-parallel portfolio (which races it against SAT binary search on
// each component). If budget >= 0 and the minimum exceeds it, it returns
// (budget+1, nil, nil).
func SolveFamily(ctx context.Context, fam *witset.Family, budget int) (int, []int32, error) {
	return solveFamily(ctx, fam, budget, Options{})
}

// hittingSet solves minimum hitting set exactly by branch and bound over a
// witset.Family: find a minimum set of elements intersecting every row.
//
// Resilience is exactly this problem with rows = per-witness endogenous
// tuple sets (Definition 1), so this solver is the trusted oracle for every
// query, easy or hard. The family's bitset rows make the hot operations
// word-parallel: the disjoint-packing lower bound tests and merges whole
// rows with AND/OR over packed words instead of a per-branch-node
// map[int32]bool, and its scratch bitset is reset in one word-store per 64
// universe elements rather than reallocated.
type hittingSet struct {
	fam *witset.Family

	hitCount []int32 // how many chosen elements hit each row
	chosen   witset.Bits
	numUnhit int

	best       int
	bestChosen []int32
	limit      int // stop exploring above this size (inclusive); -1 = none

	// pack is the lower bound's scratch: the union of the rows packed so
	// far. One allocation per solve, cleared per call.
	pack witset.Bits

	// lpCap and lpDeg are the LP bound's scratch: the remaining dual
	// capacity of each element and each element's occurrence count among
	// the unhit rows. One allocation per solve, reset per call.
	lpCap []float64
	lpDeg []int32

	// Ablation switches (see Options): disable the packing lower bound
	// and/or the LP dual-greedy bound to measure their contributions.
	noLowerBound bool
	noLPBound    bool

	// poll, when non-nil, lets callers cancel long searches; its Err
	// records why the search stopped early (the best found so far is then
	// meaningless).
	poll *ctxpoll.Poller
}

func newHittingSet(fam *witset.Family) *hittingSet {
	return &hittingSet{
		fam:      fam,
		hitCount: make([]int32, len(fam.Rows)),
		chosen:   witset.NewBits(fam.N),
		numUnhit: len(fam.Rows),
		pack:     witset.NewBits(fam.N),
		lpCap:    make([]float64, fam.N),
		lpDeg:    make([]int32, fam.N),
		limit:    -1,
	}
}

// solve returns the minimum hitting set size and one optimal solution.
// If limit >= 0 and every solution exceeds limit, it returns (limit+1, nil).
func (h *hittingSet) solve(limit int) (int, []int32) {
	h.limit = limit
	// Greedy upper bound initializes best.
	greedy := h.greedy()
	h.best = len(greedy)
	h.bestChosen = greedy
	if limit >= 0 && h.best > limit+1 {
		h.best = limit + 1
		h.bestChosen = nil
	}
	var cur []int32
	h.branch(cur, 0)
	return h.best, h.bestChosen
}

// greedy computes the max-coverage upper bound that seeds the incumbent.
// The shared implementation maintains element-occurrence counts
// decrementally — built once, then selecting an element pays only for the
// rows it newly hits — instead of recounting every unhit row per iteration;
// values and tie-breaking are identical to a full recount, so the bound
// (and therefore the search it seeds) is unchanged.
func (h *hittingSet) greedy() []int32 {
	return witset.GreedyHittingSet(h.fam)
}

// branch explores extensions of cur. from is the lowest row index that may
// still be unhit: every row before it was hit when this node was entered,
// and choose() only ever adds hits down the tree, so those rows stay hit in
// the whole subtree and the smallest-unhit-row scan can skip them. The pick
// is exactly the one a from-zero scan would make; only the rescan cost
// changes (amortized O(1) per node instead of O(rows)).
func (h *hittingSet) branch(cur []int32, from int) {
	if h.poll.Cancelled() {
		return
	}
	if h.numUnhit == 0 {
		if len(cur) < h.best {
			h.best = len(cur)
			h.bestChosen = append([]int32(nil), cur...)
		}
		return
	}
	lb := 1
	if !h.noLowerBound {
		lb = h.lowerBound()
	}
	if len(cur)+lb >= h.best {
		return
	}
	// The packing bound failed to prune; try the (costlier) LP-relaxation
	// bound before committing to a branch. Taking the max keeps the bound
	// hierarchy monotone: the node survives only if both bounds allow it.
	if !h.noLPBound {
		if lp := h.lpBound(); len(cur)+lp >= h.best {
			return
		}
	}
	// Branch on the smallest unhit row; rows are sorted by size, so the
	// first unhit one is a smallest — and rows before from are known hit.
	pick := -1
	for si := from; si < len(h.fam.Rows); si++ {
		if h.hitCount[si] == 0 {
			pick = si
			break
		}
	}
	for _, e := range h.fam.Rows[pick] {
		if h.chosen.Has(e) {
			continue
		}
		h.choose(e)
		// Choosing e hits row pick, so the child's first candidate unhit
		// row is pick+1.
		h.branch(append(cur, e), pick+1)
		h.unchoose(e)
	}
}

func (h *hittingSet) choose(e int32) {
	h.chosen.Set(e)
	for _, si := range h.fam.Occ[e] {
		h.hitCount[si]++
		if h.hitCount[si] == 1 {
			h.numUnhit--
		}
	}
}

func (h *hittingSet) unchoose(e int32) {
	h.chosen.Unset(e)
	for _, si := range h.fam.Occ[e] {
		h.hitCount[si]--
		if h.hitCount[si] == 0 {
			h.numUnhit++
		}
	}
}

// lowerBound greedily packs pairwise-disjoint unhit rows; each needs a
// distinct element, giving an admissible bound. Disjointness against the
// pack so far is one AND sweep over the row's words, and merging is one OR
// sweep — the word-parallel replacement for the old per-call element map.
func (h *hittingSet) lowerBound() int {
	h.pack.Clear()
	lb := 0
	for si, bits := range h.fam.Bits {
		if h.hitCount[si] > 0 {
			continue
		}
		if witset.Disjoint(bits, h.pack) {
			h.pack.Or(bits)
			lb++
		}
	}
	return lb
}

// lpBound is a dual feasible bound on the LP relaxation of hitting set over
// the unhit rows — a fractional packing: assign each unhit row a dual value
// y_row with Σ_{row ∋ e} y_row ≤ 1 for every element e; any such assignment
// has Σ y_row ≤ LP optimum ≤ integral minimum. Two phases build the duals:
//
//  1. Uniform split: y_row = min_{e ∈ row} 1/deg(e), where deg counts the
//     element's occurrences among unhit rows. Feasible because each row
//     through e contributes at most 1/deg(e), and there are deg(e) of them.
//     This is where the bound gets genuinely fractional strength — on an
//     odd cycle of 2-rows every element has degree 2, the duals are all
//     1/2, and their sum rounds up past anything integral duals (and hence
//     the disjoint-packing bound, whose duals are 0/1) can certify.
//  2. Greedy saturation: sweep the unhit rows (smallest first — rows are
//     size-sorted) raising each y_row by the minimum remaining capacity of
//     its elements, recovering the packing-like strength phase 1 leaves on
//     the table when degrees are unbalanced.
//
// The epsilon absorbs accumulated float error in the conservative direction
// before rounding up, keeping the bound admissible.
func (h *hittingSet) lpBound() int {
	for i := range h.lpCap {
		h.lpCap[i] = 1
		h.lpDeg[i] = 0
	}
	for si, row := range h.fam.Rows {
		if h.hitCount[si] > 0 {
			continue
		}
		for _, e := range row {
			h.lpDeg[e]++
		}
	}
	total := 0.0
	for si, row := range h.fam.Rows {
		if h.hitCount[si] > 0 {
			continue
		}
		y := 1.0
		for _, e := range row {
			if v := 1 / float64(h.lpDeg[e]); v < y {
				y = v
			}
			if c := h.lpCap[e]; c < y {
				y = c
			}
		}
		if y <= 0 {
			continue
		}
		for _, e := range row {
			h.lpCap[e] -= y
		}
		total += y
	}
	for si, row := range h.fam.Rows {
		if h.hitCount[si] > 0 {
			continue
		}
		y := 1.0
		for _, e := range row {
			if c := h.lpCap[e]; c < y {
				y = c
			}
		}
		if y <= 0 {
			continue
		}
		for _, e := range row {
			h.lpCap[e] -= y
		}
		total += y
	}
	return int(math.Ceil(total - 1e-9))
}
