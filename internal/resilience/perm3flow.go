package resilience

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/flow"
)

// SolvePerm3Flow computes ρ for the "permutation plus R" PTIME queries
//
//	qA3perm-R   :- A(x),   R(x,y), R(y,z), R(z,y)   (Proposition 13)
//	qSwx3perm-R :- S(w,x), R(x,y), R(y,z), R(z,y)   (Proposition 44)
//
// via the paper's modified flow construction. Nodes are: the left-relation
// tuples (capacity 1), the 2-way pairs {b,c} (both R(b,c) and R(c,b)
// present, or a loop R(b,b); capacity 1 — deleting one orientation breaks
// every witness through the pair), and, connecting them, the 1-way tuples
// R(a,b). In the A variant 1-way tuples get capacity ∞ (A(a) dominates
// them: any witness through R(a,b) contains A(a)); in the S variant they
// are deletable at capacity 1 because one R(a,b) may be cheaper than many
// S(e,a).
//
// The minimum cut equals ρ; a contingency set is extracted with the
// orientation rule of Proposition 13 and verified, falling back to a
// size-only result if verification fails (which the test suite treats as a
// bug signal).
func SolvePerm3Flow(q *cq.Query, d *db.Database) (*Result, error) {
	rel := sjRelOf(q)
	// Identify the left relation: the endogenous non-R atom.
	left := ""
	for _, rn := range q.Relations() {
		if rn != rel && !q.IsExogenous(rn) {
			left = rn
		}
	}
	if left == "" {
		return nil, fmt.Errorf("resilience: query %s lacks the bound atom of qA3perm-R", q.Name)
	}
	leftArity := q.Arity(left)
	r := d.Rel(rel)
	l := d.Rel(left)
	if r == nil || l == nil || !eval.Satisfied(q, d) {
		return &Result{Rho: 0, Method: "perm3-flow"}, nil
	}

	oneWayCap := int64(1)
	if leftArity == 1 {
		oneWayCap = flow.Inf
	}

	// Collect pairs and classify R-tuples.
	type pair [2]db.Value // normalized: p[0] <= p[1]
	pairs := map[pair]bool{}
	oneWay := map[db.Tuple]bool{}
	for _, t := range r.Tuples() {
		a, b := t.Args[0], t.Args[1]
		if a == b {
			pairs[pair{a, a}] = true
			continue
		}
		if r.Has(db.NewTuple(rel, b, a)) {
			if a < b {
				pairs[pair{a, b}] = true
			}
		} else {
			oneWay[t] = true
		}
	}

	net := flow.NewNetwork()
	src := net.AddNode()
	sink := net.AddNode()

	leftIn := map[db.Tuple]int{}
	leftOut := map[db.Tuple]int{}
	leftEdge := map[db.Tuple]int{}
	var leftTuples []db.Tuple
	for _, t := range l.Tuples() {
		in, out := net.AddNode(), net.AddNode()
		leftIn[t], leftOut[t] = in, out
		leftEdge[t] = net.AddEdge(in, out, 1)
		net.AddEdge(src, in, flow.Inf)
		leftTuples = append(leftTuples, t)
	}

	pairIn := map[pair]int{}
	pairOut := map[pair]int{}
	pairEdge := map[pair]int{}
	var pairList []pair
	byHead := map[db.Value][]pair{}
	for p := range pairs {
		in, out := net.AddNode(), net.AddNode()
		pairIn[p], pairOut[p] = in, out
		pairEdge[p] = net.AddEdge(in, out, 1)
		net.AddEdge(out, sink, flow.Inf)
		pairList = append(pairList, p)
		byHead[p[0]] = append(byHead[p[0]], p)
		if p[1] != p[0] {
			byHead[p[1]] = append(byHead[p[1]], p)
		}
	}

	oneIn := map[db.Tuple]int{}
	oneOut := map[db.Tuple]int{}
	oneEdge := map[db.Tuple]int{}
	var oneList []db.Tuple
	for t := range oneWay {
		// Only useful if its head b touches some pair.
		if len(byHead[t.Args[1]]) == 0 {
			continue
		}
		in, out := net.AddNode(), net.AddNode()
		oneIn[t], oneOut[t] = in, out
		oneEdge[t] = net.AddEdge(in, out, oneWayCap)
		for _, p := range byHead[t.Args[1]] {
			net.AddEdge(out, pairIn[p], flow.Inf)
		}
		oneList = append(oneList, t)
	}

	// Connect left tuples: the x value is the last argument of the left
	// atom in both qA3perm-R (A(x)) and qSwx3perm-R (S(w,x)).
	headOf := func(t db.Tuple) db.Value { return t.Args[t.Arity-1] }
	for _, t := range leftTuples {
		a := headOf(t)
		for _, p := range byHead[a] {
			net.AddEdge(leftOut[t], pairIn[p], flow.Inf)
		}
		for _, ot := range oneList {
			if ot.Args[0] == a {
				net.AddEdge(leftOut[t], oneIn[ot], flow.Inf)
			}
		}
	}

	cut := net.MaxFlow(src, sink)
	if cut >= flow.Inf {
		return nil, ErrUnbreakable
	}
	res := &Result{Rho: int(cut), Method: "perm3-flow"}

	// Contingency extraction (Proposition 13's rule).
	reach := net.MinCutSource(src)
	inCut := map[int]bool{}
	for _, id := range net.CutEdges(reach) {
		inCut[id] = true
	}
	var gamma []db.Tuple
	cutLeft := map[db.Tuple]bool{}
	for _, t := range leftTuples {
		if inCut[leftEdge[t]] {
			gamma = append(gamma, t)
			cutLeft[t] = true
		}
	}
	for _, t := range oneList {
		if inCut[oneEdge[t]] {
			gamma = append(gamma, t)
		}
	}
	// surviving(a) reports whether some left tuple with head a remains.
	surviving := func(a db.Value) bool {
		for _, t := range leftTuples {
			if headOf(t) == a && !cutLeft[t] {
				return true
			}
		}
		return false
	}
	for _, p := range pairList {
		if !inCut[pairEdge[p]] {
			continue
		}
		a, b := p[0], p[1]
		if a == b {
			gamma = append(gamma, db.NewTuple(rel, a, a))
			continue
		}
		switch {
		case surviving(a) && !surviving(b):
			gamma = append(gamma, db.NewTuple(rel, a, b))
		case surviving(b) && !surviving(a):
			gamma = append(gamma, db.NewTuple(rel, b, a))
		default:
			gamma = append(gamma, db.NewTuple(rel, a, b))
		}
	}
	db.SortTuples(gamma)
	if len(gamma) == int(cut) && VerifyContingency(q, d, gamma) == nil {
		res.ContingencySet = gamma
	} else {
		res.Method = "perm3-flow (size-only)"
	}
	return res, nil
}

// SolveTS3conf computes ρ for qTS3conf (Proposition 41):
//
//	qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x
//
// Tuples R(a,b) with both T(a,b) and S(a,b) present form a single-tuple
// witness (x=z=a, y=w=b) and are forced into every contingency set; after
// deleting them the standard linear flow construction is exact.
func SolveTS3conf(q *cq.Query, d *db.Database) (*Result, error) {
	rel := sjRelOf(q)
	// Identify the two exogenous binary companions from the query: the one
	// sharing variables with the first R-atom (T) and with the last (S).
	var exoRels []string
	for _, rn := range q.Relations() {
		if rn != rel && q.IsExogenous(rn) {
			exoRels = append(exoRels, rn)
		}
	}
	if len(exoRels) != 2 {
		return nil, fmt.Errorf("resilience: query %s is not qTS3conf-shaped", q.Name)
	}

	r := d.Rel(rel)
	if r == nil || !eval.Satisfied(q, d) {
		return &Result{Rho: 0, Method: "ts3conf-flow"}, nil
	}
	var forced []db.Tuple
	for _, t := range r.Tuples() {
		both := true
		for _, exo := range exoRels {
			er := d.Rel(exo)
			if er == nil || !er.Has(db.NewTuple(exo, t.Args[0], t.Args[1])) {
				both = false
				break
			}
		}
		if both {
			forced = append(forced, t)
		}
	}
	mark := d.RestoreMark()
	for _, t := range forced {
		d.Delete(t)
	}
	inner, err := LinearFlow(q, d)
	d.RestoreTo(mark)
	if err != nil {
		return nil, err
	}
	gamma := append(append([]db.Tuple(nil), forced...), inner.ContingencySet...)
	db.SortTuples(gamma)
	return &Result{
		Rho:            len(forced) + inner.Rho,
		ContingencySet: gamma,
		Method:         "ts3conf-flow",
		Witnesses:      inner.Witnesses,
	}, nil
}
