package resilience

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
)

// naiveResponsibility enumerates contingency sets by increasing size —
// an independent oracle for tiny instances.
func naiveResponsibility(q *cq.Query, d *db.Database, t db.Tuple) (int, bool) {
	var endo []db.Tuple
	for _, tup := range d.AllTuples() {
		if !q.IsExogenous(tup.Rel) && tup != t {
			endo = append(endo, tup)
		}
	}
	counterfactual := func(gamma []db.Tuple) bool {
		mark := d.RestoreMark()
		defer d.RestoreTo(mark)
		for _, g := range gamma {
			d.Delete(g)
		}
		if !eval.Satisfied(q, d) {
			return false
		}
		d.Delete(t)
		return !eval.Satisfied(q, d)
	}
	var cur []db.Tuple
	var rec func(start, need int) bool
	rec = func(start, need int) bool {
		if need == 0 {
			return counterfactual(cur)
		}
		for i := start; i <= len(endo)-need; i++ {
			cur = append(cur, endo[i])
			if rec(i+1, need-1) {
				cur = cur[:len(cur)-1]
				return true
			}
			cur = cur[:len(cur)-1]
		}
		return false
	}
	for k := 0; k <= len(endo); k++ {
		if rec(0, k) {
			return k, true
		}
	}
	return 0, false
}

func TestResponsibilityChainExample(t *testing.T) {
	// D = {R(1,2), R(2,3), R(3,3)} under qchain. R(2,3) is in witnesses
	// (1,2,3) and (2,3,3); making it counterfactual requires killing
	// witness (3,3,3), so k = 1 via Γ = {R(3,3)}.
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	r12 := d.AddNames("R", "1", "2")
	r23 := d.AddNames("R", "2", "3")
	r33 := d.AddNames("R", "3", "3")

	k, gamma, err := Responsibility(q, d, r23)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 || len(gamma) != 1 || gamma[0] != r33 {
		t.Fatalf("k=%d gamma=%v, want 1 and {R(3,3)}", k, gamma)
	}

	// R(3,3) alone is a witness, so it is counterfactual... only if the
	// other witnesses are killed: both (1,2,3) and (2,3,3) must go, and
	// deleting R(2,3) kills both: k = 1.
	k, _, err = Responsibility(q, d, r33)
	if err != nil || k != 1 {
		t.Fatalf("R(3,3): k=%d err=%v, want 1", k, err)
	}

	// R(1,2) is in one witness; the other two witnesses must be hit
	// without touching {R(1,2), R(2,3)}: delete R(3,3) — but that kills
	// witness (2,3,3) and (3,3,3) both. k = 1.
	k, _, err = Responsibility(q, d, r12)
	if err != nil || k != 1 {
		t.Fatalf("R(1,2): k=%d err=%v, want 1", k, err)
	}
}

func TestResponsibilityZeroContingency(t *testing.T) {
	// A single witness: every tuple in it is counterfactual with Γ = ∅.
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	d := db.New()
	r1 := d.AddNames("R", "1")
	d.AddNames("S", "1", "2")
	d.AddNames("R", "2")
	k, gamma, err := Responsibility(q, d, r1)
	if err != nil || k != 0 || gamma != nil {
		t.Fatalf("k=%d gamma=%v err=%v, want 0, nil, nil", k, gamma, err)
	}
}

func TestResponsibilityNotCounterfactual(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	orphan := d.AddNames("R", "9", "9") // in a witness of its own... actually (9,9,9) is a witness
	// R(9,9) IS counterfactual (kill the other witness). Use a tuple in
	// no witness instead:
	lone := d.AddNames("R", "7", "8") // no continuation: in no witness
	if _, _, err := Responsibility(q, d, lone); err != ErrNotCounterfactual {
		t.Fatalf("err=%v, want ErrNotCounterfactual", err)
	}
	if k, _, err := Responsibility(q, d, orphan); err != nil || k != 1 {
		t.Fatalf("R(9,9): k=%d err=%v, want 1", k, err)
	}
}

func TestResponsibilityInputValidation(t *testing.T) {
	q := cq.MustParse("q :- A(x), W(x,y)^x")
	d := db.New()
	a := d.AddNames("A", "1")
	w := d.AddNames("W", "1", "2")
	if _, _, err := Responsibility(q, d, w); err == nil {
		t.Error("want error for exogenous tuple")
	}
	d.Remove(a)
	if _, _, err := Responsibility(q, d, a); err == nil {
		t.Error("want error for absent tuple")
	}
}

// TestResponsibilityAgreesWithNaive cross-checks against brute force on
// random small instances across query shapes.
func TestResponsibilityAgreesWithNaive(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("qchain :- R(x,y), R(y,z)"),
		cq.MustParse("qperm :- R(x,y), R(y,x)"),
		cq.MustParse("qrats :- R(x,y), A(x), T(z,x), S(y,z)"),
	}
	rng := rand.New(rand.NewSource(41))
	for _, q := range queries {
		for trial := 0; trial < 4; trial++ {
			d := datagen.Random(rng, q, 4, 4, 0.4)
			if !eval.Satisfied(q, d) {
				continue
			}
			checked := 0
			for _, tup := range d.AllTuples() {
				if q.IsExogenous(tup.Rel) {
					continue
				}
				if checked++; checked > 5 {
					break // brute force is exponential; sample a prefix
				}
				wantK, wantOK := naiveResponsibility(q, d, tup)
				gotK, gamma, err := Responsibility(q, d, tup)
				gotOK := err == nil
				if gotOK != wantOK {
					t.Fatalf("%s %s: counterfactual=%v, want %v", q.Name, d.TupleString(tup), gotOK, wantOK)
				}
				if !gotOK {
					continue
				}
				if gotK != wantK {
					t.Fatalf("%s %s: k=%d, want %d", q.Name, d.TupleString(tup), gotK, wantK)
				}
				if len(gamma) != gotK {
					t.Fatalf("%s %s: |Γ|=%d, want %d", q.Name, d.TupleString(tup), len(gamma), gotK)
				}
			}
		}
	}
}
