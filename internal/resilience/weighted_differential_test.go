package resilience

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/witset"
)

// Weighted differential battery: the min-cost solvers against three
// independent oracles on hundreds of random (query, database, weights)
// instances — the cardinality solvers under uniform weights, a brute-force
// reference recursion under arbitrary weights, and each other (pipeline vs
// monolithic, every ablation variant). A fourth suite pins the algebraic
// invariant that scaling every cost by c scales ρ_w by exactly c.

// referenceWeightedCost recomputes ρ_w by exhaustive branching directly
// over the tuple-level witness sets with incumbent pruning — an
// independent implementation of the min-cost definition that shares no
// code with the witset IR, the bitset solver, or the weighted bounds.
func referenceWeightedCost(q *cq.Query, d *db.Database, wOf func(db.Tuple) int64) (int64, bool) {
	sets, unbreakable := eval.EndoWitnessSets(q, d)
	if unbreakable {
		return 0, true
	}
	chosen := map[db.Tuple]bool{}
	best := int64(math.MaxInt64)
	var search func(cost int64)
	search = func(cost int64) {
		if cost >= best {
			return
		}
		var unhit []db.Tuple
		for _, s := range sets {
			hit := false
			for _, t := range s {
				if chosen[t] {
					hit = true
					break
				}
			}
			if !hit {
				unhit = s
				break
			}
		}
		if unhit == nil {
			best = cost
			return
		}
		for _, t := range unhit {
			if chosen[t] {
				continue
			}
			chosen[t] = true
			search(cost + wOf(t))
			delete(chosen, t)
		}
	}
	search(0)
	return best, false
}

// weightedShapes is the query battery shared by the weighted suites: the
// same hard/easy/exogenous mix as the cardinality differential tests.
var weightedShapes = []struct {
	query          string
	domain, tuples int
}{
	{"qchain :- R(x,y), R(y,z)", 6, 9},
	{"qvc :- R(x), S(x,y), R(y)", 6, 8},
	{"qtriangle :- R(x,y), S(y,z), T(z,x)", 5, 7},
	{"qACconf :- A(x), R(x,y), R(z,y), C(z)", 6, 8},
	{"qperm :- R(x,y), R(y,x)", 7, 10},
	{"qxchain :- A(x)^x, R(x,y), R(y,z)", 6, 9},
}

// buildWeighted attaches a per-tuple weight vector drawn by draw (indexed
// by tuple id) to a freshly built instance.
func buildWeighted(t *testing.T, q *cq.Query, d *db.Database, draw func(id int32) int64) *witset.Instance {
	t.Helper()
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	wv := make([]int64, inst.NumTuples())
	for id := range wv {
		wv[id] = draw(int32(id))
	}
	winst, err := inst.WithWeights(wv)
	if err != nil {
		t.Fatal(err)
	}
	return winst
}

// costOf sums an instance's weights over a tuple set.
func costOf(inst *witset.Instance, wOf func(db.Tuple) int64, set []db.Tuple) int64 {
	total := int64(0)
	for _, t := range set {
		total += wOf(t)
	}
	return total
}

// TestDifferentialWeightedUniformEqualsCardinality pins the degeneration
// contract: with every cost 1 the weighted solver, enumerator and
// responsibility computation must reproduce the cardinality ones exactly —
// same ρ, same set lists, same k per tuple.
func TestDifferentialWeightedUniformEqualsCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(3001))
	instances := 0
	for round := 0; round < 50; round++ {
		for _, s := range weightedShapes {
			q := cq.MustParse(s.query)
			d := datagen.Random(rng, q, s.domain, s.tuples, 0.3)
			inst := buildWeighted(t, q, d, func(int32) int64 { return 1 })
			instances++

			card, cardErr := Exact(q, d)
			wres, wErr := SolveWeightedOnInstance(context.Background(), inst, -1)
			if (cardErr == nil) != (wErr == nil) {
				t.Fatalf("%s round %d: cardinality err = %v, weighted err = %v", q.Name, round, cardErr, wErr)
			}
			if cardErr != nil {
				if cardErr == ErrUnbreakable && wErr != ErrUnbreakable {
					t.Fatalf("%s round %d: weighted err = %v, want ErrUnbreakable", q.Name, round, wErr)
				}
				continue
			}
			if wres.Cost != int64(card.Rho) {
				t.Fatalf("%s round %d: uniform weighted cost = %d, cardinality ρ = %d",
					q.Name, round, wres.Cost, card.Rho)
			}
			if wres.Cost > 0 {
				if err := VerifyContingency(q, d, wres.ContingencySet); err != nil {
					t.Fatalf("%s round %d: weighted contingency invalid: %v", q.Name, round, err)
				}
			}

			// Enumerator parity: identical cost and identical set lists.
			crho, csets, err := EnumerateMinimumOnInstance(context.Background(), inst, d, 0)
			if err != nil {
				t.Fatalf("%s round %d: cardinality enumerate: %v", q.Name, round, err)
			}
			wcost, wsets, err := EnumerateMinimumWeightedOnInstance(context.Background(), inst, d, 0)
			if err != nil {
				t.Fatalf("%s round %d: weighted enumerate: %v", q.Name, round, err)
			}
			if wcost != int64(crho) || len(wsets) != len(csets) {
				t.Fatalf("%s round %d: weighted enumerate (cost=%d, %d sets) vs cardinality (ρ=%d, %d sets)",
					q.Name, round, wcost, len(wsets), crho, len(csets))
			}
			for i := range wsets {
				if fmt.Sprint(wsets[i]) != fmt.Sprint(csets[i]) {
					t.Fatalf("%s round %d: enumerate set %d differs:\nweighted:    %v\ncardinality: %v",
						q.Name, round, i, wsets[i], csets[i])
				}
			}

			// Responsibility parity for every endogenous tuple.
			for id := int32(0); id < int32(inst.NumTuples()); id++ {
				tup := inst.Tuple(id)
				ck, _, cErr := ResponsibilityOnInstance(context.Background(), inst, d, tup)
				wk, wg, wErr := WeightedResponsibilityOnInstance(context.Background(), inst, d, tup)
				if (cErr == nil) != (wErr == nil) || (cErr != nil && cErr != wErr) {
					t.Fatalf("%s round %d: responsibility(%s) cardinality err = %v, weighted err = %v",
						q.Name, round, d.TupleString(tup), cErr, wErr)
				}
				if cErr != nil {
					continue
				}
				if wk != int64(ck) {
					t.Fatalf("%s round %d: responsibility(%s) weighted k = %d, cardinality k = %d",
						q.Name, round, d.TupleString(tup), wk, ck)
				}
				if got := int64(len(wg)); got != wk {
					t.Fatalf("%s round %d: responsibility(%s) uniform gamma cost %d ≠ k %d",
						q.Name, round, d.TupleString(tup), got, wk)
				}
			}
		}
	}
	if instances < 300 {
		t.Fatalf("only %d instances generated, want >= 300", instances)
	}
}

// TestDifferentialWeightedPipelineVsMonolithic pins the weighted tentpole
// contract under arbitrary weights: pipeline, monolithic, every bound
// ablation, and the weighted enumerator all agree with the brute-force
// reference on ρ_w, and every reported contingency set has exactly that
// cost and verifiably falsifies the query.
func TestDifferentialWeightedPipelineVsMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(3002))
	instances := 0
	for round := 0; round < 50; round++ {
		for _, s := range weightedShapes {
			q := cq.MustParse(s.query)
			d := datagen.Random(rng, q, s.domain, s.tuples, 0.3)
			inst := buildWeighted(t, q, d, func(int32) int64 { return 1 + rng.Int63n(6) })
			instances++

			wOf := func(tup db.Tuple) int64 {
				for id := int32(0); id < int32(inst.NumTuples()); id++ {
					if inst.Tuple(id) == tup {
						return inst.Weight(id)
					}
				}
				return 1 // outside the witness universe: never chosen
			}
			want, unbreakable := referenceWeightedCost(q, d, wOf)

			pipe, pipeErr := SolveWeightedOnInstance(context.Background(), inst, -1)
			if unbreakable {
				if pipeErr != ErrUnbreakable {
					t.Fatalf("%s round %d: reference says unbreakable, weighted err = %v", q.Name, round, pipeErr)
				}
				continue
			}
			if pipeErr != nil {
				t.Fatalf("%s round %d: weighted pipeline: %v", q.Name, round, pipeErr)
			}
			if pipe.Cost != want {
				t.Fatalf("%s round %d: weighted pipeline cost = %d, reference = %d\n%s",
					q.Name, round, pipe.Cost, want, d)
			}
			if pipe.Cost > 0 {
				if got := costOf(inst, wOf, pipe.ContingencySet); got != pipe.Cost {
					t.Fatalf("%s round %d: contingency cost %d ≠ reported %d", q.Name, round, got, pipe.Cost)
				}
				if err := VerifyContingency(q, d, pipe.ContingencySet); err != nil {
					t.Fatalf("%s round %d: weighted contingency invalid: %v", q.Name, round, err)
				}
			}

			// Monolithic oracle plus the full weighted ablation matrix.
			for _, opts := range []Options{
				{Monolithic: true},
				{DisableLowerBound: true},
				{DisableLPBound: true},
				{DisableLowerBound: true, DisableLPBound: true},
				{KeepSupersets: true},
				{Monolithic: true, DisableLowerBound: true, DisableLPBound: true},
			} {
				ab, err := SolveWeightedWithOptions(context.Background(), inst, -1, opts)
				if err != nil {
					t.Fatalf("%s round %d: weighted ablation %+v: %v", q.Name, round, opts, err)
				}
				if ab.Cost != want {
					t.Fatalf("%s round %d: weighted ablation %+v cost = %d, want %d",
						q.Name, round, opts, ab.Cost, want)
				}
			}

			// Weighted enumerator: pipeline vs monolithic, identical lists,
			// every set optimal and verified.
			ecost, esets, err := EnumerateMinimumWeightedOnInstance(context.Background(), inst, d, 0)
			if err != nil {
				t.Fatalf("%s round %d: weighted enumerate: %v", q.Name, round, err)
			}
			mcost, msets, err := enumerateMinimumWeightedMonolithic(context.Background(), inst, d, 0)
			if err != nil {
				t.Fatalf("%s round %d: weighted monolithic enumerate: %v", q.Name, round, err)
			}
			if ecost != want || mcost != want || len(esets) != len(msets) {
				t.Fatalf("%s round %d: weighted enumerate pipeline (cost=%d, %d sets) vs monolithic (cost=%d, %d sets), reference %d",
					q.Name, round, ecost, len(esets), mcost, len(msets), want)
			}
			for i := range esets {
				if fmt.Sprint(esets[i]) != fmt.Sprint(msets[i]) {
					t.Fatalf("%s round %d: weighted enumerate set %d differs:\npipeline:   %v\nmonolithic: %v",
						q.Name, round, i, esets[i], msets[i])
				}
				if got := costOf(inst, wOf, esets[i]); got != want {
					t.Fatalf("%s round %d: enumerated set %d costs %d, want %d", q.Name, round, i, got, want)
				}
				if err := VerifyContingency(q, d, esets[i]); err != nil {
					t.Fatalf("%s round %d: enumerated set %d invalid: %v", q.Name, round, i, err)
				}
			}
		}
	}
	if instances < 300 {
		t.Fatalf("only %d instances generated, want >= 300", instances)
	}
}

// TestDifferentialWeightedResponsibilityVsReference pins weighted
// responsibility against a reference built from the same brute-force
// recursion: for tuple t, the min-cost contingency Γ with t ∉ Γ such that
// D−Γ |= q but D−Γ−{t} ̸|= q — computed here by restricting the witness
// sets by hand, with no shared solver code.
func TestDifferentialWeightedResponsibilityVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3003))
	instances := 0
	for round := 0; round < 50; round++ {
		for _, s := range weightedShapes {
			q := cq.MustParse(s.query)
			d := datagen.Random(rng, q, s.domain, s.tuples, 0.3)
			inst := buildWeighted(t, q, d, func(int32) int64 { return 1 + rng.Int63n(5) })
			instances++
			if inst.Unbreakable() || inst.NumWitnesses() == 0 {
				continue
			}
			wOf := func(tup db.Tuple) int64 {
				for id := int32(0); id < int32(inst.NumTuples()); id++ {
					if inst.Tuple(id) == tup {
						return inst.Weight(id)
					}
				}
				return 1
			}
			sets, _ := eval.EndoWitnessSets(q, d)
			for id := int32(0); id < int32(inst.NumTuples()); id++ {
				tup := inst.Tuple(id)
				want := referenceWeightedResponsibility(sets, tup, wOf)
				got, gamma, err := WeightedResponsibilityOnInstance(context.Background(), inst, d, tup)
				if want < 0 {
					if err != ErrNotCounterfactual {
						t.Fatalf("%s round %d: responsibility(%s): err = %v, want ErrNotCounterfactual",
							q.Name, round, d.TupleString(tup), err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s round %d: responsibility(%s): %v", q.Name, round, d.TupleString(tup), err)
				}
				if got != want {
					t.Fatalf("%s round %d: responsibility(%s) = %d, reference = %d\n%s",
						q.Name, round, d.TupleString(tup), got, want, d)
				}
				if gcost := costOf(inst, wOf, gamma); gcost != got {
					t.Fatalf("%s round %d: responsibility(%s) gamma costs %d, k = %d",
						q.Name, round, d.TupleString(tup), gcost, got)
				}
			}
		}
	}
	if instances < 300 {
		t.Fatalf("only %d instances generated, want >= 300", instances)
	}
}

// referenceWeightedResponsibility brute-forces min-cost responsibility
// over the raw witness sets: Γ must hit every witness set not containing
// t while leaving at least one witness alive whose only missing tuple is
// t. Returns -1 when t is not a counterfactual cause under any Γ.
func referenceWeightedResponsibility(sets [][]db.Tuple, t db.Tuple, wOf func(db.Tuple) int64) int64 {
	// Witnesses containing t survive Γ only if Γ misses them entirely;
	// witnesses without t must all be hit. Enumerate subsets of the tuple
	// universe minus t by recursion over the must-hit sets, then check
	// some t-witness survived.
	var withT, withoutT [][]db.Tuple
	for _, s := range sets {
		has := false
		for _, x := range s {
			if x == t {
				has = true
				break
			}
		}
		if has {
			withT = append(withT, s)
		} else {
			withoutT = append(withoutT, s)
		}
	}
	if len(withT) == 0 {
		return -1
	}
	best := int64(-1)
	chosen := map[db.Tuple]bool{}
	var search func(cost int64)
	search = func(cost int64) {
		if best >= 0 && cost >= best {
			return
		}
		var unhit []db.Tuple
		for _, s := range withoutT {
			hit := false
			for _, x := range s {
				if chosen[x] {
					hit = true
					break
				}
			}
			if !hit {
				unhit = s
				break
			}
		}
		if unhit == nil {
			// All t-free witnesses are dead; some t-witness must survive Γ.
			for _, s := range withT {
				alive := true
				for _, x := range s {
					if chosen[x] {
						alive = false
						break
					}
				}
				if alive {
					best = cost
					return
				}
			}
			return
		}
		for _, x := range unhit {
			if x == t || chosen[x] {
				continue
			}
			chosen[x] = true
			search(cost + wOf(x))
			delete(chosen, x)
		}
	}
	search(0)
	return best
}

// TestDifferentialWeightedScalingInvariance pins the algebraic contract
// that makes weights a true cost model: multiplying every cost by c
// multiplies ρ_w by exactly c, and an optimal set under w stays optimal
// under c·w.
func TestDifferentialWeightedScalingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3004))
	instances := 0
	for round := 0; round < 50; round++ {
		for _, s := range weightedShapes {
			q := cq.MustParse(s.query)
			d := datagen.Random(rng, q, s.domain, s.tuples, 0.3)
			base, err := witset.Build(context.Background(), q, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			instances++
			wv := make([]int64, base.NumTuples())
			for i := range wv {
				wv[i] = 1 + rng.Int63n(4)
			}
			inst, err := base.WithWeights(wv)
			if err != nil {
				t.Fatal(err)
			}
			res, resErr := SolveWeightedOnInstance(context.Background(), inst, -1)
			for _, c := range []int64{2, 5} {
				sv := make([]int64, len(wv))
				for i := range sv {
					sv[i] = c * wv[i]
				}
				sinst, err := base.WithWeights(sv)
				if err != nil {
					t.Fatal(err)
				}
				sres, sErr := SolveWeightedOnInstance(context.Background(), sinst, -1)
				if (resErr == nil) != (sErr == nil) {
					t.Fatalf("%s round %d: scale %d err = %v, base err = %v", q.Name, round, c, sErr, resErr)
				}
				if resErr != nil {
					continue
				}
				if sres.Cost != c*res.Cost {
					t.Fatalf("%s round %d: scale %d cost = %d, want %d·%d = %d",
						q.Name, round, c, sres.Cost, c, res.Cost, c*res.Cost)
				}
			}
		}
	}
	if instances < 300 {
		t.Fatalf("only %d instances generated, want >= 300", instances)
	}
}
