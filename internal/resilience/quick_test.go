package resilience

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/witset"
)

// Property-based tests (testing/quick) on the solver invariants.

// smallDB is a generated random database for qchain-shaped queries.
type smallDB struct {
	Edges []struct{ U, V uint8 }
}

// Generate implements quick.Generator with a bounded domain so instances
// stay witness-rich and the exact solver fast.
func (smallDB) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2 + r.Intn(8)
	var s smallDB
	for i := 0; i < n; i++ {
		s.Edges = append(s.Edges, struct{ U, V uint8 }{uint8(r.Intn(5)), uint8(r.Intn(5))})
	}
	return reflect.ValueOf(s)
}

func (s smallDB) build() *db.Database {
	d := db.New()
	names := []string{"a", "b", "c", "d", "e"}
	for _, e := range s.Edges {
		d.AddNames("R", names[e.U%5], names[e.V%5])
	}
	return d
}

// TestQuickContingencyIsValidAndMinimal: for random chain instances, the
// exact solver's set falsifies the query and no single tuple can be
// dropped from it (local minimality of a true minimum).
func TestQuickContingencyIsValidAndMinimal(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	prop := func(s smallDB) bool {
		d := s.build()
		res, err := Exact(q, d)
		if err != nil {
			return true
		}
		if res.Rho == 0 {
			return !eval.Satisfied(q, d)
		}
		if VerifyContingency(q, d, res.ContingencySet) != nil {
			return false
		}
		// Minimality: removing any element leaves the query satisfied.
		for skip := range res.ContingencySet {
			mark := d.RestoreMark()
			for i, tup := range res.ContingencySet {
				if i != skip {
					d.Delete(tup)
				}
			}
			still := eval.Satisfied(q, d)
			d.RestoreTo(mark)
			if !still {
				return false // a smaller set would falsify: not minimum
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMonotoneUnderInsertion: resilience never decreases when tuples
// are added (more witnesses need at least as many deletions... in fact ρ is
// monotone because every witness of D is a witness of D ∪ {t}).
func TestQuickMonotoneUnderInsertion(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	prop := func(s smallDB, extra struct{ U, V uint8 }) bool {
		d := s.build()
		before, err := Exact(q, d)
		if err != nil {
			return true
		}
		names := []string{"a", "b", "c", "d", "e"}
		d.AddNames("R", names[extra.U%5], names[extra.V%5])
		after, err := Exact(q, d)
		if err != nil {
			return true
		}
		return after.Rho >= before.Rho
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeleteContingencyYieldsZero: after deleting a minimum
// contingency set, resilience is 0.
func TestQuickDeleteContingencyYieldsZero(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	prop := func(s smallDB) bool {
		d := db.New()
		names := []string{"a", "b", "c", "d", "e"}
		for _, e := range s.Edges {
			d.AddNames("S", names[e.U%5], names[e.V%5])
			d.AddNames("R", names[e.U%5])
			d.AddNames("R", names[e.V%5])
		}
		res, err := Exact(q, d)
		if err != nil {
			return true
		}
		for _, tup := range res.ContingencySet {
			d.Delete(tup)
		}
		rest, err := Exact(q, d)
		return err == nil && rest.Rho == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickHittingSetNormalization: the hitting-set normalizer must never
// change the optimum (dedup + superset elimination are safe).
func TestQuickHittingSetNormalization(t *testing.T) {
	prop := func(raw [][]uint8) bool {
		// Build family over elements 0..5, skipping empty sets.
		var fam [][]int32
		for _, s := range raw {
			if len(s) == 0 {
				continue
			}
			row := make([]int32, 0, len(s))
			for _, e := range s[:min(len(s), 4)] {
				row = append(row, int32(e%6))
			}
			fam = append(fam, row)
		}
		if len(fam) == 0 || len(fam) > 8 {
			return true
		}
		hs := newHittingSet(witset.NewFamily(fam, 6, false))
		got, sol := hs.solve(-1)
		want := bruteHitting(fam, 6)
		if got != want {
			return false
		}
		// The returned solution must actually hit every set.
		chosen := map[int32]bool{}
		for _, e := range sol {
			chosen[e] = true
		}
		for _, s := range fam {
			hit := false
			for _, e := range s {
				if chosen[e] {
					hit = true
					break
				}
			}
			if !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func bruteHitting(fam [][]int32, n int) int {
	best := n + 1
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, s := range fam {
			hit := false
			for _, e := range s {
				if mask>>e&1 == 1 {
					hit = true
					break
				}
			}
			if !hit {
				ok = false
				break
			}
		}
		if ok {
			bits := 0
			for i := 0; i < n; i++ {
				if mask>>i&1 == 1 {
					bits++
				}
			}
			if bits < best {
				best = bits
			}
		}
	}
	return best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
