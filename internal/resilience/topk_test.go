package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/witset"
)

func buildInstance(t *testing.T, q *cq.Query, d *db.Database) *witset.Instance {
	t.Helper()
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestTopKMatchesResponsibilityPerTuple pins the ranking's entries against
// the single-tuple responsibility oracle: every ranked tuple's k must be
// exactly what ResponsibilityOnInstance reports for it, and every
// counterfactual tuple must appear in the full ranking.
func TestTopKMatchesResponsibilityPerTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(5001))
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	for round := 0; round < 8; round++ {
		d := datagen.ManyComponentChainDB(rng, 2+round%3, 3, 8)
		inst := buildInstance(t, q, d)
		if inst.Unbreakable() {
			continue
		}
		ranked, err := TopKResponsibilityOnInstance(context.Background(), inst, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[db.Tuple]int64{}
		for _, rt := range ranked {
			seen[rt.Tuple] = rt.K
		}
		for id := int32(0); id < int32(inst.NumTuples()); id++ {
			tup := inst.Tuple(id)
			k, _, err := ResponsibilityOnInstance(context.Background(), inst, d, tup)
			if err == ErrNotCounterfactual {
				if _, ok := seen[tup]; ok {
					t.Fatalf("round %d: non-counterfactual %s appears in the ranking", round, d.TupleString(tup))
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			got, ok := seen[tup]
			if !ok {
				t.Fatalf("round %d: counterfactual %s missing from the full ranking", round, d.TupleString(tup))
			}
			if got != int64(k) {
				t.Fatalf("round %d: ranking k(%s) = %d, responsibility k = %d", round, d.TupleString(tup), got, k)
			}
		}
	}
}

// TestTopKDeterministicOrder pins the tie-break contract: the ranking is
// sorted by (k ascending, rendered tuple ascending), and repeated runs
// return the identical ranking.
func TestTopKDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5002))
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := datagen.ManyComponentChainDB(rng, 4, 3, 8)
	inst := buildInstance(t, q, d)

	first, err := TopKResponsibilityOnInstance(context.Background(), inst, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) < 2 {
		t.Fatalf("want a multi-entry ranking, got %d", len(first))
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.K > b.K {
			t.Fatalf("rank %d: k %d after k %d — not sorted by responsibility", i, b.K, a.K)
		}
		if a.K == b.K && d.TupleString(a.Tuple) >= d.TupleString(b.Tuple) {
			t.Fatalf("rank %d: tie on k=%d broken as %s before %s — not lexicographic",
				i, a.K, d.TupleString(a.Tuple), d.TupleString(b.Tuple))
		}
	}
	for trial := 0; trial < 3; trial++ {
		again, err := TopKResponsibilityOnInstance(context.Background(), inst, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(again) != fmt.Sprint(first) {
			t.Fatalf("trial %d: ranking differs between runs:\n%v\n%v", trial, again, first)
		}
	}
}

// TestTopKLargerThanUniverse: k beyond the number of counterfactual tuples
// returns the full ranking; k = 0 means uncapped; k truncates exactly.
func TestTopKLargerThanUniverse(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	d.AddNames("R", "3", "3")
	inst := buildInstance(t, q, d)

	full, err := TopKResponsibilityOnInstance(context.Background(), inst, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 3 {
		t.Fatalf("full ranking has %d entries, want 3", len(full))
	}
	huge, err := TopKResponsibilityOnInstance(context.Background(), inst, d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(huge) != fmt.Sprint(full) {
		t.Fatalf("k=1000 ranking differs from uncapped:\n%v\n%v", huge, full)
	}
	one, err := TopKResponsibilityOnInstance(context.Background(), inst, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || fmt.Sprint(one[0]) != fmt.Sprint(full[0]) {
		t.Fatalf("k=1 = %v, want the top entry of %v", one, full)
	}
}

// TestTopKUnbreakableAndExogenous: an unbreakable instance refuses with
// ErrUnbreakable, and exogenous tuples never appear in a ranking (they are
// outside the witness universe by construction).
func TestTopKUnbreakableAndExogenous(t *testing.T) {
	qx := cq.MustParse("q :- R(x,y)^x")
	d := db.New()
	d.AddNames("R", "a", "b")
	inst := buildInstance(t, qx, d)
	if _, err := TopKResponsibilityOnInstance(context.Background(), inst, d, 1); !errors.Is(err, ErrUnbreakable) {
		t.Fatalf("unbreakable topk err = %v, want ErrUnbreakable", err)
	}

	// Mixed query: A is exogenous, R endogenous — only R tuples may rank.
	q := cq.MustParse("qx :- A(x)^x, R(x,y)")
	d2 := db.New()
	d2.AddNames("A", "a")
	d2.AddNames("R", "a", "b")
	d2.AddNames("R", "a", "c")
	inst2 := buildInstance(t, q, d2)
	ranked, err := TopKResponsibilityOnInstance(context.Background(), inst2, d2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no ranked tuples on a breakable instance")
	}
	for _, rt := range ranked {
		if got := d2.TupleString(rt.Tuple); got[0] == 'A' {
			t.Fatalf("exogenous tuple %s in ranking", got)
		}
	}
}

// TestTopKStreamedMatchesCollected: the emit-streamed ranking is the
// collected ranking, entry for entry and in the same order, and an emit
// error aborts the stream after exactly the entries already delivered.
func TestTopKStreamedMatchesCollected(t *testing.T) {
	rng := rand.New(rand.NewSource(5003))
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := datagen.ManyComponentChainDB(rng, 3, 3, 9)
	inst := buildInstance(t, q, d)

	collected, err := TopKResponsibilityOnInstance(context.Background(), inst, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []RankedTuple
	total, err := TopKResponsibilityFunc(context.Background(), inst, d, 0,
		func(rank int, rt RankedTuple) error {
			if rank != len(streamed) {
				t.Fatalf("rank %d delivered out of order (have %d)", rank, len(streamed))
			}
			streamed = append(streamed, rt)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(collected) || fmt.Sprint(streamed) != fmt.Sprint(collected) {
		t.Fatalf("streamed (total=%d) differs from collected (%d):\n%v\n%v",
			total, len(collected), streamed, collected)
	}

	boom := errors.New("stop after two")
	var got int
	_, err = TopKResponsibilityFunc(context.Background(), inst, d, 0,
		func(rank int, rt RankedTuple) error {
			got++
			if got == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) || got != 2 {
		t.Fatalf("emit error: err = %v after %d entries, want boom after 2", err, got)
	}
}

// TestTopKWeightedRanking: per-tuple costs reorder the ranking — a tuple
// whose cheapest contingency uses expensive tuples ranks below one with a
// cheap contingency, and gamma costs match the reported k.
func TestTopKWeightedRanking(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	// Two disjoint 2-edge paths: every edge has k=1 under unit costs.
	d := db.New()
	d.AddNames("R", "a", "b")
	d.AddNames("R", "b", "c")
	d.AddNames("R", "x", "y")
	d.AddNames("R", "y", "z")
	base := buildInstance(t, q, d)

	uniform, err := TopKResponsibilityOnInstance(context.Background(), base, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range uniform {
		if rt.K != 1 {
			t.Fatalf("uniform k(%s) = %d, want 1", d.TupleString(rt.Tuple), rt.K)
		}
	}

	// Make the a-b-c path's tuples expensive. A contingency for tuple t
	// must falsify every OTHER witness too, so each edge's Γ is one edge
	// of the opposite path: the expensive edges get a cheap Γ (k=1) and
	// rank first, while the cheap edges must pay for an expensive edge
	// (k=5) and fall to the bottom.
	wv := make([]int64, base.NumTuples())
	for id := range wv {
		wv[id] = 1
		s := d.TupleString(base.Tuple(int32(id)))
		if s == "R(a,b)" || s == "R(b,c)" {
			wv[id] = 5
		}
	}
	winst, err := base.WithWeights(wv)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := TopKResponsibilityOnInstance(context.Background(), winst, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(weighted) != 4 {
		t.Fatalf("weighted ranking has %d entries, want 4", len(weighted))
	}
	for i, rt := range weighted {
		s := d.TupleString(rt.Tuple)
		expensive := s == "R(a,b)" || s == "R(b,c)"
		if i < 2 {
			if !expensive || rt.K != 1 {
				t.Fatalf("rank %d: %s k=%d, want an expensive-path edge with k=1", i, s, rt.K)
			}
		} else {
			if expensive || rt.K != 5 {
				t.Fatalf("rank %d: %s k=%d, want a cheap-path edge with k=5", i, s, rt.K)
			}
		}
		// The reported gamma's cost must equal k in every case.
		gcost := int64(0)
		for _, g := range rt.Gamma {
			gs := d.TupleString(g)
			if gs == "R(a,b)" || gs == "R(b,c)" {
				gcost += 5
			} else {
				gcost++
			}
		}
		if gcost != rt.K {
			t.Fatalf("rank %d: %s gamma costs %d, k = %d", i, s, gcost, rt.K)
		}
	}
}
