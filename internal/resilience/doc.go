// Package resilience implements the paper's resilience solvers.
//
// ρ(q, D) — the resilience of Boolean query q on database D — is the
// minimum number of endogenous tuples whose deletion makes q false
// (Definition 1). The package provides:
//
//   - Exact (and its Ctx/Filtered/OnInstance/WithOptions variants):
//     branch-and-bound minimum hitting set over the witness hypergraph
//     (internal/witset), correct for every CQ (the trusted oracle;
//     worst-case exponential);
//   - LinearFlow: the network-flow solver for linear queries, following
//     [31] and extended to one 2-confluence per Proposition 31 / Lemma 55;
//   - the specialized PTIME solvers of Propositions 13, 33, 36, 41 and 44;
//   - Solve: a dispatcher that classifies the query (Theorem 37) and picks
//     the fastest sound algorithm, taking the Lemma 14 minimum over
//     connected components;
//   - EnumerateMinimum: ρ plus every minimum contingency set;
//   - Responsibility: minimal contingency size making a tuple a
//     counterfactual cause (Meliou et al. [31]).
//
// # Key invariants
//
//   - Every exact-path API lands in one entry point over a
//     witset.Instance; callers that already hold an IR (the engine's
//     portfolio and cross-request cache, the serving layer) use the
//     *OnInstance variants and skip re-enumeration.
//   - The exact path runs the kernel+decompose pipeline (DESIGN.md §7):
//     the witness family is kernelized (unit-row forcing, dominated-tuple
//     elimination), split into connected components, and solved per
//     component — ρ is forced deletions plus the sum of component minima.
//     Options.Monolithic keeps the whole-family solver reachable as the
//     differential suite's oracle, and SolveFamily exposes the
//     per-component building block for the engine's component-parallel
//     portfolio. EnumerateMinimum and Responsibility decompose but never
//     kernelize with domination: it preserves one optimum, not all.
//   - Decide and VerifyContingency are IR consumers too: membership
//     thresholds against the budgeted pipeline solve, and verification
//     checks that the candidate set hits every witness row — neither ever
//     mutates the database.
//   - Solvers treat the database as read-only, with one exception: the
//     Perm3Flow family probes deletions and always restores before
//     returning (callers sharing a database across goroutines must
//     clone around it — the engine does).
//   - Cancellation: the *Ctx variants poll their context through ctxpoll
//     inside enumeration and search loops and return ctx.Err() once it
//     fires; results are never partial — a cancelled call returns an
//     error, not a wrong ρ.
//   - ErrUnbreakable is an answer, not a failure: some witness consists
//     purely of exogenous tuples, so no endogenous deletion set can
//     falsify the query (ρ = ∞).
package resilience
