package resilience

import (
	"context"
	"math"

	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/witset"
)

// Min-weight resilience: every tuple carries a positive integer deletion
// cost (witset.Instance.WithWeights) and ρ_w(q, D) is the minimum total
// cost of a contingency set — the ILP generalization of the paper's
// cardinality question. With all costs 1, ρ_w = ρ, which is what the
// weighted differential suite pins. The solver is the same branch-and-bound
// over the witness family with every bound generalized:
//
//   - packing lower bound: disjoint unhit rows need distinct elements, and
//     a row's element costs at least the row's cheapest member, so the sum
//     of per-packed-row minima is admissible;
//   - LP dual-greedy bound: the dual capacity of element e is its cost
//     W[e] instead of 1; any feasible dual sum is at most the fractional
//     optimum, which is at most the integral one;
//   - greedy upper bound: coverage-per-cost greedy
//     (witset.GreedyHittingSetWeighted) seeds the incumbent.
//
// Budgets are total-cost budgets. Kernelization stays sound because the
// domination rule is weight-aware (see witset.Kernelize), and component
// minima still add: components share no elements, so costs are disjoint
// sums.

// WeightedResult is the outcome of a min-weight resilience computation.
type WeightedResult struct {
	// Cost is ρ_w(q, D), the total cost of a minimum-weight contingency
	// set. With unit weights it equals Rho of the cardinality solvers.
	Cost int64
	// ContingencySet is one optimal contingency set (nil when Cost == 0).
	ContingencySet []db.Tuple
	// Method names the algorithm that produced the result.
	Method string
	// Witnesses is the number of witnesses enumerated.
	Witnesses int
}

// SolveWeightedOnInstance computes ρ_w over a prebuilt witness-hypergraph
// IR carrying per-tuple weights (an unweighted instance solves with all
// costs 1). It runs the same kernel+decompose pipeline as the cardinality
// solver; if budget >= 0 and ρ_w > budget, the result has Cost = budget+1
// and a nil contingency set.
func SolveWeightedOnInstance(ctx context.Context, inst *witset.Instance, budget int64) (*WeightedResult, error) {
	return solveWeightedInstance(ctx, inst, budget, "weighted-exact", Options{})
}

// SolveWeightedWithOptions is SolveWeightedOnInstance with ablation
// switches: Monolithic is the differential suite's oracle for weighted
// pipeline ≡ weighted monolithic, and the bound switches pin each weighted
// bound's admissibility the same way the cardinality ablation matrix does.
func SolveWeightedWithOptions(ctx context.Context, inst *witset.Instance, budget int64, opts Options) (*WeightedResult, error) {
	return solveWeightedInstance(ctx, inst, budget, "weighted-exact-ablation", opts)
}

func solveWeightedInstance(ctx context.Context, inst *witset.Instance, budget int64, method string, opts Options) (*WeightedResult, error) {
	if inst.Unbreakable() {
		return nil, ErrUnbreakable
	}
	if inst.NumWitnesses() == 0 {
		return &WeightedResult{Cost: 0, Method: method, Witnesses: inst.NumWitnesses()}, nil
	}
	if opts.Monolithic || opts.KeepSupersets {
		cost, chosen, err := solveFamilyWeighted(ctx, inst.Family(opts.KeepSupersets), budget, opts)
		if err != nil {
			return nil, err
		}
		res := &WeightedResult{Cost: cost, Method: method, Witnesses: inst.NumWitnesses()}
		if chosen != nil {
			res.ContingencySet = inst.TupleSet(chosen)
		}
		return res, nil
	}

	kern, err := inst.KernelCtx(ctx)
	if err != nil {
		return nil, err
	}
	chosen := append([]int32(nil), kern.Forced...)
	cost := int64(0)
	for _, id := range kern.Forced {
		cost += inst.Weight(id)
	}
	over := func() *WeightedResult {
		return &WeightedResult{Cost: budget + 1, Method: method, Witnesses: inst.NumWitnesses()}
	}
	if budget >= 0 && cost > budget {
		return over(), nil
	}
	comps := kern.Components()
	for ci, c := range comps {
		b := int64(-1)
		if budget >= 0 {
			// Every pending component needs at least one deletion of cost
			// >= 1, so reserve 1 per pending sibling, as in the cardinality
			// pipeline.
			b = budget - cost - int64(len(comps)-ci-1)
			if b < 0 {
				return over(), nil
			}
		}
		size, ids, err := solveFamilyWeighted(ctx, c.Fam, b, opts)
		if err != nil {
			return nil, err
		}
		if b >= 0 && size > b {
			return over(), nil
		}
		cost += size
		chosen = append(chosen, c.ToGlobal(ids)...)
	}
	res := &WeightedResult{Cost: cost, Method: method, Witnesses: inst.NumWitnesses()}
	if cost > 0 {
		res.ContingencySet = inst.TupleSet(chosen)
	}
	return res, nil
}

// SolveFamilyWeighted computes a minimum-cost hitting set of fam exactly
// (costs from fam.W; 1 each when nil), returning its total cost and one
// optimal set of element ids. It is the weighted per-component building
// block the engine races against the weighted SAT binary search. If budget
// >= 0 and the minimum exceeds it, it returns (budget+1, nil, nil).
func SolveFamilyWeighted(ctx context.Context, fam *witset.Family, budget int64) (int64, []int32, error) {
	return solveFamilyWeighted(ctx, fam, budget, Options{})
}

func solveFamilyWeighted(ctx context.Context, fam *witset.Family, budget int64, opts Options) (int64, []int32, error) {
	h := newWeightedHittingSet(fam)
	h.noLowerBound = opts.DisableLowerBound
	h.noLPBound = opts.DisableLPBound
	h.poll = ctxpoll.New(ctx)
	cost, chosen := h.solve(budget)
	if err := h.poll.Err(); err != nil {
		return 0, nil, err
	}
	return cost, chosen, nil
}

// weightedHittingSet is the min-cost twin of hittingSet. It is a separate
// type rather than a parameterization so the cardinality solver's hot loop
// (guarded by the benchmark gate) keeps its int arithmetic untouched.
type weightedHittingSet struct {
	fam *witset.Family
	w   []int64 // per-element costs, never nil here, all >= 1

	hitCount []int32
	chosen   witset.Bits
	numUnhit int

	best       int64
	bestChosen []int32
	limit      int64 // stop exploring above this cost (inclusive); -1 = none

	pack  witset.Bits
	lpCap []float64
	lpDeg []int32

	noLowerBound bool
	noLPBound    bool

	poll *ctxpoll.Poller
}

func newWeightedHittingSet(fam *witset.Family) *weightedHittingSet {
	w := fam.W
	if w == nil {
		w = make([]int64, fam.N)
		for i := range w {
			w[i] = 1
		}
	}
	return &weightedHittingSet{
		fam:      fam,
		w:        w,
		hitCount: make([]int32, len(fam.Rows)),
		chosen:   witset.NewBits(fam.N),
		numUnhit: len(fam.Rows),
		pack:     witset.NewBits(fam.N),
		lpCap:    make([]float64, fam.N),
		lpDeg:    make([]int32, fam.N),
		limit:    -1,
	}
}

// solve returns the minimum hitting set cost and one optimal solution. If
// limit >= 0 and every solution exceeds limit, it returns (limit+1, nil).
func (h *weightedHittingSet) solve(limit int64) (int64, []int32) {
	h.limit = limit
	greedy := witset.GreedyHittingSetWeighted(h.fam)
	h.best = 0
	for _, e := range greedy {
		h.best += h.w[e]
	}
	h.bestChosen = greedy
	if limit >= 0 && h.best > limit+1 {
		h.best = limit + 1
		h.bestChosen = nil
	}
	var cur []int32
	h.branch(cur, 0, 0)
	return h.best, h.bestChosen
}

// branch explores extensions of cur (total cost curCost); from is the lowest
// row index that may still be unhit, exactly as in the cardinality solver.
func (h *weightedHittingSet) branch(cur []int32, curCost int64, from int) {
	if h.poll.Cancelled() {
		return
	}
	if h.numUnhit == 0 {
		if curCost < h.best {
			h.best = curCost
			h.bestChosen = append([]int32(nil), cur...)
		}
		return
	}
	lb := int64(1)
	if !h.noLowerBound {
		lb = h.lowerBound()
	}
	if curCost+lb >= h.best {
		return
	}
	if !h.noLPBound {
		if lp := h.lpBound(); curCost+lp >= h.best {
			return
		}
	}
	pick := -1
	for si := from; si < len(h.fam.Rows); si++ {
		if h.hitCount[si] == 0 {
			pick = si
			break
		}
	}
	for _, e := range h.fam.Rows[pick] {
		if h.chosen.Has(e) {
			continue
		}
		h.choose(e)
		h.branch(append(cur, e), curCost+h.w[e], pick+1)
		h.unchoose(e)
	}
}

func (h *weightedHittingSet) choose(e int32) {
	h.chosen.Set(e)
	for _, si := range h.fam.Occ[e] {
		h.hitCount[si]++
		if h.hitCount[si] == 1 {
			h.numUnhit--
		}
	}
}

func (h *weightedHittingSet) unchoose(e int32) {
	h.chosen.Unset(e)
	for _, si := range h.fam.Occ[e] {
		h.hitCount[si]--
		if h.hitCount[si] == 0 {
			h.numUnhit++
		}
	}
}

// lowerBound packs pairwise-disjoint unhit rows; each needs its own
// element, costing at least the row's cheapest member.
func (h *weightedHittingSet) lowerBound() int64 {
	h.pack.Clear()
	lb := int64(0)
	for si, bits := range h.fam.Bits {
		if h.hitCount[si] > 0 {
			continue
		}
		if witset.Disjoint(bits, h.pack) {
			h.pack.Or(bits)
			min := int64(math.MaxInt64)
			for _, e := range h.fam.Rows[si] {
				if h.w[e] < min {
					min = h.w[e]
				}
			}
			lb += min
		}
	}
	return lb
}

// lpBound is the weighted dual feasible bound: duals y_row must satisfy
// Σ_{row ∋ e} y_row ≤ W[e], so phase 1 splits each element's capacity
// uniformly over its degree (y = min_e W[e]/deg(e)) and phase 2 saturates
// remaining capacity greedily. Weak LP duality gives Σ y ≤ fractional
// optimum ≤ ρ_w, and the optimum is an integer (integer costs), so
// rounding up after the conservative epsilon keeps the bound admissible.
func (h *weightedHittingSet) lpBound() int64 {
	for i := range h.lpCap {
		h.lpCap[i] = float64(h.w[i])
		h.lpDeg[i] = 0
	}
	for si, row := range h.fam.Rows {
		if h.hitCount[si] > 0 {
			continue
		}
		for _, e := range row {
			h.lpDeg[e]++
		}
	}
	total := 0.0
	for si, row := range h.fam.Rows {
		if h.hitCount[si] > 0 {
			continue
		}
		y := math.MaxFloat64
		for _, e := range row {
			if v := float64(h.w[e]) / float64(h.lpDeg[e]); v < y {
				y = v
			}
			if c := h.lpCap[e]; c < y {
				y = c
			}
		}
		if y <= 0 {
			continue
		}
		for _, e := range row {
			h.lpCap[e] -= y
		}
		total += y
	}
	for si, row := range h.fam.Rows {
		if h.hitCount[si] > 0 {
			continue
		}
		y := math.MaxFloat64
		for _, e := range row {
			if c := h.lpCap[e]; c < y {
				y = c
			}
		}
		if y <= 0 {
			continue
		}
		for _, e := range row {
			h.lpCap[e] -= y
		}
		total += y
	}
	// The epsilon scales with the total so big-cost instances stay on the
	// conservative side of float error before rounding up.
	return int64(math.Ceil(total - 1e-9*(1+total)))
}
