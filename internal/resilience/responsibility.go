package resilience

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cq"
	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/witset"
)

// Responsibility implements the causality notion the paper builds on
// (Meliou, Gatterbauer, Moore, Suciu [31], cited in Sections 1 and 10):
// an endogenous tuple t is a counterfactual cause of D |= q under
// contingency Γ when D−Γ still satisfies q but D−Γ−{t} does not. The
// responsibility of t is 1/(1+k) for the minimum such |Γ| = k; this
// function returns that k together with one optimal contingency set.
//
// Characterization on the witness family: D−Γ−{t} ̸|= q forces Γ to hit
// every witness not containing t, and D−Γ |= q requires some witness
// containing t to survive Γ untouched. So
//
//	k = min over witnesses w ∋ t of
//	    (minimum hitting set of {witnesses without t} avoiding w's tuples)
//
// which reuses the exact solver's branch-and-bound hitting machinery with
// a per-candidate forbidden set. ErrNotCounterfactual is returned when no
// contingency makes t counterfactual (t participates in no witness, or
// every choice of surviving witness forces an unbreakable remainder).
var ErrNotCounterfactual = errors.New("resilience: tuple is not a counterfactual cause under any contingency")

// Responsibility returns the minimum contingency size k making t a
// counterfactual cause of D |= q, and one optimal contingency set.
//
// It operates on the witness-hypergraph IR: t is endogenous, so a witness
// uses t exactly when t is in its endogenous tuple set, and the with-t /
// without-t split is a partition of the IR's rows.
func Responsibility(q *cq.Query, d *db.Database, t db.Tuple) (int, []db.Tuple, error) {
	return ResponsibilityCtx(context.Background(), q, d, t)
}

// ResponsibilityCtx is Responsibility with cooperative cancellation: both
// the witness enumeration and the per-candidate hitting-set searches poll
// ctx and abort with ctx.Err() once it is done.
func ResponsibilityCtx(ctx context.Context, q *cq.Query, d *db.Database, t db.Tuple) (int, []db.Tuple, error) {
	// Fail on bad probes before paying for witness enumeration; the same
	// checks in ResponsibilityOnInstance guard callers arriving with a
	// prebuilt (possibly cached) IR.
	if err := validateProbe(q, d, t); err != nil {
		return 0, nil, err
	}
	inst, err := witset.Build(ctx, q, d, nil)
	if err != nil {
		return 0, nil, err
	}
	return ResponsibilityOnInstance(ctx, inst, d, t)
}

// validateProbe rejects probe tuples that can never be causes for
// structural reasons: exogenous relations and absent tuples.
func validateProbe(q *cq.Query, d *db.Database, t db.Tuple) error {
	if q.IsExogenous(t.Rel) {
		return fmt.Errorf("resilience: %s is exogenous; only endogenous tuples can be causes", d.TupleString(t))
	}
	if !d.Has(t) {
		return fmt.Errorf("resilience: tuple %s not in database", d.TupleString(t))
	}
	return nil
}

// ResponsibilityOnInstance computes responsibility over a prebuilt
// witness-hypergraph IR, which is how the serving layer reuses one cached
// IR across many responsibility probes against the same (query, database)
// pair. d must be the database the instance was built from.
//
// The computation rides the decompose pipeline: t lives in exactly one
// connected component of the normalized family, the surviving-witness
// choice and its forbidden set only constrain that component, and every
// other component just needs its rows hit — contributing its plain minimum
// hitting set. So k = (in-component responsibility) + Σ other components'
// minima, with the candidate loop running over a component instead of the
// whole family.
func ResponsibilityOnInstance(ctx context.Context, inst *witset.Instance, d *db.Database, t db.Tuple) (int, []db.Tuple, error) {
	if err := validateProbe(inst.Query(), d, t); err != nil {
		return 0, nil, err
	}
	if inst.Unbreakable() {
		// A witness with no endogenous tuples can never be hit: t can never
		// become counterfactual.
		return 0, nil, ErrNotCounterfactual
	}
	tid, ok := inst.ID(t)
	if !ok {
		return 0, nil, ErrNotCounterfactual // t participates in no witness
	}

	comps := inst.Components()
	var home *witset.Component
	var localT int32
	for _, c := range comps {
		if lid, ok := searchGlobal(c.Global, tid); ok {
			home, localT = c, lid
			break
		}
	}
	if home == nil {
		// Every row containing t was a superset of some kept row without t:
		// any Γ avoiding a surviving witness w ∋ t would fail to hit w's
		// kept subset, so t can never be counterfactual.
		return 0, nil, ErrNotCounterfactual
	}

	poll := ctxpoll.New(ctx)
	localK, localGamma, err := responsibilityInFamily(ctx, poll, home.Fam, localT)
	if err != nil {
		return 0, nil, err
	}
	if localK < 0 {
		return 0, nil, ErrNotCounterfactual
	}
	k := localK
	gammaIDs := home.ToGlobal(localGamma)
	for _, c := range comps {
		if c == home {
			continue
		}
		size, ids, err := solveFamily(ctx, c.Fam, -1, Options{})
		if err != nil {
			return 0, nil, err
		}
		k += size
		gammaIDs = append(gammaIDs, c.ToGlobal(ids)...)
	}
	if k == 0 {
		return 0, nil, nil // t is counterfactual with the empty contingency
	}
	return k, inst.TupleSet(gammaIDs), nil
}

// responsibilityInFamily runs the per-candidate surviving-witness loop over
// one family: for each row containing t, forbid its elements and solve the
// minimum hitting set of the remaining t-free rows. Returns k = -1 when no
// candidate is feasible (t is not counterfactual within this family).
func responsibilityInFamily(ctx context.Context, poll *ctxpoll.Poller, fam *witset.Family, tid int32) (int, []int32, error) {
	var withT, withoutT [][]int32
	for _, row := range fam.Rows {
		uses := false
		for _, e := range row {
			if e == tid {
				uses = true
				break
			}
		}
		if uses {
			withT = append(withT, row)
		} else {
			withoutT = append(withoutT, row)
		}
	}
	if len(withT) == 0 {
		return -1, nil, nil
	}

	forbidden := witset.NewBits(fam.N)
	best := -1
	var bestGamma []int32
	for _, surviving := range withT {
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		// Forbid the surviving witness's tuples: drop them from every
		// row. A row left empty is unhittable for this choice.
		forbidden.Clear()
		for _, e := range surviving {
			forbidden.Set(e)
		}
		sub := make([][]int32, 0, len(withoutT))
		feasible := true
		for _, row := range withoutT {
			kept := make([]int32, 0, len(row))
			for _, e := range row {
				if !forbidden.Has(e) {
					kept = append(kept, e)
				}
			}
			if len(kept) == 0 {
				feasible = false
				break
			}
			sub = append(sub, kept)
		}
		if !feasible {
			continue
		}
		if len(sub) == 0 {
			return 0, nil, nil // empty contingency suffices within this family
		}
		budget := -1
		if best >= 0 {
			budget = best - 1
			if budget < 0 {
				break
			}
		}
		hs := newHittingSet(witset.NewFamily(sub, fam.N, false))
		hs.poll = poll
		size, chosen := hs.solve(budget)
		if err := poll.Err(); err != nil {
			return 0, nil, err
		}
		if chosen == nil {
			continue // exceeded budget
		}
		if best < 0 || size < best {
			best = size
			bestGamma = chosen
		}
	}
	return best, bestGamma, nil
}

// responsibilityMonolithic is the pre-pipeline computation over the raw
// rows of the whole instance, kept as the differential suite's oracle for
// pipeline ≡ monolithic parity.
func responsibilityMonolithic(ctx context.Context, inst *witset.Instance, d *db.Database, t db.Tuple) (int, []db.Tuple, error) {
	if err := validateProbe(inst.Query(), d, t); err != nil {
		return 0, nil, err
	}
	if inst.Unbreakable() {
		return 0, nil, ErrNotCounterfactual
	}
	tid, ok := inst.ID(t)
	if !ok {
		return 0, nil, ErrNotCounterfactual
	}
	poll := ctxpoll.New(ctx)
	rawFam := &witset.Family{N: inst.NumTuples(), Rows: inst.Rows()}
	k, gammaIDs, err := responsibilityInFamily(ctx, poll, rawFam, tid)
	if err != nil {
		return 0, nil, err
	}
	if k < 0 {
		return 0, nil, ErrNotCounterfactual
	}
	if k == 0 {
		return 0, nil, nil
	}
	return k, inst.TupleSet(gammaIDs), nil
}

// searchGlobal locates global id g in a component's sorted Global slice,
// returning its local id.
func searchGlobal(global []int32, g int32) (int32, bool) {
	lo, hi := 0, len(global)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case global[mid] == g:
			return int32(mid), true
		case global[mid] < g:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false
}
