package resilience

import (
	"errors"
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
)

// Responsibility implements the causality notion the paper builds on
// (Meliou, Gatterbauer, Moore, Suciu [31], cited in Sections 1 and 10):
// an endogenous tuple t is a counterfactual cause of D |= q under
// contingency Γ when D−Γ still satisfies q but D−Γ−{t} does not. The
// responsibility of t is 1/(1+k) for the minimum such |Γ| = k; this
// function returns that k together with one optimal contingency set.
//
// Characterization on the witness family: D−Γ−{t} ̸|= q forces Γ to hit
// every witness not containing t, and D−Γ |= q requires some witness
// containing t to survive Γ untouched. So
//
//	k = min over witnesses w ∋ t of
//	    (minimum hitting set of {witnesses without t} avoiding w's tuples)
//
// which reuses the exact solver's branch-and-bound hitting machinery with
// a per-candidate forbidden set. ErrNotCounterfactual is returned when no
// contingency makes t counterfactual (t participates in no witness, or
// every choice of surviving witness forces an unbreakable remainder).
var ErrNotCounterfactual = errors.New("resilience: tuple is not a counterfactual cause under any contingency")

// Responsibility returns the minimum contingency size k making t a
// counterfactual cause of D |= q, and one optimal contingency set.
func Responsibility(q *cq.Query, d *db.Database, t db.Tuple) (int, []db.Tuple, error) {
	if q.IsExogenous(t.Rel) {
		return 0, nil, fmt.Errorf("resilience: %s is exogenous; only endogenous tuples can be causes", d.TupleString(t))
	}
	if !d.Has(t) {
		return 0, nil, fmt.Errorf("resilience: tuple %s not in database", d.TupleString(t))
	}

	// Collect witness tuple sets, split by membership of t.
	var withT, withoutT [][]db.Tuple
	unbreakable := false
	eval.ForEachWitness(q, d, func(w eval.Witness) bool {
		all := eval.WitnessTuples(q, w, false)
		endo := eval.WitnessTuples(q, w, true)
		uses := false
		for _, tup := range all {
			if tup == t {
				uses = true
				break
			}
		}
		if uses {
			withT = append(withT, endo)
			return true
		}
		if len(endo) == 0 {
			// A witness with no endogenous tuples can never be hit: t can
			// never become counterfactual.
			unbreakable = true
			return false
		}
		withoutT = append(withoutT, endo)
		return true
	})
	if unbreakable || len(withT) == 0 {
		return 0, nil, ErrNotCounterfactual
	}

	// Intern the tuples of the witnesses that must be hit.
	idOf := map[db.Tuple]int32{}
	var tuples []db.Tuple
	fam := make([][]int32, len(withoutT))
	for i, s := range withoutT {
		row := make([]int32, len(s))
		for j, tup := range s {
			id, ok := idOf[tup]
			if !ok {
				id = int32(len(tuples))
				idOf[tup] = id
				tuples = append(tuples, tup)
			}
			row[j] = id
		}
		fam[i] = row
	}

	best := -1
	var bestGamma []db.Tuple
	for _, surviving := range withT {
		// Forbid the surviving witness's tuples: drop them from every
		// row. A row left empty is unhittable for this choice.
		forbidden := map[int32]bool{}
		for _, tup := range surviving {
			if id, ok := idOf[tup]; ok {
				forbidden[id] = true
			}
		}
		sub := make([][]int32, 0, len(fam))
		feasible := true
		for _, row := range fam {
			kept := make([]int32, 0, len(row))
			for _, id := range row {
				if !forbidden[id] {
					kept = append(kept, id)
				}
			}
			if len(kept) == 0 {
				feasible = false
				break
			}
			sub = append(sub, kept)
		}
		if !feasible {
			continue
		}
		if len(sub) == 0 {
			return 0, nil, nil // t is counterfactual with the empty contingency
		}
		budget := -1
		if best >= 0 {
			budget = best - 1
			if budget < 0 {
				break
			}
		}
		hs := newHittingSet(sub, len(tuples))
		size, chosen := hs.solve(budget)
		if chosen == nil {
			continue // exceeded budget
		}
		if best < 0 || size < best {
			best = size
			bestGamma = bestGamma[:0]
			for _, id := range chosen {
				bestGamma = append(bestGamma, tuples[id])
			}
		}
	}
	if best < 0 {
		return 0, nil, ErrNotCounterfactual
	}
	db.SortTuples(bestGamma)
	return best, bestGamma, nil
}
