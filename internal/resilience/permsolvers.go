package resilience

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/matching"
)

// This file implements the specialized PTIME solvers for the permutation
// and REP families (Propositions 33 and 36).

// SolvePermCount computes ρ for qperm-shaped queries R(x,y),R(y,x)
// (Proposition 33, first part): each tuple participates in exactly one
// witness, so the resilience equals the number of distinct witness tuple
// sets — one per mutual pair {R(a,b), R(b,a)} plus one per loop R(a,a).
func SolvePermCount(q *cq.Query, d *db.Database) (*Result, error) {
	rel := sjRelOf(q)
	r := d.Rel(rel)
	if r == nil {
		return &Result{Rho: 0, Method: "perm-count"}, nil
	}
	count := 0
	var gamma []db.Tuple
	for _, t := range r.Tuples() {
		a, b := t.Args[0], t.Args[1]
		if a == b {
			count++
			gamma = append(gamma, t)
			continue
		}
		if a < b && r.Has(db.NewTuple(rel, b, a)) {
			// Count each mutual pair once; deleting either tuple breaks
			// both orientations of the witness.
			count++
			gamma = append(gamma, t)
		}
	}
	return &Result{Rho: count, ContingencySet: gamma, Method: "perm-count", Witnesses: count}, nil
}

// SolvePermBipartiteVC computes ρ for qAperm-shaped queries
// A(x),R(x,y),R(y,x) (Proposition 33, second part) by reduction to minimum
// vertex cover in a bipartite graph: left vertices are A-tuples, right
// vertices are mutual R-pairs, and every witness connects its A-tuple to
// its pair. König's theorem turns a maximum matching into the cover.
func SolvePermBipartiteVC(q *cq.Query, d *db.Database) (*Result, error) {
	// Identify relations from the query shape: the repeated binary
	// relation and the unary one.
	rel := sjRelOf(q)
	unary := ""
	for _, rn := range q.Relations() {
		if rn != rel && q.Arity(rn) == 1 && !q.IsExogenous(rn) {
			unary = rn
		}
	}
	if unary == "" {
		return nil, fmt.Errorf("resilience: query %s lacks the unary bound of qAperm", q.Name)
	}

	leftID := map[db.Tuple]int{}
	var leftTuples []db.Tuple
	rightID := map[[2]db.Value]int{}
	var rightPairs [][2]db.Value
	type edge struct{ l, r int }
	var edges []edge

	witnesses := 0
	eval.ForEachWitness(q, d, func(w eval.Witness) bool {
		witnesses++
		ts := eval.WitnessTuples(q, w, true)
		var aT db.Tuple
		var pair [2]db.Value
		havePair := false
		for _, t := range ts {
			if t.Rel == unary {
				aT = t
			} else if t.Rel == rel {
				a, b := t.Args[0], t.Args[1]
				if a > b {
					a, b = b, a
				}
				pair = [2]db.Value{a, b}
				havePair = true
			}
		}
		if !havePair {
			return true
		}
		li, ok := leftID[aT]
		if !ok {
			li = len(leftTuples)
			leftID[aT] = li
			leftTuples = append(leftTuples, aT)
		}
		ri, ok := rightID[pair]
		if !ok {
			ri = len(rightPairs)
			rightID[pair] = ri
			rightPairs = append(rightPairs, pair)
		}
		edges = append(edges, edge{li, ri})
		return true
	})
	if witnesses == 0 {
		return &Result{Rho: 0, Method: "perm-bipartite-vc"}, nil
	}

	g := matching.NewBipartite(len(leftTuples), len(rightPairs))
	seen := map[edge]bool{}
	for _, e := range edges {
		if !seen[e] {
			seen[e] = true
			g.AddEdge(e.l, e.r)
		}
	}
	coverL, coverR, size := g.MinVertexCover()
	var gamma []db.Tuple
	for i, c := range coverL {
		if c {
			gamma = append(gamma, leftTuples[i])
		}
	}
	for i, c := range coverR {
		if c {
			// Deleting either orientation of the pair breaks all its
			// witnesses; pick the canonical one that exists.
			p := rightPairs[i]
			t := db.NewTuple(rel, p[0], p[1])
			if !d.Has(t) {
				t = db.NewTuple(rel, p[1], p[0])
			}
			gamma = append(gamma, t)
		}
	}
	db.SortTuples(gamma)
	return &Result{Rho: size, ContingencySet: gamma, Method: "perm-bipartite-vc", Witnesses: witnesses}, nil
}

// SolveREPFlow computes ρ for z3-shaped queries R(x,x),R(x,y),A(y)
// (Proposition 36): off-diagonal R-tuples are never needed in minimum
// contingency sets, so every witness reduces to {R(a,a), A(b)} and the
// problem becomes bipartite vertex cover between loops and A-tuples.
func SolveREPFlow(q *cq.Query, d *db.Database) (*Result, error) {
	rel := sjRelOf(q)
	unary := ""
	for _, rn := range q.Relations() {
		if rn != rel && q.Arity(rn) == 1 && !q.IsExogenous(rn) {
			unary = rn
		}
	}
	if unary == "" {
		return nil, fmt.Errorf("resilience: query %s lacks the unary atom of z3", q.Name)
	}

	loopID := map[db.Tuple]int{}
	var loops []db.Tuple
	aID := map[db.Tuple]int{}
	var aTuples []db.Tuple
	type edge struct{ l, r int }
	edgeSet := map[edge]bool{}

	witnesses := 0
	eval.ForEachWitness(q, d, func(w eval.Witness) bool {
		witnesses++
		ts := eval.WitnessTuples(q, w, true)
		var loop, aT db.Tuple
		haveLoop := false
		for _, t := range ts {
			if t.Rel == rel && t.Args[0] == t.Args[1] {
				loop = t
				haveLoop = true
			} else if t.Rel == unary {
				aT = t
			}
		}
		if !haveLoop {
			return true
		}
		li, ok := loopID[loop]
		if !ok {
			li = len(loops)
			loopID[loop] = li
			loops = append(loops, loop)
		}
		ri, ok := aID[aT]
		if !ok {
			ri = len(aTuples)
			aID[aT] = ri
			aTuples = append(aTuples, aT)
		}
		edgeSet[edge{li, ri}] = true
		return true
	})
	if witnesses == 0 {
		return &Result{Rho: 0, Method: "rep-bipartite-flow"}, nil
	}

	g := matching.NewBipartite(len(loops), len(aTuples))
	for e := range edgeSet {
		g.AddEdge(e.l, e.r)
	}
	coverL, coverR, size := g.MinVertexCover()
	var gamma []db.Tuple
	for i, c := range coverL {
		if c {
			gamma = append(gamma, loops[i])
		}
	}
	for i, c := range coverR {
		if c {
			gamma = append(gamma, aTuples[i])
		}
	}
	db.SortTuples(gamma)
	return &Result{Rho: size, ContingencySet: gamma, Method: "rep-bipartite-flow", Witnesses: witnesses}, nil
}

// sjRelOf returns the endogenous repeated relation of q (panicking if none:
// the dispatcher guarantees the shape).
func sjRelOf(q *cq.Query) string {
	for _, r := range q.SelfJoinRelations() {
		if !q.IsExogenous(r) {
			return r
		}
	}
	panic("resilience: query has no endogenous self-join relation")
}
