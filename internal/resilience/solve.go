package resilience

import (
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
)

// Solve computes ρ(q, D) with the fastest sound algorithm: it classifies q
// (Theorem 37 and friends), dispatches PTIME instances to their dedicated
// solvers, and falls back to the exact branch-and-bound everywhere else.
// The returned classification explains the choice.
//
// Disconnected queries follow Lemma 14: ρ is the minimum over components.
// Minimization and domination-normalization are sound for resilience by
// Section 4.1 and Proposition 18 respectively, so solving happens on the
// normalized form.
func Solve(q *cq.Query, d *db.Database) (*Result, *core.Classification, error) {
	cl := core.Classify(q)
	if len(cl.Components) > 1 {
		// Lemma 14: minimum over components.
		var best *Result
		for _, sub := range cl.Components {
			res, err := solveClassified(sub, d)
			if err == ErrUnbreakable {
				continue // this component cannot be falsified; others may
			}
			if err != nil {
				return nil, cl, err
			}
			if best == nil || res.Rho < best.Rho {
				best = res
			}
		}
		if best == nil {
			return nil, cl, ErrUnbreakable
		}
		return best, cl, nil
	}
	res, err := solveClassified(cl, d)
	return res, cl, err
}

func solveClassified(cl *core.Classification, d *db.Database) (*Result, error) {
	q := cl.Normalized
	switch cl.Algorithm {
	case core.AlgTrivial:
		if eval.Satisfied(q, d) {
			return nil, ErrUnbreakable
		}
		return &Result{Rho: 0, Method: "trivial"}, nil
	case core.AlgLinearFlow:
		res, err := LinearFlow(q, d)
		if err == ErrNotLinear {
			return Exact(q, d)
		}
		return res, err
	case core.AlgPermCount:
		return SolvePermCount(q, d)
	case core.AlgPermBipartiteVC:
		return SolvePermBipartiteVC(q, d)
	case core.AlgPerm3Flow:
		return SolvePerm3Flow(q, d)
	case core.AlgREPFlow:
		return SolveREPFlow(q, d)
	case core.AlgTS3confFlow:
		return SolveTS3conf(q, d)
	default:
		return Exact(q, d)
	}
}
