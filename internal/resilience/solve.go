package resilience

import (
	"context"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
)

// Solve computes ρ(q, D) with the fastest sound algorithm: it classifies q
// (Theorem 37 and friends), dispatches PTIME instances to their dedicated
// solvers, and falls back to the exact branch-and-bound everywhere else.
// The returned classification explains the choice.
//
// Disconnected queries follow Lemma 14: ρ is the minimum over components.
// Minimization and domination-normalization are sound for resilience by
// Section 4.1 and Proposition 18 respectively, so solving happens on the
// normalized form.
func Solve(q *cq.Query, d *db.Database) (*Result, *core.Classification, error) {
	return SolveCtx(context.Background(), q, d)
}

// SolveCtx is Solve with cooperative cancellation: the exact fallback polls
// ctx and aborts with ctx.Err() once it is done. The PTIME solvers run to
// completion (they are polynomial and fast in practice); ctx is checked
// between components.
func SolveCtx(ctx context.Context, q *cq.Query, d *db.Database) (*Result, *core.Classification, error) {
	cl := core.Classify(q)
	res, err := SolveClassifiedCtx(ctx, cl, d)
	return res, cl, err
}

// SolveClassified dispatches an already-classified query to its solver,
// including the Lemma 14 minimum over connected components. Callers that
// cache classifications (e.g. the engine) use this to skip re-classifying.
func SolveClassified(cl *core.Classification, d *db.Database) (*Result, error) {
	return SolveClassifiedCtx(context.Background(), cl, d)
}

// SolveClassifiedCtx is SolveClassified with cooperative cancellation.
func SolveClassifiedCtx(ctx context.Context, cl *core.Classification, d *db.Database) (*Result, error) {
	return SolveClassifiedWith(ctx, cl, d, solveClassified)
}

// ComponentSolver solves one connected (single-component) classified
// query. The engine substitutes its portfolio here.
type ComponentSolver func(ctx context.Context, cl *core.Classification, d *db.Database) (*Result, error)

// SolveClassifiedWith applies solve per connected component and takes the
// Lemma 14 minimum: an unbreakable component is skipped (others may still
// falsify the query), and ρ is the smallest component ρ. This is the one
// copy of the component logic; the engine reuses it with its portfolio as
// the component solver.
func SolveClassifiedWith(ctx context.Context, cl *core.Classification, d *db.Database, solve ComponentSolver) (*Result, error) {
	if len(cl.Components) > 1 {
		// Lemma 14: minimum over components.
		var best *Result
		for _, sub := range cl.Components {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := solve(ctx, sub, d)
			if err == ErrUnbreakable {
				continue // this component cannot be falsified; others may
			}
			if err != nil {
				return nil, err
			}
			if best == nil || res.Rho < best.Rho {
				best = res
			}
		}
		if best == nil {
			return nil, ErrUnbreakable
		}
		return best, nil
	}
	return solve(ctx, cl, d)
}

func solveClassified(ctx context.Context, cl *core.Classification, d *db.Database) (*Result, error) {
	q := cl.Normalized
	switch cl.Algorithm {
	case core.AlgTrivial:
		if eval.Satisfied(q, d) {
			return nil, ErrUnbreakable
		}
		return &Result{Rho: 0, Method: "trivial"}, nil
	case core.AlgLinearFlow:
		res, err := LinearFlow(q, d)
		if err == ErrNotLinear {
			return ExactCtx(ctx, q, d, -1)
		}
		return res, err
	case core.AlgPermCount:
		return SolvePermCount(q, d)
	case core.AlgPermBipartiteVC:
		return SolvePermBipartiteVC(q, d)
	case core.AlgPerm3Flow:
		return SolvePerm3Flow(q, d)
	case core.AlgREPFlow:
		return SolveREPFlow(q, d)
	case core.AlgTS3confFlow:
		return SolveTS3conf(q, d)
	default:
		return ExactCtx(ctx, q, d, -1)
	}
}
