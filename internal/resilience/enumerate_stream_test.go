package resilience

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/witset"
)

// famKey canonicalizes a set family for order-insensitive comparison.
func famKey(d *db.Database, sets [][]db.Tuple) []string {
	out := make([]string, len(sets))
	for i, set := range sets {
		parts := make([]string, len(set))
		for j, t := range set {
			parts[j] = d.TupleString(t)
		}
		sort.Strings(parts)
		key := ""
		for _, p := range parts {
			key += p + ";"
		}
		out[i] = key
	}
	sort.Strings(out)
	return out
}

// TestDifferentialEnumerateStreamVsCollected: on random single- and
// multi-component instances, the streaming enumeration must emit exactly
// the sets the collected enumeration returns, with the same ρ.
func TestDifferentialEnumerateStreamVsCollected(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	cases := []struct {
		name  string
		query string
		gen   func() *db.Database
	}{
		{"chain", "q :- R(x,y), R(y,z)", func() *db.Database { return datagen.ChainDB(rng, 9, 4) }},
		{"many-component", "q :- R(x,y), R(y,z)", func() *db.Database {
			return datagen.ManyComponentChainDB(rng, 4, 3, 7)
		}},
		{"confluence", "q :- A(x), R(x,y), R(z,y), C(z)", func() *db.Database {
			return datagen.ConfluenceDB(rng, 3, 3, 2)
		}},
	}
	for _, c := range cases {
		q := cq.MustParse(c.query)
		for round := 0; round < 5; round++ {
			d := c.gen()
			inst, err := witset.Build(context.Background(), q, d, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantRho, wantSets, err := EnumerateMinimumOnInstance(context.Background(), inst, d, 0)
			if err != nil {
				t.Fatalf("%s[%d]: collected: %v", c.name, round, err)
			}
			var got [][]db.Tuple
			rho, n, err := EnumerateMinimumFunc(context.Background(), inst, d, 0,
				func(r int, set []db.Tuple) error {
					if r != wantRho {
						t.Fatalf("%s[%d]: emitted rho %d, want %d", c.name, round, r, wantRho)
					}
					got = append(got, set)
					return nil
				})
			if err != nil {
				t.Fatalf("%s[%d]: streaming: %v", c.name, round, err)
			}
			if rho != wantRho || n != len(got) {
				t.Fatalf("%s[%d]: rho=%d n=%d, want rho=%d n=%d", c.name, round, rho, n, wantRho, len(got))
			}
			if !reflect.DeepEqual(famKey(d, got), famKey(d, wantSets)) {
				t.Fatalf("%s[%d]: streamed family != collected family (%d vs %d sets)",
					c.name, round, len(got), len(wantSets))
			}
		}
	}
}

// TestEnumerateStreamCapAndAbort: maxSets caps emission, and an emit
// error aborts the search and is returned unchanged.
func TestEnumerateStreamCapAndAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := cq.MustParse("q :- R(x,y), R(y,z)")
	d := datagen.ChainDB(rng, 11, 5)
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, total, err := EnumerateMinimumFunc(context.Background(), inst, d, 0,
		func(int, []db.Tuple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if total < 2 {
		t.Skipf("instance has %d minimum sets; need >= 2 for the cap test", total)
	}

	count := 0
	_, n, err := EnumerateMinimumFunc(context.Background(), inst, d, 1,
		func(int, []db.Tuple) error { count++; return nil })
	if err != nil || n != 1 || count != 1 {
		t.Fatalf("maxSets=1: n=%d count=%d err=%v, want exactly one emission", n, count, err)
	}

	boom := errors.New("client went away")
	_, _, err = EnumerateMinimumFunc(context.Background(), inst, d, 0,
		func(int, []db.Tuple) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("emit error not propagated: %v", err)
	}
}

// TestEnumerateStreamCancellation: a context cancelled after the first
// emissions stops the enumeration promptly with the context's error — the
// mechanism the serving layer relies on when a streaming client
// disconnects.
func TestEnumerateStreamCancellation(t *testing.T) {
	// K disjoint 2-edge paths: each contributes one witness {e1, e2} with
	// ρ = 1 and two minimum sets, so the instance has 2^K minimum
	// contingency sets — far more than the cancelled stream may emit.
	const K = 18
	d := db.New()
	for i := 0; i < K; i++ {
		a, b, c := 3*i, 3*i+1, 3*i+2
		d.AddNames("R", datagen.ConstName(a), datagen.ConstName(b))
		d.AddNames("R", datagen.ConstName(b), datagen.ConstName(c))
	}
	q := cq.MustParse("q :- R(x,y), R(y,z)")
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emitted := 0
	_, _, err = EnumerateMinimumFunc(ctx, inst, d, 0, func(int, []db.Tuple) error {
		emitted++
		if emitted == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted < 3 {
		t.Fatalf("emitted %d sets before cancel, want >= 3", emitted)
	}
	// Cancellation latency is bounded by the poll interval, so the stream
	// must stop after a tiny fraction of the 2^K sets.
	if emitted > 3+4096 {
		t.Fatalf("emitted %d sets after cancel; cancellation did not stop the cross product", emitted)
	}
}
