package resilience

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cq"
	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/witset"
)

// ErrUnbreakable is returned when some witness consists purely of exogenous
// tuples, so no set of endogenous deletions can falsify the query.
var ErrUnbreakable = errors.New("resilience: query cannot be falsified by endogenous deletions")

// Result is the outcome of a resilience computation.
type Result struct {
	// Rho is ρ(q, D), the size of a minimum contingency set.
	Rho int
	// ContingencySet is one optimal contingency set (nil when Rho == 0).
	ContingencySet []db.Tuple
	// Method names the algorithm that produced the result.
	Method string
	// Witnesses is the number of witnesses enumerated.
	Witnesses int
}

// Exact computes ρ(q, D) exactly for any conjunctive query by reducing to
// minimum hitting set over the witnesses' endogenous tuple sets.
func Exact(q *cq.Query, d *db.Database) (*Result, error) {
	return ExactWithBudget(q, d, -1)
}

// ExactWithBudget is Exact with an optional search cutoff: if budget >= 0
// and ρ > budget, the returned Result has Rho = budget+1 and a nil
// contingency set (sufficient for deciding (D,k) ∈ RES(q)).
func ExactWithBudget(q *cq.Query, d *db.Database, budget int) (*Result, error) {
	return exactFiltered(context.Background(), q, d, budget, nil)
}

// ExactCtx is ExactWithBudget with cooperative cancellation: both the
// witness enumeration and the branch-and-bound search poll ctx and abort
// with ctx.Err() once it is done. It is the cancellable entry point used by
// the engine's per-instance timeouts and portfolio racing.
func ExactCtx(ctx context.Context, q *cq.Query, d *db.Database, budget int) (*Result, error) {
	return exactFiltered(ctx, q, d, budget, nil)
}

// ExactFiltered computes the minimum number of endogenous deletions that
// remove every witness accepted by keep (nil keeps all). This generalizes
// resilience to deletion propagation with source side-effects: filtering
// witnesses to those that produce a given output tuple yields exactly the
// minimum source-side deletion for that tuple, with self-joins handled
// soundly because tuple identity is preserved.
func ExactFiltered(q *cq.Query, d *db.Database, keep func(eval.Witness) bool) (*Result, error) {
	return exactFiltered(context.Background(), q, d, -1, keep)
}

func exactFiltered(ctx context.Context, q *cq.Query, d *db.Database, budget int, keep func(eval.Witness) bool) (*Result, error) {
	inst, err := witset.Build(ctx, q, d, keep)
	if err != nil {
		return nil, err
	}
	return solveInstance(ctx, inst, budget, "exact", false, false)
}

// ExactOnInstance computes ρ over a prebuilt witness-hypergraph IR, which
// is how callers that already paid for witness enumeration — the engine's
// portfolio, cross-checks against the SAT oracle — avoid enumerating again.
func ExactOnInstance(ctx context.Context, inst *witset.Instance, budget int) (*Result, error) {
	return solveInstance(ctx, inst, budget, "exact", false, false)
}

// solveInstance is the one branch-and-bound entry point: every exact-path
// API lands here with an IR in hand.
func solveInstance(ctx context.Context, inst *witset.Instance, budget int, method string, keepSupersets, noLowerBound bool) (*Result, error) {
	if inst.Unbreakable() {
		return nil, ErrUnbreakable
	}
	if inst.NumWitnesses() == 0 {
		return &Result{Rho: 0, Method: method, Witnesses: 0}, nil
	}
	hs := newHittingSet(inst.Family(keepSupersets))
	hs.noLowerBound = noLowerBound
	hs.poll = ctxpoll.New(ctx)
	size, chosen := hs.solve(budget)
	if err := hs.poll.Err(); err != nil {
		return nil, err
	}
	res := &Result{Rho: size, Method: method, Witnesses: inst.NumWitnesses()}
	if chosen != nil {
		res.ContingencySet = inst.TupleSet(chosen)
	}
	return res, nil
}

// Options are ablation switches for the exact solver, used by the
// benchmark harness to quantify the branch-and-bound design choices that
// DESIGN.md calls out (packing lower bound, superset elimination).
type Options struct {
	// DisableLowerBound replaces the disjoint-packing bound by the trivial
	// bound 1.
	DisableLowerBound bool
	// KeepSupersets skips the superset-elimination preprocessing.
	KeepSupersets bool
}

// ExactWithOptions is Exact with ablation switches; results are identical,
// only the search effort differs.
func ExactWithOptions(q *cq.Query, d *db.Database, opts Options) (*Result, error) {
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		return nil, err
	}
	return solveInstance(context.Background(), inst, -1, "exact-ablation", opts.KeepSupersets, opts.DisableLowerBound)
}

// Decide reports whether (D, k) ∈ RES(q): D |= q and some contingency set
// of size ≤ k exists (Definition 1).
func Decide(q *cq.Query, d *db.Database, k int) (bool, error) {
	if !eval.Satisfied(q, d) {
		return false, nil
	}
	res, err := ExactWithBudget(q, d, k)
	if err != nil {
		return false, err
	}
	return res.Rho <= k, nil
}

// VerifyContingency checks that deleting the given tuples falsifies q on d
// and that all tuples are endogenous and present. It restores d before
// returning.
func VerifyContingency(q *cq.Query, d *db.Database, gamma []db.Tuple) error {
	mark := d.RestoreMark()
	defer d.RestoreTo(mark)
	for _, t := range gamma {
		if q.IsExogenous(t.Rel) {
			return fmt.Errorf("resilience: contingency set contains exogenous tuple %s", d.TupleString(t))
		}
		if !d.Has(t) {
			return fmt.Errorf("resilience: contingency set tuple %s not in database", d.TupleString(t))
		}
		d.Delete(t)
	}
	if eval.Satisfied(q, d) {
		return errors.New("resilience: query still satisfied after deleting contingency set")
	}
	return nil
}
