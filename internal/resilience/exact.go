package resilience

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/witset"
)

// ErrUnbreakable is returned when some witness consists purely of exogenous
// tuples, so no set of endogenous deletions can falsify the query.
var ErrUnbreakable = errors.New("resilience: query cannot be falsified by endogenous deletions")

// Result is the outcome of a resilience computation.
type Result struct {
	// Rho is ρ(q, D), the size of a minimum contingency set.
	Rho int
	// ContingencySet is one optimal contingency set (nil when Rho == 0).
	ContingencySet []db.Tuple
	// Method names the algorithm that produced the result.
	Method string
	// Witnesses is the number of witnesses enumerated.
	Witnesses int
}

// Exact computes ρ(q, D) exactly for any conjunctive query by reducing to
// minimum hitting set over the witnesses' endogenous tuple sets. The
// reduction runs through the kernel+decompose pipeline: the witness family
// is kernelized (unit-row forcing, dominated-tuple elimination), split into
// connected components, and each component is solved independently — the
// component minima add, so one big search becomes several small ones.
func Exact(q *cq.Query, d *db.Database) (*Result, error) {
	return ExactWithBudget(q, d, -1)
}

// ExactWithBudget is Exact with an optional search cutoff: if budget >= 0
// and ρ > budget, the returned Result has Rho = budget+1 and a nil
// contingency set (sufficient for deciding (D,k) ∈ RES(q)).
func ExactWithBudget(q *cq.Query, d *db.Database, budget int) (*Result, error) {
	return exactFiltered(context.Background(), q, d, budget, nil)
}

// ExactCtx is ExactWithBudget with cooperative cancellation: both the
// witness enumeration and the branch-and-bound search poll ctx and abort
// with ctx.Err() once it is done. It is the cancellable entry point used by
// the engine's per-instance timeouts and portfolio racing.
func ExactCtx(ctx context.Context, q *cq.Query, d *db.Database, budget int) (*Result, error) {
	return exactFiltered(ctx, q, d, budget, nil)
}

// ExactFiltered computes the minimum number of endogenous deletions that
// remove every witness accepted by keep (nil keeps all). This generalizes
// resilience to deletion propagation with source side-effects: filtering
// witnesses to those that produce a given output tuple yields exactly the
// minimum source-side deletion for that tuple, with self-joins handled
// soundly because tuple identity is preserved.
func ExactFiltered(q *cq.Query, d *db.Database, keep func(eval.Witness) bool) (*Result, error) {
	return exactFiltered(context.Background(), q, d, -1, keep)
}

func exactFiltered(ctx context.Context, q *cq.Query, d *db.Database, budget int, keep func(eval.Witness) bool) (*Result, error) {
	inst, err := witset.Build(ctx, q, d, keep)
	if err != nil {
		return nil, err
	}
	return solveInstance(ctx, inst, budget, "exact", Options{})
}

// ExactOnInstance computes ρ over a prebuilt witness-hypergraph IR, which
// is how callers that already paid for witness enumeration — the engine's
// portfolio, cross-checks against the SAT oracle — avoid enumerating again.
func ExactOnInstance(ctx context.Context, inst *witset.Instance, budget int) (*Result, error) {
	return solveInstance(ctx, inst, budget, "exact", Options{})
}

// solveInstance is the one exact-path entry point: every exact API lands
// here with an IR in hand. Unless opts force the monolithic solver, it runs
// the kernel+decompose pipeline: kernelize the normalized family, split the
// kernel into connected components, solve each component independently, and
// assemble ρ as forced + Σ component minima (additivity: components share
// no elements, so hitting sets combine disjointly).
func solveInstance(ctx context.Context, inst *witset.Instance, budget int, method string, opts Options) (*Result, error) {
	if inst.Unbreakable() {
		return nil, ErrUnbreakable
	}
	if inst.NumWitnesses() == 0 {
		return &Result{Rho: 0, Method: method, Witnesses: inst.NumWitnesses()}, nil
	}
	if opts.Monolithic || opts.KeepSupersets {
		// KeepSupersets measures the raw family, which the kernel would
		// immediately re-normalize, so it implies the monolithic path.
		size, chosen, err := solveFamily(ctx, inst.Family(opts.KeepSupersets), budget, opts)
		if err != nil {
			return nil, err
		}
		res := &Result{Rho: size, Method: method, Witnesses: inst.NumWitnesses()}
		if chosen != nil {
			res.ContingencySet = inst.TupleSet(chosen)
		}
		return res, nil
	}

	kern, err := inst.KernelCtx(ctx)
	if err != nil {
		return nil, err
	}
	chosen := append([]int32(nil), kern.Forced...)
	rho := len(chosen)
	over := func() *Result {
		return &Result{Rho: budget + 1, Method: method, Witnesses: inst.NumWitnesses()}
	}
	if budget >= 0 && rho > budget {
		return over(), nil
	}
	comps := kern.Components()
	for ci, c := range comps {
		b := -1
		if budget >= 0 {
			// Every component still unsolved needs at least one deletion
			// (its family is non-empty), so this component may use at most
			// what remains after reserving one per pending sibling.
			b = budget - rho - (len(comps) - ci - 1)
			if b < 0 {
				return over(), nil
			}
		}
		size, ids, err := solveFamily(ctx, c.Fam, b, opts)
		if err != nil {
			return nil, err
		}
		if b >= 0 && size > b {
			return over(), nil
		}
		rho += size
		chosen = append(chosen, c.ToGlobal(ids)...)
	}
	res := &Result{Rho: rho, Method: method, Witnesses: inst.NumWitnesses()}
	if rho > 0 {
		res.ContingencySet = inst.TupleSet(chosen)
	}
	return res, nil
}

// Options are ablation switches for the exact solver, used by the
// benchmark harness and the differential suite to quantify the design
// choices DESIGN.md calls out (packing lower bound, superset elimination,
// and the kernel+decompose pipeline).
type Options struct {
	// DisableLowerBound replaces the disjoint-packing bound by the trivial
	// bound 1 (applies to the monolithic search and to every per-component
	// search alike).
	DisableLowerBound bool
	// DisableLPBound turns off the LP-relaxation dual-greedy bound, leaving
	// whatever DisableLowerBound left of the packing bound. The two switches
	// are independent, so the ablation matrix covers all four corners of the
	// bound hierarchy.
	DisableLPBound bool
	// KeepSupersets skips the superset-elimination preprocessing. It
	// implies Monolithic: the kernel starts from the normalized family.
	KeepSupersets bool
	// Monolithic skips the kernel+decompose pipeline and attacks the whole
	// family with one branch-and-bound, which is both the pre-pipeline
	// behavior and the differential suite's oracle for pipeline ≡
	// monolithic.
	Monolithic bool
}

// ExactWithOptions is Exact with ablation switches; results are identical,
// only the search effort differs.
func ExactWithOptions(q *cq.Query, d *db.Database, opts Options) (*Result, error) {
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		return nil, err
	}
	return solveInstance(context.Background(), inst, -1, "exact-ablation", opts)
}

// Decide reports whether (D, k) ∈ RES(q): D |= q and some contingency set
// of size ≤ k exists (Definition 1).
func Decide(q *cq.Query, d *db.Database, k int) (bool, error) {
	return DecideCtx(context.Background(), q, d, k)
}

// DecideCtx is Decide with cooperative cancellation. It routes through the
// witness-hypergraph IR: satisfaction, unbreakability and the budgeted
// search all read one witness enumeration instead of evaluating the query
// separately first.
func DecideCtx(ctx context.Context, q *cq.Query, d *db.Database, k int) (bool, error) {
	inst, err := witset.Build(ctx, q, d, nil)
	if err != nil {
		return false, err
	}
	return DecideOnInstance(ctx, inst, k)
}

// DecideOnInstance decides (D, k) ∈ RES(q) over a prebuilt IR, which is how
// callers holding a cached instance (the engine's cross-request IR cache)
// answer membership queries without re-enumerating witnesses. D |= q is a
// property of the IR: the query is satisfied iff any witness was seen.
func DecideOnInstance(ctx context.Context, inst *witset.Instance, k int) (bool, error) {
	if inst.Unbreakable() {
		return false, ErrUnbreakable
	}
	if inst.NumWitnesses() == 0 {
		return false, nil // D does not satisfy q
	}
	res, err := ExactOnInstance(ctx, inst, k)
	if err != nil {
		return false, err
	}
	return res.Rho <= k, nil
}

// VerifyContingency checks that deleting the given tuples falsifies q on d
// and that all tuples are endogenous and present. It never mutates d: the
// check runs on the witness-hypergraph IR, where a deletion set falsifies
// the query exactly when it hits every witness's endogenous tuple set.
func VerifyContingency(q *cq.Query, d *db.Database, gamma []db.Tuple) error {
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		return err
	}
	return VerifyContingencyOnInstance(inst, d, gamma)
}

// VerifyContingencyOnInstance is VerifyContingency over a prebuilt IR; d
// must be the database the instance was built from (it validates tuple
// presence and renders error messages).
func VerifyContingencyOnInstance(inst *witset.Instance, d *db.Database, gamma []db.Tuple) error {
	q := inst.Query()
	hit := witset.NewBits(inst.NumTuples())
	for _, t := range gamma {
		if q.IsExogenous(t.Rel) {
			return fmt.Errorf("resilience: contingency set contains exogenous tuple %s", d.TupleString(t))
		}
		if !d.Has(t) {
			return fmt.Errorf("resilience: contingency set tuple %s not in database", d.TupleString(t))
		}
		if id, ok := inst.ID(t); ok {
			hit.Set(id)
		}
	}
	if inst.Unbreakable() {
		return errors.New("resilience: query still satisfied after deleting contingency set")
	}
	for _, row := range inst.Rows() {
		rowHit := false
		for _, e := range row {
			if hit.Has(e) {
				rowHit = true
				break
			}
		}
		if !rowHit {
			return errors.New("resilience: query still satisfied after deleting contingency set")
		}
	}
	return nil
}
