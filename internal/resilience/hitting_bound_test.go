package resilience

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/witset"
)

// TestBoundHierarchyAdmissible pins the two lower bounds and the greedy
// upper bound against the exact optimum on random families: pack ≤ ρ,
// lp ≤ ρ, greedy ≥ ρ, and greedy's output actually hits every row. Any
// violation would make the branch-and-bound prune an optimal solution (lower
// bounds) or start from an invalid incumbent (upper bound).
func TestBoundHierarchyAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(12)
		raw := make([][]int32, 0, 1+rng.Intn(2*n))
		for i := 0; i < cap(raw); i++ {
			size := 1 + rng.Intn(4)
			row := make([]int32, 0, size)
			for j := 0; j < size; j++ {
				row = append(row, int32(rng.Intn(n)))
			}
			raw = append(raw, row)
		}
		fam := witset.NewFamily(raw, n, false)
		if len(fam.Rows) == 0 {
			continue
		}

		opt, _, err := SolveFamily(context.Background(), fam, -1)
		if err != nil {
			t.Fatal(err)
		}

		h := newHittingSet(fam)
		if pack := h.lowerBound(); pack > opt {
			t.Fatalf("trial %d: packing bound %d > optimum %d (rows %v)", trial, pack, opt, fam.Rows)
		}
		if lp := h.lpBound(); lp > opt {
			t.Fatalf("trial %d: LP bound %d > optimum %d (rows %v)", trial, lp, opt, fam.Rows)
		}

		greedy := h.greedy()
		if len(greedy) < opt {
			t.Fatalf("trial %d: greedy %d below optimum %d", trial, len(greedy), opt)
		}
		hit := make([]bool, len(fam.Rows))
		for _, e := range greedy {
			for _, si := range fam.Occ[e] {
				hit[si] = true
			}
		}
		for si, ok := range hit {
			if !ok {
				t.Fatalf("trial %d: greedy set %v misses row %v", trial, greedy, fam.Rows[si])
			}
		}
	}
}

// TestWeightedBoundHierarchyAdmissible is the bound hierarchy under random
// weight vectors: weighted packing ≤ ρ_w, weighted LP dual-greedy ≤ ρ_w,
// coverage-per-cost greedy ≥ ρ_w with every row hit. With all weights 1
// this degenerates to TestBoundHierarchyAdmissible; the random costs are
// what exercise the per-cost normalization in each bound.
func TestWeightedBoundHierarchyAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(919))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(12)
		raw := make([][]int32, 0, 1+rng.Intn(2*n))
		for i := 0; i < cap(raw); i++ {
			size := 1 + rng.Intn(4)
			row := make([]int32, 0, size)
			for j := 0; j < size; j++ {
				row = append(row, int32(rng.Intn(n)))
			}
			raw = append(raw, row)
		}
		fam := witset.NewFamily(raw, n, false)
		if len(fam.Rows) == 0 {
			continue
		}
		w := make([]int64, n)
		for i := range w {
			w[i] = 1 + rng.Int63n(9)
		}
		fam.W = w

		opt, _, err := SolveFamilyWeighted(context.Background(), fam, -1)
		if err != nil {
			t.Fatal(err)
		}

		h := newWeightedHittingSet(fam)
		if pack := h.lowerBound(); pack > opt {
			t.Fatalf("trial %d: weighted packing bound %d > optimum %d (rows %v, w %v)",
				trial, pack, opt, fam.Rows, w)
		}
		if lp := h.lpBound(); lp > opt {
			t.Fatalf("trial %d: weighted LP bound %d > optimum %d (rows %v, w %v)",
				trial, lp, opt, fam.Rows, w)
		}

		greedy := witset.GreedyHittingSetWeighted(fam)
		cost := int64(0)
		for _, e := range greedy {
			cost += w[e]
		}
		if cost < opt {
			t.Fatalf("trial %d: greedy cost %d below optimum %d", trial, cost, opt)
		}
		hit := make([]bool, len(fam.Rows))
		for _, e := range greedy {
			for _, si := range fam.Occ[e] {
				hit[si] = true
			}
		}
		for si, ok := range hit {
			if !ok {
				t.Fatalf("trial %d: greedy set %v misses row %v", trial, greedy, fam.Rows[si])
			}
		}
	}
}

// TestLPBoundCanExceedPacking documents why the LP bound earns its place in
// the hierarchy: on the triangle family {a,b},{b,c},{a,c} only one row packs
// disjointly (bound 1) while the fractional duals sum to 3/2, which rounds
// up to the true optimum 2.
func TestLPBoundCanExceedPacking(t *testing.T) {
	fam := witset.NewFamily([][]int32{{0, 1}, {1, 2}, {0, 2}}, 3, false)
	h := newHittingSet(fam)
	pack, lp := h.lowerBound(), h.lpBound()
	if pack != 1 {
		t.Fatalf("packing bound on triangle = %d, want 1", pack)
	}
	if lp != 2 {
		t.Fatalf("LP bound on triangle = %d, want 2", lp)
	}
}
