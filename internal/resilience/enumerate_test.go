package resilience

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
)

func TestEnumerateMinimumChainExample(t *testing.T) {
	// Witness tuple sets: {t1,t2}, {t2,t3}, {t3}. t3 is forced (singleton
	// witness); the other slot is t1 or t2: exactly two optimal sets.
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	t1 := d.AddNames("R", "1", "2")
	t2 := d.AddNames("R", "2", "3")
	t3 := d.AddNames("R", "3", "3")

	rho, sets, err := EnumerateMinimum(q, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rho != 2 || len(sets) != 2 {
		t.Fatalf("rho=%d, %d sets, want 2 and 2: %v", rho, len(sets), sets)
	}
	want := map[db.Tuple]bool{t1: false, t2: false}
	for _, s := range sets {
		if len(s) != 2 {
			t.Fatalf("set %v has size %d", s, len(s))
		}
		hasT3 := false
		for _, tup := range s {
			if tup == t3 {
				hasT3 = true
			} else {
				want[tup] = true
			}
		}
		if !hasT3 {
			t.Fatalf("set %v misses the forced tuple R(3,3)", s)
		}
	}
	if !want[t1] || !want[t2] {
		t.Fatalf("expected one set with R(1,2) and one with R(2,3): %v", sets)
	}
}

func TestEnumerateMinimumCap(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	d := db.New()
	// A star: center c with 3 leaves; optimal sets: {R(c)} only... no:
	// hitting each edge-witness via leaf tuples needs 3; minimum is {R(c)}.
	// Use a triangle instead: VC(C3) = 2, three optimal covers.
	d.AddNames("R", "a")
	d.AddNames("R", "b")
	d.AddNames("R", "c")
	d.AddNames("S", "a", "b")
	d.AddNames("S", "b", "c")
	d.AddNames("S", "c", "a")
	rho, sets, err := EnumerateMinimum(q, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Each witness {R(u), S(u,v), R(v)} can also be hit via its S tuple,
	// so optimal sets mix vertex and edge tuples; ρ = 2. Enumerate all,
	// then re-run with a cap.
	if rho != 2 || len(sets) < 3 {
		t.Fatalf("rho=%d with %d sets, want 2 with at least the three VC covers", rho, len(sets))
	}
	_, capped, err := EnumerateMinimum(q, d, 2)
	if err != nil || len(capped) != 2 {
		t.Fatalf("capped enumeration gave %d sets (err=%v), want 2", len(capped), err)
	}
}

// TestEnumerateMinimumAllVerify: every enumerated set is a verified
// contingency set of size ρ, the canonical Exact answer appears among
// them, and no duplicates are produced.
func TestEnumerateMinimumAllVerify(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("qchain :- R(x,y), R(y,z)"),
		cq.MustParse("qperm :- R(x,y), R(y,x)"),
		cq.MustParse("qACconf :- A(x), R(x,y), R(z,y), C(z)"),
	}
	rng := rand.New(rand.NewSource(43))
	for _, q := range queries {
		for trial := 0; trial < 6; trial++ {
			d := datagen.Random(rng, q, 4, 6, 0.4)
			if !eval.Satisfied(q, d) {
				continue
			}
			rho, sets, err := EnumerateMinimum(q, d, 0)
			if err == ErrUnbreakable {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if rho == 0 {
				continue
			}
			if len(sets) == 0 {
				t.Fatalf("%s: ρ=%d but no sets", q.Name, rho)
			}
			seen := map[string]bool{}
			for _, s := range sets {
				if len(s) != rho {
					t.Fatalf("%s: set %v has size %d, want %d", q.Name, s, len(s), rho)
				}
				if err := VerifyContingency(q, d, s); err != nil {
					t.Fatalf("%s: %v", q.Name, err)
				}
				k := ""
				for _, tup := range s {
					k += d.TupleString(tup) + ";"
				}
				if seen[k] {
					t.Fatalf("%s: duplicate set %v", q.Name, s)
				}
				seen[k] = true
			}
			// The single answer from Exact must be among the enumerated sets.
			res, err := Exact(q, d)
			if err != nil {
				t.Fatal(err)
			}
			k := ""
			for _, tup := range res.ContingencySet {
				k += d.TupleString(tup) + ";"
			}
			if !seen[k] {
				t.Fatalf("%s: Exact's set %v missing from enumeration", q.Name, res.ContingencySet)
			}
		}
	}
}
