package resilience

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
)

// agree checks that the specialized solver and the exact oracle agree on
// ρ, and that any returned contingency set verifies.
func agree(t *testing.T, name string, q *cq.Query, d *db.Database,
	solver func(*cq.Query, *db.Database) (*Result, error)) {
	t.Helper()
	got, err := solver(q, d)
	if err == ErrUnbreakable {
		if _, exErr := Exact(q, d); exErr != ErrUnbreakable {
			t.Fatalf("%s: solver says unbreakable, exact says %v", name, exErr)
		}
		return
	}
	if err != nil {
		t.Fatalf("%s: %v\nDB:\n%s", name, err, d)
	}
	want, err := Exact(q, d)
	if err != nil {
		t.Fatalf("%s: exact: %v", name, err)
	}
	if got.Rho != want.Rho {
		t.Fatalf("%s: solver ρ=%d (%s), exact ρ=%d\nDB:\n%s", name, got.Rho, got.Method, want.Rho, d)
	}
	if got.ContingencySet != nil && got.Rho > 0 {
		if verr := VerifyContingency(q, d, got.ContingencySet); verr != nil {
			t.Fatalf("%s: invalid contingency set: %v\nΓ=%v\nDB:\n%s", name, verr, got.ContingencySet, d)
		}
	}
}

func TestLinearFlowChainSJFree(t *testing.T) {
	// Linear sj-free query: A(x), R1(x,y), R2(y,z), C(z).
	q := cq.MustParse("qlin4 :- A(x), R1(x,y), R2(y,z), C(z)")
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		d := datagen.Random(rng, q, 4, 6, 0)
		agree(t, "linear-sjfree", q, d, LinearFlow)
	}
}

func TestLinearFlowPaperExampleQACconf(t *testing.T) {
	// Proposition 12's query, the canonical tricky-flow example.
	q := cq.MustParse("qACconf :- A(x), R(x,y), R(z,y), C(z)")
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		d := datagen.Random(rng, q, 5, 7, 0.3)
		agree(t, "qACconf", q, d, LinearFlow)
	}
}

func TestLinearFlowConfluenceJoinFirstAttr(t *testing.T) {
	q := cq.MustParse("q :- A(x), R(y,x), R(y,z), C(z)")
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		d := datagen.Random(rng, q, 5, 7, 0.3)
		agree(t, "conf-first-attr", q, d, LinearFlow)
	}
}

func TestLinearFlowExogenousTuples(t *testing.T) {
	q := cq.MustParse("q :- A(x), R(x,y)^x, B(y)")
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 20; trial++ {
		d := datagen.Random(rng, q, 4, 6, 0)
		agree(t, "exo-middle", q, d, LinearFlow)
	}
}

func TestLinearFlowRejectsNonLinear(t *testing.T) {
	q := cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)")
	d := db.New()
	d.AddNames("R", "1", "2")
	if _, err := LinearFlow(q, d); err != ErrNotLinear {
		t.Errorf("err = %v, want ErrNotLinear", err)
	}
}

func TestLinearFlowUnbreakable(t *testing.T) {
	q := cq.MustParse("q :- A(x)^x, R(x,y)^x")
	d := db.New()
	d.AddNames("A", "1")
	d.AddNames("R", "1", "2")
	if _, err := LinearFlow(q, d); err != ErrUnbreakable {
		t.Errorf("err = %v, want ErrUnbreakable", err)
	}
}

func TestSolvePermCountAgainstExact(t *testing.T) {
	q := cq.MustParse("qperm :- R(x,y), R(y,x)")
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 40; trial++ {
		d := datagen.PermDB(rng, 2+rng.Intn(6), rng.Intn(3), 6)
		agree(t, "qperm", q, d, SolvePermCount)
	}
}

func TestSolvePermBipartiteVCAgainstExact(t *testing.T) {
	q := cq.MustParse("qAperm :- A(x), R(x,y), R(y,x)")
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 40; trial++ {
		d := datagen.PermDB(rng, 2+rng.Intn(6), rng.Intn(3), 6, "A")
		agree(t, "qAperm", q, d, SolvePermBipartiteVC)
	}
}

func TestSolveREPFlowAgainstExact(t *testing.T) {
	q := cq.MustParse("z3 :- R(x,x), R(x,y), A(y)")
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		d := datagen.RandomWithLoops(rng, q, 5, 6, 0.5)
		for i := 0; i < 5; i++ {
			d.AddNames("A", datagen.ConstName(rng.Intn(5)))
		}
		agree(t, "z3", q, d, SolveREPFlow)
	}
}

func TestSolvePerm3FlowA(t *testing.T) {
	q := cq.MustParse("qA3permR :- A(x), R(x,y), R(y,z), R(z,y)")
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 60; trial++ {
		d := datagen.PermDB(rng, 2+rng.Intn(5), rng.Intn(3), 6, "A")
		// Extra one-way tuples to exercise the connector logic.
		for i := 0; i < 4; i++ {
			d.AddNames("R", datagen.ConstName(rng.Intn(6)), datagen.ConstName(rng.Intn(6)))
		}
		agree(t, "qA3perm-R", q, d, SolvePerm3Flow)
	}
}

func TestSolvePerm3FlowSwx(t *testing.T) {
	q := cq.MustParse("qSwx :- S(w,x), R(x,y), R(y,z), R(z,y)")
	rng := rand.New(rand.NewSource(39))
	for trial := 0; trial < 60; trial++ {
		d := datagen.PermDB(rng, 2+rng.Intn(4), rng.Intn(3), 6)
		for i := 0; i < 5; i++ {
			d.AddNames("S", datagen.ConstName(rng.Intn(6)), datagen.ConstName(rng.Intn(6)))
		}
		for i := 0; i < 4; i++ {
			d.AddNames("R", datagen.ConstName(rng.Intn(6)), datagen.ConstName(rng.Intn(6)))
		}
		agree(t, "qSwx3perm-R", q, d, SolvePerm3Flow)
	}
}

func TestSolveTS3confAgainstExact(t *testing.T) {
	q := cq.MustParse("qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x")
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 60; trial++ {
		d := db.New()
		dom := 5
		for i := 0; i < 8; i++ {
			u, v := datagen.ConstName(rng.Intn(dom)), datagen.ConstName(rng.Intn(dom))
			d.AddNames("R", u, v)
			if rng.Float64() < 0.6 {
				d.AddNames("T", u, v)
			}
			if rng.Float64() < 0.6 {
				d.AddNames("S", u, v)
			}
		}
		// Extra exogenous context not aligned with R.
		for i := 0; i < 3; i++ {
			d.AddNames("T", datagen.ConstName(rng.Intn(dom)), datagen.ConstName(rng.Intn(dom)))
			d.AddNames("S", datagen.ConstName(rng.Intn(dom)), datagen.ConstName(rng.Intn(dom)))
		}
		agree(t, "qTS3conf", q, d, SolveTS3conf)
	}
}

func TestSolveDispatcherOnZooPTimeQueries(t *testing.T) {
	// End-to-end: Solve must agree with Exact on every PTIME query shape.
	queries := []string{
		"qperm :- R(x,y), R(y,x)",
		"qAperm :- A(x), R(x,y), R(y,x)",
		"qACconf :- A(x), R(x,y), R(z,y), C(z)",
		"z3 :- R(x,x), R(x,y), A(y)",
		"qA3permR :- A(x), R(x,y), R(y,z), R(z,y)",
		"qrats :- R(x,y), A(x), T(z,x), S(y,z)",
		"qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x",
	}
	rng := rand.New(rand.NewSource(41))
	for _, s := range queries {
		q := cq.MustParse(s)
		for trial := 0; trial < 15; trial++ {
			d := datagen.RandomWithLoops(rng, q, 5, 6, 0.3)
			got, cl, err := Solve(q, d)
			if err == ErrUnbreakable {
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", q.Name, err)
			}
			want, err := Exact(q, d)
			if err != nil {
				continue
			}
			if got.Rho != want.Rho {
				t.Fatalf("%s (alg=%s): Solve ρ=%d, Exact ρ=%d\nDB:\n%s",
					q.Name, cl.Algorithm, got.Rho, want.Rho, d)
			}
		}
	}
}

func TestSolveDisconnectedTakesMin(t *testing.T) {
	q := cq.MustParse("q :- A(x), B(u)")
	d := db.New()
	d.AddNames("A", "1")
	d.AddNames("A", "2")
	d.AddNames("A", "3")
	d.AddNames("B", "9")
	res, _, err := Solve(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting B(9) (1 tuple) falsifies the conjunction.
	if res.Rho != 1 {
		t.Errorf("ρ = %d, want 1 (cheapest component)", res.Rho)
	}
}
