package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cnfenc"
	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/witset"
)

// Randomized differential suite: on a battery of random (query, database)
// instances, the legacy-equivalent reference solver (plain recursion over
// eval.EndoWitnessSets, no interning, no bitsets), the IR-based exact
// solver (both ablation variants), the SAT oracle, and the minimum-set
// enumerator must all agree on ρ.

// referenceRho recomputes ρ by iterative deepening directly over the
// tuple-level witness sets — an independent implementation of Definition 1
// that shares no code with the witset IR or the bitset hitting-set core.
func referenceRho(q *cq.Query, d *db.Database) (rho int, unbreakable bool) {
	sets, unbreakable := eval.EndoWitnessSets(q, d)
	if unbreakable {
		return 0, true
	}
	chosen := map[db.Tuple]bool{}
	var canHit func(k int) bool
	canHit = func(k int) bool {
		var unhit []db.Tuple
		for _, s := range sets {
			hit := false
			for _, t := range s {
				if chosen[t] {
					hit = true
					break
				}
			}
			if !hit {
				unhit = s
				break
			}
		}
		if unhit == nil {
			return true
		}
		if k == 0 {
			return false
		}
		for _, t := range unhit {
			chosen[t] = true
			ok := canHit(k - 1)
			delete(chosen, t)
			if ok {
				return true
			}
		}
		return false
	}
	for k := 0; ; k++ {
		if canHit(k) {
			return k, false
		}
	}
}

func TestDifferentialRandomInstances(t *testing.T) {
	shapes := []struct {
		query          string
		domain, tuples int
	}{
		{"qchain :- R(x,y), R(y,z)", 6, 10},
		{"qvc :- R(x), S(x,y), R(y)", 6, 9},
		{"qtriangle :- R(x,y), S(y,z), T(z,x)", 5, 8},
		{"qACconf :- A(x), R(x,y), R(z,y), C(z)", 6, 9},
		{"qperm :- R(x,y), R(y,x)", 7, 12},
		{"qxchain :- A(x)^x, R(x,y), R(y,z)", 6, 10},
	}
	rng := rand.New(rand.NewSource(2026))
	instances := 0
	for round := 0; round < 6; round++ {
		for _, s := range shapes {
			q := cq.MustParse(s.query)
			d := datagen.Random(rng, q, s.domain, s.tuples, 0.3)
			instances++

			want, unbreakable := referenceRho(q, d)

			got, err := Exact(q, d)
			if unbreakable {
				if err != ErrUnbreakable {
					t.Fatalf("%s round %d: reference says unbreakable, Exact err = %v", q.Name, round, err)
				}
				if _, _, satErr := cnfenc.Decide(q, d, 0); satErr != cnfenc.ErrUnbreakable {
					t.Fatalf("%s round %d: reference says unbreakable, SAT err = %v", q.Name, round, satErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s round %d: Exact failed: %v", q.Name, round, err)
			}
			if got.Rho != want {
				t.Fatalf("%s round %d: IR Exact ρ = %d, reference ρ = %d\n%s", q.Name, round, got.Rho, want, d)
			}
			if len(got.ContingencySet) > 0 {
				if err := VerifyContingency(q, d, got.ContingencySet); err != nil {
					t.Fatalf("%s round %d: bad contingency set: %v", q.Name, round, err)
				}
			}

			// Ablation variants search differently but answer identically.
			for _, opts := range []Options{
				{DisableLowerBound: true},
				{DisableLPBound: true},
				{DisableLowerBound: true, DisableLPBound: true},
				{KeepSupersets: true},
				{DisableLowerBound: true, KeepSupersets: true},
				{DisableLPBound: true, KeepSupersets: true},
			} {
				ab, err := ExactWithOptions(q, d, opts)
				if err != nil {
					t.Fatalf("%s round %d: ablation %+v failed: %v", q.Name, round, opts, err)
				}
				if ab.Rho != want {
					t.Fatalf("%s round %d: ablation %+v ρ = %d, want %d", q.Name, round, opts, ab.Rho, want)
				}
			}

			// SAT oracle: (D, ρ) ∈ RES(q) and (D, ρ−1) ∉ RES(q).
			if ok, _, err := cnfenc.Decide(q, d, want); err != nil || ok != eval.Satisfied(q, d) {
				t.Fatalf("%s round %d: SAT Decide(ρ=%d) = (%v, %v)", q.Name, round, want, ok, err)
			}
			if want > 0 {
				if ok, _, err := cnfenc.Decide(q, d, want-1); err != nil || ok {
					t.Fatalf("%s round %d: SAT Decide(ρ-1=%d) = (%v, %v), want unsat", q.Name, round, want-1, ok, err)
				}
			}

			// The enumerator's ρ must match, and every set it returns must
			// be a verified optimum.
			erho, esets, err := EnumerateMinimum(q, d, 8)
			if err != nil {
				t.Fatalf("%s round %d: EnumerateMinimum failed: %v", q.Name, round, err)
			}
			if erho != want {
				t.Fatalf("%s round %d: EnumerateMinimum ρ = %d, want %d", q.Name, round, erho, want)
			}
			for _, set := range esets {
				if len(set) != want {
					t.Fatalf("%s round %d: enumerated set size %d, want %d", q.Name, round, len(set), want)
				}
				if err := VerifyContingency(q, d, set); err != nil {
					t.Fatalf("%s round %d: enumerated set invalid: %v", q.Name, round, err)
				}
			}
		}
	}
	if instances == 0 {
		t.Fatal("no instances generated")
	}
}

func TestDifferentialUnbreakableEdge(t *testing.T) {
	// Every atom exogenous: any witness is unbreakable.
	q := cq.MustParse("q :- R(x,y)^x")
	d := db.New()
	d.AddNames("R", "a", "b")
	if _, err := Exact(q, d); err != ErrUnbreakable {
		t.Fatalf("Exact err = %v, want ErrUnbreakable", err)
	}
	if _, unbreakable := referenceRho(q, d); !unbreakable {
		t.Fatal("reference disagrees on unbreakability")
	}
}

// TestDifferentialPipelineVsMonolithic pins the tentpole contract: the
// kernel+decompose pipeline computes exactly what the monolithic solver
// computes — for ρ, for the full set of minimum contingency sets, and for
// responsibility — on generated instances that include forced tuples (unit
// witnesses from loops) and many-component witness hypergraphs.
func TestDifferentialPipelineVsMonolithic(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")

	// Each generator owns its own seeded rng and the slice fixes the
	// iteration order, so a failing instance is reproducible: map
	// iteration order must not decide which databases get generated.
	type gen func(rng *rand.Rand, round int) *db.Database
	gens := []struct {
		name string
		g    gen
	}{
		// Disjoint heavy-tailed clusters: many components.
		{"manycomp", func(rng *rand.Rand, round int) *db.Database {
			return datagen.ManyComponentChainDB(rng, 4+round, 3, 10)
		}},
		// Clusters plus loops R(a,a): the witness x=y=z=a is the single
		// tuple {R(a,a)}, a unit row the kernel must force.
		{"forced", func(rng *rand.Rand, round int) *db.Database {
			d := datagen.ManyComponentChainDB(rng, 3+round, 3, 8)
			for i := 0; i < 2+round; i++ {
				a := datagen.ConstName(1000 + i) // fresh constants: isolated loop components
				d.AddNames("R", a, a)
			}
			return d
		}},
		// Dense single-pool instances: typically one big component, the
		// pipeline's no-win case must still be exact.
		{"dense", func(rng *rand.Rand, round int) *db.Database {
			return datagen.ChainDB(rng, 14, 12)
		}},
	}

	for gi, entry := range gens {
		name, g := entry.name, entry.g
		rng := rand.New(rand.NewSource(2027 + int64(gi)))
		for round := 0; round < 4; round++ {
			d := g(rng, round)
			inst, err := witset.Build(context.Background(), q, d, nil)
			if err != nil {
				t.Fatal(err)
			}

			mono, monoErr := ExactWithOptions(q, d, Options{Monolithic: true})
			pipe, pipeErr := Exact(q, d)
			if (monoErr == nil) != (pipeErr == nil) {
				t.Fatalf("%s round %d: pipeline err = %v, monolithic err = %v", name, round, pipeErr, monoErr)
			}
			if monoErr != nil {
				continue
			}
			if pipe.Rho != mono.Rho {
				t.Fatalf("%s round %d: pipeline ρ = %d, monolithic ρ = %d", name, round, pipe.Rho, mono.Rho)
			}
			if want, _ := referenceRho(q, d); want != pipe.Rho {
				t.Fatalf("%s round %d: pipeline ρ = %d, reference ρ = %d", name, round, pipe.Rho, want)
			}
			// LP-bound ablation: with the dual-greedy bound off — in both
			// the pipeline and the monolithic search — the optimum must not
			// move, pinning the bound as prune-only.
			for _, opts := range []Options{
				{DisableLPBound: true},
				{DisableLPBound: true, Monolithic: true},
			} {
				ab, err := ExactWithOptions(q, d, opts)
				if err != nil {
					t.Fatalf("%s round %d: ablation %+v: %v", name, round, opts, err)
				}
				if ab.Rho != pipe.Rho {
					t.Fatalf("%s round %d: ablation %+v ρ = %d, want %d", name, round, opts, ab.Rho, pipe.Rho)
				}
			}
			if pipe.Rho > 0 {
				if err := VerifyContingency(q, d, pipe.ContingencySet); err != nil {
					t.Fatalf("%s round %d: pipeline contingency invalid: %v", name, round, err)
				}
				if len(pipe.ContingencySet) != pipe.Rho {
					t.Fatalf("%s round %d: pipeline contingency size %d ≠ ρ %d",
						name, round, len(pipe.ContingencySet), pipe.Rho)
				}
			}

			// Kernel sanity on the forced generator: loops must be forced.
			if name == "forced" {
				if k := inst.Kernel(); len(k.Forced) == 0 {
					t.Fatalf("%s round %d: no forced tuples despite unit witnesses", name, round)
				}
			}
			if name == "manycomp" && len(inst.Components()) < 2 {
				t.Fatalf("%s round %d: expected a multi-component hypergraph", name, round)
			}

			// Enumerator parity: the full (uncapped) sets must be identical.
			erho, esets, err := EnumerateMinimumOnInstance(context.Background(), inst, d, 0)
			if err != nil {
				t.Fatalf("%s round %d: pipeline enumerate: %v", name, round, err)
			}
			mrho, msets, err := enumerateMinimumMonolithic(context.Background(), inst, d, 0)
			if err != nil {
				t.Fatalf("%s round %d: monolithic enumerate: %v", name, round, err)
			}
			if erho != mrho || len(esets) != len(msets) {
				t.Fatalf("%s round %d: enumerate pipeline (ρ=%d, %d sets) vs monolithic (ρ=%d, %d sets)",
					name, round, erho, len(esets), mrho, len(msets))
			}
			for i := range esets {
				if fmt.Sprint(esets[i]) != fmt.Sprint(msets[i]) {
					t.Fatalf("%s round %d: enumerate set %d differs:\npipeline:   %v\nmonolithic: %v",
						name, round, i, esets[i], msets[i])
				}
			}

			// Responsibility parity for every endogenous tuple in the IR.
			for id := int32(0); id < int32(inst.NumTuples()); id++ {
				tup := inst.Tuple(id)
				pk, pg, perr := ResponsibilityOnInstance(context.Background(), inst, d, tup)
				mk, _, merr := responsibilityMonolithic(context.Background(), inst, d, tup)
				if (perr == nil) != (merr == nil) || (perr != nil && perr != merr) {
					t.Fatalf("%s round %d: responsibility(%s) pipeline err = %v, monolithic err = %v",
						name, round, d.TupleString(tup), perr, merr)
				}
				if perr != nil {
					continue
				}
				if pk != mk {
					t.Fatalf("%s round %d: responsibility(%s) pipeline k = %d, monolithic k = %d",
						name, round, d.TupleString(tup), pk, mk)
				}
				if len(pg) != pk {
					t.Fatalf("%s round %d: responsibility(%s) gamma size %d ≠ k %d",
						name, round, d.TupleString(tup), len(pg), pk)
				}
			}
		}
	}
}

// TestDecideAndVerifyViaIR pins the IR-routed Decide/VerifyContingency
// against the reference recursion: membership thresholds at exactly ρ, and
// verification accepts optima and rejects non-hitting sets, without ever
// mutating the database.
func TestDecideAndVerifyViaIR(t *testing.T) {
	rng := rand.New(rand.NewSource(2028))
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	for round := 0; round < 6; round++ {
		d := datagen.ManyComponentChainDB(rng, 2+round, 3, 9)
		version := d.Version()
		want, unbreakable := referenceRho(q, d)
		if unbreakable {
			continue
		}
		satisfied := want > 0 || eval.Satisfied(q, d)
		for _, k := range []int{0, want - 1, want, want + 1} {
			if k < 0 {
				continue
			}
			got, err := Decide(q, d, k)
			if err != nil {
				t.Fatalf("round %d: Decide(%d): %v", round, k, err)
			}
			if wantIn := satisfied && want <= k; got != wantIn {
				t.Fatalf("round %d: Decide(%d) = %v, want %v (ρ = %d)", round, k, got, wantIn, want)
			}
		}
		if want > 0 {
			res, err := Exact(q, d)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyContingency(q, d, res.ContingencySet); err != nil {
				t.Fatalf("round %d: optimal set rejected: %v", round, err)
			}
			if err := VerifyContingency(q, d, res.ContingencySet[:len(res.ContingencySet)-1]); err == nil && want > 0 {
				// Removing one tuple from a minimum set cannot still falsify.
				t.Fatalf("round %d: sub-optimal subset accepted", round)
			}
		}
		if d.Version() != version {
			t.Fatalf("round %d: Decide/Verify mutated the database (version %d → %d)",
				round, version, d.Version())
		}
	}
}
