package resilience

import (
	"math/rand"
	"testing"

	"repro/internal/cnfenc"
	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
)

// Randomized differential suite: on a battery of random (query, database)
// instances, the legacy-equivalent reference solver (plain recursion over
// eval.EndoWitnessSets, no interning, no bitsets), the IR-based exact
// solver (both ablation variants), the SAT oracle, and the minimum-set
// enumerator must all agree on ρ.

// referenceRho recomputes ρ by iterative deepening directly over the
// tuple-level witness sets — an independent implementation of Definition 1
// that shares no code with the witset IR or the bitset hitting-set core.
func referenceRho(q *cq.Query, d *db.Database) (rho int, unbreakable bool) {
	sets, unbreakable := eval.EndoWitnessSets(q, d)
	if unbreakable {
		return 0, true
	}
	chosen := map[db.Tuple]bool{}
	var canHit func(k int) bool
	canHit = func(k int) bool {
		var unhit []db.Tuple
		for _, s := range sets {
			hit := false
			for _, t := range s {
				if chosen[t] {
					hit = true
					break
				}
			}
			if !hit {
				unhit = s
				break
			}
		}
		if unhit == nil {
			return true
		}
		if k == 0 {
			return false
		}
		for _, t := range unhit {
			chosen[t] = true
			ok := canHit(k - 1)
			delete(chosen, t)
			if ok {
				return true
			}
		}
		return false
	}
	for k := 0; ; k++ {
		if canHit(k) {
			return k, false
		}
	}
}

func TestDifferentialRandomInstances(t *testing.T) {
	shapes := []struct {
		query          string
		domain, tuples int
	}{
		{"qchain :- R(x,y), R(y,z)", 6, 10},
		{"qvc :- R(x), S(x,y), R(y)", 6, 9},
		{"qtriangle :- R(x,y), S(y,z), T(z,x)", 5, 8},
		{"qACconf :- A(x), R(x,y), R(z,y), C(z)", 6, 9},
		{"qperm :- R(x,y), R(y,x)", 7, 12},
		{"qxchain :- A(x)^x, R(x,y), R(y,z)", 6, 10},
	}
	rng := rand.New(rand.NewSource(2026))
	instances := 0
	for round := 0; round < 6; round++ {
		for _, s := range shapes {
			q := cq.MustParse(s.query)
			d := datagen.Random(rng, q, s.domain, s.tuples, 0.3)
			instances++

			want, unbreakable := referenceRho(q, d)

			got, err := Exact(q, d)
			if unbreakable {
				if err != ErrUnbreakable {
					t.Fatalf("%s round %d: reference says unbreakable, Exact err = %v", q.Name, round, err)
				}
				if _, _, satErr := cnfenc.Decide(q, d, 0); satErr != cnfenc.ErrUnbreakable {
					t.Fatalf("%s round %d: reference says unbreakable, SAT err = %v", q.Name, round, satErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s round %d: Exact failed: %v", q.Name, round, err)
			}
			if got.Rho != want {
				t.Fatalf("%s round %d: IR Exact ρ = %d, reference ρ = %d\n%s", q.Name, round, got.Rho, want, d)
			}
			if len(got.ContingencySet) > 0 {
				if err := VerifyContingency(q, d, got.ContingencySet); err != nil {
					t.Fatalf("%s round %d: bad contingency set: %v", q.Name, round, err)
				}
			}

			// Ablation variants search differently but answer identically.
			for _, opts := range []Options{
				{DisableLowerBound: true},
				{KeepSupersets: true},
				{DisableLowerBound: true, KeepSupersets: true},
			} {
				ab, err := ExactWithOptions(q, d, opts)
				if err != nil {
					t.Fatalf("%s round %d: ablation %+v failed: %v", q.Name, round, opts, err)
				}
				if ab.Rho != want {
					t.Fatalf("%s round %d: ablation %+v ρ = %d, want %d", q.Name, round, opts, ab.Rho, want)
				}
			}

			// SAT oracle: (D, ρ) ∈ RES(q) and (D, ρ−1) ∉ RES(q).
			if ok, _, err := cnfenc.Decide(q, d, want); err != nil || ok != eval.Satisfied(q, d) {
				t.Fatalf("%s round %d: SAT Decide(ρ=%d) = (%v, %v)", q.Name, round, want, ok, err)
			}
			if want > 0 {
				if ok, _, err := cnfenc.Decide(q, d, want-1); err != nil || ok {
					t.Fatalf("%s round %d: SAT Decide(ρ-1=%d) = (%v, %v), want unsat", q.Name, round, want-1, ok, err)
				}
			}

			// The enumerator's ρ must match, and every set it returns must
			// be a verified optimum.
			erho, esets, err := EnumerateMinimum(q, d, 8)
			if err != nil {
				t.Fatalf("%s round %d: EnumerateMinimum failed: %v", q.Name, round, err)
			}
			if erho != want {
				t.Fatalf("%s round %d: EnumerateMinimum ρ = %d, want %d", q.Name, round, erho, want)
			}
			for _, set := range esets {
				if len(set) != want {
					t.Fatalf("%s round %d: enumerated set size %d, want %d", q.Name, round, len(set), want)
				}
				if err := VerifyContingency(q, d, set); err != nil {
					t.Fatalf("%s round %d: enumerated set invalid: %v", q.Name, round, err)
				}
			}
		}
	}
	if instances == 0 {
		t.Fatal("no instances generated")
	}
}

func TestDifferentialUnbreakableEdge(t *testing.T) {
	// Every atom exogenous: any witness is unbreakable.
	q := cq.MustParse("q :- R(x,y)^x")
	d := db.New()
	d.AddNames("R", "a", "b")
	if _, err := Exact(q, d); err != ErrUnbreakable {
		t.Fatalf("Exact err = %v, want ErrUnbreakable", err)
	}
	if _, unbreakable := referenceRho(q, d); !unbreakable {
		t.Fatal("reference disagrees on unbreakability")
	}
}
