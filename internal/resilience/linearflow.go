package resilience

import (
	"errors"
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/flow"
	"repro/internal/hypergraph"
)

// ErrNotLinear is returned by LinearFlow when the query admits no linear
// arrangement of its atoms.
var ErrNotLinear = errors.New("resilience: query is not linear")

// LinearFlow computes ρ(q, D) for linear queries via minimum cut, following
// the construction of [31] (Section 2.4 of the paper): every witness
// becomes an s-t path through per-(position, tuple) edges, endogenous
// tuples have capacity 1, exogenous tuples capacity ∞, and the minimum cut
// equals the resilience.
//
// The same construction remains exact when the query's only self-join is a
// single 2-confluence (Proposition 31): by Lemma 55, minimal cuts never pay
// twice for the two positional copies of one tuple. LinearFlow is also the
// inner loop of the qTS3conf solver (Proposition 41).
func LinearFlow(q *cq.Query, d *db.Database) (*Result, error) {
	order := hypergraph.LinearOrder(q)
	if order == nil {
		return nil, ErrNotLinear
	}
	m := len(order)

	net := flow.NewNetwork()
	src := net.AddNode()
	sink := net.AddNode()

	type key struct {
		pos int
		t   db.Tuple
	}
	// Each (position, tuple) pair is split into in/out nodes joined by its
	// capacity edge; edgeID maps back for cut extraction.
	nodeIn := map[key]int{}
	nodeOut := map[key]int{}
	edgeOf := map[key]int{}
	var keys []key
	getNode := func(k key) (int, int) {
		if in, ok := nodeIn[k]; ok {
			return in, nodeOut[k]
		}
		in := net.AddNode()
		out := net.AddNode()
		cap := int64(1)
		if q.IsExogenous(k.t.Rel) {
			cap = flow.Inf
		}
		edgeOf[k] = net.AddEdge(in, out, cap)
		nodeIn[k] = in
		nodeOut[k] = out
		keys = append(keys, k)
		return in, out
	}

	witnesses := 0
	eval.ForEachWitness(q, d, func(w eval.Witness) bool {
		witnesses++
		byAtom := eval.TuplesOfWitnessByAtom(q, w)
		prevOut := src
		for pos := 0; pos < m; pos++ {
			k := key{pos: pos, t: byAtom[order[pos]]}
			in, out := getNode(k)
			net.AddEdge(prevOut, in, flow.Inf)
			prevOut = out
		}
		net.AddEdge(prevOut, sink, flow.Inf)
		return true
	})
	if witnesses == 0 {
		return &Result{Rho: 0, Method: "linear-flow", Witnesses: 0}, nil
	}

	cut := net.MaxFlow(src, sink)
	if cut >= flow.Inf {
		return nil, ErrUnbreakable
	}

	// Extract the contingency set from the minimum cut, deduplicating the
	// positional copies of self-joined tuples (Lemma 55 guarantees minimal
	// cuts contain at most one copy per tuple).
	reach := net.MinCutSource(src)
	inCut := map[int]bool{}
	for _, id := range net.CutEdges(reach) {
		inCut[id] = true
	}
	seen := map[db.Tuple]bool{}
	var gamma []db.Tuple
	for _, k := range keys {
		if inCut[edgeOf[k]] && !seen[k.t] {
			seen[k.t] = true
			gamma = append(gamma, k.t)
		}
	}
	if int64(len(gamma)) != cut {
		// Defensive: if a minimum cut ever used both copies of a tuple the
		// construction's precondition is violated (query outside the
		// Proposition 31 fragment); report it loudly rather than returning
		// a wrong ρ.
		return nil, fmt.Errorf("resilience: linear flow cut (%d) and tuple set (%d) disagree; query outside the flow-solvable fragment", cut, len(gamma))
	}
	db.SortTuples(gamma)
	return &Result{
		Rho:            int(cut),
		ContingencySet: gamma,
		Method:         "linear-flow",
		Witnesses:      witnesses,
	}, nil
}
