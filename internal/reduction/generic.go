package reduction

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/vertexcover"
)

// This file holds the paper's generic, query-parametric reductions — the
// constructions that carry hardness from one query to a whole class:
//
//   - SelfJoinVariationDB  (Lemma 21):   RES(q) ≤ RES(qsj) for any minimal
//     self-join variation qsj of an sj-free q, via variable-tagged constants;
//   - NewPathVC            (Thms 27/28): RES(qvc) ≤ RES(q) for any minimal
//     ssj query containing a unary or binary path;
//   - Embed                (Props 30/35): the witness-preserving database
//     embedding behind the chain and bounded-permutation hardness proofs.
//
// Each is an executable database transformer whose defining property —
// resilience is preserved exactly — is validated against the exact solver
// in the tests and in experiment S5/S6.

// SelfJoinVariationDB implements the mapping of Lemma 21. qfree is an
// sj-free query, qsj a self-join variation of it (same body, some relation
// symbols replaced by repeated ones, atom by atom), and d a database for
// qfree. The result D' tags every constant with the variable position it
// instantiates, so the new self-joins cannot produce extra witnesses:
// contingency sets of (qfree, d) and (qsj, D') are in 1:1 correspondence
// and ρ is preserved exactly.
//
// The lemma requires qsj to be minimal (Example 22 shows the map fails on
// non-minimal variations, where a reassignment could make one tuple do
// "double duty"), so non-minimal variations are rejected.
func SelfJoinVariationDB(qfree, qsj *cq.Query, d *db.Database) (*db.Database, error) {
	if len(qfree.Atoms) != len(qsj.Atoms) {
		return nil, fmt.Errorf("reduction: queries have %d vs %d atoms", len(qfree.Atoms), len(qsj.Atoms))
	}
	for i := range qfree.Atoms {
		af, as := qfree.Atoms[i], qsj.Atoms[i]
		if len(af.Args) != len(as.Args) {
			return nil, fmt.Errorf("reduction: atom %d arity mismatch", i)
		}
		for p := range af.Args {
			if qfree.VarName(af.Args[p]) != qsj.VarName(as.Args[p]) {
				return nil, fmt.Errorf("reduction: atom %d argument %d: %s vs %s",
					i, p, qfree.VarName(af.Args[p]), qsj.VarName(as.Args[p]))
			}
		}
	}
	if !qsj.IsMinimal() {
		return nil, fmt.Errorf("reduction: %s is not minimal; Lemma 21 does not apply (cf. Example 22)", qsj.Name)
	}
	out := db.New()
	eval.ForEachWitness(qfree, d, func(w eval.Witness) bool {
		for _, a := range qsj.Atoms {
			names := make([]string, len(a.Args))
			for p, v := range a.Args {
				vn := qsj.VarName(v)
				names[p] = d.ConstName(w[v]) + "@" + vn
			}
			out.AddNames(a.Rel, names...)
		}
		return true
	})
	return out, nil
}

// PathVC is the Theorem 27 / Theorem 28 reduction: for a minimal ssj query
// q containing a path — two atoms of the self-join relation R that share
// no variable — it maps a Vertex Cover instance G to a database D' with
//
//	ρ(q, D') = VC(G).
//
// Endpoint variables map to the edge's vertices; every other variable is
// replicated Copies ways so that tuples outside the R-endpoints can only
// break one replicated witness at a time and are never worth choosing.
type PathVC struct {
	Q  *cq.Query
	DB *db.Database
	// Copies is the replication factor for non-endpoint variables. Any
	// value ≥ 2 preserves resilience exactly — killing an edge's witnesses
	// through replicated tuples then costs at least 2 where an endpoint
	// tuple costs 1, so minimum contingency sets never use them. The paper
	// uses n extra values; we use 3 to keep witness counts small for the
	// exact-solver validation.
	Copies int
}

// NewPathVC builds the reduction. For a unary self-join relation the
// endpoints are the variables of the first two R-atoms (Theorem 27); for a
// binary one, a pair of R-atoms with disjoint variables is required and
// the endpoint classes are the R-connected components of their variables
// (Theorem 28; R-atoms then hold diagonal tuples (a,a), (b,b)).
func NewPathVC(q *cq.Query, g *vertexcover.Graph) (*PathVC, error) {
	sjRels := q.SelfJoinRelations()
	if len(sjRels) != 1 {
		return nil, fmt.Errorf("reduction: query must have exactly one self-join relation, got %v", sjRels)
	}
	rel := sjRels[0]
	rAtoms := q.AtomsOf(rel)

	// classOf[v] groups variables connected through R-atoms; endpoint
	// variables map to graph vertices class-wide.
	classOf := map[cq.Var]int{}
	var classes [][]cq.Var
	if q.Arity(rel) == 1 {
		x := q.Atoms[rAtoms[0]].Args[0]
		y := q.Atoms[rAtoms[1]].Args[0]
		if x == y {
			return nil, fmt.Errorf("reduction: R-atoms share variable %s; not a unary path", q.VarName(x))
		}
		classes = [][]cq.Var{{x}, {y}}
	} else {
		// Union-find over variables via shared R-atoms.
		parent := map[cq.Var]cq.Var{}
		var find func(cq.Var) cq.Var
		find = func(v cq.Var) cq.Var {
			p, ok := parent[v]
			if !ok || p == v {
				parent[v] = v
				return v
			}
			r := find(p)
			parent[v] = r
			return r
		}
		for _, i := range rAtoms {
			vs := q.VarsOf(i)
			for _, v := range vs[1:] {
				parent[find(v)] = find(vs[0])
			}
		}
		var pair [2]int // indexes into rAtoms of a disjoint pair
		found := false
	search:
		for i := 0; i < len(rAtoms); i++ {
			for j := i + 1; j < len(rAtoms); j++ {
				if find(q.Atoms[rAtoms[i]].Args[0]) != find(q.Atoms[rAtoms[j]].Args[0]) {
					pair = [2]int{rAtoms[i], rAtoms[j]}
					found = true
					break search
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("reduction: no binary path: all %s-atoms are R-connected", rel)
		}
		rx := find(q.Atoms[pair[0]].Args[0])
		rz := find(q.Atoms[pair[1]].Args[0])
		byRoot := map[cq.Var][]cq.Var{}
		for v := cq.Var(0); int(v) < q.NumVars(); v++ {
			if _, ok := parent[v]; ok {
				byRoot[find(v)] = append(byRoot[find(v)], v)
			}
		}
		classes = [][]cq.Var{byRoot[rx], byRoot[rz]}
	}
	for side, cls := range classes {
		for _, v := range cls {
			classOf[v] = side
		}
	}

	copies := 3
	out := db.New()
	vertex := func(side int, e [2]int) string { return fmt.Sprintf("v%d", e[side]) }
	for _, e := range g.Edges() {
		for c := 1; c <= copies; c++ {
			for _, a := range q.Atoms {
				names := make([]string, len(a.Args))
				for p, v := range a.Args {
					if side, ok := classOf[v]; ok {
						names[p] = vertex(side, e)
					} else {
						names[p] = fmt.Sprintf("e%d_%d.%s.c%d", e[0], e[1], q.VarName(v), c)
					}
				}
				// Atoms whose variables are all endpoint-mapped yield the
				// same tuple for every copy; the set semantics dedupes.
				out.AddNames(a.Rel, names...)
			}
		}
	}
	return &PathVC{Q: q, DB: out, Copies: copies}, nil
}

// NewConfluenceVC is the Proposition 32 hardness reduction: for a
// pseudo-linear query whose only self-join is a 2-confluence
// R(x,y), R(z,y) with an exogenous path from x to z avoiding y
// (e.g. cfp :- R(x,y), H(x,z)^x, R(z,y), where RES(cfp) ≡ RES(qvc)),
// it maps a graph G to a database with ρ(q, D') = VC(G):
//
//   - y takes one global constant, so R(u, y0) acts as the vertex tuple u
//     (it hits every witness incident to u, in either role);
//   - each edge (u,v) instantiates the whole query body once, with the
//     exogenous-path variables taking per-edge constants — the path plays
//     the role of qvc's S(x,y) edge relation and cannot be deleted;
//   - all remaining variables take per-edge private constants.
//
// Domination normalization guarantees no endogenous atom over y alone can
// exist in the fragment (it would dominate R), so the shared y constant
// cannot be killed in one deletion.
func NewConfluenceVC(q *cq.Query, g *vertexcover.Graph) (*PathVC, error) {
	sjRels := q.SelfJoinRelations()
	if len(sjRels) != 1 {
		return nil, fmt.Errorf("reduction: query must have exactly one self-join relation, got %v", sjRels)
	}
	rel := sjRels[0]
	rAtoms := q.AtomsOf(rel)
	if len(rAtoms) != 2 || q.Arity(rel) != 2 {
		return nil, fmt.Errorf("reduction: %s is not a binary 2-confluence", rel)
	}
	a, b := q.Atoms[rAtoms[0]], q.Atoms[rAtoms[1]]
	var x, z, y cq.Var
	switch {
	case a.Args[1] == b.Args[1] && a.Args[0] != b.Args[0]:
		x, z, y = a.Args[0], b.Args[0], a.Args[1]
	case a.Args[0] == b.Args[0] && a.Args[1] != b.Args[1]:
		x, z, y = a.Args[1], b.Args[1], a.Args[0]
	default:
		return nil, fmt.Errorf("reduction: %s-atoms do not form a confluence", rel)
	}

	out := db.New()
	for _, e := range g.Edges() {
		for _, atom := range q.Atoms {
			names := make([]string, len(atom.Args))
			for p, v := range atom.Args {
				switch v {
				case x:
					names[p] = fmt.Sprintf("v%d", e[0])
				case z:
					names[p] = fmt.Sprintf("v%d", e[1])
				case y:
					names[p] = "y0"
				default:
					names[p] = fmt.Sprintf("e%d_%d.%s", e[0], e[1], q.VarName(v))
				}
			}
			out.AddNames(atom.Rel, names...)
		}
	}
	return &PathVC{Q: q, DB: out, Copies: 1}, nil
}

// Embed is the witness-preserving database embedding used by the
// Proposition 30 (chains) and Proposition 35 case 2 (bounded permutations)
// hardness proofs: given a source query qsrc with database d, it maps each
// witness of (qsrc, d) to one block of tuples for the target query qdst.
//
// varMap sends target variable names to source variable names. A mapped
// variable takes the witness's value for its source variable; an unmapped
// variable takes a private constant unique to the witness, so its tuples
// participate in exactly that witness block and are never a strictly
// better contingency choice than the mapped tuples they accompany.
//
// When qdst is pseudo-linear and varMap covers exactly the shared pattern
// variables (x,y,z of a chain; the isLike-x / isLike-y classes of a bound
// permutation, see PermVarMap), ρ(qdst, Embed(...)) = ρ(qsrc, d).
func Embed(qsrc, qdst *cq.Query, varMap map[string]string, d *db.Database) (*db.Database, error) {
	srcVar := map[string]cq.Var{}
	for dstName, srcName := range varMap {
		v, ok := qsrc.LookupVar(srcName)
		if !ok {
			return nil, fmt.Errorf("reduction: source variable %s (for target %s) not in %s", srcName, dstName, qsrc.Name)
		}
		srcVar[dstName] = v
	}
	out := db.New()
	wi := 0
	eval.ForEachWitness(qsrc, d, func(w eval.Witness) bool {
		for _, a := range qdst.Atoms {
			names := make([]string, len(a.Args))
			for p, v := range a.Args {
				vn := qdst.VarName(v)
				if sv, ok := srcVar[vn]; ok {
					names[p] = d.ConstName(w[sv])
				} else {
					names[p] = fmt.Sprintf("w%d.%s", wi, vn)
				}
			}
			out.AddNames(a.Rel, names...)
		}
		wi++
		return true
	})
	return out, nil
}

// PermVarMap computes the variable map of Proposition 35 case 2 for a
// target query q whose only self-join is the permutation R(x,y), R(y,x):
// every variable is classified isLike-x or isLike-y according to which
// side of the permutation it attaches to once the two R-atoms are removed,
// and mapped to the source variable "x" or "y" of qABperm accordingly.
func PermVarMap(q *cq.Query, xName, yName string) (map[string]string, error) {
	sjRels := q.SelfJoinRelations()
	if len(sjRels) != 1 {
		return nil, fmt.Errorf("reduction: query must have exactly one self-join relation, got %v", sjRels)
	}
	rel := sjRels[0]
	rAtoms := q.AtomsOf(rel)
	if len(rAtoms) != 2 {
		return nil, fmt.Errorf("reduction: want exactly two %s-atoms, got %d", rel, len(rAtoms))
	}
	a0, a1 := q.Atoms[rAtoms[0]], q.Atoms[rAtoms[1]]
	if len(a0.Args) != 2 || a0.Args[0] != a1.Args[1] || a0.Args[1] != a1.Args[0] || a0.Args[0] == a0.Args[1] {
		return nil, fmt.Errorf("reduction: %s-atoms do not form a permutation", rel)
	}
	x, y := a0.Args[0], a0.Args[1]

	// Components of q minus the two R-atoms.
	var rest []int
	for i := range q.Atoms {
		if i != rAtoms[0] && i != rAtoms[1] {
			rest = append(rest, i)
		}
	}
	sub := q.SubQuery(rest)
	out := map[string]string{q.VarName(x): xName, q.VarName(y): yName}
	for _, comp := range sub.Components() {
		compVars := map[string]bool{}
		for _, i := range comp {
			for _, v := range sub.VarsOf(i) {
				compVars[sub.VarName(v)] = true
			}
		}
		var side string
		switch {
		case compVars[q.VarName(x)] && compVars[q.VarName(y)]:
			return nil, fmt.Errorf("reduction: a non-R component touches both x and y; query is not a clean bound permutation")
		case compVars[q.VarName(x)]:
			side = xName
		case compVars[q.VarName(y)]:
			side = yName
		default:
			return nil, fmt.Errorf("reduction: component %v touches neither x nor y", comp)
		}
		for vn := range compVars {
			out[vn] = side
		}
	}
	return out, nil
}
