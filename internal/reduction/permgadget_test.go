package reduction

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/resilience"
	"repro/internal/sat"
)

func checkPermReduction(t *testing.T, psi *sat.Formula) {
	t.Helper()
	q := cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)")
	red := NewPermAB3SAT(psi)
	want := psi.Satisfiable()
	got, err := resilience.Decide(q, red.DB, red.K)
	if err != nil {
		t.Fatalf("%v\nformula: %v", err, psi.Clauses)
	}
	if got != want {
		res, _ := resilience.Exact(q, red.DB)
		t.Fatalf("qABperm reduction broken: sat=%v, ρ=%d, k=%d\nformula: %v",
			want, res.Rho, red.K, psi.Clauses)
	}
	if want {
		res, err := resilience.ExactWithBudget(q, red.DB, red.K-1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rho <= red.K-1 {
			t.Fatalf("ρ=%d < k=%d: qABperm gadget too weak\nformula: %v", res.Rho, red.K, psi.Clauses)
		}
	}
}

func TestPermAB3SATSatisfiableTiny(t *testing.T) {
	// All single-clause formulas over 3 variables (always satisfiable).
	count := 0
	sat.EnumerateAll3SAT(3, 1, func(psi *sat.Formula) bool {
		count++
		checkPermReduction(t, psi)
		return !t.Failed() && count < 4 // 4 sign patterns keep runtime sane
	})
}

func TestPermAB3SATUnsat(t *testing.T) {
	psi := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{
		{1, 1, 1}, {-1, -1, -1},
	}}
	if psi.Satisfiable() {
		t.Fatal("formula should be unsat")
	}
	checkPermReduction(t, psi)
}

func TestPermAB3SATMixedPolarity(t *testing.T) {
	psi := &sat.Formula{NumVars: 3, Clauses: []sat.Clause{{1, -2, 3}, {-1, 2, -3}}}
	checkPermReduction(t, psi)
}

func TestPermAB3SATVariableGadgetCost(t *testing.T) {
	// A single-variable, single-clause instance isolates the accounting:
	// kψ = 3·1·1 + 5 = 8 for the satisfiable clause (x ∨ x ∨ x).
	psi := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1, 1, 1}}}
	red := NewPermAB3SAT(psi)
	if red.K != 8 {
		t.Fatalf("k = %d, want 8", red.K)
	}
	q := cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)")
	res, err := resilience.Exact(q, red.DB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 8 {
		t.Errorf("ρ = %d, want exactly 8", res.Rho)
	}
}
