// Package reduction makes the paper's NP-hardness reductions executable:
// given a source instance (a graph, a 3CNF formula), it constructs the
// database and budget (D, k) such that the source instance is a yes-instance
// iff (D, k) ∈ RES(q). The test suite verifies every gadget against the
// exact resilience solver and a real SAT / vertex cover oracle, which is
// this repository's way of "reproducing" the paper's hardness figures
// (Figures 8, 10-16).
package reduction

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/vertexcover"
)

// VCtoQVC implements Proposition 9: for a graph G, build the database
// D_G over qvc :- R(x), S(x,y), R(y) with R = vertices and S = edges.
// Then (G, k) ∈ VC ⇔ (D_G, k) ∈ RES(qvc); in particular
// ρ(qvc, D_G) = VC(G) whenever G has at least one edge.
func VCtoQVC(g *vertexcover.Graph) *db.Database {
	d := db.New()
	for v := 0; v < g.N; v++ {
		d.AddNames("R", vname(v))
	}
	for _, e := range g.Edges() {
		d.AddNames("S", vname(e[0]), vname(e[1]))
	}
	return d
}

func vname(v int) string { return fmt.Sprintf("v%d", v) }
