package reduction

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/sat"
)

// Chain3SAT is the 3SAT → RES(qchain-family) reduction of Proposition 10
// and Lemmas 52-54: a database Dψ and budget kψ with
//
//	ψ ∈ 3SAT  ⇔  ρ(q, Dψ) = kψ   (and ρ > kψ otherwise)
//
// for qchain and each of its unary expansions (Figure 6a).
type Chain3SAT struct {
	DB *db.Database
	K  int
}

// ChainLayout selects the gadget orientation. The variable gadget is the
// same in all layouts — a cycle of 2m R-tuples per variable,
// T_j = R(v_i^j, w_i^j) ("true"/blue) and F_j = R(w_i^j, v_i^{j+1 mod m})
// ("false"/red), whose minimum covers are exactly the all-T and all-F
// alternating sets (cost m) — but the clause gadgets differ because unary
// atoms change which tuples can cheaply kill connector witnesses.
type ChainLayout int

const (
	// LayoutOut (Proposition 10 / Lemma 52): connectors leave the variable
	// cycle into clause pendants, R(w_i^j, a'_j) for a positive literal
	// (the witness {T_j, connector} is pre-broken when the literal is
	// true) and R(v_i^{j+1}, a'_j) for a negative one. Sound for qchain
	// and the B/C expansions, where no unary atom sits at the chain start.
	LayoutOut ChainLayout = iota
	// LayoutIn (Lemma 53): connector nodes a''_j inside the clause gadget
	// with R(a''_j, a'_j) and a literal edge R(a''_j, v_i^j) (positive;
	// the literal witness (a'', v_i^j, w_i^j) contains T_j) or
	// R(a''_j, w_i^j) (negative). Needed when an A-atom guards the chain
	// start: all connector witnesses now start inside the clause gadget.
	LayoutIn
	// LayoutStar (Lemma 54): pendant chains exit through star nodes,
	// R(a'_j, *a_j), R(*a_j, a''_j), and the literal edge runs from the
	// variable cycle into a''_j: R(w_i^j, a''_j) for positive (witness
	// {A(v_i^j), T_j, link, C(a''_j)}), R(v_i^{j+1}, a''_j) for negative.
	// Needed when both A and C atoms bound the chain.
	LayoutStar
)

// LayoutFor returns the verified layout for a chain expansion given which
// unary relations the target query uses ("A" at x, "B" at y, "C" at z).
// The second result says whether the database must be mirrored (all
// R-tuples reversed): qcchain is the exact mirror image of qachain —
// reversing every R-tuple carries ρ(qachain, D) to ρ(qcchain, reverse(D))
// — so the C-side expansions reuse the A-side gadgets through reversal.
func LayoutFor(unary ...string) (ChainLayout, bool) {
	hasA, hasC := false, false
	for _, u := range unary {
		switch u {
		case "A":
			hasA = true
		case "C":
			hasC = true
		}
	}
	switch {
	case hasA && hasC:
		return LayoutStar, false
	case hasA:
		return LayoutIn, false
	case hasC:
		return LayoutIn, true
	default:
		return LayoutOut, false
	}
}

// reverseBinary returns a copy of d with every binary tuple reversed
// (unary tuples unchanged). Chain witnesses (x,y,z) map to (z,y,x), so
// resilience under a query is resilience of the mirror query on the
// reversed database.
func reverseBinary(d *db.Database) *db.Database {
	out := db.New()
	for _, t := range d.AllTuples() {
		if t.Arity == 2 {
			out.AddNames(t.Rel, d.ConstName(t.Args[1]), d.ConstName(t.Args[0]))
		} else {
			names := make([]string, t.Arity)
			for i, v := range t.Values() {
				names[i] = d.ConstName(v)
			}
			out.AddNames(t.Rel, names...)
		}
	}
	return out
}

// NewChain3SAT builds the reduction for ψ targeting the chain expansion
// with the given unary relations (subset of {"A","B","C"}), choosing the
// sound gadget layout automatically. kψ = n·m + 5·m: m per variable cycle
// plus 5 per satisfied clause gadget (6 when unsatisfiable, which pushes ρ
// above kψ).
func NewChain3SAT(psi *sat.Formula, unaryRels ...string) *Chain3SAT {
	layout, mirror := LayoutFor(unaryRels...)
	red := NewChain3SATLayout(psi, layout, unaryRels...)
	if mirror {
		red.DB = reverseBinary(red.DB)
	}
	return red
}

// NewChain3SATLayout builds the reduction with an explicit layout (the
// tests use this to demonstrate which layouts fail for which expansions).
func NewChain3SATLayout(psi *sat.Formula, layout ChainLayout, unaryRels ...string) *Chain3SAT {
	d := db.New()
	m := len(psi.Clauses)
	n := psi.NumVars
	if m == 0 {
		panic("reduction: formula needs at least one clause")
	}

	pos := func(i, j int) string { return fmt.Sprintf("v%d_%d", i, j) }
	neg := func(i, j int) string { return fmt.Sprintf("w%d_%d", i, j) }

	// Variable gadgets: cycles of 2m tuples.
	for i := 1; i <= n; i++ {
		for j := 0; j < m; j++ {
			d.AddNames("R", pos(i, j), neg(i, j))       // T_j (blue, "true")
			d.AddNames("R", neg(i, j), pos(i, (j+1)%m)) // F_j (red, "false")
		}
	}

	// Clause gadgets.
	for j, clause := range psi.Clauses {
		a := fmt.Sprintf("a%d", j)
		b := fmt.Sprintf("b%d", j)
		c := fmt.Sprintf("c%d", j)
		corner := []string{a, b, c}
		d.AddNames("R", a, b)
		d.AddNames("R", b, c)
		d.AddNames("R", c, a)
		for _, x := range corner {
			d.AddNames("R", x+"'", x) // pendant
		}
		for p, lit := range clause {
			if p >= 3 {
				break
			}
			i := lit.Var()
			prime := corner[p] + "'"
			dprime := corner[p] + "''"
			star := corner[p] + "*"
			switch layout {
			case LayoutOut:
				if lit.Positive() {
					d.AddNames("R", neg(i, j), prime)
				} else {
					d.AddNames("R", pos(i, (j+1)%m), prime)
				}
			case LayoutIn:
				d.AddNames("R", dprime, prime)
				if lit.Positive() {
					d.AddNames("R", dprime, pos(i, j))
				} else {
					d.AddNames("R", dprime, neg(i, j))
				}
			case LayoutStar:
				d.AddNames("R", prime, star)
				d.AddNames("R", star, dprime)
				if lit.Positive() {
					d.AddNames("R", neg(i, j), dprime)
				} else {
					d.AddNames("R", pos(i, (j+1)%m), dprime)
				}
			}
		}
	}

	// Unary expansions: one tuple per constant per requested relation,
	// preserving every witness (Lemmas 52-54 show the unary tuples are
	// never strictly better than R-tuples under the matching layout).
	if len(unaryRels) > 0 {
		consts := map[string]bool{}
		for _, t := range d.AllTuples() {
			for _, v := range t.Values() {
				consts[d.ConstName(v)] = true
			}
		}
		for _, rel := range unaryRels {
			for cname := range consts {
				d.AddNames(rel, cname)
			}
		}
	}

	return &Chain3SAT{DB: d, K: n*m + 5*m}
}
