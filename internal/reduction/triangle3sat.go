package reduction

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/sat"
)

// Triangle3SAT is the 3SAT → RES(q△) reduction of Proposition 56
// (Appendix B, Figure 16): a database Dψ over relations R, S, T and a
// budget kψ = 6·m·n with
//
//	ψ ∈ 3SAT  ⇔  ρ(q△, Dψ) = kψ   (and ρ > kψ otherwise)
//
// for the triangle query q△ :- R(x,y), S(y,z), T(z,x).
//
// The construction follows the paper's shape. Each variable contributes a
// circular gadget of 2m six-edge segments (12m edges, 12m RGB triangles)
// whose only minimum covers are the two alternating edge sets — 6m "true"
// edges or 6m "false" edges. Each clause contributes one extra RGB
// triangle assembled by identifying vertices of three literal edges, one
// per gadget, chosen so the triangle is pre-broken exactly when the
// corresponding literal is satisfied. Odd-numbered segments carry the
// clause identifications; even segments are the paper's "sad" buffers
// that keep identifications of different clauses six edges apart so no
// spurious RGB triangle can form.
type Triangle3SAT struct {
	// DB is the gadget database over R, S, T (or over R plus unary A/B
	// for the self-join variations, see SelfJoinRats / SelfJoinBrats).
	DB *db.Database
	// K is the budget kψ = 6·m·n.
	K int
}

// triangleBuilder accumulates directed colored edges under a union-find
// over vertex names, so clause gadgets can identify vertices of different
// variable gadgets before the tuples are emitted.
type triangleBuilder struct {
	parent map[string]string
	edges  []triEdge
}

type triEdge struct {
	color int // 0 = R, 1 = S, 2 = T
	from  string
	to    string
}

func newTriangleBuilder() *triangleBuilder {
	return &triangleBuilder{parent: map[string]string{}}
}

func (b *triangleBuilder) find(x string) string {
	p, ok := b.parent[x]
	if !ok {
		b.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := b.find(p)
	b.parent[x] = r
	return r
}

func (b *triangleBuilder) union(x, y string) {
	rx, ry := b.find(x), b.find(y)
	if rx != ry {
		b.parent[rx] = ry
	}
}

func (b *triangleBuilder) addEdge(color int, from, to string) {
	b.find(from)
	b.find(to)
	b.edges = append(b.edges, triEdge{color: color, from: from, to: to})
}

var triangleRels = [3]string{"R", "S", "T"}

// emit writes the accumulated edges into a fresh database, resolving
// vertex identifications. rename maps a color to the relation name used
// for it (identity for q△; all "R" for the self-join variations).
func (b *triangleBuilder) emit(rename func(color int) string) *db.Database {
	d := db.New()
	for _, e := range b.edges {
		d.AddNames(rename(e.color), b.find(e.from), b.find(e.to))
	}
	return d
}

// vertexNames returns the canonical names of all vertices.
func (b *triangleBuilder) vertexNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range b.edges {
		for _, v := range []string{b.find(e.from), b.find(e.to)} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// The variable gadget is a cycle of L = 12m edges e_0..e_{L-1} with
// e_t : u_t → u_{t+1} colored t mod 3 (R, S, T cyclically), closed by
// private edges p_t : u_{t+2} → u_t colored (t+2) mod 3. Every consecutive
// pair (e_t, e_{t+1}) forms the RGB triangle {e_t, e_{t+1}, p_t}, so the
// 12m triangles form a witness cycle whose only 6m-covers are the even
// e-edges ("true") or the odd e-edges ("false").
//
// Within segment 2j (the odd, usable block of clause j in paper terms),
// the edge at residue r carries color r mod 3 and polarity even(r), which
// yields one representative edge per (color, polarity) pair:
//
//	R-true: r=0   S-false: r=1   T-true: r=2
//	R-false: r=3  S-true: r=4    T-false: r=5
const (
	triSegment = 12 // edges per (clause block + buffer block) pair
)

// literalResidue returns the in-block residue of the edge representing a
// literal at clause position p (which fixes the color: R for position 0, S
// for 1, T for 2). A positive literal must use an edge deleted when the
// variable is true (even residue); a negative literal an odd residue.
func literalResidue(position int, positive bool) int {
	table := [3][2]int{
		// {true-side residue, false-side residue} per color.
		{0, 3}, // R
		{4, 1}, // S
		{2, 5}, // T
	}
	if positive {
		return table[position][0]
	}
	return table[position][1]
}

func triVertex(varIdx, t int) string { return fmt.Sprintf("u%d_%d", varIdx, t) }

// normalizeClauses brings ψ into the form the gadget needs: duplicate
// literals within a clause are dropped, tautological clauses (x ∨ ¬x ∨ …)
// are removed entirely, and the result has 1-3 literals over distinct
// variables per clause. Satisfiability is unchanged.
func normalizeClauses(psi *sat.Formula) []sat.Clause {
	var out []sat.Clause
	for _, clause := range psi.Clauses {
		var kept sat.Clause
		taut := false
		seen := map[sat.Literal]bool{}
		for _, lit := range clause {
			if seen[-lit] {
				taut = true
				break
			}
			if !seen[lit] {
				seen[lit] = true
				kept = append(kept, lit)
			}
		}
		if taut {
			continue
		}
		if len(kept) > 3 {
			panic(fmt.Sprintf("reduction: clause %v has width %d > 3", clause, len(kept)))
		}
		out = append(out, kept)
	}
	return out
}

// buildTriangle3SAT lays out the gadget edges for ψ. After normalization
// every clause has 1-3 literals over distinct variables: a clause with a
// repeated variable would identify two vertices of the same gadget block
// and could create spurious triangles, so duplicates are collapsed first.
// Clauses shorter than three literals are closed into an RGB triangle with
// fresh private edges, which participate in no other witness; with the
// budget saturated by the variable gadgets they can never be chosen, so
// the clause triangle is still broken exactly when a literal is true.
func buildTriangle3SAT(psi *sat.Formula) (*triangleBuilder, int) {
	clauses := normalizeClauses(psi)
	m := len(clauses)
	n := psi.NumVars
	if m == 0 {
		panic("reduction: formula needs at least one non-tautological clause")
	}
	b := newTriangleBuilder()

	// Variable gadgets: cycles of L = 12m edges plus 12m private edges.
	L := triSegment * m
	for i := 1; i <= n; i++ {
		for t := 0; t < L; t++ {
			b.addEdge(t%3, triVertex(i, t), triVertex(i, (t+1)%L))
			b.addEdge((t+2)%3, triVertex(i, (t+2)%L), triVertex(i, t))
		}
	}

	// Clause gadgets: identify the heads and tails of the literal edges so
	// they close into one new RGB triangle
	// R(τ0,η0), S(τ1,η1), T(τ2,η2) with η0=τ1, η1=τ2, η2=τ0.
	// Positions missing from short clauses are filled with fresh edges.
	for j, clause := range clauses {
		seen := map[int]bool{}
		tails := make([]string, 3)
		heads := make([]string, 3)
		for p, lit := range clause {
			i := lit.Var()
			if seen[i] {
				panic(fmt.Sprintf("reduction: clause %d repeats variable %d after normalization", j, i))
			}
			seen[i] = true
			t := triSegment*j + literalResidue(p, lit.Positive())
			tails[p] = triVertex(i, t)
			heads[p] = triVertex(i, t+1)
		}
		for p := len(clause); p < 3; p++ {
			tails[p] = fmt.Sprintf("w%d_%d", j, p)
			heads[p] = fmt.Sprintf("w%d_%d", j, p+1)
		}
		for p := len(clause); p < 3; p++ {
			b.addEdge(p, tails[p], heads[p])
		}
		b.union(heads[0], tails[1])
		b.union(heads[1], tails[2])
		b.union(heads[2], tails[0])
	}
	return b, 6 * m * n
}

// NewTriangle3SAT builds the Proposition 56 reduction targeting the
// triangle query q△ :- R(x,y), S(y,z), T(z,x).
func NewTriangle3SAT(psi *sat.Formula) *Triangle3SAT {
	b, k := buildTriangle3SAT(psi)
	return &Triangle3SAT{DB: b.emit(func(c int) string { return triangleRels[c] }), K: k}
}

// NewRats3SAT builds the Lemma 50 reduction targeting the self-join
// variation qsj1rats :- R(x,y), A(x), R(y,z), R(z,x): the triangle gadget
// with all three colors collapsed onto the single relation R, plus a unary
// A-fact for every vertex. Each RGB triangle of Dψ becomes three rotated
// witnesses over the same R-tuples, so hitting sets and the budget
// kψ = 6·m·n carry over; A-tuples each kill only one rotation per incident
// triangle, so they are never a better choice than R-tuples.
func NewRats3SAT(psi *sat.Formula) *Triangle3SAT {
	b, k := buildTriangle3SAT(psi)
	d := b.emit(func(int) string { return "R" })
	for _, v := range b.vertexNames() {
		d.AddNames("A", v)
	}
	return &Triangle3SAT{DB: d, K: k}
}

// NewBrats3SAT builds the Lemma 51 reduction targeting
// qsj1brats :- B(y), R(x,y), A(x), R(z,x), R(y,z): the rats gadget with a
// unary B-fact for every vertex as well.
func NewBrats3SAT(psi *sat.Formula) *Triangle3SAT {
	b, k := buildTriangle3SAT(psi)
	d := b.emit(func(int) string { return "R" })
	for _, v := range b.vertexNames() {
		d.AddNames("A", v)
		d.AddNames("B", v)
	}
	return &Triangle3SAT{DB: d, K: k}
}
