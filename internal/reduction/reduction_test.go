package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/resilience"
	"repro/internal/sat"
	"repro/internal/vertexcover"
)

func TestVCtoQVCExactEquivalence(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		g := vertexcover.RandomGraph(rng, 3+rng.Intn(6), 0.5)
		if g.NumEdges() == 0 {
			continue
		}
		d := VCtoQVC(g)
		res, err := resilience.Exact(q, d)
		if err != nil {
			t.Fatal(err)
		}
		vc, _ := g.MinVertexCover()
		if res.Rho != vc {
			t.Fatalf("trial %d: ρ=%d VC=%d", trial, res.Rho, vc)
		}
	}
}

func TestVCtoQVCNamedGraphs(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	cases := []struct {
		g    *vertexcover.Graph
		want int
	}{
		{vertexcover.Cycle(5), 3},
		{vertexcover.Complete(4), 3},
		{vertexcover.Star(6), 1},
		{vertexcover.Path(6), 3}, // wait: P6 has 5 edges, VC = 3? covers: 1,3... P6 vertices 0..5: cover {1,3,4}? edges 01,12,23,34,45 -> {1,3,4} hits 01(1),12(1),23(3),34(3),45(4): size 3.
	}
	for i, c := range cases {
		res, err := resilience.Exact(q, VCtoQVC(c.g))
		if err != nil {
			t.Fatal(err)
		}
		vc, _ := c.g.MinVertexCover()
		if res.Rho != vc || vc != c.want {
			t.Errorf("case %d: ρ=%d, VC=%d, want %d", i, res.Rho, vc, c.want)
		}
	}
}

// checkChainReduction verifies the 3SAT reduction property on ψ for the
// given query: ψ sat => ρ == k; ψ unsat => ρ > k.
func checkChainReduction(t *testing.T, q *cq.Query, psi *sat.Formula, unary ...string) {
	t.Helper()
	red := NewChain3SAT(psi, unary...)
	want := psi.Satisfiable()
	// Decision via budget: (D, k) ∈ RES(q)?
	got, err := resilience.Decide(q, red.DB, red.K)
	if err != nil {
		t.Fatalf("%v\nformula: %v", err, psi.Clauses)
	}
	if got != want {
		res, _ := resilience.Exact(q, red.DB)
		t.Fatalf("%s: reduction broken: sat=%v but ρ=%d vs k=%d\nformula: %v",
			q.Name, want, res.Rho, red.K, psi.Clauses)
	}
	if want {
		// Sharper check: ρ must equal k exactly for satisfiable formulas.
		res, err := resilience.ExactWithBudget(q, red.DB, red.K-1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rho <= red.K-1 {
			t.Fatalf("%s: ρ=%d < k=%d: gadget too weak\nformula: %v", q.Name, res.Rho, red.K, psi.Clauses)
		}
	}
}

func TestChain3SATExhaustiveTiny(t *testing.T) {
	// All 3-variable single-clause formulas (8 sign patterns): always sat.
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	sat.EnumerateAll3SAT(3, 1, func(psi *sat.Formula) bool {
		checkChainReduction(t, q, psi)
		return !t.Failed()
	})
}

func TestChain3SATUnsatFormula(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	// Minimal unsatisfiable 3CNF using repeated literals:
	// (x ∨ x ∨ x) ∧ (¬x ∨ ¬x ∨ ¬x).
	psi := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{
		{1, 1, 1}, {-1, -1, -1},
	}}
	if psi.Satisfiable() {
		t.Fatal("formula should be unsat")
	}
	checkChainReduction(t, q, psi)
}

func TestChain3SATUnsatTwoVars(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	// (x∨y) ∧ (x∨¬y) ∧ (¬x∨y) ∧ (¬x∨¬y), padded to width 3.
	psi := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{
		{1, 2, 2}, {1, -2, -2}, {-1, 2, 2}, {-1, -2, -2},
	}}
	if psi.Satisfiable() {
		t.Fatal("formula should be unsat")
	}
	checkChainReduction(t, q, psi)
}

func TestChain3SATRandomSmall(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 8; trial++ {
		psi := sat.Random3SAT(rng, 3, 2+rng.Intn(2))
		checkChainReduction(t, q, psi)
	}
}

func TestChain3SATUnaryExpansions(t *testing.T) {
	// Lemmas 52-54: the same construction extended with unary tuples works
	// for every expansion of qchain.
	cases := []struct {
		q     string
		unary []string
	}{
		{"qachain :- A(x), R(x,y), R(y,z)", []string{"A"}},
		{"qbchain :- R(x,y), B(y), R(y,z)", []string{"B"}},
		{"qcchain :- R(x,y), R(y,z), C(z)", []string{"C"}},
		{"qabchain :- A(x), R(x,y), B(y), R(y,z)", []string{"A", "B"}},
		{"qacchain :- A(x), R(x,y), R(y,z), C(z)", []string{"A", "C"}},
		{"qabcchain :- A(x), R(x,y), B(y), R(y,z), C(z)", []string{"A", "B", "C"}},
	}
	rng := rand.New(rand.NewSource(53))
	for _, c := range cases {
		q := cq.MustParse(c.q)
		for trial := 0; trial < 3; trial++ {
			psi := sat.Random3SAT(rng, 3, 2)
			checkChainReduction(t, q, psi, c.unary...)
		}
	}
}

func TestChain3SATLayoutMatters(t *testing.T) {
	// Negative control reproducing the reason Lemma 53 exists: with an
	// A-atom at the chain start, the LayoutOut connectors (variable cycle
	// into clause pendants) admit a cheat — A-tuples kill connector
	// witnesses cheaply — so ρ drops below kψ. LayoutIn repairs it.
	q := cq.MustParse("qachain :- A(x), R(x,y), R(y,z)")
	psi := &sat.Formula{NumVars: 3, Clauses: []sat.Clause{{1, 3, 2}, {-2, -1, 3}}}
	broken := NewChain3SATLayout(psi, LayoutOut, "A")
	res, err := resilience.Exact(q, broken.DB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho >= broken.K {
		t.Errorf("LayoutOut with A: ρ=%d >= k=%d; expected the documented cheat", res.Rho, broken.K)
	}
	good := NewChain3SATLayout(psi, LayoutIn, "A")
	res2, err := resilience.Exact(q, good.DB)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rho != good.K {
		t.Errorf("LayoutIn with A: ρ=%d, want k=%d (formula is satisfiable)", res2.Rho, good.K)
	}
}

func TestChainLayoutSelection(t *testing.T) {
	cases := []struct {
		unary []string
		want  ChainLayout
	}{
		{nil, LayoutOut},
		{[]string{"B"}, LayoutOut},
		{[]string{"C"}, LayoutIn}, // mirrored qachain gadget
		{[]string{"B", "C"}, LayoutIn},
		{[]string{"A"}, LayoutIn},
		{[]string{"A", "B"}, LayoutIn},
		{[]string{"A", "C"}, LayoutStar},
		{[]string{"A", "B", "C"}, LayoutStar},
	}
	for _, c := range cases {
		if got, _ := LayoutFor(c.unary...); got != c.want {
			t.Errorf("LayoutFor(%v) = %v, want %v", c.unary, got, c.want)
		}
	}
}

func TestChain3SATBudgetDirection(t *testing.T) {
	// The decision equivalence must be monotone in k: for k' >= k of a
	// satisfiable formula, (D, k') ∈ RES(qchain) as well.
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	psi := &sat.Formula{NumVars: 3, Clauses: []sat.Clause{{1, 2, 3}, {-1, -2, 3}}}
	red := NewChain3SAT(psi)
	ok, err := resilience.Decide(q, red.DB, red.K+3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("larger budget must stay a yes-instance")
	}
	ok, err = resilience.Decide(q, red.DB, red.K-1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("budget k-1 must be a no-instance (minimum is exactly k)")
	}
}
