package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/resilience"
	"repro/internal/vertexcover"
)

// rhoOf computes ρ or fails the test; unbreakable instances return -1 so
// callers can assert both sides agree even when no contingency set exists.
func rhoOf(t *testing.T, q *cq.Query, d *db.Database) int {
	t.Helper()
	res, err := resilience.Exact(q, d)
	if err == resilience.ErrUnbreakable {
		return -1
	}
	if err != nil {
		t.Fatalf("%s: %v", q.Name, err)
	}
	return res.Rho
}

// --- Lemma 21: self-join variations preserve resilience exactly ---

func TestSelfJoinVariationTriangle(t *testing.T) {
	qfree := cq.MustParse("qtriangle :- R(x,y), S(y,z), T(z,x)")
	variations := []*cq.Query{
		cq.MustParse("qsj1 :- R(x,y), R(y,z), R(z,x)"),
		cq.MustParse("qsj2 :- R(x,y), R(y,z), T(z,x)"),
		cq.MustParse("qsj3 :- R(x,y), S(y,z), R(z,x)"),
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		d := datagen.Random(rng, qfree, 5, 8, 0)
		if !eval.Satisfied(qfree, d) {
			continue
		}
		want := rhoOf(t, qfree, d)
		for _, qsj := range variations {
			dsj, err := SelfJoinVariationDB(qfree, qsj, d)
			if err != nil {
				t.Fatalf("%s: %v", qsj.Name, err)
			}
			if got := rhoOf(t, qsj, dsj); got != want {
				t.Errorf("trial %d %s: ρ=%d, want %d (= ρ of sj-free source)", trial, qsj.Name, got, want)
			}
		}
	}
}

func TestSelfJoinVariationChain(t *testing.T) {
	// qchain itself is a self-join variation of the sj-free two-step path.
	qfree := cq.MustParse("qpath :- R(x,y), S(y,z)")
	qsj := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		d := datagen.Random(rng, qfree, 5, 7, 0)
		if !eval.Satisfied(qfree, d) {
			continue
		}
		dsj, err := SelfJoinVariationDB(qfree, qsj, d)
		if err != nil {
			t.Fatal(err)
		}
		want, got := rhoOf(t, qfree, d), rhoOf(t, qsj, dsj)
		if got != want {
			t.Errorf("trial %d: ρ(qchain,D')=%d, want %d", trial, got, want)
		}
	}
}

func TestSelfJoinVariationWitnessTupleSets(t *testing.T) {
	// The tagged constants give a 1:1 correspondence of witness *tuple
	// sets* (and hence of contingency sets). Witness assignments may
	// multiply — in the all-R variation every source triangle is seen
	// three times, once per rotation — but all rotations use the same
	// three tuples, so the number of distinct tuple sets is preserved.
	qfree := cq.MustParse("qtriangle :- R(x,y), S(y,z), T(z,x)")
	qsj := cq.MustParse("qsj1 :- R(x,y), R(y,z), R(z,x)")
	rng := rand.New(rand.NewSource(9))
	distinctSets := func(q *cq.Query, d *db.Database) int {
		sets, _ := eval.EndoWitnessSets(q, d)
		seen := map[string]bool{}
		for _, set := range sets {
			ts := append([]db.Tuple(nil), set...)
			db.SortTuples(ts)
			key := ""
			for _, tup := range ts {
				key += d.TupleString(tup) + ";"
			}
			seen[key] = true
		}
		return len(seen)
	}
	for trial := 0; trial < 8; trial++ {
		d := datagen.Random(rng, qfree, 5, 9, 0)
		dsj, err := SelfJoinVariationDB(qfree, qsj, d)
		if err != nil {
			t.Fatal(err)
		}
		if nf, ns := distinctSets(qfree, d), distinctSets(qsj, dsj); nf != ns {
			t.Errorf("trial %d: %d source tuple sets vs %d variation tuple sets", trial, nf, ns)
		}
	}
}

func TestSelfJoinVariationRejectsNonMinimal(t *testing.T) {
	// Example 22: the 4-cycle variation collapses to R(x,y) and the lemma
	// does not apply.
	qfree := cq.MustParse("q :- R(x,y), S(z,y), T(z,w), A(x,w)")
	qsj := cq.MustParse("qsj :- R(x,y), R(z,y), R(z,w), R(x,w)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("S", "3", "2")
	d.AddNames("T", "3", "4")
	d.AddNames("A", "1", "4")
	if _, err := SelfJoinVariationDB(qfree, qsj, d); err == nil {
		t.Fatal("want rejection of non-minimal variation (Example 22)")
	}
}

func TestSelfJoinVariationRejectsBodyMismatch(t *testing.T) {
	qfree := cq.MustParse("q :- R(x,y), S(y,z)")
	qsj := cq.MustParse("qsj :- R(x,y), R(z,y)") // different argument order
	if _, err := SelfJoinVariationDB(qfree, qsj, db.New()); err == nil {
		t.Fatal("want rejection when atom bodies do not line up")
	}
}

// --- Theorems 27/28: the generic path reduction ---

func checkPathVC(t *testing.T, q *cq.Query, rng *rand.Rand, trials int) {
	t.Helper()
	for trial := 0; trial < trials; trial++ {
		g := vertexcover.RandomGraph(rng, 3+rng.Intn(4), 0.5)
		if g.NumEdges() == 0 {
			continue
		}
		red, err := NewPathVC(q, g)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		vc, _ := g.MinVertexCover()
		if got := rhoOf(t, q, red.DB); got != vc {
			t.Errorf("%s trial %d: ρ=%d, VC=%d\ngraph edges: %v", q.Name, trial, got, vc, g.Edges())
		}
	}
}

func TestPathVCUnary(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, qs := range []string{
		"qvc :- R(x), S(x,y), R(y)",
		"qpath2 :- R(x), S(x,u), T(u,y), R(y)",
		"qpathext :- A(x), R(x), S(x,y), R(y), B(y)",
	} {
		checkPathVC(t, cq.MustParse(qs), rng, 6)
	}
}

func TestPathVCBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, qs := range []string{
		"z1 :- R(x,x), S(x,y), R(y,y)",
		"z2 :- R(x,x), S(x,y), R(y,z)",
		"qbinpath :- R(x,y), S(y,z), R(z,w)",
	} {
		checkPathVC(t, cq.MustParse(qs), rng, 6)
	}
}

func TestPathVCNamedGraphs(t *testing.T) {
	q := cq.MustParse("qpath2 :- R(x), S(x,u), T(u,y), R(y)")
	cases := []struct {
		g    *vertexcover.Graph
		want int
	}{
		{vertexcover.Cycle(5), 3},
		{vertexcover.Star(5), 1},
		{vertexcover.Complete(4), 3},
	}
	for i, c := range cases {
		red, err := NewPathVC(q, c.g)
		if err != nil {
			t.Fatal(err)
		}
		if got := rhoOf(t, q, red.DB); got != c.want {
			t.Errorf("case %d: ρ=%d, want %d", i, got, c.want)
		}
	}
}

func TestPathVCRejectsNonPath(t *testing.T) {
	// qchain's R-atoms share y: no binary path.
	if _, err := NewPathVC(cq.MustParse("qchain :- R(x,y), R(y,z)"), vertexcover.Cycle(3)); err == nil {
		t.Fatal("want rejection: chain atoms are R-connected")
	}
	// Two self-join relations are out of scope.
	if _, err := NewPathVC(cq.MustParse("q :- R(x), S(x,y), R(y), S(y,z)"), vertexcover.Cycle(3)); err == nil {
		t.Fatal("want rejection: S also self-joins")
	}
}

// --- Propositions 30/35: the witness-preserving embedding ---

func TestEmbedChainExpansion(t *testing.T) {
	// Target: a chain plus satellite atoms hanging off the chain variables.
	// Source: the matching unary expansion of qchain.
	qsrc := cq.MustParse("qachain :- A(x), R(x,y), R(y,z)")
	qdst := cq.MustParse("q :- A(x), R(x,y), R(y,z), S(z,u), F(u,w)")
	varMap := map[string]string{"x": "x", "y": "y", "z": "z"}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 12; trial++ {
		d := datagen.Random(rng, qsrc, 5, 8, 0)
		if !eval.Satisfied(qsrc, d) {
			continue
		}
		dd, err := Embed(qsrc, qdst, varMap, d)
		if err != nil {
			t.Fatal(err)
		}
		want, got := rhoOf(t, qsrc, d), rhoOf(t, qdst, dd)
		if got != want {
			t.Errorf("trial %d: ρ(target)=%d, want %d", trial, got, want)
		}
	}
}

func TestEmbedBoundPermutation(t *testing.T) {
	// Target: bound permutation with satellites on both sides (Prop 35
	// case 2). Source: qABperm.
	qsrc := cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)")
	qdst := cq.MustParse("q :- A(x), S(u,x), R(x,y), R(y,x), B(y), T(y,w)")
	varMap, err := PermVarMap(qdst, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	for _, vn := range []string{"u"} {
		if varMap[vn] != "x" {
			t.Fatalf("variable %s classified %q, want x-side", vn, varMap[vn])
		}
	}
	if varMap["w"] != "y" {
		t.Fatalf("variable w classified %q, want y-side", varMap["w"])
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 12; trial++ {
		d := datagen.Random(rng, qsrc, 5, 8, 0.5)
		if !eval.Satisfied(qsrc, d) {
			continue
		}
		dd, err := Embed(qsrc, qdst, varMap, d)
		if err != nil {
			t.Fatal(err)
		}
		want, got := rhoOf(t, qsrc, d), rhoOf(t, qdst, dd)
		if got != want {
			t.Errorf("trial %d: ρ(target)=%d, want %d", trial, got, want)
		}
	}
}

func TestPermVarMapRejectsBridgingComponent(t *testing.T) {
	// An atom touching both permutation variables (other than the R-atoms)
	// merges the sides; the Prop 35 map is then undefined.
	q := cq.MustParse("q :- A(x), D(x,y), R(x,y), R(y,x), B(y)")
	if _, err := PermVarMap(q, "x", "y"); err == nil {
		t.Fatal("want rejection: D(x,y) bridges the permutation sides")
	}
}

func TestEmbedRejectsUnknownSourceVariable(t *testing.T) {
	qsrc := cq.MustParse("qchain :- R(x,y), R(y,z)")
	qdst := cq.MustParse("q :- R(x,y), R(y,z), S(z,u)")
	if _, err := Embed(qsrc, qdst, map[string]string{"x": "nope"}, db.New()); err == nil {
		t.Fatal("want rejection of unmapped source variable")
	}
}
