package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/resilience"
	"repro/internal/sat"
)

var (
	qTriangle = cq.MustParse("qtriangle :- R(x,y), S(y,z), T(z,x)")
	qSj1Rats  = cq.MustParse("qsj1rats :- R(x,y), A(x), R(y,z), R(z,x)")
	qSj1Brats = cq.MustParse("qsj1brats :- B(y), R(x,y), A(x), R(z,x), R(y,z)")
)

// checkTriangleReduction verifies the Proposition 56 / Lemma 50 / Lemma 51
// reduction property on ψ: ψ sat => ρ == k; ψ unsat => ρ > k.
func checkTriangleReduction(t *testing.T, q *cq.Query, red *Triangle3SAT, psi *sat.Formula) {
	t.Helper()
	want := psi.Satisfiable()
	got, err := resilience.Decide(q, red.DB, red.K)
	if err != nil {
		t.Fatalf("%v\nformula: %v", err, psi.Clauses)
	}
	if got != want {
		res, _ := resilience.Exact(q, red.DB)
		t.Fatalf("%s: reduction broken: sat=%v but ρ=%d vs k=%d\nformula: %v",
			q.Name, want, res.Rho, red.K, psi.Clauses)
	}
	if want {
		// Sharper check: ρ must equal k exactly for satisfiable formulas.
		res, err := resilience.ExactWithBudget(q, red.DB, red.K-1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rho <= red.K-1 {
			t.Fatalf("%s: ρ=%d < k=%d: gadget too weak\nformula: %v", q.Name, res.Rho, red.K, psi.Clauses)
		}
	}
}

// TestTriangle3SATWitnessCount pins the gadget's witness structure: the
// database must contain exactly 12·m RGB triangles per variable gadget
// plus one per clause — any spurious triangle introduced by the clause
// identifications would show up here.
func TestTriangle3SATWitnessCount(t *testing.T) {
	cases := []*sat.Formula{
		{NumVars: 3, Clauses: []sat.Clause{{1, 2, 3}}},
		{NumVars: 3, Clauses: []sat.Clause{{1, -2, 3}, {-1, 2, -3}}},
		{NumVars: 4, Clauses: []sat.Clause{{1, 2, 3}, {2, -3, 4}}},
		{NumVars: 1, Clauses: []sat.Clause{{1}, {-1}}},
	}
	for _, psi := range cases {
		m := len(normalizeClauses(psi))
		n := psi.NumVars
		red := NewTriangle3SAT(psi)
		got := eval.CountWitnesses(qTriangle, red.DB)
		want := 12*m*n + m
		if got != want {
			t.Errorf("formula %v: %d witnesses, want %d (12mn + m with m=%d n=%d)",
				psi.Clauses, got, want, m, n)
		}
	}
}

// TestTriangle3SATVariableGadgetAlone checks the variable cycle in
// isolation: for a single variable and m clause slots the minimum
// contingency set has size exactly 6m (the two alternating edge sets).
func TestTriangle3SATVariableGadgetAlone(t *testing.T) {
	// Build a one-variable gadget with no clause identifications by using
	// a formula whose single clause is carried by a fresh second variable.
	psi := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{2}}}
	red := NewTriangle3SAT(psi)
	// Variable 1 has a pristine cycle; variable 2 carries the clause.
	// Total: both gadgets cost 6m each (m=1), clause pre-broken when
	// variable 2 is true, so ρ = 12.
	res, err := resilience.Exact(qTriangle, red.DB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 12 {
		t.Fatalf("ρ=%d, want 12 (6m per gadget, m=1, n=2)", res.Rho)
	}
}

func TestTriangle3SATExhaustiveSingleClause(t *testing.T) {
	// All 3-variable single-clause formulas (8 sign patterns): always sat.
	sat.EnumerateAll3SAT(3, 1, func(psi *sat.Formula) bool {
		checkTriangleReduction(t, qTriangle, NewTriangle3SAT(psi), psi)
		return !t.Failed()
	})
}

func TestTriangle3SATUnsatUnit(t *testing.T) {
	// (x) ∧ (¬x): the smallest unsat formula the gadget can carry.
	psi := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1}, {-1}}}
	if psi.Satisfiable() {
		t.Fatal("formula should be unsat")
	}
	checkTriangleReduction(t, qTriangle, NewTriangle3SAT(psi), psi)
}

func TestTriangle3SATUnsatRepeatedLiterals(t *testing.T) {
	// (x ∨ x ∨ x) ∧ (¬x ∨ ¬x ∨ ¬x) normalizes to (x) ∧ (¬x).
	psi := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1, 1, 1}, {-1, -1, -1}}}
	checkTriangleReduction(t, qTriangle, NewTriangle3SAT(psi), psi)
}

func TestTriangle3SATTautologyDropped(t *testing.T) {
	// (x ∨ ¬x ∨ y) is a tautology and must be dropped by normalization.
	psi := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{1, -1, 2}, {2}}}
	if got := len(normalizeClauses(psi)); got != 1 {
		t.Fatalf("normalizeClauses kept %d clauses, want 1", got)
	}
	checkTriangleReduction(t, qTriangle, NewTriangle3SAT(psi), psi)
}

func TestTriangle3SATRandomSmall(t *testing.T) {
	// Budgets grow as 6mn, and the branch-and-bound oracle's cost grows
	// super-polynomially with them (that blow-up is experiment E1's
	// point), so the random battery stays at n=2, m=2.
	rng := rand.New(rand.NewSource(53))
	sign := func() sat.Literal { return sat.Literal(1 - 2*rng.Intn(2)) }
	for trial := 0; trial < 3; trial++ {
		psi := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{
			{sign() * 1, sign() * 2},
			{sign() * 1, sign() * 2},
		}}
		checkTriangleReduction(t, qTriangle, NewTriangle3SAT(psi), psi)
	}
	psi := sat.Random3SAT(rng, 3, 1)
	checkTriangleReduction(t, qTriangle, NewTriangle3SAT(psi), psi)
}

func TestRats3SAT(t *testing.T) {
	cases := []*sat.Formula{
		{NumVars: 3, Clauses: []sat.Clause{{1, -2, 3}}},
		{NumVars: 2, Clauses: []sat.Clause{{1, 2}, {-1, 2}}},
		{NumVars: 1, Clauses: []sat.Clause{{1}, {-1}}}, // unsat
	}
	for _, psi := range cases {
		checkTriangleReduction(t, qSj1Rats, NewRats3SAT(psi), psi)
	}
}

func TestBrats3SAT(t *testing.T) {
	cases := []*sat.Formula{
		{NumVars: 2, Clauses: []sat.Clause{{1, -2}}},
		{NumVars: 1, Clauses: []sat.Clause{{1}, {-1}}}, // unsat
	}
	for _, psi := range cases {
		checkTriangleReduction(t, qSj1Brats, NewBrats3SAT(psi), psi)
	}
}

func TestTriangle3SATPanicsOnEmptyFormula(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on formula with no usable clauses")
		}
	}()
	NewTriangle3SAT(&sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1, -1}}})
}
