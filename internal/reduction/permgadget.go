package reduction

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/sat"
)

// PermAB3SAT is the 3SAT → RES(qABperm) reduction of Proposition 34
// (Figure 14), for the bounded permutation query
//
//	qABperm :- A(x), R(x,y), R(y,x), B(y).
//
// Every mutual R-pair {p,q} with A(p),B(q) present yields the two witnesses
// (p,q) and (q,p); deleting either orientation of the pair kills both.
//
// Construction, per variable i and slot j ∈ [m]:
//
//   - constants v (positive), w (negated), s and sb (stars); A- and
//     B-tuples on all four;
//   - mutual pairs {v,w}, {w, v_{j+1 mod m}} (the cycle), {s,v} and {sb,w}
//     (the stars).
//
// The two minimum per-slot covers are {A(v), B(v), R(sb,w)} ("true") and
// {A(w), B(w), R(s,v)} ("false"): 3 per slot, 3m per variable.
//
// Clause gadget j: corners a,b,c and primes a',b',c', all carrying A and
// B; mutual pairs {a,b},{b,c},{c,a} and {a,a'},{b,b'},{c,c'}. Connectors
// tie the literal's variable constant to the corner with a mutual pair
// ({v_i^j, a_j} for a positive literal, {w_i^j, a_j} for a negative one).
// Cost 5 when some literal is satisfied (skip that corner's A,B and pay
// one prime pair), 6 otherwise.
//
// Hence kψ = 3·n·m + 5·m and ψ ∈ 3SAT ⇔ ρ(qABperm, Dψ) = kψ.
type PermAB3SAT struct {
	DB *db.Database
	K  int
}

// NewPermAB3SAT builds the reduction for ψ.
func NewPermAB3SAT(psi *sat.Formula) *PermAB3SAT {
	d := db.New()
	m := len(psi.Clauses)
	n := psi.NumVars
	if m == 0 {
		panic("reduction: formula needs at least one clause")
	}

	pos := func(i, j int) string { return fmt.Sprintf("v%d_%d", i, j) }
	neg := func(i, j int) string { return fmt.Sprintf("w%d_%d", i, j) }
	star := func(i, j int) string { return fmt.Sprintf("s%d_%d", i, j) }
	starb := func(i, j int) string { return fmt.Sprintf("t%d_%d", i, j) }

	addPair := func(p, q string) {
		d.AddNames("R", p, q)
		d.AddNames("R", q, p)
	}
	addAB := func(c string) {
		d.AddNames("A", c)
		d.AddNames("B", c)
	}

	// Variable gadgets.
	for i := 1; i <= n; i++ {
		for j := 0; j < m; j++ {
			for _, c := range []string{pos(i, j), neg(i, j), star(i, j), starb(i, j)} {
				addAB(c)
			}
			addPair(pos(i, j), neg(i, j))
			addPair(neg(i, j), pos(i, (j+1)%m))
			addPair(star(i, j), pos(i, j))
			addPair(starb(i, j), neg(i, j))
		}
	}

	// Clause gadgets and connectors.
	for j, clause := range psi.Clauses {
		a := fmt.Sprintf("a%d", j)
		b := fmt.Sprintf("b%d", j)
		c := fmt.Sprintf("c%d", j)
		corner := []string{a, b, c}
		for _, x := range corner {
			addAB(x)
			addAB(x + "'")
			addPair(x, x+"'")
		}
		addPair(a, b)
		addPair(b, c)
		addPair(c, a)
		for p, lit := range clause {
			if p >= 3 {
				break
			}
			i := lit.Var()
			if lit.Positive() {
				addPair(pos(i, j), corner[p])
			} else {
				addPair(neg(i, j), corner[p])
			}
		}
	}

	return &PermAB3SAT{DB: d, K: 3*n*m + 5*m}
}
