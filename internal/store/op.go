package store

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/api"
)

// OpKind discriminates the WAL record union.
type OpKind string

const (
	// OpPutDB registers (or replaces) a named database: the full fact
	// list in canonical "R(a,b)" form plus its version.
	OpPutDB OpKind = "put_db"
	// OpDropDB unregisters a named database.
	OpDropDB OpKind = "drop_db"
	// OpMutateDB applies an atomic insert/delete batch to a named
	// database; Version is the post-batch mutation counter.
	OpMutateDB OpKind = "mutate_db"
	// OpJobSubmit journals a queued job (before the 202 is returned).
	OpJobSubmit OpKind = "job_submit"
	// OpJobStart stamps a job running at time At.
	OpJobStart OpKind = "job_start"
	// OpJobFinish replaces a job record with its terminal snapshot
	// (done/failed/canceled, result or error included).
	OpJobFinish OpKind = "job_finish"
	// OpJobRemove deletes a job record (DELETE of a terminal job, or
	// store eviction).
	OpJobRemove OpKind = "job_remove"
)

// opKinds is the closed set DecodeOp accepts.
var opKinds = map[OpKind]bool{
	OpPutDB: true, OpDropDB: true, OpMutateDB: true,
	OpJobSubmit: true, OpJobStart: true, OpJobFinish: true, OpJobRemove: true,
}

// Op is the single WAL record payload: a tagged union over OpKind,
// JSON-encoded inside the frame. Facts and mutation batches carry
// canonical fact strings (db.Database.TupleString renderings), the same
// encoding the wire uses, so replay goes through the ordinary
// registration/mutation fact parser.
type Op struct {
	Kind OpKind `json:"kind"`
	// Name is the database name (put_db, drop_db, mutate_db).
	Name string `json:"name,omitempty"`
	// Facts is a put_db's full contents in canonical fact notation.
	Facts []string `json:"facts,omitempty"`
	// Version is the database's mutation counter after this op.
	Version uint64 `json:"version,omitempty"`
	// Muts is a mutate_db's ordered batch, facts in canonical notation.
	Muts []api.Mutation `json:"muts,omitempty"`
	// ID is the job id (job_start, job_remove).
	ID string `json:"id,omitempty"`
	// At is the job_start timestamp.
	At *time.Time `json:"at,omitempty"`
	// Job is the full job record (job_submit: queued; job_finish:
	// terminal).
	Job *api.Job `json:"job,omitempty"`
}

// Encode renders the op as a WAL payload. Marshalling the Op types
// cannot fail (no channels, funcs, or NaNs reach them), so Encode has no
// error return; the impossible case panics loudly instead of silently
// logging a broken record.
func (op Op) Encode() []byte {
	b, err := json.Marshal(op)
	if err != nil {
		panic(fmt.Sprintf("store: encoding %s op: %v", op.Kind, err))
	}
	return b
}

// DecodeOp parses a WAL payload back into an Op, rejecting unknown
// kinds: a record that decodes as JSON but names no known operation is
// corruption, and recovery truncates the log there.
func DecodeOp(b []byte) (Op, error) {
	var op Op
	if err := json.Unmarshal(b, &op); err != nil {
		return Op{}, fmt.Errorf("store: decoding op: %w", err)
	}
	if !opKinds[op.Kind] {
		return Op{}, fmt.Errorf("store: unknown op kind %q", op.Kind)
	}
	return op, nil
}
