package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/api"
)

// DBState is one database's recovered registration: its name, full
// contents in canonical fact notation (sorted, so two dumps of the same
// contents are byte-identical), and mutation counter.
type DBState struct {
	Name    string   `json:"name"`
	Facts   []string `json:"facts"`
	Version uint64   `json:"version"`
}

// snapshotFile is the JSON body of a snap-<seq>.snap file: the full
// mirror at the moment wal-<seq>.log started, plus the job-id high-water
// mark (the highest "job-N" ever journaled, including jobs since removed
// — compaction must not forget consumed ids, or a restart would reissue
// them).
type snapshotFile struct {
	Seq       uint64     `json:"seq"`
	DBs       []DBState  `json:"dbs"`
	Jobs      []*api.Job `json:"jobs"`
	MaxJobSeq uint64     `json:"max_job_seq,omitempty"`
}

func snapName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }
func walName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSeq extracts the generation number from a snap-/wal- file name,
// reporting whether name is one of ours with the given prefix/suffix.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// writeSnapshot atomically installs snap-<seq>.snap: write to a tmp file
// in the same directory, fsync it, rename over the final name, fsync the
// directory. A crash at any point leaves either no snapshot or a
// complete one — never a torn file under the final name.
func writeSnapshot(dir string, snap snapshotFile) error {
	body, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(body); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	final := filepath.Join(dir, snapName(snap.Seq))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// loadLatestSnapshot scans dir for the newest decodable snapshot. A
// snapshot that fails to decode (crashed before its fsync under
// FsyncOff, external damage) is skipped in favor of the next older one;
// with none usable, recovery starts from the empty state at seq 0.
func loadLatestSnapshot(dir string) (snapshotFile, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return snapshotFile{}, false
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		raw, err := os.ReadFile(filepath.Join(dir, snapName(seq)))
		if err != nil {
			continue
		}
		var snap snapshotFile
		if err := json.Unmarshal(raw, &snap); err != nil || snap.Seq != seq {
			continue
		}
		return snap, true
	}
	return snapshotFile{}, false
}

// removeBelow deletes snapshot, WAL, and leftover tmp files of
// generations older than keep — compaction, and cleanup of the debris a
// crash mid-rotation can leave. Best-effort: a file that will not delete
// costs disk, not correctness.
func removeBelow(dir string, keep uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, "snap-") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeq(name, "snap-", ".snap"); ok && seq < keep {
			os.Remove(filepath.Join(dir, name))
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok && seq < keep {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// syncDir fsyncs a directory so a just-renamed or just-created entry is
// durable. Some platforms refuse to fsync directories; that degrades the
// rename's durability, not its atomicity, so the error is ignored.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	f.Sync() //nolint:errcheck // see above
	return nil
}
