package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/api"
)

// openT opens a store in dir, failing the test on error.
func openT(t *testing.T, dir string, opts Options) (*DiskStore, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func TestOpenEmptyDir(t *testing.T) {
	dir := t.TempDir()
	s, rec := openT(t, dir, Options{Fsync: FsyncOff})
	defer s.Close()
	if rec.Stats.SnapshotLoaded || rec.Stats.WALRecords != 0 || rec.Stats.TornBytes != 0 {
		t.Fatalf("empty dir recovered %+v, want nothing", rec.Stats)
	}
	if len(rec.DBs) != 0 || len(rec.Jobs) != 0 {
		t.Fatalf("empty dir recovered %d dbs, %d jobs", len(rec.DBs), len(rec.Jobs))
	}
}

// TestReplayAcrossReopen commits a representative op of every kind,
// reopens, and checks the recovered state — the basic WAL replay path,
// no snapshot involved.
func TestReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Fsync: FsyncAlways, SnapshotEvery: -1})

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.PutDB("a", []string{"R(x,y)"}, 1))
	must(s.PutDB("b", []string{"S(u)"}, 1))
	must(s.MutateDB("a", []api.Mutation{
		{Op: api.MutationInsert, Fact: "R(y,z)"},
		{Op: api.MutationDelete, Fact: "R(x,y)"},
	}, 3))
	must(s.DropDB("b"))

	now := time.Now().UTC().Truncate(time.Second)
	job1 := &api.Job{ID: "job-1", State: api.JobQueued, Task: api.Task{Kind: api.KindSolve, Query: "q :- R(x,y)", DB: "a"}, Created: now}
	job2 := &api.Job{ID: "job-2", State: api.JobQueued, Task: api.Task{Kind: api.KindSolve, Query: "q :- R(x,y)", DB: "a"}, Created: now}
	job3 := &api.Job{ID: "job-3", State: api.JobQueued, Task: api.Task{Kind: api.KindSolve, Query: "q :- R(x,y)", DB: "a"}, Created: now}
	must(s.SubmitJob(job1))
	must(s.SubmitJob(job2))
	must(s.SubmitJob(job3))
	must(s.StartJob("job-1", now))
	fin := *job2
	fin.State = api.JobDone
	fin.Finished = &now
	must(s.FinishJob(&fin))
	must(s.RemoveJob("job-3"))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rec := openT(t, dir, Options{Fsync: FsyncOff})
	defer s2.Close()
	if rec.Stats.SnapshotLoaded {
		t.Fatal("no snapshot was written, but one loaded")
	}
	if rec.Stats.TornBytes != 0 {
		t.Fatalf("clean close left %d torn bytes", rec.Stats.TornBytes)
	}
	wantDBs := []DBState{{Name: "a", Facts: []string{"R(y,z)"}, Version: 3}}
	if !reflect.DeepEqual(rec.DBs, wantDBs) {
		t.Fatalf("recovered DBs %+v, want %+v", rec.DBs, wantDBs)
	}
	if len(rec.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec.Jobs))
	}
	if rec.Jobs[0].ID != "job-1" || rec.Jobs[0].State != api.JobRunning {
		t.Fatalf("job-1 recovered as %s/%s, want running", rec.Jobs[0].ID, rec.Jobs[0].State)
	}
	if rec.Jobs[1].ID != "job-2" || rec.Jobs[1].State != api.JobDone {
		t.Fatalf("job-2 recovered as %s/%s, want done", rec.Jobs[1].ID, rec.Jobs[1].State)
	}
}

// TestSnapshotRotationAndCompaction drives the automatic snapshot: after
// enough appends the store must rotate to a new generation, delete the
// old one, and recover identically from the compact form.
func TestSnapshotRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: 8})

	if err := s.PutDB("d", []string{"R(f0,f0)"}, 1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		m := []api.Mutation{{Op: api.MutationInsert, Fact: fmt.Sprintf("R(f%d,f%d)", i, i)}}
		if err := s.MutateDB("d", m, uint64(1+i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Snapshots == 0 || st.Seq == 0 {
		t.Fatalf("no automatic snapshot after 21 appends with SnapshotEvery=8: %+v", st)
	}
	if st.CompactedRecords == 0 {
		t.Fatalf("rotation compacted nothing: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the newest generation's files survive.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "snap-", ".snap"); ok && seq < st.Seq {
			t.Fatalf("stale snapshot %s survived compaction", e.Name())
		}
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok && seq < st.Seq {
			t.Fatalf("stale WAL %s survived compaction", e.Name())
		}
	}

	s2, rec := openT(t, dir, Options{Fsync: FsyncOff})
	defer s2.Close()
	if !rec.Stats.SnapshotLoaded || rec.Stats.SnapshotSeq != st.Seq {
		t.Fatalf("recovery loaded snapshot=%v seq=%d, want seq %d", rec.Stats.SnapshotLoaded, rec.Stats.SnapshotSeq, st.Seq)
	}
	if len(rec.DBs) != 1 || rec.DBs[0].Version != 21 || len(rec.DBs[0].Facts) != 21 {
		t.Fatalf("recovered %+v, want d@v21 with 21 facts", rec.DBs)
	}
}

// TestCrashBetweenSnapshotAndCleanup simulates the worst rotation crash:
// the new snapshot and WAL exist but the old generation was never
// removed. Recovery must pick the NEW generation and clean up the old.
func TestCrashBetweenSnapshotAndCleanup(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: -1})
	if err := s.PutDB("d", []string{"R(a,b)"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.MutateDB("d", []api.Mutation{{Op: api.MutationInsert, Fact: "R(b,c)"}}, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect generation-0 debris as a crash mid-cleanup would leave it:
	// an older snapshot and WAL alongside the live generation 1.
	if err := os.WriteFile(filepath.Join(dir, snapName(0)), []byte(`{"seq":0,"dbs":[{"name":"stale","facts":["X(a)"],"version":9}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName(0)), AppendFrame(nil, Op{Kind: OpDropDB, Name: "stale"}.Encode()), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rec := openT(t, dir, Options{Fsync: FsyncOff})
	defer s2.Close()
	if rec.Stats.SnapshotSeq != 1 {
		t.Fatalf("recovered from seq %d, want the newest generation 1", rec.Stats.SnapshotSeq)
	}
	wantDBs := []DBState{{Name: "d", Facts: []string{"R(a,b)", "R(b,c)"}, Version: 2}}
	if !reflect.DeepEqual(rec.DBs, wantDBs) {
		t.Fatalf("recovered %+v, want %+v", rec.DBs, wantDBs)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(0))); !os.IsNotExist(err) {
		t.Fatal("generation-0 snapshot survived recovery cleanup")
	}
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Fatal("generation-0 WAL survived recovery cleanup")
	}
}

// modelDB is the reference implementation the differential test compares
// recovery against: plain maps, no files.
type modelDB struct {
	facts   map[string]bool
	version uint64
}

// TestRandomizedModelDifferential runs a random op sequence against the
// store and an in-memory model, reopening the store at random points
// (snapshot sometimes forced in between): after every reopen the
// recovered DB states must equal the model exactly.
func TestRandomizedModelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	opts := Options{Fsync: FsyncOff, SnapshotEvery: 16}
	s, _ := openT(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: 16})
	model := map[string]*modelDB{}
	names := []string{"a", "b", "c"}

	check := func(rec *Recovery) {
		t.Helper()
		want := make([]DBState, 0, len(model))
		for name, md := range model {
			facts := make([]string, 0, len(md.facts))
			for f := range md.facts {
				facts = append(facts, f)
			}
			sort.Strings(facts)
			want = append(want, DBState{Name: name, Facts: facts, Version: md.version})
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Name < want[j].Name })
		if len(want) == 0 {
			want = nil
		}
		var got []DBState
		if len(rec.DBs) > 0 {
			got = rec.DBs
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("recovered state diverged from model:\n got %+v\nwant %+v", got, want)
		}
	}

	for step := 0; step < 400; step++ {
		name := names[rng.Intn(len(names))]
		md := model[name]
		switch op := rng.Intn(10); {
		case op < 3 || md == nil: // put (always valid)
			n := rng.Intn(4)
			facts := map[string]bool{}
			for i := 0; i < n; i++ {
				facts[fmt.Sprintf("R(k%d,k%d)", rng.Intn(6), rng.Intn(6))] = true
			}
			v := uint64(rng.Intn(50))
			list := make([]string, 0, len(facts))
			for f := range facts {
				list = append(list, f)
			}
			if err := s.PutDB(name, list, v); err != nil {
				t.Fatal(err)
			}
			model[name] = &modelDB{facts: facts, version: v}
		case op < 5: // drop
			if err := s.DropDB(name); err != nil {
				t.Fatal(err)
			}
			delete(model, name)
		default: // mutate
			var muts []api.Mutation
			for i := 0; i < 1+rng.Intn(3); i++ {
				f := fmt.Sprintf("R(k%d,k%d)", rng.Intn(6), rng.Intn(6))
				if md.facts[f] {
					muts = append(muts, api.Mutation{Op: api.MutationDelete, Fact: f})
					delete(md.facts, f)
				} else {
					muts = append(muts, api.Mutation{Op: api.MutationInsert, Fact: f})
					md.facts[f] = true
				}
			}
			md.version++
			if err := s.MutateDB(name, muts, md.version); err != nil {
				t.Fatal(err)
			}
		}

		if rng.Intn(25) == 0 {
			if rng.Intn(2) == 0 {
				if err := s.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			var rec *Recovery
			s, rec = openT(t, dir, opts)
			check(rec)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(rec)
}

// TestAppendAfterCloseFails pins the closed-store contract.
func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Fsync: FsyncOff})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.PutDB("d", nil, 0); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := s.Snapshot(); err == nil {
		t.Fatal("Snapshot after Close succeeded")
	}
}

// TestParseFsyncMode pins the flag surface.
func TestParseFsyncMode(t *testing.T) {
	for in, want := range map[string]FsyncMode{
		"": FsyncBatch, "batch": FsyncBatch, "always": FsyncAlways, "off": FsyncOff,
	} {
		got, err := ParseFsyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("ParseFsyncMode accepted garbage")
	}
}

// flakyWAL wraps the real WAL handle and fails a scripted number of
// upcoming Write/Sync/Truncate calls, so tests can drive the append
// path's repair and wedge logic against a real file underneath.
type flakyWAL struct {
	walFile
	failWrites   int // fail the next N writes...
	partialBytes int // ...after leaking this many bytes of each to disk
	failSyncs    int
	failTruncs   int
}

var errInjected = fmt.Errorf("injected I/O failure")

func (f *flakyWAL) Write(p []byte) (int, error) {
	if f.failWrites > 0 {
		f.failWrites--
		n := f.partialBytes
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			f.walFile.Write(p[:n]) //nolint:errcheck // best-effort torn bytes
		}
		return n, errInjected
	}
	return f.walFile.Write(p)
}

func (f *flakyWAL) Sync() error {
	if f.failSyncs > 0 {
		f.failSyncs--
		return errInjected
	}
	return f.walFile.Sync()
}

func (f *flakyWAL) Truncate(size int64) error {
	if f.failTruncs > 0 {
		f.failTruncs--
		return errInjected
	}
	return f.walFile.Truncate(size)
}

// injectWAL splices fw over s's live WAL handle.
func injectWAL(s *DiskStore, fw *flakyWAL) {
	s.mu.Lock()
	fw.walFile = s.f
	s.f = fw
	s.mu.Unlock()
}

// recoveredDBNames reopens dir and returns the sorted recovered names.
func recoveredDBNames(t *testing.T, dir string) []string {
	t.Helper()
	s, rec := openT(t, dir, Options{Fsync: FsyncOff})
	defer s.Close()
	names := make([]string, 0, len(rec.DBs))
	for _, d := range rec.DBs {
		names = append(names, d.Name)
	}
	return names
}

// TestWriteErrorRepairsTornTail pins the partial-write repair: a failed
// append that leaks half a frame to disk must not strand later
// acknowledged ops behind the torn bytes — the tail is truncated back to
// the last good frame and appends continue, so recovery sees every op
// that was acknowledged and only those.
func TestWriteErrorRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: -1})
	if err := s.PutDB("a", []string{"R(x)"}, 1); err != nil {
		t.Fatal(err)
	}
	injectWAL(s, &flakyWAL{failWrites: 1, partialBytes: 5})
	if err := s.PutDB("b", []string{"R(y)"}, 1); err == nil {
		t.Fatal("append over a failing write succeeded")
	}
	// The store repaired the tail: later appends must be acknowledged AND
	// recoverable.
	if err := s.PutDB("c", []string{"R(z)"}, 1); err != nil {
		t.Fatalf("append after repaired write failure: %v", err)
	}
	if s.Stats().Wedged {
		t.Fatal("a repairable write failure wedged the store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := recoveredDBNames(t, dir); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("recovered %v, want [a c]: the op after the torn frame was lost", got)
	}
}

// TestSyncFailureWedges pins the fsync=always contract: a post-write
// sync failure rejects the op, removes its frame (so the rejected op is
// not replayed on recovery), keeps the mirror at the acknowledged state,
// and wedges the store against further appends.
func TestSyncFailureWedges(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Fsync: FsyncAlways, SnapshotEvery: -1})
	if err := s.PutDB("a", []string{"R(x)"}, 1); err != nil {
		t.Fatal(err)
	}
	injectWAL(s, &flakyWAL{failSyncs: 1})
	if err := s.PutDB("b", []string{"R(y)"}, 1); err == nil {
		t.Fatal("append over a failing fsync succeeded")
	}
	if err := s.PutDB("c", []string{"R(z)"}, 1); err == nil {
		t.Fatal("append on a wedged store succeeded")
	}
	if !s.Stats().Wedged {
		t.Fatal("sync failure did not wedge the store")
	}
	if err := s.Snapshot(); err == nil {
		t.Fatal("snapshot on a wedged store succeeded")
	}
	s.Close()
	// Neither the rejected op nor anything after it may resurface.
	if got := recoveredDBNames(t, dir); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("recovered %v, want [a]: a client-rejected op resurfaced after restart", got)
	}
}

// TestTruncateFailureWedges pins the unrepairable case: when the tail
// cannot be restored after a failed write, the store must wedge rather
// than acknowledge ops that recovery would discard.
func TestTruncateFailureWedges(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: -1})
	if err := s.PutDB("a", []string{"R(x)"}, 1); err != nil {
		t.Fatal(err)
	}
	injectWAL(s, &flakyWAL{failWrites: 1, partialBytes: 5, failTruncs: 1})
	if err := s.PutDB("b", []string{"R(y)"}, 1); err == nil {
		t.Fatal("append over a failing write succeeded")
	}
	if err := s.PutDB("c", []string{"R(z)"}, 1); err == nil {
		t.Fatal("append on a wedged store succeeded")
	}
	if !s.Stats().Wedged {
		t.Fatal("truncate failure did not wedge the store")
	}
	s.Close()
	// Recovery's torn-tail scan removes the partial frame; only the
	// acknowledged prefix survives.
	if got := recoveredDBNames(t, dir); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("recovered %v, want [a]", got)
	}
}

// TestMaxJobSeqSurvivesRemovalAndCompaction pins the job-id high-water
// mark: removing a job must not release its sequence number, across both
// a pure WAL replay and a snapshot that compacted the remove away.
func TestMaxJobSeqSurvivesRemovalAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: -1})
	now := time.Now().UTC()
	task := api.Task{Kind: api.KindSolve, Query: "q :- R(x,y)", DB: "net"}
	for _, id := range []string{"job-1", "job-2"} {
		if err := s.SubmitJob(&api.Job{ID: id, State: api.JobQueued, Task: task, Created: now}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RemoveJob("job-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL replay: the submit of job-2 is still in the log.
	s2, rec := openT(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: -1})
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "job-1" {
		t.Fatalf("recovered jobs %+v, want only job-1", rec.Jobs)
	}
	if rec.MaxJobSeq != 2 {
		t.Fatalf("MaxJobSeq after WAL replay = %d, want 2 (job-2 was removed, not released)", rec.MaxJobSeq)
	}
	// Snapshot: the remove is compacted away; the mark must persist in
	// the snapshot itself.
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, rec3 := openT(t, dir, Options{Fsync: FsyncOff, SnapshotEvery: -1})
	defer s3.Close()
	if !rec3.Stats.SnapshotLoaded {
		t.Fatal("second reopen did not load the snapshot")
	}
	if rec3.MaxJobSeq != 2 {
		t.Fatalf("MaxJobSeq after compaction = %d, want 2", rec3.MaxJobSeq)
	}
}
