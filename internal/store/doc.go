// Package store is the durability subsystem behind a Session's database
// registry and the server's async-job store: an append-only write-ahead
// log of state-changing operations plus periodic snapshots, with
// crash recovery that loads the latest snapshot, replays the WAL tail,
// and truncates any torn final record.
//
// # What is logged
//
// Every acknowledged state change is one Op appended to the WAL before
// the acknowledgment leaves the process: database registrations
// (put_db, the full fact list), drops (drop_db), mutation batches
// (mutate_db, the canonical insert/delete list plus the post-batch
// version), and the async-job lifecycle (job_submit, job_start,
// job_finish, job_remove). The store keeps its own in-memory mirror of
// the state these ops produce — fact sets as canonical "R(a,b)" strings,
// versions, and api.Job records — so a snapshot never has to query the
// live Session.
//
// # On-disk layout
//
// A data directory holds one generation at a time: snap-<seq>.snap (a
// JSON dump of the mirror, written atomically via tmp+fsync+rename) and
// wal-<seq>.log (the framed ops appended since that snapshot). Taking a
// snapshot writes snap-<seq+1>, starts wal-<seq+1>, and deletes the
// previous generation — compaction and checkpointing are the same
// operation. Each WAL record is framed as
//
//	[length uint32 LE][crc32 uint32 LE][JSON payload]
//
// so a torn final write (crash mid-append) is detected by length or
// checksum and truncated on recovery; everything before it is intact by
// construction because records are appended in commit order.
//
// # Fsync modes
//
// FsyncAlways fsyncs after every append: no acknowledged write is lost
// even to power failure. FsyncBatch (the default) write()s every record
// before acknowledging — surviving any process death, kill -9 included,
// because the OS page cache outlives the process — and a background
// syncer fsyncs shortly after, bounding loss on power failure to a few
// milliseconds. FsyncOff never fsyncs explicitly; the same process-death
// guarantee holds, power failure may lose the unflushed tail.
//
// # Recovery invariants
//
// Open returns exactly the acknowledged state: for every operation whose
// log append returned before the crash, its effect is present after
// recovery; for the at-most-one torn record, the operation was never
// acknowledged, so dropping it is correct. Database UIDs are
// process-unique and are NOT recovered — recovery compares registrations
// by name, version, and fact contents, and rebuilt databases get fresh
// UIDs (cold caches, correct answers).
package store
