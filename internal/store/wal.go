package store

import (
	"encoding/binary"
	"hash/crc32"
)

// WAL record framing: [length uint32 LE][crc32 uint32 LE][payload].
// The length is of the payload alone; the checksum is crc32 IEEE over the
// payload. A record is intact iff the full frame is present and the
// checksum matches — a torn final write fails one of the two and ends the
// intact prefix.
const frameHeader = 8

// MaxRecord caps a single WAL record's payload. Nothing the system logs
// comes near it (the largest op is a put_db carrying a full fact list);
// it exists so a corrupt length field in a damaged file reads as "torn
// here" instead of a multi-gigabyte allocation.
const MaxRecord = 64 << 20

// AppendFrame appends the framed payload to buf and returns the extended
// slice, the allocation-free encoder for the append path.
func AppendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// ScanFrames walks raw, calling fn on each intact record payload in
// order, and returns the byte length of the intact prefix. A torn or
// corrupt record (short frame, oversized length, checksum mismatch)
// simply ends the scan — it is never an error, because the append
// discipline makes "torn tail" the only way a WAL gets damaged short of
// external corruption, and both truncate identically. fn returning an
// error aborts the scan; the returned prefix then ends before the record
// fn rejected, so the caller can truncate the rejected record away too.
func ScanFrames(raw []byte, fn func(payload []byte) error) (int64, error) {
	off := int64(0)
	for {
		rest := raw[off:]
		if len(rest) < frameHeader {
			return off, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if n > MaxRecord || n > int64(len(rest))-frameHeader {
			return off, nil
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			return off, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, err
			}
		}
		off += frameHeader + n
	}
}
