package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
)

// FsyncMode selects when WAL appends reach stable storage; see the
// package comment for the guarantee each mode gives.
type FsyncMode string

const (
	// FsyncAlways fsyncs after every append.
	FsyncAlways FsyncMode = "always"
	// FsyncBatch write()s every append before acknowledging (process
	// death loses nothing) and fsyncs in the background (power failure
	// loses at most the last batch interval). The default.
	FsyncBatch FsyncMode = "batch"
	// FsyncOff never fsyncs explicitly.
	FsyncOff FsyncMode = "off"
)

// ParseFsyncMode maps the -fsync flag value to a mode; "" means the
// default FsyncBatch.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch FsyncMode(s) {
	case "", FsyncBatch:
		return FsyncBatch, nil
	case FsyncAlways:
		return FsyncAlways, nil
	case FsyncOff:
		return FsyncOff, nil
	}
	return "", fmt.Errorf("store: unknown fsync mode %q (want always, batch, or off)", s)
}

// Options tunes a DiskStore; the zero value is usable (fsync=batch,
// snapshot every 4096 records, 2ms batch-sync interval).
type Options struct {
	// Fsync is the append durability policy; "" means FsyncBatch.
	Fsync FsyncMode
	// SnapshotEvery takes an automatic snapshot (and compacts the WAL)
	// after that many appended records. 0 means the default 4096; < 0
	// disables automatic snapshots (explicit Snapshot calls still work).
	SnapshotEvery int
	// BatchInterval is the background fsync cadence under FsyncBatch.
	// 0 means the default 2ms.
	BatchInterval time.Duration
}

const (
	defaultSnapshotEvery = 4096
	defaultBatchInterval = 2 * time.Millisecond
)

// RecoveryStats describes what Open found and repaired; the daemon's
// startup line prints it.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot was found and decoded;
	// SnapshotSeq is its generation (0 with no snapshot), SnapshotDBs
	// and SnapshotJobs its contents.
	SnapshotLoaded bool
	SnapshotSeq    uint64
	SnapshotDBs    int
	SnapshotJobs   int
	// WALRecords is the number of intact records replayed from the WAL
	// tail; TornBytes is how much of a torn final record (or trailing
	// garbage) was truncated away.
	WALRecords int
	TornBytes  int64
}

// Recovery is the state Open reconstructed: the databases to re-register
// (sorted by name), the job records to seed the job store with (in
// submission order), and the stats behind both. MaxJobSeq is the highest
// "job-N" sequence number ever journaled — not just the max among the
// surviving Jobs — so the job-id counter resumes past ids whose records
// were DELETEd or evicted and never hands a client a recycled id.
type Recovery struct {
	DBs       []DBState
	Jobs      []*api.Job
	MaxJobSeq uint64
	Stats     RecoveryStats
}

// Stats is a point-in-time snapshot of a DiskStore's counters, exposed
// through the server's /metrics and the daemon's shutdown line.
type Stats struct {
	// Enabled distinguishes a live store from the zero Stats a
	// store-less server reports.
	Enabled bool
	// Seq is the current generation; WALRecords counts records in the
	// current WAL (reset by each snapshot).
	Seq        uint64
	WALRecords int64
	// Appends and AppendBytes count WAL writes since Open; Fsyncs counts
	// explicit syncs; Snapshots counts snapshots taken; CompactedRecords
	// counts WAL records folded into snapshots.
	Appends          int64
	AppendBytes      int64
	Fsyncs           int64
	Snapshots        int64
	CompactedRecords int64
	// Errors counts non-fatal internal failures (background sync,
	// best-effort snapshot, mirror inconsistencies).
	Errors int64
	// Wedged reports that the store hit an unrecoverable write failure
	// and now rejects every append (see DiskStore.wedge).
	Wedged bool
}

// errClosed rejects appends after Close.
var errClosed = errors.New("store: closed")

// walFile is what the append path needs from the WAL handle. It is an
// interface (always an *os.File in production) so tests can inject
// write/sync/truncate failures and exercise the repair and wedge paths.
type walFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// mirrorDB is the store's own view of one registered database: contents
// as canonical fact strings plus the mutation counter. It exists so
// snapshots never have to query the live Session.
type mirrorDB struct {
	facts   map[string]struct{}
	version uint64
}

// DiskStore is the durable api.Store: every logged operation is framed,
// appended to the current WAL, applied to the in-memory mirror, and made
// durable per the fsync mode before the call returns. It implements
// api.Store.
type DiskStore struct {
	dir  string
	opts Options

	mu         sync.Mutex
	f          walFile // current WAL (an *os.File in production), nil after Close
	off        int64   // bytes of acknowledged frames in the current WAL
	wedged     error   // first unrecoverable write failure; non-nil rejects all appends
	seq        uint64
	walRecords int64
	sinceSnap  int64
	buf        []byte // frame scratch, reused across appends

	dbs       map[string]*mirrorDB
	jobs      map[string]*api.Job
	jobOrder  []string
	maxJobSeq uint64 // highest "job-N" seq ever logged, surviving removal and compaction

	dirty    atomic.Bool // FsyncBatch: records written since last sync
	stopSync chan struct{}
	syncWG   sync.WaitGroup

	appends     atomic.Int64
	appendBytes atomic.Int64
	fsyncs      atomic.Int64
	snapshots   atomic.Int64
	compacted   atomic.Int64
	errs        atomic.Int64
}

// Open opens (or creates) the data directory, recovers its state —
// latest snapshot, WAL tail replay, torn-record truncation — and returns
// the store ready for appends plus what it recovered.
func Open(dir string, opts Options) (*DiskStore, *Recovery, error) {
	if opts.Fsync == "" {
		opts.Fsync = FsyncBatch
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = defaultSnapshotEvery
	}
	if opts.BatchInterval <= 0 {
		opts.BatchInterval = defaultBatchInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &DiskStore{
		dir:      dir,
		opts:     opts,
		dbs:      map[string]*mirrorDB{},
		jobs:     map[string]*api.Job{},
		stopSync: make(chan struct{}),
	}

	snap, loaded := loadLatestSnapshot(dir)
	s.seq = snap.Seq
	s.maxJobSeq = snap.MaxJobSeq
	for _, d := range snap.DBs {
		facts := make(map[string]struct{}, len(d.Facts))
		for _, f := range d.Facts {
			facts[f] = struct{}{}
		}
		s.dbs[d.Name] = &mirrorDB{facts: facts, version: d.Version}
	}
	for _, j := range snap.Jobs {
		jc := *j
		s.jobs[jc.ID] = &jc
		s.jobOrder = append(s.jobOrder, jc.ID)
		s.raiseJobSeq(jc.ID)
	}

	// Replay the WAL tail of the loaded generation. A record whose frame
	// is intact but whose payload does not decode is corruption too:
	// scan stops there and the truncate below removes it.
	walPath := filepath.Join(dir, walName(s.seq))
	raw, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	records := 0
	valid, _ := ScanFrames(raw, func(payload []byte) error {
		op, derr := DecodeOp(payload)
		if derr != nil {
			return derr
		}
		s.applyLocked(op)
		records++
		return nil
	})
	torn := int64(len(raw)) - valid
	if torn > 0 {
		if err := os.Truncate(walPath, valid); err != nil {
			return nil, nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	s.walRecords = int64(records)
	s.sinceSnap = int64(records)

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	s.f = f
	s.off = valid
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	// Generations older than the one recovered are compacted history (or
	// rotation debris from a crash between snapshot and cleanup).
	removeBelow(dir, s.seq)

	if opts.Fsync == FsyncBatch {
		s.syncWG.Add(1)
		go s.batchSyncer()
	}

	rec := &Recovery{
		DBs:       s.dbStatesLocked(),
		Jobs:      s.jobListLocked(),
		MaxJobSeq: s.maxJobSeq,
		Stats: RecoveryStats{
			SnapshotLoaded: loaded,
			SnapshotSeq:    snap.Seq,
			SnapshotDBs:    len(snap.DBs),
			SnapshotJobs:   len(snap.Jobs),
			WALRecords:     records,
			TornBytes:      torn,
		},
	}
	return s, rec, nil
}

// append frames, writes, syncs (per the fsync mode), and mirrors one op.
// It is the single commit point: when it returns nil the operation is as
// durable as the configured mode promises, and when it returns an error
// the operation is fully rolled back — not in the WAL (the tail is
// truncated to the last acknowledged frame), not in the mirror (the
// apply happens only after every durability step succeeded) — so a
// client-rejected op can never resurface on replay.
func (s *DiskStore) append(op Op) error {
	payload := op.Encode()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errClosed
	}
	if s.wedged != nil {
		return fmt.Errorf("store: wedged by earlier unrecoverable failure: %w", s.wedged)
	}
	s.buf = AppendFrame(s.buf[:0], payload)
	if _, err := s.f.Write(s.buf); err != nil {
		s.errs.Add(1)
		s.repairTailLocked()
		return fmt.Errorf("store: appending %s op: %w", op.Kind, err)
	}
	if s.opts.Fsync == FsyncAlways {
		if err := s.f.Sync(); err != nil {
			// After a failed fsync the kernel's view of the just-written
			// frame is undefined (dirty pages may have been dropped or may
			// still land on disk), so no later append can be trusted on
			// top of it: best-effort truncate the frame away so recovery
			// does not replay the rejected op, then wedge regardless.
			s.errs.Add(1)
			s.repairTailLocked()
			s.wedgeLocked(fmt.Errorf("fsync failed: %w", err))
			return fmt.Errorf("store: syncing %s op: %w", op.Kind, err)
		}
		s.fsyncs.Add(1)
	}
	s.off += int64(len(s.buf))
	s.appends.Add(1)
	s.appendBytes.Add(int64(len(s.buf)))
	s.walRecords++
	s.sinceSnap++
	s.applyLocked(op)
	if s.opts.Fsync == FsyncBatch {
		s.dirty.Store(true)
	}
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= int64(s.opts.SnapshotEvery) {
		// A failed automatic snapshot costs compaction, not durability —
		// the WAL still holds everything — so it only counts an error.
		if err := s.snapshotLocked(); err != nil {
			s.errs.Add(1)
		}
	}
	return nil
}

// repairTailLocked restores the WAL to the last acknowledged frame
// boundary after a failed append. Without it the O_APPEND descriptor
// would keep writing past the partial frame, and recovery — which stops
// at the first torn frame — would silently discard every acknowledged op
// after it (e.g. a transient ENOSPC followed by successful writes would
// lose all subsequent durable state). If the truncate itself fails the
// file cannot be restored to a known-good state, so the store wedges:
// all later appends fail instead of acknowledging unrecoverable ops.
// Callers hold s.mu.
func (s *DiskStore) repairTailLocked() {
	if err := s.f.Truncate(s.off); err != nil {
		s.errs.Add(1)
		s.wedgeLocked(fmt.Errorf("truncating torn WAL tail to %d: %w", s.off, err))
	}
}

// wedgeLocked marks the store permanently failed: the WAL's on-disk
// state can no longer be proven to match what was acknowledged, so every
// later append (and snapshot) is rejected rather than risking divergence
// between acknowledged and recovered state. The first cause wins.
// Callers hold s.mu.
func (s *DiskStore) wedgeLocked(cause error) {
	if s.wedged == nil {
		s.wedged = cause
	}
}

// applyLocked folds one op into the mirror. Replay and the live append
// path share it, which is what makes "recovered state ≡ logged state"
// structural rather than re-implemented. Ops that reference unknown
// names (possible only via external file damage that still checksums)
// are dropped with an error count. Callers hold s.mu (or own s
// exclusively, as Open does).
func (s *DiskStore) applyLocked(op Op) {
	switch op.Kind {
	case OpPutDB:
		facts := make(map[string]struct{}, len(op.Facts))
		for _, f := range op.Facts {
			facts[f] = struct{}{}
		}
		s.dbs[op.Name] = &mirrorDB{facts: facts, version: op.Version}
	case OpDropDB:
		delete(s.dbs, op.Name)
	case OpMutateDB:
		md := s.dbs[op.Name]
		if md == nil {
			s.errs.Add(1)
			return
		}
		for _, m := range op.Muts {
			if m.Op == api.MutationInsert {
				md.facts[m.Fact] = struct{}{}
			} else {
				delete(md.facts, m.Fact)
			}
		}
		md.version = op.Version
	case OpJobSubmit, OpJobFinish:
		if op.Job == nil {
			s.errs.Add(1)
			return
		}
		jc := *op.Job
		if _, ok := s.jobs[jc.ID]; !ok {
			s.jobOrder = append(s.jobOrder, jc.ID)
		}
		s.jobs[jc.ID] = &jc
		s.raiseJobSeq(jc.ID)
	case OpJobStart:
		if j := s.jobs[op.ID]; j != nil {
			j.State = api.JobRunning
			j.Started = op.At
		}
	case OpJobRemove:
		if _, ok := s.jobs[op.ID]; !ok {
			return
		}
		delete(s.jobs, op.ID)
		for i, id := range s.jobOrder {
			if id == op.ID {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				break
			}
		}
	}
}

// raiseJobSeq folds a job id into the high-water mark. "job-N" is the
// server's id scheme (visible on the wire, so stable); ids in any other
// shape are simply not tracked. The mark only ever rises — a removed
// job's seq stays consumed — which is what keeps ids from being reissued
// to a new submission after a restart. Callers hold s.mu (or own s).
func (s *DiskStore) raiseJobSeq(id string) {
	if seq, ok := jobSeq(id); ok && seq > s.maxJobSeq {
		s.maxJobSeq = seq
	}
}

// jobSeq extracts N from a "job-N" id.
func jobSeq(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// dbStatesLocked dumps the mirror's databases, names and fact lists
// sorted for deterministic snapshots. Callers hold s.mu (or own s).
func (s *DiskStore) dbStatesLocked() []DBState {
	out := make([]DBState, 0, len(s.dbs))
	for name, md := range s.dbs {
		facts := make([]string, 0, len(md.facts))
		for f := range md.facts {
			facts = append(facts, f)
		}
		sort.Strings(facts)
		out = append(out, DBState{Name: name, Facts: facts, Version: md.version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// jobListLocked dumps the mirror's jobs in submission order, copied so
// callers never alias mirror records. Callers hold s.mu (or own s).
func (s *DiskStore) jobListLocked() []*api.Job {
	out := make([]*api.Job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		if j, ok := s.jobs[id]; ok {
			jc := *j
			out = append(out, &jc)
		}
	}
	return out
}

// snapshotLocked writes generation seq+1 — snapshot, fresh WAL — and
// deletes the old generation. Ordering is what makes a crash at any
// point recoverable: the new snapshot is durably installed before the
// new WAL exists, and the old files are removed only after both; Open
// always finds either the old complete generation or the new one.
// Callers hold s.mu.
func (s *DiskStore) snapshotLocked() error {
	if s.f == nil {
		return errClosed
	}
	if s.wedged != nil {
		// A wedged store's mirror still matches the acknowledged state,
		// but installing a snapshot would discard the (uncertain) WAL and
		// silently un-wedge the next boot; refuse and keep the evidence.
		return fmt.Errorf("store: wedged by earlier unrecoverable failure: %w", s.wedged)
	}
	newSeq := s.seq + 1
	snap := snapshotFile{Seq: newSeq, DBs: s.dbStatesLocked(), Jobs: s.jobListLocked(), MaxJobSeq: s.maxJobSeq}
	if err := writeSnapshot(s.dir, snap); err != nil {
		return err
	}
	nf, err := os.OpenFile(filepath.Join(s.dir, walName(newSeq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		// Without the new WAL the new snapshot must not win recovery:
		// remove it and keep appending to the current generation.
		os.Remove(filepath.Join(s.dir, snapName(newSeq)))
		return err
	}
	if err := syncDir(s.dir); err != nil {
		nf.Close()
		os.Remove(filepath.Join(s.dir, snapName(newSeq)))
		os.Remove(filepath.Join(s.dir, walName(newSeq)))
		return err
	}
	old := s.f
	s.f = nf
	s.off = 0
	old.Sync() //nolint:errcheck // superseded by the snapshot just written
	old.Close()
	s.compacted.Add(s.walRecords)
	s.walRecords = 0
	s.sinceSnap = 0
	s.seq = newSeq
	s.snapshots.Add(1)
	removeBelow(s.dir, newSeq)
	return nil
}

// Snapshot checkpoints the current state and compacts the WAL. The
// daemon calls it on drain so the next boot replays an empty tail.
func (s *DiskStore) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// batchSyncer is the FsyncBatch background goroutine: every interval
// with dirty records it fsyncs the current WAL, bounding power-failure
// loss to roughly the interval.
func (s *DiskStore) batchSyncer() {
	defer s.syncWG.Done()
	t := time.NewTicker(s.opts.BatchInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			if !s.dirty.Swap(false) {
				continue
			}
			// Sync outside the mutex so a slow fsync never stalls the
			// append path. Grabbing the handle under mu and syncing after
			// is safe against Close: it nils s.f, then waits for this
			// goroutine to exit before closing the file, so an in-flight
			// Sync always sees an open descriptor.
			s.mu.Lock()
			f := s.f
			s.mu.Unlock()
			if f == nil {
				continue
			}
			if err := f.Sync(); err != nil {
				s.errs.Add(1)
			} else {
				s.fsyncs.Add(1)
			}
		}
	}
}

// Close stops the background syncer, syncs the WAL one last time, and
// closes it. Idempotent; appends after Close fail with an internal
// error.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	f := s.f
	s.f = nil
	s.mu.Unlock()
	if f == nil {
		return nil
	}
	close(s.stopSync)
	s.syncWG.Wait()
	var err error
	if s.opts.Fsync != FsyncOff {
		if err = f.Sync(); err == nil {
			s.fsyncs.Add(1)
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the counters.
func (s *DiskStore) Stats() Stats {
	s.mu.Lock()
	seq, walRecords, wedged := s.seq, s.walRecords, s.wedged != nil
	s.mu.Unlock()
	return Stats{
		Enabled:          true,
		Seq:              seq,
		WALRecords:       walRecords,
		Wedged:           wedged,
		Appends:          s.appends.Load(),
		AppendBytes:      s.appendBytes.Load(),
		Fsyncs:           s.fsyncs.Load(),
		Snapshots:        s.snapshots.Load(),
		CompactedRecords: s.compacted.Load(),
		Errors:           s.errs.Load(),
	}
}

// The api.Store methods: each builds the matching Op and commits it.

// PutDB logs a database registration (full contents).
func (s *DiskStore) PutDB(name string, facts []string, version uint64) error {
	return s.append(Op{Kind: OpPutDB, Name: name, Facts: facts, Version: version})
}

// DropDB logs an unregistration.
func (s *DiskStore) DropDB(name string) error {
	return s.append(Op{Kind: OpDropDB, Name: name})
}

// MutateDB logs an applied mutation batch and the post-batch version.
func (s *DiskStore) MutateDB(name string, muts []api.Mutation, version uint64) error {
	return s.append(Op{Kind: OpMutateDB, Name: name, Muts: muts, Version: version})
}

// SubmitJob journals a queued job record.
func (s *DiskStore) SubmitJob(job *api.Job) error {
	jc := *job
	return s.append(Op{Kind: OpJobSubmit, Job: &jc})
}

// StartJob stamps a job running.
func (s *DiskStore) StartJob(id string, at time.Time) error {
	return s.append(Op{Kind: OpJobStart, ID: id, At: &at})
}

// FinishJob replaces a job record with its terminal snapshot.
func (s *DiskStore) FinishJob(job *api.Job) error {
	jc := *job
	return s.append(Op{Kind: OpJobFinish, Job: &jc})
}

// RemoveJob deletes a job record.
func (s *DiskStore) RemoveJob(id string) error {
	return s.append(Op{Kind: OpJobRemove, ID: id})
}
