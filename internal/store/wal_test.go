package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/api"
)

// TestFrameRoundTrip pins the framing: AppendFrame output scans back to
// the same payloads, in order, with the full buffer as the intact prefix.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"kind":"drop_db","name":"d"}`),
		{},
		[]byte("not json at all"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	var got [][]byte
	valid, err := ScanFrames(buf, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("ScanFrames: %v", err)
	}
	if valid != int64(len(buf)) {
		t.Fatalf("intact prefix = %d, want the whole buffer (%d)", valid, len(buf))
	}
	if len(got) != len(payloads) {
		t.Fatalf("scanned %d payloads, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

// TestScanFramesTornTailEveryOffset is the torn-write battery at the
// framing layer: a log of three records cut at EVERY byte offset inside
// the final record must scan back exactly the first two, with the intact
// prefix ending where the complete records do.
func TestScanFramesTornTailEveryOffset(t *testing.T) {
	ops := []Op{
		{Kind: OpPutDB, Name: "d", Facts: []string{"R(a,b)", "R(b,c)"}, Version: 2},
		{Kind: OpMutateDB, Name: "d", Muts: []api.Mutation{{Op: api.MutationInsert, Fact: "R(c,d)"}}, Version: 3},
		{Kind: OpDropDB, Name: "d"},
	}
	var buf []byte
	var ends []int64
	for _, op := range ops {
		buf = AppendFrame(buf, op.Encode())
		ends = append(ends, int64(len(buf)))
	}
	keep := ends[1] // the first two records stay intact

	for cut := keep; cut < int64(len(buf)); cut++ {
		count := 0
		valid, err := ScanFrames(buf[:cut], func(p []byte) error {
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: ScanFrames: %v", cut, err)
		}
		if count != 2 {
			t.Fatalf("cut %d: scanned %d records, want 2", cut, count)
		}
		if valid != keep {
			t.Fatalf("cut %d: intact prefix = %d, want %d", cut, valid, keep)
		}
	}
}

// TestScanFramesCorruptChecksum flips one payload byte of the middle
// record: the scan must stop before it even though the tail frame behind
// it is intact — a checksum break ends the trusted prefix.
func TestScanFramesCorruptChecksum(t *testing.T) {
	var buf []byte
	var ends []int64
	for i := 0; i < 3; i++ {
		buf = AppendFrame(buf, Op{Kind: OpDropDB, Name: fmt.Sprintf("d%d", i)}.Encode())
		ends = append(ends, int64(len(buf)))
	}
	buf[ends[0]+frameHeader+2] ^= 0xFF
	count := 0
	valid, err := ScanFrames(buf, func(p []byte) error { count++; return nil })
	if err != nil {
		t.Fatalf("ScanFrames: %v", err)
	}
	if count != 1 || valid != ends[0] {
		t.Fatalf("scanned %d records to offset %d, want 1 record to %d", count, valid, ends[0])
	}
}

// TestScanFramesFnAbort pins the contract recovery depends on: when fn
// rejects a record (undecodable payload behind a valid checksum), the
// returned prefix ends BEFORE that record, so truncation removes it.
func TestScanFramesFnAbort(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, Op{Kind: OpDropDB, Name: "d"}.Encode())
	keep := int64(len(buf))
	buf = AppendFrame(buf, []byte("valid frame, invalid op"))

	valid, err := ScanFrames(buf, func(p []byte) error {
		_, derr := DecodeOp(p)
		return derr
	})
	if err == nil {
		t.Fatal("ScanFrames: want the decode error back, got nil")
	}
	if valid != keep {
		t.Fatalf("intact prefix = %d, want %d (ending before the rejected record)", valid, keep)
	}
}

// TestOpenTornTailEveryOffset is the torn-write battery at the store
// layer: a WAL holding a registration and two mutation batches, cut at
// every byte offset of the final record, must recover the state as of
// the second record at every single cut, and Open must physically
// truncate the torn bytes so the next append produces a clean log.
func TestOpenTornTailEveryOffset(t *testing.T) {
	ops := []Op{
		{Kind: OpPutDB, Name: "d", Facts: []string{"R(a,b)"}, Version: 1},
		{Kind: OpMutateDB, Name: "d", Muts: []api.Mutation{{Op: api.MutationInsert, Fact: "R(b,c)"}}, Version: 2},
		{Kind: OpMutateDB, Name: "d", Muts: []api.Mutation{{Op: api.MutationDelete, Fact: "R(a,b)"}}, Version: 3},
	}
	var buf []byte
	var ends []int64
	for _, op := range ops {
		buf = AppendFrame(buf, op.Encode())
		ends = append(ends, int64(len(buf)))
	}
	keep := ends[1]

	for cut := keep; cut < int64(len(buf)); cut++ {
		dir := t.TempDir()
		walPath := filepath.Join(dir, walName(0))
		if err := os.WriteFile(walPath, buf[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, rec, err := Open(dir, Options{Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if rec.Stats.WALRecords != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, rec.Stats.WALRecords)
		}
		if want := cut - keep; rec.Stats.TornBytes != want {
			t.Fatalf("cut %d: torn bytes = %d, want %d", cut, rec.Stats.TornBytes, want)
		}
		if len(rec.DBs) != 1 {
			t.Fatalf("cut %d: recovered %d databases, want 1", cut, len(rec.DBs))
		}
		d := rec.DBs[0]
		if d.Name != "d" || d.Version != 2 {
			t.Fatalf("cut %d: recovered %s@v%d, want d@v2", cut, d.Name, d.Version)
		}
		wantFacts := []string{"R(a,b)", "R(b,c)"}
		if len(d.Facts) != 2 || d.Facts[0] != wantFacts[0] || d.Facts[1] != wantFacts[1] {
			t.Fatalf("cut %d: recovered facts %v, want %v", cut, d.Facts, wantFacts)
		}
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatalf("cut %d: stat WAL: %v", cut, err)
		}
		if fi.Size() != keep {
			t.Fatalf("cut %d: WAL size after Open = %d, want truncated to %d", cut, fi.Size(), keep)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
	}
}
