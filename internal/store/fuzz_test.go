package store

import (
	"bytes"
	"testing"
	"time"

	"repro/api"
)

// FuzzWALDecode hardens the recovery entry point: an arbitrary byte
// string fed through the frame scanner and op decoder must never panic,
// the intact prefix must actually be a prefix, and every op that decodes
// must re-encode back to a byte-identical payload (the round-trip that
// makes a replayed-then-recompacted log equivalent to the original).
func FuzzWALDecode(f *testing.F) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	seedOps := []Op{
		{Kind: OpPutDB, Name: "d", Facts: []string{"R(a,b)", "S(c)"}, Version: 2},
		{Kind: OpDropDB, Name: "d"},
		{Kind: OpMutateDB, Name: "d", Muts: []api.Mutation{
			{Op: api.MutationInsert, Fact: "R(b,c)"},
			{Op: api.MutationDelete, Fact: "R(a,b)"},
		}, Version: 3},
		{Kind: OpJobSubmit, Job: &api.Job{ID: "job-1", State: api.JobQueued,
			Task: api.Task{Kind: api.KindSolve, Query: "q :- R(x,y)", DB: "d"}, Created: now}},
		{Kind: OpJobStart, ID: "job-1", At: &now},
		{Kind: OpJobFinish, Job: &api.Job{ID: "job-1", State: api.JobFailed,
			Error: api.Errorf(api.CodeRestart, "job interrupted by server restart"), Created: now}},
		{Kind: OpJobRemove, ID: "job-1"},
	}
	var framed []byte
	for _, op := range seedOps {
		framed = AppendFrame(framed, op.Encode())
	}
	f.Add(framed)
	f.Add(framed[:len(framed)-3]) // torn tail
	f.Add(AppendFrame(nil, []byte(`{"kind":"no_such_op"}`)))
	f.Add(AppendFrame(nil, []byte("not json")))
	f.Add([]byte("\x00\x01\x02\x03garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		var payloads [][]byte
		valid, err := ScanFrames(raw, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("fn never errors, ScanFrames did: %v", err)
		}
		if valid < 0 || valid > int64(len(raw)) {
			t.Fatalf("intact prefix %d out of range [0,%d]", valid, len(raw))
		}
		// Rescanning the intact prefix must reproduce it exactly.
		revalid, _ := ScanFrames(raw[:valid], nil)
		if revalid != valid {
			t.Fatalf("rescan of intact prefix gave %d, want %d", revalid, valid)
		}
		for _, p := range payloads {
			op, derr := DecodeOp(p)
			if derr != nil {
				continue // corrupt-but-checksummed; recovery truncates here
			}
			again, aerr := DecodeOp(op.Encode())
			if aerr != nil {
				t.Fatalf("re-decoding %s op: %v", op.Kind, aerr)
			}
			if !bytes.Equal(again.Encode(), op.Encode()) {
				t.Fatalf("op round-trip not stable:\n first %s\nsecond %s", op.Encode(), again.Encode())
			}
		}
	})
}
