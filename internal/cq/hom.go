package cq

// Homomorphism is a variable mapping h from one query's variables to
// another's such that every atom maps onto an existing atom.
type Homomorphism map[Var]Var

// FindHomomorphism searches for a homomorphism h: var(from) -> var(to) such
// that for every atom R(x1..xk) of from, R(h(x1)..h(xk)) is an atom of to.
// It returns nil if none exists.
//
// Homomorphisms characterize containment for Boolean CQs: from has a
// homomorphism into to iff to implies from (to ⊆ from as Boolean queries).
func FindHomomorphism(from, to *Query) Homomorphism {
	return findHom(from, to, nil)
}

// findHom searches for a homomorphism with the additional restriction that
// every atom of from must map into an atom of to whose index is allowed
// (allowed == nil means all atoms allowed).
func findHom(from, to *Query, allowed map[int]bool) Homomorphism {
	// Index to's atoms by relation for fast candidate lookup.
	byRel := map[string][]int{}
	for i, a := range to.Atoms {
		if allowed != nil && !allowed[i] {
			continue
		}
		byRel[a.Rel] = append(byRel[a.Rel], i)
	}
	h := Homomorphism{}
	// Order from's atoms so that atoms sharing variables with already-placed
	// atoms come early (greedy connectivity order reduces backtracking).
	order := connectivityOrder(from)
	var try func(k int) bool
	try = func(k int) bool {
		if k == len(order) {
			return true
		}
		a := from.Atoms[order[k]]
		for _, ti := range byRel[a.Rel] {
			t := to.Atoms[ti]
			if len(t.Args) != len(a.Args) {
				continue
			}
			var bound []Var
			ok := true
			for j, v := range a.Args {
				if w, exists := h[v]; exists {
					if w != t.Args[j] {
						ok = false
						break
					}
				} else {
					h[v] = t.Args[j]
					bound = append(bound, v)
				}
			}
			if ok && try(k+1) {
				return true
			}
			for _, v := range bound {
				delete(h, v)
			}
		}
		return false
	}
	if try(0) {
		return h
	}
	return nil
}

// connectivityOrder returns atom indexes of q ordered so that each atom
// (after the first) shares a variable with an earlier one when possible.
func connectivityOrder(q *Query) []int {
	n := len(q.Atoms)
	used := make([]bool, n)
	seen := map[Var]bool{}
	order := make([]int, 0, n)
	for len(order) < n {
		pick := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if pick == -1 {
				pick = i
			}
			for _, v := range q.Atoms[i].Args {
				if seen[v] {
					pick = i
					break
				}
			}
			if pick == i && len(order) > 0 {
				// Only stop early if this atom actually connects.
				connected := false
				for _, v := range q.Atoms[i].Args {
					if seen[v] {
						connected = true
						break
					}
				}
				if connected {
					break
				}
			}
		}
		used[pick] = true
		order = append(order, pick)
		for _, v := range q.Atoms[pick].Args {
			seen[v] = true
		}
	}
	return order
}

// Contains reports whether q1 ⊆ q2, i.e., every database satisfying q1 also
// satisfies q2 (for Boolean queries: q1 implies q2). By the
// Chandra-Merlin theorem this holds iff there is a homomorphism from q2
// into q1.
func Contains(q1, q2 *Query) bool {
	return FindHomomorphism(q2, q1) != nil
}

// Equivalent reports whether q1 and q2 are logically equivalent.
func Equivalent(q1, q2 *Query) bool {
	return Contains(q1, q2) && Contains(q2, q1)
}

// IsMinimal reports whether q is a minimal (core) query: no equivalent query
// has fewer atoms. A CQ is minimal iff no atom can be dropped while staying
// equivalent, which holds iff there is no homomorphism from q into a proper
// subset of its own atoms (Section 4.1).
func (q *Query) IsMinimal() bool {
	for drop := range q.Atoms {
		allowed := map[int]bool{}
		for i := range q.Atoms {
			if i != drop {
				allowed[i] = true
			}
		}
		if findHom(q, q, allowed) != nil {
			return false
		}
	}
	return len(q.Atoms) > 0
}

// Minimize returns the core of q: an equivalent query with the minimum
// number of atoms, obtained by repeatedly folding q into proper subsets of
// its atoms. The paper assumes all queries are minimized as a preprocessing
// step (Section 4.1). The receiver is not modified.
func (q *Query) Minimize() *Query {
	cur := q.Clone()
	for {
		folded := false
		for drop := range cur.Atoms {
			allowed := map[int]bool{}
			for i := range cur.Atoms {
				if i != drop {
					allowed[i] = true
				}
			}
			h := findHom(cur, cur, allowed)
			if h == nil {
				continue
			}
			// Retain the image atoms: apply h and deduplicate.
			img := New(cur.Name)
			seen := map[string]bool{}
			for _, a := range cur.Atoms {
				names := make([]string, len(a.Args))
				for j, v := range a.Args {
					names[j] = cur.VarName(h[v])
				}
				key := a.Rel + "(" + joinStrings(names) + ")"
				if !seen[key] {
					seen[key] = true
					img.AddAtom(a.Rel, names...)
				}
			}
			for r := range cur.Exo {
				if cur.Exo[r] && img.Arity(r) >= 0 {
					img.MarkExogenous(r)
				}
			}
			cur = img
			folded = true
			break
		}
		if !folded {
			return cur
		}
	}
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
