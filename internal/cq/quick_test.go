package cq

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests on the query algebra.

// randomQuery is a quick.Generator producing small random binary queries.
type randomQuery struct {
	Q *Query
}

var relPool = []string{"R", "R", "S", "A"} // bias toward self-joins

func (randomQuery) Generate(r *rand.Rand, size int) reflect.Value {
	q := New("rq")
	vars := []string{"x", "y", "z", "w"}
	nAtoms := 1 + r.Intn(4)
	for i := 0; i < nAtoms; i++ {
		rel := relPool[r.Intn(len(relPool))]
		if rel == "A" {
			q.AddAtom(rel, vars[r.Intn(len(vars))])
		} else {
			q.AddAtom(rel, vars[r.Intn(len(vars))], vars[r.Intn(len(vars))])
		}
	}
	return reflect.ValueOf(randomQuery{q})
}

// TestQuickMinimizeIdempotentAndEquivalent: minimization preserves
// equivalence and is idempotent.
func TestQuickMinimizeIdempotentAndEquivalent(t *testing.T) {
	prop := func(rq randomQuery) bool {
		q := rq.Q
		if q.Validate() != nil {
			return true
		}
		m := q.Minimize()
		if !Equivalent(q, m) {
			return false
		}
		m2 := m.Minimize()
		if len(m2.Atoms) != len(m.Atoms) {
			return false
		}
		return m.IsMinimal() || len(m.Atoms) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickContainmentIsPreorder: ⊆ is reflexive and transitive on random
// queries.
func TestQuickContainmentIsPreorder(t *testing.T) {
	prop := func(a, b, c randomQuery) bool {
		if !Contains(a.Q, a.Q) {
			return false
		}
		if Contains(a.Q, b.Q) && Contains(b.Q, c.Q) && !Contains(a.Q, c.Q) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickHomomorphismComposes: hom(a->b) and hom(b->c) imply hom(a->c).
func TestQuickHomomorphismComposes(t *testing.T) {
	prop := func(a, b, c randomQuery) bool {
		h1 := FindHomomorphism(a.Q, b.Q)
		h2 := FindHomomorphism(b.Q, c.Q)
		if h1 == nil || h2 == nil {
			return true
		}
		return FindHomomorphism(a.Q, c.Q) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickComponentsPartitionAtoms: components are a partition of atoms.
func TestQuickComponentsPartitionAtoms(t *testing.T) {
	prop := func(rq randomQuery) bool {
		q := rq.Q
		seen := map[int]bool{}
		total := 0
		for _, comp := range q.Components() {
			for _, i := range comp {
				if seen[i] {
					return false
				}
				seen[i] = true
				total++
			}
		}
		return total == len(q.Atoms)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickStringParseRoundTrip: String() output reparses to an equivalent
// query with identical atom count and exogenous marks.
func TestQuickStringParseRoundTrip(t *testing.T) {
	prop := func(rq randomQuery, exoS bool) bool {
		q := rq.Q
		if exoS && q.Arity("S") > 0 {
			q.MarkExogenous("S")
		}
		q2, err := Parse(q.String())
		if err != nil {
			return false
		}
		if len(q2.Atoms) != len(q.Atoms) {
			return false
		}
		for _, rel := range q.Relations() {
			if q.IsExogenous(rel) != q2.IsExogenous(rel) {
				return false
			}
		}
		return Equivalent(q, q2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
