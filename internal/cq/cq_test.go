package cq

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("qchain :- R(x,y), R(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "qchain" {
		t.Errorf("name = %q, want qchain", q.Name)
	}
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms = %d, want 2", len(q.Atoms))
	}
	if q.NumVars() != 3 {
		t.Errorf("vars = %d, want 3", q.NumVars())
	}
	if q.Atoms[0].Args[1] != q.Atoms[1].Args[0] {
		t.Error("shared variable y not unified across atoms")
	}
}

func TestParseNoHead(t *testing.T) {
	q, err := Parse("R(x), S(x,y), R(y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 3 {
		t.Fatalf("atoms = %d, want 3", len(q.Atoms))
	}
}

func TestParseExogenous(t *testing.T) {
	q, err := Parse("qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsExogenous("T") || !q.IsExogenous("S") {
		t.Error("T and S should be exogenous")
	}
	if q.IsExogenous("R") {
		t.Error("R should be endogenous")
	}
	if got := len(q.EndogenousAtoms()); got != 3 {
		t.Errorf("endogenous atoms = %d, want 3", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q :- ",
		"q :- R(x,y",
		"q :- R()",
		"q :- R(x) S(y)",
		"q :- R(x,y), R(x)", // inconsistent arity
		"q :- R(x)^y",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	in := "qrats :- R(x,y)^x, A(x), T(z,x)^x, S(y,z)"
	q := MustParse(in)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", q.String(), err)
	}
	if !Equivalent(q, q2) {
		t.Errorf("round trip lost equivalence: %q vs %q", q, q2)
	}
	if !strings.Contains(q.String(), "^x") {
		t.Errorf("String() lost exogenous annotation: %q", q.String())
	}
}

func TestSelfJoinDetection(t *testing.T) {
	cases := []struct {
		q      string
		sjFree bool
		ssj    bool
		binary bool
	}{
		{"q :- R(x,y), S(y,z), T(z,x)", true, true, true},
		{"q :- R(x,y), R(y,z)", false, true, true},
		{"q :- R(x), S(x,y), R(y)", false, true, true},
		{"q :- A(x), B(y), C(z), W(x,y,z)", true, true, false},
		{"q :- R(x,y), R(y,z), S(z,w), S(w,u)", false, false, true},
	}
	for _, c := range cases {
		q := MustParse(c.q)
		if q.IsSelfJoinFree() != c.sjFree {
			t.Errorf("%s: sjFree = %v, want %v", c.q, q.IsSelfJoinFree(), c.sjFree)
		}
		if q.IsSingleSelfJoin() != c.ssj {
			t.Errorf("%s: ssj = %v, want %v", c.q, q.IsSingleSelfJoin(), c.ssj)
		}
		if q.IsBinary() != c.binary {
			t.Errorf("%s: binary = %v, want %v", c.q, q.IsBinary(), c.binary)
		}
	}
}

func TestComponents(t *testing.T) {
	q := MustParse("qcomp :- A(x), R(x,y), R(z,w), B(w)")
	comps := q.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if q.IsConnected() {
		t.Error("qcomp should be disconnected")
	}
	sub := q.ComponentQueries()
	if len(sub[0].Atoms) != 2 || len(sub[1].Atoms) != 2 {
		t.Errorf("component sizes = %d,%d, want 2,2", len(sub[0].Atoms), len(sub[1].Atoms))
	}
	conn := MustParse("q :- R(x,y), R(y,z)")
	if !conn.IsConnected() {
		t.Error("qchain should be connected")
	}
}

func TestHomomorphismAndContainment(t *testing.T) {
	chain2 := MustParse("q2 :- R(x,y), R(y,z)")
	chain3 := MustParse("q3 :- R(x,y), R(y,z), R(z,w)")
	// chain3 implies chain2: hom from chain2 into chain3 exists.
	if FindHomomorphism(chain2, chain3) == nil {
		t.Error("expected homomorphism chain2 -> chain3")
	}
	if !Contains(chain3, chain2) {
		t.Error("chain3 ⊆ chain2 should hold (3-chain implies 2-chain)")
	}
	if Contains(chain2, chain3) {
		t.Error("chain2 ⊆ chain3 should not hold")
	}
	// Loop query maps into itself but chain does not map into loop... it does:
	// R(x,y),R(y,z) -> R(v,v),R(v,v) via x,y,z -> v.
	loop := MustParse("ql :- R(v,v)")
	if FindHomomorphism(chain2, loop) == nil {
		t.Error("chain2 should fold into loop")
	}
	if FindHomomorphism(loop, chain2) != nil {
		t.Error("loop must not map into chain2 (no reflexive tuple)")
	}
}

func TestHomomorphismRespectsPositions(t *testing.T) {
	conf := MustParse("qc :- R(x,y), R(z,y)")
	chain := MustParse("qh :- R(x,y), R(y,z)")
	// Confluence maps into chain? R(x,y)->R(x,y), R(z,y): need R(?,y).
	// Only R(x,y) has second arg y, so z->x works: R(z,y)->R(x,y). Valid hom.
	if FindHomomorphism(conf, chain) == nil {
		t.Error("confluence folds into chain via z->x")
	}
	// But chain into confluence: R(x,y)->R(x,y); R(y,z): need first arg y.
	// Atoms have first args x and z, so y->x or y->z; but y already bound to y.
	if FindHomomorphism(chain, conf) != nil {
		t.Error("chain must not map into confluence")
	}
}

func TestMinimize(t *testing.T) {
	// Example 22 of the paper: R(x,y),R(z,y),R(z,w),R(x,w) minimizes to R(x,y).
	q := MustParse("qsj :- R(x,y), R(z,y), R(z,w), R(x,w)")
	m := q.Minimize()
	if len(m.Atoms) != 1 {
		t.Fatalf("minimized to %d atoms (%s), want 1", len(m.Atoms), m)
	}
	if !Equivalent(q, m) {
		t.Error("minimization must preserve equivalence")
	}
	if q.IsMinimal() {
		t.Error("qsj should not be minimal")
	}
}

func TestMinimalQueriesStayPut(t *testing.T) {
	minimal := []string{
		"q :- R(x,y), R(y,z)",
		"q :- R(x), S(x,y), R(y)",
		"q :- R(x,y), S(y,z), T(z,x)",
		"q :- A(x), R(x,y), R(y,x)",
		"q :- A(x), R(x,y), R(y,z), R(z,y)",
	}
	for _, s := range minimal {
		q := MustParse(s)
		if !q.IsMinimal() {
			t.Errorf("%s should be minimal", s)
		}
		m := q.Minimize()
		if len(m.Atoms) != len(q.Atoms) {
			t.Errorf("%s: Minimize changed atom count %d -> %d", s, len(q.Atoms), len(m.Atoms))
		}
	}
}

func TestMinimizeNonMinimalChain(t *testing.T) {
	// R(x,y),R(y,z),R(x,w) : R(x,w) folds onto R(x,y) (w->y). Result: chain.
	q := MustParse("q :- R(x,y), R(y,z), R(x,w)")
	m := q.Minimize()
	if len(m.Atoms) != 2 {
		t.Fatalf("minimized to %d atoms (%s), want 2", len(m.Atoms), m)
	}
	if !Equivalent(m, MustParse("q :- R(x,y), R(y,z)")) {
		t.Errorf("minimized query %s not equivalent to chain", m)
	}
}

func TestEquivalentRenaming(t *testing.T) {
	a := MustParse("q :- R(x,y), R(y,z)")
	b := MustParse("q :- R(u,v), R(v,w)")
	if !Equivalent(a, b) {
		t.Error("alpha-renamed queries must be equivalent")
	}
}

func TestVarOccurrencesAndShares(t *testing.T) {
	q := MustParse("q :- A(x), R(x,y), S(y,z)")
	occ := q.VarOccurrences()
	x := q.Var("x")
	if len(occ[x]) != 2 {
		t.Errorf("x occurs in %d atoms, want 2", len(occ[x]))
	}
	if !q.SharesVar(0, 1) || q.SharesVar(0, 2) {
		t.Error("SharesVar misreports adjacency")
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse("q :- R(x,y), R(y,z)")
	c := q.Clone()
	c.AddAtom("S", "z", "w")
	c.MarkExogenous("R")
	if len(q.Atoms) != 2 || q.IsExogenous("R") {
		t.Error("Clone not independent of original")
	}
}

func TestSubQueryKeepsExo(t *testing.T) {
	q := MustParse("q :- A(x), R(x,y)^x, S(y,z)")
	s := q.SubQuery([]int{1, 2})
	if !s.IsExogenous("R") {
		t.Error("SubQuery dropped exogenous mark")
	}
	if s.Arity("A") != -1 {
		t.Error("SubQuery retained dropped relation")
	}
}

func TestRepeatedVarsInAtom(t *testing.T) {
	q := MustParse("z3 :- R(x,x), R(x,y), A(y)")
	if q.NumVars() != 2 {
		t.Errorf("vars = %d, want 2", q.NumVars())
	}
	vs := q.VarsOf(0)
	if len(vs) != 1 {
		t.Errorf("distinct vars of R(x,x) = %d, want 1", len(vs))
	}
}
