package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a Datalog-like Boolean query, e.g.
//
//	qchain :- R(x,y), R(y,z)
//	qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x
//
// The optional head ("name :-") names the query. An atom followed by ^x
// marks its relation exogenous (the paper's superscript-x notation). The
// body is a comma-separated list of atoms; whitespace is insignificant.
func Parse(s string) (*Query, error) {
	name := ""
	body := s
	if i := strings.Index(s, ":-"); i >= 0 {
		name = strings.TrimSpace(s[:i])
		body = s[i+2:]
	}
	q := New(name)
	p := &parser{in: body}
	p.skipSpace()
	if p.eof() {
		return nil, fmt.Errorf("cq: empty query body in %q", s)
	}
	for {
		rel, args, exo, err := p.atom()
		if err != nil {
			return nil, fmt.Errorf("cq: parsing %q: %w", s, err)
		}
		q.AddAtom(rel, args...)
		if exo {
			q.MarkExogenous(rel)
		}
		p.skipSpace()
		if p.eof() {
			break
		}
		if !p.consume(',') {
			return nil, fmt.Errorf("cq: parsing %q: expected ',' at offset %d", s, p.pos)
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for statically known
// queries such as the paper's query zoo.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	in  string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.in) }

func (p *parser) peek() byte { return p.in[p.pos] }

func (p *parser) skipSpace() {
	for !p.eof() && unicode.IsSpace(rune(p.in[p.pos])) {
		p.pos++
	}
}

func (p *parser) consume(c byte) bool {
	p.skipSpace()
	if !p.eof() && p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := rune(p.in[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '\'' {
			p.pos++
		} else {
			break
		}
	}
	if p.pos == start {
		return "", fmt.Errorf("expected identifier at offset %d", p.pos)
	}
	return p.in[start:p.pos], nil
}

func (p *parser) atom() (rel string, args []string, exo bool, err error) {
	rel, err = p.ident()
	if err != nil {
		return "", nil, false, err
	}
	if !p.consume('(') {
		return "", nil, false, fmt.Errorf("expected '(' after %s", rel)
	}
	for {
		v, err := p.ident()
		if err != nil {
			return "", nil, false, err
		}
		args = append(args, v)
		if p.consume(')') {
			break
		}
		if !p.consume(',') {
			return "", nil, false, fmt.Errorf("expected ',' or ')' in %s(...)", rel)
		}
	}
	// Optional exogenous superscript: ^x.
	save := p.pos
	p.skipSpace()
	if !p.eof() && p.peek() == '^' {
		p.pos++
		if !p.eof() && (p.peek() == 'x' || p.peek() == 'X') {
			p.pos++
			return rel, args, true, nil
		}
		return "", nil, false, fmt.Errorf("expected 'x' after '^'")
	}
	p.pos = save
	return rel, args, false, nil
}
