package cq_test

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/zoo"
)

// FuzzParseCQ fuzzes the query parser. The invariants are the parser's
// whole contract: Parse never panics, every accepted query satisfies
// Validate, and the rendered String() form is a fixed point — it
// re-parses, and re-rendering reproduces it byte for byte. (The input
// itself need not round-trip: whitespace is insignificant and an
// exogenous mark on one occurrence of a relation renders on all of them.)
//
// The seed corpus is the full paper zoo — every named query shape the
// repo cares about — plus the malformed corner cases the parser's error
// paths exist for. Run with `go test -fuzz=FuzzParseCQ ./internal/cq/`
// to explore; the seeds alone pin the edge cases in a normal test run.
//
// This lives in the external cq_test package so it can seed from
// internal/zoo, which imports cq.
func FuzzParseCQ(f *testing.F) {
	for _, e := range zoo.Queries() {
		f.Add(e.Query.String())
	}
	for _, s := range []string{
		"",
		"   ",
		"q :-",
		":- R(x)",
		"R(",
		"R()",
		"R(x",
		"R(x,y",
		"R(x,y))",
		"R(x,y),",
		"R(x,y) S(y,z)",
		"R(x,y)^",
		"R(x,y)^y",
		"R(x,y) ^ x",
		"R(a,b,c,d,e)",
		"R(x,y), R(x,y,z)",
		"q :- R ( x , y ) , R ( y , z )",
		"q :- R(x,y)^x, R(y,z)",
		"Ř(×,ü)",
		"q q :- R(x)",
		"R(x'),S(x')",
		"1(2,3)",
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, s string) {
		q, err := cq.Parse(s)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a query failing Validate: %v", s, err)
		}
		rendered := q.String()
		q2, err := cq.Parse(rendered)
		if err != nil {
			t.Fatalf("String() %q of accepted input %q does not re-parse: %v", rendered, s, err)
		}
		if again := q2.String(); again != rendered {
			t.Fatalf("String() is not a fixed point for %q:\nfirst:  %q\nsecond: %q", s, rendered, again)
		}
	})
}
