// Package cq models Boolean conjunctive queries (CQs) with optional
// exogenous relation annotations, as used in the resilience literature.
//
// A query is a set of atoms over a relational vocabulary; all variables are
// existentially quantified (Boolean queries, Section 2 of the paper). A
// relation may be marked exogenous, meaning its tuples provide context and
// may never be deleted by a contingency set.
//
// The package provides the structural machinery of Sections 2 and 4 of the
// paper: parsing and printing, self-join detection, connected components
// (Lemma 14), homomorphisms, containment and equivalence, and minimization
// to the Chandra-Merlin core (Section 4.1).
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a query variable. Variables are indexes into the query's
// variable-name table so that atom argument lists stay compact and
// comparable.
type Var int

// Atom is a single subgoal R(x1,...,xk) of a conjunctive query.
type Atom struct {
	Rel  string // relation symbol
	Args []Var  // argument variables, possibly with repetitions
}

// Query is a Boolean conjunctive query: a conjunction of atoms over
// existentially quantified variables.
//
// The zero value is an empty (trivially true) query; use New or Parse to
// build real queries.
type Query struct {
	// Name is an optional display name such as "qchain".
	Name string
	// Atoms is the body of the query in declaration order.
	Atoms []Atom
	// Exo marks relations whose tuples are exogenous (not deletable).
	Exo map[string]bool

	varNames []string
	varIndex map[string]Var
}

// New returns an empty named query ready for AddAtom calls.
func New(name string) *Query {
	return &Query{
		Name:     name,
		Exo:      map[string]bool{},
		varIndex: map[string]Var{},
	}
}

// Clone returns a deep copy of q.
func (q *Query) Clone() *Query {
	c := New(q.Name)
	c.varNames = append([]string(nil), q.varNames...)
	for i, n := range c.varNames {
		c.varIndex[n] = Var(i)
	}
	for _, a := range q.Atoms {
		c.Atoms = append(c.Atoms, Atom{Rel: a.Rel, Args: append([]Var(nil), a.Args...)})
	}
	for r, e := range q.Exo {
		c.Exo[r] = e
	}
	return c
}

// Var returns the variable with the given name, creating it on first use.
func (q *Query) Var(name string) Var {
	if q.varIndex == nil {
		q.varIndex = map[string]Var{}
	}
	if v, ok := q.varIndex[name]; ok {
		return v
	}
	v := Var(len(q.varNames))
	q.varNames = append(q.varNames, name)
	q.varIndex[name] = v
	return v
}

// LookupVar returns the variable with the given name without creating it.
func (q *Query) LookupVar(name string) (Var, bool) {
	v, ok := q.varIndex[name]
	return v, ok
}

// VarName returns the display name of v.
func (q *Query) VarName(v Var) string {
	if int(v) < 0 || int(v) >= len(q.varNames) {
		return fmt.Sprintf("?%d", int(v))
	}
	return q.varNames[v]
}

// NumVars returns the number of distinct variables in the query.
func (q *Query) NumVars() int { return len(q.varNames) }

// AddAtom appends the atom rel(vars...) to the query body and returns q for
// chaining.
func (q *Query) AddAtom(rel string, vars ...string) *Query {
	args := make([]Var, len(vars))
	for i, n := range vars {
		args[i] = q.Var(n)
	}
	q.Atoms = append(q.Atoms, Atom{Rel: rel, Args: args})
	return q
}

// MarkExogenous marks the given relations exogenous and returns q.
func (q *Query) MarkExogenous(rels ...string) *Query {
	if q.Exo == nil {
		q.Exo = map[string]bool{}
	}
	for _, r := range rels {
		q.Exo[r] = true
	}
	return q
}

// IsExogenous reports whether relation rel is exogenous in q.
func (q *Query) IsExogenous(rel string) bool { return q.Exo[rel] }

// EndogenousAtoms returns the indexes of atoms whose relation is endogenous.
func (q *Query) EndogenousAtoms() []int {
	var out []int
	for i, a := range q.Atoms {
		if !q.Exo[a.Rel] {
			out = append(out, i)
		}
	}
	return out
}

// Arity returns the arity of relation rel as used in q, or -1 if rel does
// not occur. Validate guarantees consistency.
func (q *Query) Arity(rel string) int {
	for _, a := range q.Atoms {
		if a.Rel == rel {
			return len(a.Args)
		}
	}
	return -1
}

// Relations returns the distinct relation symbols of q in first-occurrence
// order.
func (q *Query) Relations() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range q.Atoms {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	return out
}

// AtomsOf returns the indexes of atoms over relation rel.
func (q *Query) AtomsOf(rel string) []int {
	var out []int
	for i, a := range q.Atoms {
		if a.Rel == rel {
			out = append(out, i)
		}
	}
	return out
}

// SelfJoinRelations returns the relations that occur in more than one atom.
func (q *Query) SelfJoinRelations() []string {
	count := map[string]int{}
	for _, a := range q.Atoms {
		count[a.Rel]++
	}
	var out []string
	for _, r := range q.Relations() {
		if count[r] > 1 {
			out = append(out, r)
		}
	}
	return out
}

// HasSelfJoin reports whether any relation symbol repeats.
func (q *Query) HasSelfJoin() bool { return len(q.SelfJoinRelations()) > 0 }

// IsSelfJoinFree reports whether every relation occurs at most once.
func (q *Query) IsSelfJoinFree() bool { return !q.HasSelfJoin() }

// IsSingleSelfJoin reports whether at most one relation symbol repeats
// (the "ssj" class of the paper).
func (q *Query) IsSingleSelfJoin() bool { return len(q.SelfJoinRelations()) <= 1 }

// IsBinary reports whether every relation has arity 1 or 2 ("binary
// queries" in the paper's terminology).
func (q *Query) IsBinary() bool {
	for _, a := range q.Atoms {
		if len(a.Args) > 2 {
			return false
		}
	}
	return true
}

// VarsOf returns the set of distinct variables of atom i in first-occurrence
// order.
func (q *Query) VarsOf(i int) []Var {
	seen := map[Var]bool{}
	var out []Var
	for _, v := range q.Atoms[i].Args {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// SharesVar reports whether atoms i and j share at least one variable.
func (q *Query) SharesVar(i, j int) bool {
	set := map[Var]bool{}
	for _, v := range q.Atoms[i].Args {
		set[v] = true
	}
	for _, v := range q.Atoms[j].Args {
		if set[v] {
			return true
		}
	}
	return false
}

// Validate checks structural invariants: consistent arities per relation and
// nonempty argument lists. It returns the first violation found.
func (q *Query) Validate() error {
	ar := map[string]int{}
	for _, a := range q.Atoms {
		if len(a.Args) == 0 {
			return fmt.Errorf("cq: atom %s has no arguments", a.Rel)
		}
		if len(a.Args) > 4 {
			return fmt.Errorf("cq: atom %s has arity %d > 4 (unsupported)", a.Rel, len(a.Args))
		}
		if prev, ok := ar[a.Rel]; ok && prev != len(a.Args) {
			return fmt.Errorf("cq: relation %s used with arities %d and %d", a.Rel, prev, len(a.Args))
		}
		ar[a.Rel] = len(a.Args)
	}
	return nil
}

// AtomString renders atom i, appending the paper's ^x superscript for
// exogenous relations.
func (q *Query) AtomString(i int) string {
	a := q.Atoms[i]
	names := make([]string, len(a.Args))
	for j, v := range a.Args {
		names[j] = q.VarName(v)
	}
	s := a.Rel + "(" + strings.Join(names, ",") + ")"
	if q.Exo[a.Rel] {
		s += "^x"
	}
	return s
}

// String renders the query in Datalog-like notation, e.g.
// "qchain :- R(x,y), R(y,z)".
func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i := range q.Atoms {
		parts[i] = q.AtomString(i)
	}
	name := q.Name
	if name == "" {
		name = "q"
	}
	return name + " :- " + strings.Join(parts, ", ")
}

// Components partitions the atoms of q into connected components: maximal
// sets of atoms connected through shared variables (Section 4.2). Each
// component is returned as a sorted slice of atom indexes.
func (q *Query) Components() [][]int {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byVar := map[Var]int{}
	for i := range q.Atoms {
		for _, v := range q.Atoms[i].Args {
			if j, ok := byVar[v]; ok {
				union(i, j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		sort.Ints(groups[r])
		out = append(out, groups[r])
	}
	return out
}

// IsConnected reports whether the query has a single connected component.
func (q *Query) IsConnected() bool { return len(q.Components()) <= 1 }

// SubQuery returns a new query containing only the atoms with the given
// indexes (in the given order), preserving variable names and exogenous
// marks of retained relations.
func (q *Query) SubQuery(atomIdx []int) *Query {
	s := New(q.Name)
	for _, i := range atomIdx {
		a := q.Atoms[i]
		names := make([]string, len(a.Args))
		for j, v := range a.Args {
			names[j] = q.VarName(v)
		}
		s.AddAtom(a.Rel, names...)
	}
	for r := range q.Exo {
		if q.Exo[r] && s.Arity(r) >= 0 {
			s.MarkExogenous(r)
		}
	}
	return s
}

// ComponentQueries splits q into one query per connected component.
func (q *Query) ComponentQueries() []*Query {
	comps := q.Components()
	out := make([]*Query, len(comps))
	for i, c := range comps {
		out[i] = q.SubQuery(c)
		if len(comps) > 1 {
			out[i].Name = fmt.Sprintf("%s[%d]", q.Name, i+1)
		}
	}
	return out
}

// VarOccurrences returns, for each variable, the sorted list of atom indexes
// in which it occurs.
func (q *Query) VarOccurrences() map[Var][]int {
	occ := map[Var][]int{}
	for i := range q.Atoms {
		seen := map[Var]bool{}
		for _, v := range q.Atoms[i].Args {
			if !seen[v] {
				seen[v] = true
				occ[v] = append(occ[v], i)
			}
		}
	}
	return occ
}
