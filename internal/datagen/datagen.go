// Package datagen generates synthetic database instances for the
// resilience solvers and benchmarks: random instances shaped to a query's
// vocabulary, graph encodings, and deterministic scaling families.
//
// The paper's "evaluation" constructs databases inside hardness proofs and
// flow arguments; these generators reproduce the same instance shapes at
// arbitrary scale, which is what the benchmark harness sweeps.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/vertexcover"
)

// ConstName renders the i-th synthetic constant name.
func ConstName(i int) string { return fmt.Sprintf("c%d", i) }

// Random fills a database with random tuples for every relation of q:
// tuplesPerRel tuples over a domain of the given size. Self-joined binary
// relations additionally receive the reverse of each tuple with probability
// mutualProb, so permutation/confluence witnesses actually occur.
func Random(rng *rand.Rand, q *cq.Query, domain, tuplesPerRel int, mutualProb float64) *db.Database {
	d := db.New()
	sj := map[string]bool{}
	for _, r := range q.SelfJoinRelations() {
		sj[r] = true
	}
	for _, rel := range q.Relations() {
		ar := q.Arity(rel)
		for i := 0; i < tuplesPerRel; i++ {
			args := make([]string, ar)
			for j := range args {
				args[j] = ConstName(rng.Intn(domain))
			}
			d.AddNames(rel, args...)
			if ar == 2 && sj[rel] && rng.Float64() < mutualProb {
				d.AddNames(rel, args[1], args[0])
			}
		}
	}
	return d
}

// RandomWithLoops is Random plus loop tuples R(a,a) for self-joined binary
// relations, exercising the REP code paths.
func RandomWithLoops(rng *rand.Rand, q *cq.Query, domain, tuplesPerRel int, loopProb float64) *db.Database {
	d := Random(rng, q, domain, tuplesPerRel, 0.4)
	for _, rel := range q.SelfJoinRelations() {
		if q.Arity(rel) != 2 {
			continue
		}
		for i := 0; i < domain; i++ {
			if rng.Float64() < loopProb {
				d.AddNames(rel, ConstName(i), ConstName(i))
			}
		}
	}
	return d
}

// GraphDB encodes an undirected graph as the canonical qvc database
// (Proposition 9): R holds the vertices, S one tuple per arc direction...
// the paper uses directed edges; resilience is identical either way, and we
// insert each edge once in its normalized orientation.
func GraphDB(g *vertexcover.Graph) *db.Database {
	d := db.New()
	for v := 0; v < g.N; v++ {
		d.AddNames("R", ConstName(v))
	}
	for _, e := range g.Edges() {
		d.AddNames("S", ConstName(e[0]), ConstName(e[1]))
	}
	return d
}

// ChainDB builds a database for qchain-shaped queries: a long path
// c0 -> c1 -> ... -> cn with extra random chords, giving many overlapping
// witnesses. Used in scaling benchmarks.
func ChainDB(rng *rand.Rand, n, chords int) *db.Database {
	d := db.New()
	for i := 0; i+1 < n; i++ {
		d.AddNames("R", ConstName(i), ConstName(i+1))
	}
	for i := 0; i < chords; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			d.AddNames("R", ConstName(u), ConstName(v))
		}
	}
	return d
}

// ManyComponentChainDB builds a database for qchain-shaped queries whose
// witness hypergraph splits into many connected components: `components`
// disjoint ring clusters over disjoint constant pools, with heavy-tailed
// cluster sizes — most clusters are small (minLen nodes), but sizes follow
// an approximate power law up to maxLen, so a few clusters dominate the
// search effort. Each cluster is a directed cycle plus a few random chords
// inside its own pool, creating overlapping witnesses without ever
// bridging clusters.
//
// Cycles are the shape kernelization cannot touch — every edge occurs in
// exactly two pairwise-incomparable witnesses, so neither unit forcing nor
// domination fires on the backbone — which makes this the decompose
// pipeline's home turf: the monolithic solver sees one big hypergraph, the
// pipeline sees `components` independent small ones whose minima add.
func ManyComponentChainDB(rng *rand.Rand, components, minLen, maxLen int) *db.Database {
	if minLen < 3 {
		minLen = 3
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	d := db.New()
	base := 0
	for c := 0; c < components; c++ {
		// Heavy tail (Pareto, α = 2): most clusters sit at minLen, a few
		// reach toward maxLen and dominate the search effort.
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		n := minLen + int(1/math.Sqrt(u)) - 1
		if n > maxLen {
			n = maxLen
		}
		for i := 0; i < n; i++ {
			d.AddNames("R", ConstName(base+i), ConstName(base+(i+1)%n))
		}
		for i := 0; i < n/3; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				d.AddNames("R", ConstName(base+u), ConstName(base+v))
			}
		}
		base += n // disjoint constant pools keep clusters disconnected
	}
	return d
}

// ManyComponentDenseDB builds a database for qchain-shaped queries whose
// witness hypergraph splits into `components` disjoint dense clusters:
// each cluster is a directed ring on n nodes plus `extra` random chords
// drawn inside the cluster's own constant pool. Where
// ManyComponentChainDB's sparse rings kernelize down to near-trivial
// residues, a dense cluster carries on the order of n·((n+extra)/n)²
// overlapping length-2 paths, so every component costs the solver real
// search effort. That makes this the workload that separates a full
// rebuild — which re-enumerates and re-solves every component — from
// delta maintenance, which re-solves only the components a mutation
// dirtied and answers the rest from the component cache.
func ManyComponentDenseDB(rng *rand.Rand, components, n, extra int) *db.Database {
	if n < 3 {
		n = 3
	}
	d := db.New()
	base := 0
	for c := 0; c < components; c++ {
		for i := 0; i < n; i++ {
			d.AddNames("R", ConstName(base+i), ConstName(base+(i+1)%n))
		}
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				d.AddNames("R", ConstName(base+u), ConstName(base+v))
			}
		}
		base += n // disjoint constant pools keep clusters disconnected
	}
	return d
}

// ConfluenceDB builds databases for qACconf-shaped queries: nA sources with
// A-tuples fanning into shared middles, mirrored by nC sinks, scaled by
// fanout. Every witness is an A–R–R–C path through a shared middle value.
func ConfluenceDB(rng *rand.Rand, nA, nC, fanout int) *db.Database {
	d := db.New()
	for i := 0; i < nA; i++ {
		a := "a" + ConstName(i)
		d.AddNames("A", a)
		for k := 0; k < fanout; k++ {
			d.AddNames("R", a, "m"+ConstName(rng.Intn(nA+nC)))
		}
	}
	for i := 0; i < nC; i++ {
		c := "c" + ConstName(i)
		d.AddNames("C", c)
		for k := 0; k < fanout; k++ {
			d.AddNames("R", c, "m"+ConstName(rng.Intn(nA+nC)))
		}
	}
	return d
}

// PermDB builds databases for permutation-family queries: nPairs mutual
// pairs, nLoops loops, plus unary tuples for every constant under the given
// unary relation names.
func PermDB(rng *rand.Rand, nPairs, nLoops, domain int, unaryRels ...string) *db.Database {
	d := db.New()
	for i := 0; i < nPairs; i++ {
		u, v := rng.Intn(domain), rng.Intn(domain)
		if u == v {
			v = (v + 1) % domain
		}
		d.AddNames("R", ConstName(u), ConstName(v))
		d.AddNames("R", ConstName(v), ConstName(u))
	}
	for i := 0; i < nLoops; i++ {
		a := ConstName(rng.Intn(domain))
		d.AddNames("R", a, a)
	}
	for _, rel := range unaryRels {
		for i := 0; i < domain; i++ {
			d.AddNames(rel, ConstName(i))
		}
	}
	return d
}

// SkewedWeights draws heavy-tailed integer deletion costs for a database's
// tuples: a hotFrac fraction of tuples get a Zipf-distributed cost in
// [2, maxCost] (most of them cheap, a few near the cap), the rest keep the
// default cost 1 by being left out of the map. The result is keyed by the
// tuples' rendered form — exactly the api.Task.Weights encoding — so it
// can be attached to a weighted solve/enumerate/responsibility/topk task
// or fed to the -weights file format of cmd/resil.
//
// Skewed costs are the adversarial shape for the weighted solvers: the
// greedy upper bound chases cheap tuples with poor coverage, the weighted
// SAT counter's width grows with the optimum in cost units, and min-cost
// optima diverge from minimum-cardinality ones.
func SkewedWeights(rng *rand.Rand, d *db.Database, hotFrac float64, maxCost int64) map[string]int64 {
	if maxCost < 2 {
		maxCost = 2
	}
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(maxCost-2))
	w := map[string]int64{}
	for _, t := range d.AllTuples() {
		if rng.Float64() < hotFrac {
			w[d.TupleString(t)] = 2 + int64(zipf.Uint64())
		}
	}
	return w
}

// LinearSJFreeDB builds databases for the linear query
// A(x), R1(x,y), R2(y,z), C(z): layered random bipartite links. Used to
// bench the flow solver on sj-free linear queries.
func LinearSJFreeDB(rng *rand.Rand, layerSize, links int) *db.Database {
	d := db.New()
	for i := 0; i < layerSize; i++ {
		d.AddNames("A", "x"+ConstName(i))
		d.AddNames("C", "z"+ConstName(i))
	}
	for i := 0; i < links; i++ {
		d.AddNames("R1", "x"+ConstName(rng.Intn(layerSize)), "y"+ConstName(rng.Intn(layerSize)))
		d.AddNames("R2", "y"+ConstName(rng.Intn(layerSize)), "z"+ConstName(rng.Intn(layerSize)))
	}
	return d
}
