package datagen

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/vertexcover"
	"repro/internal/witset"
)

func TestRandomCoversAllRelations(t *testing.T) {
	q := cq.MustParse("q :- A(x), R(x,y), R(z,y), C(z)")
	rng := rand.New(rand.NewSource(1))
	d := Random(rng, q, 5, 6, 0.5)
	for _, rel := range q.Relations() {
		r := d.Rel(rel)
		if r == nil || r.Len() == 0 {
			t.Errorf("relation %s empty", rel)
		}
		if r.Arity != q.Arity(rel) {
			t.Errorf("relation %s arity %d, want %d", rel, r.Arity, q.Arity(rel))
		}
	}
}

func TestRandomWithLoopsProducesLoops(t *testing.T) {
	q := cq.MustParse("z3 :- R(x,x), R(x,y), A(y)")
	rng := rand.New(rand.NewSource(2))
	d := RandomWithLoops(rng, q, 6, 8, 1.0)
	loops := 0
	for _, tup := range d.Rel("R").Tuples() {
		if tup.Args[0] == tup.Args[1] {
			loops++
		}
	}
	if loops == 0 {
		t.Error("loopProb=1.0 produced no loops")
	}
}

func TestGraphDBMatchesGraph(t *testing.T) {
	g := vertexcover.Cycle(5)
	d := GraphDB(g)
	if d.Rel("R").Len() != 5 || d.Rel("S").Len() != 5 {
		t.Errorf("R=%d S=%d, want 5/5", d.Rel("R").Len(), d.Rel("S").Len())
	}
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	if !eval.Satisfied(q, d) {
		t.Error("cycle database should satisfy qvc")
	}
}

func TestChainDBWitnessCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := ChainDB(rng, 10, 0)
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	// A simple path of 9 edges has 8 two-step witnesses.
	if got := eval.CountWitnesses(q, d); got != 8 {
		t.Errorf("witnesses = %d, want 8", got)
	}
}

func TestConfluenceDBProducesWitnesses(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := ConfluenceDB(rng, 10, 10, 3)
	q := cq.MustParse("qACconf :- A(x), R(x,y), R(z,y), C(z)")
	if eval.CountWitnesses(q, d) == 0 {
		t.Error("confluence generator produced no witnesses")
	}
}

func TestPermDBPairsAreMutual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := PermDB(rng, 10, 0, 8, "A")
	r := d.Rel("R")
	for _, tup := range r.Tuples() {
		if tup.Args[0] == tup.Args[1] {
			continue
		}
		rev := tup
		rev.Args[0], rev.Args[1] = tup.Args[1], tup.Args[0]
		if !r.Has(rev) {
			t.Fatalf("pair %v lacks its reverse", tup)
		}
	}
	if d.Rel("A").Len() != 8 {
		t.Errorf("A has %d tuples, want domain size 8", d.Rel("A").Len())
	}
}

func TestLinearSJFreeDB(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := LinearSJFreeDB(rng, 20, 60)
	q := cq.MustParse("q :- A(x), R1(x,y), R2(y,z), C(z)")
	if eval.CountWitnesses(q, d) == 0 {
		t.Error("linear generator produced no witnesses")
	}
}

func TestManyComponentChainDBIsManyComponent(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(7))
	d := ManyComponentChainDB(rng, 12, 3, 30)

	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Unbreakable() {
		t.Fatal("generated instance unbreakable")
	}
	if inst.NumWitnesses() == 0 {
		t.Fatal("generated instance has no witnesses")
	}
	comps := inst.Components()
	if len(comps) < 6 {
		t.Fatalf("witness hypergraph has %d components, want many (≥6) from 12 disjoint clusters", len(comps))
	}
	// Heavy tail: cluster sizes must not be uniform.
	min, max := comps[0].Fam.N, comps[0].Fam.N
	for _, c := range comps {
		if c.Fam.N < min {
			min = c.Fam.N
		}
		if c.Fam.N > max {
			max = c.Fam.N
		}
	}
	if max <= min {
		t.Errorf("component sizes uniform at %d; want a heavy tail", max)
	}
}
