// Package hypergraph implements the dual hypergraph H(q) of a conjunctive
// query (Section 2.1 of the paper) and the structural notions defined on
// it: variable-avoiding paths, triads (Definition 5), linearity
// (Section 2.4), and pseudo-linearity (Theorem 25).
//
// In the dual hypergraph, vertices are the atoms of q and each variable x
// contributes a hyperedge consisting of all atoms containing x.
package hypergraph

import (
	"repro/internal/cq"
)

// H is the dual hypergraph of a query; it retains a pointer to the query
// for variable and atom metadata.
type H struct {
	Q *cq.Query
	// varsOf[i] is the set of distinct variables of atom i.
	varsOf []map[cq.Var]bool
}

// New builds the dual hypergraph of q.
func New(q *cq.Query) *H {
	h := &H{Q: q, varsOf: make([]map[cq.Var]bool, len(q.Atoms))}
	for i := range q.Atoms {
		set := map[cq.Var]bool{}
		for _, v := range q.Atoms[i].Args {
			set[v] = true
		}
		h.varsOf[i] = set
	}
	return h
}

// VarsOf returns the variable set of atom i.
func (h *H) VarsOf(i int) map[cq.Var]bool { return h.varsOf[i] }

// PathAvoiding reports whether there is a path from atom i to atom j in
// H(q) using only hyperedges (variables) not in the forbidden set. Per
// Definition 5, intermediate atoms may be arbitrary (including exogenous),
// only the connecting variables are constrained.
func (h *H) PathAvoiding(i, j int, forbidden map[cq.Var]bool) bool {
	if i == j {
		return true
	}
	n := len(h.Q.Atoms)
	visited := make([]bool, n)
	visited[i] = true
	stack := []int{i}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for next := 0; next < n; next++ {
			if visited[next] {
				continue
			}
			if h.connected(cur, next, forbidden) {
				if next == j {
					return true
				}
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// connected reports whether atoms a and b share a variable outside the
// forbidden set.
func (h *H) connected(a, b int, forbidden map[cq.Var]bool) bool {
	for v := range h.varsOf[a] {
		if forbidden[v] {
			continue
		}
		if h.varsOf[b][v] {
			return true
		}
	}
	return false
}

// Triad is a set of three endogenous atoms with pairwise robust
// connectivity (Definition 5). The fields are atom indexes into Q.Atoms.
type Triad struct {
	S0, S1, S2 int
}

// FindTriad searches for a triad among the endogenous atoms of q, returning
// the first one found, or nil. Following Definition 5, a triad is a triple
// {S0,S1,S2} of endogenous atoms such that for every pair there is a path in
// H(q) using no variable of the third atom.
//
// Callers should normalize the query first (minimize, make dominated
// relations exogenous) for the complexity-theoretic meaning of Theorem 24
// to apply.
func FindTriad(q *cq.Query) *Triad {
	h := New(q)
	endo := q.EndogenousAtoms()
	for a := 0; a < len(endo); a++ {
		for b := a + 1; b < len(endo); b++ {
			for c := b + 1; c < len(endo); c++ {
				i, j, k := endo[a], endo[b], endo[c]
				if h.isTriad(i, j, k) {
					return &Triad{S0: i, S1: j, S2: k}
				}
			}
		}
	}
	return nil
}

func (h *H) isTriad(i, j, k int) bool {
	return h.PathAvoiding(i, j, h.varsOf[k]) &&
		h.PathAvoiding(j, k, h.varsOf[i]) &&
		h.PathAvoiding(i, k, h.varsOf[j])
}

// HasTriad reports whether q contains a triad.
func HasTriad(q *cq.Query) bool { return FindTriad(q) != nil }

// IsLinear reports whether q is a linear query: its atoms can be arranged
// in a linear order such that every variable occurs in a contiguous block
// of atoms (Section 2.4). For the small queries of this problem domain the
// check enumerates permutations with pruning.
func IsLinear(q *cq.Query) bool {
	return LinearOrder(q) != nil
}

// LinearOrder returns a linear arrangement of q's atom indexes (each
// variable occupying a contiguous interval), or nil if none exists.
func LinearOrder(q *cq.Query) []int {
	n := len(q.Atoms)
	if n <= 2 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	h := New(q)
	used := make([]bool, n)
	order := make([]int, 0, n)
	// closed marks variables whose interval has ended; once closed, a
	// variable may not reappear.
	var rec func() []int
	rec = func() []int {
		if len(order) == n {
			out := make([]int, n)
			copy(out, order)
			return out
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if !extendsLinearly(h, order, i) {
				continue
			}
			used[i] = true
			order = append(order, i)
			if res := rec(); res != nil {
				return res
			}
			order = order[:len(order)-1]
			used[i] = false
		}
		return nil
	}
	return rec()
}

// extendsLinearly checks that appending atom cand to the prefix keeps every
// variable's occurrence set contiguous: any variable of cand that occurred
// in the prefix must occur in the immediately preceding atom.
func extendsLinearly(h *H, prefix []int, cand int) bool {
	if len(prefix) == 0 {
		return true
	}
	last := prefix[len(prefix)-1]
	seenBefore := map[cq.Var]bool{}
	for _, i := range prefix[:len(prefix)-1] {
		for v := range h.varsOf[i] {
			seenBefore[v] = true
		}
	}
	for v := range h.varsOf[cand] {
		if h.varsOf[last][v] {
			continue // still open
		}
		if seenBefore[v] {
			return false // variable re-opens after a gap
		}
	}
	return true
}

// IsPseudoLinear reports whether the endogenous atoms of q are linearly
// connected in the sense of Theorem 25. By that theorem this is equivalent
// to q having no triad; we expose it under the paper's name for clarity and
// additionally verify the group-walk structure when it holds.
func IsPseudoLinear(q *cq.Query) bool {
	return !HasTriad(q)
}

// EndogenousGroups partitions the endogenous atoms into the paper's groups
// (Theorem 25 proof): two atoms are grouped iff they contain exactly the
// same variable set. Returns the groups as slices of atom indexes.
func EndogenousGroups(q *cq.Query) [][]int {
	h := New(q)
	endo := q.EndogenousAtoms()
	var groups [][]int
	assigned := map[int]bool{}
	for _, i := range endo {
		if assigned[i] {
			continue
		}
		group := []int{i}
		assigned[i] = true
		for _, j := range endo {
			if assigned[j] {
				continue
			}
			if sameVarSet(h.varsOf[i], h.varsOf[j]) {
				group = append(group, j)
				assigned[j] = true
			}
		}
		groups = append(groups, group)
	}
	return groups
}

func sameVarSet(a, b map[cq.Var]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}
