package hypergraph

import (
	"testing"

	"repro/internal/cq"
)

func TestTriadTriangle(t *testing.T) {
	q := cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)")
	tr := FindTriad(q)
	if tr == nil {
		t.Fatal("q△ must contain the triad {R,S,T}")
	}
	rels := map[string]bool{
		q.Atoms[tr.S0].Rel: true,
		q.Atoms[tr.S1].Rel: true,
		q.Atoms[tr.S2].Rel: true,
	}
	if !rels["R"] || !rels["S"] || !rels["T"] {
		t.Errorf("triad atoms = %v, want R,S,T", rels)
	}
}

func TestTriadTripod(t *testing.T) {
	// qT with W exogenous (its normal form): {A,B,C} is a triad connected
	// through the exogenous W.
	q := cq.MustParse("qT :- A(x), B(y), C(z), W(x,y,z)^x")
	if FindTriad(q) == nil {
		t.Fatal("normalized tripod must contain triad {A,B,C}")
	}
}

func TestNoTriadAfterDominationRats(t *testing.T) {
	// Normalized qrats: R and T exogenous, only A and S endogenous -> at
	// most 2 endogenous atoms, no triad possible.
	q := cq.MustParse("qrats :- R(x,y)^x, A(x), T(z,x)^x, S(y,z)")
	if FindTriad(q) != nil {
		t.Error("normalized qrats must have no triad")
	}
	if !IsPseudoLinear(q) {
		t.Error("normalized qrats must be pseudo-linear")
	}
}

func TestTriadSurvivesSelfJoinVariation(t *testing.T) {
	// qsj1rats (Section 5.1): the three R-atoms form a triad because A no
	// longer dominates R under Definition 16.
	q := cq.MustParse("qsj1rats :- A(x), R(x,y), R(y,z), R(z,x)")
	tr := FindTriad(q)
	if tr == nil {
		t.Fatal("qsj1rats must contain a triad of R-atoms")
	}
	for _, i := range []int{tr.S0, tr.S1, tr.S2} {
		if q.Atoms[i].Rel != "R" {
			t.Errorf("triad atom %d is %s, want R", i, q.Atoms[i].Rel)
		}
	}
}

func TestChainHasNoTriad(t *testing.T) {
	for _, s := range []string{
		"qchain :- R(x,y), R(y,z)",
		"qvc :- R(x), S(x,y), R(y)",
		"q3chain :- R(x,y), R(y,z), R(z,w)",
		"qACconf :- A(x), R(x,y), R(z,y), C(z)",
	} {
		q := cq.MustParse(s)
		if FindTriad(q) != nil {
			t.Errorf("%s: unexpected triad (hard by pattern, not triad)", q.Name)
		}
	}
}

func TestPathAvoiding(t *testing.T) {
	q := cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)")
	h := New(q)
	// R to S avoiding var(T) = {z,x}: direct edge via y works.
	forbidden := h.VarsOf(2)
	if !h.PathAvoiding(0, 1, forbidden) {
		t.Error("R–S path via y should avoid {z,x}")
	}
	// R to S avoiding {y} forces the path through T (via x then z).
	y := q.Var("y")
	if !h.PathAvoiding(0, 1, map[cq.Var]bool{y: true}) {
		t.Error("R–S path through T should exist avoiding y")
	}
	// Avoiding all of R's own variables disconnects it entirely.
	if h.PathAvoiding(0, 1, map[cq.Var]bool{q.Var("x"): true, y: true}) {
		t.Error("no path should exist avoiding both of R's variables")
	}
}

func TestLinearity(t *testing.T) {
	cases := []struct {
		q      string
		linear bool
	}{
		{"qlin :- A(x), R(x,y,z), S(y,z)", true},
		{"qchain :- R(x,y), R(y,z)", true},
		{"q3chain :- R(x,y), R(y,z), R(z,w)", true},
		{"qvc :- R(x), S(x,y), R(y)", true},
		{"qtri :- R(x,y), S(y,z), T(z,x)", false},
		{"qrats :- R(x,y), A(x), T(z,x), S(y,z)", false},
		{"qACconf :- A(x), R(x,y), R(z,y), C(z)", true},
		{"qT :- A(x), B(y), C(z), W(x,y,z)", false},
		// Scrambled order must still be recognized as linear.
		{"scrambled :- S(y,z), A(x), R(x,y)", true},
	}
	for _, c := range cases {
		q := cq.MustParse(c.q)
		if got := IsLinear(q); got != c.linear {
			t.Errorf("%s: IsLinear = %v, want %v", q.Name, got, c.linear)
		}
	}
}

func TestLinearOrderIsValid(t *testing.T) {
	q := cq.MustParse("q :- S(y,z), A(x), R(x,y)")
	order := LinearOrder(q)
	if order == nil {
		t.Fatal("expected a linear order")
	}
	// Verify contiguity explicitly.
	h := New(q)
	for v := cq.Var(0); int(v) < q.NumVars(); v++ {
		first, last := -1, -1
		for pos, atom := range order {
			if h.VarsOf(atom)[v] {
				if first == -1 {
					first = pos
				}
				last = pos
			}
		}
		for pos := first; pos <= last; pos++ {
			if !h.VarsOf(order[pos])[v] {
				t.Fatalf("variable %s not contiguous in order %v", q.VarName(v), order)
			}
		}
	}
}

func TestTheorem25NoTriadMeansPseudoLinear(t *testing.T) {
	// Spot-check the theorem's contrapositive on the paper's hard queries:
	// every triad query is not pseudo-linear, every non-triad query is.
	noTriad := []string{
		"qchain :- R(x,y), R(y,z)",
		"qperm :- R(x,y), R(y,x)",
		"qAperm :- A(x), R(x,y), R(y,x)",
		"z3 :- R(x,x), R(x,y), A(y)",
	}
	for _, s := range noTriad {
		if !IsPseudoLinear(cq.MustParse(s)) {
			t.Errorf("%s should be pseudo-linear", s)
		}
	}
	if IsPseudoLinear(cq.MustParse("qtri :- R(x,y), S(y,z), T(z,x)")) {
		t.Error("triangle must not be pseudo-linear")
	}
}

func TestEndogenousGroups(t *testing.T) {
	// A(x,y) and R(y,x) share a variable set -> same group; B(x) separate.
	q := cq.MustParse("q :- A(x,y), R(y,x), B(x)")
	groups := EndogenousGroups(q)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
	}
	if sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("group sizes = %v, want one pair and one singleton", sizes)
	}
}
