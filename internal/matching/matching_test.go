package matching

import (
	"math/rand"
	"testing"
)

func TestPerfectMatching(t *testing.T) {
	g := NewBipartite(3, 3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	g.AddEdge(2, 2)
	size, mL, _ := g.MaxMatching()
	if size != 3 {
		t.Fatalf("matching = %d, want 3", size)
	}
	for u, v := range mL {
		if v == -1 {
			t.Errorf("left %d unmatched in perfect matching", u)
		}
	}
}

func TestNoEdges(t *testing.T) {
	g := NewBipartite(4, 4)
	size, _, _ := g.MaxMatching()
	if size != 0 {
		t.Errorf("matching = %d, want 0", size)
	}
	_, _, cover := g.MinVertexCover()
	if cover != 0 {
		t.Errorf("cover = %d, want 0", cover)
	}
}

func TestKoenigCoverIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nL := 1 + rng.Intn(7)
		nR := 1 + rng.Intn(7)
		g := NewBipartite(nL, nR)
		type e struct{ l, r int }
		var edges []e
		for i := 0; i < nL*nR/2+1; i++ {
			l, r := rng.Intn(nL), rng.Intn(nR)
			g.AddEdge(l, r)
			edges = append(edges, e{l, r})
		}
		coverL, coverR, size := g.MinVertexCover()
		msize, _, _ := g.MaxMatching()
		if size != msize {
			t.Fatalf("König size %d != matching %d", size, msize)
		}
		n := 0
		for _, c := range coverL {
			if c {
				n++
			}
		}
		for _, c := range coverR {
			if c {
				n++
			}
		}
		if n != size {
			t.Fatalf("cover has %d vertices, reported %d", n, size)
		}
		for _, ed := range edges {
			if !coverL[ed.l] && !coverR[ed.r] {
				t.Fatalf("edge (%d,%d) uncovered", ed.l, ed.r)
			}
		}
	}
}

func TestHopcroftKarpVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		nL := 1 + rng.Intn(6)
		nR := 1 + rng.Intn(6)
		g := NewBipartite(nL, nR)
		adj := make([][]bool, nL)
		for i := range adj {
			adj[i] = make([]bool, nR)
		}
		for i := 0; i < nL*nR/2+1; i++ {
			l, r := rng.Intn(nL), rng.Intn(nR)
			if !adj[l][r] {
				adj[l][r] = true
				g.AddEdge(l, r)
			}
		}
		size, _, _ := g.MaxMatching()
		if want := bruteMatching(adj, nL, nR); size != want {
			t.Fatalf("trial %d: HK=%d brute=%d", trial, size, want)
		}
	}
}

func bruteMatching(adj [][]bool, nL, nR int) int {
	usedR := make([]bool, nR)
	best := 0
	var rec func(l, cur int)
	rec = func(l, cur int) {
		if cur > best {
			best = cur
		}
		if l == nL {
			return
		}
		rec(l+1, cur)
		for r := 0; r < nR; r++ {
			if adj[l][r] && !usedR[r] {
				usedR[r] = true
				rec(l+1, cur+1)
				usedR[r] = false
			}
		}
	}
	rec(0, 0)
	return best
}
