// Package matching implements maximum bipartite matching (Hopcroft-Karp)
// and König's construction of a minimum vertex cover from a maximum
// matching.
//
// Proposition 33 of the paper solves RES(qAperm) by reduction to vertex
// cover in a bipartite graph; this package is that substrate.
package matching

// Bipartite is a bipartite graph with left vertices 0..nLeft-1 and right
// vertices 0..nRight-1.
type Bipartite struct {
	nLeft, nRight int
	adj           [][]int
}

// NewBipartite returns an empty bipartite graph with the given part sizes.
func NewBipartite(nLeft, nRight int) *Bipartite {
	return &Bipartite{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// AddEdge connects left vertex l to right vertex r.
func (g *Bipartite) AddEdge(l, r int) {
	g.adj[l] = append(g.adj[l], r)
}

// MaxMatching computes a maximum matching with Hopcroft-Karp and returns
// its size together with matchL (right partner of each left vertex, -1 if
// unmatched) and matchR.
func (g *Bipartite) MaxMatching() (size int, matchL, matchR []int) {
	const inf = int(^uint(0) >> 1)
	matchL = make([]int, g.nLeft)
	matchR = make([]int, g.nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	dist := make([]int, g.nLeft)

	bfs := func() bool {
		queue := make([]int, 0, g.nLeft)
		for u := 0; u < g.nLeft; u++ {
			if matchL[u] == -1 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				w := matchR[v]
				if w == -1 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range g.adj[u] {
			w := matchR[v]
			if w == -1 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchL[u] = v
				matchR[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := 0; u < g.nLeft; u++ {
			if matchL[u] == -1 && dfs(u) {
				size++
			}
		}
	}
	return size, matchL, matchR
}

// MinVertexCover returns a minimum vertex cover (König's theorem): the
// boolean slices mark covered left and right vertices. Its size equals the
// maximum matching size.
func (g *Bipartite) MinVertexCover() (coverL, coverR []bool, size int) {
	size, matchL, matchR := g.MaxMatching()
	// Alternating BFS from unmatched left vertices.
	visitedL := make([]bool, g.nLeft)
	visitedR := make([]bool, g.nRight)
	var queue []int
	for u := 0; u < g.nLeft; u++ {
		if matchL[u] == -1 {
			visitedL[u] = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if visitedR[v] {
				continue
			}
			visitedR[v] = true
			if w := matchR[v]; w != -1 && !visitedL[w] {
				visitedL[w] = true
				queue = append(queue, w)
			}
		}
	}
	coverL = make([]bool, g.nLeft)
	coverR = make([]bool, g.nRight)
	for u := 0; u < g.nLeft; u++ {
		coverL[u] = !visitedL[u]
	}
	for v := 0; v < g.nRight; v++ {
		coverR[v] = visitedR[v]
	}
	return coverL, coverR, size
}
