// Package ctxpoll throttles context-cancellation checks in solver inner
// loops. The exact branch-and-bound and the SAT search expand millions of
// nodes per second; consulting ctx.Done() at every node would dominate the
// search, so a Poller checks the channel once every Interval calls. This
// is the one copy of that throttle, shared by every cancellable solver.
package ctxpoll

import "context"

// Interval is the number of Cancelled calls between channel polls: large
// enough to keep the check off the profile, small enough that
// cancellation latency stays in the microseconds for real node rates.
const Interval = 256

// Poller is a counter-throttled context poll. The zero value (and a nil
// Poller) never reports cancellation.
type Poller struct {
	ctx   context.Context
	calls int
	err   error
}

// New returns a Poller over ctx.
func New(ctx context.Context) *Poller { return &Poller{ctx: ctx} }

// Cancelled reports whether ctx is done, actually polling only every
// Interval-th call. Once cancelled it stays cancelled.
func (p *Poller) Cancelled() bool {
	if p == nil || p.ctx == nil {
		return false
	}
	if p.err != nil {
		return true
	}
	p.calls++
	if p.calls%Interval != 0 {
		return false
	}
	select {
	case <-p.ctx.Done():
		p.err = p.ctx.Err()
		return true
	default:
		return false
	}
}

// Err returns the cancellation cause, or nil while the search may
// continue.
func (p *Poller) Err() error {
	if p == nil {
		return nil
	}
	return p.err
}
