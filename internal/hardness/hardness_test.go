package hardness

import (
	"errors"
	"testing"

	"repro/internal/cq"
	"repro/internal/resilience"
	"repro/internal/sat"
	"repro/internal/vertexcover"
)

// checkVC exercises a VC-sourced reduction on yes- and no-instances.
func checkVC(t *testing.T, r *Reduction) {
	t.Helper()
	graphs := []*vertexcover.Graph{
		vertexcover.Cycle(5),    // VC = 3
		vertexcover.Star(4),     // VC = 1
		vertexcover.Complete(4), // VC = 3
	}
	for _, g := range graphs {
		vc, _ := g.MinVertexCover()
		for _, k := range []int{vc - 1, vc} {
			if k < 0 {
				continue
			}
			inst, err := r.FromVC(g, k)
			if err != nil {
				t.Fatalf("%s: %v", r.Target.Name, err)
			}
			got, err := resilience.Decide(r.Target, inst.DB, inst.K)
			if err != nil {
				t.Fatalf("%s: %v", r.Target.Name, err)
			}
			want := k >= vc
			if got != want {
				t.Errorf("%s (|V|=%d |E|=%d k=%d): (D,%d)∈RES = %v, want %v",
					r.Target.Name, g.N, g.NumEdges(), k, inst.K, got, want)
			}
		}
	}
}

// check3SAT exercises a 3SAT-sourced reduction on sat and unsat formulas.
func check3SAT(t *testing.T, r *Reduction) {
	t.Helper()
	formulas := []*sat.Formula{
		{NumVars: 3, Clauses: []sat.Clause{{1, -2, 3}}},
		{NumVars: 1, Clauses: []sat.Clause{{1, 1, 1}, {-1, -1, -1}}}, // unsat
	}
	for _, psi := range formulas {
		inst, err := r.From3SAT(psi)
		if err != nil {
			t.Fatalf("%s: %v", r.Target.Name, err)
		}
		got, err := resilience.Decide(r.Target, inst.DB, inst.K)
		if err != nil {
			t.Fatalf("%s: %v", r.Target.Name, err)
		}
		if want := psi.Satisfiable(); got != want {
			t.Errorf("%s: sat=%v but (D,%d)∈RES = %v", r.Target.Name, want, inst.K, got)
		}
	}
}

// TestBuildCoversTheHardSide walks NP-complete queries across every
// classifier rule the package dispatches on and verifies the materialized
// reduction instance-by-instance against the exact solver.
func TestBuildCoversTheHardSide(t *testing.T) {
	cases := []struct {
		text     string
		wantRule string // prefix of the classifier rule
		source   Source
	}{
		{"qvc :- R(x), S(x,y), R(y)", "Theorem 27", SourceVC},
		{"z1 :- R(x,x), S(x,y), R(y,y)", "Theorem 28", SourceVC},
		{"qchain :- R(x,y), R(y,z)", "Proposition 30", Source3SAT},
		{"qachain :- A(x), R(x,y), R(y,z)", "Proposition 30", Source3SAT},
		{"qabcchain :- A(x), R(x,y), B(y), R(y,z), C(z)", "Proposition 30", Source3SAT},
		{"qsat :- A(x), R(x,y), R(y,z), S(z,u)", "Proposition 30", Source3SAT},
		{"qABperm :- A(x), R(x,y), R(y,x), B(y)", "Proposition 35", Source3SAT},
		{"qABext :- A(x), S(u,x), R(x,y), R(y,x), B(y)", "Proposition 35", Source3SAT},
		{"qtriangle :- R(x,y), S(y,z), T(z,x)", "Theorem 24", SourceVC},
		{"q3chain :- R(x,y), R(y,z), R(z,w)", "Proposition 38", SourceVC},
		{"z4 :- R(x,x), R(x,y), S(x,y), R(y,y)", "", SourceVC},
		{"cfp :- R(x,y), H(x,z)^x, R(z,y)", "Proposition 32", SourceVC},
	}
	for _, c := range cases {
		q := cq.MustParse(c.text)
		r, err := Build(q)
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		if c.wantRule != "" && !hasPrefix(r.Rule, c.wantRule) {
			t.Errorf("%s: rule %q, want prefix %q", q.Name, r.Rule, c.wantRule)
		}
		if r.Source != c.source {
			t.Errorf("%s: source %v, want %v", q.Name, r.Source, c.source)
		}
		switch r.Source {
		case SourceVC:
			checkVC(t, r)
		case Source3SAT:
			check3SAT(t, r)
		}
	}
}

// TestBuildRejectsEasyAndOpenQueries: the package only serves the
// NP-complete side.
func TestBuildRejectsEasyAndOpenQueries(t *testing.T) {
	for _, text := range []string{
		"qperm :- R(x,y), R(y,x)",                                // PTIME
		"qrats :- R(x,y), A(x), T(z,x), S(y,z)",                  // PTIME
		"z7 :- A(x), R(x,y), R(y,x), R(y,y)",                     // open
		"qS3cc :- R(x,y), R(y,z), R(w,z), S(w,z)",                // open
		"qTS3conf :- T(x,y)^x, R(x,y), R(z,y), R(z,w), S(z,w)^x", // PTIME
	} {
		q := cq.MustParse(text)
		if _, err := Build(q); !errors.Is(err, ErrNoReduction) {
			t.Errorf("%s: err = %v, want ErrNoReduction", q.Name, err)
		}
	}
}

// TestBuildReportsMissingGadgets: NP-complete queries whose only known
// proofs (Figure 15 Max 2SAT) are not materialized, and whose IJP hunt
// comes back empty within bounds, must fail loudly rather than silently.
func TestBuildReportsMissingGadgets(t *testing.T) {
	q := cq.MustParse("z5 :- A(x), R(x,y), R(y,z), R(z,z)")
	_, err := Build(q)
	if !errors.Is(err, ErrNoReduction) {
		t.Fatalf("err = %v, want ErrNoReduction (Prop 47 Max 2SAT gadget not materialized, IJP space exhausted at k≤3)", err)
	}
}

// TestBuildUsesPinnedQAC3confGadget: the deep-search discovery replaces
// the untranscribable Figure 15 construction. The pinned database is
// re-verified (Def. 48 + chained or-property) and the resulting reduction
// must decide Vertex Cover through RES(qAC3conf).
func TestBuildUsesPinnedQAC3confGadget(t *testing.T) {
	q := cq.MustParse("qAC3conf :- A(x), R(x,y), R(z,y), R(z,w), C(w)")
	r, err := Build(q)
	if err != nil {
		t.Fatalf("pinned gadget not served: %v", err)
	}
	if r.Source != SourceVC {
		t.Fatalf("source = %v, want VC", r.Source)
	}
	g := vertexcover.Path(4)
	vc, _ := g.MinVertexCover()
	for _, k := range []int{vc - 1, vc} {
		inst, err := r.FromVC(g, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := resilience.Decide(r.Target, inst.DB, inst.K)
		if err != nil {
			t.Fatal(err)
		}
		if want := k >= vc; got != want {
			t.Errorf("k=%d: decision %v, want %v", k, got, want)
		}
	}
}

// TestPinnedGadgetIgnoredForForeignQueries: a pinned database must never
// be served to a query it does not verify against.
func TestPinnedGadgetIgnoredForForeignQueries(t *testing.T) {
	// Same shape as qAC3conf but a renamed self-join relation: the pinned
	// DB's R tuples do not match, so verification fails and the live
	// search (which also finds nothing at k≤2 for this 4-variable shape)
	// reports no reduction.
	q := cq.MustParse("q :- A(x), P(x,y), P(z,y), P(z,w), C(w)")
	if _, err := Build(q); !errors.Is(err, ErrNoReduction) {
		t.Fatalf("err = %v, want ErrNoReduction for renamed relations", err)
	}
}

// TestWrongSourceRejected: asking a VC reduction for a 3SAT instance (and
// vice versa) errors instead of producing garbage.
func TestWrongSourceRejected(t *testing.T) {
	r, err := Build(cq.MustParse("qvc :- R(x), S(x,y), R(y)"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.From3SAT(&sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1}}}); err == nil {
		t.Error("VC reduction accepted a 3SAT instance")
	}
	r2, err := Build(cq.MustParse("qchain :- R(x,y), R(y,z)"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.FromVC(vertexcover.Cycle(3), 1); err == nil {
		t.Error("3SAT reduction accepted a VC instance")
	}
}
