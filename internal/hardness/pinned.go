package hardness

import (
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/ijp"
)

// Pinned gadgets: chainable IJPs discovered by offline deep searches whose
// online rediscovery would be too slow for a library call. Each entry is
// re-verified from scratch before use (Definition 48 check + chained
// or-property on the calibration battery), so a pinned database can never
// silently serve a query it does not fit — if the caller's query uses
// different relation names or a different shape, verification fails and
// Build falls back to the live search.
//
// The qAC3conf entry is the repository's flagship search result: the
// paper's only published hardness proof for qAC3conf is the Figure 15
// Max 2SAT crossover construction, which is not reconstructible from the
// text. The k=3 quotient search (Bell(12) ≈ 4.2M candidate databases;
// this certificate appeared after 1,838,880 of them, ~26 minutes) found a
// 13-tuple database whose chained Figure 8 reduction validates with β = 5
// — an automated replacement for the lost gadget.
var pinnedGadgets = []struct {
	name  string
	build func() *db.Database
}{
	{
		name: "qAC3conf (k=3 deep search)",
		build: func() *db.Database {
			d := db.New()
			for _, u := range []string{"p0", "p4"} {
				d.AddNames("A", u)
				d.AddNames("C", u)
			}
			for _, e := range [][2]string{
				{"p0", "p1"}, {"p0", "p2"}, {"p1", "p3"}, {"p1", "p4"}, {"p2", "p0"},
				{"p2", "p1"}, {"p3", "p2"}, {"p3", "p4"}, {"p4", "p3"},
			} {
				d.AddNames("R", e[0], e[1])
			}
			return d
		},
	},
}

// pinnedChainable re-verifies each pinned database against q and returns
// the first that passes both Definition 48 and the chained or-property.
func pinnedChainable(q *cq.Query) *ijp.ChainableCertificate {
	for _, p := range pinnedGadgets {
		cert := ijp.Check(q, p.build())
		if cert == nil {
			continue
		}
		for _, copies := range []int{3, 5} {
			if beta, err := ijp.VerifyOrProperty(q, cert, copies, ijp.CalibrationGraphs()); err == nil {
				return &ijp.ChainableCertificate{Certificate: cert, Beta: beta, Copies: copies}
			}
		}
	}
	return nil
}
