// Package hardness makes the NP-complete side of the dichotomy executable:
// for a query the classifier proves hard, Build returns a working,
// instance-level reduction from Vertex Cover or 3SAT to RES(q).
//
// The PTIME side of Theorem 37 ships algorithms (internal/resilience);
// this package is its mirror image. Reductions are selected by the
// classifier's certificate:
//
//   - Theorems 27/28 (paths)            → the generic path reduction
//     (reduction.NewPathVC), sourced from Vertex Cover;
//   - Proposition 30 (2-chains)         → the Proposition 10 / Lemmas
//     52-54 gadget for the matching unary expansion, embedded into q
//     (reduction.NewChain3SAT + reduction.Embed), sourced from 3SAT;
//   - Proposition 35 (bound permutation) → the Proposition 34 gadget
//     embedded through the isLike-x/isLike-y map (reduction.NewPermAB3SAT
//   - reduction.Embed), sourced from 3SAT;
//   - everything else (triads, confluences with exogenous paths, the
//     Section 8 catalog) → the Section 9 machinery: hunt for an IJP whose
//     chained Figure 8 reduction validates empirically
//     (ijp.SearchChainable), sourced from Vertex Cover.
//
// Every reduction is verified in the tests: yes-instances of the source
// problem land inside RES(q, ·, k) and no-instances outside, as judged by
// the exact solver.
package hardness

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/ijp"
	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/vertexcover"
)

// Source identifies the NP-hard problem a reduction starts from.
type Source int

const (
	// SourceVC reduces from Vertex Cover: (G, k) ∈ VC ⇔ (D, K(k)) ∈ RES(q).
	SourceVC Source = iota
	// Source3SAT reduces from 3SAT: ψ ∈ 3SAT ⇔ (D, K) ∈ RES(q).
	Source3SAT
)

func (s Source) String() string {
	if s == Source3SAT {
		return "3SAT"
	}
	return "VertexCover"
}

// ErrNoReduction is returned when no executable reduction is available:
// the query is not NP-complete per the classifier, or it falls in a
// fragment whose gadgets this repository has not materialized (e.g. the
// Figure 15 Max 2SAT constructions) and the automated IJP hunt comes back
// empty within its search bounds.
var ErrNoReduction = errors.New("hardness: no executable reduction available")

// Instance is one materialized RES(q) membership instance.
type Instance struct {
	// DB is the reduction's database.
	DB *db.Database
	// K is the budget: (DB, K) ∈ RES(q) iff the source was a yes-instance.
	K int
}

// Reduction is an executable hardness reduction for a fixed target query.
type Reduction struct {
	// Target is the (normalized) query the reduction is for.
	Target *cq.Query
	// Rule cites the classifier rule that selected this reduction.
	Rule string
	// Source is the NP-hard problem instances are drawn from.
	Source Source
	// Gadget describes the construction in one line.
	Gadget string

	fromVC   func(g *vertexcover.Graph, k int) (*Instance, error)
	from3SAT func(psi *sat.Formula) (*Instance, error)
}

// FromVC instantiates the reduction on a Vertex Cover question
// "does G have a vertex cover of size ≤ k?".
func (r *Reduction) FromVC(g *vertexcover.Graph, k int) (*Instance, error) {
	if r.fromVC == nil {
		return nil, fmt.Errorf("hardness: %s reduction for %s does not take VC instances", r.Source, r.Target.Name)
	}
	return r.fromVC(g, k)
}

// From3SAT instantiates the reduction on a 3SAT formula.
func (r *Reduction) From3SAT(psi *sat.Formula) (*Instance, error) {
	if r.from3SAT == nil {
		return nil, fmt.Errorf("hardness: %s reduction for %s does not take 3SAT instances", r.Source, r.Target.Name)
	}
	return r.from3SAT(psi)
}

// searchBounds for the IJP fallback: three canonical witnesses, at most
// nine constants (Bell(9) = 21147 partitions, the space containing the
// paper's own Example 59 triangle IJP). Queries with more variables only
// reach k = 2 within the constant cap.
const (
	fallbackJoins  = 3
	fallbackConsts = 9
)

// Build selects an executable hardness reduction for q. It classifies q
// first and fails with ErrNoReduction unless the verdict is NP-complete.
func Build(q *cq.Query) (*Reduction, error) {
	cl := core.Classify(q)
	if cl.Verdict != core.NPComplete {
		return nil, fmt.Errorf("%w: %s is %s (%s)", ErrNoReduction, q.Name, cl.Verdict, cl.Rule)
	}
	n := cl.Normalized
	if n == nil {
		n = q
	}
	rule := cl.Rule

	switch {
	case hasPrefix(rule, "Theorem 27") || hasPrefix(rule, "Theorem 28"):
		return pathReduction(n, rule)
	case hasPrefix(rule, "Proposition 30"):
		return chainReduction(n, rule)
	case hasPrefix(rule, "Proposition 32"):
		return confluenceReduction(n, rule)
	case hasPrefix(rule, "Proposition 35"):
		return permReduction(n, rule)
	}
	return ijpReduction(n, rule)
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

func pathReduction(n *cq.Query, rule string) (*Reduction, error) {
	r := &Reduction{Target: n, Rule: rule, Source: SourceVC,
		Gadget: "generic path reduction (endpoint classes + 3-way replication)"}
	r.fromVC = func(g *vertexcover.Graph, k int) (*Instance, error) {
		red, err := reduction.NewPathVC(n, g)
		if err != nil {
			return nil, err
		}
		return &Instance{DB: red.DB, K: k}, nil
	}
	return r, nil
}

// chainEnds locates the 2-chain R(x,y), R(y,z) in n and returns the chain
// variables in order.
func chainEnds(n *cq.Query) (x, y, z cq.Var, rel string, err error) {
	rels := n.SelfJoinRelations()
	if len(rels) != 1 {
		return 0, 0, 0, "", fmt.Errorf("hardness: want one self-join relation, got %v", rels)
	}
	rel = rels[0]
	atoms := n.AtomsOf(rel)
	if len(atoms) != 2 || n.Arity(rel) != 2 {
		return 0, 0, 0, "", fmt.Errorf("hardness: %s is not a binary 2-chain", rel)
	}
	a, b := n.Atoms[atoms[0]], n.Atoms[atoms[1]]
	switch {
	case a.Args[1] == b.Args[0] && a.Args[0] != b.Args[1]:
		return a.Args[0], a.Args[1], b.Args[1], rel, nil
	case b.Args[1] == a.Args[0] && b.Args[0] != a.Args[1]:
		return b.Args[0], b.Args[1], a.Args[1], rel, nil
	}
	return 0, 0, 0, "", fmt.Errorf("hardness: %s-atoms do not form a chain", rel)
}

func chainReduction(n *cq.Query, rule string) (*Reduction, error) {
	x, y, z, rel, err := chainEnds(n)
	if err != nil {
		return nil, err
	}
	// The gadget layout must match the endogenous unary atoms sitting on
	// the chain variables (Lemmas 52-54); satellite atoms elsewhere are
	// handled by the embedding's private constants.
	var unary []string
	sourceText := ""
	add := func(v cq.Var, srcName, srcAtom string) {
		for _, a := range n.Atoms {
			if len(a.Args) == 1 && a.Args[0] == v && !n.IsExogenous(a.Rel) && a.Rel != rel {
				unary = append(unary, srcName)
				sourceText += srcAtom
				return
			}
		}
	}
	add(x, "A", "A(x), ")
	sourceText += "R(x,y), "
	add(y, "B", "B(y), ")
	sourceText += "R(y,z)"
	add(z, "C", ", C(z)")
	qsrc := cq.MustParse("qsrc :- " + sourceText)

	varMap := map[string]string{n.VarName(x): "x", n.VarName(y): "y", n.VarName(z): "z"}
	r := &Reduction{Target: n, Rule: rule, Source: Source3SAT,
		Gadget: fmt.Sprintf("Prop 10 / Lemmas 52-54 gadget (unary %v) embedded via Prop 30", unary)}
	r.from3SAT = func(psi *sat.Formula) (*Instance, error) {
		gad := reduction.NewChain3SAT(psi, unary...)
		dd, err := reduction.Embed(qsrc, n, varMap, gad.DB)
		if err != nil {
			return nil, err
		}
		return &Instance{DB: dd, K: gad.K}, nil
	}
	return r, nil
}

func confluenceReduction(n *cq.Query, rule string) (*Reduction, error) {
	r := &Reduction{Target: n, Rule: rule, Source: SourceVC,
		Gadget: "Prop 32 reduction (shared y constant; exogenous path as the edge relation)"}
	r.fromVC = func(g *vertexcover.Graph, k int) (*Instance, error) {
		red, err := reduction.NewConfluenceVC(n, g)
		if err != nil {
			return nil, err
		}
		return &Instance{DB: red.DB, K: k}, nil
	}
	return r, nil
}

func permReduction(n *cq.Query, rule string) (*Reduction, error) {
	varMap, err := reduction.PermVarMap(n, "x", "y")
	if err != nil {
		return nil, err
	}
	qsrc := cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)")
	r := &Reduction{Target: n, Rule: rule, Source: Source3SAT,
		Gadget: "Prop 34 gadget embedded via the Prop 35 isLike map"}
	r.from3SAT = func(psi *sat.Formula) (*Instance, error) {
		gad := reduction.NewPermAB3SAT(psi)
		dd, err := reduction.Embed(qsrc, n, varMap, gad.DB)
		if err != nil {
			return nil, err
		}
		return &Instance{DB: dd, K: gad.K}, nil
	}
	return r, nil
}

func ijpReduction(n *cq.Query, rule string) (*Reduction, error) {
	cert := pinnedChainable(n)
	if cert == nil {
		cert, _, _ = ijp.SearchChainable(n, fallbackJoins, fallbackConsts)
	}
	if cert == nil {
		return nil, fmt.Errorf("%w: %s (%s) has no chainable IJP within the k ≤ %d search bounds",
			ErrNoReduction, n.Name, rule, fallbackJoins)
	}
	r := &Reduction{Target: n, Rule: rule, Source: SourceVC,
		Gadget: fmt.Sprintf("auto-discovered IJP chained per Figure 8 (β=%d, chain length %d)", cert.Beta, cert.Copies)}
	r.fromVC = func(g *vertexcover.Graph, k int) (*Instance, error) {
		red, err := ijp.BuildVCReduction(n, cert.Certificate, g, cert.Copies)
		if err != nil {
			return nil, err
		}
		return &Instance{DB: red.DB, K: k + cert.Beta*g.NumEdges()}, nil
	}
	return r, nil
}
