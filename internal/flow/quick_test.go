package flow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomNet is a quick.Generator for small capacity graphs.
type randomNet struct {
	N     int
	Edges []struct {
		U, V uint8
		C    uint8
	}
}

func (randomNet) Generate(r *rand.Rand, size int) reflect.Value {
	var n randomNet
	n.N = 2 + r.Intn(6)
	m := 1 + r.Intn(12)
	for i := 0; i < m; i++ {
		n.Edges = append(n.Edges, struct {
			U, V uint8
			C    uint8
		}{uint8(r.Intn(n.N)), uint8(r.Intn(n.N)), uint8(1 + r.Intn(6))})
	}
	return reflect.ValueOf(n)
}

func (n randomNet) build() *Network {
	net := NewNetwork()
	net.AddNodes(n.N)
	for _, e := range n.Edges {
		if e.U != e.V {
			net.AddEdge(int(e.U), int(e.V), int64(e.C))
		}
	}
	return net
}

// TestQuickMaxFlowMinCutDuality: the reachable-set cut after MaxFlow has
// capacity exactly equal to the flow value (strong duality), and every cut
// edge is saturated.
func TestQuickMaxFlowMinCutDuality(t *testing.T) {
	prop := func(rn randomNet) bool {
		net := rn.build()
		f := net.MaxFlow(0, rn.N-1)
		reach := net.MinCutSource(0)
		if reach[rn.N-1] && f > 0 {
			return false // sink reachable => not a cut
		}
		var capSum int64
		for _, id := range net.CutEdges(reach) {
			capSum += net.EdgeCap(id)
			if net.EdgeFlow(id) != net.EdgeCap(id) {
				return false // cut edges must be saturated
			}
		}
		return capSum == f
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickFlowMonotoneInCapacity: raising one edge's capacity never
// lowers the max flow.
func TestQuickFlowMonotoneInCapacity(t *testing.T) {
	prop := func(rn randomNet, extra uint8) bool {
		if len(rn.Edges) == 0 {
			return true
		}
		f1 := rn.build().MaxFlow(0, rn.N-1)
		rn.Edges[0].C += extra % 8
		f2 := rn.build().MaxFlow(0, rn.N-1)
		return f2 >= f1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
