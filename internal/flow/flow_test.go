package flow

import (
	"math/rand"
	"testing"
)

func TestMaxFlowTiny(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	a := n.AddNode()
	b := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, a, 3)
	n.AddEdge(s, b, 2)
	n.AddEdge(a, b, 1)
	n.AddEdge(a, tt, 2)
	n.AddEdge(b, tt, 3)
	if got := n.MaxFlow(s, tt); got != 5 {
		t.Errorf("max flow = %d, want 5", got)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// CLRS figure: max flow 23.
	n := NewNetwork()
	ids := make([]int, 6)
	for i := range ids {
		ids[i] = n.AddNode()
	}
	s, v1, v2, v3, v4, tt := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]
	n.AddEdge(s, v1, 16)
	n.AddEdge(s, v2, 13)
	n.AddEdge(v1, v3, 12)
	n.AddEdge(v2, v1, 4)
	n.AddEdge(v2, v4, 14)
	n.AddEdge(v3, v2, 9)
	n.AddEdge(v3, tt, 20)
	n.AddEdge(v4, v3, 7)
	n.AddEdge(v4, tt, 4)
	if got := n.MaxFlow(s, tt); got != 23 {
		t.Errorf("max flow = %d, want 23", got)
	}
}

func TestMinCutMatchesFlow(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	a := n.AddNode()
	b := n.AddNode()
	tt := n.AddNode()
	e1 := n.AddEdge(s, a, 1)
	e2 := n.AddEdge(s, b, 1)
	n.AddEdge(a, tt, 5)
	n.AddEdge(b, tt, 5)
	f := n.MaxFlow(s, tt)
	reach := n.MinCutSource(s)
	cut := n.CutEdges(reach)
	var cutCap int64
	for _, id := range cut {
		cutCap += n.EdgeCap(id)
	}
	if cutCap != f {
		t.Errorf("cut capacity %d != flow %d", cutCap, f)
	}
	want := map[int]bool{e1: true, e2: true}
	for _, id := range cut {
		if !want[id] {
			t.Errorf("unexpected cut edge %d", id)
		}
	}
}

func TestInfEdgesNeverCut(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	a := n.AddNode()
	b := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, a, Inf)
	mid := n.AddEdge(a, b, 1)
	n.AddEdge(b, tt, Inf)
	if got := n.MaxFlow(s, tt); got != 1 {
		t.Fatalf("max flow = %d, want 1", got)
	}
	cut := n.CutEdges(n.MinCutSource(s))
	if len(cut) != 1 || cut[0] != mid {
		t.Errorf("cut = %v, want just the unit edge %d", cut, mid)
	}
}

func TestDisconnected(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	tt := n.AddNode()
	if got := n.MaxFlow(s, tt); got != 0 {
		t.Errorf("flow in disconnected graph = %d, want 0", got)
	}
}

func TestResetReuse(t *testing.T) {
	n := NewNetwork()
	s := n.AddNode()
	tt := n.AddNode()
	n.AddEdge(s, tt, 7)
	if n.MaxFlow(s, tt) != 7 {
		t.Fatal("first run wrong")
	}
	n.Reset()
	if got := n.MaxFlow(s, tt); got != 7 {
		t.Errorf("after Reset, flow = %d, want 7", got)
	}
}

// TestRandomAgainstBruteForce cross-checks Dinic against a slow
// Ford-Fulkerson on random small graphs.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nodes := 2 + rng.Intn(6)
		var es []testEdge
		for i := 0; i < nodes*2; i++ {
			u, v := rng.Intn(nodes), rng.Intn(nodes)
			if u == v {
				continue
			}
			es = append(es, testEdge{u, v, int64(1 + rng.Intn(5))})
		}
		n := NewNetwork()
		n.AddNodes(nodes)
		for _, e := range es {
			n.AddEdge(e.u, e.v, e.c)
		}
		got := n.MaxFlow(0, nodes-1)
		want := slowMaxFlow(nodes, es, 0, nodes-1)
		if got != want {
			t.Fatalf("trial %d: dinic=%d brute=%d (nodes=%d edges=%v)", trial, got, want, nodes, es)
		}
	}
}

type testEdge struct {
	u, v int
	c    int64
}

func slowMaxFlow(n int, es []testEdge, s, t int) int64 {
	cap := make([][]int64, n)
	for i := range cap {
		cap[i] = make([]int64, n)
	}
	for _, e := range es {
		cap[e.u][e.v] += e.c
	}
	var total int64
	for {
		// BFS augmenting path.
		prev := make([]int, n)
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = s
		q := []int{s}
		for len(q) > 0 && prev[t] == -1 {
			u := q[0]
			q = q[1:]
			for v := 0; v < n; v++ {
				if cap[u][v] > 0 && prev[v] == -1 {
					prev[v] = u
					q = append(q, v)
				}
			}
		}
		if prev[t] == -1 {
			return total
		}
		aug := int64(1 << 60)
		for v := t; v != s; v = prev[v] {
			if cap[prev[v]][v] < aug {
				aug = cap[prev[v]][v]
			}
		}
		for v := t; v != s; v = prev[v] {
			cap[prev[v]][v] -= aug
			cap[v][prev[v]] += aug
		}
		total += aug
	}
}

func BenchmarkDinicGrid(b *testing.B) {
	// 30x30 grid, unit capacities.
	const k = 30
	build := func() (*Network, int, int) {
		n := NewNetwork()
		n.AddNodes(k*k + 2)
		s, t := k*k, k*k+1
		id := func(r, c int) int { return r*k + c }
		for r := 0; r < k; r++ {
			n.AddEdge(s, id(r, 0), 1)
			n.AddEdge(id(r, k-1), t, 1)
			for c := 0; c+1 < k; c++ {
				n.AddEdge(id(r, c), id(r, c+1), 1)
			}
		}
		for r := 0; r+1 < k; r++ {
			for c := 0; c < k; c++ {
				n.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
		return n, s, t
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, s, t := build()
		if n.MaxFlow(s, t) != k {
			b.Fatal("wrong flow")
		}
	}
}
