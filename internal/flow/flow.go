// Package flow implements maximum flow / minimum cut on directed graphs
// with integer capacities, using Dinic's algorithm.
//
// It is the algorithmic substrate behind every PTIME resilience solver in
// the paper: linear queries reduce to min-cut ([31], Section 2.4), and the
// trickier self-join cases (Propositions 12, 13, 31, 41, 44) use modified
// constructions on top of the same solver.
package flow

import "math"

// Inf is the capacity used for edges that must never be cut (exogenous
// tuples, structural edges). It is large enough that no realistic sum of
// unit capacities reaches it, yet far from overflow when a handful of Inf
// edges are summed.
const Inf int64 = math.MaxInt64 / 8

// Network is a flow network under construction. Nodes are dense ints
// created by AddNode; edges carry integer capacities.
type Network struct {
	// head[v] is the index of the first edge out of v in the adjacency
	// lists, -1 if none.
	adj   [][]int32
	edges []edge
}

type edge struct {
	to   int32
	cap  int64
	flow int64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{} }

// AddNode creates a new node and returns its id.
func (n *Network) AddNode() int {
	n.adj = append(n.adj, nil)
	return len(n.adj) - 1
}

// AddNodes creates k nodes and returns the id of the first.
func (n *Network) AddNodes(k int) int {
	first := len(n.adj)
	for i := 0; i < k; i++ {
		n.adj = append(n.adj, nil)
	}
	return first
}

// NumNodes returns the number of nodes.
func (n *Network) NumNodes() int { return len(n.adj) }

// AddEdge adds a directed edge u->v with the given capacity and returns its
// edge id, which can later be inspected with EdgeFlow / EdgeSaturated or
// used in min-cut extraction.
func (n *Network) AddEdge(u, v int, capacity int64) int {
	id := len(n.edges)
	n.edges = append(n.edges, edge{to: int32(v), cap: capacity})
	n.edges = append(n.edges, edge{to: int32(u), cap: 0}) // residual
	n.adj[u] = append(n.adj[u], int32(id))
	n.adj[v] = append(n.adj[v], int32(id+1))
	return id
}

// EdgeFlow returns the flow currently routed through edge id.
func (n *Network) EdgeFlow(id int) int64 { return n.edges[id].flow }

// EdgeCap returns the capacity of edge id.
func (n *Network) EdgeCap(id int) int64 { return n.edges[id].cap }

// Reset zeroes all flow so the network can be reused.
func (n *Network) Reset() {
	for i := range n.edges {
		n.edges[i].flow = 0
	}
}

// MaxFlow computes the maximum s-t flow with Dinic's algorithm. The result
// saturates edges in place; call MinCutSource afterwards for the cut.
func (n *Network) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	level := make([]int32, len(n.adj))
	iter := make([]int32, len(n.adj))
	queue := make([]int32, 0, len(n.adj))

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, id := range n.adj[v] {
				e := &n.edges[id]
				if e.cap-e.flow > 0 && level[e.to] < 0 {
					level[e.to] = level[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(v int32, f int64) int64
	dfs = func(v int32, f int64) int64 {
		if v == int32(t) {
			return f
		}
		for ; iter[v] < int32(len(n.adj[v])); iter[v]++ {
			id := n.adj[v][iter[v]]
			e := &n.edges[id]
			if e.cap-e.flow <= 0 || level[e.to] != level[v]+1 {
				continue
			}
			d := dfs(e.to, min64(f, e.cap-e.flow))
			if d > 0 {
				e.flow += d
				n.edges[id^1].flow -= d
				return d
			}
		}
		return 0
	}

	var total int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(int32(s), Inf)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

// MinCutSource returns the set of nodes reachable from s in the residual
// graph after MaxFlow. An original edge u->v is in the minimum cut iff
// reachable[u] && !reachable[v].
func (n *Network) MinCutSource(s int) []bool {
	reach := make([]bool, len(n.adj))
	reach[s] = true
	stack := []int32{int32(s)}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range n.adj[v] {
			e := &n.edges[id]
			if e.cap-e.flow > 0 && !reach[e.to] {
				reach[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return reach
}

// CutEdges returns the ids of original edges crossing the minimum cut
// identified by reach (from MinCutSource).
func (n *Network) CutEdges(reach []bool) []int {
	var out []int
	for id := 0; id < len(n.edges); id += 2 {
		e := n.edges[id]
		from := n.edges[id^1].to
		if reach[from] && !reach[e.to] && e.cap > 0 {
			out = append(out, id)
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
