package bgraph

import (
	"strings"
	"testing"

	"repro/internal/cq"
)

func TestChainVsConfluenceDistinguished(t *testing.T) {
	// Figure 2's point: hypergraphs conflate these, binary graphs do not.
	chain, err := New(cq.MustParse("qchain :- R(x,y), R(y,z)"))
	if err != nil {
		t.Fatal(err)
	}
	conf, err := New(cq.MustParse("qconf :- R(x,y), R(z,y)"))
	if err != nil {
		t.Fatal(err)
	}
	y := chain.Q.Var("y")
	if chain.InDegree(y) != 1 || chain.OutDegree(y) != 1 {
		t.Errorf("chain y: in=%d out=%d, want 1/1", chain.InDegree(y), chain.OutDegree(y))
	}
	yc := conf.Q.Var("y")
	if conf.InDegree(yc) != 2 || conf.OutDegree(yc) != 0 {
		t.Errorf("confluence y: in=%d out=%d, want 2/0", conf.InDegree(yc), conf.OutDegree(yc))
	}
}

func TestUnaryLoops(t *testing.T) {
	g, err := New(cq.MustParse("qvc :- R(x), S(x,y), R(y)"))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.LabelsAt(g.Q.Var("x")); len(got) != 1 || got[0] != "R" {
		t.Errorf("loops at x = %v, want [R]", got)
	}
	if g.OutDegree(g.Q.Var("x")) != 1 {
		t.Errorf("out degree of x should count only S")
	}
}

func TestNonBinaryRejected(t *testing.T) {
	if _, err := New(cq.MustParse("qT :- A(x), B(y), C(z), W(x,y,z)")); err == nil {
		t.Error("ternary query must be rejected")
	}
}

func TestDOTOutput(t *testing.T) {
	g, err := New(cq.MustParse("qTSpart :- T(x,y)^x, R(x,y)"))
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", `"x" -> "y"`, "style=dashed", `T^x`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestASCII(t *testing.T) {
	g, _ := New(cq.MustParse("z3 :- R(x,x), R(x,y), A(y)"))
	s := g.ASCII()
	for _, want := range []string{"x -R-> x", "x -R-> y", "A@y"} {
		if !strings.Contains(s, want) {
			t.Errorf("ASCII %q missing %q", s, want)
		}
	}
}
