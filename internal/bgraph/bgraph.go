// Package bgraph implements the binary graph of a binary conjunctive query
// (Definition 8): vertices are the query's variables and every binary atom
// A(x,y) becomes a labeled directed edge x -> y, while unary atoms become
// labeled loops.
//
// The binary graph captures the positional information that the dual
// hypergraph loses (Section 3, Figure 2) — e.g. it distinguishes the chain
// R(x,y),R(y,z) from the confluence R(x,y),R(z,y). The package also renders
// Graphviz DOT, which regenerates the diagrams of Figures 2 and 5.
package bgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cq"
)

// Edge is one labeled edge of the binary graph.
type Edge struct {
	From, To  cq.Var
	Label     string // relation name
	Exogenous bool
	Loop      bool // unary atom
}

// Graph is the binary graph of a binary CQ.
type Graph struct {
	Q     *cq.Query
	Edges []Edge
}

// New builds the binary graph of q; it returns an error if q is not a
// binary query.
func New(q *cq.Query) (*Graph, error) {
	if !q.IsBinary() {
		return nil, fmt.Errorf("bgraph: %s is not a binary query", q.Name)
	}
	g := &Graph{Q: q}
	for _, a := range q.Atoms {
		switch len(a.Args) {
		case 1:
			g.Edges = append(g.Edges, Edge{
				From: a.Args[0], To: a.Args[0], Label: a.Rel,
				Exogenous: q.IsExogenous(a.Rel), Loop: true,
			})
		case 2:
			g.Edges = append(g.Edges, Edge{
				From: a.Args[0], To: a.Args[1], Label: a.Rel,
				Exogenous: q.IsExogenous(a.Rel),
			})
		}
	}
	return g, nil
}

// OutDegree returns the number of non-loop edges leaving v.
func (g *Graph) OutDegree(v cq.Var) int {
	n := 0
	for _, e := range g.Edges {
		if !e.Loop && e.From == v {
			n++
		}
	}
	return n
}

// InDegree returns the number of non-loop edges entering v.
func (g *Graph) InDegree(v cq.Var) int {
	n := 0
	for _, e := range g.Edges {
		if !e.Loop && e.To == v {
			n++
		}
	}
	return n
}

// LabelsAt returns the sorted labels of loops attached to v.
func (g *Graph) LabelsAt(v cq.Var) []string {
	var out []string
	for _, e := range g.Edges {
		if e.Loop && e.From == v {
			out = append(out, e.Label)
		}
	}
	sort.Strings(out)
	return out
}

// DOT renders the graph in Graphviz syntax. Exogenous edges are dashed,
// matching the paper's visual convention for context relations.
func (g *Graph) DOT() string {
	var b strings.Builder
	name := g.Q.Name
	if name == "" {
		name = "q"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	for v := cq.Var(0); int(v) < g.Q.NumVars(); v++ {
		fmt.Fprintf(&b, "  %q [shape=circle];\n", g.Q.VarName(v))
	}
	for _, e := range g.Edges {
		style := ""
		if e.Exogenous {
			style = ", style=dashed"
		}
		label := e.Label
		if e.Exogenous {
			label += "^x"
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q%s];\n",
			g.Q.VarName(e.From), g.Q.VarName(e.To), label, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders a compact one-line description of the graph, e.g.
// "x -R-> y, y -R-> z" for the chain; loops render as "A@x".
func (g *Graph) ASCII() string {
	parts := make([]string, 0, len(g.Edges))
	for _, e := range g.Edges {
		label := e.Label
		if e.Exogenous {
			label += "^x"
		}
		if e.Loop {
			parts = append(parts, fmt.Sprintf("%s@%s", label, g.Q.VarName(e.From)))
		} else {
			parts = append(parts, fmt.Sprintf("%s -%s-> %s",
				g.Q.VarName(e.From), label, g.Q.VarName(e.To)))
		}
	}
	return strings.Join(parts, ", ")
}
