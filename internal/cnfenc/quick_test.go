package cnfenc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/resilience"
)

// TestQuickOracleAgreement is a property-based cross-check: for arbitrary
// small R-digraphs and budgets, the SAT oracle and the branch-and-bound
// solver must give the same RES(qchain) membership answer.
func TestQuickOracleAgreement(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	property := func(edges [][2]uint8, kRaw uint8) bool {
		d := db.New()
		for _, e := range edges {
			d.Add("R", db.Value(e[0]%6), db.Value(e[1]%6))
		}
		k := int(kRaw % 5)
		want, err1 := resilience.Decide(q, d, k)
		got, gamma, err2 := Decide(q, d, k)
		if (err1 != nil) != (err2 != nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if got != want {
			return false
		}
		return len(gamma) <= k || !got
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(23)),
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
