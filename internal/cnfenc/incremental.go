package cnfenc

import (
	"context"
	"fmt"

	"repro/internal/sat"
	"repro/internal/witset"
)

// IncrementalSolver renders one set family into a single persistent CDCL
// clause database and answers "is there a hitting set of size ≤ k?" for
// many budgets k over it. The witness row clauses are loaded once and the
// Sinz sequential counter is emitted once at the maximum budget, with
// per-budget assumption literals gating the "≤ k" outputs — so a budget
// probe is one sat.Solver.SolveAssume call and every lemma the solver
// learns while refuting one budget keeps pruning all later budgets. This
// is the Eén–Sörensson incremental interface applied to the engine's SAT
// binary search: one clause database per component, budgets driven purely
// by assumptions.
//
// Encoding: element e of the family is CNF variable e+1 (exactly like
// FamilyEncoder), and register s(i,j) — "at least j of x₁..x_i are true" —
// is a variable above the element range. Only the upward implications are
// emitted (x_i ∧ s(i−1,j−1) → s(i,j) and friends), which keeps every
// register free to be false in intended models; Assume(k) then assumes
// ¬s(n,k+1), which by those implications is exactly "at most k elements
// chosen".
type IncrementalSolver struct {
	n     int // element universe size; elements are variables 1..n
	kcap  int // largest budget with a gating register (k > kcap must be ≥ n)
	width int // registers per counter stage: kcap+1
	base  int // register variables start at base+1
	s     *sat.Solver
}

// NewIncrementalSolver builds the persistent clause database for fam with
// budget registers up to kcap (values ≥ n-1 are clamped: budgets ≥ n are
// trivially satisfiable and need no register). The engine's binary search
// passes kcap = fam.N-1 so every probe in [1, N] is covered; single-probe
// callers pass their one budget and get a counter no wider than the old
// per-k encoding.
func NewIncrementalSolver(fam *witset.Family, kcap int) *IncrementalSolver {
	return newIncrementalFromRows(fam.Rows, fam.N, kcap)
}

func newIncrementalFromRows(rows [][]int32, n, kcap int) *IncrementalSolver {
	if kcap > n-1 {
		kcap = n - 1
	}
	if kcap < 0 {
		kcap = 0
	}
	inc := &IncrementalSolver{n: n, kcap: kcap, width: kcap + 1, base: n}
	s := sat.NewSolver(n + n*inc.width)
	inc.s = s
	for _, row := range rows {
		clause := make(sat.Clause, len(row))
		for j, id := range row {
			clause[j] = sat.Literal(int(id) + 1)
		}
		s.AddClause(clause)
	}
	// Sinz sequential counter, upward implications only.
	for i := 2; i <= n; i++ {
		s.AddClause(sat.Clause{-inc.x(i), inc.reg(i, 1)})
		s.AddClause(sat.Clause{-inc.reg(i-1, 1), inc.reg(i, 1)})
		for j := 2; j <= inc.width; j++ {
			s.AddClause(sat.Clause{-inc.x(i), -inc.reg(i-1, j-1), inc.reg(i, j)})
			s.AddClause(sat.Clause{-inc.reg(i-1, j), inc.reg(i, j)})
		}
	}
	if n >= 1 {
		s.AddClause(sat.Clause{-inc.x(1), inc.reg(1, 1)})
	}
	return inc
}

func (inc *IncrementalSolver) x(i int) sat.Literal { return sat.Literal(i) }

func (inc *IncrementalSolver) reg(i, j int) sat.Literal {
	return sat.Literal(inc.base + (i-1)*inc.width + j)
}

// Assume returns the assumption literals that gate the encoding to budget
// k: ¬s(n, k+1) for k < n, nothing for k ≥ n (deleting every element hits
// every row). Budgets above the register cap but below n have no gate and
// panic — a caller bug, since the cap is chosen from the probe range.
func (inc *IncrementalSolver) Assume(k int) []sat.Literal {
	if k >= inc.n {
		return nil
	}
	if k < 0 || k > inc.kcap {
		panic(fmt.Sprintf("cnfenc: budget %d outside encoder cap %d", k, inc.kcap))
	}
	return []sat.Literal{-inc.reg(inc.n, k+1)}
}

// SolveBudget reports whether the family has a hitting set of size ≤ k,
// returning the solver's model when it does. Learned clauses persist into
// the next call.
func (inc *IncrementalSolver) SolveBudget(ctx context.Context, k int) (assign []bool, ok bool, err error) {
	return inc.s.SolveAssumeCtx(ctx, inc.Assume(k))
}

// Chosen projects a satisfying assignment back to the chosen element ids,
// sorted ascending (the element block of the model is variables 1..n).
func (inc *IncrementalSolver) Chosen(assign []bool) []int32 {
	var out []int32
	for i := 0; i < inc.n; i++ {
		if assign[i+1] {
			out = append(out, int32(i))
		}
	}
	return out
}

// Solver exposes the underlying persistent solver, for callers that layer
// extra assumptions or clauses on top of the budgeted encoding.
func (inc *IncrementalSolver) Solver() *sat.Solver { return inc.s }
