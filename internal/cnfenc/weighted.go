package cnfenc

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/sat"
	"repro/internal/witset"
)

// MaxWeightedWidth caps the register width of the weighted incremental
// encoding. The counter needs one register per unit of budget, so skewed
// weight vectors with a large minimum cost would blow the CNF up
// quadratically; above this width the constructor refuses with
// ErrWidthTooLarge and the engine's race simply lets the branch-and-bound
// side win.
const MaxWeightedWidth = 4096

// ErrWidthTooLarge reports that a weighted encoding would need more
// registers per stage than MaxWeightedWidth allows.
var ErrWidthTooLarge = errors.New("cnfenc: weighted counter width exceeds cap")

// WeightedIncrementalSolver generalizes IncrementalSolver to per-element
// integer costs: it answers "is there a hitting set of total cost ≤ k?" for
// many budgets k over one persistent clause database. Register s(i,j) means
// "the total cost of the chosen elements among x₁..x_i is at least j", with
// j saturating at the width — a sorted-weight Sinz counter where element i
// advances the register index by its cost w_i instead of by 1.
//
// Clauses, for P_i the true prefix cost and width = kcap+1:
//
//	base:  x_i → s(i, min(w_i, width))
//	carry: s(i−1, j) → s(i, j)
//	add:   x_i ∧ s(i−1, j) → s(i, min(j+w_i, width))
//	mono:  s(i, j) → s(i, j−1)
//
// base/carry/add force s(i, min(P_i, width)) by induction on i, and unlike
// the unit counter the downward-monotone clauses are load-bearing: weighted
// increments land between consecutive partial sums, so the budget gate
// s(n, k+1) sits below the forced register and is only reached by walking
// down. Assume(k) = ¬s(n, k+1) is then exactly "total cost ≤ k": forcing
// makes any costlier choice conflict, and the intended model
// s(i,j) ⇔ j ≤ min(P_i, width) satisfies every clause, so no cost-≤-k
// choice is excluded. With unit weights the encoding degenerates to the
// unit counter plus the (redundant there) monotone clauses.
type WeightedIncrementalSolver struct {
	n     int     // element universe size; elements are variables 1..n
	w     []int64 // per-element costs, all >= 1
	wsum  int64   // total cost of the universe
	kcap  int64   // largest budget with a gating register
	width int     // registers per counter stage: kcap+1
	base  int     // register variables start at base+1
	s     *sat.Solver
}

// NewWeightedIncrementalSolver builds the persistent weighted clause
// database for fam, with costs from fam.W (1 each when nil) and budget
// registers up to kcap. Budgets ≥ the total universe cost are trivially
// satisfiable and need no register, so kcap is clamped to wsum−1. Returns
// ErrWidthTooLarge when the clamped counter would be wider than
// MaxWeightedWidth.
func NewWeightedIncrementalSolver(fam *witset.Family, kcap int64) (*WeightedIncrementalSolver, error) {
	n := fam.N
	w := fam.W
	if w == nil {
		w = make([]int64, n)
		for i := range w {
			w[i] = 1
		}
	}
	wsum := int64(0)
	for _, wi := range w {
		wsum += wi
	}
	if kcap > wsum-1 {
		kcap = wsum - 1
	}
	if kcap < 0 {
		kcap = 0
	}
	if kcap+1 > MaxWeightedWidth {
		return nil, fmt.Errorf("%w: need %d registers per stage, cap %d", ErrWidthTooLarge, kcap+1, MaxWeightedWidth)
	}
	inc := &WeightedIncrementalSolver{n: n, w: w, wsum: wsum, kcap: kcap, width: int(kcap) + 1, base: n}
	s := sat.NewSolver(n + n*inc.width)
	inc.s = s
	for _, row := range fam.Rows {
		clause := make(sat.Clause, len(row))
		for j, id := range row {
			clause[j] = sat.Literal(int(id) + 1)
		}
		s.AddClause(clause)
	}
	// sat64 saturates a register index at the width.
	sat64 := func(j int64) int {
		if j > int64(inc.width) {
			return inc.width
		}
		return int(j)
	}
	for i := 1; i <= n; i++ {
		s.AddClause(sat.Clause{-inc.x(i), inc.reg(i, sat64(w[i-1]))})
		if i >= 2 {
			for j := 1; j <= inc.width; j++ {
				s.AddClause(sat.Clause{-inc.reg(i-1, j), inc.reg(i, j)})
				s.AddClause(sat.Clause{-inc.x(i), -inc.reg(i-1, j), inc.reg(i, sat64(int64(j)+w[i-1]))})
			}
		}
		for j := 2; j <= inc.width; j++ {
			s.AddClause(sat.Clause{-inc.reg(i, j), inc.reg(i, j-1)})
		}
	}
	return inc, nil
}

func (inc *WeightedIncrementalSolver) x(i int) sat.Literal { return sat.Literal(i) }

func (inc *WeightedIncrementalSolver) reg(i, j int) sat.Literal {
	return sat.Literal(inc.base + (i-1)*inc.width + j)
}

// Assume returns the assumption literals that gate the encoding to total
// cost ≤ k: ¬s(n, k+1) for k < wsum, nothing for k ≥ wsum (deleting every
// element hits every row). Budgets above the register cap but below wsum
// have no gate and panic — a caller bug, since the cap is chosen from the
// probe range.
func (inc *WeightedIncrementalSolver) Assume(k int64) []sat.Literal {
	if k >= inc.wsum {
		return nil
	}
	if k < 0 || k > inc.kcap {
		panic(fmt.Sprintf("cnfenc: weighted budget %d outside encoder cap %d", k, inc.kcap))
	}
	return []sat.Literal{-inc.reg(inc.n, int(k)+1)}
}

// SolveBudget reports whether the family has a hitting set of total cost
// ≤ k, returning the solver's model when it does. Learned clauses persist
// into the next call.
func (inc *WeightedIncrementalSolver) SolveBudget(ctx context.Context, k int64) (assign []bool, ok bool, err error) {
	return inc.s.SolveAssumeCtx(ctx, inc.Assume(k))
}

// Chosen projects a satisfying assignment back to the chosen element ids,
// sorted ascending (the element block of the model is variables 1..n).
func (inc *WeightedIncrementalSolver) Chosen(assign []bool) []int32 {
	var out []int32
	for i := 0; i < inc.n; i++ {
		if assign[i+1] {
			out = append(out, int32(i))
		}
	}
	return out
}

// Cost sums the chosen elements' costs of a satisfying assignment.
func (inc *WeightedIncrementalSolver) Cost(assign []bool) int64 {
	total := int64(0)
	for i := 0; i < inc.n; i++ {
		if assign[i+1] {
			total += inc.w[i]
		}
	}
	return total
}

// Solver exposes the underlying persistent solver, for callers that layer
// extra assumptions or clauses on top of the budgeted encoding.
func (inc *WeightedIncrementalSolver) Solver() *sat.Solver { return inc.s }
