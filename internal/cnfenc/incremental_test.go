package cnfenc

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/witset"
)

// randomFamily generates a normalized set family over n elements with
// non-empty random rows.
func randomFamily(rng *rand.Rand, n, rows int) *witset.Family {
	raw := make([][]int32, 0, rows)
	for i := 0; i < rows; i++ {
		size := 1 + rng.Intn(3)
		row := make([]int32, 0, size)
		for j := 0; j < size; j++ {
			row = append(row, int32(rng.Intn(n)))
		}
		raw = append(raw, row)
	}
	return witset.NewFamily(raw, n, false)
}

// bruteMinHit computes the minimum hitting set size by subset enumeration
// (n ≤ ~16).
func bruteMinHit(fam *witset.Family) int {
	if len(fam.Rows) == 0 {
		return 0
	}
	for size := 0; size <= fam.N; size++ {
		if canHit(fam, 0, size, make([]bool, fam.N)) {
			return size
		}
	}
	return fam.N
}

func canHit(fam *witset.Family, from, budget int, chosen []bool) bool {
	allHit := true
	var unhit []int32
	for _, row := range fam.Rows {
		hit := false
		for _, e := range row {
			if chosen[e] {
				hit = true
				break
			}
		}
		if !hit {
			allHit = false
			unhit = row
			break
		}
	}
	if allHit {
		return true
	}
	if budget == 0 {
		return false
	}
	for _, e := range unhit {
		chosen[e] = true
		if canHit(fam, from, budget-1, chosen) {
			chosen[e] = false
			return true
		}
		chosen[e] = false
	}
	return false
}

// TestIncrementalSolverMatchesScratch pins the assumption-gated counter
// against both the per-budget scratch encoding and a brute-force hitting
// set oracle: for every budget k, SolveBudget(k) must be satisfiable
// exactly when k ≥ the minimum hitting set size, the returned set must hit
// all rows within budget, and the verdicts must survive arbitrary probe
// orders over the same persistent solver.
func TestIncrementalSolverMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		fam := randomFamily(rng, n, 1+rng.Intn(2*n))
		min := bruteMinHit(fam)
		scratch := NewFamilyEncoder(fam)

		// Ascending, descending, and shuffled probe orders all reuse one
		// clause database; learned lemmas must never flip a verdict.
		orders := [][]int{}
		asc := make([]int, n+1)
		desc := make([]int, n+1)
		for k := 0; k <= n; k++ {
			asc[k] = k
			desc[k] = n - k
		}
		shuf := append([]int(nil), asc...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		orders = append(orders, asc, desc, shuf)

		for oi, order := range orders {
			inc := NewIncrementalSolver(fam, fam.N-1)
			for _, k := range order {
				assign, ok, err := inc.SolveBudget(ctx, k)
				if err != nil {
					t.Fatal(err)
				}
				if want := k >= min; ok != want {
					t.Fatalf("trial %d order %d: SolveBudget(%d) = %v, min = %d (rows %v)",
						trial, oi, k, ok, min, fam.Rows)
				}
				if _, scratchOK := scratch.Encode(k).Solve(); scratchOK != ok {
					t.Fatalf("trial %d order %d: incremental(%d)=%v scratch=%v",
						trial, oi, k, ok, scratchOK)
				}
				if !ok {
					continue
				}
				chosen := inc.Chosen(assign)
				if len(chosen) > k {
					t.Fatalf("trial %d: budget %d model chose %d elements", trial, k, len(chosen))
				}
				hit := make([]bool, fam.N)
				for _, e := range chosen {
					hit[e] = true
				}
				for _, row := range fam.Rows {
					rowHit := false
					for _, e := range row {
						if hit[e] {
							rowHit = true
							break
						}
					}
					if !rowHit {
						t.Fatalf("trial %d: budget %d model misses row %v", trial, k, row)
					}
				}
			}
		}
	}
}

// TestIncrementalSolverBudgetCap pins the cap semantics: budgets at or
// above the universe size need no gating literal, and a single-budget cap
// behaves like the full-range encoder at that budget.
func TestIncrementalSolverBudgetCap(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	fam := randomFamily(rng, 6, 8)
	min := bruteMinHit(fam)
	for k := 0; k <= 6; k++ {
		inc := NewIncrementalSolver(fam, k)
		if len(inc.Assume(k)) == 0 != (k >= fam.N) {
			t.Fatalf("Assume(%d) gating literal presence wrong", k)
		}
		_, ok, err := inc.SolveBudget(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		if want := k >= min; ok != want {
			t.Fatalf("capped SolveBudget(%d) = %v, min = %d", k, ok, min)
		}
	}
}

// componentFamily builds a single-component witness family from a chain
// workload, the shape the engine's binary search probes.
func componentFamily(tb testing.TB, seed int64, n, chords int) *witset.Family {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := datagen.ChainDB(rng, n, chords)
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		tb.Fatal(err)
	}
	comps := inst.Components()
	if len(comps) == 0 {
		tb.Fatal("no components")
	}
	best := comps[0].Fam
	for _, c := range comps[1:] {
		if c.Fam.N > best.N {
			best = c.Fam
		}
	}
	return best
}

// binarySearchAssume is the engine's incremental search loop: a greedy
// upper bound caps the probe range and the counter width, then one clause
// database answers every budget by assumption.
func binarySearchAssume(tb testing.TB, fam *witset.Family) int {
	best := len(witset.GreedyHittingSet(fam))
	lo, hi := 1, best-1
	if lo > hi {
		return best
	}
	inc := NewIncrementalSolver(fam, hi)
	for lo <= hi {
		mid := lo + (hi-lo)/2
		_, ok, err := inc.SolveBudget(context.Background(), mid)
		if err != nil {
			tb.Fatal(err)
		}
		if ok {
			best, hi = mid, mid-1
		} else {
			lo = mid + 1
		}
	}
	return best
}

// binarySearchScratch is the pre-incremental loop with the same greedy
// seeding: re-render the counter and re-solve from scratch at every probe,
// so the benchmark pair isolates assumption reuse rather than search-range
// differences.
func binarySearchScratch(tb testing.TB, fam *witset.Family) int {
	best := len(witset.GreedyHittingSet(fam))
	lo, hi := 1, best-1
	if lo > hi {
		return best
	}
	enc := NewFamilyEncoder(fam)
	for lo <= hi {
		mid := lo + (hi-lo)/2
		_, ok, err := enc.Encode(mid).SolveCtx(context.Background())
		if err != nil {
			tb.Fatal(err)
		}
		if ok {
			best, hi = mid, mid-1
		} else {
			lo = mid + 1
		}
	}
	return best
}

func TestBinarySearchAssumeMatchesScratch(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		fam := componentFamily(t, 700+seed, 10+int(seed), 8)
		if a, s := binarySearchAssume(t, fam), binarySearchScratch(t, fam); a != s {
			t.Fatalf("seed %d: assume search = %d, scratch search = %d", seed, a, s)
		}
	}
}

// BenchmarkSATIncrementalAssume and BenchmarkSATIncrementalScratch race the
// two binary-search implementations on the same recorded component
// workload; the assumption-based search is the tentpole contract and is
// gated by cmd/benchgate against the committed baseline.
func BenchmarkSATIncrementalAssume(b *testing.B) {
	fam := componentFamily(b, 42, 24, 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binarySearchAssume(b, fam)
	}
}

func BenchmarkSATIncrementalScratch(b *testing.B) {
	fam := componentFamily(b, 42, 24, 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binarySearchScratch(b, fam)
	}
}
