package cnfenc

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/resilience"
	"repro/internal/sat"
)

// TestAtMostKCounter verifies the sequential counter in isolation: for
// every assignment of the n counted variables, the circuit must be
// extensible to the auxiliaries iff at most k variables are true.
func TestAtMostKCounter(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for k := 0; k <= n+1; k++ {
			for mask := 0; mask < 1<<n; mask++ {
				f := &sat.Formula{NumVars: n}
				addAtMostK(f, n, k)
				count := 0
				for i := 1; i <= n; i++ {
					lit := sat.Literal(-i)
					if mask&(1<<(i-1)) != 0 {
						lit = sat.Literal(i)
						count++
					}
					f.Clauses = append(f.Clauses, sat.Clause{lit})
				}
				want := count <= k
				if got := f.Satisfiable(); got != want {
					t.Fatalf("n=%d k=%d mask=%b: sat=%v, want %v", n, k, mask, got, want)
				}
			}
		}
	}
}

// TestDecideAgreesWithExact cross-checks the SAT oracle against the
// branch-and-bound solver across query shapes, budgets, and random
// databases. Returned contingency sets must verify.
func TestDecideAgreesWithExact(t *testing.T) {
	queries := []*cq.Query{
		cq.MustParse("qchain :- R(x,y), R(y,z)"),
		cq.MustParse("qtriangle :- R(x,y), S(y,z), T(z,x)"),
		cq.MustParse("qvc :- R(x), S(x,y), R(y)"),
		cq.MustParse("qABperm :- A(x), R(x,y), R(y,x), B(y)"),
		cq.MustParse("qACconf :- A(x), R(x,y), R(z,y), C(z)"),
		cq.MustParse("qrats :- R(x,y), A(x), T(z,x), S(y,z)"),
	}
	rng := rand.New(rand.NewSource(17))
	for _, q := range queries {
		for trial := 0; trial < 8; trial++ {
			d := datagen.Random(rng, q, 5, 7, 0.3)
			res, err := resilience.Exact(q, d)
			if err == resilience.ErrUnbreakable {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{0, res.Rho - 1, res.Rho, res.Rho + 1} {
				if k < 0 {
					continue
				}
				wantBool, err := resilience.Decide(q, d, k)
				if err != nil {
					t.Fatal(err)
				}
				gotBool, gamma, err := Decide(q, d, k)
				if err != nil {
					t.Fatalf("%s k=%d: %v", q.Name, k, err)
				}
				if gotBool != wantBool {
					t.Fatalf("%s trial %d k=%d (ρ=%d): SAT oracle says %v, B&B says %v",
						q.Name, trial, k, res.Rho, gotBool, wantBool)
				}
				if gotBool && eval.Satisfied(q, d) {
					if len(gamma) > k {
						t.Fatalf("%s k=%d: contingency set of size %d > k", q.Name, k, len(gamma))
					}
					if err := resilience.VerifyContingency(q, d, gamma); err != nil {
						t.Fatalf("%s k=%d: %v", q.Name, k, err)
					}
				}
			}
		}
	}
}

// TestDecideExogenousAndUnbreakable covers the exogenous-atom paths.
func TestDecideExogenousAndUnbreakable(t *testing.T) {
	q := cq.MustParse("q :- A(x), W(x,y)^x")
	d := db.New()
	d.AddNames("A", "1")
	d.AddNames("W", "1", "2")
	ok, gamma, err := Decide(q, d, 1)
	if err != nil || !ok {
		t.Fatalf("Decide = %v, %v; want true (delete A(1))", ok, err)
	}
	if len(gamma) != 1 || gamma[0].Rel != "A" {
		t.Fatalf("gamma = %v, want the A tuple", gamma)
	}

	// All-exogenous witness: unbreakable.
	q2 := cq.MustParse("q2 :- W(x,y)^x")
	if _, _, err := Decide(q2, d, 1); err != ErrUnbreakable {
		t.Fatalf("err = %v, want ErrUnbreakable", err)
	}
}

// TestDecideUnsatisfiedDatabase: (D, k) ∉ RES(q) when D does not satisfy q.
func TestDecideUnsatisfiedDatabase(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2") // no chain of length two
	ok, _, err := Decide(q, d, 5)
	if err != nil || ok {
		t.Fatalf("Decide = %v, %v; want false, nil", ok, err)
	}
}

func TestEncodeRejectsNegativeBudget(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	if _, err := Encode(q, db.New(), -1); err == nil {
		t.Fatal("want error for negative budget")
	}
}

// TestEncodingSize pins the encoding's arithmetic: variable and clause
// counts for a known instance.
func TestEncodingSize(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	d.AddNames("R", "3", "4")
	// Witnesses: (1,2,3), (2,3,4); candidate tuples: all 3.
	enc, err := Encode(q, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Witnesses != 2 || len(enc.Tuples) != 3 {
		t.Fatalf("witnesses=%d tuples=%d, want 2 and 3", enc.Witnesses, len(enc.Tuples))
	}
	// n=3, k=1: aux vars (n-1)*k = 2.
	if enc.Formula.NumVars != 5 {
		t.Fatalf("NumVars=%d, want 5 (3 tuples + 2 counter vars)", enc.Formula.NumVars)
	}
}
