// Package cnfenc encodes the resilience decision problem RES(q, D, k)
// (Definition 1) as CNF satisfiability, giving a second, independently
// implemented oracle against which the branch-and-bound exact solver is
// cross-checked.
//
// The encoding is the textbook one for bounded hitting set: a Boolean
// variable per candidate endogenous tuple ("delete this tuple"), one
// clause per witness requiring at least one of its tuples deleted, and a
// Sinz sequential-counter circuit enforcing that at most k tuples are
// deleted. The resulting formula is satisfiable iff (D, k) ∈ RES(q), and
// any model projects to a verified contingency set of size ≤ k.
//
// # Key invariants
//
//   - Everything is built from the witness-hypergraph IR
//     (witset.Instance): witness clauses are the IR's rows verbatim and
//     CNF variables 1..NumTuples() are the IR's tuple ids shifted by
//     one, so Gamma can project any model back to concrete tuples.
//   - Encoder renders the witness clauses once per instance; Encode(k)
//     only regenerates the cardinality circuit. The engine's SAT binary
//     search leans on this: probing a new k re-uses every witness
//     clause.
//   - Independence from the exact solver is the point: nothing in this
//     package consults the branch-and-bound (only the shared IR), so
//     agreement between the two is a genuine cross-check, exercised by
//     the randomized differential suite.
package cnfenc
