package cnfenc

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/sat"
	"repro/internal/witset"
)

// ErrUnbreakable mirrors resilience.ErrUnbreakable: some witness consists
// purely of exogenous tuples, so no deletions can falsify the query.
var ErrUnbreakable = errors.New("cnfenc: query cannot be falsified by endogenous deletions")

// Encoding is a CNF rendering of one RES(q, D, k) instance.
type Encoding struct {
	// Formula is satisfiable iff (D, k) ∈ RES(q).
	Formula *sat.Formula
	// Tuples are the candidate endogenous tuples; tuple i corresponds to
	// CNF variable i+1.
	Tuples []db.Tuple
	// K is the cardinality bound of the instance.
	K int
	// Witnesses is the number of witness clauses.
	Witnesses int
}

// Encode builds the CNF instance for (q, d, k). It fails with
// ErrUnbreakable when a witness has no endogenous tuples, and never
// produces a formula for unsatisfiable-query databases: if D does not
// satisfy q the encoding has no witness clauses and is trivially
// satisfiable with zero deletions, matching ρ = 0.
func Encode(q *cq.Query, d *db.Database, k int) (*Encoding, error) {
	if k < 0 {
		return nil, fmt.Errorf("cnfenc: negative budget %d", k)
	}
	inst, err := witset.Build(context.Background(), q, d, nil)
	if err != nil {
		return nil, err
	}
	if inst.Unbreakable() {
		return nil, ErrUnbreakable
	}
	return EncodeInstance(inst, k), nil
}

// EncodeInstance builds the CNF instance from a prebuilt witness-hypergraph
// IR: tuple id i becomes CNF variable i+1, each witness row becomes one
// at-least-one-deleted clause. Callers probing several budgets over the
// same witnesses should use an Encoder, which builds the witness clauses
// once and re-encodes only the cardinality counter per k.
func EncodeInstance(inst *witset.Instance, k int) *Encoding {
	return NewEncoder(inst).Encode(k)
}

// Encoder renders one IR at several cardinality budgets — the engine's SAT
// binary search — sharing the witness clauses across encodings; only the
// Sinz counter differs per k.
type Encoder struct {
	inst *witset.Instance
	fe   *FamilyEncoder
}

// NewEncoder builds the budget-independent part of the encoding: one
// clause per witness row.
func NewEncoder(inst *witset.Instance) *Encoder {
	return &Encoder{inst: inst, fe: newRowsEncoder(inst.Rows(), inst.NumTuples())}
}

// Encode returns the encoding for budget k. The witness clauses are shared
// between encodings (the solver copies clauses it loads).
func (e *Encoder) Encode(k int) *Encoding {
	return &Encoding{
		Formula:   e.fe.Encode(k),
		Tuples:    e.inst.Tuples(),
		K:         k,
		Witnesses: len(e.fe.base),
	}
}

// FamilyEncoder renders one witset.Family — typically a single connected
// component out of the kernel+decompose pipeline — at several cardinality
// budgets. Element e of the family is CNF variable e+1, so component-local
// universes keep both the variable range and the Sinz counter small: a
// component with 20 elements costs a 20-variable counter regardless of how
// big the instance-wide tuple universe is. This is what makes the engine's
// per-component SAT binary search profitable on many-component instances.
type FamilyEncoder struct {
	n    int
	base []sat.Clause
}

// NewFamilyEncoder builds the budget-independent part: one at-least-one-
// deleted clause per row of the family.
func NewFamilyEncoder(fam *witset.Family) *FamilyEncoder {
	return newRowsEncoder(fam.Rows, fam.N)
}

func newRowsEncoder(rows [][]int32, n int) *FamilyEncoder {
	base := make([]sat.Clause, 0, len(rows))
	for _, row := range rows {
		clause := make(sat.Clause, len(row))
		for j, id := range row {
			clause[j] = sat.Literal(int(id) + 1)
		}
		base = append(base, clause)
	}
	return &FamilyEncoder{n: n, base: base}
}

// Encode returns the formula that is satisfiable iff the family has a
// hitting set of size ≤ k. The row clauses are shared between encodings;
// the full-cap reslice makes addAtMostK's appends land in fresh backing, so
// encodings for different budgets do not alias each other's counters.
func (e *FamilyEncoder) Encode(k int) *sat.Formula {
	f := &sat.Formula{NumVars: e.n, Clauses: e.base[:len(e.base):len(e.base)]}
	addAtMostK(f, e.n, k)
	return f
}

// Chosen projects a satisfying assignment back to the chosen element ids,
// sorted ascending.
func (e *FamilyEncoder) Chosen(assign []bool) []int32 {
	var out []int32
	for i := 0; i < e.n; i++ {
		if assign[i+1] {
			out = append(out, int32(i))
		}
	}
	return out
}

// addAtMostK appends the Sinz sequential-counter encoding of
// "at most k of variables 1..n are true" to f, allocating auxiliary
// variables above f.NumVars. For k ≥ n it adds nothing; for k = 0 it adds
// a unit clause ¬x_i per variable.
func addAtMostK(f *sat.Formula, n, k int) {
	if k >= n {
		return
	}
	if k == 0 {
		for i := 1; i <= n; i++ {
			f.Clauses = append(f.Clauses, sat.Clause{sat.Literal(-i)})
		}
		return
	}
	// s(i,j) is true when at least j of x_1..x_i are true; i ∈ [1,n-1],
	// j ∈ [1,k].
	base := f.NumVars
	s := func(i, j int) sat.Literal {
		return sat.Literal(base + (i-1)*k + j)
	}
	f.NumVars += (n - 1) * k
	add := func(lits ...sat.Literal) {
		f.Clauses = append(f.Clauses, sat.Clause(lits))
	}
	x := func(i int) sat.Literal { return sat.Literal(i) }

	add(-x(1), s(1, 1))
	for j := 2; j <= k; j++ {
		add(-s(1, j))
	}
	for i := 2; i <= n-1; i++ {
		add(-x(i), s(i, 1))
		add(-s(i-1, 1), s(i, 1))
		for j := 2; j <= k; j++ {
			add(-x(i), -s(i-1, j-1), s(i, j))
			add(-s(i-1, j), s(i, j))
		}
		add(-x(i), -s(i-1, k))
	}
	add(-x(n), -s(n-1, k))
}

// Gamma projects a satisfying assignment of the encoding's formula back to
// the deleted-tuple set.
func (e *Encoding) Gamma(assign []bool) []db.Tuple {
	var out []db.Tuple
	for i, t := range e.Tuples {
		if assign[i+1] {
			out = append(out, t)
		}
	}
	db.SortTuples(out)
	return out
}

// Decide reports whether (D, k) ∈ RES(q) by SAT solving the encoding.
// Like resilience.Decide it requires D |= q for membership. The returned
// contingency set (when the answer is yes and k > 0) has size ≤ k and is
// guaranteed by construction to falsify the query.
func Decide(q *cq.Query, d *db.Database, k int) (bool, []db.Tuple, error) {
	return DecideCtx(context.Background(), q, d, k)
}

// DecideCtx is Decide with cooperative cancellation: the CDCL search polls
// ctx and aborts with ctx.Err() once it is done, which is what lets the
// engine's portfolio cancel a losing SAT attempt promptly. The instance is
// rendered through the persistent-solver path (row clauses plus an
// assumption-gated counter capped at k), the same machinery the engine's
// budget binary search probes repeatedly.
func DecideCtx(ctx context.Context, q *cq.Query, d *db.Database, k int) (bool, []db.Tuple, error) {
	if !eval.Satisfied(q, d) {
		return false, nil, nil
	}
	if k < 0 {
		return false, nil, fmt.Errorf("cnfenc: negative budget %d", k)
	}
	inst, err := witset.Build(ctx, q, d, nil)
	if err != nil {
		return false, nil, err
	}
	if inst.Unbreakable() {
		return false, nil, ErrUnbreakable
	}
	inc := newIncrementalFromRows(inst.Rows(), inst.NumTuples(), k)
	assign, ok, err := inc.SolveBudget(ctx, k)
	if err != nil {
		return false, nil, err
	}
	if !ok {
		return false, nil, nil
	}
	var gamma []db.Tuple
	for _, id := range inc.Chosen(assign) {
		gamma = append(gamma, inst.Tuple(id))
	}
	db.SortTuples(gamma)
	return true, gamma, nil
}
