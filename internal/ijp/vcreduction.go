package ijp

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/vertexcover"
)

// VCReduction materializes the generalized Vertex Cover reduction that an
// IJP enables (Section 9, Figure 8): every edge of a graph G is replaced by
// a chain of `copies` renamed instances of the IJP database, endpoint
// tuples glued junction-to-junction, with the chain's outer endpoints
// identified with per-vertex tuples shared across all edges at a vertex.
//
// By the or-property (condition 5 of Definition 48), each chained copy
// costs ρ-1 once one of its endpoints is deleted, so
//
//	ρ(q, D_G) = VC(G) + β·|E|
//
// for a per-edge constant β that depends only on the IJP and chain length
// (calibrate on K2: β = ρ(D_K2) - 1). The experiment harness validates
// this equality on random graphs — the operational content of
// Conjecture 49.
type VCReduction struct {
	Q  *cq.Query
	DB *db.Database
	// VertexTuple maps each vertex to its shared endpoint tuple.
	VertexTuple []db.Tuple
	// Copies is the chain length per edge.
	Copies int
}

// BuildVCReduction instantiates the reduction for graph g using IJP
// certificate cert. Gluing constraints are solved by union-find over
// per-copy constants, which handles IJPs whose endpoints share constants
// (e.g. qchain's R(1,2), R(2,3)): there the junction constant of one copy
// flows into the next copy and ultimately into the vertex tuple. copies
// must be odd; the paper's Figure 8 uses 3.
func BuildVCReduction(q *cq.Query, cert *Certificate, g *vertexcover.Graph, copies int) (*VCReduction, error) {
	if copies < 1 || copies%2 == 0 {
		return nil, fmt.Errorf("ijp: copies must be odd and positive, got %d", copies)
	}
	a, b := cert.A, cert.B
	if a.Arity != b.Arity {
		return nil, fmt.Errorf("ijp: endpoint arities differ")
	}
	src := cert.DB
	nc := src.NumConsts()

	out := db.New()
	red := &VCReduction{Q: q, DB: out, Copies: copies}

	// Union-find elements, per edge: copies*nc copy-constants followed by
	// 2*arity vertex-slot anchors (u then v).
	arity := int(a.Arity)
	elems := copies*nc + 2*arity
	parent := make([]int, elems)
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) { parent[find(x)] = find(y) }
	cc := func(t int, v db.Value) int { return t*nc + int(v) }
	uSlot := func(p int) int { return copies*nc + p }
	vSlot := func(p int) int { return copies*nc + arity + p }

	// Vertex constant names: one per (vertex, slot), deduplicated by a's
	// repeated-constant pattern so vertex tuples mirror the endpoint shape.
	red.VertexTuple = make([]db.Tuple, g.N)
	vertexConst := make([][]db.Value, g.N)
	for v := 0; v < g.N; v++ {
		vertexConst[v] = make([]db.Value, arity)
		seen := map[db.Value]db.Value{}
		args := make([]db.Value, arity)
		for p := 0; p < arity; p++ {
			orig := a.Args[p]
			if mapped, ok := seen[orig]; ok {
				vertexConst[v][p] = mapped
			} else {
				vertexConst[v][p] = out.Const(fmt.Sprintf("vx%d_%d", v, p))
				seen[orig] = vertexConst[v][p]
			}
			args[p] = vertexConst[v][p]
		}
		t := db.NewTuple(a.Rel, args...)
		out.AddTuple(t)
		red.VertexTuple[v] = t
	}

	srcTuples := src.AllTuples()
	for ei, e := range g.Edges() {
		// Reset union-find for this edge.
		for i := range parent {
			parent[i] = i
		}
		// Junctions between consecutive copies.
		for t := 0; t+1 < copies; t++ {
			for p := 0; p < arity; p++ {
				union(cc(t, b.Args[p]), cc(t+1, a.Args[p]))
			}
		}
		// Outer endpoints onto vertex slots.
		for p := 0; p < arity; p++ {
			union(cc(0, a.Args[p]), uSlot(p))
			union(cc(copies-1, b.Args[p]), vSlot(p))
		}
		// Resolve classes to output constants.
		resolved := make(map[int]db.Value)
		for p := 0; p < arity; p++ {
			for slot, vc := range map[int]db.Value{
				uSlot(p): vertexConst[e[0]][p],
				vSlot(p): vertexConst[e[1]][p],
			} {
				root := find(slot)
				if prev, ok := resolved[root]; ok && prev != vc {
					return nil, fmt.Errorf("ijp: edge %d: chain of %d copies forces two vertices to share a constant; use a longer chain", ei, copies)
				}
				resolved[root] = vc
			}
		}
		nameOf := func(t int, v db.Value) db.Value {
			root := find(cc(t, v))
			if val, ok := resolved[root]; ok {
				return val
			}
			val := out.Const(fmt.Sprintf("e%d_k%d", ei, root))
			resolved[root] = val
			return val
		}
		for t := 0; t < copies; t++ {
			for _, tup := range srcTuples {
				args := make([]db.Value, tup.Arity)
				for p, v := range tup.Values() {
					args[p] = nameOf(t, v)
				}
				out.AddTuple(db.NewTuple(tup.Rel, args...))
			}
		}
	}
	return red, nil
}
