package ijp

import (
	"fmt"
	"strings"

	"repro/internal/cq"
	"repro/internal/resilience"
	"repro/internal/vertexcover"
)

// isGluingCollision matches the BuildVCReduction error for chains too
// short to keep vertex constants apart.
func isGluingCollision(err error) bool {
	return err != nil && strings.Contains(err.Error(), "use a longer chain")
}

// This file upgrades the Appendix C.2 search from "find an IJP" to "find a
// *working* hardness gadget". Definition 48's five conditions are local to
// one gadget copy; the Vertex Cover reduction of Figure 8 additionally
// chains renamed copies along every edge, and not every certificate
// composes — gluing can let minimum contingency sets pay less than the
// or-property accounts for. SearchChainable therefore enumerates all
// certificates in the quotient space and keeps the first one whose chained
// reduction empirically satisfies ρ(q, D_G) = VC(G) + β·|E| on a set of
// calibration graphs. The result is an automatically discovered — and
// automatically validated — NP-hardness reduction for q, the paper's
// Section 9 program made executable.

// SearchAll enumerates every IJP certificate in the Appendix C.2 search
// space (k ≤ maxJoins canonical witnesses, constants merged by set
// partition), invoking fn on each; fn returning false stops the search.
// It returns the number of candidate databases tested and whether the
// space was exhausted (false when the maxConsts cap truncated a level or
// fn stopped the enumeration).
func SearchAll(q *cq.Query, maxJoins, maxConsts int, fn func(*Certificate) bool) (tested int, exhausted bool) {
	exhausted = true
	nv := q.NumVars()
	for k := 1; k <= maxJoins; k++ {
		n := k * nv
		if n > maxConsts {
			exhausted = false
			break
		}
		stopped := false
		partitions(n, func(part []int) bool {
			d := quotientDB(q, k, part)
			tested++
			if cert := Check(q, d); cert != nil {
				if !fn(cert) {
					stopped = true
					return false
				}
			}
			return true
		})
		if stopped {
			return tested, false
		}
	}
	return tested, exhausted
}

// CalibrationGraphs returns the small graph battery used to validate a
// certificate's chained reduction: K2 calibrates the per-edge constant β,
// and the path, star, and triangle then probe sharing of vertex tuples
// across edges, high-degree vertices, and odd cycles — ordered so cheap
// instances reject bad certificates before the expensive ones run.
func CalibrationGraphs() []*vertexcover.Graph {
	return []*vertexcover.Graph{
		vertexcover.Complete(2),
		vertexcover.Path(3),
		vertexcover.Star(3),
		vertexcover.Complete(3),
	}
}

// VerifyOrProperty materializes the Figure 8 reduction for every graph and
// checks ρ(q, D_G) = VC(G) + β·|E|, with β read off the first graph
// (use K2 first, as CalibrationGraphs does). It returns β on success.
func VerifyOrProperty(q *cq.Query, cert *Certificate, copies int, graphs []*vertexcover.Graph) (int, error) {
	if len(graphs) == 0 {
		return 0, fmt.Errorf("ijp: no graphs to verify against")
	}
	beta := 0
	for i, g := range graphs {
		red, err := BuildVCReduction(q, cert, g, copies)
		if err != nil {
			return 0, err
		}
		vc, _ := g.MinVertexCover()
		if i == 0 {
			if g.NumEdges() != 1 {
				return 0, fmt.Errorf("ijp: first calibration graph must have exactly one edge")
			}
			res, err := resilience.Exact(q, red.DB)
			if err != nil {
				return 0, fmt.Errorf("ijp: chained database unbreakable: %w", err)
			}
			beta = res.Rho - vc
			if beta < 1 {
				return 0, fmt.Errorf("ijp: calibrated β = %d < 1", beta)
			}
			continue
		}
		// The expected value is known, so a budget-bounded solve decides
		// ρ == want without paying for an unbounded optimality proof.
		want := vc + beta*g.NumEdges()
		res, err := resilience.ExactWithBudget(q, red.DB, want)
		if err != nil {
			return 0, fmt.Errorf("ijp: chained database unbreakable: %w", err)
		}
		if res.Rho != want {
			return 0, fmt.Errorf("ijp: or-property fails on graph %d: ρ=%d, want VC+β|E| = %d+%d·%d = %d",
				i, res.Rho, vc, beta, g.NumEdges(), want)
		}
	}
	return beta, nil
}

// ChainableCertificate is an IJP whose chained VC reduction has been
// validated empirically.
type ChainableCertificate struct {
	*Certificate
	// Beta is the calibrated per-edge cost of the reduction.
	Beta int
	// Copies is the chain length the validation used.
	Copies int
}

// SearchChainable runs SearchAll and returns the first certificate whose
// Figure 8 reduction passes VerifyOrProperty on the calibration battery,
// trying chain lengths 3 and 5 (longer chains resolve gluing collisions in
// IJPs whose endpoints share constants). It returns the validated
// certificate (nil if none), the number of candidate databases tested, and
// whether the space was exhausted.
func SearchChainable(q *cq.Query, maxJoins, maxConsts int) (*ChainableCertificate, int, bool) {
	graphs := CalibrationGraphs()
	var found *ChainableCertificate
	tested, exhausted := SearchAll(q, maxJoins, maxConsts, func(cert *Certificate) bool {
		copies := 3
		beta, err := VerifyOrProperty(q, cert, copies, graphs)
		if err != nil && isGluingCollision(err) {
			// Endpoints sharing constants need a longer chain before the
			// outer vertices stop colliding; an or-property mismatch, by
			// contrast, is a genuine composition failure.
			copies = 5
			beta, err = VerifyOrProperty(q, cert, copies, graphs)
		}
		if err == nil {
			found = &ChainableCertificate{Certificate: cert, Beta: beta, Copies: copies}
			return false
		}
		return true
	})
	if found != nil {
		return found, tested, false
	}
	return nil, tested, exhausted
}
