// Package ijp implements Independent Join Paths (Section 9 of the paper):
// the five-condition checker of Definition 48, the automated search
// procedure sketched in Appendix C.2 (k disjoint canonical witnesses +
// enumeration of constant partitions), and the generalized
// vertex-cover reduction that IJPs enable (Figure 8's "or-property").
//
// IJPs are the paper's proposed unifying hardness criterion: a database
// forming an IJP for q is a reusable gadget whose chained copies reduce
// Vertex Cover to RES(q) (Conjecture 49). The experiment harness validates
// the conjecture's operational content empirically.
package ijp

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/resilience"
)

// Certificate records a verified IJP.
type Certificate struct {
	// A and B are the two endpoint tuples (condition 1).
	A, B db.Tuple
	// Rho is ρ(q, D) (condition 5's baseline c).
	Rho int
	// DB is the witnessing database.
	DB *db.Database
}

func (c *Certificate) String() string {
	return fmt.Sprintf("IJP endpoints %s, %s with ρ=%d",
		c.DB.TupleString(c.A), c.DB.TupleString(c.B), c.Rho)
}

// Check searches D for a pair of endpoint tuples under which D forms an
// IJP for q, trying all same-relation endogenous tuple pairs. It returns
// the first certificate found, or nil.
func Check(q *cq.Query, d *db.Database) *Certificate {
	tuples := d.AllTuples()
	for i := 0; i < len(tuples); i++ {
		for j := i + 1; j < len(tuples); j++ {
			a, b := tuples[i], tuples[j]
			if a.Rel != b.Rel || q.IsExogenous(a.Rel) {
				continue
			}
			if cert, _ := CheckPair(q, d, a, b); cert != nil {
				return cert
			}
		}
	}
	return nil
}

// CheckPair tests Definition 48's five conditions for the specific
// endpoint pair (a, b). On failure it reports which condition failed.
func CheckPair(q *cq.Query, d *db.Database, a, b db.Tuple) (*Certificate, string) {
	// Condition 1: same relation, incomparable constant sets.
	if a.Rel != b.Rel {
		return nil, "condition 1: endpoints in different relations"
	}
	aset, bset := a.ConstSet(), b.ConstSet()
	if subset(aset, bset) || subset(bset, aset) {
		return nil, "condition 1: constant sets comparable"
	}

	// Condition 2: each endpoint participates in exactly one witness, and
	// that witness uses exactly m distinct tuples.
	m := len(q.Atoms)
	countA, countB := 0, 0
	okSizes := true
	eval.ForEachWitness(q, d, func(w eval.Witness) bool {
		ts := eval.WitnessTuples(q, w, false)
		usesA, usesB := false, false
		for _, t := range ts {
			if t == a {
				usesA = true
			}
			if t == b {
				usesB = true
			}
		}
		if usesA {
			countA++
			if len(ts) != m {
				okSizes = false
			}
		}
		if usesB {
			countB++
			if len(ts) != m {
				okSizes = false
			}
		}
		return true
	})
	if countA != 1 || countB != 1 {
		return nil, fmt.Sprintf("condition 2: endpoint witness counts %d/%d, want 1/1", countA, countB)
	}
	if !okSizes {
		return nil, "condition 2: endpoint witness does not use m distinct tuples"
	}

	// Condition 3: no endogenous tuple's constants form a strict subset of
	// either endpoint's constants.
	for _, t := range d.AllTuples() {
		if q.IsExogenous(t.Rel) {
			continue
		}
		cs := t.ConstSet()
		if strictSubset(cs, aset) || strictSubset(cs, bset) {
			return nil, fmt.Sprintf("condition 3: endogenous %s inside an endpoint", d.TupleString(t))
		}
	}

	// Condition 4: exogenous projections of either endpoint must be
	// mirrored for the other. The definition's text names only the a → b
	// direction, but the endpoints play symmetric roles everywhere else
	// and the paper's own Example 61 applies the condition both ways
	// ("condition [4] requires that Bx(1) and Ax(3) be added"), so the
	// checker enforces both directions.
	for _, dir := range [2][2]db.Tuple{{a, b}, {b, a}} {
		from, to := dir[0], dir[1]
		for _, t := range d.AllTuples() {
			if !q.IsExogenous(t.Rel) {
				continue
			}
			for _, j := range indexVectors(int(from.Arity), int(t.Arity)) {
				match := true
				for p, idx := range j {
					if t.Args[p] != from.Args[idx] {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				mirror := make([]db.Value, t.Arity)
				for p, idx := range j {
					mirror[p] = to.Args[idx]
				}
				if !d.Has(db.NewTuple(t.Rel, mirror...)) {
					return nil, fmt.Sprintf("condition 4: exogenous %s not mirrored for the other endpoint", d.TupleString(t))
				}
			}
		}
	}

	// Condition 5: the or-property. ρ drops by exactly one when removing
	// a, b, or both.
	base, err := resilience.Exact(q, d)
	if err != nil {
		return nil, "condition 5: query unbreakable"
	}
	c := base.Rho
	for _, removal := range [][]db.Tuple{{a}, {b}, {a, b}} {
		mark := d.RestoreMark()
		for _, t := range removal {
			d.Delete(t)
		}
		res, err := resilience.Exact(q, d)
		d.RestoreTo(mark)
		if err != nil || res.Rho != c-1 {
			got := -1
			if err == nil {
				got = res.Rho
			}
			return nil, fmt.Sprintf("condition 5: ρ after removing %d endpoint(s) is %d, want %d", len(removal), got, c-1)
		}
	}
	return &Certificate{A: a, B: b, Rho: c, DB: d}, ""
}

// subset reports s1 ⊆ s2.
func subset(s1, s2 map[db.Value]bool) bool {
	for v := range s1 {
		if !s2[v] {
			return false
		}
	}
	return true
}

func strictSubset(s1, s2 map[db.Value]bool) bool {
	return len(s1) < len(s2) && subset(s1, s2)
}

// indexVectors enumerates all vectors of length w over indexes [0, arity)
// (the paper's subvector notation x_j allows arbitrary index tuples).
func indexVectors(arity, w int) [][]int {
	var out [][]int
	cur := make([]int, w)
	var rec func(p int)
	rec = func(p int) {
		if p == w {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < arity; i++ {
			cur[p] = i
			rec(p + 1)
		}
	}
	rec(0)
	return out
}
