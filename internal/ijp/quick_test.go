package ijp

import (
	"testing"
	"testing/quick"

	"repro/internal/cq"
)

// TestQuickPartitionsAreCanonicalRGS: every emitted partition is a valid
// restricted growth string (block ids appear in first-use order, starting
// at 0), which guarantees each set partition is enumerated exactly once.
func TestQuickPartitionsAreCanonicalRGS(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		seen := map[string]bool{}
		valid := true
		partitions(n, func(p []int) bool {
			maxSoFar := -1
			for _, b := range p {
				if b > maxSoFar+1 {
					valid = false
					return false
				}
				if b > maxSoFar {
					maxSoFar = b
				}
			}
			key := ""
			for _, b := range p {
				key += string(rune('a' + b))
			}
			if seen[key] {
				valid = false
				return false
			}
			seen[key] = true
			return true
		})
		if !valid {
			return false
		}
		// Count must be the Bell number, cross-checked by recurrence.
		return len(seen) == bell(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// bell computes Bell numbers via the Bell triangle.
func bell(n int) int {
	row := []int{1}
	for i := 1; i < n; i++ {
		next := make([]int, len(row)+1)
		next[0] = row[len(row)-1]
		for j := 0; j < len(row); j++ {
			next[j+1] = next[j] + row[j]
		}
		row = next
	}
	return row[len(row)-1]
}

func TestQuotientDBShape(t *testing.T) {
	// One copy with the identity partition is the canonical database.
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	part := []int{0, 1} // x, y distinct
	d := quotientDB(q, 1, part)
	if d.Rel("R").Len() != 2 || d.Rel("S").Len() != 1 {
		t.Errorf("canonical qvc database wrong: %s", d)
	}
	// Collapsing both variables folds the R tuples together.
	d2 := quotientDB(q, 1, []int{0, 0})
	if d2.Rel("R").Len() != 1 {
		t.Errorf("collapsed database should have one R tuple: %s", d2)
	}
}
