package ijp

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/db"
)

// Search implements the automated IJP hunt of Appendix C.2: for an
// increasing number k of joins, lay out k disjoint canonical witnesses of q
// (one fresh constant per variable per copy) and enumerate all partitions
// of the constants (restricted growth strings — the Bell-number space the
// paper describes, 21147 partitions for the triangle query's 9 constants).
// Each quotient database is tested with the Definition 48 checker.
//
// maxJoins bounds k; maxConsts aborts a level whose partition space would
// be infeasible (Bell numbers grow super-exponentially). Search returns the
// first certificate found, the number of candidate databases tested, and
// whether the space was exhausted.
func Search(q *cq.Query, maxJoins, maxConsts int) (*Certificate, int, bool) {
	tested := 0
	exhausted := true
	nv := q.NumVars()
	for k := 1; k <= maxJoins; k++ {
		n := k * nv
		if n > maxConsts {
			exhausted = false
			break
		}
		var found *Certificate
		partitions(n, func(part []int) bool {
			d := quotientDB(q, k, part)
			tested++
			if cert := Check(q, d); cert != nil {
				found = cert
				return false
			}
			return true
		})
		if found != nil {
			return found, tested, false
		}
	}
	return nil, tested, exhausted
}

// quotientDB builds the database of k canonical witnesses of q with
// constants merged according to the partition (part[i] is the block id of
// constant i; constant i belongs to copy i/nv, variable i%nv).
func quotientDB(q *cq.Query, k int, part []int) *db.Database {
	d := db.New()
	nv := q.NumVars()
	blockName := func(i int) string { return fmt.Sprintf("p%d", part[i]) }
	for copy := 0; copy < k; copy++ {
		for _, a := range q.Atoms {
			names := make([]string, len(a.Args))
			for p, v := range a.Args {
				names[p] = blockName(copy*nv + int(v))
			}
			d.AddNames(a.Rel, names...)
		}
	}
	return d
}

// partitions enumerates all set partitions of {0..n-1} via restricted
// growth strings, calling fn with the block assignment; fn returning false
// stops the enumeration.
func partitions(n int, fn func([]int) bool) {
	a := make([]int, n)
	var rec func(i, maxBlock int) bool
	rec = func(i, maxBlock int) bool {
		if i == n {
			return fn(a)
		}
		for b := 0; b <= maxBlock+1; b++ {
			a[i] = b
			nm := maxBlock
			if b > maxBlock {
				nm = b
			}
			if !rec(i+1, nm) {
				return false
			}
		}
		return true
	}
	rec(0, -1)
}

// CountPartitions returns the Bell number B(n) by direct enumeration (for
// tests and for reporting search-space sizes; the paper quotes B(9)=21147).
func CountPartitions(n int) int {
	count := 0
	partitions(n, func([]int) bool {
		count++
		return true
	})
	return count
}
