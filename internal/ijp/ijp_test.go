package ijp

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/resilience"
	"repro/internal/vertexcover"
)

// example58DB is the paper's IJP for qvc: D = {R(1), S(1,2), R(2)}.
func example58() (*cq.Query, *db.Database) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	d := db.New()
	d.AddNames("R", "1")
	d.AddNames("S", "1", "2")
	d.AddNames("R", "2")
	return q, d
}

// example59 is the paper's IJP for the triangle query (Figure 18):
// D = {R(1,2), R(4,2), R(4,5), S(2,3), S(5,3), T(3,1), T(3,4)}.
func example59() (*cq.Query, *db.Database) {
	q := cq.MustParse("qtriangle :- R(x,y), S(y,z), T(z,x)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "4", "2")
	d.AddNames("R", "4", "5")
	d.AddNames("S", "2", "3")
	d.AddNames("S", "5", "3")
	d.AddNames("T", "3", "1")
	d.AddNames("T", "3", "4")
	return q, d
}

// example60 is the paper's IJP for z5 (Figure 19): 21 tuples, ρ = 4.
func example60() (*cq.Query, *db.Database) {
	q := cq.MustParse("z5 :- A(x), R(x,y), R(y,z), R(z,z)")
	d := db.New()
	for _, a := range []string{"1", "4", "5", "9", "13"} {
		d.AddNames("A", a)
	}
	pairs := [][2]string{
		{"1", "2"}, {"2", "2"}, {"2", "3"}, {"3", "3"}, {"4", "1"}, {"5", "2"},
		{"5", "6"}, {"6", "7"}, {"7", "7"}, {"8", "7"}, {"9", "8"},
		{"1", "10"}, {"10", "11"}, {"11", "11"}, {"12", "11"}, {"13", "12"},
	}
	for _, p := range pairs {
		d.AddNames("R", p[0], p[1])
	}
	return q, d
}

func TestExample58QvcIJP(t *testing.T) {
	q, d := example58()
	cert := Check(q, d)
	if cert == nil {
		t.Fatal("paper's qvc IJP not recognized")
	}
	if cert.Rho != 1 {
		t.Errorf("ρ = %d, want 1", cert.Rho)
	}
	if cert.A.Rel != "R" || cert.B.Rel != "R" {
		t.Errorf("endpoints should be R-tuples, got %s/%s", cert.A.Rel, cert.B.Rel)
	}
}

func TestExample59TriangleIJP(t *testing.T) {
	q, d := example59()
	one := d.Const("1")
	two := d.Const("2")
	four := d.Const("4")
	five := d.Const("5")
	a := db.NewTuple("R", one, two)
	b := db.NewTuple("R", four, five)
	cert, reason := CheckPair(q, d, a, b)
	if cert == nil {
		t.Fatalf("paper's triangle IJP rejected: %s", reason)
	}
	if cert.Rho != 2 {
		t.Errorf("ρ = %d, want 2 (paper's condition 5)", cert.Rho)
	}
}

func TestExample60Z5IJPErratum(t *testing.T) {
	// ERRATUM (documented in EXPERIMENTS.md): the database of the paper's
	// Example 60, as printed, does NOT satisfy Definition 48. Conditions
	// 1-4 hold and ρ(D) = 4 and removing A(9) gives 3 as claimed, but
	// removing A(13) leaves ρ = 4: the witness (5,2,3) =
	// {A(5),R(5,2),R(2,3),R(3,3)} is not covered by the paper's claimed
	// contingency set {A(1),R(2,2),R(7,7)}. This test pins the measured
	// behaviour.
	q, d := example60()
	res, err := resilience.Exact(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho != 4 {
		t.Fatalf("base ρ = %d, paper says 4", res.Rho)
	}
	nine := db.NewTuple("A", d.Const("9"))
	thirteen := db.NewTuple("A", d.Const("13"))
	mark := d.RestoreMark()
	d.Delete(nine)
	afterNine, _ := resilience.Exact(q, d)
	d.RestoreTo(mark)
	if afterNine.Rho != 3 {
		t.Errorf("ρ after removing A(9) = %d, paper says 3", afterNine.Rho)
	}
	d.Delete(thirteen)
	afterThirteen, _ := resilience.Exact(q, d)
	d.RestoreTo(mark)
	if afterThirteen.Rho != 4 {
		t.Errorf("ρ after removing A(13) = %d; the erratum expects 4 (paper claims 3)", afterThirteen.Rho)
	}
	cert, reason := CheckPair(q, d, nine, thirteen)
	if cert != nil {
		t.Error("CheckPair accepted the example; the erratum expects a condition 5 failure")
	}
	if !contains(reason, "condition 5") {
		t.Errorf("expected condition 5 failure, got: %s", reason)
	}
}

func TestExample61Condition4Failure(t *testing.T) {
	// Example 61: a PTIME query with two repeated relations where the
	// candidate canonical database fails condition 4 (exogenous mirroring).
	q := cq.MustParse("q :- A(x)^x, R(x), S(x,y), S(z,y), R(z), B(z)^x")
	d := db.New()
	d.AddNames("R", "1")
	d.AddNames("A", "1")
	d.AddNames("S", "1", "2")
	d.AddNames("S", "3", "2")
	d.AddNames("R", "3")
	d.AddNames("B", "3")
	a := db.NewTuple("R", d.Const("1"))
	b := db.NewTuple("R", d.Const("3"))
	cert, reason := CheckPair(q, d, a, b)
	if cert != nil {
		t.Fatal("Example 61's database must NOT form an IJP")
	}
	if !contains(reason, "condition 4") {
		t.Errorf("expected condition 4 failure, got: %s", reason)
	}
}

func TestCheckRejectsComparableEndpoints(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "2")
	a := db.NewTuple("R", d.Const("1"), d.Const("2"))
	b := db.NewTuple("R", d.Const("2"), d.Const("2"))
	if cert, _ := CheckPair(q, d, a, b); cert != nil {
		t.Error("comparable constant sets must violate condition 1")
	}
}

func TestChainCanonicalIJP(t *testing.T) {
	// The 2-tuple canonical chain database is itself an IJP for qchain.
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	cert := Check(q, d)
	if cert == nil {
		t.Fatal("canonical chain database should form an IJP")
	}
	if cert.Rho != 1 {
		t.Errorf("ρ = %d, want 1", cert.Rho)
	}
}

func TestSearchFindsQvcIJP(t *testing.T) {
	q := cq.MustParse("qvc :- R(x), S(x,y), R(y)")
	cert, tested, _ := Search(q, 1, 6)
	if cert == nil {
		t.Fatalf("search failed after %d candidates", tested)
	}
}

func TestSearchFindsChainIJP(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	cert, tested, _ := Search(q, 1, 6)
	if cert == nil {
		t.Fatalf("search failed after %d candidates", tested)
	}
	if cert.Rho < 1 {
		t.Errorf("ρ = %d, want >= 1", cert.Rho)
	}
}

func TestSearchExhaustsEasyPermutation(t *testing.T) {
	// qperm is PTIME; per the paper's conjecture no IJP should exist.
	// Search its 1-copy space exhaustively (Bell(2)=2... vars x,y => 2
	// consts) and 2-copy space (Bell(4)=15).
	q := cq.MustParse("qperm :- R(x,y), R(y,x)")
	cert, _, exhausted := Search(q, 2, 6)
	if cert != nil {
		t.Fatalf("found an IJP for the PTIME query qperm: %v — contradicts Conjecture 49", cert)
	}
	if !exhausted {
		t.Error("search space should have been exhausted")
	}
}

func TestCountPartitionsBellNumbers(t *testing.T) {
	want := map[int]int{1: 1, 2: 2, 3: 5, 4: 15, 5: 52, 9: 21147}
	for n, b := range want {
		if n > 6 && testing.Short() {
			continue
		}
		if got := CountPartitions(n); got != b {
			t.Errorf("B(%d) = %d, want %d", n, got, b)
		}
	}
}

func TestVCReductionQvc(t *testing.T) {
	q, d := example58()
	cert := Check(q, d)
	if cert == nil {
		t.Fatal("no IJP")
	}
	checkVCReduction(t, q, cert, 3)
}

func TestVCReductionTriangle(t *testing.T) {
	q, d := example59()
	a := db.NewTuple("R", d.Const("1"), d.Const("2"))
	b := db.NewTuple("R", d.Const("4"), d.Const("5"))
	cert, reason := CheckPair(q, d, a, b)
	if cert == nil {
		t.Fatal(reason)
	}
	checkVCReduction(t, q, cert, 1)
}

func TestVCReductionChain(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	cert := Check(q, d)
	if cert == nil {
		t.Fatal("no IJP")
	}
	checkVCReduction(t, q, cert, 3)
}

// checkVCReduction calibrates the per-edge constant on K2 and verifies
// ρ(D_G) = VC(G) + β|E| on a set of small graphs — the operational content
// of Conjecture 49 / Figure 8.
func checkVCReduction(t *testing.T, q *cq.Query, cert *Certificate, copies int) {
	t.Helper()
	k2 := vertexcover.NewGraph(2)
	k2.AddEdge(0, 1)
	red, err := BuildVCReduction(q, cert, k2, copies)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resilience.Exact(q, red.DB)
	if err != nil {
		t.Fatal(err)
	}
	beta := res.Rho - 1
	if beta < 0 {
		t.Fatalf("calibration gave β=%d", beta)
	}
	graphs := []*vertexcover.Graph{
		vertexcover.Path(3),
		vertexcover.Cycle(4),
		vertexcover.Star(4),
		vertexcover.Complete(3),
	}
	rng := rand.New(rand.NewSource(61))
	graphs = append(graphs, vertexcover.RandomGraph(rng, 5, 0.5))
	for gi, g := range graphs {
		if g.NumEdges() == 0 {
			continue
		}
		red, err := BuildVCReduction(q, cert, g, copies)
		if err != nil {
			t.Fatal(err)
		}
		res, err := resilience.Exact(q, red.DB)
		if err != nil {
			t.Fatal(err)
		}
		vc, _ := g.MinVertexCover()
		if res.Rho != vc+beta*g.NumEdges() {
			t.Errorf("graph %d: ρ=%d, want VC(%d) + β(%d)·|E|(%d) = %d",
				gi, res.Rho, vc, beta, g.NumEdges(), vc+beta*g.NumEdges())
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
