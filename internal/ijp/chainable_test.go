package ijp

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/resilience"
	"repro/internal/vertexcover"
)

// TestSearchChainableFindsGadgets: for these hard queries the hunt must
// deliver a fully validated VC reduction within the k ≤ 2 quotient space.
func TestSearchChainableFindsGadgets(t *testing.T) {
	cases := []struct {
		text string
		beta int
	}{
		{"qvc :- R(x), S(x,y), R(y)", 1},
		{"qchain :- R(x,y), R(y,z)", 1},
		{"q3chain :- R(x,y), R(y,z), R(z,w)", 1},
		{"z4 :- R(x,x), R(x,y), S(x,y), R(y,y)", 1},
	}
	for _, c := range cases {
		q := cq.MustParse(c.text)
		cert, tested, _ := SearchChainable(q, 2, 8)
		if cert == nil {
			t.Errorf("%s: no chainable IJP found (%d tested)", q.Name, tested)
			continue
		}
		if cert.Beta != c.beta {
			t.Errorf("%s: β=%d, want %d", q.Name, cert.Beta, c.beta)
		}
		// Out-of-battery validation: a graph the calibration never saw.
		g := vertexcover.Cycle(6)
		red, err := BuildVCReduction(q, cert.Certificate, g, cert.Copies)
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		res, err := resilience.Exact(q, red.DB)
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		vc, _ := g.MinVertexCover()
		if want := vc + cert.Beta*g.NumEdges(); res.Rho != want {
			t.Errorf("%s on C6: ρ=%d, want %d", q.Name, res.Rho, want)
		}
	}
}

// TestSearchChainablePTimeExhausts: the PTIME permutation queries must
// exhaust their quotient spaces without a certificate — the operational
// direction of the paper's conjecture that easy queries admit no IJP.
func TestSearchChainablePTimeExhausts(t *testing.T) {
	for _, text := range []string{
		"qperm :- R(x,y), R(y,x)",
		"qAperm :- A(x), R(x,y), R(y,x)",
	} {
		q := cq.MustParse(text)
		cert, _, exhausted := SearchChainable(q, 2, 8)
		if cert != nil {
			t.Errorf("%s: unexpectedly found %v", q.Name, cert.Certificate)
		}
		if !exhausted {
			t.Errorf("%s: space not exhausted", q.Name)
		}
	}
}

// TestSearchAllEnumeratesMultipleCertificates: SearchAll must surface more
// than the first certificate (SearchChainable depends on this to skip
// non-composing ones).
func TestSearchAllEnumeratesMultipleCertificates(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	count := 0
	SearchAll(q, 2, 8, func(*Certificate) bool {
		count++
		return true
	})
	if count < 2 {
		t.Fatalf("SearchAll found %d certificates, want at least 2", count)
	}
}

// TestVerifyOrPropertyRejectsNonComposingCertificate pins the phenomenon
// that motivates SearchChainable: qAC3conf's first quotient IJP passes
// Definition 48 but fails the chained or-property.
func TestVerifyOrPropertyRejectsNonComposingCertificate(t *testing.T) {
	q := cq.MustParse("qAC3conf :- A(x), R(x,y), R(z,y), R(z,w), C(w)")
	cert, _, _ := Search(q, 1, 4)
	if cert == nil {
		t.Fatal("expected a (non-chainable) IJP for qAC3conf at k=1")
	}
	if _, err := VerifyOrProperty(q, cert, 3, CalibrationGraphs()); err == nil {
		t.Fatal("expected the chained or-property to fail for the k=1 certificate")
	}
}

// TestLiteralDef48NotSufficient pins the repository's headline IJP
// finding: the PTIME query qSwx3perm-R (Proposition 44) admits a database
// satisfying Definition 48 as literally stated — both endpoints share the
// single witness, exactly as in the paper's own Example 58 — yet no
// certificate in its quotient space composes under chaining. Conjecture 49
// therefore needs the chained or-property, not Definition 48 alone.
func TestLiteralDef48NotSufficient(t *testing.T) {
	q := cq.MustParse("qSwx :- S(w,x), R(x,y), R(y,z), R(z,y)")
	cert, _, _ := Search(q, 2, 8)
	if cert == nil {
		t.Fatal("expected a literal Definition 48 certificate for qSwx3perm-R")
	}
	chain, _, exhausted := SearchChainable(q, 2, 8)
	if chain != nil {
		t.Fatalf("PTIME query got a chainable hardness gadget: %v", chain.Certificate)
	}
	if !exhausted {
		t.Error("chainable search should exhaust the k≤2 space")
	}
}

func TestVerifyOrPropertyInputValidation(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	cert, _, _ := Search(q, 2, 8)
	if cert == nil {
		t.Fatal("no IJP for qchain")
	}
	if _, err := VerifyOrProperty(q, cert, 3, nil); err == nil {
		t.Error("want error on empty graph battery")
	}
	// First graph must be single-edge.
	bad := []*vertexcover.Graph{vertexcover.Path(3)}
	if _, err := VerifyOrProperty(q, cert, 3, bad); err == nil {
		t.Error("want error when first calibration graph has two edges")
	}
}
