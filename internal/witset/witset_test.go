package witset

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
)

func chainInstance(t *testing.T) (*cq.Query, *db.Database) {
	t.Helper()
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	d := db.New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "2", "3")
	d.AddNames("R", "3", "3")
	return q, d
}

func TestBuildChain(t *testing.T) {
	q, d := chainInstance(t)
	inst, err := Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Unbreakable() {
		t.Fatal("chain instance reported unbreakable")
	}
	// Witnesses: 1→2→3, 2→3→3, 3→3→3.
	if inst.NumWitnesses() != 3 {
		t.Fatalf("NumWitnesses = %d, want 3", inst.NumWitnesses())
	}
	if inst.NumTuples() != 3 {
		t.Fatalf("NumTuples = %d, want 3", inst.NumTuples())
	}
	// Ids must round-trip and match the eval-level witness sets.
	sets, _ := eval.EndoWitnessSets(q, d)
	if len(sets) != len(inst.Rows()) {
		t.Fatalf("rows = %d, eval sets = %d", len(inst.Rows()), len(sets))
	}
	for i, row := range inst.Rows() {
		got := inst.TupleSet(row)
		if !reflect.DeepEqual(got, sets[i]) {
			t.Fatalf("row %d projects to %v, eval says %v", i, got, sets[i])
		}
		for _, id := range row {
			back, ok := inst.ID(inst.Tuple(id))
			if !ok || back != id {
				t.Fatalf("id %d does not round-trip", id)
			}
		}
	}
}

func TestBuildUnbreakable(t *testing.T) {
	q := cq.MustParse("q :- R(x,y)^x")
	d := db.New()
	d.AddNames("R", "a", "b")
	inst, err := Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Unbreakable() {
		t.Fatal("all-exogenous witness not reported unbreakable")
	}
}

func TestBuildKeepFilter(t *testing.T) {
	q, d := chainInstance(t)
	one := d.Const("1")
	inst, err := Build(context.Background(), q, d, func(w eval.Witness) bool {
		return w[0] == one // only the witness starting at constant 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumWitnesses() != 1 {
		t.Fatalf("NumWitnesses = %d, want 1 after filtering", inst.NumWitnesses())
	}
}

func TestBuildCancellation(t *testing.T) {
	// Enough witnesses that the throttled poller actually fires.
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(1))
	d := datagen.Random(rng, q, 20, 400, 0.3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, q, d, nil); err != context.Canceled {
		t.Fatalf("Build on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestNewFamilyNormalization(t *testing.T) {
	raw := [][]int32{
		{2, 0, 1},
		{0, 1, 2},    // duplicate of the first (order-insensitive)
		{1, 0},       // subset: eliminates both rows above
		{3, 3, 4},    // within-row duplicate collapses
		{0, 1, 2, 4}, // superset of {0,1}
	}
	f := NewFamily(raw, 5, false)
	want := [][]int32{{0, 1}, {3, 4}}
	if !reflect.DeepEqual(f.Rows, want) {
		t.Fatalf("normalized rows = %v, want %v", f.Rows, want)
	}
	for i, row := range f.Rows {
		if f.Bits[i].Count() != len(row) {
			t.Fatalf("row %d: bitset count %d != %d elements", i, f.Bits[i].Count(), len(row))
		}
		for _, e := range row {
			if !f.Bits[i].Has(e) {
				t.Fatalf("row %d: bitset missing element %d", i, e)
			}
			found := false
			for _, si := range f.Occ[e] {
				if int(si) == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("occurrence list of %d misses row %d", e, i)
			}
		}
	}

	full := NewFamily(raw, 5, true)
	if len(full.Rows) != len(raw) {
		t.Fatalf("keepSupersets dropped rows: %d of %d kept", len(full.Rows), len(raw))
	}
}

func TestFamilyCachedPerVariant(t *testing.T) {
	q, d := chainInstance(t)
	inst, err := Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Family(false) != inst.Family(false) {
		t.Fatal("minimized family not cached")
	}
	if inst.Family(true) != inst.Family(true) {
		t.Fatal("raw family not cached")
	}
	if inst.Family(false) == inst.Family(true) {
		t.Fatal("variants must be distinct families")
	}
}

func TestBitsOps(t *testing.T) {
	const n = 200 // multiple words
	a, b := NewBits(n), NewBits(n)
	for i := int32(0); i < n; i += 3 {
		a.Set(i)
	}
	for i := int32(0); i < n; i += 6 {
		b.Set(i)
	}
	if !SubsetOf(b, a) {
		t.Fatal("multiples of 6 not a subset of multiples of 3")
	}
	if SubsetOf(a, b) {
		t.Fatal("multiples of 3 reported subset of multiples of 6")
	}
	if Disjoint(a, b) {
		t.Fatal("overlapping sets reported disjoint")
	}
	c := NewBits(n)
	c.Set(1)
	c.Set(199) // 1 and 199 are not multiples of 3
	if !Disjoint(a, c) {
		t.Fatal("disjoint sets reported overlapping")
	}
	c.Set(198) // 198 is
	if Disjoint(a, c) {
		t.Fatal("overlap across word boundary missed")
	}
	c.Unset(198)
	c.Unset(199)
	if c.Count() != 1 || !c.Has(1) || c.Has(199) {
		t.Fatalf("after Unset: count=%d", c.Count())
	}
	c.Or(b)
	if c.Count() != b.Count()+1 {
		t.Fatalf("Or: count=%d, want %d", c.Count(), b.Count()+1)
	}
	c.Clear()
	if c.Count() != 0 {
		t.Fatal("Clear left bits set")
	}
	if !Equal(NewBits(n), c) {
		t.Fatal("cleared set not equal to empty set")
	}
}
