package witset

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/cq"
	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/eval"
)

// BuildOptions configures BuildWith.
type BuildOptions struct {
	// Keep filters witnesses (nil keeps all). A non-nil filter forces the
	// sequential build: the callback is caller-supplied and not assumed
	// safe to run from several goroutines.
	Keep func(eval.Witness) bool
	// Workers bounds the sharded enumeration worker pool. <= 0 means
	// min(4, GOMAXPROCS); 1 disables sharding.
	Workers int
}

// BuildInfo reports how a build ran.
type BuildInfo struct {
	// Shards is the number of enumeration shards used (1 = sequential).
	Shards int
}

// BuildWith is Build with options: it enumerates the witnesses of q over d
// under a cost-based join plan and interns their endogenous tuple sets,
// sharding the enumeration across Workers goroutines when profitable. The
// resulting instance — tuple ids, row contents, row order, unbreakable
// flag — is byte-identical regardless of the worker count; see
// mergeShards for why. It polls ctx during enumeration and returns
// ctx.Err() once cancelled.
//
// BuildWith is the single place the database is read; it freezes d's
// relation indexes up front so the instance can later be shared with code
// that still holds d, and so every shard sees the same index state.
func BuildWith(ctx context.Context, q *cq.Query, d *db.Database, opts BuildOptions) (*Instance, BuildInfo, error) {
	d.Freeze()
	plan := eval.NewPlan(q, d)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	if n := plan.NumFirstCandidates(); workers > n {
		workers = n
	}
	if opts.Keep != nil || workers <= 1 {
		inst, err := buildSequential(ctx, q, plan, opts.Keep)
		return inst, BuildInfo{Shards: 1}, err
	}
	inst, err := buildParallel(ctx, q, plan, workers)
	return inst, BuildInfo{Shards: workers}, err
}

// tupMemo caches the last (tuple, id) interned for one atom position. In a
// backtracking join the tuple matched by an outer atom is constant across
// the whole subtree below it, so this one-entry memo absorbs almost every
// universe lookup for the outer atoms.
type tupMemo struct {
	t  db.Tuple
	id int32
	ok bool
}

// builder accumulates one witness universe and its rows. In shard mode the
// rows are kept in tuple-comparison order (what mergeShards needs to
// replay the global interning); otherwise ids are sorted numerically, the
// Instance row invariant.
type builder struct {
	endo   []bool // per atom: relation is endogenous
	tuples []db.Tuple
	idOf   map[db.Tuple]int32
	rows   [][]int32
	// unbreakable records a witness with no endogenous tuples; enumeration
	// stops there (add returns false), leaving rows partial.
	unbreakable bool

	memo []tupMemo
	// slab is the current arena block; rows are capacity-clamped subslices
	// of it, so a build does one slice allocation per block instead of one
	// per witness.
	slab []int32
	// st/sid/shave are the per-witness scratch: the distinct endogenous
	// tuples (at most one per atom), their ids, and whether the id is
	// already known.
	st    []db.Tuple
	sid   []int32
	shave []bool

	poll      *ctxpoll.Poller
	keep      func(eval.Witness) bool
	shardMode bool
}

func newBuilder(q *cq.Query, keep func(eval.Witness) bool, poll *ctxpoll.Poller, shardMode bool) *builder {
	m := len(q.Atoms)
	endo := make([]bool, m)
	for i := range q.Atoms {
		endo[i] = !q.IsExogenous(q.Atoms[i].Rel)
	}
	return &builder{
		endo:      endo,
		idOf:      map[db.Tuple]int32{},
		memo:      make([]tupMemo, m),
		st:        make([]db.Tuple, m),
		sid:       make([]int32, m),
		shave:     make([]bool, m),
		poll:      poll,
		keep:      keep,
		shardMode: shardMode,
	}
}

// add interns one witness. tup is the per-atom matched tuple slice from the
// join plan. The id-assignment order is the contract ApplyDelta and the
// shard merge rely on: within a row, new tuples receive ids in
// tuple-comparison order; rows append in enumeration order.
func (b *builder) add(w eval.Witness, tup []db.Tuple) bool {
	if b.poll.Cancelled() {
		return false
	}
	if b.keep != nil && !b.keep(w) {
		return true
	}
	// Collect the distinct endogenous tuples into the fixed scratch. A
	// witness has at most one tuple per atom, so a linear scan beats the
	// per-witness map the old build allocated.
	nd := 0
	needIntern := false
	for i, t := range tup {
		if !b.endo[i] {
			continue
		}
		dup := false
		for j := 0; j < nd; j++ {
			if b.st[j] == t {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		var id int32
		have := false
		if m := &b.memo[i]; m.ok && m.t == t {
			id, have = m.id, true
		} else if g, ok := b.idOf[t]; ok {
			id, have = g, true
			b.memo[i] = tupMemo{t: t, id: g, ok: true}
		}
		b.st[nd], b.sid[nd], b.shave[nd] = t, id, have
		if !have {
			needIntern = true
		}
		nd++
	}
	if nd == 0 {
		b.unbreakable = true
		return false
	}
	if needIntern || b.shardMode {
		b.sortScratchByTuple(nd)
		for j := 0; j < nd; j++ {
			if !b.shave[j] {
				id := int32(len(b.tuples))
				b.idOf[b.st[j]] = id
				b.tuples = append(b.tuples, b.st[j])
				b.sid[j] = id
			}
		}
	}
	row := b.arenaRow(nd)
	copy(row, b.sid[:nd])
	if !b.shardMode {
		// Instance rows are numerically sorted id sets. (When nothing was
		// interned the scratch is still in atom order — sorting the ids
		// directly lands in the same place.)
		insertionSortIDs(row)
	}
	b.rows = append(b.rows, row)
	return true
}

// sortScratchByTuple insertion-sorts the first n scratch entries by
// db.CompareTuples, keeping st/sid/shave aligned. n is at most the atom
// count, so insertion sort wins over anything allocating.
func (b *builder) sortScratchByTuple(n int) {
	for i := 1; i < n; i++ {
		t, id, have := b.st[i], b.sid[i], b.shave[i]
		j := i - 1
		for j >= 0 && db.CompareTuples(b.st[j], t) > 0 {
			b.st[j+1], b.sid[j+1], b.shave[j+1] = b.st[j], b.sid[j], b.shave[j]
			j--
		}
		b.st[j+1], b.sid[j+1], b.shave[j+1] = t, id, have
	}
}

const slabMin = 1024

// arenaRow carves an n-id row out of the current slab, growing the arena
// geometrically when the block is exhausted. Earlier rows keep referencing
// their old blocks; capacity-clamping stops any append through a row from
// bleeding into its neighbour.
func (b *builder) arenaRow(n int) []int32 {
	if len(b.slab)+n > cap(b.slab) {
		sz := 2 * cap(b.slab)
		if sz < slabMin {
			sz = slabMin
		}
		for sz < n {
			sz *= 2
		}
		b.slab = make([]int32, 0, sz)
	}
	off := len(b.slab)
	b.slab = b.slab[:off+n]
	return b.slab[off : off+n : off+n]
}

func insertionSortIDs(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func buildSequential(ctx context.Context, q *cq.Query, plan *eval.Plan, keep func(eval.Witness) bool) (*Instance, error) {
	b := newBuilder(q, keep, ctxpoll.New(ctx), false)
	plan.ForEach(b.add)
	if err := b.poll.Err(); err != nil {
		return nil, err
	}
	return &Instance{query: q, tuples: b.tuples, idOf: b.idOf, rows: b.rows, unbreakable: b.unbreakable}, nil
}

// buildParallel partitions the first join step's candidate tuples into
// contiguous ranges, one per worker; each worker enumerates its range with
// private scratch into a shard-local universe, and mergeShards splices the
// shards back together. Shards after one that found an unbreakable witness
// do throwaway work (the merge truncates there), which is acceptable
// because unbreakable instances terminate enumeration almost immediately
// in the sequential case too.
func buildParallel(ctx context.Context, q *cq.Query, plan *eval.Plan, workers int) (*Instance, error) {
	n := plan.NumFirstCandidates()
	shards := make([]*builder, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		b := newBuilder(q, nil, ctxpoll.New(ctx), true)
		shards[i] = b
		lo, hi := i*n/workers, (i+1)*n/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan.ForEachRange(lo, hi, b.add)
		}()
	}
	wg.Wait()
	for _, sb := range shards {
		if err := sb.poll.Err(); err != nil {
			return nil, err
		}
	}
	return mergeShards(q, shards), nil
}

// mergeShards replays the sequential build from the shard outputs.
//
// Why the result is byte-identical to buildSequential: the shard ranges
// partition the first step's candidate list in order, so concatenating the
// shards' witness streams in shard order is exactly the sequential
// enumeration order. The sequential build assigns ids by first occurrence,
// visiting each row's distinct tuples in tuple-comparison order; shard
// rows are stored in precisely that element order (shardMode), so walking
// shard rows in order and interning unseen tuples as they appear assigns
// every tuple the same id the sequential build would. Rows then get the
// numeric id sort the Instance invariant requires. A shard that stopped at
// an unbreakable witness holds the rows that preceded it; the merge stops
// after that shard, matching the sequential early exit.
func mergeShards(q *cq.Query, shards []*builder) *Instance {
	totalRows, totalIDs, localTuples := 0, 0, 0
	for _, sb := range shards {
		totalRows += len(sb.rows)
		localTuples += len(sb.tuples)
		for _, r := range sb.rows {
			totalIDs += len(r)
		}
		if sb.unbreakable {
			break
		}
	}
	// localTuples double-counts tuples seen by several shards, but as a map
	// size hint an overestimate just avoids rehashing.
	inst := &Instance{query: q, idOf: make(map[db.Tuple]int32, localTuples)}
	inst.rows = make([][]int32, 0, totalRows)
	slab := make([]int32, 0, totalIDs)
	for _, sb := range shards {
		// remap is the shard-local id -> global id table (-1 = not yet
		// resolved); local ids are dense, so a flat slice beats a map.
		remap := make([]int32, len(sb.tuples))
		for i := range remap {
			remap[i] = -1
		}
		for _, row := range sb.rows {
			off := len(slab)
			slab = slab[:off+len(row)]
			out := slab[off : off+len(row) : off+len(row)]
			for j, lid := range row {
				gid := remap[lid]
				if gid < 0 {
					t := sb.tuples[lid]
					g, ok := inst.idOf[t]
					if !ok {
						g = int32(len(inst.tuples))
						inst.idOf[t] = g
						inst.tuples = append(inst.tuples, t)
					}
					remap[lid] = g
					gid = g
				}
				out[j] = gid
			}
			insertionSortIDs(out)
			inst.rows = append(inst.rows, out)
		}
		if sb.unbreakable {
			inst.unbreakable = true
			break
		}
	}
	return inst
}
