package witset

import "math/bits"

// Bits is a fixed-capacity bitset over tuple ids, stored as packed words.
// All binary operations require both operands to come from the same
// universe (same NewBits size); this is not checked.
type Bits []uint64

// NewBits returns an empty bitset with capacity for n elements.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set adds element i.
func (b Bits) Set(i int32) { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }

// Unset removes element i.
func (b Bits) Unset(i int32) { b[uint32(i)>>6] &^= 1 << (uint32(i) & 63) }

// Has reports membership of element i.
func (b Bits) Has(i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }

// Clear empties the set. It costs one word-store per 64 universe elements,
// which is what lets solver scratch space be reset per call instead of
// allocating per-node maps.
func (b Bits) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the population count.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Or adds every element of a to b.
func (b Bits) Or(a Bits) {
	for i, w := range a {
		b[i] |= w
	}
}

// SubsetOf reports a ⊆ b word-parallel: a &^ b must be all-zero.
func SubsetOf(a, b Bits) bool {
	for i, w := range a {
		if w&^b[i] != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports a ∩ b = ∅ word-parallel.
func Disjoint(a, b Bits) bool {
	for i, w := range a {
		if w&b[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports a = b.
func Equal(a, b Bits) bool {
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	return true
}
