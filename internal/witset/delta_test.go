package witset

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
)

// canonRows renders an instance's witness rows content-canonically: each
// row becomes its sorted global tuple set, and the multiset of rows is
// sorted. Two instances over the same database are equivalent iff these
// match, regardless of tuple-id assignment or row order.
func canonRows(in *Instance) []string {
	out := make([]string, 0, len(in.Rows()))
	for _, row := range in.Rows() {
		ts := in.TupleSet(row)
		db.SortTuples(ts)
		out = append(out, fmt.Sprint(ts))
	}
	sort.Strings(out)
	return out
}

// componentKeys returns the sorted multiset of content fingerprints of an
// instance's raw components — the decomposition the engine's component
// cache keys and DiffComponents compares.
func componentKeys(t *testing.T, in *Instance) []string {
	t.Helper()
	comps := in.Components()
	keys := make([]string, len(comps))
	for i, c := range comps {
		keys[i] = in.ComponentKey(c)
	}
	sort.Strings(keys)
	return keys
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestApplyDeltaDifferential is the randomized differential suite: a
// delta-maintained instance must be content-equivalent to Build from
// scratch over the post-mutation database — the same witness-row multiset
// and the same unbreakable verdict — across long interleaved
// insert/delete sequences on several query shapes. Row equality is the
// semantic anchor: ρ is a function of the row multiset alone. Kernels are
// NOT compared tuple-for-tuple: domination tie-breaks between
// content-equivalent tuples follow id order, and a scratch build assigns
// ids in discovery order while a delta preserves the base's — both
// kernels are valid, they just pick different representatives. (ρ
// equality across the two pipelines is pinned by the engine-level
// differential test; component-fingerprint stability, which is what the
// component cache relies on, by TestComponentKeysStableAcrossDelta.)
func TestApplyDeltaDifferential(t *testing.T) {
	queries := []string{
		"qchain :- R(x,y), R(y,z)",
		"qtri :- R(x,y), R(y,z), R(z,x)",
		"qconf :- A(x), R(x,y), R(z,y), C(z)",
		"qexo :- A(x), R(x,y)^x",
	}
	ctx := context.Background()
	for qi, qs := range queries {
		q := cq.MustParse(qs)
		rng := rand.New(rand.NewSource(int64(100 + qi)))
		d := db.New()
		rels := relationsOf(q)
		// Seed a random initial state over a small shared domain so joins
		// actually meet.
		for _, r := range rels {
			for i := 0; i < 6; i++ {
				addRandomFact(rng, d, r.name, r.arity)
			}
		}
		inst, err := Build(ctx, q, d, nil)
		if err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 40; step++ {
			batch := randomBatch(rng, d, rels)
			work := d.Clone()
			next, _, err := ApplyDelta(ctx, inst, work, batch)
			if errors.Is(err, ErrNeedRebuild) {
				t.Fatalf("%s step %d: unexpected ErrNeedRebuild for batch %v", qs, step, batch)
			}
			if err != nil {
				t.Fatal(err)
			}
			work.Freeze()
			scratch, err := Build(ctx, q, work, nil)
			if err != nil {
				t.Fatal(err)
			}
			compareInstances(t, qs, step, next, scratch)
			d = work
			if next.Unbreakable() {
				// A partial row set cannot be maintained further; restart the
				// chain from the scratch build like the engine does.
				inst = scratch
			} else {
				inst = next
			}
		}
	}
}

func compareInstances(t *testing.T, qs string, step int, got, want *Instance) {
	t.Helper()
	if got.Unbreakable() != want.Unbreakable() {
		t.Fatalf("%s step %d: delta unbreakable=%v, scratch=%v",
			qs, step, got.Unbreakable(), want.Unbreakable())
	}
	if got.Unbreakable() {
		return // row sets are partial by design; nothing more to compare
	}
	if g, w := canonRows(got), canonRows(want); !equalStrings(g, w) {
		t.Fatalf("%s step %d: delta rows diverge\n delta:   %v\n scratch: %v", qs, step, g, w)
	}
}

type relInfo struct {
	name  string
	arity int
}

func relationsOf(q *cq.Query) []relInfo {
	seen := map[string]int{}
	var out []relInfo
	for _, a := range q.Atoms {
		if _, ok := seen[a.Rel]; !ok {
			seen[a.Rel] = len(a.Args)
			out = append(out, relInfo{name: a.Rel, arity: len(a.Args)})
		}
	}
	return out
}

const deltaTestDomain = 8

func addRandomFact(rng *rand.Rand, d *db.Database, rel string, arity int) {
	args := make([]string, arity)
	for i := range args {
		args[i] = fmt.Sprint(rng.Intn(deltaTestDomain))
	}
	d.AddNames(rel, args...)
}

// randomBatch builds 1–3 mutations against d's current contents: a random
// fact over the query's relations, inserted when absent and deleted when
// present. Batches are applied to a scratch tracking copy so a batch
// never contains a same-tuple no-op conflict.
func randomBatch(rng *rand.Rand, d *db.Database, rels []relInfo) []Mutation {
	tracked := d.Clone()
	n := 1 + rng.Intn(3)
	var out []Mutation
	for len(out) < n {
		r := rels[rng.Intn(len(rels))]
		tup := db.Tuple{Rel: r.name, Arity: uint8(r.arity)}
		for i := 0; i < r.arity; i++ {
			tup.Args[i] = tracked.Const(fmt.Sprint(rng.Intn(deltaTestDomain)))
		}
		if tracked.Has(tup) {
			tracked.Remove(tup)
			out = append(out, Mutation{Tuple: tup})
		} else {
			tracked.AddTuple(tup)
			out = append(out, Mutation{Insert: true, Tuple: tup})
		}
	}
	return out
}

// TestApplyDeltaBaseUnchanged pins the copy-on-write contract: the base
// instance is untouched by a delta application, so in-flight solvers can
// keep reading it.
func TestApplyDeltaBaseUnchanged(t *testing.T) {
	q, d := chainInstance(t)
	inst, err := Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := canonRows(inst)
	nTuples := inst.NumTuples()

	work := d.Clone()
	two, three := work.Const("2"), work.Const("3")
	muts := []Mutation{
		{Insert: true, Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{three, two}}},
		{Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{two, three}}},
	}
	if _, _, err := ApplyDelta(context.Background(), inst, work, muts); err != nil {
		t.Fatal(err)
	}
	if got := canonRows(inst); !equalStrings(got, before) {
		t.Fatalf("base rows changed: %v -> %v", before, got)
	}
	if inst.NumTuples() != nTuples {
		t.Fatalf("base universe grew: %d -> %d", nTuples, inst.NumTuples())
	}
}

// TestApplyDeltaUnbreakable pins the short-circuit: an insert that creates
// a fully-exogenous witness makes the new instance unbreakable.
func TestApplyDeltaUnbreakable(t *testing.T) {
	q := cq.MustParse("q :- R(x,y)^x")
	d := db.New()
	inst, err := Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Unbreakable() {
		t.Fatal("empty instance reported unbreakable")
	}
	work := d.Clone()
	a, b := work.Const("a"), work.Const("b")
	muts := []Mutation{{Insert: true, Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{a, b}}}}
	next, _, err := ApplyDelta(context.Background(), inst, work, muts)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Unbreakable() {
		t.Fatal("all-exogenous witness not reported unbreakable after delta")
	}
	// And the unbreakable result cannot be maintained further.
	if _, _, err := ApplyDelta(context.Background(), next, work.Clone(), muts); !errors.Is(err, ErrNeedRebuild) {
		t.Fatalf("ApplyDelta on unbreakable base: err = %v, want ErrNeedRebuild", err)
	}
}

// TestComponentKeysStableAcrossDelta pins the invariant the engine's
// component cache relies on: a delta localized to one part of the
// hypergraph leaves every untouched component's content fingerprint
// intact, and DiffComponents counts exactly the dirtied components.
func TestComponentKeysStableAcrossDelta(t *testing.T) {
	q := cq.MustParse("qmchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(11))
	d := datagen.ManyComponentChainDB(rng, 20, 3, 10)
	base, err := Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseKeys := componentKeys(t, base)

	// Insert a fresh 3-cycle: three new witnesses forming exactly one new
	// component, leaving every existing component's rows untouched.
	work := d.Clone()
	a, b, c := work.Const("na"), work.Const("nb"), work.Const("nc")
	muts := []Mutation{
		{Insert: true, Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{a, b}}},
		{Insert: true, Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{b, c}}},
		{Insert: true, Tuple: db.Tuple{Rel: "R", Arity: 2, Args: [db.MaxArity]db.Value{c, a}}},
	}
	next, st, err := ApplyDelta(context.Background(), base, work, muts)
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsAdded != 3 {
		t.Fatalf("RowsAdded = %d, want 3", st.RowsAdded)
	}
	nextKeys := componentKeys(t, next)
	if len(nextKeys) != len(baseKeys)+1 {
		t.Fatalf("components: %d -> %d, want exactly one more", len(baseKeys), len(nextKeys))
	}
	have := map[string]int{}
	for _, k := range nextKeys {
		have[k]++
	}
	for _, k := range baseKeys {
		if have[k] == 0 {
			t.Fatalf("untouched component key vanished after delta: %q", k)
		}
		have[k]--
	}
	if got := DiffComponents(base, next); got != 1 {
		t.Fatalf("DiffComponents = %d, want 1", got)
	}
}

// TestKernelCtxCanceled pins the kernel-phase cancellation-latency fix: a
// cancelled context aborts KernelCtx mid-fixpoint instead of running the
// reduction to completion, and the failed attempt is not cached — a later
// call with a live context still succeeds.
func TestKernelCtxCanceled(t *testing.T) {
	q := cq.MustParse("qmchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(7))
	d := datagen.ManyComponentChainDB(rng, 60, 4, 14)
	inst, err := Build(context.Background(), q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inst.KernelCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("KernelCtx(cancelled) = %v, want context.Canceled", err)
	}
	k, err := inst.KernelCtx(context.Background())
	if err != nil || k == nil {
		t.Fatalf("KernelCtx after failed attempt: k=%v err=%v", k, err)
	}
}
