// Package witset is the witness-hypergraph intermediate representation
// shared by every NP-side resilience solver.
//
// The paper reduces resilience ρ(q, D) to minimum hitting set over the
// per-witness sets of endogenous tuples (Definition 1). Every consumer of
// that reduction — the exact branch-and-bound, the CNF/SAT oracle, the
// minimum-contingency enumerator, responsibility, and the engine's solver
// portfolio — needs the same object: the witness family with tuples
// interned into a dense id universe. This package builds that object
// exactly once per (query, database) instance and caches the derived
// facts (unbreakability, the normalized bitset family with occurrence
// lists) so concurrent solvers can share it, and the engine's
// cross-request IR cache can share it across requests.
//
// # Key invariants
//
//   - An Instance is immutable after Build: Tuples(), Rows() and the
//     derived families are shared by every consumer and must be treated
//     as read-only. The lazily derived families are sync.Once-guarded,
//     so any number of goroutines may request them concurrently.
//   - Ids are dense: the interned universe is exactly the endogenous
//     tuples occurring in some witness, numbered 0..NumTuples()-1, which
//     is what makes bitset rows and id-indexed occurrence lists possible.
//   - Unbreakable() implies Rows() is partial: enumeration stops at the
//     first witness with no endogenous tuples, because no deletion set
//     can falsify the query from then on.
//   - Build is the single place the database is read; it freezes d's
//     relation indexes up front, so sharing the instance never contends
//     on lazy index rebuilds.
//   - Build is deterministic regardless of parallelism: BuildWith may
//     shard the enumeration across workers, but the merge reproduces
//     the sequential tuple ids, row contents and row order byte for
//     byte (DESIGN.md §12), which ApplyDelta's stable ids rely on.
//   - Family(false) preserves the hitting-set optimum: rows are deduped
//     and superset-eliminated only (hitting a subset always hits its
//     supersets), and rows are ordered by increasing size so the first
//     unhit row is always a smallest one.
//
// # The kernel+decompose pipeline
//
// On top of the family, the package provides the instance-level
// preprocessing every NP-side solver runs before exponential search
// (DESIGN.md §7):
//
//   - Kernelize / Instance.Kernel applies unit-row forcing (a singleton
//     witness's tuple is in every hitting set) and dominated-tuple
//     elimination (an element whose rows are covered by a co-occurring
//     element can be dropped) to fixpoint. It preserves ρ and one optimum;
//     domination does not preserve the full set of optima, so all-optima
//     consumers use Decompose alone.
//   - Decompose / Instance.Components splits a family into the connected
//     components of its row-intersection graph, each over a dense local
//     universe with a Global remap. Components share no elements, so
//     component minima add: ρ(F) = Σ ρ(C), and the minimum hitting sets
//     of F are exactly the unions of per-component minimum sets.
//
// Both halves are sync.Once-cached on the Instance, so solvers sharing a
// cached IR also share its kernel and component split.
package witset
