package witset

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"repro/internal/cq"
	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/eval"
)

// Instance is the witness hypergraph of one (query, database) pair:
// vertices are the distinct endogenous tuples occurring in any witness
// (interned to dense int32 ids), edges are the per-witness tuple sets.
type Instance struct {
	query  *cq.Query
	tuples []db.Tuple
	idOf   map[db.Tuple]int32
	// rows holds one sorted id set per kept witness, in enumeration order.
	rows [][]int32
	// unbreakable records that some witness had no endogenous tuples, so no
	// deletion set can falsify the query (infinite resilience). Enumeration
	// stops at the first such witness, so rows is then partial.
	unbreakable bool
	// weights holds per-tuple deletion costs, indexed by tuple id. nil means
	// every tuple costs 1 (the cardinality case); non-nil weights are all
	// >= 1, which every weighted bound and budget computation relies on.
	weights []int64

	minOnce sync.Once
	min     *Family // superset-eliminated family
	rawOnce sync.Once
	raw     *Family // family without elimination (ablation)

	// The kernel is cached under a mutex rather than a sync.Once so that a
	// cancelled kernelization does not poison the cache: only successful
	// results are stored, and the next caller simply retries.
	kernMu    sync.Mutex
	kern      *Kernel // kernelized normalized family (solve pipeline)
	compsOnce sync.Once
	comps     []*Component // components of the un-kernelized normalized family
}

// Build enumerates the witnesses of q over d and interns their endogenous
// tuple sets, skipping witnesses rejected by keep (nil keeps all). It polls
// ctx during enumeration and returns ctx.Err() once cancelled. Build is
// BuildWith with default options; see there for the enumeration contract.
func Build(ctx context.Context, q *cq.Query, d *db.Database, keep func(eval.Witness) bool) (*Instance, error) {
	inst, _, err := BuildWith(ctx, q, d, BuildOptions{Keep: keep})
	return inst, err
}

// Query returns the query the instance was built for.
func (in *Instance) Query() *cq.Query { return in.query }

// Unbreakable reports that some witness consists purely of exogenous
// tuples: the query cannot be falsified by endogenous deletions.
func (in *Instance) Unbreakable() bool { return in.unbreakable }

// NumWitnesses returns the number of kept witnesses (edges of the
// hypergraph, before deduplication).
func (in *Instance) NumWitnesses() int { return len(in.rows) }

// NumTuples returns the size of the interned tuple universe.
func (in *Instance) NumTuples() int { return len(in.tuples) }

// Tuple returns the tuple with the given id.
func (in *Instance) Tuple(id int32) db.Tuple { return in.tuples[id] }

// Tuples returns the interned universe, indexed by id. Callers must treat
// the slice as read-only: it is shared by every consumer of the instance.
func (in *Instance) Tuples() []db.Tuple { return in.tuples }

// ID returns the id of t and whether t occurs in any witness.
func (in *Instance) ID(t db.Tuple) (int32, bool) {
	id, ok := in.idOf[t]
	return id, ok
}

// Rows returns the per-witness id sets in enumeration order, each sorted.
// Read-only, like Tuples.
func (in *Instance) Rows() [][]int32 { return in.rows }

// Weights returns the per-tuple deletion costs, indexed by tuple id, or nil
// when every tuple costs 1 (the cardinality case). Read-only, like Tuples.
func (in *Instance) Weights() []int64 { return in.weights }

// Weight returns the deletion cost of the tuple with the given id; 1 on an
// unweighted instance.
func (in *Instance) Weight(id int32) int64 {
	if in.weights == nil {
		return 1
	}
	return in.weights[id]
}

// WithWeights returns a derived instance over the same witness hypergraph
// with per-tuple deletion costs attached: the tuple universe and rows are
// shared (witness enumeration is never repaid), while every lazily derived
// structure — family, kernel, components — is private to the weighted view,
// because kernelization's domination rule is weight-sensitive. weights is
// indexed by tuple id, must cover the whole universe, and every cost must
// be >= 1. The base instance is not modified; cached unweighted IRs stay
// valid for concurrent requests.
func (in *Instance) WithWeights(weights []int64) (*Instance, error) {
	if len(weights) != len(in.tuples) {
		return nil, fmt.Errorf("witset: %d weights for a universe of %d tuples", len(weights), len(in.tuples))
	}
	for _, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("witset: tuple weight %d is below 1", w)
		}
	}
	return &Instance{
		query:       in.query,
		tuples:      in.tuples,
		idOf:        in.idOf,
		rows:        in.rows,
		unbreakable: in.unbreakable,
		weights:     weights,
	}, nil
}

// TupleSet projects a set of ids back to tuples, sorted.
func (in *Instance) TupleSet(ids []int32) []db.Tuple {
	out := make([]db.Tuple, len(ids))
	for i, id := range ids {
		out[i] = in.tuples[id]
	}
	db.SortTuples(out)
	return out
}

// Family returns the instance's hitting-set family: rows normalized
// (deduplicated and superset-eliminated — hitting a subset always hits its
// supersets, so elimination never changes the optimum) with bitset rows and
// per-element occurrence lists. keepSupersets skips that normalization and
// returns the raw family, which the ablation harness uses to measure the
// preprocessing's contribution. Both variants are computed at most once per
// instance and may be requested from multiple goroutines.
func (in *Instance) Family(keepSupersets bool) *Family {
	if keepSupersets {
		in.rawOnce.Do(func() {
			in.raw = NewFamily(in.rows, len(in.tuples), true)
			in.raw.W = in.weights
		})
		return in.raw
	}
	in.minOnce.Do(func() {
		in.min = NewFamily(in.rows, len(in.tuples), false)
		in.min.W = in.weights
	})
	return in.min
}

// Kernel returns the kernelization of the instance's normalized family
// (unit-row forcing + dominated-tuple elimination to fixpoint), computed at
// most once and shared by concurrent solvers. The kernel preserves ρ and
// one optimum but not the full set of optima; the enumerator uses
// Components instead.
func (in *Instance) Kernel() *Kernel {
	k, _ := in.KernelCtx(context.Background())
	return k
}

// KernelCtx is Kernel with cancellation: the underlying kernelization
// polls ctx, and a cancelled run returns ctx's error without caching
// anything, so a later call with a live context computes the kernel
// normally. Concurrent callers serialize on the computation; the first
// success is shared by all.
func (in *Instance) KernelCtx(ctx context.Context) (*Kernel, error) {
	in.kernMu.Lock()
	defer in.kernMu.Unlock()
	if in.kern != nil {
		return in.kern, nil
	}
	k, err := KernelizeCtx(ctx, in.Family(false))
	if err != nil {
		return nil, err
	}
	in.kern = k
	return k, nil
}

// Components returns the connected components of the instance's raw
// (un-kernelized) family, computed at most once. This is the decomposition
// the all-optima enumerator, responsibility, and the engine's solve
// pipeline use: it preserves the full set of minimum hitting sets, which
// kernelization's domination rule does not.
//
// The split runs on the raw family — linear to build, where the globally
// normalized family pays a quadratic superset scan over every witness row
// — and Decompose then normalizes each component over its own small local
// universe. Superset rows can only relate rows of one raw component (a
// superset contains its subset's elements), so the union of the
// per-component normalized rows equals the globally normalized family;
// the partition itself can only be coarser (a dropped superset row may be
// the sole bridge between two finer groups), which every consumer
// tolerates: components only need to be element-disjoint for their minima
// and optima to combine.
func (in *Instance) Components() []*Component {
	in.compsOnce.Do(func() { in.comps = Decompose(in.Family(true)) })
	return in.comps
}

// Family is a normalized set family over a dense element universe, stored
// both as sorted id rows (for iteration) and as bitsets (for word-parallel
// subset / disjointness tests). Rows are ordered by increasing size, so the
// first unhit row is always a smallest one.
type Family struct {
	// N is the universe size; Rows[i] and Bits[i] describe the same set.
	N    int
	Rows [][]int32
	Bits []Bits
	// Occ[e] lists the indexes of the rows containing element e.
	Occ [][]int32
	// W holds per-element deletion costs (all >= 1), indexed like the
	// universe, or nil when every element costs 1. Row elimination is
	// weight-oblivious — only chosen elements cost anything — so W rides
	// along unchanged through every re-normalization over the same
	// universe; Kernelize's domination rule and Decompose consult it.
	W []int64
}

// NewFamily normalizes raw rows over a universe of n elements: each row is
// sorted and deduplicated, the family is ordered by row size, and — unless
// keepSupersets — duplicate rows and supersets are dropped. The input rows
// are not modified.
func NewFamily(raw [][]int32, n int, keepSupersets bool) *Family {
	f, _ := newFamilyPolled(raw, n, keepSupersets, nil)
	return f
}

// newFamilyPolled is NewFamily with an optional cancellation poll: the
// quadratic superset-elimination scan checks poll and aborts with the
// context's error, which is what makes KernelizeCtx's per-round
// re-normalization promptly cancellable. A nil poll never cancels.
func newFamilyPolled(raw [][]int32, n int, keepSupersets bool, poll *ctxpoll.Poller) (*Family, error) {
	rows := make([][]int32, len(raw))
	for i, s := range raw {
		// Build and the kernelization rounds hand over rows that are
		// already strictly increasing; those are shared as-is (rows are
		// read-only everywhere downstream) instead of paying the defensive
		// copy + sort + dedup per row.
		if isSortedSet(s) {
			rows[i] = s
			continue
		}
		cp := append([]int32(nil), s...)
		sortIDs(cp)
		rows[i] = dedupSorted(cp)
	}
	slices.SortStableFunc(rows, func(a, b []int32) int { return len(a) - len(b) })

	f := &Family{N: n}
	for _, s := range rows {
		if poll.Cancelled() {
			return nil, poll.Err()
		}
		b := NewBits(n)
		for _, e := range s {
			b.Set(e)
		}
		redundant := false
		if !keepSupersets {
			for _, kb := range f.Bits {
				if poll.Cancelled() {
					return nil, poll.Err()
				}
				// Rows arrive in increasing size, so any containment is
				// kept ⊆ candidate; equality also lands here (dedup).
				if SubsetOf(kb, b) {
					redundant = true
					break
				}
			}
		}
		if !redundant {
			f.Rows = append(f.Rows, s)
			f.Bits = append(f.Bits, b)
		}
	}
	f.Occ = make([][]int32, n)
	for i, s := range f.Rows {
		for _, e := range s {
			f.Occ[e] = append(f.Occ[e], int32(i))
		}
	}
	return f, nil
}

func sortIDs(s []int32) {
	slices.Sort(s)
}

// isSortedSet reports whether s is strictly increasing, i.e. already
// sorted and duplicate-free.
func isSortedSet(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

func dedupSorted(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
