package witset

import (
	"context"
	"errors"

	"repro/internal/ctxpoll"
	"repro/internal/db"
	"repro/internal/eval"
)

// Delta IR maintenance. A tuple insert or delete touches only the
// witnesses that use that tuple, and eval.ForEachDeltaWitness enumerates
// exactly those (semi-join against the one-tuple delta). ApplyDelta
// therefore patches an existing instance instead of re-enumerating the
// whole join: inserts append the new witnesses' rows (interning any tuples
// first seen now), deletes remove one row per vanished witness, and every
// derived structure (family, kernel, components) is left to be recomputed
// lazily on the *new* instance — the old instance, which may be shared by
// in-flight solvers, is never modified. Component-level reuse across the
// mutation happens downstream: the engine fingerprints kernel components
// by content, so components whose rows did not change hit the
// component-result cache and only dirtied components are re-solved.

// Mutation is one tuple-level database change, already resolved against
// the post-mutation database's interner.
type Mutation struct {
	// Insert distinguishes an insert from a delete.
	Insert bool
	// Tuple is the changed tuple.
	Tuple db.Tuple
}

// DeltaStats reports what a delta application touched.
type DeltaStats struct {
	// RowsAdded counts witness rows appended by inserts.
	RowsAdded int
	// RowsRemoved counts witness rows removed by deletes.
	RowsRemoved int
	// NewTuples counts tuples first interned by this delta.
	NewTuples int
}

// ErrNeedRebuild reports that an instance cannot be delta-maintained and
// must be rebuilt from scratch with Build. The two causes: the base
// instance is unbreakable (its row set is partial — enumeration stopped at
// the first fully-exogenous witness), or the maintained rows drifted from
// the base in a way the delta bookkeeping cannot reconcile.
var ErrNeedRebuild = errors.New("witset: instance requires a full rebuild")

// ApplyDelta maintains base under a batch of tuple mutations and returns a
// new instance equivalent to Build over the post-mutation database. work
// must be a mutable database in the pre-batch state whose constant
// interner extends base's (clone the old database and sync any new
// constants); ApplyDelta applies the mutations to work as it goes and
// leaves it in the post-batch state. base is never modified and stays
// valid for concurrent readers.
//
// The new instance preserves base's tuple interning (ids of surviving
// tuples are stable) and appends ids for tuples first seen by inserted
// witnesses. Deleted tuples keep their id in the universe but occur in no
// row — exactly like a tuple whose witnesses all vanished under Build's
// keep filter — so families and bitsets stay well-formed.
//
// Built instances with a keep filter must not be delta-maintained: the
// filter is not recorded, so ApplyDelta would resurrect filtered
// witnesses.
func ApplyDelta(ctx context.Context, base *Instance, work *db.Database, muts []Mutation) (*Instance, *DeltaStats, error) {
	if base.unbreakable {
		// rows is partial (enumeration stopped early): nothing to patch.
		return nil, nil, ErrNeedRebuild
	}
	q := base.query
	poll := ctxpoll.New(ctx)
	st := &DeltaStats{}

	// Copy-on-write universe and rows: the base's slices are shared with
	// every consumer of the base instance, so grow private copies.
	tuples := append(make([]db.Tuple, 0, len(base.tuples)+len(muts)), base.tuples...)
	idOf := make(map[db.Tuple]int32, len(base.idOf)+len(muts))
	for t, id := range base.idOf {
		idOf[t] = id
	}
	rows := append(make([][]int32, 0, len(base.rows)+len(muts)), base.rows...)
	alive := make([]bool, len(rows))
	for i := range alive {
		alive[i] = true
	}
	liveCount := len(rows)

	intern := func(t db.Tuple) int32 {
		id, ok := idOf[t]
		if !ok {
			id = int32(len(tuples))
			idOf[t] = id
			tuples = append(tuples, t)
		}
		return id
	}

	// byKey indexes live row contents for deletes (multiset semantics: one
	// row per witness, identical contents kept separately). Built lazily on
	// the first delete, maintained across subsequent inserts.
	var byKey map[string][]int
	rowKey := func(row []int32) string {
		b := make([]byte, 0, len(row)*4)
		for _, e := range row {
			b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
		}
		return string(b)
	}
	buildIndex := func() {
		byKey = make(map[string][]int, len(rows))
		for i, row := range rows {
			if alive[i] {
				k := rowKey(row)
				byKey[k] = append(byKey[k], i)
			}
		}
	}

	unbreakable := false
	for _, m := range muts {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if m.Insert {
			if work.Has(m.Tuple) {
				continue // no-op insert: no new witnesses
			}
			work.AddTuple(m.Tuple)
			eval.ForEachDeltaWitness(q, work, m.Tuple, func(w eval.Witness) bool {
				if poll.Cancelled() {
					return false
				}
				ts := eval.WitnessTuples(q, w, true)
				if len(ts) == 0 {
					unbreakable = true
					return false
				}
				row := make([]int32, len(ts))
				for j, t := range ts {
					row[j] = intern(t)
				}
				sortIDs(row)
				rows = append(rows, row)
				alive = append(alive, true)
				liveCount++
				st.RowsAdded++
				if byKey != nil {
					k := rowKey(row)
					byKey[k] = append(byKey[k], len(rows)-1)
				}
				return true
			})
			if err := poll.Err(); err != nil {
				return nil, nil, err
			}
			if unbreakable {
				break
			}
			continue
		}
		// Delete: the vanishing witnesses are those of the pre-state that
		// use the tuple, so enumerate before removing it.
		if !work.Has(m.Tuple) {
			continue // no-op delete
		}
		if byKey == nil {
			buildIndex()
		}
		failed := false
		eval.ForEachDeltaWitness(q, work, m.Tuple, func(w eval.Witness) bool {
			if poll.Cancelled() {
				return false
			}
			ts := eval.WitnessTuples(q, w, true)
			if len(ts) == 0 {
				// A fully-exogenous witness existed, yet base was not marked
				// unbreakable: the base predates some exogenous change we
				// cannot reconcile. Rebuild from scratch.
				failed = true
				return false
			}
			row := make([]int32, len(ts))
			for j, t := range ts {
				id, ok := idOf[t]
				if !ok {
					failed = true
					return false
				}
				row[j] = id
			}
			sortIDs(row)
			k := rowKey(row)
			idxs := byKey[k]
			found := false
			for len(idxs) > 0 {
				i := idxs[len(idxs)-1]
				idxs = idxs[:len(idxs)-1]
				if alive[i] {
					alive[i] = false
					liveCount--
					st.RowsRemoved++
					found = true
					break
				}
			}
			byKey[k] = idxs
			if !found {
				failed = true
				return false
			}
			return true
		})
		if err := poll.Err(); err != nil {
			return nil, nil, err
		}
		if failed {
			return nil, nil, ErrNeedRebuild
		}
		work.Remove(m.Tuple)
	}

	st.NewTuples = len(tuples) - len(base.tuples)
	out := &Instance{query: q, tuples: tuples, idOf: idOf, unbreakable: unbreakable}
	if base.weights != nil {
		// Surviving tuples keep their cost (ids are stable); tuples first
		// interned by this delta get the default cost 1.
		w := append(make([]int64, 0, len(tuples)), base.weights...)
		for len(w) < len(tuples) {
			w = append(w, 1)
		}
		out.weights = w
	}
	if unbreakable {
		return out, st, nil
	}
	out.rows = make([][]int32, 0, liveCount)
	for i, row := range rows {
		if alive[i] {
			out.rows = append(out.rows, row)
		}
	}
	return out, st, nil
}
