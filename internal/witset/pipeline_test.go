package witset

import (
	"reflect"
	"testing"
)

func fam(n int, rows ...[]int32) *Family { return NewFamily(rows, n, false) }

func TestKernelizeUnitForcing(t *testing.T) {
	// {0} forces 0, which also kills the superset {0,1}; the 4-cycle on
	// {1,2,3,4} has pairwise-incomparable occurrences, so it survives as
	// the kernel untouched.
	k := Kernelize(fam(5, []int32{0}, []int32{0, 1},
		[]int32{1, 2}, []int32{2, 3}, []int32{3, 4}, []int32{4, 1}))
	if !reflect.DeepEqual(k.Forced, []int32{0}) {
		t.Fatalf("Forced = %v, want [0]", k.Forced)
	}
	if k.Dominated != 0 {
		t.Fatalf("Dominated = %d, want 0", k.Dominated)
	}
	if len(k.Fam.Rows) != 4 {
		t.Fatalf("kernel rows = %v, want the 4-cycle", k.Fam.Rows)
	}
}

func TestKernelizeCascadedForcing(t *testing.T) {
	// 0 and 1 are each dominated by 2 (their single rows both contain 2),
	// both rows collapse to {2}, and 2 gets forced: a full two-rule
	// cascade that empties the family.
	k := Kernelize(fam(3, []int32{1, 2}, []int32{2, 0}))
	if !reflect.DeepEqual(k.Forced, []int32{2}) {
		t.Fatalf("Forced = %v, want [2]", k.Forced)
	}
	if k.Dominated != 2 {
		t.Fatalf("Dominated = %d, want 2", k.Dominated)
	}
	if len(k.Fam.Rows) != 0 {
		t.Fatalf("kernel rows = %v, want empty", k.Fam.Rows)
	}
}

func TestKernelizeDominationTieBreak(t *testing.T) {
	// 0 and 1 co-occur in exactly the same rows: exactly one survives (the
	// smaller id), never both dropped.
	k := Kernelize(fam(3, []int32{0, 1, 2}, []int32{0, 1}))
	// Superset elimination keeps only {0,1}; then 1 is dominated by 0
	// (equal occurrence, larger id), leaving unit {0}, which is forced.
	if !reflect.DeepEqual(k.Forced, []int32{0}) {
		t.Fatalf("Forced = %v, want [0]", k.Forced)
	}
	if len(k.Fam.Rows) != 0 {
		t.Fatalf("kernel rows = %v, want empty", k.Fam.Rows)
	}
}

func TestKernelizeQuiescentReturnsInput(t *testing.T) {
	// No unit rows, no dominated elements, no supersets: the input family
	// must come back untouched (same pointer, no copy).
	f := fam(4, []int32{0, 1}, []int32{1, 2}, []int32{2, 3}, []int32{3, 0})
	k := Kernelize(f)
	if k.Fam != f {
		t.Fatal("quiescent kernelization should return the input family unchanged")
	}
	if len(k.Forced) != 0 || k.Dominated != 0 {
		t.Fatalf("quiescent kernel recorded work: %+v", k)
	}
}

func TestDecomposeSplitsAndRemaps(t *testing.T) {
	// Two components: {0,1,2} (two rows) and {5,7} (one row); element ids
	// deliberately sparse to exercise the local remap.
	f := fam(8, []int32{0, 1}, []int32{1, 2}, []int32{5, 7})
	comps := Decompose(f)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	a, b := comps[0], comps[1]
	if !reflect.DeepEqual(a.Global, []int32{0, 1, 2}) {
		t.Fatalf("component 0 Global = %v, want [0 1 2]", a.Global)
	}
	if !reflect.DeepEqual(b.Global, []int32{5, 7}) {
		t.Fatalf("component 1 Global = %v, want [5 7]", b.Global)
	}
	if a.Fam.N != 3 || b.Fam.N != 2 {
		t.Fatalf("local universes = %d, %d, want 3, 2", a.Fam.N, b.Fam.N)
	}
	if len(a.Fam.Rows) != 2 || len(b.Fam.Rows) != 1 {
		t.Fatalf("row counts = %d, %d, want 2, 1", len(a.Fam.Rows), len(b.Fam.Rows))
	}
	if got := b.ToGlobal([]int32{1}); !reflect.DeepEqual(got, []int32{7}) {
		t.Fatalf("ToGlobal([1]) = %v, want [7]", got)
	}
}

func TestDecomposeSingleComponent(t *testing.T) {
	f := fam(3, []int32{0, 1}, []int32{1, 2})
	comps := Decompose(f)
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	if !reflect.DeepEqual(comps[0].Global, []int32{0, 1, 2}) {
		t.Fatalf("Global = %v", comps[0].Global)
	}
}

func TestDecomposeEmpty(t *testing.T) {
	if comps := Decompose(fam(4)); comps != nil {
		t.Fatalf("Decompose(empty) = %v, want nil", comps)
	}
}
