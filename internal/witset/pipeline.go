package witset

import (
	"context"
	"math/bits"
	"slices"
	"sync"

	"repro/internal/ctxpoll"
)

// This file is the instance-level preprocessing pipeline shared by every
// NP-side solver: Kernelize shrinks a hitting-set family with classic
// kernelization rules before any exponential search starts, and Decompose
// splits it into connected components whose minima add. DESIGN.md §7 states
// the soundness argument per rule; the short version:
//
//   - Unit-row forcing: a row {e} can only be hit by e, so e is in every
//     hitting set; force e, delete all rows containing e (they are hit),
//     and recurse on the rest. ρ(F) = |forced| + ρ(remainder).
//   - Dominated-tuple elimination: if every row containing a also contains
//     b (a ≠ b), replacing a by b in any hitting set keeps it hitting and
//     never grows it, so some minimum hitting set avoids a and a can be
//     dropped from every row. This preserves the optimum but not the set
//     of optima, so the all-optima enumerator must not use it.
//   - Superset-row elimination (already in NewFamily): hitting a subset
//     always hits its supersets.
//
// Components of the row-intersection graph share no elements, so hitting
// sets combine disjointly: ρ(F) = Σ_C ρ(C), and the minimum hitting sets
// of F are exactly the unions of per-component minimum hitting sets.

// Kernel is the outcome of kernelizing a family: elements forced into every
// minimum hitting set, plus the reduced family over the same global
// universe. ρ(original) = len(Forced) + ρ(Fam), and prepending the forced
// ids to any minimum hitting set of Fam gives a minimum hitting set of the
// original family.
type Kernel struct {
	// Forced lists the element ids every minimum hitting set must contain
	// (unit-row forcing, iterated to fixpoint), in increasing order.
	Forced []int32
	// Dominated counts elements removed by dominated-tuple elimination.
	Dominated int
	// Fam is the kernelized family, over the same universe as the input
	// (ids stay global; dropped elements simply occur in no row).
	Fam *Family

	compsOnce sync.Once
	comps     []*Component
}

// Components returns the connected components of the kernelized family,
// computed once and shared across concurrent solvers.
func (k *Kernel) Components() []*Component {
	k.compsOnce.Do(func() { k.comps = Decompose(k.Fam) })
	return k.comps
}

// Kernelize applies unit-row forcing and dominated-tuple elimination to
// fixpoint, re-normalizing (dedup + superset elimination, via NewFamily)
// after every round that fired a rule: forcing can orphan rows, and
// dropping a dominated element can shrink a row under a sibling, exposing
// new units and new subset relations. The input family is never modified;
// when no rule fires at all it is returned unchanged inside the kernel, so
// the quiescent case costs detection passes and no second family.
func Kernelize(f *Family) *Kernel {
	k, _ := KernelizeCtx(context.Background(), f)
	return k
}

// KernelizeCtx is Kernelize with cancellation: the fixpoint loop, the
// dominated-tuple scan, and the per-round family re-normalization all poll
// ctx (throttled via ctxpoll), so a long kernelization over a large family
// stops within microseconds of cancellation instead of running the round
// to completion. On cancellation it returns ctx's error and no kernel.
func KernelizeCtx(ctx context.Context, f *Family) (*Kernel, error) {
	poll := ctxpoll.New(ctx)
	var forced []int32
	dominated := 0
	cur := f
	for {
		rows := cur.Rows
		newForced := forceUnits(f.N, &rows)
		drops := dropDominated(f.N, f.W, &rows, poll)
		if err := poll.Err(); err != nil {
			return nil, err
		}
		if len(newForced) == 0 && drops == 0 {
			break
		}
		forced = append(forced, newForced...)
		dominated += drops
		var err error
		cur, err = newFamilyPolled(rows, f.N, false, poll)
		if err != nil {
			return nil, err
		}
		// Re-normalization preserves the universe, so the weights carry over.
		cur.W = f.W
	}
	sortIDs(forced)
	return &Kernel{Forced: forced, Dominated: dominated, Fam: cur}, nil
}

// forceUnits forces the element of every singleton row and removes the rows
// those elements hit. One pass suffices: removing whole rows never creates
// a new singleton (new units only appear after domination or superset
// elimination shrink rows, which the Kernelize fixpoint loop covers).
// *rows is replaced, never mutated in place.
func forceUnits(n int, rows *[][]int32) []int32 {
	var forced []int32
	var forcedBits Bits
	for _, row := range *rows {
		if len(row) != 1 {
			continue
		}
		if forcedBits == nil {
			forcedBits = NewBits(n)
		}
		if !forcedBits.Has(row[0]) {
			forcedBits.Set(row[0])
			forced = append(forced, row[0])
		}
	}
	if forced == nil {
		return nil
	}
	kept := make([][]int32, 0, len(*rows))
	for _, row := range *rows {
		hit := false
		for _, e := range row {
			if forcedBits.Has(e) {
				hit = true
				break
			}
		}
		if !hit {
			kept = append(kept, row)
		}
	}
	*rows = kept
	return forced
}

// dropDominated removes every element a whose rows are all covered by a
// co-occurring element b (occurrence-set inclusion, with an id tie-break on
// equality so exactly one of two interchangeable elements survives) and
// returns the number of elements dropped. *rows is replaced, never mutated
// in place. A cancelled poll aborts the scan early; the caller must check
// poll.Err() and discard the (partial) result.
//
// With weights (w non-nil, indexed like the universe) the rule additionally
// requires the dominator to be no more expensive: replacing a by b in any
// hitting set keeps it hitting (b covers all of a's rows) and never raises
// its cost only when w[b] <= w[a], so some minimum-cost hitting set avoids
// a. On fully interchangeable elements (equal occurrence sets AND equal
// weights) the id tie-break keeps exactly one of the pair, as before.
func dropDominated(n int, w []int64, rows *[][]int32, poll *ctxpoll.Poller) int {
	cur := *rows
	if len(cur) == 0 {
		return 0
	}
	// occ[e] is the set of row indexes containing e, sized to the current
	// row slice; present lists the elements that occur at all.
	occ := make([]Bits, n)
	present := make([]int32, 0, 64)
	for ri, row := range cur {
		if poll.Cancelled() {
			return 0
		}
		for _, e := range row {
			if occ[e] == nil {
				occ[e] = NewBits(len(cur))
				present = append(present, e)
			}
			occ[e].Set(int32(ri))
		}
	}
	sortIDs(present)

	var dropped Bits
	nDropped := 0
	for _, a := range present {
		if poll.Cancelled() {
			return nDropped
		}
		if dropped != nil && dropped.Has(a) {
			continue
		}
		ab := occ[a]
		// A dominator must co-occur with a everywhere, so in a's first row
		// in particular: only that row's elements are candidates.
		for _, b := range cur[firstSet(ab)] {
			if b == a || (dropped != nil && dropped.Has(b)) {
				continue
			}
			bb := occ[b]
			if !SubsetOf(ab, bb) {
				continue
			}
			if w != nil && w[b] > w[a] {
				continue // b covers a's rows but costs more: no domination
			}
			// Occ(a) ⊆ Occ(b) and w[b] <= w[a]: strict inclusion or a strictly
			// cheaper b always drops a; on full equality (same rows, same
			// cost) drop the larger id so exactly one of the pair survives.
			if Equal(ab, bb) && (w == nil || w[a] == w[b]) && a < b {
				continue
			}
			if dropped == nil {
				dropped = NewBits(n)
			}
			dropped.Set(a)
			nDropped++
			break
		}
	}
	if nDropped == 0 {
		return 0
	}
	out := make([][]int32, len(cur))
	for ri, row := range cur {
		kept := make([]int32, 0, len(row))
		for _, e := range row {
			if !dropped.Has(e) {
				kept = append(kept, e)
			}
		}
		out[ri] = kept
	}
	*rows = out
	return nDropped
}

// firstSet returns the index of the lowest set bit; b must be non-empty.
func firstSet(b Bits) int32 {
	for wi, w := range b {
		if w != 0 {
			return int32(wi*64 + bits.TrailingZeros64(w))
		}
	}
	panic("witset: firstSet on empty bitset")
}

// Component is one connected component of a family: a family over its own
// dense local universe, plus the remap from local ids back to the global
// ids of the decomposed family.
type Component struct {
	// Fam is the component's family; element e of Fam is Global[e].
	Fam *Family
	// Global maps local element ids to global ids, strictly increasing.
	Global []int32
}

// ToGlobal maps a set of local ids (as returned by a solver over Fam) back
// to global ids.
func (c *Component) ToGlobal(local []int32) []int32 {
	out := make([]int32, len(local))
	for i, e := range local {
		out[i] = c.Global[e]
	}
	return out
}

// Decompose splits a family into the connected components of its
// row-intersection graph: elements are connected when they co-occur in a
// row, and each row lands in the component of its elements. Elements
// occurring in no row belong to no component (they can never be part of a
// minimum hitting set). Components are ordered by their smallest global
// element id, and each component's family is rebuilt over a dense local
// universe so downstream bitsets and CNF variable ranges stay small.
func Decompose(f *Family) []*Component {
	if len(f.Rows) == 0 {
		return nil
	}
	parent := make([]int32, f.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, row := range f.Rows {
		r0 := find(row[0])
		for _, e := range row[1:] {
			re := find(e)
			if re != r0 {
				// Point the larger root at the smaller so every root is the
				// minimum of its component.
				if re < r0 {
					parent[r0] = re
					r0 = re
				} else {
					parent[re] = r0
				}
			}
		}
	}

	type group struct {
		rows  [][]int32
		elems map[int32]bool
	}
	groups := map[int32]*group{}
	var roots []int32
	for _, row := range f.Rows {
		r := find(row[0])
		g, ok := groups[r]
		if !ok {
			g = &group{elems: map[int32]bool{}}
			groups[r] = g
			roots = append(roots, r)
		}
		g.rows = append(g.rows, row)
		for _, e := range row {
			g.elems[e] = true
		}
	}
	sortIDs(roots) // roots are component minima, so this orders by smallest element

	out := make([]*Component, 0, len(roots))
	for _, r := range roots {
		g := groups[r]
		global := make([]int32, 0, len(g.elems))
		for e := range g.elems {
			global = append(global, e)
		}
		sortIDs(global)
		local := make(map[int32]int32, len(global))
		for li, e := range global {
			local[e] = int32(li)
		}
		lrows := make([][]int32, len(g.rows))
		for i, row := range g.rows {
			lr := make([]int32, len(row))
			for j, e := range row {
				lr[j] = local[e]
			}
			// Family rows are sorted and the global->local remap is
			// monotone, so lr is already strictly increasing; slices.Sort
			// is a near-free guard against that invariant ever changing.
			slices.Sort(lr)
			lrows[i] = lr
		}
		cf := NewFamily(lrows, len(global), false)
		if f.W != nil {
			lw := make([]int64, len(global))
			for li, e := range global {
				lw[li] = f.W[e]
			}
			cf.W = lw
		}
		out = append(out, &Component{
			Fam:    cf,
			Global: global,
		})
	}
	return out
}
