package witset

// GreedyHittingSet returns a hitting set of the family built by repeatedly
// taking the element covering the most still-unhit rows (ties to the lowest
// element id). Its size is the cheap upper bound the solvers seed their
// searches with: the exact branch-and-bound uses it as the initial
// incumbent, and the engine's SAT binary search uses it to cap both the
// probe range and the width of the incremental cardinality counter — a
// counter gated at greedy-1 budgets is all any probe can ask for, and is
// dramatically smaller than one sized to the whole universe when the
// optimum is small. Element-occurrence counts are maintained decrementally:
// selecting an element pays only for the rows it newly hits.
func GreedyHittingSet(fam *Family) []int32 {
	hit := make([]bool, len(fam.Rows))
	remaining := len(fam.Rows)
	var out []int32
	count := make([]int, fam.N)
	for _, row := range fam.Rows {
		for _, e := range row {
			count[e]++
		}
	}
	for remaining > 0 {
		bestE, bestC := -1, 0
		for e, c := range count {
			if c > bestC {
				bestE, bestC = e, c
			}
		}
		if bestE < 0 {
			break
		}
		out = append(out, int32(bestE))
		for _, si := range fam.Occ[bestE] {
			if !hit[si] {
				hit[si] = true
				remaining--
				for _, e := range fam.Rows[si] {
					count[e]--
				}
			}
		}
	}
	return out
}

// GreedyHittingSetWeighted is the min-cost generalization of
// GreedyHittingSet: it repeatedly takes the element with the best
// coverage-per-cost ratio among the still-unhit rows (ties to the lowest
// element id), which is the classic weighted set-cover greedy. Its total
// cost seeds the weighted branch-and-bound's incumbent and caps the
// weighted SAT search's budget range. On an unweighted family (W == nil) it
// is exactly GreedyHittingSet.
func GreedyHittingSetWeighted(fam *Family) []int32 {
	if fam.W == nil {
		return GreedyHittingSet(fam)
	}
	hit := make([]bool, len(fam.Rows))
	remaining := len(fam.Rows)
	var out []int32
	count := make([]int64, fam.N)
	for _, row := range fam.Rows {
		for _, e := range row {
			count[e]++
		}
	}
	for remaining > 0 {
		// Maximize count[e]/W[e]; the cross-multiplied comparison avoids
		// float ties, and strict > keeps the lowest id on equal ratios.
		bestE := -1
		var bestC int64
		for e, c := range count {
			if c == 0 {
				continue
			}
			if bestE < 0 || c*fam.W[bestE] > bestC*fam.W[e] {
				bestE, bestC = e, c
			}
		}
		if bestE < 0 {
			break
		}
		out = append(out, int32(bestE))
		for _, si := range fam.Occ[bestE] {
			if !hit[si] {
				hit[si] = true
				remaining--
				for _, e := range fam.Rows[si] {
					count[e]--
				}
			}
		}
	}
	return out
}
