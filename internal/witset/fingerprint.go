package witset

import (
	"sort"
	"strings"

	"repro/internal/db"
)

// Component fingerprints give witness-hypergraph components an identity
// that is stable across instances: two components with the same
// fingerprint have the same multiset of rows over the same ground tuples,
// hence the same minimum hitting sets. This is what lets the engine reuse
// a component's cached optimum across database versions — after a delta,
// components untouched by the mutation re-fingerprint identically and skip
// kernelization and solver alike, so the new ρ is a cheap re-sum of cached
// per-component minima. The engine keys its cache on the raw (normalized,
// un-kernelized) components of Instance.Components, which is also the
// decomposition DiffComponents compares.

// ComponentKey returns the canonical content fingerprint of component c of
// this instance: each row rendered as its sorted global tuples, rows
// sorted, all framed unambiguously. Equal keys imply isomorphic hitting-
// set instances over identical ground tuples (same ρ, and any optimum of
// one is an optimum of the other).
func (in *Instance) ComponentKey(c *Component) string {
	rowStrs := make([]string, len(c.Fam.Rows))
	var b []byte
	for i, row := range c.Fam.Rows {
		ts := make([]db.Tuple, len(row))
		for j, e := range row {
			ts[j] = in.tuples[c.Global[e]]
		}
		db.SortTuples(ts)
		b = b[:0]
		for _, t := range ts {
			b = appendTupleKey(b, t)
		}
		rowStrs[i] = string(b)
	}
	sort.Strings(rowStrs)
	return strings.Join(rowStrs, "\x01")
}

// appendTupleKey appends an unambiguous encoding of t: length-prefixed
// relation name, arity, then fixed-width argument values.
func appendTupleKey(b []byte, t db.Tuple) []byte {
	b = append(b, byte(len(t.Rel)), byte(len(t.Rel)>>8))
	b = append(b, t.Rel...)
	b = append(b, t.Arity)
	for i := 0; i < int(t.Arity); i++ {
		v := t.Args[i]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return b
}

// DiffComponents reports how many of cur's components have no
// content-identical counterpart among prev's components — the "changed
// components" a watch notification carries, and exactly the components the
// engine's result cache cannot answer after the delta. The comparison runs
// on the raw (un-kernelized) decomposition, so it costs no kernelization
// fixpoint. Multiset-aware: duplicated fingerprints consume matches one
// for one. Unbreakable instances have no meaningful decomposition; any
// comparison involving one reports 0.
func DiffComponents(prev, cur *Instance) int {
	if prev == nil || cur == nil || prev.unbreakable || cur.unbreakable {
		return 0
	}
	prevKeys := map[string]int{}
	for _, c := range prev.Components() {
		prevKeys[prev.ComponentKey(c)]++
	}
	changed := 0
	for _, c := range cur.Components() {
		key := cur.ComponentKey(c)
		if prevKeys[key] > 0 {
			prevKeys[key]--
		} else {
			changed++
		}
	}
	return changed
}
