package witset

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/zoo"
)

// instancesEqual fails the test unless a and b are byte-identical on the
// id-universe, the rows (contents and order), and the unbreakable flag —
// the exact contract mergeShards promises.
func instancesEqual(t *testing.T, label string, a, b *Instance) {
	t.Helper()
	if a.Unbreakable() != b.Unbreakable() {
		t.Errorf("%s: unbreakable %v vs %v", label, a.Unbreakable(), b.Unbreakable())
		return
	}
	if a.NumTuples() != b.NumTuples() {
		t.Errorf("%s: %d vs %d tuples", label, a.NumTuples(), b.NumTuples())
		return
	}
	for i, tup := range a.Tuples() {
		if b.Tuples()[i] != tup {
			t.Errorf("%s: tuple id %d is %v vs %v", label, i, tup, b.Tuples()[i])
			return
		}
	}
	ar, br := a.Rows(), b.Rows()
	if len(ar) != len(br) {
		t.Errorf("%s: %d vs %d rows", label, len(ar), len(br))
		return
	}
	for i := range ar {
		if len(ar[i]) != len(br[i]) {
			t.Errorf("%s: row %d has %d vs %d ids", label, i, len(ar[i]), len(br[i]))
			return
		}
		for j := range ar[i] {
			if ar[i][j] != br[i][j] {
				t.Errorf("%s: row %d differs at %d: %d vs %d", label, i, j, ar[i][j], br[i][j])
				return
			}
		}
	}
}

// TestParallelBuildMatchesSequential is the randomized differential suite
// for the sharded build: across the query zoo on random databases, plus
// the structured datagen families, the parallel build must be
// byte-identical to the sequential one (ids, row contents, row order,
// unbreakable flag) for every worker count. Run under -race this also
// checks the shard workers share nothing they should not.
func TestParallelBuildMatchesSequential(t *testing.T) {
	ctx := context.Background()
	workerCounts := []int{1, 2, 4, 8}

	check := func(t *testing.T, label string, q *cq.Query, d *db.Database) {
		t.Helper()
		seq, info, err := BuildWith(ctx, q, d, BuildOptions{Workers: 1})
		if err != nil {
			t.Fatalf("%s: sequential build: %v", label, err)
		}
		if info.Shards != 1 {
			t.Fatalf("%s: sequential build reported %d shards", label, info.Shards)
		}
		for _, w := range workerCounts {
			par, _, err := BuildWith(ctx, q, d, BuildOptions{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", label, w, err)
			}
			instancesEqual(t, label+" workers="+string(rune('0'+w)), seq, par)
		}
	}

	t.Run("zoo", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for _, e := range zoo.Queries() {
			d := datagen.Random(rng, e.Query, 12, 60, 0.3)
			check(t, e.Name, e.Query, d)
			dl := datagen.RandomWithLoops(rng, e.Query, 10, 50, 0.2)
			check(t, e.Name+"/loops", e.Query, dl)
		}
	})

	t.Run("structured", func(t *testing.T) {
		qchain := cq.MustParse("qchain :- R(x,y), R(y,z)")
		rng := rand.New(rand.NewSource(11))
		check(t, "chain", qchain, datagen.ChainDB(rng, 400, 80))
		check(t, "many-chain", qchain, datagen.ManyComponentChainDB(rng, 30, 3, 9))
		check(t, "dense", qchain, datagen.ManyComponentDenseDB(rng, 12, 20, 40))
	})

	// An unbreakable witness (every atom over an exogenous relation, so
	// the endogenous tuple set is empty) stops enumeration on the spot;
	// the merge must truncate at the same point and report the flag
	// exactly like the sequential build, discarding any work later shards
	// did.
	t.Run("unbreakable", func(t *testing.T) {
		q := cq.MustParse("qx :- R(x,y)^x, S(y,z)^x")
		d := db.New()
		for i := 0; i < 50; i++ {
			d.AddNames("R", datagen.ConstName(i), datagen.ConstName(i+1))
			d.AddNames("S", datagen.ConstName(i+1), datagen.ConstName(i+2))
		}
		check(t, "unbreakable", q, d)
	})
}

// TestBuildAllocs pins the sequential build's allocation behaviour on a
// fixed instance. The arena + scratch design needs a handful of
// allocations per build (plan, builder, map growth, slabs) but must not
// allocate per witness: this database has ~10k witnesses, so the bound
// below fails loudly if a per-witness allocation (the old per-witness map,
// tuple slice or row copy) ever creeps back in.
func TestBuildAllocs(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(2033))
	d := datagen.ManyComponentDenseDB(rng, 24, 30, 90)
	d.Freeze()
	ctx := context.Background()

	inst, err := Build(ctx, q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	witnesses := inst.NumWitnesses()
	if witnesses < 5000 {
		t.Fatalf("database too small to be meaningful: %d witnesses", witnesses)
	}

	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := BuildWith(ctx, q, d, BuildOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
	// The budget is dominated by idOf map growth and arena slabs, both
	// logarithmic-ish in instance size; 600 gives headroom for map-resize
	// jitter while sitting two orders of magnitude below one-per-witness.
	if limit := 600.0; allocs > limit {
		t.Errorf("sequential build of %d witnesses did %.0f allocs/op, want <= %.0f", witnesses, allocs, limit)
	}
}

// TestBuildKeepParity checks that the keep filter (which forces the
// sequential path) sees witnesses under the same enumeration the plain
// build uses: filtering to "everything" must reproduce the unfiltered
// instance exactly.
func TestBuildKeepParity(t *testing.T) {
	q := cq.MustParse("qchain :- R(x,y), R(y,z)")
	rng := rand.New(rand.NewSource(5))
	d := datagen.ChainDB(rng, 200, 40)
	ctx := context.Background()

	plain, err := Build(ctx, q, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := Build(ctx, q, d, func(eval.Witness) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	instancesEqual(t, "keep-all", plain, kept)
}
