package sat

import (
	"math/rand"
	"testing"
)

// TestCDCLvsDPLLRandom pins the CDCL rewrite against the legacy DPLL on
// random 3SAT and 2SAT: the verdicts must agree and every returned model
// must actually satisfy the formula.
func TestCDCLvsDPLLRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 400; trial++ {
		var f *Formula
		if trial%2 == 0 {
			f = Random3SAT(rng, 3+rng.Intn(8), 1+rng.Intn(30))
		} else {
			f = Random2SAT(rng, 2+rng.Intn(8), 1+rng.Intn(20))
		}
		gotAssign, got := f.Solve()
		_, want := f.SolveDPLL()
		if got != want {
			t.Fatalf("trial %d: CDCL=%v DPLL=%v formula=%v", trial, got, want, f.Clauses)
		}
		if got && !f.Eval(gotAssign) {
			t.Fatalf("trial %d: CDCL returned non-model for %v", trial, f.Clauses)
		}
	}
}

// TestCDCLvsDPLLEnumerated sweeps every 2-clause 3CNF shape over 3
// variables — the exhaustive slice of formula space the gadget verifiers
// live in.
func TestCDCLvsDPLLEnumerated(t *testing.T) {
	EnumerateAll3SAT(3, 2, func(f *Formula) bool {
		gotAssign, got := f.Solve()
		_, want := f.SolveDPLL()
		if got != want {
			t.Fatalf("CDCL=%v DPLL=%v formula=%v", got, want, f.Clauses)
		}
		if got && !f.Eval(gotAssign) {
			t.Fatalf("non-model for %v", f.Clauses)
		}
		return true
	})
}

// dpllWithUnits is the assumption-semantics oracle: satisfiability under
// assumptions A equals satisfiability of the formula extended with a unit
// clause per assumption.
func dpllWithUnits(f *Formula, assumps []Literal) bool {
	g := &Formula{NumVars: f.NumVars, Clauses: append([]Clause(nil), f.Clauses...)}
	for _, a := range assumps {
		g.Clauses = append(g.Clauses, Clause{a})
	}
	_, sat := g.SolveDPLL()
	return sat
}

// TestSolveAssumeMatchesUnitOracle probes one persistent Solver with many
// random assumption sets and pins each verdict against the DPLL-with-units
// oracle — including that learned clauses carried across probes never leak
// one probe's assumptions into the next.
func TestSolveAssumeMatchesUnitOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for round := 0; round < 40; round++ {
		n := 3 + rng.Intn(7)
		f := Random3SAT(rng, n, 2+rng.Intn(4*n))
		s := f.Solver()
		for probe := 0; probe < 12; probe++ {
			var assumps []Literal
			for v := 1; v <= n; v++ {
				switch rng.Intn(4) {
				case 0:
					assumps = append(assumps, Literal(v))
				case 1:
					assumps = append(assumps, Literal(-v))
				}
			}
			assign, got := s.SolveAssume(assumps)
			want := dpllWithUnits(f, assumps)
			if got != want {
				t.Fatalf("round %d probe %d: SolveAssume=%v oracle=%v assumps=%v formula=%v",
					round, probe, got, want, assumps, f.Clauses)
			}
			if got {
				if !f.Eval(assign[:f.NumVars+1]) {
					t.Fatalf("round %d probe %d: model does not satisfy formula", round, probe)
				}
				for _, a := range assumps {
					if assign[a.Var()] != a.Positive() {
						t.Fatalf("round %d probe %d: model violates assumption %d", round, probe, a)
					}
				}
			}
		}
		// After arbitrary assumption probes, the unconditional question must
		// still match a fresh solve: learning preserved satisfiability.
		_, got := s.SolveAssume(nil)
		_, want := f.SolveDPLL()
		if got != want {
			t.Fatalf("round %d: post-probe SolveAssume(nil)=%v fresh=%v", round, got, want)
		}
	}
}

// TestSolveAssumeContradictoryAndSubset pins two assumption laws: directly
// contradictory assumptions are unsat regardless of the clauses, and
// unsatisfiability is monotone under assumption supersets.
func TestSolveAssumeContradictoryAndSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for round := 0; round < 30; round++ {
		n := 3 + rng.Intn(6)
		f := Random3SAT(rng, n, 1+rng.Intn(3*n))
		s := f.Solver()

		v := Literal(1 + rng.Intn(n))
		if _, sat := s.SolveAssume([]Literal{v, -v}); sat {
			t.Fatalf("round %d: contradictory assumptions {%d,%d} reported sat", round, v, -v)
		}

		// Grow a random assumption chain; once unsat, every extension must
		// stay unsat on the same (learning) solver.
		var chain []Literal
		unsatAt := -1
		for v := 1; v <= n; v++ {
			l := Literal(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			chain = append(chain, l)
			_, sat := s.SolveAssume(chain)
			if !sat && unsatAt < 0 {
				unsatAt = len(chain)
			}
			if sat && unsatAt >= 0 {
				t.Fatalf("round %d: chain %v sat again after unsat at prefix %d", round, chain, unsatAt)
			}
		}
	}
}

// TestSolverIncrementalAddClause interleaves AddClause with solves: the
// solver must track the growing clause set exactly, and once the database
// is root-unsatisfiable it must stay unsat.
func TestSolverIncrementalAddClause(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for round := 0; round < 40; round++ {
		n := 3 + rng.Intn(6)
		full := Random3SAT(rng, n, 6+rng.Intn(3*n))
		s := NewSolver(n)
		seen := &Formula{NumVars: n}
		dead := false
		for _, c := range full.Clauses {
			if !s.AddClause(c) {
				dead = true
			}
			seen.Clauses = append(seen.Clauses, c)
			assign, got := s.SolveAssume(nil)
			_, want := seen.SolveDPLL()
			if dead && got {
				t.Fatalf("round %d: solver sat after AddClause reported root unsat", round)
			}
			if got != want {
				t.Fatalf("round %d after %d clauses: CDCL=%v DPLL=%v", round, len(seen.Clauses), got, want)
			}
			if got && !seen.Eval(assign[:n+1]) {
				t.Fatalf("round %d: non-model after %d clauses", round, len(seen.Clauses))
			}
		}
	}
}

// TestSolverUnitAndEmptyEdge covers the degenerate shapes the encoders
// produce: unit clauses, duplicate literals, tautologies, and empty
// formulas.
func TestSolverUnitAndEmptyEdge(t *testing.T) {
	s := NewSolver(3)
	if assign, sat := s.SolveAssume(nil); !sat || len(assign) != 4 {
		t.Fatal("empty database must be sat")
	}
	if !s.AddClause(Clause{1, 1, 1}) {
		t.Fatal("duplicate-literal unit rejected")
	}
	if !s.AddClause(Clause{2, -2}) {
		t.Fatal("tautology rejected")
	}
	if assign, sat := s.SolveAssume(nil); !sat || !assign[1] {
		t.Fatalf("unit clause not honored: %v", assign)
	}
	if _, sat := s.SolveAssume([]Literal{-1}); sat {
		t.Fatal("assumption against a root unit must be unsat")
	}
	if assign, sat := s.SolveAssume(nil); !sat || !assign[1] {
		t.Fatal("solver must recover after failed assumption")
	}
	if s.AddClause(Clause{-1, -1}) {
		t.Fatal("contradiction with root unit must report false")
	}
	if _, sat := s.SolveAssume(nil); sat {
		t.Fatal("root-unsat solver reported sat")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

// FuzzCDCL cross-checks CDCL against DPLL on formulas decoded from raw
// bytes: every byte triple becomes a clause over a small variable range, so
// the fuzzer explores unit chains, contradictions, duplicates and
// tautologies that random k-SAT never generates.
func FuzzCDCL(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0, 0, 0, 255, 255, 255})
	f.Add([]byte{7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18})
	f.Add([]byte{1, 1, 1, 128, 128, 128, 2, 3, 130})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 5
		if len(data) > 60 {
			data = data[:60]
		}
		frm := &Formula{NumVars: n}
		for i := 0; i+2 < len(data); i += 3 {
			c := make(Clause, 3)
			for j := 0; j < 3; j++ {
				b := data[i+j]
				l := Literal(int(b)%n + 1)
				if b >= 128 {
					l = -l
				}
				c[j] = l
			}
			frm.Clauses = append(frm.Clauses, c)
		}
		assign, got := frm.Solve()
		_, want := frm.SolveDPLL()
		if got != want {
			t.Fatalf("CDCL=%v DPLL=%v formula=%v", got, want, frm.Clauses)
		}
		if got && !frm.Eval(assign) {
			t.Fatalf("CDCL returned non-model for %v", frm.Clauses)
		}
	})
}
