// Package sat provides exact solvers for 3SAT (DPLL) and Max 2SAT
// (branch and bound), plus random formula generators.
//
// These are the oracles that the paper's NP-hardness gadgets are verified
// against: a reduction is correct iff for every formula ψ,
// ψ ∈ 3SAT ⇔ ρ(Dψ) = kψ (Propositions 10, 34, 56, Lemmas 52-54) and
// analogously for Max 2SAT (Proposition 39).
package sat

import (
	"context"
	"math/rand"

	"repro/internal/ctxpoll"
)

// Literal is a signed variable reference: +v means variable v (1-based)
// positive, -v negated. Zero is invalid.
type Literal int

// Var returns the 1-based variable index of l.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether l is a positive literal.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Eval reports whether the assignment (1-based; assign[v] is the value of
// variable v) satisfies all clauses.
func (f *Formula) Eval(assign []bool) bool {
	return f.CountSatisfied(assign) == len(f.Clauses)
}

// CountSatisfied returns the number of clauses satisfied by assign.
func (f *Formula) CountSatisfied(assign []bool) int {
	n := 0
	for _, c := range f.Clauses {
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				n++
				break
			}
		}
	}
	return n
}

// Solve decides satisfiability with DPLL (unit propagation + pure-literal
// elimination) and returns a satisfying assignment when one exists.
func (f *Formula) Solve() (assign []bool, sat bool) {
	assign, sat, _ = f.SolveCtx(context.Background())
	return assign, sat
}

// SolveCtx is Solve with cooperative cancellation: the DPLL search polls
// ctx periodically and aborts with ctx.Err() when it is done. A non-nil
// error means the search was cut short and the sat result is meaningless.
func (f *Formula) SolveCtx(ctx context.Context) (assign []bool, sat bool, err error) {
	// values: 0 unknown, 1 true, -1 false.
	values := make([]int8, f.NumVars+1)
	cc := ctxpoll.New(ctx)
	if !dpll(f, values, cc) {
		if err := cc.Err(); err != nil {
			return nil, false, err
		}
		return nil, false, nil
	}
	assign = make([]bool, f.NumVars+1)
	// Normalize: unknown variables default to false.
	for v := 1; v <= f.NumVars; v++ {
		assign[v] = values[v] == 1
	}
	return assign, true, nil
}

// Satisfiable reports whether f has a model.
func (f *Formula) Satisfiable() bool {
	_, ok := f.Solve()
	return ok
}

func dpll(f *Formula, values []int8, cc *ctxpoll.Poller) bool {
	if cc.Cancelled() {
		return false
	}
	// Unit propagation and conflict detection.
	type undoRec struct{ v int }
	var undo []undoRec
	setLit := func(l Literal) bool {
		v := l.Var()
		want := int8(1)
		if !l.Positive() {
			want = -1
		}
		if values[v] == 0 {
			values[v] = want
			undo = append(undo, undoRec{v})
			return true
		}
		return values[v] == want
	}
	litVal := func(l Literal) int8 {
		v := values[l.Var()]
		if l.Positive() {
			return v
		}
		return -v
	}

	for {
		progressed := false
		for _, c := range f.Clauses {
			unassigned := 0
			var unit Literal
			satisfied := false
			for _, l := range c {
				switch litVal(l) {
				case 1:
					satisfied = true
				case 0:
					unassigned++
					unit = l
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				for _, u := range undo {
					values[u.v] = 0
				}
				return false
			}
			if unassigned == 1 {
				if !setLit(unit) {
					for _, u := range undo {
						values[u.v] = 0
					}
					return false
				}
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}

	// Find an unassigned variable appearing in an unsatisfied clause.
	branch := 0
	for _, c := range f.Clauses {
		satisfied := false
		for _, l := range c {
			if litVal(l) == 1 {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		for _, l := range c {
			if litVal(l) == 0 {
				branch = l.Var()
				break
			}
		}
		if branch != 0 {
			break
		}
	}
	if branch == 0 {
		return true // all clauses satisfied
	}
	for _, try := range []int8{1, -1} {
		values[branch] = try
		if dpll(f, values, cc) {
			return true
		}
		if cc.Err() != nil {
			break
		}
	}
	values[branch] = 0
	for _, u := range undo {
		values[u.v] = 0
	}
	return false
}

// MaxSat returns the maximum number of simultaneously satisfiable clauses,
// by exhaustive search with memoized upper bounds. Intended for the small
// formulas used in gadget verification (NumVars ≤ ~20).
func (f *Formula) MaxSat() int {
	assign := make([]bool, f.NumVars+1)
	best := 0
	var rec func(v int)
	rec = func(v int) {
		if v > f.NumVars {
			if s := f.CountSatisfied(assign); s > best {
				best = s
			}
			return
		}
		assign[v] = true
		rec(v + 1)
		assign[v] = false
		rec(v + 1)
	}
	rec(1)
	return best
}

// Random3SAT generates a random 3CNF formula with n variables and m
// clauses; each clause has three distinct variables.
func Random3SAT(rng *rand.Rand, n, m int) *Formula {
	if n < 3 {
		panic("sat: Random3SAT needs n >= 3")
	}
	f := &Formula{NumVars: n}
	for i := 0; i < m; i++ {
		vars := rng.Perm(n)[:3]
		c := make(Clause, 3)
		for j, v := range vars {
			l := Literal(v + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			c[j] = l
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// Random2SAT generates a random 2CNF formula with n variables and m
// clauses over distinct variables.
func Random2SAT(rng *rand.Rand, n, m int) *Formula {
	if n < 2 {
		panic("sat: Random2SAT needs n >= 2")
	}
	f := &Formula{NumVars: n}
	for i := 0; i < m; i++ {
		vars := rng.Perm(n)[:2]
		c := make(Clause, 2)
		for j, v := range vars {
			l := Literal(v + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			c[j] = l
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// EnumerateAll3SAT yields every 3CNF formula shape over n variables with m
// clauses drawn from the given clause pool index set, for exhaustive gadget
// verification on small sizes. It calls fn for each formula; fn returning
// false stops enumeration.
func EnumerateAll3SAT(n, m int, fn func(*Formula) bool) {
	pool := allClauses(n, 3)
	idx := make([]int, m)
	var rec func(k, start int) bool
	rec = func(k, start int) bool {
		if k == m {
			f := &Formula{NumVars: n}
			for _, i := range idx {
				f.Clauses = append(f.Clauses, pool[i])
			}
			return fn(f)
		}
		for i := start; i < len(pool); i++ {
			idx[k] = i
			if !rec(k+1, i) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// allClauses enumerates all clauses of width w over n variables with
// distinct variables (unordered variable sets, all sign patterns).
func allClauses(n, w int) []Clause {
	var out []Clause
	vars := make([]int, w)
	var pick func(k, start int)
	pick = func(k, start int) {
		if k == w {
			for signs := 0; signs < 1<<w; signs++ {
				c := make(Clause, w)
				for i, v := range vars {
					l := Literal(v)
					if signs>>i&1 == 1 {
						l = -l
					}
					c[i] = l
				}
				out = append(out, c)
			}
			return
		}
		for v := start; v <= n; v++ {
			vars[k] = v
			pick(k+1, v+1)
		}
	}
	pick(0, 1)
	return out
}
