package sat

import (
	"context"
	"math/rand"
)

// Literal is a signed variable reference: +v means variable v (1-based)
// positive, -v negated. Zero is invalid.
type Literal int

// Var returns the 1-based variable index of l.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether l is a positive literal.
func (l Literal) Positive() bool { return l > 0 }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Eval reports whether the assignment (1-based; assign[v] is the value of
// variable v) satisfies all clauses.
func (f *Formula) Eval(assign []bool) bool {
	return f.CountSatisfied(assign) == len(f.Clauses)
}

// CountSatisfied returns the number of clauses satisfied by assign.
func (f *Formula) CountSatisfied(assign []bool) int {
	n := 0
	for _, c := range f.Clauses {
		for _, l := range c {
			if assign[l.Var()] == l.Positive() {
				n++
				break
			}
		}
	}
	return n
}

// Solver returns a fresh CDCL Solver loaded with the formula's clauses.
// When the clauses are contradictory at the root the solver is returned
// already-unsat (every SolveAssume reports unsat), which is exactly what
// the one-shot wrappers below need.
func (f *Formula) Solver() *Solver {
	s := NewSolver(f.NumVars)
	for _, c := range f.Clauses {
		if !s.AddClause(c) {
			break
		}
	}
	return s
}

// Solve decides satisfiability and returns a satisfying assignment when one
// exists. It is a thin one-shot wrapper over the CDCL Solver — the gadget
// verification oracles solve each formula once, so they get a fresh clause
// database per call; callers probing one clause set repeatedly should hold
// a Solver (or a cnfenc incremental encoder) instead.
func (f *Formula) Solve() (assign []bool, sat bool) {
	assign, sat, _ = f.SolveCtx(context.Background())
	return assign, sat
}

// SolveCtx is Solve with cooperative cancellation: the CDCL search polls
// ctx between conflicts and aborts with ctx.Err() when it is done. A
// non-nil error means the search was cut short and the sat result is
// meaningless.
func (f *Formula) SolveCtx(ctx context.Context) (assign []bool, sat bool, err error) {
	assign, sat, err = f.Solver().SolveAssumeCtx(ctx, nil)
	if err != nil || !sat {
		return nil, sat, err
	}
	// The solver's variable range equals the formula's, but keep the
	// contract independent of that detail.
	if len(assign) > f.NumVars+1 {
		assign = assign[:f.NumVars+1]
	}
	return assign, true, nil
}

// Satisfiable reports whether f has a model.
func (f *Formula) Satisfiable() bool {
	_, ok := f.Solve()
	return ok
}

// MaxSat returns the maximum number of simultaneously satisfiable clauses,
// by exhaustive search with memoized upper bounds. Intended for the small
// formulas used in gadget verification (NumVars ≤ ~20).
func (f *Formula) MaxSat() int {
	assign := make([]bool, f.NumVars+1)
	best := 0
	var rec func(v int)
	rec = func(v int) {
		if v > f.NumVars {
			if s := f.CountSatisfied(assign); s > best {
				best = s
			}
			return
		}
		assign[v] = true
		rec(v + 1)
		assign[v] = false
		rec(v + 1)
	}
	rec(1)
	return best
}

// randomKSAT generates a random kCNF formula: each clause has k distinct
// variables drawn by a partial Fisher–Yates shuffle — O(k) work per clause
// instead of the full rng.Perm(n) the old generators paid, which is what
// keeps the fuzz and differential suites fast at large n.
func randomKSAT(rng *rand.Rand, n, m, k int) *Formula {
	f := &Formula{NumVars: n}
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i + 1
	}
	f.Clauses = make([]Clause, 0, m)
	for i := 0; i < m; i++ {
		c := make(Clause, k)
		for j := 0; j < k; j++ {
			// Swap a uniform pick from the unchosen suffix into position j;
			// the prefix vars[:j] holds this clause's distinct variables.
			r := j + rng.Intn(n-j)
			vars[j], vars[r] = vars[r], vars[j]
			l := Literal(vars[j])
			if rng.Intn(2) == 0 {
				l = -l
			}
			c[j] = l
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// Random3SAT generates a random 3CNF formula with n variables and m
// clauses; each clause has three distinct variables.
func Random3SAT(rng *rand.Rand, n, m int) *Formula {
	if n < 3 {
		panic("sat: Random3SAT needs n >= 3")
	}
	return randomKSAT(rng, n, m, 3)
}

// Random2SAT generates a random 2CNF formula with n variables and m
// clauses over distinct variables.
func Random2SAT(rng *rand.Rand, n, m int) *Formula {
	if n < 2 {
		panic("sat: Random2SAT needs n >= 2")
	}
	return randomKSAT(rng, n, m, 2)
}

// EnumerateAll3SAT yields every 3CNF formula shape over n variables with m
// clauses drawn from the given clause pool index set, for exhaustive gadget
// verification on small sizes. It calls fn for each formula; fn returning
// false stops enumeration.
func EnumerateAll3SAT(n, m int, fn func(*Formula) bool) {
	pool := allClauses(n, 3)
	idx := make([]int, m)
	var rec func(k, start int) bool
	rec = func(k, start int) bool {
		if k == m {
			f := &Formula{NumVars: n}
			for _, i := range idx {
				f.Clauses = append(f.Clauses, pool[i])
			}
			return fn(f)
		}
		for i := start; i < len(pool); i++ {
			idx[k] = i
			if !rec(k+1, i) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
}

// allClauses enumerates all clauses of width w over n variables with
// distinct variables (unordered variable sets, all sign patterns).
func allClauses(n, w int) []Clause {
	var out []Clause
	vars := make([]int, w)
	var pick func(k, start int)
	pick = func(k, start int) {
		if k == w {
			for signs := 0; signs < 1<<w; signs++ {
				c := make(Clause, w)
				for i, v := range vars {
					l := Literal(v)
					if signs>>i&1 == 1 {
						l = -l
					}
					c[i] = l
				}
				out = append(out, c)
			}
			return
		}
		for v := start; v <= n; v++ {
			vars[k] = v
			pick(k+1, v+1)
		}
	}
	pick(0, 1)
	return out
}
