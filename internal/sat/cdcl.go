package sat

import (
	"context"

	"repro/internal/ctxpoll"
)

// Solver is an iterative CDCL SAT solver with a persistent clause database:
// two-watched-literal propagation, first-UIP conflict analysis with clause
// learning, VSIDS-style activity branching with phase saving, and a Luby
// restart policy. Clauses are added once with AddClause and every
// SolveAssume call reuses — and extends — the learned-clause database, so a
// sequence of queries over the same clauses (the engine's budget binary
// search) shares all derived lemmas instead of re-deriving them per call.
//
// Assumptions follow the MiniSat interface (Eén & Sörensson): SolveAssume
// decides the given literals first, at decision levels below every search
// decision, and reports satisfiability *under* them. Learned clauses are
// consequences of the clause database alone — assumption literals appear in
// lemmas as ordinary literals — so learning under one assumption set never
// changes satisfiability under another.
type Solver struct {
	numVars int
	ok      bool // false once the database is unsatisfiable at the root

	clauses []*cdclClause // problem clauses (len >= 2)
	learnts []*cdclClause // learned clauses (len >= 2)
	units   []Literal     // learned unit facts, re-asserted at level 0 per solve

	// watches[litCode(l)] lists the clauses currently watching l; a clause
	// is inspected only when one of its two watched literals becomes false.
	watches [][]*cdclClause

	assigns []int8        // var -> 0 unknown, 1 true, -1 false
	phase   []int8        // var -> last assigned sign (phase saving); 0 = never
	level   []int32       // var -> decision level of its assignment
	reason  []*cdclClause // var -> antecedent clause (nil for decisions)
	active  []bool        // var occurs in some clause (decision candidates)

	trail    []Literal
	trailLim []int // trail length at each decision level
	qhead    int   // propagation queue head (index into trail)

	activity []float64
	varInc   float64

	seen      []bool // analyze scratch, cleared after each conflict
	rootLevel int    // decision level holding the current assumptions

	conflicts int64 // lifetime conflict count (restart pacing, stats)
}

type cdclClause struct {
	lits    []Literal
	learnt  bool
	deleted bool // lazily unlinked from watch lists during propagation
}

// litCode maps a literal to its dense watch-list index.
func litCode(l Literal) int {
	v := int(l)
	if v < 0 {
		return -v<<1 | 1
	}
	return v << 1
}

// NewSolver returns an empty solver over variables 1..numVars. AddClause
// grows the variable range on demand, so numVars is a capacity hint more
// than a bound.
func NewSolver(numVars int) *Solver {
	s := &Solver{ok: true, varInc: 1}
	s.ensureVars(numVars)
	return s
}

func (s *Solver) ensureVars(n int) {
	if n <= s.numVars {
		return
	}
	grow := n + 1
	for len(s.assigns) < grow {
		s.assigns = append(s.assigns, 0)
		s.phase = append(s.phase, 0)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.active = append(s.active, false)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
	}
	for len(s.watches) < 2*grow {
		s.watches = append(s.watches, nil)
	}
	s.numVars = n
}

// NumVars returns the current variable range.
func (s *Solver) NumVars() int { return s.numVars }

// NumLearnts returns the number of retained learned clauses (unit facts
// included), exposed for tests and benchmarks of incrementality.
func (s *Solver) NumLearnts() int { return len(s.learnts) + len(s.units) }

// Conflicts returns the lifetime conflict count.
func (s *Solver) Conflicts() int64 { return s.conflicts }

func (s *Solver) value(l Literal) int8 {
	v := s.assigns[l.Var()]
	if l < 0 {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause to the database, simplifying it against the
// root-level assignment. It reports whether the database is still possibly
// satisfiable: false means unsatisfiability was detected at the root, after
// which every solve reports unsat. Tautologies and duplicate literals are
// removed; the caller's slice is not retained.
func (s *Solver) AddClause(c Clause) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	for _, l := range c {
		if l == 0 {
			panic("sat: zero literal in clause")
		}
		s.ensureVars(l.Var())
	}
	// Dedup and tautology elimination on a private copy.
	lits := make([]Literal, 0, len(c))
outer:
	for _, l := range c {
		switch s.value(l) {
		case 1:
			if s.level[l.Var()] == 0 {
				return true // satisfied at the root: no-op
			}
		case -1:
			if s.level[l.Var()] == 0 {
				continue // false at the root: drop the literal
			}
		}
		for _, k := range lits {
			if k == l {
				continue outer
			}
			if k == -l {
				return true // tautology
			}
		}
		lits = append(lits, l)
	}
	switch len(lits) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueueRoot(lits[0]) {
			return false
		}
		return true
	}
	cl := &cdclClause{lits: lits}
	s.clauses = append(s.clauses, cl)
	s.attach(cl)
	return true
}

// enqueueRoot asserts a literal at level 0 and propagates; false on
// root-level conflict (database unsatisfiable).
func (s *Solver) enqueueRoot(l Literal) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		s.ok = false
		return false
	}
	s.uncheckedEnqueue(l, nil)
	if s.propagate() != nil {
		s.ok = false
		return false
	}
	return true
}

func (s *Solver) attach(c *cdclClause) {
	for _, l := range c.lits {
		s.active[l.Var()] = true
	}
	s.watches[litCode(c.lits[0])] = append(s.watches[litCode(c.lits[0])], c)
	s.watches[litCode(c.lits[1])] = append(s.watches[litCode(c.lits[1])], c)
}

func (s *Solver) uncheckedEnqueue(l Literal, from *cdclClause) {
	v := l.Var()
	if l > 0 {
		s.assigns[v] = 1
		s.phase[v] = 1
	} else {
		s.assigns[v] = -1
		s.phase[v] = -1
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate runs two-watched-literal unit propagation to fixpoint and
// returns the conflicting clause, or nil. On conflict the propagation
// queue is flushed; the trail is left for analyze.
func (s *Solver) propagate() *cdclClause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		fl := -p // literal that just became false
		code := litCode(fl)
		ws := s.watches[code]
		j := 0
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if c.deleted {
				continue // lazily unlink
			}
			if c.lits[0] == fl {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Invariant: c.lits[1] == fl.
			if s.value(c.lits[0]) == 1 {
				ws[j] = c
				j++
				continue
			}
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != -1 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					wc := litCode(c.lits[1])
					s.watches[wc] = append(s.watches[wc], c)
					moved = true
					break
				}
			}
			if moved {
				continue // watch migrated off fl
			}
			// Clause is unit or conflicting under the current assignment.
			ws[j] = c
			j++
			if s.value(c.lits[0]) == -1 {
				for i++; i < len(ws); i++ {
					if !ws[i].deleted {
						ws[j] = ws[i]
						j++
					}
				}
				s.watches[code] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[code] = ws[:j]
	}
	return nil
}

// analyze derives the first-UIP clause from a conflict. It returns the
// learned clause — asserting literal first, a deepest remaining literal
// second (the backjump watch) — and the backtrack level.
func (s *Solver) analyze(confl *cdclClause) ([]Literal, int) {
	learnt := []Literal{0}
	idx := len(s.trail) - 1
	var p Literal
	pathC := 0
	for {
		start := 0
		if p != 0 {
			start = 1 // reason[v].lits[0] is the implied literal itself
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		pathC--
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = -p

	bt := 0
	maxAt := -1
	for i := 1; i < len(learnt); i++ {
		s.seen[learnt[i].Var()] = false
		if l := int(s.level[learnt[i].Var()]); l > bt {
			bt = l
			maxAt = i
		}
	}
	if maxAt > 1 {
		// The deepest non-asserting literal is the last to be unassigned on
		// backjump: watch it.
		learnt[1], learnt[maxAt] = learnt[maxAt], learnt[1]
	}
	return learnt, bt
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

const varDecay = 0.95

func (s *Solver) decayActivity() { s.varInc /= varDecay }

// record installs a learned clause and asserts its first literal.
func (s *Solver) record(lits []Literal) {
	if len(lits) == 1 {
		// A formula-level fact: remember it so future solves can re-assert
		// it at level 0 (it may currently be asserted above level 0 when
		// assumptions are active).
		s.units = append(s.units, lits[0])
		s.uncheckedEnqueue(lits[0], nil)
		return
	}
	c := &cdclClause{lits: append([]Literal(nil), lits...), learnt: true}
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.uncheckedEnqueue(c.lits[0], c)
}

func (s *Solver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

// cancelUntil backtracks to the given decision level, keeping assignments
// made at or below it.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	back := s.trailLim[level]
	for i := len(s.trail) - 1; i >= back; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = 0
		s.reason[v] = nil
	}
	s.trail = s.trail[:back]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// pickBranchVar returns the unassigned active variable with the highest
// VSIDS activity (lowest index on ties), or 0 when every active variable is
// assigned — i.e. the clause database is satisfied.
func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.numVars; v++ {
		if s.assigns[v] == 0 && s.active[v] && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// maxLearnts bounds the retained learned-clause database; above it, long
// unlocked lemmas from the older half are dropped (binary lemmas and
// current antecedents are always kept).
const maxLearnts = 8000

func (s *Solver) reduceDB() {
	if len(s.learnts) <= maxLearnts {
		return
	}
	kept := s.learnts[:0]
	drop := len(s.learnts) / 2
	for i, c := range s.learnts {
		locked := s.reason[c.lits[0].Var()] == c && s.value(c.lits[0]) == 1
		if i < drop && len(c.lits) > 2 && !locked {
			c.deleted = true
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
}

type searchStatus int8

const (
	stSat searchStatus = iota
	stUnsat
	stRestart
)

// search runs CDCL until a model, an assumption-level conflict, or the
// restart budget; maxConfl < 0 disables the restart budget.
func (s *Solver) search(poll *ctxpoll.Poller, maxConfl int64) (searchStatus, error) {
	var nConfl int64
	for {
		if confl := s.propagate(); confl != nil {
			s.conflicts++
			nConfl++
			if s.decisionLevel() == 0 {
				s.ok = false
				return stUnsat, nil
			}
			if s.decisionLevel() <= s.rootLevel {
				// The conflict depends only on assumptions: unsat under them.
				return stUnsat, nil
			}
			learnt, bt := s.analyze(confl)
			if bt < s.rootLevel {
				bt = s.rootLevel
			}
			s.cancelUntil(bt)
			s.record(learnt)
			s.decayActivity()
			continue
		}
		if poll.Cancelled() {
			return stRestart, poll.Err()
		}
		if maxConfl >= 0 && nConfl >= maxConfl {
			s.cancelUntil(s.rootLevel)
			return stRestart, nil
		}
		s.reduceDB()
		v := s.pickBranchVar()
		if v == 0 {
			return stSat, nil
		}
		l := Literal(v)
		if s.phase[v] != 1 {
			l = -l // saved phase, defaulting to false (delete nothing)
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(l, nil)
	}
}

// SolveAssume decides satisfiability of the clause database under the given
// assumption literals, returning a model (1-based, like Formula.Solve) when
// satisfiable. Learned clauses persist into subsequent calls.
func (s *Solver) SolveAssume(assumptions []Literal) (assign []bool, sat bool) {
	assign, sat, _ = s.SolveAssumeCtx(context.Background(), assumptions)
	return assign, sat
}

// SolveAssumeCtx is SolveAssume with cooperative cancellation: the search
// polls ctx between conflicts and aborts with ctx.Err() when it is done. A
// non-nil error means the verdict is meaningless.
func (s *Solver) SolveAssumeCtx(ctx context.Context, assumptions []Literal) (assign []bool, sat bool, err error) {
	if !s.ok {
		return nil, false, nil
	}
	poll := ctxpoll.New(ctx)
	defer s.cancelUntil(0)
	s.cancelUntil(0)
	// Re-assert unit lemmas from earlier assumption-level solves, then
	// reach the root fixpoint.
	for _, u := range s.units {
		if !s.enqueueRoot(u) {
			return nil, false, nil
		}
	}
	s.units = s.units[:0]
	if s.propagate() != nil {
		s.ok = false
		return nil, false, nil
	}
	// Establish assumptions as the bottom decision levels.
	for _, a := range assumptions {
		if a == 0 {
			panic("sat: zero assumption literal")
		}
		s.ensureVars(a.Var())
		switch s.value(a) {
		case 1:
			continue // already implied
		case -1:
			return nil, false, nil // contradicts the database or earlier assumptions
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(a, nil)
		if s.propagate() != nil {
			return nil, false, nil
		}
	}
	s.rootLevel = s.decisionLevel()

	for try := int64(0); ; try++ {
		status, err := s.search(poll, 100*luby(try))
		if err != nil {
			return nil, false, err
		}
		switch status {
		case stSat:
			model := make([]bool, s.numVars+1)
			for v := 1; v <= s.numVars; v++ {
				model[v] = s.assigns[v] == 1
			}
			return model, true, nil
		case stUnsat:
			return nil, false, nil
		}
	}
}

// luby is the Luby restart sequence 1,1,2,1,1,2,4,1,1,2,...
func luby(i int64) int64 {
	// Walk down the complete subsequences (of lengths 2^k - 1) containing
	// index i; the value is 2^seq at the subsequence's last position.
	var size, seq int64 = 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	return 1 << seq
}
