package sat

import (
	"math/rand"
	"testing"
)

func TestSolveTrivial(t *testing.T) {
	f := &Formula{NumVars: 3, Clauses: []Clause{{1, 2, 3}}}
	assign, ok := f.Solve()
	if !ok {
		t.Fatal("satisfiable formula reported unsat")
	}
	if !f.Eval(assign) {
		t.Fatal("returned assignment does not satisfy formula")
	}
}

func TestSolveUnsat(t *testing.T) {
	// (x) ∧ (¬x) via padding: x∨x∨x etc.
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{1, 1, 1}, {-1, -1, -1},
	}}
	if f.Satisfiable() {
		t.Fatal("unsatisfiable formula reported sat")
	}
}

func TestSolveForcedChain(t *testing.T) {
	// Unit chain forcing x1=T, x2=T, x3=F.
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{1},
		{-1, 2},
		{-2, -3},
		{-3},
	}}
	assign, ok := f.Solve()
	if !ok {
		t.Fatal("reported unsat")
	}
	if !assign[1] || !assign[2] || assign[3] {
		t.Errorf("assignment = %v, want T,T,F", assign[1:])
	}
}

func TestSolveAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(5)
		m := 1 + rng.Intn(12)
		f := Random3SAT(rng, n, m)
		got := f.Satisfiable()
		want := bruteSat(f)
		if got != want {
			t.Fatalf("trial %d: DPLL=%v brute=%v formula=%v", trial, got, want, f.Clauses)
		}
	}
}

func TestSolutionAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		f := Random3SAT(rng, 4+rng.Intn(4), 1+rng.Intn(15))
		if assign, ok := f.Solve(); ok && !f.Eval(assign) {
			t.Fatalf("trial %d: Solve returned non-model", trial)
		}
	}
}

func TestMaxSatVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		f := Random2SAT(rng, 2+rng.Intn(6), 1+rng.Intn(10))
		got := f.MaxSat()
		want := bruteMaxSat(f)
		if got != want {
			t.Fatalf("trial %d: MaxSat=%d brute=%d", trial, got, want)
		}
	}
}

func TestMaxSatUnsatisfiableFormula(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{
		{1, 2}, {1, -2}, {-1, 2}, {-1, -2},
	}}
	if got := f.MaxSat(); got != 3 {
		t.Errorf("MaxSat = %d, want 3 (classic 2SAT gadget)", got)
	}
	if f.Satisfiable() {
		t.Error("formula should be unsat")
	}
}

func TestEnumerateAll3SATCountsAndStops(t *testing.T) {
	count := 0
	EnumerateAll3SAT(3, 1, func(f *Formula) bool {
		count++
		if len(f.Clauses) != 1 || f.NumVars != 3 {
			t.Fatal("bad formula shape")
		}
		return true
	})
	// One variable-set {1,2,3} with 8 sign patterns.
	if count != 8 {
		t.Errorf("enumerated %d formulas, want 8", count)
	}
	count = 0
	EnumerateAll3SAT(3, 1, func(*Formula) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
}

func TestLiteralHelpers(t *testing.T) {
	if Literal(-5).Var() != 5 || Literal(5).Var() != 5 {
		t.Error("Var() wrong")
	}
	if Literal(-5).Positive() || !Literal(5).Positive() {
		t.Error("Positive() wrong")
	}
}

func bruteSat(f *Formula) bool {
	assign := make([]bool, f.NumVars+1)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v > f.NumVars {
			return f.Eval(assign)
		}
		assign[v] = true
		if rec(v + 1) {
			return true
		}
		assign[v] = false
		return rec(v + 1)
	}
	return rec(1)
}

func bruteMaxSat(f *Formula) int {
	assign := make([]bool, f.NumVars+1)
	best := 0
	var rec func(v int)
	rec = func(v int) {
		if v > f.NumVars {
			if s := f.CountSatisfied(assign); s > best {
				best = s
			}
			return
		}
		assign[v] = true
		rec(v + 1)
		assign[v] = false
		rec(v + 1)
	}
	rec(1)
	return best
}

func BenchmarkCDCLRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	formulas := make([]*Formula, 32)
	for i := range formulas {
		formulas[i] = Random3SAT(rng, 12, 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		formulas[i%len(formulas)].Satisfiable()
	}
}

func BenchmarkDPLLRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	formulas := make([]*Formula, 32)
	for i := range formulas {
		formulas[i] = Random3SAT(rng, 12, 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		formulas[i%len(formulas)].SolveDPLL()
	}
}
