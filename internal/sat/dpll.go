package sat

import (
	"context"

	"repro/internal/ctxpoll"
)

// SolveDPLL decides satisfiability with the pre-CDCL recursive DPLL (unit
// propagation + chronological backtracking). It is retained as the
// independent reference implementation for the CDCL differential suite: the
// two solvers share no search code, so agreement on random and enumerated
// formulas pins the CDCL rewrite to the legacy semantics.
func (f *Formula) SolveDPLL() (assign []bool, sat bool) {
	assign, sat, _ = f.SolveDPLLCtx(context.Background())
	return assign, sat
}

// SolveDPLLCtx is SolveDPLL with cooperative cancellation, mirroring
// SolveCtx: a non-nil error means the search was cut short and the sat
// result is meaningless.
func (f *Formula) SolveDPLLCtx(ctx context.Context) (assign []bool, sat bool, err error) {
	// values: 0 unknown, 1 true, -1 false.
	values := make([]int8, f.NumVars+1)
	cc := ctxpoll.New(ctx)
	if !dpll(f, values, cc) {
		if err := cc.Err(); err != nil {
			return nil, false, err
		}
		return nil, false, nil
	}
	assign = make([]bool, f.NumVars+1)
	// Normalize: unknown variables default to false.
	for v := 1; v <= f.NumVars; v++ {
		assign[v] = values[v] == 1
	}
	return assign, true, nil
}

func dpll(f *Formula, values []int8, cc *ctxpoll.Poller) bool {
	if cc.Cancelled() {
		return false
	}
	// Unit propagation and conflict detection.
	type undoRec struct{ v int }
	var undo []undoRec
	setLit := func(l Literal) bool {
		v := l.Var()
		want := int8(1)
		if !l.Positive() {
			want = -1
		}
		if values[v] == 0 {
			values[v] = want
			undo = append(undo, undoRec{v})
			return true
		}
		return values[v] == want
	}
	litVal := func(l Literal) int8 {
		v := values[l.Var()]
		if l.Positive() {
			return v
		}
		return -v
	}

	for {
		progressed := false
		for _, c := range f.Clauses {
			unassigned := 0
			var unit Literal
			satisfied := false
			for _, l := range c {
				switch litVal(l) {
				case 1:
					satisfied = true
				case 0:
					unassigned++
					unit = l
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				for _, u := range undo {
					values[u.v] = 0
				}
				return false
			}
			if unassigned == 1 {
				if !setLit(unit) {
					for _, u := range undo {
						values[u.v] = 0
					}
					return false
				}
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}

	// Find an unassigned variable appearing in an unsatisfied clause.
	branch := 0
	for _, c := range f.Clauses {
		satisfied := false
		for _, l := range c {
			if litVal(l) == 1 {
				satisfied = true
				break
			}
		}
		if satisfied {
			continue
		}
		for _, l := range c {
			if litVal(l) == 0 {
				branch = l.Var()
				break
			}
		}
		if branch != 0 {
			break
		}
	}
	if branch == 0 {
		return true // all clauses satisfied
	}
	for _, try := range []int8{1, -1} {
		values[branch] = try
		if dpll(f, values, cc) {
			return true
		}
		if cc.Err() != nil {
			break
		}
	}
	values[branch] = 0
	for _, u := range undo {
		values[u.v] = 0
	}
	return false
}
