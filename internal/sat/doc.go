// Package sat provides the repository's SAT machinery: an incremental CDCL
// solver, one-shot CNF oracles, a Max 2SAT brute-force oracle, and random
// formula generators.
//
// # Roles
//
// The package serves two very different consumers:
//
//   - The paper's NP-hardness gadget verifiers. A reduction is correct iff
//     for every formula ψ, ψ ∈ 3SAT ⇔ ρ(Dψ) = kψ (Propositions 10, 34, 56,
//     Lemmas 52–54) and analogously for Max 2SAT (Proposition 39). These
//     callers solve each formula once, through Formula.Solve / SolveCtx /
//     MaxSat.
//   - The engine's SAT-side resilience solver, which binary-searches the
//     deletion budget k over one CNF rendering of a hitting-set component.
//     These callers hold a Solver and probe it repeatedly through
//     SolveAssume, so every probe reuses the clause database — problem
//     clauses and learned lemmas alike.
//
// # The CDCL Solver
//
// Solver is an iterative conflict-driven clause-learning solver in the
// MiniSat lineage (Eén & Sörensson): two-watched-literal propagation,
// first-UIP conflict analysis, VSIDS-style variable activities with phase
// saving, Luby restarts, and assumption literals. AddClause loads clauses
// incrementally; SolveAssume(assumptions) decides satisfiability under the
// assumptions while keeping every learned clause for the next call. Learned
// clauses are consequences of the clause database only — never of the
// assumptions — so a Solver shared across budget probes is sound: the
// lemmas derived while refuting budget k prune the search at budget k+1.
//
// Formula.Solve and Formula.SolveCtx remain the one-shot entry points and
// are thin wrappers that load a fresh Solver per call. The pre-CDCL
// recursive DPLL survives as Formula.SolveDPLL, the independent reference
// the differential suite pins the CDCL solver against.
package sat
