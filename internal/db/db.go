package db

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
)

// Value is an interned constant of the active domain.
type Value int32

// MaxArity is the largest supported relation arity. The paper's queries are
// unary/binary plus one ternary relation (W in the tripod query), all within
// this cap.
const MaxArity = 4

// Tuple is a single fact R(a1,...,ak). It is comparable and therefore
// usable as a map key.
type Tuple struct {
	Rel   string
	Arity uint8
	Args  [MaxArity]Value
}

// NewTuple builds a tuple for relation rel with the given arguments.
func NewTuple(rel string, args ...Value) Tuple {
	if len(args) == 0 || len(args) > MaxArity {
		panic(fmt.Sprintf("db: tuple arity %d out of range [1,%d]", len(args), MaxArity))
	}
	t := Tuple{Rel: rel, Arity: uint8(len(args))}
	copy(t.Args[:], args)
	return t
}

// Values returns the argument slice of t (length = arity).
func (t Tuple) Values() []Value { return t.Args[:t.Arity] }

// ConstSet returns the set of distinct constants appearing in t.
func (t Tuple) ConstSet() map[Value]bool {
	s := make(map[Value]bool, t.Arity)
	for _, v := range t.Values() {
		s[v] = true
	}
	return s
}

// Relation is a set of same-arity tuples with per-position indexes.
//
// Concurrency: mutations (add/remove, reached via Database.Add / Delete /
// RestoreTo) require exclusive access, but any number of goroutines may
// read — including Lookup, whose lazy index rebuild is serialized by mu and
// published through the ready flag, so concurrent readers of an unindexed
// relation are safe. Database.Freeze performs every pending rebuild
// eagerly, making a subsequently read-only database contention-free.
type Relation struct {
	Name  string
	Arity int

	tuples map[Tuple]bool
	// index[p][v] lists tuples whose p-th argument is v. It is rebuilt
	// lazily: ready reports whether index matches tuples, and mu serializes
	// the rebuild itself. ready.Store(true) after the index writes gives
	// readers that observe ready the happens-before edge they need.
	index [MaxArity]map[Value][]Tuple
	ready atomic.Bool
	mu    sync.Mutex
}

func newRelation(name string, arity int) *Relation {
	return &Relation{Name: name, Arity: arity, tuples: map[Tuple]bool{}}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Has reports membership.
func (r *Relation) Has(t Tuple) bool { return r.tuples[t] }

// Tuples returns all tuples in deterministic (sorted) order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.tuples))
	for t := range r.tuples {
		out = append(out, t)
	}
	SortTuples(out)
	return out
}

func (r *Relation) add(t Tuple) bool {
	if r.tuples[t] {
		return false
	}
	r.tuples[t] = true
	r.ready.Store(false)
	return true
}

func (r *Relation) remove(t Tuple) bool {
	if !r.tuples[t] {
		return false
	}
	delete(r.tuples, t)
	r.ready.Store(false)
	return true
}

func (r *Relation) rebuild() {
	if r.ready.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ready.Load() {
		return
	}
	for p := 0; p < r.Arity; p++ {
		r.index[p] = make(map[Value][]Tuple, len(r.tuples))
	}
	for t := range r.tuples {
		for p := 0; p < r.Arity; p++ {
			r.index[p][t.Args[p]] = append(r.index[p][t.Args[p]], t)
		}
	}
	r.ready.Store(true)
}

// Lookup returns the tuples whose p-th argument equals v.
func (r *Relation) Lookup(p int, v Value) []Tuple {
	r.rebuild()
	return r.index[p][v]
}

// DistinctAt returns the number of distinct values occurring at argument
// position p, i.e. the number of index buckets there. Len()/DistinctAt(p)
// is the average fanout of a position-p probe — the selectivity statistic
// the cost-based join planner uses. Like Lookup it materialises the index.
func (r *Relation) DistinctAt(p int) int {
	r.rebuild()
	return len(r.index[p])
}

// Database is a set of relations plus a string-to-constant interner.
// The zero value is not usable; call New.
type Database struct {
	rels  map[string]*Relation
	names []string
	index map[string]Value

	// uid identifies this Database object for the lifetime of the process;
	// version counts the tuple mutations applied to it. Together they key
	// caches of facts derived from the contents (the engine's witness-IR
	// cache): any mutation — including a Delete later undone by RestoreTo —
	// bumps version, so derived facts are conservatively invalidated.
	uid     uint64
	version uint64

	// deleted tracks tuples temporarily removed by the solvers so they can
	// be restored cheaply; see Delete/Restore.
	deleted []Tuple
}

// nextUID hands out process-unique database identities.
var nextUID atomic.Uint64

// New returns an empty database.
func New() *Database {
	return &Database{
		rels:  map[string]*Relation{},
		index: map[string]Value{},
		uid:   nextUID.Add(1),
	}
}

// UID returns the process-unique identity of this Database object. A Clone
// gets a fresh UID: caches keyed by (UID, Version) never confuse a copy
// with its original.
func (d *Database) UID() uint64 { return d.uid }

// Version returns the number of tuple mutations applied to d so far. It is
// monotonically increasing; a Database whose (UID, Version) pair matches an
// earlier observation is guaranteed to hold the same tuples. Reads (index
// rebuilds, Freeze) do not change the version.
func (d *Database) Version() uint64 { return d.version }

// SetVersion overrides the mutation counter. It exists for durable-state
// recovery, which rebuilds a registered database from persisted facts
// (each insertion bumping the counter from zero) and must then resume
// the persisted version lineage that watchers and version-keyed clients
// observe; nothing else should call it.
func (d *Database) SetVersion(v uint64) { d.version = v }

// Const interns the constant with the given name.
func (d *Database) Const(name string) Value {
	if v, ok := d.index[name]; ok {
		return v
	}
	v := Value(len(d.names))
	d.names = append(d.names, name)
	d.index[name] = v
	return v
}

// LookupConst returns the interned value of the constant with the given
// name, if any. Unlike Const it never interns: it is the read-only lookup
// for code probing a shared database it must not mutate (e.g. the serving
// layer resolving tuples named in a request).
func (d *Database) LookupConst(name string) (Value, bool) {
	v, ok := d.index[name]
	return v, ok
}

// ConstName returns the display name of v.
func (d *Database) ConstName(v Value) string {
	if int(v) < 0 || int(v) >= len(d.names) {
		return fmt.Sprintf("#%d", int(v))
	}
	return d.names[v]
}

// NumConsts returns the size of the active domain seen so far.
func (d *Database) NumConsts() int { return len(d.names) }

// Relation returns the relation named rel, creating it with the given arity
// on first use. It panics on arity mismatch with an existing relation.
func (d *Database) Relation(rel string, arity int) *Relation {
	r, ok := d.rels[rel]
	if !ok {
		r = newRelation(rel, arity)
		d.rels[rel] = r
		return r
	}
	if r.Arity != arity {
		panic(fmt.Sprintf("db: relation %s has arity %d, not %d", rel, r.Arity, arity))
	}
	return r
}

// Rel returns the relation named rel or nil if absent.
func (d *Database) Rel(rel string) *Relation { return d.rels[rel] }

// Add inserts the fact rel(args...) using interned values.
func (d *Database) Add(rel string, args ...Value) Tuple {
	t := NewTuple(rel, args...)
	if d.Relation(rel, len(args)).add(t) {
		d.version++
	}
	return t
}

// AddNames inserts the fact rel(names...) interning each constant name.
func (d *Database) AddNames(rel string, names ...string) Tuple {
	args := make([]Value, len(names))
	for i, n := range names {
		args[i] = d.Const(n)
	}
	return d.Add(rel, args...)
}

// AddTuple inserts an existing tuple value.
func (d *Database) AddTuple(t Tuple) {
	if d.Relation(t.Rel, int(t.Arity)).add(t) {
		d.version++
	}
}

// Has reports whether the fact is present.
func (d *Database) Has(t Tuple) bool {
	r := d.rels[t.Rel]
	return r != nil && r.Has(t)
}

// Remove deletes the fact if present.
func (d *Database) Remove(t Tuple) {
	if r := d.rels[t.Rel]; r != nil && r.remove(t) {
		d.version++
	}
}

// Delete removes t and records it on the restore stack.
func (d *Database) Delete(t Tuple) {
	if d.Has(t) {
		d.Remove(t)
		d.deleted = append(d.deleted, t)
	}
}

// RestoreMark returns the current height of the restore stack.
func (d *Database) RestoreMark() int { return len(d.deleted) }

// RestoreTo undoes all Delete calls made after the given mark.
func (d *Database) RestoreTo(mark int) {
	for len(d.deleted) > mark {
		t := d.deleted[len(d.deleted)-1]
		d.deleted = d.deleted[:len(d.deleted)-1]
		d.AddTuple(t)
	}
}

// Freeze eagerly rebuilds every relation's positional indexes. Lazy
// rebuilds are individually safe for concurrent readers, but a caller about
// to share d read-only across goroutines (the engine's solver portfolio,
// witness enumeration for a shared IR) can Freeze first so no reader ever
// contends on a rebuild. Mutating d afterwards is allowed and simply
// re-arms the lazy rebuild.
func (d *Database) Freeze() {
	for _, r := range d.rels {
		r.rebuild()
	}
}

// Len returns the total number of tuples across all relations.
func (d *Database) Len() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// RelationNames returns the relation names in sorted order.
func (d *Database) RelationNames() []string {
	out := make([]string, 0, len(d.rels))
	for n := range d.rels {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}

// AllTuples returns every tuple in the database in deterministic order.
func (d *Database) AllTuples() []Tuple {
	var out []Tuple
	for _, n := range d.RelationNames() {
		out = append(out, d.rels[n].Tuples()...)
	}
	return out
}

// Clone returns a deep copy sharing no mutable state with d. The copy
// keeps d's version (so a mutation lineage built by clone-then-mutate has
// monotonically increasing versions, which the watch surface relies on)
// but gets a fresh identity (UID), so cache keys never conflate the two.
func (d *Database) Clone() *Database {
	c := New()
	c.version = d.version
	c.names = append([]string(nil), d.names...)
	for n, v := range d.index {
		c.index[n] = v
	}
	for name, r := range d.rels {
		cr := newRelation(name, r.Arity)
		for t := range r.tuples {
			cr.tuples[t] = true
		}
		c.rels[name] = cr
	}
	return c
}

// TupleString renders a tuple with constant names resolved.
func (d *Database) TupleString(t Tuple) string {
	parts := make([]string, t.Arity)
	for i, v := range t.Values() {
		parts[i] = d.ConstName(v)
	}
	return t.Rel + "(" + strings.Join(parts, ",") + ")"
}

// String renders the whole database, one relation per line.
func (d *Database) String() string {
	var b strings.Builder
	for _, n := range d.RelationNames() {
		b.WriteString(n)
		b.WriteString(" = {")
		for i, t := range d.rels[n].Tuples() {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(d.TupleString(t))
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// SortTuples sorts ts in place by relation name, then lexicographically by
// arguments.
func SortTuples(ts []Tuple) {
	slices.SortFunc(ts, CompareTuples)
}

// CompareTuples gives a total order over tuples.
func CompareTuples(a, b Tuple) int {
	if a.Rel != b.Rel {
		if a.Rel < b.Rel {
			return -1
		}
		return 1
	}
	if a.Arity != b.Arity {
		return int(a.Arity) - int(b.Arity)
	}
	for i := 0; i < int(a.Arity); i++ {
		if a.Args[i] != b.Args[i] {
			return int(a.Args[i]) - int(b.Args[i])
		}
	}
	return 0
}
