package db

import "testing"

func TestInterning(t *testing.T) {
	d := New()
	a := d.Const("a")
	b := d.Const("b")
	if a == b {
		t.Fatal("distinct names interned to same value")
	}
	if d.Const("a") != a {
		t.Fatal("re-interning changed value")
	}
	if d.ConstName(a) != "a" || d.ConstName(b) != "b" {
		t.Fatal("ConstName mismatch")
	}
	if d.NumConsts() != 2 {
		t.Fatalf("NumConsts = %d, want 2", d.NumConsts())
	}
}

func TestAddHasRemove(t *testing.T) {
	d := New()
	tup := d.AddNames("R", "1", "2")
	if !d.Has(tup) {
		t.Fatal("added tuple not present")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	d.AddNames("R", "1", "2") // duplicate
	if d.Rel("R").Len() != 1 {
		t.Fatal("duplicate insert changed size")
	}
	d.Remove(tup)
	if d.Has(tup) {
		t.Fatal("removed tuple still present")
	}
}

func TestDeleteRestore(t *testing.T) {
	d := New()
	t1 := d.AddNames("R", "1", "2")
	t2 := d.AddNames("R", "2", "3")
	mark := d.RestoreMark()
	d.Delete(t1)
	d.Delete(t2)
	if d.Len() != 0 {
		t.Fatalf("Len after deletes = %d, want 0", d.Len())
	}
	d.RestoreTo(mark)
	if !d.Has(t1) || !d.Has(t2) {
		t.Fatal("RestoreTo did not restore tuples")
	}
}

func TestNestedRestore(t *testing.T) {
	d := New()
	t1 := d.AddNames("R", "1", "2")
	t2 := d.AddNames("R", "2", "3")
	t3 := d.AddNames("R", "3", "4")
	m0 := d.RestoreMark()
	d.Delete(t1)
	m1 := d.RestoreMark()
	d.Delete(t2)
	d.Delete(t3)
	d.RestoreTo(m1)
	if d.Has(t1) {
		t.Fatal("outer delete undone by inner restore")
	}
	if !d.Has(t2) || !d.Has(t3) {
		t.Fatal("inner deletes not restored")
	}
	d.RestoreTo(m0)
	if !d.Has(t1) {
		t.Fatal("outer restore failed")
	}
}

func TestLookupIndex(t *testing.T) {
	d := New()
	d.AddNames("R", "1", "2")
	d.AddNames("R", "1", "3")
	d.AddNames("R", "2", "3")
	one := d.Const("1")
	three := d.Const("3")
	if got := len(d.Rel("R").Lookup(0, one)); got != 2 {
		t.Errorf("Lookup(0,1) = %d tuples, want 2", got)
	}
	if got := len(d.Rel("R").Lookup(1, three)); got != 2 {
		t.Errorf("Lookup(1,3) = %d tuples, want 2", got)
	}
	// Index must refresh after mutation.
	d.Remove(NewTuple("R", one, d.Const("2")))
	if got := len(d.Rel("R").Lookup(0, one)); got != 1 {
		t.Errorf("Lookup(0,1) after remove = %d tuples, want 1", got)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	d := New()
	d.AddNames("R", "1", "2")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	d.AddNames("R", "1")
}

func TestCloneIsDeep(t *testing.T) {
	d := New()
	t1 := d.AddNames("R", "1", "2")
	c := d.Clone()
	c.Remove(t1)
	if !d.Has(t1) {
		t.Fatal("mutating clone affected original")
	}
	c.AddNames("S", "x")
	if d.Rel("S") != nil {
		t.Fatal("clone relation leaked into original")
	}
}

func TestTupleOrderingAndString(t *testing.T) {
	d := New()
	d.AddNames("S", "b")
	d.AddNames("R", "2", "1")
	d.AddNames("R", "1", "2")
	all := d.AllTuples()
	if len(all) != 3 {
		t.Fatalf("AllTuples = %d, want 3", len(all))
	}
	if all[0].Rel != "R" || all[2].Rel != "S" {
		t.Error("AllTuples not sorted by relation")
	}
	if CompareTuples(all[0], all[1]) >= 0 {
		t.Error("tuples not sorted within relation")
	}
	if s := d.TupleString(all[2]); s != "S(b)" {
		t.Errorf("TupleString = %q, want S(b)", s)
	}
}

func TestConstSet(t *testing.T) {
	d := New()
	tup := d.AddNames("R", "1", "1")
	if got := len(tup.ConstSet()); got != 1 {
		t.Errorf("ConstSet of R(1,1) = %d values, want 1", got)
	}
}
