// Package db implements in-memory database instances for the resilience
// problem: named relations of fixed-arity tuples over an interned constant
// domain, with positional indexes to support join evaluation.
//
// Tuples are small comparable structs (arity capped at MaxArity = 4) so
// they can be used directly as map keys and set elements, which the
// hitting-set solver and the IJP checker rely on heavily.
//
// # Key invariants
//
//   - Interning: constants are mapped to dense Value ids by Const; a name
//     always interns to the same Value within one Database, and ConstName
//     inverts the mapping. Values are NOT comparable across databases.
//   - Identity and versioning: every Database carries a process-unique UID
//     and a Version counter bumped by every tuple mutation (Add, Remove,
//     Delete, RestoreTo — including mutations that are later undone). An
//     unchanged (UID, Version) pair therefore guarantees unchanged
//     contents, which is what the engine's cross-request witness-IR cache
//     keys on. Clone returns a copy with a fresh UID.
//   - Concurrency: mutations require exclusive access. Any number of
//     goroutines may read concurrently, including Lookup: the lazy
//     per-relation index rebuild is double-checked under a mutex and
//     published through an atomic ready flag. Freeze performs every
//     pending rebuild eagerly so a read-only shared database never
//     contends at all.
//   - Restore stack: Delete records removed tuples so RestoreTo(mark) can
//     undo them in LIFO order; solvers that probe deletions (flow
//     variants, VerifyContingency) always restore before returning.
package db
