package db

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentLookup exercises the lazy index rebuild from many readers
// at once — the exact situation the engine's shared-database batches and
// the solver portfolio used to need defensive clones for. Run under
// `go test -race` (the CI default) this is the regression guard for the
// sync-guarded rebuild.
func TestConcurrentLookup(t *testing.T) {
	d := New()
	const n = 200
	for i := 0; i < n; i++ {
		d.AddNames("R", fmt.Sprintf("a%d", i%20), fmt.Sprintf("b%d", i%17))
	}
	r := d.Rel("R")

	probe := func() {
		for i := 0; i < 20; i++ {
			v, ok := d.index[fmt.Sprintf("a%d", i)]
			if !ok {
				continue
			}
			for _, tup := range r.Lookup(0, v) {
				if tup.Args[0] != v {
					t.Errorf("Lookup(0, %v) returned tuple with first arg %v", v, tup.Args[0])
					return
				}
			}
		}
	}

	// Phase 1: cold indexes — every goroutine may trigger the rebuild.
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() { defer wg.Done(); probe() }()
	}
	wg.Wait()

	// Phase 2: mutate (re-arming the lazy rebuild), Freeze eagerly, then
	// read concurrently again — no reader should see a stale index.
	d.AddNames("R", "a0", "fresh")
	d.Freeze()
	found := false
	for _, tup := range r.Lookup(0, d.Const("a0")) {
		if tup.Args[1] == d.Const("fresh") {
			found = true
		}
	}
	if !found {
		t.Fatal("Freeze did not pick up the new tuple")
	}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() { defer wg.Done(); probe() }()
	}
	wg.Wait()
}

// TestRebuildAfterMutation pins the re-arming behavior: a Delete/RestoreTo
// cycle (what VerifyContingency does) must invalidate and then rebuild the
// positional indexes.
func TestRebuildAfterMutation(t *testing.T) {
	d := New()
	tup := d.AddNames("R", "x", "y")
	r := d.Rel("R")
	if got := len(r.Lookup(0, d.Const("x"))); got != 1 {
		t.Fatalf("initial Lookup returned %d tuples, want 1", got)
	}
	mark := d.RestoreMark()
	d.Delete(tup)
	if got := len(r.Lookup(0, d.Const("x"))); got != 0 {
		t.Fatalf("Lookup after Delete returned %d tuples, want 0", got)
	}
	d.RestoreTo(mark)
	if got := len(r.Lookup(0, d.Const("x"))); got != 1 {
		t.Fatalf("Lookup after Restore returned %d tuples, want 1", got)
	}
}
