package db

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickCloneIndependence: a clone shares no mutable state — mutations
// on either side are invisible to the other.
func TestQuickCloneIndependence(t *testing.T) {
	property := func(edges [][2]uint8, extra [2]uint8) bool {
		d := New()
		for _, e := range edges {
			d.Add("R", Value(e[0]%8), Value(e[1]%8))
		}
		c := d.Clone()
		if c.Len() != d.Len() || c.NumConsts() != d.NumConsts() {
			return false
		}
		before := d.Len()
		c.Add("R", Value(extra[0]%8+8), Value(extra[1]%8+8))
		if d.Len() != before {
			return false
		}
		for _, tup := range d.AllTuples() {
			if !c.Has(tup) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeleteRestoreRoundTrip: any interleaving of Delete calls is
// fully undone by RestoreTo, back to identical tuple sets and indexes.
func TestQuickDeleteRestoreRoundTrip(t *testing.T) {
	property := func(edges [][2]uint8, picks []uint8) bool {
		d := New()
		for _, e := range edges {
			d.Add("R", Value(e[0]%6), Value(e[1]%6))
		}
		want := d.String()
		all := d.AllTuples()
		mark := d.RestoreMark()
		for _, p := range picks {
			if len(all) == 0 {
				break
			}
			d.Delete(all[int(p)%len(all)])
		}
		// Lookups must be consistent while deleted.
		for _, tup := range d.AllTuples() {
			found := false
			for _, hit := range d.Rel("R").Lookup(0, tup.Args[0]) {
				if hit == tup {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		d.RestoreTo(mark)
		return d.String() == want
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(73))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTupleOrderTotal: CompareTuples is a strict total order
// (antisymmetric, transitive on samples, consistent with equality).
func TestQuickTupleOrderTotal(t *testing.T) {
	mk := func(raw [3]uint8) Tuple {
		rels := []string{"R", "S"}
		return NewTuple(rels[raw[0]%2], Value(raw[1]%4), Value(raw[2]%4))
	}
	property := func(a, b, c [3]uint8) bool {
		ta, tb, tc := mk(a), mk(b), mk(c)
		if (CompareTuples(ta, tb) == 0) != (ta == tb) {
			return false
		}
		if CompareTuples(ta, tb) != -CompareTuples(tb, ta) {
			return false
		}
		if CompareTuples(ta, tb) <= 0 && CompareTuples(tb, tc) <= 0 && CompareTuples(ta, tc) > 0 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(79))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
