package server

import (
	"math/rand"
	"net/http"
	"reflect"
	"testing"

	"repro/api"
	"repro/internal/datagen"
	"repro/internal/db"
)

// The legacy ↔ v1 parity suite: every legacy endpoint is a shim over the
// Session, and these tests pin that the shim translation loses nothing —
// on differential-suite-style random instances, the legacy response and
// the v1 api.Result agree field for field (answers, not timings).

func renderDB(d *db.Database) []string {
	ts := d.AllTuples()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = d.TupleString(t)
	}
	return out
}

// parityInstances spans the PTIME and NP-hard solver families the
// differential suite exercises.
func parityInstances(rng *rand.Rand) []struct {
	name  string
	query string
	facts []string
} {
	return []struct {
		name  string
		query string
		facts []string
	}{
		{"chain", "qchain :- R(x,y), R(y,z)", renderDB(datagen.ChainDB(rng, 10, 5))},
		{"mcomp", "qm :- R(x,y), R(y,z)", renderDB(datagen.ManyComponentChainDB(rng, 4, 3, 6))},
		{"conf", "qc :- A(x), R(x,y), R(z,y), C(z)", renderDB(datagen.ConfluenceDB(rng, 3, 3, 2))},
		{"perm", "qperm :- R(x,y), R(y,x)", renderDB(datagen.PermDB(rng, 12, 4, 20))},
		{"linear", "qlin :- A(x), R1(x,y), R2(y,z), C(z)", renderDB(datagen.LinearSJFreeDB(rng, 8, 20))},
	}
}

func TestLegacyV1Parity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(321))

	for _, inst := range parityInstances(rng) {
		if status := doJSON(t, http.MethodPut, ts.URL+"/db/"+inst.name,
			putDBRequest{Facts: inst.facts}, nil); status != http.StatusOK {
			t.Fatalf("PUT %s: status %d", inst.name, status)
		}

		// Solve parity.
		var leg solveResponse
		if status := doJSON(t, http.MethodPost, ts.URL+"/solve",
			solveRequest{Query: inst.query, DB: inst.name}, &leg); status != 200 {
			t.Fatalf("%s: legacy solve status %d", inst.name, status)
		}
		var v1 api.Result
		if status := doJSON(t, http.MethodPost, ts.URL+"/v1/tasks",
			api.Task{Kind: api.KindSolve, Query: inst.query, DB: inst.name}, &v1); status != 200 {
			t.Fatalf("%s: v1 solve status %d", inst.name, status)
		}
		if leg.Rho != v1.Rho || leg.Method != v1.Method || leg.Witnesses != v1.Witnesses ||
			leg.Verdict != v1.Verdict || leg.Rule != v1.Rule || leg.Unbreakable != v1.Unbreakable ||
			!reflect.DeepEqual(leg.Contingency, v1.Contingency) {
			t.Errorf("%s: solve parity broken:\nlegacy %+v\nv1     %+v", inst.name, leg, v1)
		}

		// Enumerate parity: set lists must be byte-identical (same
		// canonical order).
		var legEnum enumerateResponse
		if status := doJSON(t, http.MethodPost, ts.URL+"/enumerate",
			enumerateRequest{Query: inst.query, DB: inst.name, MaxSets: 64}, &legEnum); status != 200 {
			t.Fatalf("%s: legacy enumerate status %d", inst.name, status)
		}
		var v1Enum api.Result
		if status := doJSON(t, http.MethodPost, ts.URL+"/v1/tasks",
			api.Task{Kind: api.KindEnumerate, Query: inst.query, DB: inst.name, MaxSets: 64}, &v1Enum); status != 200 {
			t.Fatalf("%s: v1 enumerate status %d", inst.name, status)
		}
		if legEnum.Rho != v1Enum.Rho || legEnum.Unbreakable != v1Enum.Unbreakable {
			t.Errorf("%s: enumerate rho/unbreakable parity broken: %+v vs %+v", inst.name, legEnum, v1Enum)
		}
		v1Sets := v1Enum.Sets
		if v1Sets == nil {
			v1Sets = [][]string{}
		}
		if !reflect.DeepEqual(legEnum.Sets, v1Sets) {
			t.Errorf("%s: enumerate sets parity broken:\nlegacy %v\nv1     %v", inst.name, legEnum.Sets, v1Sets)
		}

		// Classify parity.
		var legCl classifyResponse
		if status := doJSON(t, http.MethodPost, ts.URL+"/classify",
			classifyRequest{Query: inst.query}, &legCl); status != 200 {
			t.Fatalf("%s: legacy classify status %d", inst.name, status)
		}
		var v1Cl api.Result
		if status := doJSON(t, http.MethodPost, ts.URL+"/v1/tasks",
			api.Task{Kind: api.KindClassify, Query: inst.query}, &v1Cl); status != 200 {
			t.Fatalf("%s: v1 classify status %d", inst.name, status)
		}
		if legCl.Verdict != v1Cl.Verdict || legCl.Rule != v1Cl.Rule ||
			legCl.Normalized != v1Cl.Normalized || legCl.Algorithm != v1Cl.Algorithm ||
			legCl.Certificate != v1Cl.Certificate {
			t.Errorf("%s: classify parity broken:\nlegacy %+v\nv1     %+v", inst.name, legCl, v1Cl)
		}

		// Responsibility parity, probing the first fact of the (single
		// endogenous) relation R when the query has one.
		probe := ""
		for _, f := range inst.facts {
			if f[0] == 'R' && f[1] == '(' {
				probe = f
				break
			}
		}
		if probe != "" {
			var legResp responsibilityResponse
			legStatus := doJSON(t, http.MethodPost, ts.URL+"/responsibility",
				responsibilityRequest{Query: inst.query, DB: inst.name, Tuple: probe}, &legResp)
			var v1Resp api.Result
			v1Status := doJSON(t, http.MethodPost, ts.URL+"/v1/tasks",
				api.Task{Kind: api.KindResponsibility, Query: inst.query, DB: inst.name, Tuple: probe}, &v1Resp)
			if legStatus != v1Status {
				t.Errorf("%s: responsibility status %d vs %d", inst.name, legStatus, v1Status)
			} else if legStatus == 200 {
				if legResp.Tuple != v1Resp.Tuple || legResp.K != v1Resp.K ||
					legResp.Responsibility != v1Resp.Responsibility ||
					legResp.NotCounterfactual != v1Resp.NotCounterfactual ||
					!reflect.DeepEqual(legResp.Contingency, v1Resp.Contingency) {
					t.Errorf("%s: responsibility parity broken:\nlegacy %+v\nv1     %+v", inst.name, legResp, v1Resp)
				}
			}
		}

		// Batch parity: the legacy batch shim must agree with /v1/batch on
		// the same instances.
		var legBatch batchResponse
		if status := doJSON(t, http.MethodPost, ts.URL+"/batch", batchRequest{
			DB: inst.name,
			Instances: []batchInstance{
				{ID: "one", Query: inst.query},
				{ID: "two", Query: inst.query},
			},
		}, &legBatch); status != 200 {
			t.Fatalf("%s: legacy batch status %d", inst.name, status)
		}
		var v1Batch api.BatchResponse
		if status := doJSON(t, http.MethodPost, ts.URL+"/v1/batch", api.BatchRequest{
			Tasks: []api.Task{
				{ID: "one", Kind: api.KindSolve, Query: inst.query, DB: inst.name},
				{ID: "two", Kind: api.KindSolve, Query: inst.query, DB: inst.name},
			},
		}, &v1Batch); status != 200 {
			t.Fatalf("%s: v1 batch status %d", inst.name, status)
		}
		for i := range legBatch.Results {
			lb, vb := legBatch.Results[i], v1Batch.Results[i]
			if lb.ID != vb.ID || lb.Rho != vb.Rho || lb.Method != vb.Method ||
				lb.Verdict != vb.Verdict || lb.Unbreakable != vb.Unbreakable ||
				!reflect.DeepEqual(lb.Contingency, vb.Contingency) {
				t.Errorf("%s: batch item %d parity broken:\nlegacy %+v\nv1     %+v", inst.name, i, lb, vb)
			}
		}
	}
}

// TestLegacyV1ErrorParity: the legacy endpoints keep their historical
// statuses for the common failure classes while v1 uses the typed
// mapping.
func TestLegacyV1ErrorParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putToy(t, ts.URL)

	// Bad query: 400 on both surfaces.
	if status := doJSON(t, http.MethodPost, ts.URL+"/solve",
		solveRequest{Query: "broken(", DB: "toy"}, nil); status != 400 {
		t.Fatalf("legacy bad query: %d", status)
	}
	// Unknown database: 404 on both surfaces.
	if status := doJSON(t, http.MethodPost, ts.URL+"/solve",
		solveRequest{Query: "q :- R(x,y)", DB: "ghost"}, nil); status != 404 {
		t.Fatalf("legacy unknown db: %d", status)
	}
	// Legacy error bodies keep the flat {"error": "..."} shape.
	var eb errorBody
	if status := doJSON(t, http.MethodPost, ts.URL+"/solve",
		solveRequest{Query: "q :- R(x,y)", DB: "ghost"}, &eb); status != 404 || eb.Error == "" {
		t.Fatalf("legacy error body = %+v (status %d)", eb, status)
	}
}
