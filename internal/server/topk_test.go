package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/api"
)

// TestV1TopKStream drives a top_k_responsibility task through the NDJSON
// stream: one partial line per ranked tuple in rank order, then a final
// line carrying the total and no entries of its own — and the streamed
// entries equal the synchronous result byte-for-byte.
func TestV1TopKStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putToy(t, ts.URL)
	task := api.Task{Kind: api.KindTopKResponsibility, Query: "qchain :- R(x,y), R(y,z)", DB: "toy", K: 10}

	var sync api.Result
	if status := doJSON(t, http.MethodPost, ts.URL+"/v1/tasks", task, &sync); status != 200 {
		t.Fatalf("sync topk: status %d", status)
	}
	if len(sync.Ranked) != 3 || sync.Total != 3 {
		t.Fatalf("sync topk = %+v, want 3 ranked tuples", &sync)
	}

	sc, closeBody := streamLines(t, ts.URL+"/v1/tasks?stream=ndjson", task)
	defer closeBody()
	var streamed []api.RankedTuple
	var final *api.Result
	for sc.Scan() {
		var line api.Result
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		if line.Partial {
			if len(line.Ranked) != 1 || line.Ranked[0].Rank != len(streamed)+1 {
				t.Fatalf("partial line = %+v, want single entry with rank %d", &line, len(streamed)+1)
			}
			streamed = append(streamed, line.Ranked...)
			continue
		}
		final = &line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final == nil || final.Total != 3 || len(final.Ranked) != 0 {
		t.Fatalf("final line = %+v, want total 3 with no entries", final)
	}
	a, _ := json.Marshal(streamed)
	b, _ := json.Marshal(sync.Ranked)
	if !bytes.Equal(a, b) {
		t.Fatalf("streamed ranking differs from sync:\n%s\n%s", a, b)
	}
}

// TestV1TopKDisconnectCancelsSolver: a client that abandons a streaming
// top-k request while the ranking is still being computed must cancel the
// underlying per-tuple solves — the admission slot drains instead of the
// server burning CPU on a ranking nobody will read.
func TestV1TopKDisconnectCancelsSolver(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(7))
	if status := doJSON(t, http.MethodPut, ts.URL+"/v1/db/big",
		putDBRequest{Facts: chainFacts(rng, 1200, 1200)}, nil); status != http.StatusOK {
		t.Fatalf("PUT big: status %d", status)
	}

	// The ranking computes per-tuple responsibilities before the first
	// line is emitted, so the disconnect arrives mid-compute: cancel the
	// request context rather than waiting for a line that may never come.
	body, err := json.Marshal(api.Task{
		Kind: api.KindTopKResponsibility, Query: "qchain :- R(x,y), R(y,z)", DB: "big", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/tasks?stream=ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Let the request land and start computing, then walk away.
	deadline := time.Now().Add(5 * time.Second)
	for inFlight(t, ts.URL) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done

	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if inFlight(t, ts.URL) == 0 {
			return // solver cancelled, slot released
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("request still in flight 10s after client disconnect: top-k solver not cancelled")
}
