package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"repro/api"
)

// The v1 surface: one generic dispatch endpoint over the api.Task
// envelope, a concurrent batch endpoint, and NDJSON streaming for both.
// Every handler here speaks api types on the wire — there are no
// hand-rolled per-endpoint shapes — so a new task kind lands in the
// Session dispatcher and is immediately servable.

// ndjsonContentType is the media type of streamed responses: one JSON
// object (an api.Result) per line, flushed as produced.
const ndjsonContentType = "application/x-ndjson"

// wantsStream reports whether the client asked for an NDJSON stream,
// either with ?stream=ndjson (curl-friendly) or an Accept header naming
// the media type.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "ndjson" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), ndjsonContentType)
}

// streamWriter emits NDJSON lines and flushes each one immediately, so
// the first result reaches the client while the search is still running.
// A failed write (client gone) surfaces as an error from emit, which
// aborts the Session's work; the request context is cancelled by the
// http server at the same time, so ctx-polling solver loops stop too.
type streamWriter struct {
	w   http.ResponseWriter
	enc *json.Encoder
	fl  http.Flusher
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", ndjsonContentType)
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	return &streamWriter{w: w, enc: json.NewEncoder(w), fl: fl}
}

func (sw *streamWriter) emit(res *api.Result) error {
	if err := sw.enc.Encode(res); err != nil {
		return err
	}
	if sw.fl != nil {
		sw.fl.Flush()
	}
	return nil
}

// handleV1Task is the generic dispatch endpoint: POST /v1/tasks with an
// api.Task body, answering an api.Result (or, streamed, one Result line
// per increment and a final line with the totals).
func (s *Server) handleV1Task(w http.ResponseWriter, r *http.Request) {
	var task api.Task
	if !s.decodeV1(w, r, &task) {
		return
	}
	// A watch is long-lived by design: the server's default request budget
	// would kill every subscription at the budget mark, so only an explicit
	// task timeout_ms (applied by the Session) and the client disconnect
	// bound it.
	ctx, cancel := r.Context(), context.CancelFunc(func() {})
	if task.Kind != api.KindWatch {
		ctx, cancel = s.requestCtx(r, 0)
	}
	defer cancel()

	if wantsStream(r) {
		// Pre-solve failures (unknown kind, bad query, unknown db) are
		// still ordinary HTTP errors: nothing has been streamed yet, so
		// the status line is available. Only failures after the first
		// emitted line travel in-band.
		if err := s.sess.Check(task); err != nil {
			s.writeV1Error(w, err)
			return
		}
		sw := newStreamWriter(w)
		s.sess.Stream(ctx, task, sw.emit) //nolint:errcheck // write failure = client gone
		return
	}
	res, err := s.sess.Do(ctx, task)
	if err != nil {
		s.writeV1Error(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleV1Batch runs many tasks concurrently on the Session's worker
// pool: POST /v1/batch with an api.BatchRequest body. The non-streamed
// response is index-aligned; the streamed response emits each task's
// results in completion order (Result.Index identifies the task), with
// enumerate tasks streaming their partial set lines too.
func (s *Server) handleV1Batch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if !s.decodeV1(w, r, &req) {
		return
	}
	if len(req.Tasks) == 0 {
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "tasks must be non-empty"))
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()

	if wantsStream(r) {
		sw := newStreamWriter(w)
		s.sess.StreamBatch(ctx, req.Tasks, req.TimeoutMS, sw.emit) //nolint:errcheck // write failure = client gone
		return
	}
	results := s.sess.DoBatch(ctx, req.Tasks, req.TimeoutMS)
	writeJSON(w, http.StatusOK, api.BatchResponse{Results: results})
}

// handleV1SubmitJob accepts an api.Task for asynchronous execution:
// POST /v1/jobs answers 202 with the queued api.Job; poll GET
// /v1/jobs/{id} until its state is terminal. Submission does not hold an
// admission slot — the job workers bound execution concurrency instead.
func (s *Server) handleV1SubmitJob(w http.ResponseWriter, r *http.Request) {
	var task api.Task
	if !s.decodeV1(w, r, &task) {
		return
	}
	job, err := s.jobs.submit(task)
	if err != nil {
		s.writeV1Error(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// handleV1ListJobs answers the stored jobs in submission order:
// GET /v1/jobs?state=queued&limit=10. state keeps only jobs in that
// lifecycle state; limit keeps only the most recent matches.
func (s *Server) handleV1ListJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := api.JobState(q.Get("state"))
	switch state {
	case "", api.JobQueued, api.JobRunning, api.JobDone, api.JobFailed, api.JobCanceled:
	default:
		s.writeV1Error(w, api.Errorf(api.CodeBadRequest,
			"unknown state %q (want queued, running, done, failed or canceled)", state))
		return
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			s.writeV1Error(w, api.Errorf(api.CodeBadRequest, "bad limit %q", raw))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, api.JobList{Jobs: s.jobs.list(state, limit)})
}

func (s *Server) handleV1GetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeV1Error(w, api.Errorf(api.CodeUnknownJob, "no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleV1CancelJob cancels a queued or running job (DELETE /v1/jobs/{id});
// a terminal job is removed from the store instead. Both answer the job's
// final snapshot.
func (s *Server) handleV1CancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.cancel(r.PathValue("id"))
	if !ok {
		s.writeV1Error(w, api.Errorf(api.CodeUnknownJob, "no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job)
}
