// Package server is the resilience-as-a-service layer: a long-running
// HTTP front end over the api.Session orchestrator, turning the one-shot
// solver stack into a stateful service.
//
// # Surfaces
//
// The primary surface is the versioned v1 task API: one generic dispatch
// endpoint (POST /v1/tasks) accepting the api.Task envelope for every
// task kind, a concurrent batch endpoint (POST /v1/batch), NDJSON
// streaming for batch, enumeration and watch responses, and an async job
// lifecycle (POST /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id}).
// Database management lives at /v1/db/{name}: upload (PUT), inspect
// (GET), delete (DELETE), and in-place mutation (PATCH, a typed
// insert/delete batch applied atomically — see api.MutateRequest). A
// watch task (kind "watch", streamed) then follows ρ across mutations.
//
// The pre-v1 endpoints (/solve, /batch, /classify, /enumerate,
// /responsibility, /db/{name}) remain as thin shims over the same
// Session: they translate their legacy request bodies into api.Tasks and
// the api.Result back into their historical response shapes, with parity
// pinned by tests. They are deprecated — responses carry a Deprecation
// header — and Config.DisableLegacy removes them from the route table
// entirely (404) for deployments that have finished migrating.
//
// # Request lifecycle
//
// Databases are uploaded once (PUT /v1/db/{name}), frozen, and registered
// under a name; tasks then arrive as small JSON bodies naming the
// database they target. Solver endpoints pass through admission control —
// a bounded in-flight slot pool that rejects excess load with 429 rather
// than queueing unboundedly — then run on the shared Session with a
// per-request deadline (the smaller of the task's timeout_ms and the
// server's configured default) plumbed down into the cancellable solvers.
//
// # Key invariants
//
//   - Registered databases are immutable: the Session freezes them at
//     upload and nothing on the serving path ever mutates one. A
//     re-upload installs a fresh database object, so in-flight requests
//     finish against the contents they resolved.
//   - The engine runs in NoClone mode, which enables its cross-request
//     witness-IR cache: concurrent and repeated requests against the same
//     (query class, database version) enumerate witnesses exactly once.
//   - Every solver endpoint is cancellable: client disconnects and
//     deadline expiries propagate through context into ctxpoll-polling
//     search loops. On streaming endpoints a dropped connection stops the
//     underlying search — the NDJSON writer runs under r.Context() and a
//     failed write aborts the emit chain.
//   - Errors are typed end to end: every failure is an api.Error whose
//     code maps to exactly one HTTP status on the v1 surface; context
//     cancellation surfaces as timeout/canceled codes, never a generic
//     500.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/cq"
	"repro/internal/engine"
	"repro/internal/store"
)

// Config tunes a Server. The zero value is usable: engine defaults,
// 64 in-flight requests, no default per-request budget, 32 MiB upload
// cap, 2 job workers.
type Config struct {
	// Engine configures the embedded solving engine (workers, portfolio,
	// cache sizes). NoClone is forced on by the Session: the registry owns
	// frozen databases, which is exactly the sharing mode NoClone exists
	// for.
	Engine engine.Config
	// MaxInFlight bounds concurrently executing solver requests (v1 tasks
	// and batches, and the legacy solver endpoints). Excess requests are
	// rejected with 429 and a Retry-After header. <= 0 means the default
	// 64.
	MaxInFlight int
	// RequestTimeout is the default per-request wall-time budget for
	// synchronous solver endpoints. A task's timeout_ms can only tighten
	// it. <= 0 means no server-side default. Async jobs are exempt: a job
	// runs until done, canceled, or its own timeout_ms expires.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (database uploads dominate).
	// <= 0 means the default 32 MiB.
	MaxBodyBytes int64
	// JobWorkers is the number of async-job executor goroutines; jobs
	// queue beyond it. 0 means the default 2; < 0 starts none, so jobs
	// stay queued forever — recovery tests use it to observe pre-run
	// state.
	JobWorkers int
	// JobQueue bounds queued-but-not-running jobs; submissions beyond it
	// are rejected with 429/overload. <= 0 means the default 64.
	JobQueue int
	// MaxJobs caps stored job records; finished jobs are evicted oldest
	// first to admit new submissions. <= 0 means the default 256.
	MaxJobs int
	// DisableLegacy removes the deprecated pre-v1 routes (/solve, /batch,
	// /classify, /enumerate, /responsibility, /db...) from the route
	// table; requests to them answer 404. Default off: the legacy shims
	// stay mounted and merely advertise their deprecation via headers.
	DisableLegacy bool
	// DataDir, when set, makes state durable: the database registry and
	// the job store are journaled to a snapshot+WAL store in this
	// directory and recovered on the next Open against it. Empty means
	// in-memory only (every prior release's behavior).
	DataDir string
	// Fsync selects the WAL durability policy when DataDir is set:
	// "always", "batch" (the default — kill -9 safe, power failure may
	// lose the last ~2ms), or "off". See internal/store.FsyncMode.
	Fsync string
	// SnapshotEvery, when DataDir is set, takes an automatic snapshot
	// (compacting the WAL) every that many journaled records. 0 means
	// the store's default (4096); < 0 disables automatic snapshots.
	SnapshotEvery int
}

const (
	defaultMaxInFlight  = 64
	defaultMaxBodyBytes = 32 << 20
	defaultJobWorkers   = 2
	defaultJobQueue     = 64
	defaultMaxJobs      = 256
)

// Server is the HTTP serving layer. Create with New, expose with Handler
// (or use it directly as an http.Handler), flip SetDraining(true) before
// shutdown so health checks start failing ahead of the listener, and call
// Close to stop the job workers.
type Server struct {
	cfg     Config
	sess    *api.Session
	jobs    *jobManager
	mux     *http.ServeMux
	durable *store.DiskStore // nil without DataDir

	// sem is the admission-control slot pool; a slot is held for the full
	// solver-endpoint lifetime (streaming responses included).
	sem chan struct{}

	start     time.Time
	draining  atomic.Bool
	closeOnce sync.Once
	recovery  RecoveryInfo

	requests  atomic.Int64 // solver requests admitted
	rejected  atomic.Int64 // solver requests refused with 429
	failures  atomic.Int64 // solver requests that returned 5xx
	mutations atomic.Int64 // PATCH batches applied successfully
}

// RecoveryInfo summarizes what Open recovered from the data directory;
// the daemon's startup line prints it and /metrics carries the counts.
type RecoveryInfo struct {
	// Enabled reports whether a durable store is attached at all.
	Enabled bool
	// SnapshotLoaded/SnapshotSeq describe the snapshot recovery started
	// from; WALRecords and TornBytes the log tail replayed over it.
	SnapshotLoaded bool
	SnapshotSeq    uint64
	WALRecords     int
	TornBytes      int64
	// DBs and Jobs are the recovered totals; JobsRequeued of those jobs
	// went back on the queue, JobsInterrupted were stamped
	// failed/restart.
	DBs             int
	Jobs            int
	JobsRequeued    int
	JobsInterrupted int
}

// New returns a Server over a fresh Session (engine + database registry).
// With Config.DataDir set it panics on a store-open failure; durable
// deployments should use Open and handle the error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("server: opening durable store: %v", err))
	}
	return s
}

// Open returns a Server over a fresh Session. When cfg.DataDir is set it
// opens (or creates) the snapshot+WAL store there, recovers the database
// registry and job store — replaying the WAL tail and truncating any
// torn final record — and journals every subsequent state change.
func Open(cfg Config) (*Server, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.JobWorkers == 0 {
		cfg.JobWorkers = defaultJobWorkers
	}
	if cfg.JobQueue <= 0 {
		cfg.JobQueue = defaultJobQueue
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = defaultMaxJobs
	}

	var (
		durable *store.DiskStore
		rec     *store.Recovery
		sstore  api.Store
	)
	if cfg.DataDir != "" {
		mode, err := store.ParseFsyncMode(cfg.Fsync)
		if err != nil {
			return nil, err
		}
		durable, rec, err = store.Open(cfg.DataDir, store.Options{
			Fsync:         mode,
			SnapshotEvery: cfg.SnapshotEvery,
		})
		if err != nil {
			return nil, err
		}
		sstore = durable
	}

	sess := api.NewSession(api.Config{Engine: cfg.Engine, Store: sstore})
	var recoveredJobs []*api.Job
	var jobSeqFloor uint64
	info := RecoveryInfo{Enabled: durable != nil}
	if rec != nil {
		jobSeqFloor = rec.MaxJobSeq
		for _, d := range rec.DBs {
			if _, err := sess.RestoreDB(d.Name, d.Facts, d.Version); err != nil {
				durable.Close()
				return nil, fmt.Errorf("server: restoring database %q: %w", d.Name, err)
			}
		}
		recoveredJobs = rec.Jobs
		info.SnapshotLoaded = rec.Stats.SnapshotLoaded
		info.SnapshotSeq = rec.Stats.SnapshotSeq
		info.WALRecords = rec.Stats.WALRecords
		info.TornBytes = rec.Stats.TornBytes
		info.DBs = len(rec.DBs)
		info.Jobs = len(rec.Jobs)
	}

	workers := cfg.JobWorkers
	if workers < 0 {
		workers = 0
	}
	s := &Server{
		cfg:     cfg,
		sess:    sess,
		jobs:    newJobManager(sess, sstore, workers, cfg.JobQueue, cfg.MaxJobs, recoveredJobs, jobSeqFloor),
		mux:     http.NewServeMux(),
		durable: durable,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		start:   time.Now(),
	}
	info.JobsRequeued = s.jobs.requeued
	info.JobsInterrupted = s.jobs.interrupted
	s.recovery = info
	s.routes()
	return s, nil
}

// Recovery reports what Open recovered (the zero RecoveryInfo without a
// data directory).
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// StoreStats snapshots the durable store's counters; Enabled is false
// without a data directory.
func (s *Server) StoreStats() store.Stats {
	if s.durable == nil {
		return store.Stats{}
	}
	return s.durable.Stats()
}

// Session exposes the embedded orchestrator to in-process callers such as
// tests and the daemon's logging.
func (s *Server) Session() *api.Session { return s.sess }

// Engine exposes the embedded engine (stats, direct batch access).
func (s *Server) Engine() *engine.Engine { return s.sess.Engine() }

// Close stops the async-job workers, cancelling any running job. It does
// not affect synchronous requests in flight. With a durable store it
// then snapshots the final state (so the next boot replays an empty WAL
// tail) and closes the store; queued jobs stay journaled queued and
// re-enqueue on the next Open. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.jobs.close()
		if s.durable != nil {
			s.durable.Snapshot() //nolint:errcheck // WAL still holds the state; counted in store errors
			s.durable.Close()    //nolint:errcheck // nothing left to do on the way out
		}
	})
}

// Handler returns the route table as an http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes *Server an http.Handler itself.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetDraining flips the health signal: while draining, /healthz returns
// 503 so load balancers stop routing here, while already-accepted requests
// keep completing. The daemon sets it on SIGTERM before http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) routes() {
	// v1: the versioned task API. One generic dispatch endpoint, batch,
	// async jobs, and database management.
	s.mux.HandleFunc("POST /v1/tasks", s.admitted(s.handleV1Task))
	s.mux.HandleFunc("POST /v1/batch", s.admitted(s.handleV1Batch))
	s.mux.HandleFunc("POST /v1/jobs", s.handleV1SubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleV1ListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleV1GetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleV1CancelJob)
	s.mux.HandleFunc("PUT /v1/db/{name}", s.handleV1PutDB)
	s.mux.HandleFunc("PATCH /v1/db/{name}", s.admitted(s.handleV1MutateDB))
	s.mux.HandleFunc("GET /v1/db/{name}", s.handleV1GetDB)
	s.mux.HandleFunc("DELETE /v1/db/{name}", s.handleV1DeleteDB)
	s.mux.HandleFunc("GET /v1/db", s.handleListDBs)

	// Legacy surface: thin shims over the same Session, response shapes
	// unchanged (parity pinned by tests), every response marked with a
	// Deprecation header. DisableLegacy unmounts the whole block.
	if !s.cfg.DisableLegacy {
		s.mux.HandleFunc("PUT /db/{name}", s.deprecated(s.handlePutDB))
		s.mux.HandleFunc("GET /db/{name}", s.deprecated(s.handleGetDB))
		s.mux.HandleFunc("DELETE /db/{name}", s.deprecated(s.handleDeleteDB))
		s.mux.HandleFunc("GET /db", s.deprecated(s.handleListDBs))
		s.mux.HandleFunc("POST /classify", s.deprecated(s.handleClassify))
		s.mux.HandleFunc("POST /solve", s.admitted(s.deprecated(s.handleSolve)))
		s.mux.HandleFunc("POST /batch", s.admitted(s.deprecated(s.handleBatch)))
		s.mux.HandleFunc("POST /enumerate", s.admitted(s.deprecated(s.handleEnumerate)))
		s.mux.HandleFunc("POST /responsibility", s.admitted(s.deprecated(s.handleResponsibility)))
	}

	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// deprecated marks a legacy endpoint's responses with the standard
// Deprecation header and a pointer at the v1 replacement, so migrating
// clients can find every remaining legacy call in their own telemetry.
func (s *Server) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/tasks>; rel="successor-version"`)
		h(w, r)
	}
}

// admitted wraps a solver endpoint with admission control: acquire an
// in-flight slot without blocking, or shed the request with 429. Shedding
// instead of queueing keeps tail latency bounded under overload — the
// client's retry policy, not an unbounded server queue, absorbs bursts.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests,
				api.Errorf(api.CodeOverload, "server at capacity (%d requests in flight)", cap(s.sem)))
			return
		}
		s.requests.Add(1)
		h(w, r)
	}
}

// requestCtx derives the request's working context from r.Context() — so
// client disconnects cancel everything downstream — bounded by the
// server's default budget. Task-level timeout_ms is applied later by the
// Session and can only tighten this.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	budget := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; budget <= 0 || t < budget {
			budget = t
		}
	}
	if budget <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), budget)
}

// decode reads a JSON request body strictly, answering a legacy-shaped
// 400 on failure; decodeV1 answers the typed v1 body instead.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	return s.decodeWith(w, r, into, s.legacyError)
}

func (s *Server) decodeV1(w http.ResponseWriter, r *http.Request, into any) bool {
	return s.decodeWith(w, r, into, s.writeV1Error)
}

func (s *Server) decodeWith(w http.ResponseWriter, r *http.Request, into any, fail func(http.ResponseWriter, error)) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		fail(w, api.Errorf(api.CodeBadRequest, "bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) //nolint:errcheck // nothing to do about a failed write
}

// writeError emits a legacy-shaped error body ({"error": "message"}) with
// the given status. The message is the api.Error's message, keeping
// legacy bodies byte-compatible with the pre-v1 server.
func (s *Server) writeError(w http.ResponseWriter, status int, err *api.Error) {
	if status >= 500 {
		s.failures.Add(1)
	}
	writeJSON(w, status, errorBody{Error: err.Message})
}

// writeV1Error emits the typed v1 error body with the code's canonical
// status.
func (s *Server) writeV1Error(w http.ResponseWriter, err error) {
	ae := api.Wrap(err)
	status := ae.HTTPStatus()
	if status >= 500 {
		s.failures.Add(1)
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, api.ErrorBody{Error: ae})
}

// legacyStatus maps an api.Error code to the status the pre-v1 endpoints
// used. The one divergence from the v1 mapping: a client cancellation
// surfaces as 504, the legacy behavior ("client went away mid-solve").
func legacyStatus(err error) int {
	ae := api.Wrap(err)
	if ae.Code == api.CodeCanceled {
		return http.StatusGatewayTimeout
	}
	return ae.HTTPStatus()
}

// legacyError writes err with the legacy status mapping and body shape.
func (s *Server) legacyError(w http.ResponseWriter, err error) {
	s.writeError(w, legacyStatus(err), api.Wrap(err))
}

// The database-management handlers come in two flavors sharing one core:
// the legacy routes answer legacy-shaped error bodies, the /v1 routes the
// typed api.ErrorBody, per the v1 contract that every non-2xx body
// carries a code.
func (s *Server) handlePutDB(w http.ResponseWriter, r *http.Request) {
	s.putDB(w, r, s.decode, s.legacyError)
}

func (s *Server) handleV1PutDB(w http.ResponseWriter, r *http.Request) {
	s.putDB(w, r, s.decodeV1, s.writeV1Error)
}

func (s *Server) putDB(w http.ResponseWriter, r *http.Request,
	decode func(http.ResponseWriter, *http.Request, any) bool,
	fail func(http.ResponseWriter, error)) {
	name := r.PathValue("name")
	var req putDBRequest
	if !decode(w, r, &req) {
		return
	}
	info, err := s.sess.RegisterFacts(name, req.Facts)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleV1MutateDB applies a typed insert/delete batch to a registered
// database: PATCH /v1/db/{name} with an api.MutateRequest body. The batch
// is atomic — any bad mutation rejects it whole with a typed error naming
// the offending index — and a success answers the post-batch DBInfo (new
// version included) plus the applied count. The endpoint holds an
// admission slot: applying a batch delta-migrates cached IRs, which is
// solver-adjacent work.
func (s *Server) handleV1MutateDB(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.MutateRequest
	if !s.decodeV1(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	info, err := s.sess.MutateDB(ctx, name, req.Mutations)
	if err != nil {
		s.writeV1Error(w, err)
		return
	}
	s.mutations.Add(1)
	writeJSON(w, http.StatusOK, api.MutateResponse{DBInfo: info, Applied: len(req.Mutations)})
}

func (s *Server) handleGetDB(w http.ResponseWriter, r *http.Request) {
	s.getDB(w, r, s.legacyError)
}

func (s *Server) handleV1GetDB(w http.ResponseWriter, r *http.Request) {
	s.getDB(w, r, s.writeV1Error)
}

func (s *Server) getDB(w http.ResponseWriter, r *http.Request, fail func(http.ResponseWriter, error)) {
	name := r.PathValue("name")
	info, ok := s.sess.Info(name)
	if !ok {
		fail(w, api.Errorf(api.CodeUnknownDB, "no database %q registered", name))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteDB(w http.ResponseWriter, r *http.Request) {
	s.deleteDB(w, r, s.legacyError)
}

func (s *Server) handleV1DeleteDB(w http.ResponseWriter, r *http.Request) {
	s.deleteDB(w, r, s.writeV1Error)
}

func (s *Server) deleteDB(w http.ResponseWriter, r *http.Request, fail func(http.ResponseWriter, error)) {
	name := r.PathValue("name")
	existed, err := s.sess.DropDB(name)
	if err != nil {
		fail(w, err)
		return
	}
	if !existed {
		fail(w, api.Errorf(api.CodeUnknownDB, "no database %q registered", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListDBs(w http.ResponseWriter, r *http.Request) {
	type listResponse struct {
		Databases []api.DBInfo `json:"databases"`
	}
	var resp listResponse
	for _, name := range s.sess.DBNames() {
		if info, ok := s.sess.Info(name); ok {
			resp.Databases = append(resp.Databases, info)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !s.decode(w, r, &req) {
		return
	}
	res, err := s.sess.Do(r.Context(), api.Task{Kind: api.KindClassify, Query: req.Query})
	if err != nil {
		s.legacyError(w, err)
		return
	}
	resp := classifyResponse{
		// The legacy body echoed the parsed query's canonical rendering,
		// which the envelope does not carry; re-derive it.
		Query:       canonicalQuery(req.Query),
		Normalized:  res.Normalized,
		Verdict:     res.Verdict,
		Rule:        res.Rule,
		Algorithm:   res.Algorithm,
		Certificate: res.Certificate,
	}
	for _, sub := range res.Components {
		resp.Components = append(resp.Components, classifyComponent(sub))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	res, err := s.sess.Do(ctx, api.Task{
		Kind:      api.KindSolve,
		Query:     req.Query,
		DB:        req.DB,
		TimeoutMS: req.TimeoutMS,
	})
	if err != nil {
		s.legacyError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		Rho:         res.Rho,
		Method:      res.Method,
		Witnesses:   res.Witnesses,
		Contingency: res.Contingency,
		Verdict:     res.Verdict,
		Rule:        res.Rule,
		Unbreakable: res.Unbreakable,
		CacheHit:    res.CacheHit,
		ElapsedMS:   res.ElapsedMS,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Instances) == 0 {
		s.writeError(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "instances must be non-empty"))
		return
	}
	// Legacy semantics: any malformed instance fails the whole request up
	// front (400 for a bad query, 404 for an unknown database).
	tasks := make([]api.Task, len(req.Instances))
	for i, bi := range req.Instances {
		name := bi.DB
		if name == "" {
			name = req.DB
		}
		id := bi.ID
		if id == "" {
			id = fmt.Sprintf("#%d", i)
		}
		tasks[i] = api.Task{ID: id, Kind: api.KindSolve, Query: bi.Query, DB: name}
		if _, err := cq.Parse(bi.Query); err != nil {
			s.writeError(w, http.StatusBadRequest, api.Errorf(api.CodeBadQuery, "instance %d: %v", i, err))
			return
		}
		if s.sess.DB(name) == nil {
			if name == "" {
				s.writeError(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "missing db name"))
				return
			}
			s.writeError(w, http.StatusNotFound, api.Errorf(api.CodeUnknownDB, "no database %q registered", name))
			return
		}
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	results := s.sess.DoBatch(ctx, tasks, 0)
	resp := batchResponse{Results: make([]batchResult, len(results))}
	for i, res := range results {
		out := batchResult{ID: res.ID, ElapsedMS: res.ElapsedMS}
		out.Verdict = res.Verdict
		switch {
		case res.Error != nil:
			out.Error = res.Error.Message
		case res.Unbreakable:
			out.Unbreakable = true
		default:
			out.Rho = res.Rho
			out.Method = res.Method
			out.Contingency = res.Contingency
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	var req enumerateRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	res, err := s.sess.Do(ctx, api.Task{
		Kind:      api.KindEnumerate,
		Query:     req.Query,
		DB:        req.DB,
		MaxSets:   req.MaxSets,
		TimeoutMS: req.TimeoutMS,
	})
	if err != nil {
		s.legacyError(w, err)
		return
	}
	if res.Unbreakable {
		writeJSON(w, http.StatusOK, enumerateResponse{Unbreakable: true})
		return
	}
	resp := enumerateResponse{Rho: res.Rho, Sets: res.Sets}
	if resp.Sets == nil {
		resp.Sets = [][]string{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResponsibility(w http.ResponseWriter, r *http.Request) {
	var req responsibilityRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	res, err := s.sess.Do(ctx, api.Task{
		Kind:      api.KindResponsibility,
		Query:     req.Query,
		DB:        req.DB,
		Tuple:     req.Tuple,
		TimeoutMS: req.TimeoutMS,
	})
	if err != nil {
		s.legacyError(w, err)
		return
	}
	resp := responsibilityResponse{Tuple: res.Tuple}
	if res.NotCounterfactual {
		resp.NotCounterfactual = true
	} else {
		resp.K = res.K
		resp.Responsibility = res.Responsibility
		resp.Contingency = res.Contingency
	}
	writeJSON(w, http.StatusOK, resp)
}

// metricsResponse is the body of GET /metrics: server counters plus a
// snapshot of engine.Stats in stable snake_case keys.
type metricsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Databases     int     `json:"databases"`

	InFlight    int   `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	Requests    int64 `json:"requests"`
	Rejected    int64 `json:"rejected"`
	Failures    int64 `json:"failures"`
	Mutations   int64 `json:"mutations"`

	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsActive    int   `json:"jobs_active"`
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCanceled  int64 `json:"jobs_canceled"`

	StoreEnabled     bool  `json:"store_enabled"`
	StoreSeq         int64 `json:"store_seq"`
	StoreWALRecords  int64 `json:"store_wal_records"`
	StoreAppends     int64 `json:"store_appends"`
	StoreAppendBytes int64 `json:"store_append_bytes"`
	StoreFsyncs      int64 `json:"store_fsyncs"`
	StoreSnapshots   int64 `json:"store_snapshots"`
	StoreCompacted   int64 `json:"store_compacted_records"`
	// StoreWedged reports the store hit an unrecoverable write failure
	// and is rejecting all state changes — page on this.
	StoreWedged bool `json:"store_wedged"`
	// StoreErrors sums the store's own error counter with the job
	// manager's best-effort journal failures.
	StoreErrors        int64 `json:"store_errors"`
	RecoveredDBs       int   `json:"recovered_dbs"`
	RecoveredJobs      int   `json:"recovered_jobs"`
	JobsRequeued       int   `json:"jobs_requeued"`
	JobsInterrupted    int   `json:"jobs_interrupted"`
	RecoveredWALRecs   int64 `json:"recovered_wal_records"`
	RecoveredTornBytes int64 `json:"recovered_torn_bytes"`

	Solved             int64 `json:"solved"`
	Timeouts           int64 `json:"timeouts"`
	ClassCacheHits     int64 `json:"class_cache_hits"`
	ClassCacheMisses   int64 `json:"class_cache_misses"`
	PortfolioExactWins int64 `json:"portfolio_exact_wins"`
	PortfolioSATWins   int64 `json:"portfolio_sat_wins"`
	IRBuilds           int64 `json:"ir_builds"`
	IRBuildNs          int64 `json:"ir_build_ns"`
	ParallelIRBuilds   int64 `json:"parallel_ir_builds"`
	IRBuildShards      int64 `json:"ir_build_shards"`
	SolverRuns         int64 `json:"solver_runs"`
	IRCacheHits        int64 `json:"ir_cache_hits"`
	IRCacheMisses      int64 `json:"ir_cache_misses"`
	IRMigrations       int64 `json:"ir_migrations"`
	CompCacheHits      int64 `json:"comp_cache_hits"`
	CompCacheMisses    int64 `json:"comp_cache_misses"`

	KernelForcedTuples      int64 `json:"kernel_forced_tuples"`
	KernelDominatedTuples   int64 `json:"kernel_dominated_tuples"`
	ComponentsSolved        int64 `json:"components_solved"`
	MultiComponentInstances int64 `json:"multi_component_instances"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Engine().Stats()
	js := s.jobs.stats()
	ss := s.StoreStats()
	writeJSON(w, http.StatusOK, metricsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		Databases:     len(s.sess.DBNames()),

		InFlight:    len(s.sem),
		MaxInFlight: cap(s.sem),
		Requests:    s.requests.Load(),
		Rejected:    s.rejected.Load(),
		Failures:    s.failures.Load(),
		Mutations:   s.mutations.Load(),

		JobsSubmitted: js.submitted,
		JobsActive:    js.active,
		JobsDone:      js.done,
		JobsFailed:    js.failed,
		JobsCanceled:  js.canceled,

		StoreEnabled:       ss.Enabled,
		StoreSeq:           int64(ss.Seq),
		StoreWALRecords:    ss.WALRecords,
		StoreAppends:       ss.Appends,
		StoreAppendBytes:   ss.AppendBytes,
		StoreFsyncs:        ss.Fsyncs,
		StoreSnapshots:     ss.Snapshots,
		StoreCompacted:     ss.CompactedRecords,
		StoreWedged:        ss.Wedged,
		StoreErrors:        ss.Errors + js.storeErrs,
		RecoveredDBs:       s.recovery.DBs,
		RecoveredJobs:      s.recovery.Jobs,
		JobsRequeued:       js.requeued,
		JobsInterrupted:    js.interrupted,
		RecoveredWALRecs:   int64(s.recovery.WALRecords),
		RecoveredTornBytes: s.recovery.TornBytes,

		Solved:             st.Solved,
		Timeouts:           st.Timeouts,
		ClassCacheHits:     st.CacheHits,
		ClassCacheMisses:   st.CacheMisses,
		PortfolioExactWins: st.PortfolioExactWins,
		PortfolioSATWins:   st.PortfolioSATWins,
		IRBuilds:           st.IRBuilds,
		IRBuildNs:          st.IRBuildNs,
		ParallelIRBuilds:   st.ParallelIRBuilds,
		IRBuildShards:      st.IRBuildShards,
		SolverRuns:         st.SolverRuns,
		IRCacheHits:        st.IRCacheHits,
		IRCacheMisses:      st.IRCacheMisses,
		IRMigrations:       st.IRMigrations,
		CompCacheHits:      st.CompCacheHits,
		CompCacheMisses:    st.CompCacheMisses,

		KernelForcedTuples:      st.KernelForcedTuples,
		KernelDominatedTuples:   st.KernelDominatedTuples,
		ComponentsSolved:        st.ComponentsSolved,
		MultiComponentInstances: st.MultiComponentInstances,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// canonicalQuery re-renders a query text the way the parser prints it; it
// only runs after the Session has already parsed the same text, so the
// error case is unreachable and falls back to the input.
func canonicalQuery(text string) string {
	q, err := cq.Parse(text)
	if err != nil {
		return text
	}
	return q.String()
}
