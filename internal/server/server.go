// Package server is the resilience-as-a-service layer: a long-running
// HTTP/JSON front end over the concurrent engine, turning the one-shot
// solver stack into a stateful service.
//
// # Request lifecycle
//
// Databases are uploaded once (PUT /db/{name}), frozen, and registered
// under a name; queries then arrive as small JSON bodies naming the
// database they target. Solver endpoints pass through admission control —
// a bounded in-flight slot pool that rejects excess load with 429 rather
// than queueing unboundedly — then run on the shared engine with a
// per-request deadline (the smaller of the client's timeout_ms and the
// server's configured default) plumbed down into the cancellable solvers.
//
// # Key invariants
//
//   - Registered databases are immutable: the registry freezes them at
//     upload and nothing on the serving path ever mutates one (tuple
//     probes use read-only lookups; the engine clones around the one
//     mutating PTIME solver). A re-upload installs a fresh database
//     object, so in-flight requests finish against the contents they
//     resolved.
//   - The engine runs in NoClone mode, which enables its cross-request
//     witness-IR cache: concurrent and repeated requests against the same
//     (query class, database version) enumerate witnesses exactly once.
//   - Every solver endpoint is cancellable: client disconnects and
//     deadline expiries propagate through context into ctxpoll-polling
//     search loops.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/resilience"
)

// Config tunes a Server. The zero value is usable: engine defaults,
// 64 in-flight requests, 30s per-request budget, 32 MiB upload cap.
type Config struct {
	// Engine configures the embedded solving engine (workers, portfolio,
	// cache sizes). NoClone is forced on: the registry owns frozen
	// databases, which is exactly the sharing mode NoClone exists for.
	Engine engine.Config
	// MaxInFlight bounds concurrently executing solver requests
	// (solve/batch/enumerate/responsibility). Excess requests are rejected
	// with 429 and a Retry-After header. <= 0 means the default 64.
	MaxInFlight int
	// RequestTimeout is the default per-request wall-time budget for
	// solver endpoints. A request's timeout_ms can only tighten it.
	// <= 0 means no server-side default.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (database uploads dominate).
	// <= 0 means the default 32 MiB.
	MaxBodyBytes int64
}

const (
	defaultMaxInFlight  = 64
	defaultMaxBodyBytes = 32 << 20
)

// Server is the HTTP serving layer. Create with New, expose with Handler
// (or use it directly as an http.Handler), and flip SetDraining(true)
// before shutdown so health checks start failing ahead of the listener.
type Server struct {
	cfg Config
	eng *engine.Engine
	reg *registry
	mux *http.ServeMux

	// sem is the admission-control slot pool; a slot is held for the full
	// solver-endpoint lifetime.
	sem chan struct{}

	start    time.Time
	draining atomic.Bool

	requests atomic.Int64 // solver requests admitted
	rejected atomic.Int64 // solver requests refused with 429
	failures atomic.Int64 // solver requests that returned 5xx
}

// New returns a Server over a fresh engine.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	ecfg := cfg.Engine
	ecfg.NoClone = true // registry databases are frozen and shared; see Config.Engine
	s := &Server{
		cfg:   cfg,
		eng:   engine.New(ecfg),
		reg:   newRegistry(),
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
	}
	s.routes()
	return s
}

// Engine exposes the embedded engine (stats, direct batch access) to
// in-process callers such as tests and the daemon's logging.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Handler returns the route table as an http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes *Server an http.Handler itself.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetDraining flips the health signal: while draining, /healthz returns
// 503 so load balancers stop routing here, while already-accepted requests
// keep completing. The daemon sets it on SIGTERM before http.Server.Shutdown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) routes() {
	s.mux.HandleFunc("PUT /db/{name}", s.handlePutDB)
	s.mux.HandleFunc("GET /db/{name}", s.handleGetDB)
	s.mux.HandleFunc("DELETE /db/{name}", s.handleDeleteDB)
	s.mux.HandleFunc("GET /db", s.handleListDBs)
	s.mux.HandleFunc("POST /classify", s.handleClassify)
	s.mux.HandleFunc("POST /solve", s.admitted(s.handleSolve))
	s.mux.HandleFunc("POST /batch", s.admitted(s.handleBatch))
	s.mux.HandleFunc("POST /enumerate", s.admitted(s.handleEnumerate))
	s.mux.HandleFunc("POST /responsibility", s.admitted(s.handleResponsibility))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// admitted wraps a solver endpoint with admission control: acquire an
// in-flight slot without blocking, or shed the request with 429. Shedding
// instead of queueing keeps tail latency bounded under overload — the
// client's retry policy, not an unbounded server queue, absorbs bursts.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d requests in flight)", cap(s.sem)))
			return
		}
		s.requests.Add(1)
		h(w, r)
	}
}

// requestCtx derives the request's working context: the client's
// timeout_ms can only tighten the server's configured budget.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	budget := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if t := time.Duration(timeoutMS) * time.Millisecond; budget <= 0 || t < budget {
			budget = t
		}
	}
	if budget <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), budget)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) //nolint:errcheck // nothing to do about a failed write
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.failures.Add(1)
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// solveStatus maps a solver error to an HTTP status.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout // client went away mid-solve
	default:
		return http.StatusInternalServerError
	}
}

// parseQuery parses the request's query text, answering 400 on failure.
func (s *Server) parseQuery(w http.ResponseWriter, text string) *cq.Query {
	q, err := cq.Parse(text)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return nil
	}
	return q
}

// lookupDB resolves a database name, answering 404 on failure.
func (s *Server) lookupDB(w http.ResponseWriter, name string) *db.Database {
	if name == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("missing db name"))
		return nil
	}
	d := s.reg.lookup(name)
	if d == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no database %q registered", name))
	}
	return d
}

func (s *Server) handlePutDB(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req putDBRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Facts) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("facts must be non-empty"))
		return
	}
	d, replaced, err := s.reg.register(name, req.Facts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if replaced != nil {
		// The replaced database is unreachable from now on; retire its
		// cached IRs so they stop holding cache capacity.
		s.eng.ForgetDatabase(replaced)
	}
	writeJSON(w, http.StatusOK, info(name, d))
}

func (s *Server) handleGetDB(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := s.lookupDB(w, name)
	if d == nil {
		return
	}
	writeJSON(w, http.StatusOK, info(name, d))
}

func (s *Server) handleDeleteDB(w http.ResponseWriter, r *http.Request) {
	dropped := s.reg.drop(r.PathValue("name"))
	if dropped == nil {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no database %q registered", r.PathValue("name")))
		return
	}
	s.eng.ForgetDatabase(dropped)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListDBs(w http.ResponseWriter, r *http.Request) {
	type listResponse struct {
		Databases []dbInfo `json:"databases"`
	}
	var resp listResponse
	for _, name := range s.reg.names() {
		if d := s.reg.lookup(name); d != nil {
			resp.Databases = append(resp.Databases, info(name, d))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !s.decode(w, r, &req) {
		return
	}
	q := s.parseQuery(w, req.Query)
	if q == nil {
		return
	}
	cl := core.Classify(q)
	resp := classifyResponse{
		Query:       q.String(),
		Normalized:  cl.Normalized.String(),
		Verdict:     cl.Verdict.String(),
		Rule:        cl.Rule,
		Algorithm:   cl.Algorithm.String(),
		Certificate: cl.Certificate,
	}
	for _, sub := range cl.Components {
		resp.Components = append(resp.Components, classifyComponent{
			Normalized: sub.Normalized.String(),
			Verdict:    sub.Verdict.String(),
			Rule:       sub.Rule,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if !s.decode(w, r, &req) {
		return
	}
	q := s.parseQuery(w, req.Query)
	if q == nil {
		return
	}
	d := s.lookupDB(w, req.DB)
	if d == nil {
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	br := s.eng.SolveOne(ctx, engine.Instance{Query: q, DB: d})
	resp := solveResponse{
		CacheHit:  br.CacheHit,
		ElapsedMS: float64(br.Elapsed) / float64(time.Millisecond),
	}
	if br.Classification != nil {
		resp.Verdict = br.Classification.Verdict.String()
		resp.Rule = br.Classification.Rule
	}
	switch {
	case br.Err == resilience.ErrUnbreakable:
		resp.Unbreakable = true
	case br.Err != nil:
		s.writeError(w, solveStatus(br.Err), br.Err)
		return
	default:
		resp.Rho = br.Res.Rho
		resp.Method = br.Res.Method
		resp.Witnesses = br.Res.Witnesses
		resp.Contingency = tupleStrings(d, br.Res.ContingencySet)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Instances) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("instances must be non-empty"))
		return
	}
	insts := make([]engine.Instance, len(req.Instances))
	for i, bi := range req.Instances {
		q, err := cq.Parse(bi.Query)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("instance %d: %w", i, err))
			return
		}
		name := bi.DB
		if name == "" {
			name = req.DB
		}
		d := s.lookupDB(w, name)
		if d == nil {
			return
		}
		id := bi.ID
		if id == "" {
			id = fmt.Sprintf("#%d", i)
		}
		insts[i] = engine.Instance{ID: id, Query: q, DB: d}
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	results := s.eng.SolveBatch(ctx, insts)
	resp := batchResponse{Results: make([]batchResult, len(results))}
	for i, br := range results {
		out := batchResult{
			ID:        br.ID,
			ElapsedMS: float64(br.Elapsed) / float64(time.Millisecond),
		}
		if br.Classification != nil {
			out.Verdict = br.Classification.Verdict.String()
		}
		switch {
		case br.Err == resilience.ErrUnbreakable:
			out.Unbreakable = true
		case br.Err != nil:
			out.Error = br.Err.Error()
		default:
			out.Rho = br.Res.Rho
			out.Method = br.Res.Method
			// Results are index-aligned with insts, so the instance's own
			// database resolves the contingency tuples' constant names.
			out.Contingency = tupleStrings(insts[i].DB, br.Res.ContingencySet)
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	var req enumerateRequest
	if !s.decode(w, r, &req) {
		return
	}
	q := s.parseQuery(w, req.Query)
	if q == nil {
		return
	}
	d := s.lookupDB(w, req.DB)
	if d == nil {
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	inst, err := s.eng.InstanceFor(ctx, q, d)
	if err != nil {
		s.writeError(w, solveStatus(err), err)
		return
	}
	rho, sets, err := resilience.EnumerateMinimumOnInstance(ctx, inst, d, req.MaxSets)
	if err == resilience.ErrUnbreakable {
		writeJSON(w, http.StatusOK, enumerateResponse{Unbreakable: true})
		return
	}
	if err != nil {
		s.writeError(w, solveStatus(err), err)
		return
	}
	resp := enumerateResponse{Rho: rho, Sets: make([][]string, len(sets))}
	for i, set := range sets {
		resp.Sets[i] = tupleStrings(d, set)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResponsibility(w http.ResponseWriter, r *http.Request) {
	var req responsibilityRequest
	if !s.decode(w, r, &req) {
		return
	}
	q := s.parseQuery(w, req.Query)
	if q == nil {
		return
	}
	d := s.lookupDB(w, req.DB)
	if d == nil {
		return
	}
	t, err := lookupTuple(d, req.Tuple)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if q.IsExogenous(t.Rel) {
		// A client input error, not a solver failure: only endogenous
		// tuples can be causes.
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("%s is exogenous in the query; only endogenous tuples can be causes", req.Tuple))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	inst, err := s.eng.InstanceFor(ctx, q, d)
	if err != nil {
		s.writeError(w, solveStatus(err), err)
		return
	}
	k, gamma, err := resilience.ResponsibilityOnInstance(ctx, inst, d, t)
	resp := responsibilityResponse{Tuple: d.TupleString(t)}
	switch {
	case err == resilience.ErrNotCounterfactual:
		resp.NotCounterfactual = true
	case err != nil:
		s.writeError(w, solveStatus(err), err)
		return
	default:
		resp.K = k
		resp.Responsibility = 1.0 / float64(1+k)
		resp.Contingency = tupleStrings(d, gamma)
	}
	writeJSON(w, http.StatusOK, resp)
}

// metricsResponse is the body of GET /metrics: server counters plus a
// snapshot of engine.Stats in stable snake_case keys.
type metricsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Databases     int     `json:"databases"`

	InFlight    int   `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	Requests    int64 `json:"requests"`
	Rejected    int64 `json:"rejected"`
	Failures    int64 `json:"failures"`

	Solved             int64 `json:"solved"`
	Timeouts           int64 `json:"timeouts"`
	ClassCacheHits     int64 `json:"class_cache_hits"`
	ClassCacheMisses   int64 `json:"class_cache_misses"`
	PortfolioExactWins int64 `json:"portfolio_exact_wins"`
	PortfolioSATWins   int64 `json:"portfolio_sat_wins"`
	IRBuilds           int64 `json:"ir_builds"`
	SolverRuns         int64 `json:"solver_runs"`
	IRCacheHits        int64 `json:"ir_cache_hits"`
	IRCacheMisses      int64 `json:"ir_cache_misses"`

	KernelForcedTuples      int64 `json:"kernel_forced_tuples"`
	KernelDominatedTuples   int64 `json:"kernel_dominated_tuples"`
	ComponentsSolved        int64 `json:"components_solved"`
	MultiComponentInstances int64 `json:"multi_component_instances"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, metricsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		Databases:     s.reg.len(),

		InFlight:    len(s.sem),
		MaxInFlight: cap(s.sem),
		Requests:    s.requests.Load(),
		Rejected:    s.rejected.Load(),
		Failures:    s.failures.Load(),

		Solved:             st.Solved,
		Timeouts:           st.Timeouts,
		ClassCacheHits:     st.CacheHits,
		ClassCacheMisses:   st.CacheMisses,
		PortfolioExactWins: st.PortfolioExactWins,
		PortfolioSATWins:   st.PortfolioSATWins,
		IRBuilds:           st.IRBuilds,
		SolverRuns:         st.SolverRuns,
		IRCacheHits:        st.IRCacheHits,
		IRCacheMisses:      st.IRCacheMisses,

		KernelForcedTuples:      st.KernelForcedTuples,
		KernelDominatedTuples:   st.KernelDominatedTuples,
		ComponentsSolved:        st.ComponentsSolved,
		MultiComponentInstances: st.MultiComponentInstances,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
