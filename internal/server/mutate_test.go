package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/api"
)

// solveRho runs a synchronous v1 solve and returns ρ.
func solveRho(t *testing.T, ts, db string) int {
	t.Helper()
	var res api.Result
	status := doJSON(t, http.MethodPost, ts+"/v1/tasks",
		api.Task{Kind: api.KindSolve, Query: "qchain :- R(x,y), R(y,z)", DB: db}, &res)
	if status != http.StatusOK {
		t.Fatalf("solve %s: status %d", db, status)
	}
	return res.Rho
}

func patchDB(t *testing.T, ts, name string, muts []api.Mutation, out any) int {
	t.Helper()
	return doJSON(t, http.MethodPatch, ts+"/v1/db/"+name, api.MutateRequest{Mutations: muts}, out)
}

// TestV1MutateDBEndpoint drives the PATCH surface end to end: an applied
// batch answers the post-batch DBInfo (version bumped, counts updated) and
// changes the solve answer; the server's mutation counter tracks applied
// batches.
func TestV1MutateDBEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putToy(t, ts.URL)

	var before api.DBInfo
	if status := doJSON(t, http.MethodGet, ts.URL+"/v1/db/toy", nil, &before); status != http.StatusOK {
		t.Fatalf("GET toy: status %d", status)
	}
	if got := solveRho(t, ts.URL, "toy"); got != 2 {
		t.Fatalf("ρ before mutation = %d, want 2", got)
	}

	// Insert a disjoint chain component: one more witness, ρ 2 → 3.
	var resp api.MutateResponse
	status := patchDB(t, ts.URL, "toy", []api.Mutation{
		{Op: api.MutationInsert, Fact: "R(5,6)"},
		{Op: api.MutationInsert, Fact: "R(6,7)"},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("PATCH insert: status %d", status)
	}
	if resp.Applied != 2 || resp.Version <= before.Version || resp.Tuples != before.Tuples+2 {
		t.Fatalf("mutate response = %+v, want applied=2, version > %d, %d tuples",
			resp, before.Version, before.Tuples+2)
	}
	if got := solveRho(t, ts.URL, "toy"); got != 3 {
		t.Fatalf("ρ after insert = %d, want 3", got)
	}

	// GET reflects the new version; delete brings the answer back.
	var cur api.DBInfo
	if status := doJSON(t, http.MethodGet, ts.URL+"/v1/db/toy", nil, &cur); status != http.StatusOK || cur.Version != resp.Version {
		t.Fatalf("GET after patch = %+v (status %d), want version %d", cur, status, resp.Version)
	}
	if status := patchDB(t, ts.URL, "toy",
		[]api.Mutation{{Op: api.MutationDelete, Fact: "R(6,7)"}}, &resp); status != http.StatusOK {
		t.Fatalf("PATCH delete: status %d", status)
	}
	if got := solveRho(t, ts.URL, "toy"); got != 2 {
		t.Fatalf("ρ after delete = %d, want 2", got)
	}

	var m metricsResponse
	if status := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	if m.Mutations != 2 {
		t.Fatalf("mutations counter = %d, want 2", m.Mutations)
	}
}

// TestV1MutateDBErrors pins the typed failure modes of PATCH: every
// rejection is atomic (the registration keeps its version) and carries the
// right v1 code and status.
func TestV1MutateDBErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putToy(t, ts.URL)
	var before api.DBInfo
	doJSON(t, http.MethodGet, ts.URL+"/v1/db/toy", nil, &before)

	var eb api.ErrorBody
	if status := patchDB(t, ts.URL, "ghost",
		[]api.Mutation{{Op: api.MutationInsert, Fact: "R(1,9)"}}, &eb); status != 404 || eb.Error == nil || eb.Error.Code != api.CodeUnknownDB {
		t.Fatalf("ghost db: status %d body %+v, want 404 unknown_db", status, eb)
	}

	cases := []struct {
		muts []api.Mutation
		code api.Code
	}{
		{nil, api.CodeBadRequest},
		{[]api.Mutation{{Op: "replace", Fact: "R(1,2)"}}, api.CodeBadRequest},
		{[]api.Mutation{{Op: api.MutationInsert, Fact: "R(("}}, api.CodeBadTuple},
		{[]api.Mutation{{Op: api.MutationInsert, Fact: "R(1,2)"}}, api.CodeBadTuple}, // already present
		{[]api.Mutation{{Op: api.MutationDelete, Fact: "R(9,9)"}}, api.CodeBadTuple}, // absent
		{[]api.Mutation{{Op: api.MutationInsert, Fact: "R(1,2,3)"}}, api.CodeBadTuple},
		// Atomicity: the valid first mutation must not survive the bad second.
		{[]api.Mutation{
			{Op: api.MutationInsert, Fact: "R(7,8)"},
			{Op: api.MutationDelete, Fact: "R(9,9)"},
		}, api.CodeBadTuple},
	}
	for i, c := range cases {
		eb = api.ErrorBody{}
		status := patchDB(t, ts.URL, "toy", c.muts, &eb)
		if status != 400 || eb.Error == nil || eb.Error.Code != c.code {
			t.Errorf("case %d: status %d body %+v, want 400 %s", i, status, eb.Error, c.code)
		}
	}

	// Malformed body (unknown field): the strict v1 decoder rejects it.
	eb = api.ErrorBody{}
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/db/toy",
		bytes.NewReader([]byte(`{"ops":[{"op":"insert","fact":"R(1,9)"}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 || eb.Error == nil || eb.Error.Code != api.CodeBadRequest {
		t.Fatalf("unknown field: status %d body %+v, want 400 bad_request", resp.StatusCode, eb.Error)
	}

	var after api.DBInfo
	doJSON(t, http.MethodGet, ts.URL+"/v1/db/toy", nil, &after)
	if after.Version != before.Version || after.Tuples != before.Tuples {
		t.Fatalf("rejected batches changed the registration: %+v -> %+v", before, after)
	}
}

// TestV1PutDBReturnsVersion pins the upload contract the mutation surface
// rests on: PUT answers the full DBInfo including the version that cached
// IRs and watch reconnects (from_version) key on.
func TestV1PutDBReturnsVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var info api.DBInfo
	if status := doJSON(t, http.MethodPut, ts.URL+"/v1/db/toy",
		putDBRequest{Facts: []string{"R(1,2)", "R(2,3)", "R(3,3)"}}, &info); status != http.StatusOK {
		t.Fatalf("PUT toy: status %d", status)
	}
	if info.Name != "toy" || info.Tuples != 3 || info.Version == 0 {
		t.Fatalf("PUT body = %+v, want name=toy, 3 tuples, nonzero version", info)
	}
	// A PATCH moves the version strictly past the PUT's.
	var resp api.MutateResponse
	if status := patchDB(t, ts.URL, "toy",
		[]api.Mutation{{Op: api.MutationInsert, Fact: "R(5,6)"}}, &resp); status != http.StatusOK {
		t.Fatalf("PATCH: status %d", status)
	}
	if resp.Version <= info.Version {
		t.Fatalf("PATCH version %d not past PUT version %d", resp.Version, info.Version)
	}
	// The legacy PUT shim answers the same body (version included).
	var legacy api.DBInfo
	if status := doJSON(t, http.MethodPut, ts.URL+"/db/toy2",
		putDBRequest{Facts: []string{"R(1,2)"}}, &legacy); status != http.StatusOK || legacy.Version == 0 {
		t.Fatalf("legacy PUT body = %+v (status %d), want a nonzero version", legacy, status)
	}
}

// TestV1WatchStreamsMutations is the HTTP end of the watch contract: a
// watch task streamed over NDJSON emits its snapshot line, then one change
// line per answer-changing PATCH (carrying the PATCH's own version), and —
// once MaxEvents is reached — a final totals line, after which the
// connection closes.
func TestV1WatchStreamsMutations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putToy(t, ts.URL)

	sc, closeBody := streamLines(t, ts.URL+"/v1/tasks?stream=ndjson", api.Task{
		Kind: api.KindWatch, Query: "qchain :- R(x,y), R(y,z)", DB: "toy", MaxEvents: 2,
	})
	defer closeBody()

	read := func() *api.Result {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var r api.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		return &r
	}

	snap := read()
	if !snap.Partial || snap.Rho != 2 || snap.Version == 0 {
		t.Fatalf("snapshot = %+v, want Partial ρ=2 with a version", snap)
	}

	var resp api.MutateResponse
	if status := patchDB(t, ts.URL, "toy", []api.Mutation{
		{Op: api.MutationInsert, Fact: "R(5,6)"},
		{Op: api.MutationInsert, Fact: "R(6,7)"},
	}, &resp); status != http.StatusOK {
		t.Fatalf("PATCH: status %d", status)
	}
	change := read()
	if !change.Partial || change.Rho != 3 || change.Version != resp.Version {
		t.Fatalf("change line = %+v, want Partial ρ=3 at version %d", change, resp.Version)
	}

	final := read()
	if final.Partial || final.Total != 2 || final.Rho != 3 {
		t.Fatalf("final line = %+v, want non-partial totals with 2 events at ρ=3", final)
	}
	if sc.Scan() {
		t.Fatalf("stream kept going after the totals line: %q", sc.Text())
	}
}

// TestLegacyDeprecationHeaders pins the migration signal: every mounted
// legacy route answers with the standard Deprecation header and a Link to
// its v1 successor, while v1 routes stay unmarked.
func TestLegacyDeprecationHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putToy(t, ts.URL)

	check := func(method, path string, body any, wantDeprecated bool) {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			buf, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(buf)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: status %d", method, path, resp.StatusCode)
		}
		dep := resp.Header.Get("Deprecation")
		link := resp.Header.Get("Link")
		if wantDeprecated {
			if dep != "true" || link != `</v1/tasks>; rel="successor-version"` {
				t.Errorf("%s %s: Deprecation=%q Link=%q, want the deprecation pair", method, path, dep, link)
			}
		} else if dep != "" {
			t.Errorf("%s %s: unexpected Deprecation header %q on a v1 route", method, path, dep)
		}
	}

	check(http.MethodGet, "/db/toy", nil, true)
	check(http.MethodPost, "/solve", solveRequest{Query: "qchain :- R(x,y), R(y,z)", DB: "toy"}, true)
	check(http.MethodPost, "/classify", classifyRequest{Query: "qchain :- R(x,y), R(y,z)"}, true)
	check(http.MethodGet, "/v1/db/toy", nil, false)
	check(http.MethodPost, "/v1/tasks", api.Task{Kind: api.KindSolve, Query: "qchain :- R(x,y), R(y,z)", DB: "toy"}, false)
}

// TestDisableLegacyUnmountsRoutes: with DisableLegacy the pre-v1 block is
// absent from the route table (404, not a deprecated 200), and the v1
// surface is unaffected.
func TestDisableLegacyUnmountsRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableLegacy: true})
	putToy(t, ts.URL) // v1 upload still works

	legacy := []struct {
		method, path string
		body         any
	}{
		{http.MethodPut, "/db/x", putDBRequest{Facts: []string{"R(1,2)"}}},
		{http.MethodGet, "/db/toy", nil},
		{http.MethodDelete, "/db/toy", nil},
		{http.MethodGet, "/db", nil},
		{http.MethodPost, "/classify", classifyRequest{Query: "q :- R(x,y)"}},
		{http.MethodPost, "/solve", solveRequest{Query: "q :- R(x,y)", DB: "toy"}},
		{http.MethodPost, "/batch", batchRequest{Instances: []batchInstance{{Query: "q :- R(x,y)", DB: "toy"}}}},
		{http.MethodPost, "/enumerate", enumerateRequest{Query: "q :- R(x,y)", DB: "toy"}},
		{http.MethodPost, "/responsibility", responsibilityRequest{Query: "q :- R(x,y)", DB: "toy", Tuple: "R(1,2)"}},
	}
	for _, c := range legacy {
		if status := doJSON(t, c.method, ts.URL+c.path, c.body, nil); status != http.StatusNotFound {
			t.Errorf("%s %s with DisableLegacy: status %d, want 404", c.method, c.path, status)
		}
	}

	// The v1 surface — including the mutation path — is untouched.
	if got := solveRho(t, ts.URL, "toy"); got != 2 {
		t.Fatalf("v1 solve under DisableLegacy: ρ = %d, want 2", got)
	}
	var resp api.MutateResponse
	if status := patchDB(t, ts.URL, "toy",
		[]api.Mutation{{Op: api.MutationInsert, Fact: "R(5,6)"}}, &resp); status != http.StatusOK || resp.Applied != 1 {
		t.Fatalf("v1 PATCH under DisableLegacy: status %d resp %+v", status, resp)
	}
	if status := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, nil); status != http.StatusOK {
		t.Fatalf("metrics under DisableLegacy: status %d", status)
	}
}
