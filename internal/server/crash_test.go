package server

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/api"
)

// crashHelperEnv names the data directory when this test binary is
// re-executed as the crash victim.
const crashHelperEnv = "RESIL_CRASH_HELPER_DIR"

// TestCrashRecoveryKill9 is the durability acceptance test: a child
// server process journals a stream of acknowledged mutations (and three
// acknowledged job submissions) with fsync=batch, the parent SIGKILLs it
// mid-stream, reopens the same data directory, and requires every
// acknowledged write back — the registry identical to the acknowledged
// prefix and the committed-but-unstarted jobs still queued with their
// exact tasks.
//
// The child prints "acked <version>" after each MutateDB returns, so
// "acknowledged" has a precise meaning: the version was durable (modulo
// the batch-mode OS cache, which survives kill -9) before the line was
// written. Recovery may legitimately see lastAcked+1 — the kill can land
// after the journal append but before the print — never less, and never
// more than one ahead.
func TestCrashRecoveryKill9(t *testing.T) {
	if dir := os.Getenv(crashHelperEnv); dir != "" {
		crashHelperMain(dir)
		return // unreachable: the helper is killed or exits
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoveryKill9$", "-test.v")
	cmd.Env = append(os.Environ(), crashHelperEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read acknowledgment lines until the mutation stream is well under
	// way, then kill -9 mid-stream.
	var base, lastAcked uint64
	sc := bufio.NewScanner(stdout)
	acked := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "ready "):
			base, err = strconv.ParseUint(strings.TrimPrefix(line, "ready "), 10, 64)
			if err != nil {
				t.Fatalf("bad ready line %q: %v", line, err)
			}
		case strings.HasPrefix(line, "acked "):
			lastAcked, err = strconv.ParseUint(strings.TrimPrefix(line, "acked "), 10, 64)
			if err != nil {
				t.Fatalf("bad ack line %q: %v", line, err)
			}
			acked++
		}
		if acked >= 30 {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading helper output: %v", err)
	}
	if base == 0 || acked < 30 {
		t.Fatalf("helper died early: base=%d acked=%d", base, acked)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	// Acks kept flowing into the pipe buffer between our last read and
	// the kill; drain them so lastAcked is the final acknowledgment the
	// child actually emitted.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, perr := strconv.ParseUint(strings.TrimPrefix(line, "acked "), 10, 64); perr == nil && strings.HasPrefix(line, "acked ") {
			lastAcked = v
		}
	}
	cmd.Wait() //nolint:errcheck // killed on purpose; the exit status is the point

	s, err := Open(Config{DataDir: dir, Fsync: "batch", JobWorkers: -1})
	if err != nil {
		t.Fatalf("reopening after kill -9: %v", err)
	}
	defer s.Close()

	d := s.sess.DB("net")
	if d == nil {
		t.Fatal("database net lost to the crash")
	}
	v := d.Version()
	if v < lastAcked || v > lastAcked+1 {
		t.Fatalf("recovered version %d outside [%d, %d]: acknowledged writes lost or phantom writes recovered",
			v, lastAcked, lastAcked+1)
	}
	// The recovered contents must be exactly the base facts plus the
	// insert stream's prefix up to the recovered version — byte-identical
	// to what the acknowledged (± in-flight) state held.
	want := []string{"R(c0,c1)", "R(c1,c2)"}
	for i := base + 1; i <= v; i++ {
		want = append(want, fmt.Sprintf("E(m%d,n%d)", i, i))
	}
	sort.Strings(want)
	got := make([]string, 0, d.Len())
	for _, tup := range d.AllTuples() {
		got = append(got, d.TupleString(tup))
	}
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("recovered %d facts, want %d\n got %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered fact %d = %q, want %q", i, got[i], want[i])
		}
	}

	// The three pre-stream job submissions were acknowledged (the helper
	// only starts mutating after they return), so all three must be back,
	// still queued — no workers ran in either process — with their tasks
	// intact.
	jobs := s.jobs.list(api.JobQueued, 0)
	if len(jobs) != 3 {
		t.Fatalf("recovered %d queued jobs, want 3", len(jobs))
	}
	for i, j := range jobs {
		if wantTask := crashJobTask(i); !reflect.DeepEqual(j.Task, wantTask) {
			t.Fatalf("job %s task %+v, want %+v", j.ID, j.Task, wantTask)
		}
	}
	if rq := s.Recovery().JobsRequeued; rq != 3 {
		t.Fatalf("requeued = %d, want 3", rq)
	}
}

// crashJobTask is the i-th job the helper submits, shared so the parent
// can verify byte-for-byte task recovery.
func crashJobTask(i int) api.Task {
	return api.Task{Kind: api.KindSolve, Query: fmt.Sprintf("q%d :- R(x,y), R(y,z)", i), DB: "net"}
}

// crashHelperMain is the victim process: open durable, register, submit
// three jobs, then mutate forever, acknowledging each committed version
// on stdout. It never returns — the parent kills it.
func crashHelperMain(dir string) {
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crash helper:", err)
		os.Exit(1)
	}
	s, err := Open(Config{DataDir: dir, Fsync: "batch", JobWorkers: -1})
	if err != nil {
		fail(err)
	}
	info, err := s.sess.RegisterFacts("net", []string{"R(c0,c1)", "R(c1,c2)"})
	if err != nil {
		fail(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.jobs.submit(crashJobTask(i)); err != nil {
			fail(err)
		}
	}
	fmt.Printf("ready %d\n", info.Version)
	ctx := context.Background()
	for i := info.Version + 1; ; i++ {
		di, err := s.sess.MutateDB(ctx, "net", []api.Mutation{
			{Op: api.MutationInsert, Fact: fmt.Sprintf("E(m%d,n%d)", i, i)},
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("acked %d\n", di.Version)
	}
}
