package server

// The wire types of the legacy (pre-v1) HTTP/JSON API. These shapes are
// frozen: the handlers behind them are shims over the v1 Session, and the
// parity test suite pins each field against its v1 counterpart. Facts and
// tuples travel as strings in the same "R(a,b)" notation the CLI uses, so
// curl transcripts and fact files stay interchangeable.
//
// The v1 surface has no hand-rolled types here: it speaks api.Task,
// api.Result, api.BatchRequest/Response, api.Job and api.ErrorBody
// directly.

// putDBRequest is the body of PUT /db/{name} and PUT /v1/db/{name}.
type putDBRequest struct {
	// Facts holds one fact per entry, e.g. "R(1,2)". Blank entries are
	// rejected (unlike fact files there is no comment syntax here).
	Facts []string `json:"facts"`
}

// solveRequest is the body of POST /solve.
type solveRequest struct {
	Query string `json:"query"`
	DB    string `json:"db"`
	// TimeoutMS, when positive, bounds this request's wall time; the
	// effective deadline is the smaller of this and the server's
	// per-request default.
	TimeoutMS int64 `json:"timeout_ms"`
}

// solveResponse is the body of a successful POST /solve.
type solveResponse struct {
	Rho         int      `json:"rho"`
	Method      string   `json:"method,omitempty"`
	Witnesses   int      `json:"witnesses"`
	Contingency []string `json:"contingency,omitempty"`
	Verdict     string   `json:"verdict"`
	Rule        string   `json:"rule,omitempty"`
	// Unbreakable means no endogenous deletion can falsify the query: a
	// definite answer (ρ = ∞), not an error. Rho is 0 in that case.
	Unbreakable bool `json:"unbreakable,omitempty"`
	// CacheHit reports whether the classification came from the engine's
	// isomorphism cache.
	CacheHit  bool    `json:"cache_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// classifyRequest is the body of POST /classify.
type classifyRequest struct {
	Query string `json:"query"`
}

// classifyResponse is the body of POST /classify.
type classifyResponse struct {
	Query       string              `json:"query"`
	Normalized  string              `json:"normalized"`
	Verdict     string              `json:"verdict"`
	Rule        string              `json:"rule"`
	Algorithm   string              `json:"algorithm"`
	Certificate string              `json:"certificate"`
	Components  []classifyComponent `json:"components,omitempty"`
}

type classifyComponent struct {
	Normalized string `json:"normalized"`
	Verdict    string `json:"verdict"`
	Rule       string `json:"rule"`
}

// batchRequest is the body of POST /batch.
type batchRequest struct {
	// DB is the default database for instances that do not name their own.
	DB        string          `json:"db,omitempty"`
	TimeoutMS int64           `json:"timeout_ms"`
	Instances []batchInstance `json:"instances"`
}

type batchInstance struct {
	ID    string `json:"id"`
	Query string `json:"query"`
	DB    string `json:"db,omitempty"`
}

// batchResponse is the body of POST /batch: one result per instance,
// index-aligned with the request.
type batchResponse struct {
	Results []batchResult `json:"results"`
}

type batchResult struct {
	ID          string   `json:"id"`
	Rho         int      `json:"rho"`
	Method      string   `json:"method,omitempty"`
	Verdict     string   `json:"verdict,omitempty"`
	Unbreakable bool     `json:"unbreakable,omitempty"`
	Error       string   `json:"error,omitempty"`
	Contingency []string `json:"contingency,omitempty"`
	ElapsedMS   float64  `json:"elapsed_ms"`
}

// enumerateRequest is the body of POST /enumerate.
type enumerateRequest struct {
	Query string `json:"query"`
	DB    string `json:"db"`
	// MaxSets caps the number of minimum contingency sets returned
	// (0 = no cap).
	MaxSets   int   `json:"max_sets"`
	TimeoutMS int64 `json:"timeout_ms"`
}

// enumerateResponse is the body of POST /enumerate.
type enumerateResponse struct {
	Rho         int        `json:"rho"`
	Sets        [][]string `json:"sets"`
	Unbreakable bool       `json:"unbreakable,omitempty"`
}

// responsibilityRequest is the body of POST /responsibility.
type responsibilityRequest struct {
	Query string `json:"query"`
	DB    string `json:"db"`
	// Tuple names the endogenous tuple to probe, e.g. "R(1,2)".
	Tuple     string `json:"tuple"`
	TimeoutMS int64  `json:"timeout_ms"`
}

// responsibilityResponse is the body of POST /responsibility. The
// responsibility score of [31] is 1/(1+k).
type responsibilityResponse struct {
	Tuple          string   `json:"tuple"`
	K              int      `json:"k"`
	Responsibility float64  `json:"responsibility"`
	Contingency    []string `json:"contingency,omitempty"`
	// NotCounterfactual means no contingency makes the tuple a
	// counterfactual cause; responsibility is then 0.
	NotCounterfactual bool `json:"not_counterfactual,omitempty"`
}

// errorBody accompanies every non-2xx legacy response.
type errorBody struct {
	Error string `json:"error"`
}
