package server

import (
	"fmt"
	"strings"

	"repro/internal/db"
)

// The wire types of the HTTP/JSON API. Every request body is a single
// JSON object; every response is a single JSON object (or an errorBody
// with a non-2xx status). Facts and tuples travel as strings in the same
// "R(a,b)" notation the CLI uses, so curl transcripts and fact files stay
// interchangeable.

// putDBRequest is the body of PUT /db/{name}.
type putDBRequest struct {
	// Facts holds one fact per entry, e.g. "R(1,2)". Blank entries are
	// rejected (unlike fact files there is no comment syntax here).
	Facts []string `json:"facts"`
}

// dbInfo describes a registered database (PUT /db/{name}, GET /db/{name},
// and the elements of GET /db).
type dbInfo struct {
	Name string `json:"name"`
	// Tuples and Constants are totals; Relations maps relation name to its
	// tuple count.
	Tuples    int            `json:"tuples"`
	Constants int            `json:"constants"`
	Relations map[string]int `json:"relations"`
	// Version is the database's mutation counter; together with the name
	// it identifies the contents a cached IR was built from.
	Version uint64 `json:"version"`
}

// solveRequest is the body of POST /solve.
type solveRequest struct {
	Query string `json:"query"`
	DB    string `json:"db"`
	// TimeoutMS, when positive, bounds this request's wall time; the
	// effective deadline is the smaller of this and the server's
	// per-request default.
	TimeoutMS int64 `json:"timeout_ms"`
}

// solveResponse is the body of a successful POST /solve.
type solveResponse struct {
	Rho         int      `json:"rho"`
	Method      string   `json:"method,omitempty"`
	Witnesses   int      `json:"witnesses"`
	Contingency []string `json:"contingency,omitempty"`
	Verdict     string   `json:"verdict"`
	Rule        string   `json:"rule,omitempty"`
	// Unbreakable means no endogenous deletion can falsify the query: a
	// definite answer (ρ = ∞), not an error. Rho is 0 in that case.
	Unbreakable bool `json:"unbreakable,omitempty"`
	// CacheHit reports whether the classification came from the engine's
	// isomorphism cache.
	CacheHit  bool    `json:"cache_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// classifyRequest is the body of POST /classify.
type classifyRequest struct {
	Query string `json:"query"`
}

// classifyResponse is the body of POST /classify.
type classifyResponse struct {
	Query       string              `json:"query"`
	Normalized  string              `json:"normalized"`
	Verdict     string              `json:"verdict"`
	Rule        string              `json:"rule"`
	Algorithm   string              `json:"algorithm"`
	Certificate string              `json:"certificate"`
	Components  []classifyComponent `json:"components,omitempty"`
}

type classifyComponent struct {
	Normalized string `json:"normalized"`
	Verdict    string `json:"verdict"`
	Rule       string `json:"rule"`
}

// batchRequest is the body of POST /batch.
type batchRequest struct {
	// DB is the default database for instances that do not name their own.
	DB        string          `json:"db,omitempty"`
	TimeoutMS int64           `json:"timeout_ms"`
	Instances []batchInstance `json:"instances"`
}

type batchInstance struct {
	ID    string `json:"id"`
	Query string `json:"query"`
	DB    string `json:"db,omitempty"`
}

// batchResponse is the body of POST /batch: one result per instance,
// index-aligned with the request.
type batchResponse struct {
	Results []batchResult `json:"results"`
}

type batchResult struct {
	ID          string   `json:"id"`
	Rho         int      `json:"rho"`
	Method      string   `json:"method,omitempty"`
	Verdict     string   `json:"verdict,omitempty"`
	Unbreakable bool     `json:"unbreakable,omitempty"`
	Error       string   `json:"error,omitempty"`
	Contingency []string `json:"contingency,omitempty"`
	ElapsedMS   float64  `json:"elapsed_ms"`
}

// enumerateRequest is the body of POST /enumerate.
type enumerateRequest struct {
	Query string `json:"query"`
	DB    string `json:"db"`
	// MaxSets caps the number of minimum contingency sets returned
	// (0 = no cap).
	MaxSets   int   `json:"max_sets"`
	TimeoutMS int64 `json:"timeout_ms"`
}

// enumerateResponse is the body of POST /enumerate.
type enumerateResponse struct {
	Rho         int        `json:"rho"`
	Sets        [][]string `json:"sets"`
	Unbreakable bool       `json:"unbreakable,omitempty"`
}

// responsibilityRequest is the body of POST /responsibility.
type responsibilityRequest struct {
	Query string `json:"query"`
	DB    string `json:"db"`
	// Tuple names the endogenous tuple to probe, e.g. "R(1,2)".
	Tuple     string `json:"tuple"`
	TimeoutMS int64  `json:"timeout_ms"`
}

// responsibilityResponse is the body of POST /responsibility. The
// responsibility score of [31] is 1/(1+k).
type responsibilityResponse struct {
	Tuple          string   `json:"tuple"`
	K              int      `json:"k"`
	Responsibility float64  `json:"responsibility"`
	Contingency    []string `json:"contingency,omitempty"`
	// NotCounterfactual means no contingency makes the tuple a
	// counterfactual cause; responsibility is then 0.
	NotCounterfactual bool `json:"not_counterfactual,omitempty"`
}

// errorBody accompanies every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// parseFact splits "R(a,b)" into its relation name and argument names.
// It is strict — unlike the CLI's forgiving fact-file reader, a malformed
// wire fact is a client error: the closing parenthesis must end the fact,
// and the relation and every argument must be non-empty.
func parseFact(text string) (rel string, args []string, err error) {
	text = strings.TrimSpace(text)
	open := strings.IndexByte(text, '(')
	if open <= 0 || !strings.HasSuffix(text, ")") || open >= len(text)-1 {
		return "", nil, fmt.Errorf("malformed fact %q (want R(a,b))", text)
	}
	rel = strings.TrimSpace(text[:open])
	if rel == "" {
		return "", nil, fmt.Errorf("malformed fact %q (empty relation name)", text)
	}
	for _, part := range strings.Split(text[open+1:len(text)-1], ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return "", nil, fmt.Errorf("malformed fact %q (empty argument)", text)
		}
		args = append(args, part)
	}
	return rel, args, nil
}

// lookupTuple resolves a fact string against d without interning: the
// tuple must already exist in d (the serving layer never mutates a
// registered database).
func lookupTuple(d *db.Database, text string) (db.Tuple, error) {
	rel, args, err := parseFact(text)
	if err != nil {
		return db.Tuple{}, err
	}
	if len(args) == 0 || len(args) > db.MaxArity {
		return db.Tuple{}, fmt.Errorf("fact %q has arity %d, want 1..%d", text, len(args), db.MaxArity)
	}
	t := db.Tuple{Rel: rel, Arity: uint8(len(args))}
	for i, a := range args {
		v, ok := d.LookupConst(a)
		if !ok {
			return db.Tuple{}, fmt.Errorf("fact %s not in database (unknown constant %q)", text, a)
		}
		t.Args[i] = v
	}
	if !d.Has(t) {
		return db.Tuple{}, fmt.Errorf("fact %s not in database", text)
	}
	return t, nil
}

// tupleStrings renders a contingency set with constant names resolved.
func tupleStrings(d *db.Database, ts []db.Tuple) []string {
	if len(ts) == 0 {
		return nil
	}
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = d.TupleString(t)
	}
	return out
}
